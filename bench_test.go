// Package simrankpp_test benchmarks every table and figure of the
// Simrank++ paper's evaluation section, plus the ablations called out in
// DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Figure benchmarks report quality numbers (coverage, P@1, prediction
// accuracy) as custom metrics alongside runtime, so one run regenerates
// the EXPERIMENTS.md record.
package simrankpp_test

import (
	"fmt"
	"sync"
	"testing"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/core"
	"simrankpp/internal/eval"
	"simrankpp/internal/experiments"
	"simrankpp/internal/partition"
	"simrankpp/internal/spam"
	"simrankpp/internal/workload"
)

// benchDatasetConfig is a reduced dataset so the full bench suite runs in
// minutes; cmd/experiments runs the full-size version.
func benchDatasetConfig() experiments.DatasetConfig {
	cfg := experiments.DefaultDatasetConfig()
	cfg.Universe.Categories = 8
	cfg.Universe.SubtopicsPerCategory = 5
	cfg.Universe.IntentsPerSubtopic = 5
	cfg.Sponsored.Sessions = 250000
	cfg.MinSubgraphNodes = 150
	return cfg
}

var (
	dsOnce sync.Once
	dsVal  *experiments.Dataset
	dsRuns []experiments.MethodRun
	dsErr  error
)

func benchDataset(b *testing.B) (*experiments.Dataset, []experiments.MethodRun) {
	b.Helper()
	dsOnce.Do(func() {
		dsVal, dsErr = experiments.BuildDataset(benchDatasetConfig())
		if dsErr != nil {
			return
		}
		dsRuns, dsErr = experiments.RunMethods(dsVal)
	})
	if dsErr != nil {
		b.Fatal(dsErr)
	}
	return dsVal, dsRuns
}

// BenchmarkTable1CommonAdCounts regenerates Table 1: naive common-ad
// counting on the Figure 3 graph.
func BenchmarkTable1CommonAdCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if m := experiments.Table1(); len(m.Labels) != 5 {
			b.Fatal("unexpected table shape")
		}
	}
}

// BenchmarkTable2SimrankToy regenerates Table 2: SimRank to convergence
// on the Figure 3 graph.
func BenchmarkTable2SimrankToy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3CompleteBipartite regenerates Table 3: 7 iterations of
// SimRank on the Figure 4 graphs.
func BenchmarkTable3CompleteBipartite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4EvidenceToy regenerates Table 4: evidence-based SimRank
// on the Figure 4 graphs.
func BenchmarkTable4EvidenceToy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4(7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5Partition regenerates Table 5: ACL extraction of the
// five subgraphs from the simulated log (dataset statistics).
func BenchmarkTable5Partition(b *testing.B) {
	ds, _ := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t5 := experiments.Table5(ds)
		if t5.Total.Queries == 0 {
			b.Fatal("empty dataset")
		}
	}
}

// BenchmarkFig8Coverage regenerates Figure 8 and reports each method's
// coverage as a custom metric.
func BenchmarkFig8Coverage(b *testing.B) {
	ds, runs := benchDataset(b)
	var rep *experiments.CoverageReport
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep = experiments.Fig8(ds, runs)
	}
	b.ReportMetric(rep.Coverage["pearson"]*100, "pearson-cov%")
	b.ReportMetric(rep.Coverage["simrank"]*100, "simrank-cov%")
	b.ReportMetric(rep.Coverage["evidence-based simrank"]*100, "evidence-cov%")
	b.ReportMetric(rep.Coverage["weighted simrank"]*100, "weighted-cov%")
}

// BenchmarkFig9PrecisionRecall regenerates Figure 9 (positive class =
// grades {1,2}) and reports P@1 per method.
func BenchmarkFig9PrecisionRecall(b *testing.B) {
	_, runs := benchDataset(b)
	var rep *experiments.PRReport
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep = experiments.Fig9(runs)
	}
	b.ReportMetric(rep.PAtX["pearson"][0]*100, "pearson-P@1%")
	b.ReportMetric(rep.PAtX["simrank"][0]*100, "simrank-P@1%")
	b.ReportMetric(rep.PAtX["evidence-based simrank"][0]*100, "evidence-P@1%")
	b.ReportMetric(rep.PAtX["weighted simrank"][0]*100, "weighted-P@1%")
}

// BenchmarkFig10PrecisionAt1 regenerates Figure 10 (positive class =
// grade 1 only).
func BenchmarkFig10PrecisionAt1(b *testing.B) {
	_, runs := benchDataset(b)
	var rep *experiments.PRReport
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep = experiments.Fig10(runs)
	}
	b.ReportMetric(rep.PAtX["pearson"][0]*100, "pearson-P@1%")
	b.ReportMetric(rep.PAtX["weighted simrank"][0]*100, "weighted-P@1%")
}

// BenchmarkFig11Depth regenerates Figure 11 and reports the fraction of
// queries with the full 5 rewrites.
func BenchmarkFig11Depth(b *testing.B) {
	_, runs := benchDataset(b)
	var rep *experiments.DepthReport
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep = experiments.Fig11(runs)
	}
	b.ReportMetric(rep.AtLeast["pearson"][4]*100, "pearson-depth5%")
	b.ReportMetric(rep.AtLeast["weighted simrank"][4]*100, "weighted-depth5%")
}

// BenchmarkFig12Desirability regenerates Figure 12 (the edge-removal
// desirability experiment) and reports per-method prediction accuracy.
func BenchmarkFig12Desirability(b *testing.B) {
	ds, _ := benchDataset(b)
	var rep *experiments.DesirabilityReport
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.Fig12(ds, 30, 777)
		if err != nil {
			b.Fatal(err)
		}
	}
	if rep.Trials > 0 {
		f := 100 / float64(rep.Trials)
		b.ReportMetric(float64(rep.Correct["simrank"])*f, "simrank-correct%")
		b.ReportMetric(float64(rep.Correct["evidence-based simrank"])*f, "evidence-correct%")
		b.ReportMetric(float64(rep.Correct["weighted simrank"])*f, "weighted-correct%")
	}
}

// --- Engine microbenchmarks -------------------------------------------

// benchGraph builds a mid-size synthetic click graph once.
var (
	graphOnce sync.Once
	benchG    *clickgraph.Graph
)

func midGraph(b *testing.B) *clickgraph.Graph {
	b.Helper()
	graphOnce.Do(func() {
		ds, err := experiments.BuildDataset(benchDatasetConfig())
		if err != nil {
			panic(err)
		}
		benchG = ds.Combined
	})
	return benchG
}

func benchEngine(b *testing.B, variant core.Variant, eps float64) {
	g := midGraph(b)
	cfg := core.DefaultConfig().WithVariant(variant)
	cfg.PruneEpsilon = eps
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineSimple times all-pairs simple SimRank on the combined
// dataset graph.
func BenchmarkEngineSimple(b *testing.B) { benchEngine(b, core.Simple, 1e-5) }

// BenchmarkEngineEvidence times all-pairs evidence-based SimRank.
func BenchmarkEngineEvidence(b *testing.B) { benchEngine(b, core.Evidence, 1e-5) }

// BenchmarkEngineWeighted times all-pairs weighted SimRank.
func BenchmarkEngineWeighted(b *testing.B) { benchEngine(b, core.Weighted, 1e-5) }

// BenchmarkLocalRewriteLatency times the online single-query path: the
// latency a front-end pays per incoming query.
func BenchmarkLocalRewriteLatency(b *testing.B) {
	g := midGraph(b)
	cfg := core.DefaultConfig().WithVariant(core.Weighted)
	lc := core.DefaultLocalConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := i % g.NumQueries()
		if _, err := core.LocalSimilarities(g, q, cfg, lc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPPRPush times one ACL approximate-PageRank push.
func BenchmarkPPRPush(b *testing.B) {
	g := midGraph(b)
	cfg := partition.DefaultPPRConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seed := partition.QueryNode(i % g.NumQueries())
		if _, err := partition.ApproximatePageRank(g, seed, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations ---------------------------------------------------------

// BenchmarkAblationEvidenceForms compares the geometric (Eq. 7.3) and
// exponential (Eq. 7.4) evidence forms; the paper found "no substantial
// differences", and the reported P@1 metrics let us check.
func BenchmarkAblationEvidenceForms(b *testing.B) {
	for _, form := range []core.EvidenceForm{core.EvidenceGeometric, core.EvidenceExponential} {
		b.Run(form.String(), func(b *testing.B) {
			g := midGraph(b)
			cfg := core.DefaultConfig().WithVariant(core.Evidence)
			cfg.EvidenceForm = form
			cfg.PruneEpsilon = 1e-5
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(g, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDecay sweeps the decay factor C (= C1 = C2).
func BenchmarkAblationDecay(b *testing.B) {
	for _, c := range []float64{0.6, 0.8, 0.9} {
		b.Run(formatC(c), func(b *testing.B) {
			g := midGraph(b)
			cfg := core.DefaultConfig().WithVariant(core.Weighted)
			cfg.C1, cfg.C2 = c, c
			cfg.PruneEpsilon = 1e-5
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(g, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func formatC(c float64) string {
	switch c {
	case 0.6:
		return "C=0.6"
	case 0.8:
		return "C=0.8"
	default:
		return "C=0.9"
	}
}

// BenchmarkAblationPruneEpsilon trades the sparse engine's accuracy for
// speed: larger epsilon prunes more pairs per iteration. The pair-count
// metric shows the table shrinking.
func BenchmarkAblationPruneEpsilon(b *testing.B) {
	for _, tc := range []struct {
		name string
		eps  float64
	}{{"exact", 0}, {"eps=1e-6", 1e-6}, {"eps=1e-4", 1e-4}, {"eps=1e-2", 1e-2}} {
		b.Run(tc.name, func(b *testing.B) {
			g := midGraph(b)
			cfg := core.DefaultConfig()
			cfg.PruneEpsilon = tc.eps
			var pairs int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.Run(g, cfg)
				if err != nil {
					b.Fatal(err)
				}
				pairs = res.QueryScores.Len()
			}
			b.ReportMetric(float64(pairs), "query-pairs")
		})
	}
}

// BenchmarkAblationSpread isolates the e^{-variance} spread factor inside
// weighted SimRank's transition model.
func BenchmarkAblationSpread(b *testing.B) {
	for _, tc := range []struct {
		name    string
		disable bool
	}{{"with-spread", false}, {"no-spread", true}} {
		b.Run(tc.name, func(b *testing.B) {
			ds, _ := benchDataset(b)
			trials := eval.BuildTrials(ds.Combined, core.ChannelRate, 25, 777)
			cfg := core.DefaultConfig().WithVariant(core.Weighted)
			cfg.DisableSpread = tc.disable
			cfg.PruneEpsilon = 1e-6
			lc := core.DefaultLocalConfig()
			lc.Radius = 6
			var correct, total int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				correct, total, err = eval.RunDesirability(trials, eval.LocalScorer(cfg, lc))
				if err != nil {
					b.Fatal(err)
				}
			}
			if total > 0 {
				b.ReportMetric(float64(correct)/float64(total)*100, "desirability-correct%")
			}
		})
	}
}

// BenchmarkAblationStrictEvidence compares pass-through evidence (the
// default, required to reproduce the paper's experiments) against the
// literal Equation 7.3 semantics, reporting coverage-style reach: how
// many query pairs carry a nonzero score.
func BenchmarkAblationStrictEvidence(b *testing.B) {
	for _, tc := range []struct {
		name   string
		strict bool
	}{{"pass-through", false}, {"strict-eq73", true}} {
		b.Run(tc.name, func(b *testing.B) {
			g := midGraph(b)
			cfg := core.DefaultConfig().WithVariant(core.Evidence)
			cfg.StrictEvidence = tc.strict
			cfg.PruneEpsilon = 1e-5
			var pairs int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.Run(g, cfg)
				if err != nil {
					b.Fatal(err)
				}
				pairs = res.QueryScores.Len()
			}
			b.ReportMetric(float64(pairs), "scored-pairs")
		})
	}
}

// BenchmarkWorkloadGeneration times universe + log simulation, the
// substrate the whole evaluation rests on.
func BenchmarkWorkloadGeneration(b *testing.B) {
	cfg := workload.DefaultUniverseConfig()
	cfg.Categories = 6
	for i := 0; i < b.N; i++ {
		if _, err := workload.BuildUniverse(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelEngine compares the serial and sharded all-pairs
// engines on the combined dataset graph. At this graph size the shard
// merge dominates and parallelism loses; the sharded engine pays off
// only when the per-iteration scatter is much larger than the merged
// table (bigger, denser graphs).
func BenchmarkParallelEngine(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			g := midGraph(b)
			cfg := core.DefaultConfig().WithVariant(core.Weighted)
			cfg.PruneEpsilon = 1e-5
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.RunParallel(g, cfg, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSpamRobustness injects the default click-fraud
// campaign and reports the top-5 rewrite overlap (clean vs polluted) for
// each weighting configuration: the §11 spam-resistance extension. The
// spread factor on the clicks channel is the damper (see package spam).
func BenchmarkAblationSpamRobustness(b *testing.B) {
	ds, _ := benchDataset(b)
	campaign := spam.DefaultCampaign()
	campaign.ClicksPerEdge = 2000
	inj, err := spam.Inject(ds.Combined, campaign)
	if err != nil {
		b.Fatal(err)
	}
	var rep *spam.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err = spam.Measure(ds.Combined, inj, spam.DefaultProbes(), 5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.MeanOverlap["weighted/clicks"]*100, "clicks-overlap%")
	b.ReportMetric(rep.MeanOverlap["weighted/rate"]*100, "rate-overlap%")
	b.ReportMetric(rep.MeanOverlap["simple"]*100, "simple-overlap%")
}
