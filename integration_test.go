package simrankpp_test

import (
	"bytes"
	"testing"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/core"
	"simrankpp/internal/eval"
	"simrankpp/internal/judge"
	"simrankpp/internal/partition"
	"simrankpp/internal/rewrite"
	"simrankpp/internal/sponsored"
	"simrankpp/internal/workload"
)

// TestEndToEndPipeline drives the whole system the way the binaries do:
// generate a log, serialize and reload the graph, extract subgraphs,
// compute similarities (serial, parallel, and from a persisted result),
// run the rewriting pipeline, and grade with the oracle — asserting
// cross-module consistency at every hop.
func TestEndToEndPipeline(t *testing.T) {
	// 1. Universe + simulated log.
	ucfg := workload.DefaultUniverseConfig()
	ucfg.Categories = 5
	ucfg.SubtopicsPerCategory = 4
	ucfg.IntentsPerSubtopic = 4
	u, err := workload.BuildUniverse(ucfg)
	if err != nil {
		t.Fatal(err)
	}
	scfg := sponsored.DefaultConfig()
	scfg.Sessions = 80000
	log, err := sponsored.Simulate(u, scfg)
	if err != nil {
		t.Fatal(err)
	}

	// 2. Graph round trip through the text format (cmd/clickgen ↔
	//    cmd/simrank handshake).
	var buf bytes.Buffer
	if err := clickgraph.Write(&buf, log.Graph); err != nil {
		t.Fatal(err)
	}
	g, err := clickgraph.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != log.Graph.NumEdges() || g.NumQueries() != log.Graph.NumQueries() {
		t.Fatalf("graph round trip lost data: %d/%d edges, %d/%d queries",
			g.NumEdges(), log.Graph.NumEdges(), g.NumQueries(), log.Graph.NumQueries())
	}

	// 3. Subgraph extraction covers disjoint node sets (cmd/partition).
	subs, err := partition.Extract(g, 3, partition.DefaultPPRConfig(), 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) == 0 {
		t.Fatal("no subgraphs extracted")
	}

	// 4. Similarity three ways: serial, parallel, and persisted-reloaded
	//    must agree.
	cfg := core.DefaultConfig().WithVariant(core.Weighted)
	cfg.PruneEpsilon = 1e-6
	serial, err := core.Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := core.RunParallel(g, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	var scores bytes.Buffer
	if err := core.WriteResult(&scores, serial); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.ReadResult(&scores, g)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	serial.QueryScores.Range(func(i, j int, v float64) bool {
		if pv := par.QuerySim(i, j); pv < v-1e-9 || pv > v+1e-9 {
			t.Fatalf("parallel sim(%d,%d) = %v, serial %v", i, j, pv, v)
		}
		if lv := loaded.QuerySim(i, j); lv != v {
			t.Fatalf("persisted sim(%d,%d) = %v, serial %v", i, j, lv, v)
		}
		checked++
		return checked < 500
	})
	if checked == 0 {
		t.Fatal("no query pairs scored")
	}

	// 5. Rewriting pipeline + editorial grading: rewrites must be
	//    bid-filtered, stem-distinct, depth-capped, and gradeable.
	pipe := rewrite.NewPipeline(g, log.BidTerms)
	src := &rewrite.ResultSource{Index: loaded}
	oracle := judge.New(u)
	sample := []int{}
	for q := 0; q < g.NumQueries() && len(sample) < 25; q += 7 {
		sample = append(sample, q)
	}
	var judged []eval.QueryJudgments
	for _, q := range sample {
		cands, err := pipe.Rewrite(src, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(cands) > 5 {
			t.Fatalf("depth cap violated: %d rewrites", len(cands))
		}
		qj := eval.QueryJudgments{Query: g.Query(q)}
		for _, c := range cands {
			if !log.BidTerms[c.Text] {
				t.Fatalf("unbid rewrite %q survived filtering", c.Text)
			}
			grade := oracle.Grade(qj.Query, c.Text)
			if grade < judge.GradePrecise || grade > judge.GradeMismatch {
				t.Fatalf("grade %d out of range", grade)
			}
			qj.Rewrites = append(qj.Rewrites, eval.Judged{Text: c.Text, Grade: grade})
		}
		judged = append(judged, qj)
	}

	// 6. Metrics must be computable and sane on the graded output.
	cov := eval.Coverage(judged)
	if cov <= 0 || cov > 1 {
		t.Fatalf("coverage %v out of range", cov)
	}
	pax := eval.PrecisionAtX(judged, 5, 2)
	for x, p := range pax {
		if p < 0 || p > 1 {
			t.Fatalf("P@%d = %v out of range", x+1, p)
		}
	}
}
