// Command partition extracts low-conductance subgraphs from a click graph
// with the Andersen-Chung-Lang algorithm, reproducing the paper's
// five-subgraph dataset construction (§9.2).
//
// Usage:
//
//	partition -graph FILE [-count 5] [-alpha 0.15] [-epsilon 1e-6]
//	          [-min-nodes 300] [-out-prefix subgraph]
//
// Each subgraph is written to <out-prefix>N.graph; statistics go to
// stdout in the shape of Table 5.
package main

import (
	"flag"
	"fmt"
	"os"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/partition"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "click graph file (required)")
		count     = flag.Int("count", 5, "subgraphs to extract")
		alpha     = flag.Float64("alpha", 0.15, "PPR teleport probability")
		epsilon   = flag.Float64("epsilon", 1e-6, "PPR push threshold")
		minNodes  = flag.Int("min-nodes", 300, "minimum nodes per subgraph")
		outPrefix = flag.String("out-prefix", "subgraph", "output file prefix")
	)
	flag.Parse()
	if *graphPath == "" {
		fatal(fmt.Errorf("-graph is required"))
	}
	f, err := os.Open(*graphPath)
	if err != nil {
		fatal(err)
	}
	g, err := clickgraph.Read(f)
	if err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}

	subs, err := partition.Extract(g, *count, partition.PPRConfig{Alpha: *alpha, Epsilon: *epsilon}, *minNodes)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-12s  %10s  %10s  %10s  %12s\n", "", "# Queries", "# Ads", "# Edges", "Conductance")
	var tq, ta, te int
	for i, s := range subs {
		st := clickgraph.ComputeStats(s.Graph)
		fmt.Printf("subgraph %-3d  %10d  %10d  %10d  %12.4f\n", i+1, st.Queries, st.Ads, st.Edges, s.Conductance)
		tq += st.Queries
		ta += st.Ads
		te += st.Edges
		path := fmt.Sprintf("%s%d.graph", *outPrefix, i+1)
		out, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := clickgraph.Write(out, s.Graph); err != nil {
			fatal(err)
		}
		if err := out.Close(); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("%-12s  %10d  %10d  %10d\n", "Total", tq, ta, te)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "partition:", err)
	os.Exit(1)
}
