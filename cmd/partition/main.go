// Command partition extracts low-conductance subgraphs from a click graph
// with the Andersen-Chung-Lang algorithm, reproducing the paper's
// five-subgraph dataset construction (§9.2).
//
// Usage:
//
//	partition -graph FILE [-count 5] [-alpha 0.15] [-epsilon 1e-6]
//	          [-min-nodes 300] [-out-prefix subgraph]
//	partition -graph FILE -plan [-max-shard-nodes 4096] [-min-cut-nodes 64]
//
// Each subgraph is written to <out-prefix>N.graph; statistics go to
// stdout in the shape of Table 5.
//
// With -plan, no subgraphs are written: the full shard plan that
// core.RunSharded (simrank -sharded) would execute is built — whole
// components packed under the node budget, oversized components carved
// with ACL sweep cuts — and printed as a table of per-shard sizes, cut
// edges and conductance, so a plan can be inspected before committing to
// a sharded run.
package main

import (
	"flag"
	"fmt"
	"os"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/partition"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "click graph file (required)")
		count     = flag.Int("count", 5, "subgraphs to extract")
		alpha     = flag.Float64("alpha", 0.15, "PPR teleport probability")
		epsilon   = flag.Float64("epsilon", 1e-6, "PPR push threshold")
		minNodes  = flag.Int("min-nodes", 300, "minimum nodes per subgraph")
		outPrefix = flag.String("out-prefix", "subgraph", "output file prefix")
		planMode  = flag.Bool("plan", false, "print the shard plan RunSharded would execute instead of extracting subgraphs")
		maxShard  = flag.Int("max-shard-nodes", 4096, "plan mode: shard node budget")
		minCut    = flag.Int("min-cut-nodes", 64, "plan mode: minimum ACL sweep-cut prefix")
	)
	flag.Parse()
	if *graphPath == "" {
		fatal(fmt.Errorf("-graph is required"))
	}
	f, err := os.Open(*graphPath)
	if err != nil {
		fatal(err)
	}
	g, err := clickgraph.Read(f)
	if err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}

	if *planMode {
		pcfg := partition.PlanConfig{
			MaxShardNodes: *maxShard,
			MinCutNodes:   *minCut,
			PPR:           partition.PPRConfig{Alpha: *alpha, Epsilon: *epsilon},
		}
		plan, err := partition.BuildPlan(g, pcfg)
		if err != nil {
			fatal(err)
		}
		if err := plan.WriteSummary(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	subs, err := partition.Extract(g, *count, partition.PPRConfig{Alpha: *alpha, Epsilon: *epsilon}, *minNodes)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-12s  %10s  %10s  %10s  %12s\n", "", "# Queries", "# Ads", "# Edges", "Conductance")
	var tq, ta, te int
	for i, s := range subs {
		st := clickgraph.ComputeStats(s.Graph)
		fmt.Printf("subgraph %-3d  %10d  %10d  %10d  %12.4f\n", i+1, st.Queries, st.Ads, st.Edges, s.Conductance)
		tq += st.Queries
		ta += st.Ads
		te += st.Edges
		path := fmt.Sprintf("%s%d.graph", *outPrefix, i+1)
		out, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := clickgraph.Write(out, s.Graph); err != nil {
			fatal(err)
		}
		if err := out.Close(); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("%-12s  %10d  %10d  %10d\n", "Total", tq, ta, te)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "partition:", err)
	os.Exit(1)
}
