// Command simrank computes query rewrites from a click graph file: the
// front-end of Figure 2 as a batch tool.
//
// Usage:
//
//	simrank -graph FILE [-method simple|evidence|weighted|pearson]
//	        [-query Q | -all] [-top K] [-c 0.8] [-iterations 7]
//	        [-bids FILE] [-strict-evidence]
//	        [-sharded] [-shard-max-nodes 4096] [-shard-workers 0]
//	        [-plan FILE] [-save-plan FILE]
//	        [-save SNAPSHOT]
//	simrank -graph FILE -refresh PREV [-save NEXT] [-save-plan FILE]
//	        [-shard-workers 0] [-generations 3]
//	        [-workers host:port,host:port,...]
//	simrank -rollback SNAPSHOT
//	simrank -load SNAPSHOT [-query Q | -all] [-top K] [-bids FILE]
//
// With -query it prints rewrites for one query; with -all it prints the
// top rewrites for every query. When -bids is given, rewrites are passed
// through the full §9.3 pipeline (stem dedup + bid filtering + depth 5).
//
// With -sharded, the graph is decomposed per §9.2 (whole components
// packed under the node budget, oversized components ACL-cut) and one
// engine runs per shard on a bounded worker pool; the plan summary goes
// to stderr before the run. Component-exact plans reproduce the
// monolithic scores bit for bit; carved plans drop cross-shard evidence.
// -save-plan persists the decomposition and -plan loads one instead of
// re-running BuildPlan (the ACL clustering is the O(graph) part of
// planning, and a stable graph keeps the same plan run after run).
//
// With -save, the computed scores are also written as a binary snapshot
// (per-shard segments under -sharded) that cmd/simrankd serves online;
// with -load, rewrites are answered straight from such a snapshot — no
// graph file and no engine run, the batch/online split of Figure 2.
//
// With -refresh, the new graph is diffed against the previous snapshot
// (shard fingerprints in its directory; no BuildPlan runs), only the
// changed shards are recomputed — warm-started from the previous scores,
// under the engine settings recorded in the snapshot header — and the
// next snapshot is written by byte-copying every clean shard's segments
// from the previous file. -save defaults to overwriting PREV in place
// (atomic rename), which a running simrankd picks up on SIGHUP.
//
// With -workers, the dirty shards are dispatched as leases to a fleet of
// simrank-worker processes instead of recomputed in this process: each
// lease carries the shard's subgraph, warm-start scores, and the
// recorded engine configuration, and comes back as CRC'd segment bytes.
// Leases that time out are re-dispatched with capped exponential
// backoff, stragglers are hedged to a second worker, and shards the
// fleet cannot complete fall back to local recompute — so a fleet-wide
// outage degrades to exactly the single-machine refresh. The assembled
// snapshot is byte-identical to what the local path writes.
//
// Every refresh is journaled as a numbered generation beside the output
// snapshot (NEXT.gens/: snapshot bytes + CRC'd manifest recording the
// generation id, source-graph fingerprint and whole-file hash), the
// last -generations of them retained. A refresh that fails — or a
// process killed at any instant — leaves the previous generation intact
// and the serving file untouched or restored; stale temp files are
// swept at the next refresh. -rollback re-points a serving snapshot at
// the last good generation before the current one (the operator's
// escape hatch after a bad refresh); a SIGHUP to simrankd then serves
// it. See OPERATIONS.md for the full procedures.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/core"
	"simrankpp/internal/dist"
	"simrankpp/internal/partition"
	"simrankpp/internal/rewrite"
	"simrankpp/internal/serve"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "click graph file (required)")
		method    = flag.String("method", "weighted", "simple|evidence|weighted|pearson")
		query     = flag.String("query", "", "single query to rewrite")
		all       = flag.Bool("all", false, "rewrite every query in the graph")
		top       = flag.Int("top", 5, "rewrites to print per query")
		c         = flag.Float64("c", 0.8, "SimRank decay factor (C1 = C2)")
		iters     = flag.Int("iterations", 7, "SimRank iterations")
		prune     = flag.Float64("prune", 1e-5, "sparse-engine pruning threshold (0 = exact)")
		bidsPath  = flag.String("bids", "", "bid-term list file enabling the full filtering pipeline")
		strict    = flag.Bool("strict-evidence", false, "apply Equation 7.3 literally (zero evidence for no common ads)")
		sharded   = flag.Bool("sharded", false, "decompose the graph and run one engine per shard")
		shardMax  = flag.Int("shard-max-nodes", 4096, "sharded: shard node budget (components above it are ACL-cut)")
		shardWork = flag.Int("shard-workers", 0, "sharded: concurrent shard engines (0 = GOMAXPROCS)")
		planPath  = flag.String("plan", "", "sharded: load this partition plan instead of running BuildPlan")
		planSave  = flag.String("save-plan", "", "write the partition plan (built, loaded, or refresh-projected) to this file")
		savePath  = flag.String("save", "", "write the computed scores as a serving snapshot")
		saveTopK  = flag.Int("rewrite-topk", serve.DefaultRewriteTopK, "save: precomputed rewrite list depth stored in the snapshot (0 disables the section)")
		loadPath  = flag.String("load", "", "answer from a snapshot instead of running an engine (-graph not needed)")
		refresh   = flag.String("refresh", "", "incrementally refresh this snapshot against -graph (recompute dirty shards only)")
		rollback  = flag.String("rollback", "", "re-point this serving snapshot at the last good journaled generation")
		keepGens  = flag.Int("generations", serve.DefaultKeepGenerations, "refresh: journaled generations retained beside the snapshot")
		fleet     = flag.String("workers", "", "refresh: comma-separated simrank-worker addresses (host:port or http://host:port) to dispatch dirty shards to")
	)
	flag.Parse()
	if *rollback != "" {
		if *graphPath != "" || *loadPath != "" || *refresh != "" || *query != "" || *all || *savePath != "" {
			fatal(fmt.Errorf("-rollback stands alone: it only re-points %s at its last good generation", *rollback))
		}
		if err := runRollback(*rollback, *keepGens); err != nil {
			fatal(err)
		}
		return
	}
	if *loadPath != "" && *savePath != "" {
		fatal(fmt.Errorf("-save makes no sense with -load: the snapshot already exists"))
	}
	if *refresh != "" {
		if *graphPath == "" {
			fatal(fmt.Errorf("-refresh needs -graph (the new click log)"))
		}
		if *loadPath != "" {
			fatal(fmt.Errorf("-refresh and -load are mutually exclusive"))
		}
		if *query != "" || *all {
			fatal(fmt.Errorf("-refresh only writes the next snapshot; serve queries with -load afterwards"))
		}
		// A refresh runs under the engine settings recorded in the
		// previous snapshot — clean shards' scores were computed with
		// them, so dirty shards must be too. Engine flags on this path
		// would be silently ignored; reject them instead.
		var conflicting []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "method", "c", "iterations", "prune", "strict-evidence",
				"sharded", "shard-max-nodes", "plan", "rewrite-topk":
				conflicting = append(conflicting, "-"+f.Name)
			}
		})
		if len(conflicting) > 0 {
			fatal(fmt.Errorf("-refresh reuses the engine settings recorded in the snapshot; drop %s (start a fresh -save to change them)",
				strings.Join(conflicting, ", ")))
		}
		// The previous snapshot records the bid-term set its precomputed
		// rewrite lists were filtered under; the refresh must rebuild dirty
		// shards' lists with the same set, so -bids here must restate it.
		var refreshBids map[string]bool
		if *bidsPath != "" {
			var err error
			refreshBids, err = rewrite.ReadBidTermsFile(*bidsPath)
			if err != nil {
				fatal(err)
			}
		}
		if err := runRefresh(*graphPath, *refresh, *savePath, *planSave, *shardWork, *keepGens, fleetURLs(*fleet), refreshBids); err != nil {
			fatal(err)
		}
		return
	}
	if *fleet != "" {
		fatal(fmt.Errorf("-workers only applies to -refresh (full builds run in-process)"))
	}
	if *loadPath == "" && *graphPath == "" {
		fatal(fmt.Errorf("-graph is required (or -load a snapshot)"))
	}
	if !*all && *query == "" && *savePath == "" && *planSave == "" {
		fatal(fmt.Errorf("give -query or -all (or just -save / -save-plan)"))
	}

	var bidTerms map[string]bool
	var err error
	if *bidsPath != "" {
		bidTerms, err = rewrite.ReadBidTermsFile(*bidsPath)
		if err != nil {
			fatal(err)
		}
	}

	// The serving surface: a snapshot or a fresh engine run, behind the
	// same ScoreIndex interface the pipeline consumes.
	var src rewrite.Source
	var names interface {
		rewrite.QueryNames
		QueryID(string) (int, bool)
	}
	if *loadPath != "" {
		snap, err := serve.OpenSnapshot(*loadPath)
		if err != nil {
			fatal(err)
		}
		defer snap.Close()
		src = &rewrite.ResultSource{Index: snap}
		names = snap
	} else {
		f, err := os.Open(*graphPath)
		if err != nil {
			fatal(err)
		}
		g, err := clickgraph.Read(f)
		if err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		if *planSave != "" && *savePath == "" && !*all && *query == "" {
			// Plan-only mode: decompose (or validate a loaded plan) and
			// persist it without running any engine.
			plan, err := obtainPlan(g, *sharded, *shardMax, *planPath)
			if err != nil {
				fatal(err)
			}
			if err := plan.WriteSummary(os.Stderr); err != nil {
				fatal(err)
			}
			if err := partition.WritePlanFile(*planSave, plan); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "simrank: wrote plan %s (%d shards)\n", *planSave, len(plan.Shards))
			return
		}
		src, err = buildSource(g, *method, *c, *iters, *prune, *strict, *sharded, *shardMax, *shardWork, *savePath, *planPath, *planSave, *saveTopK, bidTerms)
		if err != nil {
			fatal(err)
		}
		names = g
	}

	if *query == "" && !*all {
		return // -save only: snapshot written by buildSource
	}
	pipe := rewrite.NewPipeline(names, bidTerms)
	pipe.MaxRewrites = *top

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	printFor := func(qid int) error {
		cands, err := pipe.Rewrite(src, qid)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s\n", names.Query(qid))
		for i, cand := range cands {
			fmt.Fprintf(out, "  %d. %-40s %.6f\n", i+1, cand.Text, cand.Score)
		}
		return nil
	}
	if *all {
		for qid := 0; qid < names.NumQueries(); qid++ {
			if err := printFor(qid); err != nil {
				fatal(err)
			}
		}
		return
	}
	qid, ok := names.QueryID(*query)
	if !ok {
		fatal(fmt.Errorf("query %q not in index", *query))
	}
	if err := printFor(qid); err != nil {
		fatal(err)
	}
}

// obtainPlan loads a saved plan (validating it against g) or builds one.
func obtainPlan(g *clickgraph.Graph, sharded bool, shardMax int, planPath string) (*partition.Plan, error) {
	if planPath != "" {
		plan, err := partition.ReadPlanFile(planPath)
		if err != nil {
			return nil, err
		}
		if err := plan.Validate(g); err != nil {
			return nil, fmt.Errorf("%s does not cover this graph (stale plan? use -refresh for churned graphs): %w", planPath, err)
		}
		// Validate only checks node coverage — the graph's edges and
		// weights may have drifted since the plan was built. Re-derive
		// the edge-dependent bookkeeping (cut edges, exactness, and
		// above all the shard fingerprints a -save snapshot persists)
		// from the graph the engines will actually run on, so a later
		// -refresh never diffs against another generation's fingerprints.
		plan.Reannotate(g)
		return plan, nil
	}
	if !sharded {
		return nil, fmt.Errorf("plans only exist for -sharded runs")
	}
	pcfg := partition.DefaultPlanConfig()
	pcfg.MaxShardNodes = shardMax
	return partition.BuildPlan(g, pcfg)
}

// runRefresh is the -refresh path: diff the new graph against the
// previous snapshot, recompute only dirty shards (warm-started), and
// write the next generation reusing clean segments. The write is
// journaled through the generation store: the pre-refresh serving file
// is adopted as a rollback target, the new snapshot lands in the
// journal first, and only a fully-written, manifest-covered generation
// is atomically published to the serving path — so a refresh that
// fails (or dies) at any instant leaves the previous generation
// loadable, and the failure path re-points serving at the last good
// generation when the serving file itself turns out damaged.
func runRefresh(graphPath, prevPath, savePath, planSave string, workers, keepGens int, fleet []string, bids map[string]bool) error {
	if savePath == "" {
		savePath = prevPath // atomic in-place generation swap
	}
	gs := serve.NewGenerationStore(savePath, keepGens)
	// One journal writer at a time: a concurrent -refresh or a running
	// ingest controller holds the advisory lock, and interleaving
	// generation writes with it would corrupt the journal's ordering.
	release, err := gs.Lock()
	if err != nil {
		return err
	}
	defer release()
	if swept, err := gs.SweepTemp(); err != nil {
		return err
	} else if swept > 0 {
		fmt.Fprintf(os.Stderr, "simrank: swept %d stale temp file(s) from an interrupted refresh\n", swept)
	}
	f, err := os.Open(graphPath)
	if err != nil {
		return err
	}
	g, err := clickgraph.Read(f)
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	prev, err := serve.OpenSnapshot(prevPath)
	if err != nil {
		return err
	}
	defer prev.Close()
	// Journal the pre-refresh serving state so even the first managed
	// refresh has a rollback target.
	if _, err := gs.Adopt(); err != nil {
		return err
	}

	var st serve.RefreshStats
	var diff *partition.Diff
	if len(fleet) > 0 {
		st, diff, err = refreshGenerationFleet(gs, g, prev, workers, fleet, bids)
	} else {
		st, diff, err = refreshGeneration(gs, g, prev, workers, bids)
	}
	if err != nil {
		// The journal protects the serving file by construction, but a
		// bad disk can damage it independently; verify and restore.
		if gen, rerr := gs.RestoreServing(); rerr == nil && gen != nil {
			fmt.Fprintf(os.Stderr, "simrank: serving snapshot was damaged; restored generation %d\n", gen.ID)
		}
		return err
	}
	fmt.Fprintf(os.Stderr, "simrank: wrote snapshot %s (re-encoded %d KiB over %d dirty shards, byte-copied %d KiB over %d clean)\n",
		savePath, st.BytesReencoded/1024, st.DirtyShards, st.BytesCopied/1024, st.CleanShards)
	if pruned, err := gs.Prune(); err != nil {
		return err
	} else if pruned > 0 {
		fmt.Fprintf(os.Stderr, "simrank: pruned %d old generation(s), keeping %d\n", pruned, keepGens)
	}
	if planSave != "" {
		if err := partition.WritePlanFile(planSave, diff.Plan); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "simrank: wrote plan %s (%d shards)\n", planSave, len(diff.Plan.Shards))
	}
	return nil
}

// refreshGeneration runs the dirty-shard recompute and commits +
// publishes the result as the next journaled generation.
func refreshGeneration(gs *serve.GenerationStore, g *clickgraph.Graph, prev *serve.Snapshot, workers int, bids map[string]bool) (serve.RefreshStats, *partition.Diff, error) {
	var st serve.RefreshStats
	res, diff, err := serve.RunRefresh(g, prev, workers)
	if err != nil {
		return st, nil, err
	}
	// The projected plan inherits the previous decomposition and only
	// grows (new nodes adopt a neighbor's shard, nothing is ever split),
	// so surface the largest shard: when it drifts well past the budget
	// the plan was built with, it is time to re-plan with a fresh -save.
	largest := 0
	var fingerprint uint64
	for i := range diff.Plan.Shards {
		if n := diff.Plan.Shards[i].Nodes(); n > largest {
			largest = n
		}
		fingerprint ^= res.ShardStats[i].Fingerprint
	}
	fmt.Fprintf(os.Stderr, "simrank: refresh diff: %d clean, %d dirty of %d shards (largest %d nodes); %d new, %d moved nodes\n",
		diff.CleanShards, diff.DirtyShards, len(diff.Plan.Shards), largest,
		diff.NewQueries+diff.NewAds, diff.MovedQueries+diff.MovedAds)
	gen, err := gs.Commit(diff.DirtyShards, fingerprint, func(w io.Writer) error {
		var werr error
		st, werr = serve.RefreshSnapshot(w, prev, res, diff.Dirty, bids)
		return werr
	})
	if err != nil {
		return st, nil, err
	}
	if err := gs.Publish(gen); err != nil {
		return st, nil, err
	}
	return st, diff, nil
}

// fleetURLs normalizes the -workers list into base URLs: bare host:port
// entries get an http scheme, trailing slashes are dropped.
func fleetURLs(s string) []string {
	var out []string
	for _, w := range strings.Split(s, ",") {
		w = strings.TrimSpace(w)
		if w == "" {
			continue
		}
		if !strings.Contains(w, "://") {
			w = "http://" + w
		}
		out = append(out, strings.TrimSuffix(w, "/"))
	}
	return out
}

// refreshGenerationFleet is refreshGeneration's distributed twin: dirty
// shards go to the -workers fleet as leases (with retry, hedging, and
// local fallback), and the assembled generation is committed and
// published through the same journal. The bytes are identical to the
// local path's by the determinism contract the dist tests pin.
func refreshGenerationFleet(gs *serve.GenerationStore, g *clickgraph.Graph, prev *serve.Snapshot, workers int, fleet []string, bids map[string]bool) (serve.RefreshStats, *partition.Diff, error) {
	c := dist.NewCoordinator(fleet, dist.Options{
		LocalWorkers: workers,
		BidTerms:     bids,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "simrank: "+format+"\n", args...)
		},
	})
	st, diff, fleetRes, _, err := dist.RefreshGeneration(context.Background(), c, gs, g, prev)
	if err != nil {
		return st, diff, err
	}
	s := fleetRes.Stats
	fmt.Fprintf(os.Stderr, "simrank: fleet refresh: %d shard(s) remote, %d local fallback; %d retries, %d hedges, %d duplicate completions, %d worker(s) marked dead\n",
		s.RemoteShards, s.LocalFallbackShards, s.Retries, s.Hedges, s.DuplicateWins, s.WorkerDeaths)
	return st, diff, nil
}

// runRollback is the -rollback path: re-point the serving snapshot at
// the last good journaled generation before the current one.
func runRollback(path string, keepGens int) error {
	gs := serve.NewGenerationStore(path, keepGens)
	release, err := gs.Lock()
	if err != nil {
		return err
	}
	defer release()
	if swept, err := gs.SweepTemp(); err != nil {
		return err
	} else if swept > 0 {
		fmt.Fprintf(os.Stderr, "simrank: swept %d stale temp file(s)\n", swept)
	}
	gen, err := gs.Rollback()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "simrank: rolled %s back to generation %d (created %s, fingerprint %016x); SIGHUP simrankd to serve it\n",
		path, gen.ID, gen.CreatedAt.Format("2006-01-02T15:04:05Z"), gen.Fingerprint)
	return nil
}

func buildSource(g *clickgraph.Graph, method string, c float64, iters int, prune float64, strict, sharded bool, shardMax, shardWorkers int, savePath, planPath, planSave string, rewriteTopK int, bids map[string]bool) (rewrite.Source, error) {
	if planSave != "" && !sharded && planPath == "" {
		// Fail loudly rather than printing rewrites and silently writing
		// no plan file.
		return nil, fmt.Errorf("-save-plan needs -sharded (or -plan): plans only exist for sharded runs")
	}
	if method == "pearson" {
		if savePath != "" {
			return nil, fmt.Errorf("-save needs a SimRank method: pearson has no score table to snapshot")
		}
		return &rewrite.PearsonSource{Graph: g, Channel: core.ChannelRate}, nil
	}
	cfg := core.DefaultConfig()
	cfg.C1, cfg.C2 = c, c
	cfg.Iterations = iters
	cfg.PruneEpsilon = prune
	cfg.StrictEvidence = strict
	switch method {
	case "simple":
		cfg.Variant = core.Simple
	case "evidence":
		cfg.Variant = core.Evidence
	case "weighted":
		cfg.Variant = core.Weighted
	default:
		return nil, fmt.Errorf("unknown method %q", method)
	}
	var res *core.Result
	var err error
	if sharded || planPath != "" {
		plan, perr := obtainPlan(g, sharded, shardMax, planPath)
		if perr != nil {
			return nil, perr
		}
		if werr := plan.WriteSummary(os.Stderr); werr != nil {
			return nil, werr
		}
		if planSave != "" {
			if werr := partition.WritePlanFile(planSave, plan); werr != nil {
				return nil, werr
			}
			fmt.Fprintf(os.Stderr, "simrank: wrote plan %s (%d shards)\n", planSave, len(plan.Shards))
		}
		// Retaining the per-shard tables lets -save emit one snapshot
		// segment per shard straight from the engines' local outputs.
		res, err = core.RunSharded(g, cfg, plan, core.ShardOptions{
			Workers:           shardWorkers,
			RetainShardScores: savePath != "",
		})
	} else {
		res, err = core.Run(g, cfg)
	}
	if err != nil {
		return nil, err
	}
	if savePath != "" {
		// The snapshot's precomputed rewrite lists are filtered under the
		// same -bids set that this process serves with, so -load (and a
		// simrankd pointed at the file with the same bid list) answers
		// from the section byte-identically.
		if err := serve.WriteSnapshotFileTopK(savePath, res, serve.TopKOptions{K: rewriteTopK, BidTerms: bids}); err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "simrank: wrote snapshot %s (%d shards)\n", savePath, max(1, len(res.ShardScores)))
	}
	return &rewrite.ResultSource{Index: res}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simrank:", err)
	os.Exit(1)
}
