// Command simrank computes query rewrites from a click graph file: the
// front-end of Figure 2 as a batch tool.
//
// Usage:
//
//	simrank -graph FILE [-method simple|evidence|weighted|pearson]
//	        [-query Q | -all] [-top K] [-c 0.8] [-iterations 7]
//	        [-bids FILE] [-strict-evidence]
//	        [-sharded] [-shard-max-nodes 4096] [-shard-workers 0]
//	        [-save SNAPSHOT]
//	simrank -load SNAPSHOT [-query Q | -all] [-top K] [-bids FILE]
//
// With -query it prints rewrites for one query; with -all it prints the
// top rewrites for every query. When -bids is given, rewrites are passed
// through the full §9.3 pipeline (stem dedup + bid filtering + depth 5).
//
// With -sharded, the graph is decomposed per §9.2 (whole components
// packed under the node budget, oversized components ACL-cut) and one
// engine runs per shard on a bounded worker pool; the plan summary goes
// to stderr before the run. Component-exact plans reproduce the
// monolithic scores bit for bit; carved plans drop cross-shard evidence.
//
// With -save, the computed scores are also written as a binary snapshot
// (per-shard segments under -sharded) that cmd/simrankd serves online;
// with -load, rewrites are answered straight from such a snapshot — no
// graph file and no engine run, the batch/online split of Figure 2.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/core"
	"simrankpp/internal/partition"
	"simrankpp/internal/rewrite"
	"simrankpp/internal/serve"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "click graph file (required)")
		method    = flag.String("method", "weighted", "simple|evidence|weighted|pearson")
		query     = flag.String("query", "", "single query to rewrite")
		all       = flag.Bool("all", false, "rewrite every query in the graph")
		top       = flag.Int("top", 5, "rewrites to print per query")
		c         = flag.Float64("c", 0.8, "SimRank decay factor (C1 = C2)")
		iters     = flag.Int("iterations", 7, "SimRank iterations")
		prune     = flag.Float64("prune", 1e-5, "sparse-engine pruning threshold (0 = exact)")
		bidsPath  = flag.String("bids", "", "bid-term list file enabling the full filtering pipeline")
		strict    = flag.Bool("strict-evidence", false, "apply Equation 7.3 literally (zero evidence for no common ads)")
		sharded   = flag.Bool("sharded", false, "decompose the graph and run one engine per shard")
		shardMax  = flag.Int("shard-max-nodes", 4096, "sharded: shard node budget (components above it are ACL-cut)")
		shardWork = flag.Int("shard-workers", 0, "sharded: concurrent shard engines (0 = GOMAXPROCS)")
		savePath  = flag.String("save", "", "write the computed scores as a serving snapshot")
		loadPath  = flag.String("load", "", "answer from a snapshot instead of running an engine (-graph not needed)")
	)
	flag.Parse()
	if *loadPath != "" && *savePath != "" {
		fatal(fmt.Errorf("-save makes no sense with -load: the snapshot already exists"))
	}
	if *loadPath == "" && *graphPath == "" {
		fatal(fmt.Errorf("-graph is required (or -load a snapshot)"))
	}
	if !*all && *query == "" && *savePath == "" {
		fatal(fmt.Errorf("give -query or -all (or just -save)"))
	}

	var bidTerms map[string]bool
	var err error
	if *bidsPath != "" {
		bidTerms, err = rewrite.ReadBidTermsFile(*bidsPath)
		if err != nil {
			fatal(err)
		}
	}

	// The serving surface: a snapshot or a fresh engine run, behind the
	// same ScoreIndex interface the pipeline consumes.
	var src rewrite.Source
	var names interface {
		rewrite.QueryNames
		QueryID(string) (int, bool)
	}
	if *loadPath != "" {
		snap, err := serve.OpenSnapshot(*loadPath)
		if err != nil {
			fatal(err)
		}
		defer snap.Close()
		src = &rewrite.ResultSource{Index: snap}
		names = snap
	} else {
		f, err := os.Open(*graphPath)
		if err != nil {
			fatal(err)
		}
		g, err := clickgraph.Read(f)
		if err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		src, err = buildSource(g, *method, *c, *iters, *prune, *strict, *sharded, *shardMax, *shardWork, *savePath)
		if err != nil {
			fatal(err)
		}
		names = g
	}

	if *query == "" && !*all {
		return // -save only: snapshot written by buildSource
	}
	pipe := rewrite.NewPipeline(names, bidTerms)
	pipe.MaxRewrites = *top

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	printFor := func(qid int) error {
		cands, err := pipe.Rewrite(src, qid)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s\n", names.Query(qid))
		for i, cand := range cands {
			fmt.Fprintf(out, "  %d. %-40s %.6f\n", i+1, cand.Text, cand.Score)
		}
		return nil
	}
	if *all {
		for qid := 0; qid < names.NumQueries(); qid++ {
			if err := printFor(qid); err != nil {
				fatal(err)
			}
		}
		return
	}
	qid, ok := names.QueryID(*query)
	if !ok {
		fatal(fmt.Errorf("query %q not in index", *query))
	}
	if err := printFor(qid); err != nil {
		fatal(err)
	}
}

func buildSource(g *clickgraph.Graph, method string, c float64, iters int, prune float64, strict, sharded bool, shardMax, shardWorkers int, savePath string) (rewrite.Source, error) {
	if method == "pearson" {
		if savePath != "" {
			return nil, fmt.Errorf("-save needs a SimRank method: pearson has no score table to snapshot")
		}
		return &rewrite.PearsonSource{Graph: g, Channel: core.ChannelRate}, nil
	}
	cfg := core.DefaultConfig()
	cfg.C1, cfg.C2 = c, c
	cfg.Iterations = iters
	cfg.PruneEpsilon = prune
	cfg.StrictEvidence = strict
	switch method {
	case "simple":
		cfg.Variant = core.Simple
	case "evidence":
		cfg.Variant = core.Evidence
	case "weighted":
		cfg.Variant = core.Weighted
	default:
		return nil, fmt.Errorf("unknown method %q", method)
	}
	var res *core.Result
	var err error
	if sharded {
		pcfg := partition.DefaultPlanConfig()
		pcfg.MaxShardNodes = shardMax
		plan, perr := partition.BuildPlan(g, pcfg)
		if perr != nil {
			return nil, perr
		}
		if werr := plan.WriteSummary(os.Stderr); werr != nil {
			return nil, werr
		}
		// Retaining the per-shard tables lets -save emit one snapshot
		// segment per shard straight from the engines' local outputs.
		res, err = core.RunSharded(g, cfg, plan, core.ShardOptions{
			Workers:           shardWorkers,
			RetainShardScores: savePath != "",
		})
	} else {
		res, err = core.Run(g, cfg)
	}
	if err != nil {
		return nil, err
	}
	if savePath != "" {
		if err := serve.WriteSnapshotFile(savePath, res); err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "simrank: wrote snapshot %s (%d shards)\n", savePath, max(1, len(res.ShardScores)))
	}
	return &rewrite.ResultSource{Index: res}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simrank:", err)
	os.Exit(1)
}
