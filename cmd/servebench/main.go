// Command servebench measures the serving path end to end and records
// the results as JSON so the repository tracks its serving latency PR
// over PR, the way corebench tracks the engine passes:
//
//	go run ./cmd/servebench -o BENCH_serve.json
//
// It scores the multi-cluster shard workload once, persists it with a
// precomputed top-k rewrite section, and drives the real HTTP handler in
// process at 1, 8, and 64 concurrent clients, on two configurations:
//
//   - zerocopy: memory-mapped snapshot, segments binary-searched in
//     place, /rewrite answered from the precomputed section;
//   - heap: segments decoded into heap tables, /rewrite running the live
//     pipeline per request (the pre-optimization baseline).
//
// Each (endpoint, path, clients) cell records p50/p99/p999 latency,
// throughput, and allocs per request for GET /rewrite, GET /similar, and
// POST /batch. The headline gate is rewrite_p99_speedup — the worst-case
// (across concurrencies) ratio of heap p99 to zerocopy p99 on /rewrite.
//
// `-compare old.json` diffs the fresh run against a previous record and
// exits nonzero when a metric regressed past `-compare-threshold`
// (speedup ratios always; absolute ns rows only when the workloads
// match). CI runs `-smoke -compare BENCH_serve.json -compare-threshold
// 6` on every push. See PERF.md's zero-copy serving section for how to
// read the numbers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"reflect"
	"runtime"
	"time"

	"simrankpp/internal/core"
	"simrankpp/internal/serve"
)

type report struct {
	GeneratedAt string                `json:"generated_at"`
	GoVersion   string                `json:"go_version"`
	GOMAXPROCS  int                   `json:"gomaxprocs"`
	Workload    core.ShardBenchConfig `json:"workload"`
	serve.ServeBenchResult
}

func main() {
	out := flag.String("o", "BENCH_serve.json", "output path")
	smoke := flag.Bool("smoke", false, "seconds-scale CI workload (reduced graph and request counts)")
	ops := flag.Int("ops", 1200, "requests per matrix cell")
	comparePath := flag.String("compare", "", "previous BENCH_serve.json to diff against (exit 1 on regression)")
	compareThreshold := flag.Float64("compare-threshold", 6, "regression factor that fails -compare")
	flag.Parse()

	bc := serve.ServeBenchWorkload(*smoke)
	if *smoke && *ops > 300 {
		*ops = 300
	}
	concurrencies := []int{1, 8, 64}

	fmt.Fprintf(os.Stderr, "servebench: %d clusters + giant, budget %d nodes, %d ops/cell at clients %v\n",
		bc.Clusters, bc.MaxShardNodes, *ops, concurrencies)
	res, err := serve.RunServeBench(bc, concurrencies, *ops, func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "servebench: mmapped=%v  rewrite p99 speedup %.1fx  similar %.1fx  batch %.1fx (worst concurrency)\n",
		res.Mmapped, res.RewriteP99Speedup, res.SimilarP99Speedup, res.BatchP99Speedup)

	rep := report{
		GeneratedAt:      time.Now().UTC().Format(time.RFC3339),
		GoVersion:        runtime.Version(),
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		Workload:         bc,
		ServeBenchResult: res,
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "servebench: wrote %s\n", *out)

	if *comparePath != "" {
		old, err := loadReport(*comparePath)
		if err != nil {
			fatal(err)
		}
		if regs := compareReports(os.Stderr, old, &rep, *compareThreshold); len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "servebench: %d metric(s) regressed more than %.2fx vs %s\n",
				len(regs), *compareThreshold, *comparePath)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "servebench: no regression past %.2fx vs %s\n", *compareThreshold, *comparePath)
	}
}

// compareRow is one metric's old/new pairing (same shape as corebench's:
// dimensionless speedups are always compared, absolute ns rows only when
// the workloads match).
type compareRow struct {
	name         string
	old, new     float64
	higherBetter bool
}

func (r compareRow) worseFactor() float64 {
	if r.old <= 0 || r.new <= 0 {
		return 1
	}
	if r.higherBetter {
		return r.old / r.new
	}
	return r.new / r.old
}

func compareReports(w io.Writer, old, cur *report, threshold float64) []compareRow {
	rows := []compareRow{
		{name: "rewrite_p99_speedup", old: old.RewriteP99Speedup, new: cur.RewriteP99Speedup, higherBetter: true},
		{name: "similar_p99_speedup", old: old.SimilarP99Speedup, new: cur.SimilarP99Speedup, higherBetter: true},
		{name: "batch_p99_speedup", old: old.BatchP99Speedup, new: cur.BatchP99Speedup, higherBetter: true},
	}
	if reflect.DeepEqual(old.Workload, cur.Workload) {
		oldP99 := map[string]float64{}
		for _, c := range old.Cases {
			oldP99[fmt.Sprintf("%s/%s/%d", c.Endpoint, c.Path, c.Clients)] = c.NsP99
		}
		for _, c := range cur.Cases {
			key := fmt.Sprintf("%s/%s/%d", c.Endpoint, c.Path, c.Clients)
			if o, ok := oldP99[key]; ok {
				rows = append(rows, compareRow{name: key + " p99", old: o, new: c.NsP99})
			}
		}
	} else {
		fmt.Fprintf(w, "servebench: workloads differ (old %+v); comparing speedup ratios only\n", old.Workload)
	}

	fmt.Fprintf(w, "servebench: comparison (threshold %.2fx)\n", threshold)
	fmt.Fprintf(w, "  %-36s %14s %14s %9s\n", "metric", "old", "new", "factor")
	var regressions []compareRow
	for _, r := range rows {
		worse := r.worseFactor()
		mark := ""
		if worse > threshold {
			mark = "  REGRESSION"
			regressions = append(regressions, r)
		}
		fmt.Fprintf(w, "  %-36s %14.1f %14.1f %8.2fx%s\n", r.name, r.old, r.new, worse, mark)
	}
	return regressions
}

func loadReport(path string) (*report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rep report
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "servebench:", err)
	os.Exit(1)
}
