// Command simrankd is the serving half of the paper's Figure 2 deployment
// split: a long-running HTTP/JSON front-end that answers query-rewrite
// requests from a precomputed SimRank++ snapshot, never touching an
// engine. Scores are computed offline (cmd/simrank -save, optionally
// -sharded) and the daemon routes each query to its shard's score segment,
// loading segments lazily and caching hot responses in a bounded LRU.
//
// On Linux the snapshot is memory-mapped and segments are binary-searched
// in place — no per-segment decode, no heap copy of the scores
// (-mmap=false falls back to heap tables). When the snapshot carries a
// precomputed top-k rewrite section built under this daemon's -bids set,
// /rewrite answers straight from it, byte-identically to the live
// pipeline (-precomputed=false forces the pipeline).
//
// # Usage
//
//	simrankd -snapshot FILE [-addr :8080] [-top 5] [-max-top 100]
//	         [-cache 4096] [-bids FILE] [-preload]
//	         [-inflight 256] [-timeout 5s]
//	         [-mmap=false] [-precomputed=false]
//
// # Endpoints
//
//	GET /rewrite?q=QUERY[&top=K]   filtered rewrites (stem dedup, bid
//	                               filtering when -bids is given, depth K)
//	GET /similar?q=QUERY[&top=K]   raw ranked similar queries
//	GET /similar?ad=AD[&top=K]     raw ranked similar ads
//	POST /batch                    many rewrite lookups in one request
//	                               ({"queries":[...],"top":K})
//	GET /stats                     serving counters + snapshot metadata
//	GET /healthz                   liveness probe (process up)
//	GET /readyz                    readiness: ok/degraded/unready with
//	                               quarantined-shard detail
//
// # Example
//
//	simrank -graph clicks.graph -method weighted -sharded -save scores.snap
//	simrankd -snapshot scores.snap -addr :8080 &
//	curl 'localhost:8080/rewrite?q=camera&top=3'
//
// # Reload
//
// On SIGHUP the daemon re-opens -snapshot (typically after the batch side
// atomically replaced the file — a full `simrank -save` or an incremental
// `simrank -refresh`) and swaps it in without dropping in-flight
// requests. A failed reload keeps the old snapshot serving; when a
// generation journal exists beside the snapshot (simrank -refresh writes
// one), the daemon additionally falls back to the last good journaled
// generation, so a corrupt new file rolls the fleet back instead of
// freezing it on a stale index. /stats reports the loaded generation
// (generated_at, fingerprint, and the dirty-shard count of the refresh
// that produced it), so an operator can verify a SIGHUP actually swapped
// generations.
//
// # Fault tolerance
//
// A score segment that fails its CRC on lazy load is quarantined with
// capped exponential backoff while every other shard keeps answering;
// /readyz turns "degraded" (HTTP 200, with the quarantined shards
// listed) and recovers once the fault clears. Scoring requests beyond
// -inflight are shed with 503 + Retry-After rather than queued, each
// admitted request carries the -timeout deadline through the rewrite
// path, and a handler panic costs one 500, not the daemon. Operational
// procedures — generation layout, rollback, tuning — are in
// OPERATIONS.md at the repository root.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"simrankpp/internal/rewrite"
	"simrankpp/internal/serve"
)

func main() {
	var (
		snapPath = flag.String("snapshot", "", "snapshot file written by simrank -save (required)")
		addr     = flag.String("addr", ":8080", "listen address")
		top      = flag.Int("top", 5, "default rewrites per query")
		maxTop   = flag.Int("max-top", 100, "cap on the per-request top parameter")
		cache    = flag.Int("cache", 4096, "hot-query LRU entries (0 disables)")
		bidsPath = flag.String("bids", "", "bid-term list file enabling bid filtering on /rewrite")
		preload  = flag.Bool("preload", false, "verify and load every score segment at startup")
		inflight = flag.Int("inflight", 256, "max concurrent scoring requests before shedding 503 (0 disables)")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-request deadline on scoring endpoints (0 disables)")
		useMmap  = flag.Bool("mmap", true, "serve score segments in place from a memory-mapped snapshot (false: decode into heap tables)")
		precomp  = flag.Bool("precomputed", true, "answer /rewrite from the snapshot's precomputed top-k section when parameters match (false: always run the live pipeline)")
	)
	flag.Parse()
	if *snapPath == "" {
		fatal(fmt.Errorf("-snapshot is required"))
	}

	cfg := serve.DefaultServerConfig()
	cfg.DefaultTop = *top
	cfg.MaxTop = *maxTop
	cfg.CacheSize = *cache
	cfg.MaxInFlight = *inflight
	cfg.RequestTimeout = *timeout
	cfg.DisablePrecomputed = !*precomp
	if *bidsPath != "" {
		terms, err := rewrite.ReadBidTermsFile(*bidsPath)
		if err != nil {
			fatal(err)
		}
		cfg.BidTerms = terms
	}

	openPath := func(path string) (serve.ScoreIndex, error) {
		openSnap := serve.OpenSnapshot
		if !*useMmap {
			openSnap = serve.OpenSnapshotHeap
		}
		snap, err := openSnap(path)
		if err != nil {
			return nil, err
		}
		if *preload {
			if err := snap.PreloadAll(); err != nil {
				snap.Close()
				return nil, err
			}
		}
		return snap, nil
	}
	open := func() (serve.ScoreIndex, error) { return openPath(*snapPath) }
	// Reload fallback: when the (just-replaced) snapshot fails to open,
	// serve the last good journaled generation instead — the read-side
	// half of generation rollback.
	fallback := func() (serve.ScoreIndex, error) {
		gen, err := serve.NewGenerationStore(*snapPath, 0).LastGood()
		if err != nil {
			return nil, err
		}
		idx, err := openPath(gen.SnapPath)
		if err != nil {
			return nil, err
		}
		log.Printf("simrankd: serving journaled generation %d (%s)", gen.ID, gen.SnapPath)
		return idx, nil
	}
	idx, err := open()
	if err != nil {
		log.Printf("simrankd: %s failed to open: %v", *snapPath, err)
		if idx, err = fallback(); err != nil {
			fatal(err)
		}
	}
	snap := idx.(*serve.Snapshot)
	meta := snap.Meta()
	gen := "full build"
	if meta.LastRefreshDirty >= 0 {
		gen = fmt.Sprintf("refresh, %d dirty shards", meta.LastRefreshDirty)
	}
	log.Printf("simrankd: %s: %d queries, %d ads, %d shards, %d+%d pairs (%s, %d iterations; generation %s, %s, fingerprint %s)",
		*snapPath, meta.NumQueries, meta.NumAds, meta.Shards,
		meta.QueryPairs, meta.AdPairs, meta.Variant, meta.Iterations,
		meta.GeneratedAt.Format(time.RFC3339), gen, meta.Fingerprint)

	srv := serve.NewServer(idx, cfg)
	// Resolve the served snapshot's journal generation id (if a journal
	// exists beside it) so /readyz and /stats report a full generation
	// identity — the fleet-agreement key a gateway compares. Matching is
	// by graph fingerprint: newest journaled generation of that graph.
	resolveGen := func(idx serve.ScoreIndex) uint64 {
		snap, ok := idx.(*serve.Snapshot)
		if !ok {
			return 0
		}
		gens, err := serve.NewGenerationStore(*snapPath, 0).List()
		if err != nil {
			return 0
		}
		want, id := snap.Meta().Fingerprint, uint64(0)
		for _, g := range gens {
			if fmt.Sprintf("%016x", g.Fingerprint) == want && g.ID > id {
				id = g.ID
			}
		}
		return id
	}
	srv.SetGenerationID(resolveGen(idx))
	reopen := func() (serve.ScoreIndex, error) {
		idx, err := open()
		if err == nil {
			srv.SetGenerationID(resolveGen(idx))
		}
		return idx, err
	}
	refallback := func() (serve.ScoreIndex, error) {
		idx, err := fallback()
		if err == nil {
			srv.SetGenerationID(resolveGen(idx))
		}
		return idx, err
	}
	srv.ReloadOnSIGHUP(reopen, refallback, func(old serve.ScoreIndex) {
		if c, ok := old.(*serve.Snapshot); ok {
			c.Close()
		}
	}, log.Printf)

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	done := make(chan os.Signal, 1)
	drained := make(chan struct{})
	var shutdownErr error
	signal.Notify(done, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-done
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			// The drain deadline expired with requests still running:
			// say so — silently dropping them hides a latency problem.
			log.Printf("simrankd: drain deadline (5s) expired with %d scoring requests still in flight: %v",
				srv.InFlight(), err)
			shutdownErr = err
		}
		close(drained)
	}()
	log.Printf("simrankd: serving on %s", *addr)
	err = httpSrv.ListenAndServe()
	if err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
	// ListenAndServe returns as soon as Shutdown starts; wait for the
	// drain to finish so in-flight requests complete before exit, and
	// propagate a failed drain as a nonzero exit.
	if err == http.ErrServerClosed {
		<-drained
		if shutdownErr != nil {
			fatal(fmt.Errorf("shutdown: %w", shutdownErr))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simrankd:", err)
	os.Exit(1)
}
