// Command simrankd is the serving half of the paper's Figure 2 deployment
// split: a long-running HTTP/JSON front-end that answers query-rewrite
// requests from a precomputed SimRank++ snapshot, never touching an
// engine. Scores are computed offline (cmd/simrank -save, optionally
// -sharded) and the daemon routes each query to its shard's score segment,
// loading segments lazily and caching hot responses in a bounded LRU.
//
// # Usage
//
//	simrankd -snapshot FILE [-addr :8080] [-top 5] [-max-top 100]
//	         [-cache 4096] [-bids FILE] [-preload]
//
// # Endpoints
//
//	GET /rewrite?q=QUERY[&top=K]   filtered rewrites (stem dedup, bid
//	                               filtering when -bids is given, depth K)
//	GET /similar?q=QUERY[&top=K]   raw ranked similar queries
//	GET /similar?ad=AD[&top=K]     raw ranked similar ads
//	GET /stats                     serving counters + snapshot metadata
//	GET /healthz                   liveness probe
//
// # Example
//
//	simrank -graph clicks.graph -method weighted -sharded -save scores.snap
//	simrankd -snapshot scores.snap -addr :8080 &
//	curl 'localhost:8080/rewrite?q=camera&top=3'
//
// # Reload
//
// On SIGHUP the daemon re-opens -snapshot (typically after the batch side
// atomically replaced the file — a full `simrank -save` or an incremental
// `simrank -refresh`) and swaps it in without dropping in-flight
// requests; a failed reload keeps the old snapshot serving. /stats
// reports the loaded generation (generated_at, fingerprint, and the
// dirty-shard count of the refresh that produced it), so an operator can
// verify a SIGHUP actually swapped generations.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"simrankpp/internal/rewrite"
	"simrankpp/internal/serve"
)

func main() {
	var (
		snapPath = flag.String("snapshot", "", "snapshot file written by simrank -save (required)")
		addr     = flag.String("addr", ":8080", "listen address")
		top      = flag.Int("top", 5, "default rewrites per query")
		maxTop   = flag.Int("max-top", 100, "cap on the per-request top parameter")
		cache    = flag.Int("cache", 4096, "hot-query LRU entries (0 disables)")
		bidsPath = flag.String("bids", "", "bid-term list file enabling bid filtering on /rewrite")
		preload  = flag.Bool("preload", false, "verify and load every score segment at startup")
	)
	flag.Parse()
	if *snapPath == "" {
		fatal(fmt.Errorf("-snapshot is required"))
	}

	cfg := serve.DefaultServerConfig()
	cfg.DefaultTop = *top
	cfg.MaxTop = *maxTop
	cfg.CacheSize = *cache
	if *bidsPath != "" {
		terms, err := rewrite.ReadBidTermsFile(*bidsPath)
		if err != nil {
			fatal(err)
		}
		cfg.BidTerms = terms
	}

	open := func() (serve.ScoreIndex, error) {
		snap, err := serve.OpenSnapshot(*snapPath)
		if err != nil {
			return nil, err
		}
		if *preload {
			if err := snap.PreloadAll(); err != nil {
				snap.Close()
				return nil, err
			}
		}
		return snap, nil
	}
	idx, err := open()
	if err != nil {
		fatal(err)
	}
	snap := idx.(*serve.Snapshot)
	meta := snap.Meta()
	gen := "full build"
	if meta.LastRefreshDirty >= 0 {
		gen = fmt.Sprintf("refresh, %d dirty shards", meta.LastRefreshDirty)
	}
	log.Printf("simrankd: %s: %d queries, %d ads, %d shards, %d+%d pairs (%s, %d iterations; generation %s, %s, fingerprint %s)",
		*snapPath, meta.NumQueries, meta.NumAds, meta.Shards,
		meta.QueryPairs, meta.AdPairs, meta.Variant, meta.Iterations,
		meta.GeneratedAt.Format(time.RFC3339), gen, meta.Fingerprint)

	srv := serve.NewServer(idx, cfg)
	srv.ReloadOnSIGHUP(open, func(old serve.ScoreIndex) {
		if c, ok := old.(*serve.Snapshot); ok {
			c.Close()
		}
	}, log.Printf)

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	done := make(chan os.Signal, 1)
	drained := make(chan struct{})
	signal.Notify(done, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-done
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
		close(drained)
	}()
	log.Printf("simrankd: serving on %s", *addr)
	err = httpSrv.ListenAndServe()
	if err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
	// ListenAndServe returns as soon as Shutdown starts; wait for the
	// drain to finish so in-flight requests complete before exit.
	if err == http.ErrServerClosed {
		<-drained
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simrankd:", err)
	os.Exit(1)
}
