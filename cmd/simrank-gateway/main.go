// Command simrank-gateway fronts a replicated simrankd fleet: one
// address for /rewrite, /similar and /stats, fanned across N replicas
// with health-aware, generation-consistent routing. It is the read-side
// counterpart of simrank-worker — together they close the loop on the
// paper's production deployment: distributed refresh writes generations,
// a replicated fleet serves them, and this gateway keeps the fleet
// looking like one consistent daemon while replicas fail, straggle and
// roll between generations.
//
// # Usage
//
//	simrank-gateway -backends URL[#SHARDS][,URL...] [-addr :8090]
//	                [-snapshot FILE] [-quorum 0.51]
//	                [-probe-interval 2s] [-attempts 3]
//	                [-hedge-quantile 0.95] [-hedge-after 100ms]
//	                [-breaker-fails 3] [-breaker-cooldown 5s]
//	                [-timeout 5s]
//
// Each backend is a simrankd base URL, optionally suffixed with
// "#0,3,7" naming the shards a partitioned replica holds (hot shards
// may be listed on several replicas). -snapshot points at the served
// snapshot file; the gateway reads only its route map (header +
// directory, no scores) to route shard-affine. Without it, any replica
// may answer any query.
//
// # Endpoints
//
//	GET /rewrite?...   proxied to the fleet (backend contract unchanged)
//	GET /similar?...   proxied to the fleet
//	GET /stats         gateway counters, rollout state, per-backend health
//	GET /readyz        ok / degraded / unready (503) for the fleet as a whole
//	GET /healthz       gateway process liveness
//
// # Behavior
//
// The gateway probes each replica's /readyz on a jittered interval and
// routes reads only to replicas serving the pinned snapshot generation:
// rollouts cut over once a -quorum fraction of replicas report the new
// generation, so clients never see mixed-generation answers while a
// SIGHUP sweep walks the fleet. Failed reads retry on another replica
// with capped equal-jitter backoff (honoring backend Retry-After
// hints), reads straggling past the fleet's recent latency percentile
// are hedged to a second replica, and replicas failing consecutively
// are circuit-broken for a cool-down. With no replica able to answer,
// the gateway returns 503 + Retry-After. The operational runbook is the
// "Replicated serving" section of OPERATIONS.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"simrankpp/internal/route"
	"simrankpp/internal/serve"
)

func main() {
	var (
		backends      = flag.String("backends", "", "comma-separated simrankd base URLs, each optionally '#shard,shard' suffixed (required)")
		addr          = flag.String("addr", ":8090", "listen address")
		snapPath      = flag.String("snapshot", "", "served snapshot file; enables shard-affine routing via its route map")
		quorum        = flag.Float64("quorum", 0.51, "fraction of replicas that must report a new generation before cutover")
		probeInterval = flag.Duration("probe-interval", 2*time.Second, "backend /readyz probe cadence (jittered)")
		attempts      = flag.Int("attempts", 3, "max dispatch rounds per read across replicas")
		hedgeQ        = flag.Float64("hedge-quantile", 0.95, "completed-read latency quantile past which reads are hedged")
		hedgeAfter    = flag.Duration("hedge-after", 100*time.Millisecond, "floor on the hedge delay")
		breakerFails  = flag.Int("breaker-fails", 3, "consecutive read failures that open a replica's circuit")
		breakerCool   = flag.Duration("breaker-cooldown", 5*time.Second, "how long an opened circuit keeps a replica out of rotation")
		timeout       = flag.Duration("timeout", 5*time.Second, "per-read deadline, hedges and retries included")
	)
	flag.Parse()
	if *backends == "" {
		fatal(fmt.Errorf("-backends is required"))
	}
	specs, err := route.ParseBackendList(*backends)
	if err != nil {
		fatal(err)
	}

	opt := route.Options{
		Backends:        specs,
		Quorum:          *quorum,
		ProbeInterval:   *probeInterval,
		MaxAttempts:     *attempts,
		HedgeQuantile:   *hedgeQ,
		HedgeAfter:      *hedgeAfter,
		BreakerFails:    *breakerFails,
		BreakerCooldown: *breakerCool,
		RequestTimeout:  *timeout,
		Logf:            log.Printf,
	}
	if *snapPath != "" {
		snap, err := serve.OpenSnapshot(*snapPath)
		if err != nil {
			fatal(fmt.Errorf("-snapshot: %w", err))
		}
		defer snap.Close()
		opt.Router = snap
		log.Printf("simrank-gateway: shard-affine over %d shards (%s)", snap.NumShards(), *snapPath)
	}
	gw, err := route.New(opt)
	if err != nil {
		fatal(err)
	}

	ctx, stop := context.WithCancel(context.Background())
	defer stop()
	gw.ProbeAll(ctx)
	go gw.Run(ctx)
	if pin := gw.Pinned(); pin != "" {
		log.Printf("simrank-gateway: %d backends, pinned generation %s", len(specs), pin)
	} else {
		log.Printf("simrank-gateway: %d backends, no serveable replica yet (degraded until one probes healthy)", len(specs))
	}

	httpSrv := &http.Server{Addr: *addr, Handler: gw.Handler()}
	done := make(chan os.Signal, 1)
	signal.Notify(done, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-done
		stop()
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(sctx)
	}()
	log.Printf("simrank-gateway: serving on %s", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simrank-gateway:", err)
	os.Exit(1)
}
