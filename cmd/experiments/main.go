// Command experiments regenerates the tables and figures of the
// Simrank++ paper's evaluation section (§10) on the synthetic dataset.
//
// Usage:
//
//	experiments [-run all|table1|table2|table3|table4|table5|
//	             fig8|fig9|fig10|fig11|fig12] [-seed N] [-trials 50]
//	            [-sessions N] [-sample 120]
//
// Toy tables (1-4) are exact reproductions of the paper's numbers; the
// dataset experiments (table5, fig8-fig12) run on the simulated log and
// reproduce the paper's qualitative shape. See EXPERIMENTS.md for the
// paper-vs-measured record.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"simrankpp/internal/experiments"
)

func main() {
	var (
		run      = flag.String("run", "all", "which experiment to run")
		seed     = flag.Uint64("seed", 0, "dataset seed override (0 = built-in defaults)")
		trials   = flag.Int("trials", 50, "desirability trials (fig12)")
		sessions = flag.Int("sessions", 600000, "simulated sessions")
		sample   = flag.Int("sample", 120, "evaluation sample cap")
	)
	flag.Parse()

	want := map[string]bool{}
	for _, r := range strings.Split(*run, ",") {
		want[strings.TrimSpace(r)] = true
	}
	has := func(name string) bool { return want["all"] || want[name] }

	if has("table1") {
		fmt.Println(experiments.Table1())
	}
	if has("table2") {
		t, err := experiments.Table2()
		if err != nil {
			fatal(err)
		}
		fmt.Println(t)
	}
	if has("table3") {
		t, err := experiments.Table3(7)
		if err != nil {
			fatal(err)
		}
		fmt.Println(t)
	}
	if has("table4") {
		t, err := experiments.Table4(7)
		if err != nil {
			fatal(err)
		}
		fmt.Println(t)
	}

	needDataset := has("table5") || has("fig8") || has("fig9") || has("fig10") || has("fig11") || has("fig12")
	if !needDataset {
		return
	}
	cfg := experiments.DefaultDatasetConfig()
	if *seed != 0 {
		cfg.Universe.Seed = *seed
		cfg.Sponsored.Seed = *seed + 1
		cfg.SampleSeed = *seed + 2
	}
	cfg.Sponsored.Sessions = *sessions
	cfg.MaxSample = *sample
	fmt.Fprintln(os.Stderr, "building dataset (universe + simulated log + ACL extraction)...")
	ds, err := experiments.BuildDataset(cfg)
	if err != nil {
		fatal(err)
	}
	if has("table5") {
		fmt.Println(experiments.Table5(ds))
	}
	if has("fig8") || has("fig9") || has("fig10") || has("fig11") {
		fmt.Fprintln(os.Stderr, "running the four rewriting methods over the sample...")
		runs, err := experiments.RunMethods(ds)
		if err != nil {
			fatal(err)
		}
		if has("fig8") {
			fmt.Println(experiments.Fig8(ds, runs))
		}
		if has("fig9") {
			fmt.Println(experiments.Fig9(runs))
		}
		if has("fig10") {
			fmt.Println(experiments.Fig10(runs))
		}
		if has("fig11") {
			fmt.Println(experiments.Fig11(runs))
		}
	}
	if has("fig12") {
		fmt.Fprintln(os.Stderr, "running the desirability edge-removal experiment...")
		trialSeed := uint64(4)
		if *seed != 0 {
			trialSeed = *seed + 3
		}
		rep, err := experiments.Fig12(ds, *trials, trialSeed)
		if err != nil {
			fatal(err)
		}
		fmt.Println(rep)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
