// Command corebench runs the engine pass micro-benchmarks (map baseline
// vs frontier-scatter vs the default row-major passes, serial and
// parallel) and records the results as JSON so the repository tracks its
// performance trajectory PR over PR:
//
//	go run ./cmd/corebench -o BENCH_core.json
//
// The benchmark bodies live in internal/core (shared with `go test
// -bench`); this command owns the testing.Benchmark harness so the
// testing package stays out of production binaries. See PERF.md for how
// to read the numbers and how to profile regressions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"simrankpp/internal/core"
)

type passResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type report struct {
	GeneratedAt     string               `json:"generated_at"`
	GoVersion       string               `json:"go_version"`
	GOMAXPROCS      int                  `json:"gomaxprocs"`
	Workload        core.PassBenchConfig `json:"workload"`
	Results         []passResult         `json:"results"`
	SpeedupVsMap    map[string]float64   `json:"speedup_vs_map"`
	AllocRatioVsMap map[string]float64   `json:"alloc_ratio_vs_map"`
}

func main() {
	bc := core.DefaultPassBenchConfig()
	out := flag.String("o", "BENCH_core.json", "output path")
	flag.Uint64Var(&bc.Seed, "seed", bc.Seed, "workload seed")
	flag.IntVar(&bc.Queries, "queries", bc.Queries, "graph queries")
	flag.IntVar(&bc.Ads, "ads", bc.Ads, "graph ads")
	flag.IntVar(&bc.Edges, "edges", bc.Edges, "graph edges")
	flag.IntVar(&bc.Workers, "workers", bc.Workers, "parallel pass workers")
	flag.Parse()

	fmt.Fprintf(os.Stderr, "corebench: %d queries, %d ads, %d edges, %d workers\n",
		bc.Queries, bc.Ads, bc.Edges, bc.Workers)
	var results []passResult
	for _, c := range core.PassBenchCases(bc) {
		body := c.Body
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			body(b.N)
		})
		pr := passResult{
			Name:        c.Name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		results = append(results, pr)
		fmt.Fprintf(os.Stderr, "  %-24s %12.0f ns/op %10d B/op %6d allocs/op\n",
			pr.Name, pr.NsPerOp, pr.BytesPerOp, pr.AllocsPerOp)
	}

	rep := report{
		GeneratedAt:     time.Now().UTC().Format(time.RFC3339),
		GoVersion:       runtime.Version(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Workload:        bc,
		Results:         results,
		SpeedupVsMap:    map[string]float64{},
		AllocRatioVsMap: map[string]float64{},
	}
	base := map[string]passResult{}
	for _, r := range results {
		if strings.HasSuffix(r.Name, "/map") {
			base[strings.TrimSuffix(r.Name, "/map")] = r
		}
	}
	for _, r := range results {
		group, variant, _ := strings.Cut(r.Name, "/")
		if variant == "map" {
			continue
		}
		if b, ok := base[group]; ok && r.NsPerOp > 0 {
			rep.SpeedupVsMap[r.Name] = b.NsPerOp / r.NsPerOp
			if r.AllocsPerOp > 0 {
				rep.AllocRatioVsMap[r.Name] = float64(b.AllocsPerOp) / float64(r.AllocsPerOp)
			}
		}
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "corebench:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "corebench:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "corebench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "corebench: wrote %s\n", *out)
}
