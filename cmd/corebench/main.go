// Command corebench runs the engine pass micro-benchmarks (map baseline
// vs frontier-scatter vs the default row-major passes, serial and
// parallel) and records the results as JSON so the repository tracks its
// performance trajectory PR over PR:
//
//	go run ./cmd/corebench -o BENCH_core.json
//
// The benchmark bodies live in internal/core (shared with `go test
// -bench`); this command owns the testing.Benchmark harness so the
// testing package stays out of production binaries. See PERF.md for how
// to read the numbers and how to profile regressions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"simrankpp/internal/core"
	"simrankpp/internal/ingest"
	"simrankpp/internal/serve"
	"simrankpp/internal/workload"
)

type passResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// iterSample is one engine iteration of a weighted multi-iteration run:
// wall time plus how many output rows the change-tracked delta skip copied
// forward instead of recomputing.
type iterSample struct {
	Iter          int     `json:"iter"`
	Ns            float64 `json:"ns"`
	QuerySkipped  int     `json:"query_rows_skipped"`
	AdSkipped     int     `json:"ad_rows_skipped"`
	QuerySkipRate float64 `json:"query_skip_rate"`
	AdSkipRate    float64 `json:"ad_skip_rate"`
}

// shardSection records the multi-cluster shard workload: the monolithic
// vs sharded comparison plus the plan shape it ran under.
type shardSection struct {
	Workload core.ShardBenchConfig `json:"workload"`
	core.ShardBenchResult
	// Speedup is monolithic/sharded wall time; SPARatio is the monolithic
	// dense-accumulator footprint over the largest single shard's.
	Speedup  float64 `json:"speedup"`
	SPARatio float64 `json:"spa_ratio"`
}

type report struct {
	GeneratedAt string               `json:"generated_at"`
	GoVersion   string               `json:"go_version"`
	GOMAXPROCS  int                  `json:"gomaxprocs"`
	Workload    core.PassBenchConfig `json:"workload"`
	Results     []passResult         `json:"results"`
	// SpeedupVsBaseline / AllocRatioVsBaseline compare each variant to
	// its group's baseline (baselineVariant): the map passes for
	// SimplePass/WeightedPass, the Add-based build for EvidenceBuild.
	SpeedupVsBaseline    map[string]float64 `json:"speedup_vs_baseline"`
	AllocRatioVsBaseline map[string]float64 `json:"alloc_ratio_vs_baseline"`
	// WeightedIterations holds one 20-iteration weighted-run trajectory
	// per delta-skip mode (core.IterTrajectoryModes), so the record shows
	// row skipping making later iterations cheaper as rows freeze.
	WeightedIterations map[string][]iterSample `json:"weighted_iterations"`
	// ShardWorkload records the multi-cluster monolithic-vs-sharded
	// comparison (wall clock, iteration trajectories, peak accumulator
	// footprints). See PERF.md's shard memory model section.
	ShardWorkload *shardSection `json:"shard_workload,omitempty"`
	// Snapshot records the serving path on the same workload: persisting
	// the sharded result, opening the snapshot (header + string table
	// only), and warm per-query lookups. See PERF.md's serving section.
	Snapshot *serve.SnapshotBenchResult `json:"snapshot,omitempty"`
	// Refresh records the incremental-refresh trajectory on the evolving
	// multi-cluster workload: per churn step, full rebuild vs incremental
	// (diff + warm dirty-only run + segment-reusing rewrite) wall clock
	// and the re-encoded/copied byte split. See PERF.md's refresh section.
	Refresh *serve.RefreshBenchResult `json:"refresh,omitempty"`
	// Ingest records the streaming-ingestion freshness-vs-cost curve: the
	// same deterministic click stream folded through the WAL-backed
	// controller at several cadences (records per fold), with per-cadence
	// fold cost, dirty/clean shard split, and modeled staleness. See
	// OPERATIONS.md's "Continuous ingestion" runbook.
	Ingest *ingest.IngestBenchResult `json:"ingest,omitempty"`
}

// baselineVariant names the variant each benchmark group's speedups are
// computed against: the map-based passes, and the Add-based evidence
// build.
var baselineVariant = map[string]string{
	"SimplePass":    "map",
	"WeightedPass":  "map",
	"EvidenceBuild": "add",
}

func main() {
	bc := core.DefaultPassBenchConfig()
	out := flag.String("o", "BENCH_core.json", "output path")
	smoke := flag.Bool("smoke", false, "seconds-scale CI workloads (reduced graphs and trajectories)")
	shardReps := flag.Int("shard-reps", 3, "repetitions of the shard workload comparison (best kept)")
	refreshSteps := flag.Int("refresh-steps", 4, "churn steps of the incremental-refresh workload")
	comparePath := flag.String("compare", "", "previous BENCH_core.json to diff against (exit 1 on regression)")
	compareThreshold := flag.Float64("compare-threshold", 1.5, "regression factor that fails -compare")
	flag.Uint64Var(&bc.Seed, "seed", bc.Seed, "workload seed")
	flag.IntVar(&bc.Queries, "queries", bc.Queries, "graph queries")
	flag.IntVar(&bc.Ads, "ads", bc.Ads, "graph ads")
	flag.IntVar(&bc.Edges, "edges", bc.Edges, "graph edges")
	flag.IntVar(&bc.Workers, "workers", bc.Workers, "parallel pass workers")
	flag.Parse()

	trajectoryIters := 20
	sbc := core.DefaultShardBenchConfig()
	if *smoke {
		bc.Queries, bc.Ads, bc.Edges = 120, 90, 900
		trajectoryIters = 8
		sbc = core.SmokeShardBenchConfig()
		if *shardReps > 1 {
			*shardReps = 1
		}
		if *refreshSteps > 2 {
			*refreshSteps = 2
		}
	}

	fmt.Fprintf(os.Stderr, "corebench: %d queries, %d ads, %d edges, %d workers\n",
		bc.Queries, bc.Ads, bc.Edges, bc.Workers)
	cases := core.PassBenchCases(bc)
	cases = append(cases, core.EvidenceBuildBenchCases(bc)...)
	var results []passResult
	for _, c := range cases {
		body := c.Body
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			body(b.N)
		})
		pr := passResult{
			Name:        c.Name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		results = append(results, pr)
		fmt.Fprintf(os.Stderr, "  %-24s %12.0f ns/op %10d B/op %6d allocs/op\n",
			pr.Name, pr.NsPerOp, pr.BytesPerOp, pr.AllocsPerOp)
	}

	trajectories := map[string][]iterSample{}
	for _, m := range core.IterTrajectoryModes {
		stats := core.IterationTrajectory(bc, trajectoryIters, m.SkipTol, m.Channel)
		samples := make([]iterSample, len(stats))
		for i, s := range stats {
			samples[i] = iterSample{
				Iter:         i + 1,
				Ns:           float64(s.Duration.Nanoseconds()),
				QuerySkipped: s.QueryRowsSkipped,
				AdSkipped:    s.AdRowsSkipped,
			}
			if s.QueryRows > 0 {
				samples[i].QuerySkipRate = float64(s.QueryRowsSkipped) / float64(s.QueryRows)
			}
			if s.AdRows > 0 {
				samples[i].AdSkipRate = float64(s.AdRowsSkipped) / float64(s.AdRows)
			}
		}
		trajectories[m.Name] = samples
		first, last := samples[0], samples[len(samples)-1]
		fmt.Fprintf(os.Stderr, "  WeightedIterations/%-19s iter1 %9.0f ns  iter%d %9.0f ns  final skip q=%.0f%% a=%.0f%%\n",
			m.Name, first.Ns, last.Iter, last.Ns, 100*last.QuerySkipRate, 100*last.AdSkipRate)
	}

	fmt.Fprintf(os.Stderr, "corebench: shard workload: %d clusters + giant, budget %d nodes, %d reps\n",
		sbc.Clusters, sbc.MaxShardNodes, *shardReps)
	sres, _, shardedRes, err := core.RunShardBench(sbc, *shardReps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "corebench:", err)
		os.Exit(1)
	}
	shard := &shardSection{Workload: sbc, ShardBenchResult: sres}
	if sres.ShardedNs > 0 {
		shard.Speedup = float64(sres.MonolithicNs) / float64(sres.ShardedNs)
	}
	if sres.MaxShardSPABytes > 0 {
		shard.SPARatio = float64(sres.MonolithicSPABytes) / float64(sres.MaxShardSPABytes)
	}
	fmt.Fprintf(os.Stderr, "  ShardedRun: monolithic %.0f ms (%d iters)  sharded %.0f ms (%d iters, plan %.0f ms one-time)  speedup %.2fx  SPA %.0f KiB -> max shard %.0f KiB (%.1fx)\n",
		float64(sres.MonolithicNs)/1e6, sres.MonolithicIters,
		float64(sres.ShardedNs)/1e6, sres.ShardedIters, float64(sres.PlanNs)/1e6, shard.Speedup,
		float64(sres.MonolithicSPABytes)/1024, float64(sres.MaxShardSPABytes)/1024, shard.SPARatio)

	snapRes, err := serve.RunSnapshotBench(shardedRes, *shardReps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "corebench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "  Snapshot: write %.1f ms (%d shards, %.0f KiB)  open %.0f µs  first lookup %.0f µs  warm lookup %.0f ns (%d lookups)\n",
		float64(snapRes.WriteNs)/1e6, snapRes.Shards, float64(snapRes.Bytes)/1024,
		float64(snapRes.OpenNs)/1e3, float64(snapRes.FirstLookupNs)/1e3,
		float64(snapRes.LookupNs), snapRes.Lookups)

	// The refresh comparison is a ratio of two one-shot wall times, so it
	// needs at least two repetitions even in smoke mode (where the shard
	// bench drops to one) or a single scheduling hiccup on a busy CI
	// runner skews the recorded speedup.
	refreshReps := *shardReps
	if refreshReps < 2 {
		refreshReps = 2
	}
	fmt.Fprintf(os.Stderr, "corebench: refresh workload: %d churn steps (~%d%% of edges each)\n",
		*refreshSteps, 100*sbc.ClusterEdges/(sbc.Clusters*sbc.ClusterEdges+sbc.GiantEdges))
	refreshRes, err := serve.RunRefreshBench(sbc, *refreshSteps, refreshReps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "corebench:", err)
		os.Exit(1)
	}
	for _, st := range refreshRes.Steps {
		fmt.Fprintf(os.Stderr, "  Refresh/step%d: full %.0f ms (%d iters)  incremental %.1f ms (%d iters, %d/%d shards dirty)  %.1fx  re-encoded %.0f KiB / copied %.0f KiB\n",
			st.Step, float64(st.FullNs)/1e6, st.FullIters, float64(st.IncNs)/1e6, st.IncIters,
			st.DirtyShards, st.Shards, st.Speedup,
			float64(st.BytesReencoded)/1024, float64(st.BytesCopied)/1024)
	}

	ibc := ingest.IngestBenchConfig{
		Log: workload.ClickLogConfig{
			Seed: bc.Seed, Clusters: 6, QueriesPerCluster: 40, AdsPerCluster: 30,
			BaseEvents: 2000, StreamEvents: 6000, HotFraction: 0.98,
		},
		Cadences: []int{100, 500, 2000},
		Workers:  bc.Workers,
	}
	if *smoke {
		ibc.Log.Clusters, ibc.Log.QueriesPerCluster, ibc.Log.AdsPerCluster = 4, 12, 9
		ibc.Log.BaseEvents, ibc.Log.StreamEvents = 400, 900
		ibc.Cadences = []int{100, 450}
	}
	fmt.Fprintf(os.Stderr, "corebench: ingest workload: %d clusters, %d stream events, cadences %v\n",
		ibc.Log.Clusters, ibc.Log.StreamEvents, ibc.Cadences)
	ingestRes, err := ingest.RunIngestBench(ibc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "corebench:", err)
		os.Exit(1)
	}
	for _, pt := range ingestRes.Points {
		fmt.Fprintf(os.Stderr, "  Ingest/cadence%d: %d folds (%d published)  mean %.1f ms  max %.1f ms  dirty %.1f / clean %.1f shards  clean-copy %.0f%%  staleness %.2fs\n",
			pt.RecordsPerFold, pt.Folds, pt.Published, pt.MeanFoldMs, pt.MaxFoldMs,
			pt.MeanDirtyShards, pt.MeanCleanShards, 100*pt.CleanCopyFraction, pt.ModelStalenessSeconds)
	}

	rep := report{
		GeneratedAt:          time.Now().UTC().Format(time.RFC3339),
		GoVersion:            runtime.Version(),
		GOMAXPROCS:           runtime.GOMAXPROCS(0),
		Workload:             bc,
		Results:              results,
		SpeedupVsBaseline:    map[string]float64{},
		AllocRatioVsBaseline: map[string]float64{},
		WeightedIterations:   trajectories,
		ShardWorkload:        shard,
		Snapshot:             &snapRes,
		Refresh:              &refreshRes,
		Ingest:               ingestRes,
	}
	base := map[string]passResult{}
	for _, r := range results {
		group, variant, _ := strings.Cut(r.Name, "/")
		if variant == baselineVariant[group] {
			base[group] = r
		}
	}
	for _, r := range results {
		group, variant, _ := strings.Cut(r.Name, "/")
		if variant == baselineVariant[group] {
			continue
		}
		if b, ok := base[group]; ok && r.NsPerOp > 0 {
			rep.SpeedupVsBaseline[r.Name] = b.NsPerOp / r.NsPerOp
			if r.AllocsPerOp > 0 {
				rep.AllocRatioVsBaseline[r.Name] = float64(b.AllocsPerOp) / float64(r.AllocsPerOp)
			}
		}
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "corebench:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "corebench:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "corebench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "corebench: wrote %s\n", *out)

	if *comparePath != "" {
		old, err := loadReport(*comparePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "corebench:", err)
			os.Exit(1)
		}
		if regs := compareReports(os.Stderr, old, &rep, *compareThreshold); len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "corebench: %d metric(s) regressed more than %.2fx vs %s\n",
				len(regs), *compareThreshold, *comparePath)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "corebench: no regression past %.2fx vs %s\n", *compareThreshold, *comparePath)
	}
}
