package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
)

// Benchstat-style regression gating: `corebench -compare old.json` diffs
// the freshly-measured report against a previous record over their shared
// keys and exits nonzero when any metric regressed past the threshold.
//
// Two metric classes keep the comparison honest across machines and
// workload sizes:
//
//   - dimensionless ratios (speedup-vs-baseline, shard speedup, SPA
//     ratio, refresh speedups) are always compared — a smoke-sized CI run
//     still has to beat its own baselines by roughly the recorded margin;
//   - absolute ns/op rows are compared only when both reports measured
//     the identical workload, since 500-query and 120-query graphs are
//     not the same experiment.

// compareRow is one metric's old/new pairing.
type compareRow struct {
	name     string
	old, new float64
	// higherBetter: speedups regress downward; ns/op regress upward.
	higherBetter bool
}

// worseFactor returns how many times worse new is than old (> 1 = worse).
func (r compareRow) worseFactor() float64 {
	if r.old <= 0 || r.new <= 0 {
		return 1
	}
	if r.higherBetter {
		return r.old / r.new
	}
	return r.new / r.old
}

// compareReports prints the table and returns the rows past threshold.
func compareReports(w io.Writer, old, cur *report, threshold float64) []compareRow {
	var rows []compareRow
	sameWorkload := reflect.DeepEqual(old.Workload, cur.Workload)
	if sameWorkload {
		oldNs := map[string]float64{}
		for _, r := range old.Results {
			oldNs[r.Name] = r.NsPerOp
		}
		for _, r := range cur.Results {
			if o, ok := oldNs[r.Name]; ok {
				rows = append(rows, compareRow{name: r.Name + " ns/op", old: o, new: r.NsPerOp})
			}
		}
	} else {
		fmt.Fprintf(w, "corebench: workloads differ (old %+v); comparing dimensionless ratios only\n", old.Workload)
	}
	for name, v := range cur.SpeedupVsBaseline {
		if o, ok := old.SpeedupVsBaseline[name]; ok {
			rows = append(rows, compareRow{name: "speedup:" + name, old: o, new: v, higherBetter: true})
		}
	}
	if old.ShardWorkload != nil && cur.ShardWorkload != nil {
		rows = append(rows,
			compareRow{name: "shard_workload.speedup", old: old.ShardWorkload.Speedup, new: cur.ShardWorkload.Speedup, higherBetter: true},
			compareRow{name: "shard_workload.spa_ratio", old: old.ShardWorkload.SPARatio, new: cur.ShardWorkload.SPARatio, higherBetter: true})
	}
	if old.Refresh != nil && cur.Refresh != nil {
		rows = append(rows,
			compareRow{name: "refresh.min_speedup", old: old.Refresh.MinSpeedup, new: cur.Refresh.MinSpeedup, higherBetter: true},
			compareRow{name: "refresh.mean_speedup", old: old.Refresh.MeanSpeedup, new: cur.Refresh.MeanSpeedup, higherBetter: true})
	}

	fmt.Fprintf(w, "corebench: comparison (threshold %.2fx)\n", threshold)
	fmt.Fprintf(w, "  %-44s %14s %14s %9s\n", "metric", "old", "new", "factor")
	var regressions []compareRow
	for _, r := range rows {
		worse := r.worseFactor()
		mark := ""
		if worse > threshold {
			mark = "  REGRESSION"
			regressions = append(regressions, r)
		}
		fmt.Fprintf(w, "  %-44s %14.1f %14.1f %8.2fx%s\n", r.name, r.old, r.new, worse, mark)
	}
	return regressions
}

// loadReport reads a previous BENCH_core.json.
func loadReport(path string) (*report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rep report
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}
