// Command simrank-worker is the fleet side of a distributed refresh: a
// stateless HTTP server that executes refresh-shard leases from a
// simrank -refresh -workers coordinator. Each lease carries one dirty
// shard's subgraph, warm-start scores, and engine configuration; the
// worker runs one engine over it and answers the CRC'd encoded segment
// bytes. Workers hold no snapshot, no journal, and no graph of their
// own — killing one mid-lease costs only that lease's re-dispatch.
//
// Usage:
//
//	simrank-worker [-addr :9090] [-shard-workers 0]
//	               [-max-lease-mb 1024]
//
// Endpoints: POST /refresh-shard (the lease protocol) and GET /healthz
// (liveness). See OPERATIONS.md, "Fleet refresh".
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"simrankpp/internal/dist"
)

func main() {
	var (
		addr       = flag.String("addr", ":9090", "listen address")
		engWorkers = flag.Int("shard-workers", 0, "engine row-parallelism per lease (0 = GOMAXPROCS)")
		maxLeaseMB = flag.Int64("max-lease-mb", 1024, "largest accepted lease body, in MiB")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "simrank-worker: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}
	w := &dist.Worker{Workers: *engWorkers, MaxLeaseBytes: *maxLeaseMB << 20}
	fmt.Fprintf(os.Stderr, "simrank-worker: serving /refresh-shard on %s\n", *addr)
	if err := http.ListenAndServe(*addr, w.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "simrank-worker:", err)
		os.Exit(1)
	}
}
