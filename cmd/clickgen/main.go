// Command clickgen generates a synthetic sponsored-search click log and
// writes the resulting click graph in the text edge format, standing in
// for the two-week Yahoo! log of the Simrank++ paper.
//
// Usage:
//
//	clickgen [-seed N] [-sessions N] [-categories N] [-out FILE]
//	         [-bids FILE] [-stats]
//
// With -stats it also prints graph statistics and the fitted power-law
// exponents of the degree distributions, the sanity check that the
// generator reproduces the distributions the paper reports (§9.2).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/sponsored"
	"simrankpp/internal/workload"
)

func main() {
	var (
		seed       = flag.Uint64("seed", 1, "generator seed")
		sessions   = flag.Int("sessions", 600000, "simulated query sessions")
		categories = flag.Int("categories", 14, "intent-hierarchy categories")
		out        = flag.String("out", "", "output file for the click graph (default stdout)")
		bidsOut    = flag.String("bids", "", "optional output file for the bid-term list, one per line")
		stats      = flag.Bool("stats", false, "print dataset statistics to stderr")
	)
	flag.Parse()

	ucfg := workload.DefaultUniverseConfig()
	ucfg.Seed = *seed
	ucfg.Categories = *categories
	u, err := workload.BuildUniverse(ucfg)
	if err != nil {
		fatal(err)
	}
	scfg := sponsored.DefaultConfig()
	scfg.Seed = *seed + 1
	scfg.Sessions = *sessions
	res, err := sponsored.Simulate(u, scfg)
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer closeOrDie(f)
		w = f
	}
	bw := bufio.NewWriter(w)
	if err := clickgraph.Write(bw, res.Graph); err != nil {
		fatal(err)
	}
	if err := bw.Flush(); err != nil {
		fatal(err)
	}

	if *bidsOut != "" {
		f, err := os.Create(*bidsOut)
		if err != nil {
			fatal(err)
		}
		terms := make([]string, 0, len(res.BidTerms))
		for t := range res.BidTerms {
			terms = append(terms, t)
		}
		sort.Strings(terms)
		bw := bufio.NewWriter(f)
		for _, t := range terms {
			fmt.Fprintln(bw, t)
		}
		if err := bw.Flush(); err != nil {
			fatal(err)
		}
		closeOrDie(f)
	}

	if *stats {
		s := clickgraph.ComputeStats(res.Graph)
		fmt.Fprintf(os.Stderr, "queries=%d ads=%d edges=%d components=%d largest=%d\n",
			s.Queries, s.Ads, s.Edges, s.Components, s.LargestComponent)
		fmt.Fprintf(os.Stderr, "mean ads/query=%.2f mean queries/ad=%.2f clicks=%d impressions=%d\n",
			s.MeanAdsPerQuery, s.MeanQueriesPerAd, s.TotalClicks, s.TotalImpressions)
		fmt.Fprintf(os.Stderr, "power-law fit: ads-per-query alpha=%.2f queries-per-ad alpha=%.2f\n",
			fitHistogram(clickgraph.QueryDegreeHistogram(res.Graph)),
			fitHistogram(clickgraph.AdDegreeHistogram(res.Graph)))
	}
}

func fitHistogram(h map[int]int) float64 {
	var degrees []int
	for d, c := range h {
		for i := 0; i < c; i++ {
			degrees = append(degrees, d)
		}
	}
	return workload.FitExponent(degrees)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clickgen:", err)
	os.Exit(1)
}

func closeOrDie(f *os.File) {
	if err := f.Close(); err != nil {
		fatal(err)
	}
}
