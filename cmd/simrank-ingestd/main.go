// Command simrank-ingestd is the streaming half of the deployment: a
// simrankd-style serving front-end fused with the crash-safe ingestion
// pipeline (internal/ingest). Click observations POSTed to /ingest are
// appended to a CRC-trailered write-ahead log and fsynced before the
// request returns; a background controller folds the WAL into the click
// graph on a cadence (or earlier, past a churn threshold), refreshes
// only the dirty shards of the serving snapshot, publishes the new
// generation through the journal, and hot-swaps it into the serving
// index — no restart, no dropped requests.
//
// # Usage
//
//	simrank-ingestd -snapshot FILE [-graph FILE] [-wal DIR]
//	                [-addr :8081] [-cadence 30s] [-churn N]
//	                [-max-lag N] [-generations 4] [-workers N]
//	                [-bids FILE] [-top 5] [-max-top 100] [-cache 4096]
//
// -graph is required on FIRST start (no fold state yet): it must be the
// click graph the snapshot was built from. Later starts recover the
// graph from the WAL directory's fold state and -graph is ignored.
//
// # Endpoints
//
// All simrankd read endpoints (/rewrite, /similar, /batch, /stats,
// /healthz, /readyz), plus:
//
//	POST /ingest    text click records, one per line:
//	                query \t ad \t impressions \t clicks \t rate
//	                Records are durable (fsynced to the WAL) before the
//	                200 returns. 503 + Retry-After when the WAL is more
//	                than -max-lag records ahead of folding.
//
// # Crash safety and degradation
//
// Kill the process at any instant: acknowledged records are in the WAL,
// and restart replays them onto the fold cursor exactly-once with
// respect to the published generation. A failing refresh keeps the last
// good generation serving while /readyz reports "degraded" and /stats
// gains wal_lag_records / staleness_seconds / refresh_failures gauges;
// folds retry on capped equal-jitter backoff until the fault clears.
// SIGTERM cancels any in-flight fold at a shard boundary (the serving
// snapshot and WAL cursor are left intact), then drains HTTP. See
// OPERATIONS.md, "Continuous ingestion".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"simrankpp/internal/ingest"
	"simrankpp/internal/rewrite"
	"simrankpp/internal/serve"
)

func main() {
	var (
		snapPath  = flag.String("snapshot", "", "serving snapshot (simrank -save output; required)")
		graphPath = flag.String("graph", "", "base click-graph file (required on first start, before a fold state exists)")
		walDir    = flag.String("wal", "", "WAL directory (default: <snapshot>.wal)")
		addr      = flag.String("addr", ":8081", "listen address")
		cadence   = flag.Duration("cadence", 30*time.Second, "fold interval")
		churn     = flag.Uint64("churn", 0, "fold early once this many records are pending (0: cadence only)")
		maxLag    = flag.Uint64("max-lag", 0, "reject /ingest with 503 beyond this WAL lag in records (0: unbounded)")
		keepGens  = flag.Int("generations", 4, "journaled generations to retain")
		workers   = flag.Int("workers", 0, "refresh shard workers (0: GOMAXPROCS)")
		bidsPath  = flag.String("bids", "", "bid-term list file (must match the snapshot's precomputed rewrite section)")
		top       = flag.Int("top", 5, "default rewrites per query")
		maxTop    = flag.Int("max-top", 100, "cap on the per-request top parameter")
		cache     = flag.Int("cache", 4096, "hot-query LRU entries (0 disables)")
	)
	flag.Parse()
	if *snapPath == "" {
		fatal(fmt.Errorf("-snapshot is required"))
	}
	if *walDir == "" {
		*walDir = *snapPath + ".wal"
	}

	cfg := serve.DefaultServerConfig()
	cfg.DefaultTop = *top
	cfg.MaxTop = *maxTop
	cfg.CacheSize = *cache
	var bids map[string]bool
	if *bidsPath != "" {
		terms, err := rewrite.ReadBidTermsFile(*bidsPath)
		if err != nil {
			fatal(err)
		}
		cfg.BidTerms = terms
		bids = terms
	}

	openPath := func(path string) (serve.ScoreIndex, error) { return serve.OpenSnapshot(path) }
	idx, err := openPath(*snapPath)
	if err != nil {
		log.Printf("simrank-ingestd: %s failed to open: %v", *snapPath, err)
		gen, gerr := serve.NewGenerationStore(*snapPath, 0).LastGood()
		if gerr != nil {
			fatal(err)
		}
		if idx, err = openPath(gen.SnapPath); err != nil {
			fatal(err)
		}
		log.Printf("simrank-ingestd: serving journaled generation %d (%s)", gen.ID, gen.SnapPath)
	}
	srv := serve.NewServer(idx, cfg)
	// Report the served snapshot's journal generation id from the start
	// (matching by graph fingerprint, as simrankd does) so /stats and
	// /readyz carry a full generation identity before the first fold.
	if snap, ok := idx.(*serve.Snapshot); ok {
		if gens, err := serve.NewGenerationStore(*snapPath, 0).List(); err == nil {
			want, id := snap.Meta().Fingerprint, uint64(0)
			for _, g := range gens {
				if fmt.Sprintf("%016x", g.Fingerprint) == want && g.ID > id {
					id = g.ID
				}
			}
			srv.SetGenerationID(id)
		}
	}

	ctl, err := ingest.NewController(ingest.Config{
		WALDir:          *walDir,
		SnapshotPath:    *snapPath,
		GraphPath:       *graphPath,
		Workers:         *workers,
		Cadence:         *cadence,
		ChurnRecords:    *churn,
		MaxLagRecords:   *maxLag,
		KeepGenerations: *keepGens,
		Bids:            bids,
		Logf:            log.Printf,
		OnPublish: func(gen *serve.Generation) {
			err := srv.Reload(func() (serve.ScoreIndex, error) {
				idx, err := openPath(gen.SnapPath)
				if err == nil {
					srv.SetGenerationID(gen.ID)
				}
				return idx, err
			}, nil, func(old serve.ScoreIndex) {
				if c, ok := old.(*serve.Snapshot); ok {
					c.Close()
				}
			}, log.Printf)
			if err != nil {
				log.Printf("simrank-ingestd: generation %d published but reload failed: %v", gen.ID, err)
			}
		},
	})
	if err != nil {
		fatal(err)
	}
	srv.SetIngestStatus(ctl.Status)

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.HandleFunc("/ingest", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		recs, err := ingest.ReadRecords(http.MaxBytesReader(w, r.Body, 32<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		n, err := ctl.Ingest(recs)
		if err != nil {
			if errors.Is(err, ingest.ErrBackpressure) {
				// The WAL has outrun folding past -max-lag: shed rather
				// than queue unbounded durability debt. A cadence is a
				// reasonable guess at when a fold will have drained some.
				w.Header().Set("Retry-After", strconv.Itoa(int((*cadence).Seconds())+1))
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"accepted\":%d}\n", n)
	})

	runCtx, cancelRun := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- ctl.Run(runCtx) }()

	httpSrv := &http.Server{Addr: *addr, Handler: mux}
	sigs := make(chan os.Signal, 1)
	drained := make(chan struct{})
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		// Shutdown order matters: stop the fold loop first (an in-flight
		// fold aborts at its next shard boundary, leaving the serving
		// bytes and WAL cursor intact), then drain HTTP — /ingest keeps
		// acknowledging durable writes until the listener closes, and the
		// WAL replays them on next start.
		cancelRun()
		<-runDone
		if err := ctl.Close(); err != nil {
			log.Printf("simrank-ingestd: close: %v", err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("simrank-ingestd: drain deadline expired with %d requests in flight: %v",
				srv.InFlight(), err)
		}
		close(drained)
	}()

	log.Printf("simrank-ingestd: serving on %s (wal %s, cadence %s)", *addr, *walDir, *cadence)
	err = httpSrv.ListenAndServe()
	if err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
	<-drained
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simrank-ingestd:", err)
	os.Exit(1)
}
