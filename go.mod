module simrankpp

go 1.24.0
