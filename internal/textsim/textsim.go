// Package textsim implements the lexical query-similarity measures the
// Simrank++ paper names as future work (§11): "methods for combining our
// similarity scores with semantic text-based similarities could be
// considered." It provides token-level Jaccard and TF-IDF cosine
// similarity over stemmed query text, and a combiner that blends a
// click-graph similarity source with the lexical score.
package textsim

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"simrankpp/internal/stem"
)

// Tokenize lowercases, splits on whitespace and stems each token.
func Tokenize(s string) []string {
	fields := strings.Fields(strings.ToLower(s))
	for i, f := range fields {
		fields[i] = stem.Word(f)
	}
	return fields
}

// Jaccard returns |tokens(a) ∩ tokens(b)| / |tokens(a) ∪ tokens(b)| over
// stemmed tokens, 0 when both are empty.
func Jaccard(a, b string) float64 {
	ta, tb := Tokenize(a), Tokenize(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 0
	}
	set := make(map[string]uint8, len(ta)+len(tb))
	for _, t := range ta {
		set[t] |= 1
	}
	for _, t := range tb {
		set[t] |= 2
	}
	inter := 0
	for _, m := range set {
		if m == 3 {
			inter++
		}
	}
	return float64(inter) / float64(len(set))
}

// Corpus indexes a query collection for TF-IDF cosine similarity.
type Corpus struct {
	docs []map[string]float64 // tf-idf vectors, L2-normalized
	idf  map[string]float64
	ids  map[string]int
	raw  []string
}

// NewCorpus builds the index over the given query strings.
func NewCorpus(queries []string) *Corpus {
	c := &Corpus{
		idf: make(map[string]float64),
		ids: make(map[string]int, len(queries)),
		raw: append([]string(nil), queries...),
	}
	df := make(map[string]int)
	tokenized := make([][]string, len(queries))
	for i, q := range queries {
		c.ids[q] = i
		tokenized[i] = Tokenize(q)
		seen := map[string]bool{}
		for _, t := range tokenized[i] {
			if !seen[t] {
				seen[t] = true
				df[t]++
			}
		}
	}
	n := float64(len(queries))
	for t, d := range df {
		c.idf[t] = math.Log(1 + n/float64(d))
	}
	c.docs = make([]map[string]float64, len(queries))
	for i, toks := range tokenized {
		vec := make(map[string]float64)
		for _, t := range toks {
			vec[t] += c.idf[t]
		}
		norm := 0.0
		for _, v := range vec {
			norm += v * v
		}
		if norm > 0 {
			norm = math.Sqrt(norm)
			for t := range vec {
				vec[t] /= norm
			}
		}
		c.docs[i] = vec
	}
	return c
}

// Len returns the number of indexed queries.
func (c *Corpus) Len() int { return len(c.raw) }

// Cosine returns the TF-IDF cosine similarity of two indexed queries. It
// returns an error if either query is not in the corpus.
func (c *Corpus) Cosine(a, b string) (float64, error) {
	ia, ok := c.ids[a]
	if !ok {
		return 0, fmt.Errorf("textsim: query %q not in corpus", a)
	}
	ib, ok := c.ids[b]
	if !ok {
		return 0, fmt.Errorf("textsim: query %q not in corpus", b)
	}
	va, vb := c.docs[ia], c.docs[ib]
	if len(vb) < len(va) {
		va, vb = vb, va
	}
	dot := 0.0
	for t, x := range va {
		dot += x * vb[t]
	}
	return dot, nil
}

// Blend combines a click-graph similarity score with a lexical score as
// alpha·graph + (1-alpha)·lexical. Alpha 1 is pure click-graph, alpha 0
// pure lexical.
func Blend(graphScore, lexicalScore, alpha float64) float64 {
	if alpha < 0 {
		alpha = 0
	}
	if alpha > 1 {
		alpha = 1
	}
	return alpha*graphScore + (1-alpha)*lexicalScore
}

// Ranked is a (query, score) result.
type Ranked struct {
	Query string
	Score float64
}

// RankBlended re-ranks candidate rewrites for query q by blending their
// graph scores with corpus cosine similarity. Candidates missing from the
// corpus keep their graph score (lexical contribution 0).
func (c *Corpus) RankBlended(q string, candidates []Ranked, alpha float64) []Ranked {
	out := make([]Ranked, len(candidates))
	for i, cand := range candidates {
		lex, err := c.Cosine(q, cand.Query)
		if err != nil {
			lex = 0
		}
		out[i] = Ranked{Query: cand.Query, Score: Blend(cand.Score, lex, alpha)}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Query < out[j].Query
	})
	return out
}
