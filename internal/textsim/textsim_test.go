package textsim

import (
	"math"
	"testing"
)

func TestJaccard(t *testing.T) {
	if got := Jaccard("digital camera", "camera"); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Jaccard = %v want 0.5", got)
	}
	if got := Jaccard("camera", "cameras"); got != 1 {
		t.Errorf("stemmed Jaccard of plural pair = %v want 1", got)
	}
	if got := Jaccard("camera", "flower"); got != 0 {
		t.Errorf("disjoint Jaccard = %v want 0", got)
	}
	if got := Jaccard("", ""); got != 0 {
		t.Errorf("empty Jaccard = %v want 0", got)
	}
	if Jaccard("a b", "b a") != 1 {
		t.Error("Jaccard should be order-insensitive")
	}
}

func TestCorpusCosine(t *testing.T) {
	c := NewCorpus([]string{"digital camera", "camera", "flower delivery", "flower"})
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	self, err := c.Cosine("camera", "camera")
	if err != nil || math.Abs(self-1) > 1e-12 {
		t.Errorf("self cosine = %v, %v", self, err)
	}
	rel, err := c.Cosine("digital camera", "camera")
	if err != nil || rel <= 0 || rel >= 1 {
		t.Errorf("related cosine = %v, %v; want in (0,1)", rel, err)
	}
	unrel, err := c.Cosine("camera", "flower")
	if err != nil || unrel != 0 {
		t.Errorf("unrelated cosine = %v, %v; want 0", unrel, err)
	}
	if _, err := c.Cosine("camera", "missing"); err == nil {
		t.Error("missing query accepted")
	}
}

func TestBlend(t *testing.T) {
	if got := Blend(0.8, 0.2, 0.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Blend = %v want 0.5", got)
	}
	if Blend(0.8, 0.2, 1) != 0.8 || Blend(0.8, 0.2, 0) != 0.2 {
		t.Error("Blend endpoints wrong")
	}
	// Alpha clamping.
	if Blend(0.8, 0.2, 2) != 0.8 || Blend(0.8, 0.2, -1) != 0.2 {
		t.Error("Blend did not clamp alpha")
	}
}

func TestRankBlended(t *testing.T) {
	c := NewCorpus([]string{"camera", "digital camera", "flower"})
	cands := []Ranked{
		{Query: "flower", Score: 0.6},         // higher graph score
		{Query: "digital camera", Score: 0.5}, // lexically close
	}
	// Pure graph: flower first.
	pure := c.RankBlended("camera", cands, 1)
	if pure[0].Query != "flower" {
		t.Errorf("alpha=1 ranking = %+v", pure)
	}
	// Lexical-heavy: digital camera overtakes.
	lex := c.RankBlended("camera", cands, 0.2)
	if lex[0].Query != "digital camera" {
		t.Errorf("alpha=0.2 ranking = %+v", lex)
	}
	// Unknown candidate keeps graph score without error.
	out := c.RankBlended("camera", []Ranked{{Query: "unknown", Score: 0.4}}, 0.5)
	if math.Abs(out[0].Score-0.2) > 1e-12 {
		t.Errorf("unknown candidate score = %v want 0.2", out[0].Score)
	}
}
