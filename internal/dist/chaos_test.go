package dist

import (
	"bytes"
	"context"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/faultfs"
	"simrankpp/internal/partition"
	"simrankpp/internal/serve"
)

// Chaos suite for the distributed refresh path, driven by the faultfs
// HTTP injector (dead workers, mid-transfer cuts, corruption,
// stragglers) and the coordinator's Checkpoint hook (crashes at every
// refresh stage). Every scenario ends with the same assertion the
// tentpole demands: the bytes that finally serve are exactly what a
// single-machine refresh would have produced.

// chaosLogf collects coordinator log lines; safe for the concurrent
// dispatch goroutines.
type chaosLogf struct {
	mu    sync.Mutex
	lines []string
}

func (cl *chaosLogf) logf(format string, args ...any) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.lines = append(cl.lines, fmt.Sprintf(format, args...))
}

func (cl *chaosLogf) contains(substr string) bool {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	for _, l := range cl.lines {
		if strings.Contains(l, substr) {
			return true
		}
	}
	return false
}

func hostOf(t *testing.T, rawURL string) string {
	t.Helper()
	u, err := url.Parse(rawURL)
	if err != nil {
		t.Fatal(err)
	}
	return u.Host
}

// chaosFixture builds a previous generation, a churned next graph, its
// diff, and the local-path refresh bytes every scenario must reproduce.
func chaosFixture(t *testing.T) (*serve.Snapshot, []byte, *clickgraph.Graph, *partition.Diff, []byte) {
	t.Helper()
	cfg := refreshCfg()
	prevBytes, prev := buildGeneration(t, refreshGraph(t, [4]int{1, 2, 3, 4}), cfg)
	next := refreshGraph(t, [4]int{9, 2, 3, 4})
	_, _, want := localRefreshBytes(t, next, prev)
	diff, err := partition.DiffPlans(prev, next)
	if err != nil {
		t.Fatal(err)
	}
	if diff.DirtyShards == 0 {
		t.Fatal("fixture produced no dirty shards")
	}
	return prev, prevBytes, next, diff, want
}

// assembleFleet runs the fleet and assembles the refreshed snapshot.
func assembleFleet(t *testing.T, c *Coordinator, next *clickgraph.Graph, prev *serve.Snapshot, diff *partition.Diff) (*FleetResult, []byte) {
	t.Helper()
	fleet, err := c.RefreshShards(context.Background(), next, prev, diff)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := serve.AssembleRefresh(&buf, prev, next, prev.Config(), diff.Plan, diff.Dirty,
		fleet.Segments, fleet.Iterations, fleet.Converged, nil); err != nil {
		t.Fatal(err)
	}
	return fleet, buf.Bytes()
}

// TestChaosWorkerKilledMidShard is acceptance scenario (a): one worker's
// responses are cut mid-transfer (a worker killed while streaming its
// segment). The lease must be re-dispatched and the final refresh must
// be byte-identical to the local-only path.
func TestChaosWorkerKilledMidShard(t *testing.T) {
	prev, _, next, diff, want := chaosFixture(t)
	urls := startWorkers(t, 2)

	inj := faultfs.NewHTTPInjector()
	inj.TruncateBody(hostOf(t, urls[0]), 64) // every response from worker 0 dies mid-stream
	cl := &chaosLogf{}
	c := NewCoordinator(urls, Options{
		Transport:   inj.Transport(nil),
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
		Logf:        cl.logf,
	})

	fleet, got := assembleFleet(t, c, next, prev, diff)
	if fleet.Stats.Retries == 0 {
		t.Fatalf("cut worker never forced a re-dispatch: %+v", fleet.Stats)
	}
	if fleet.Stats.RemoteShards != diff.DirtyShards || fleet.Stats.LocalFallbackShards != 0 {
		t.Fatalf("stats %+v: want all %d dirty shards computed remotely", fleet.Stats, diff.DirtyShards)
	}
	if !bytes.Equal(maskVolatile(t, got), maskVolatile(t, want)) {
		t.Fatal("refresh under a killed worker differs from the local-only refresh")
	}
}

// TestChaosCorruptResponseRejected: a worker whose response bytes are
// bit-flipped in flight must be treated as failed — the CRC trailer
// rejects the payload and the lease is re-dispatched, never assembled.
func TestChaosCorruptResponseRejected(t *testing.T) {
	prev, _, next, diff, want := chaosFixture(t)
	urls := startWorkers(t, 2)

	inj := faultfs.NewHTTPInjector()
	inj.FlipBodyBit(hostOf(t, urls[0]), 100, 3) // corrupt worker 0's payloads
	cl := &chaosLogf{}
	c := NewCoordinator(urls, Options{
		Transport:   inj.Transport(nil),
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
		Logf:        cl.logf,
	})

	fleet, got := assembleFleet(t, c, next, prev, diff)
	if fleet.Stats.Retries == 0 {
		t.Fatalf("corrupted responses never forced a re-dispatch: %+v", fleet.Stats)
	}
	if !bytes.Equal(maskVolatile(t, got), maskVolatile(t, want)) {
		t.Fatal("refresh under response corruption differs from the local-only refresh")
	}
}

// TestChaosAllWorkersDeadLocalFallback is acceptance scenario (b): with
// every worker unreachable the refresh must degrade to the local
// recompute path, complete, and still produce the exact local bytes.
func TestChaosAllWorkersDeadLocalFallback(t *testing.T) {
	prev, _, next, diff, want := chaosFixture(t)
	urls := startWorkers(t, 2)

	inj := faultfs.NewHTTPInjector()
	inj.Drop("", -1) // the whole fleet is unreachable
	cl := &chaosLogf{}
	c := NewCoordinator(urls, Options{
		Transport:      inj.Transport(nil),
		MaxAttempts:    2,
		MaxWorkerFails: 2,
		BackoffBase:    time.Millisecond,
		BackoffMax:     2 * time.Millisecond,
		LocalWorkers:   3,
		Logf:           cl.logf,
	})

	fleet, got := assembleFleet(t, c, next, prev, diff)
	if fleet.Stats.RemoteShards != 0 || fleet.Stats.LocalFallbackShards != diff.DirtyShards {
		t.Fatalf("stats %+v: want all %d dirty shards recomputed locally", fleet.Stats, diff.DirtyShards)
	}
	if fleet.Stats.WorkerDeaths != len(urls) {
		t.Errorf("WorkerDeaths = %d, want %d", fleet.Stats.WorkerDeaths, len(urls))
	}
	if !cl.contains("fallback-to-local") {
		t.Error("fallback did not log its fallback-to-local line")
	}
	if !bytes.Equal(maskVolatile(t, got), maskVolatile(t, want)) {
		t.Fatal("local-fallback refresh differs from the local-only refresh")
	}
}

// TestChaosStragglerHedged: a worker that is alive but slow must get
// its lease hedged to a second worker once the latency percentile says
// it is straggling — and the hedge's bytes are the same bytes.
func TestChaosStragglerHedged(t *testing.T) {
	prev, _, next, diff, want := chaosFixture(t)
	urls := startWorkers(t, 2)

	inj := faultfs.NewHTTPInjector()
	inj.SetLatency(hostOf(t, urls[0]), 2*time.Second) // worker 0 straggles
	cl := &chaosLogf{}
	c := NewCoordinator(urls, Options{
		Transport:     inj.Transport(nil),
		HedgeQuantile: 0.5,
		HedgeAfter:    5 * time.Millisecond,
		Logf:          cl.logf,
	})
	// Prime the latency window: hedging needs completed-lease samples
	// before it can call anything a straggler.
	for i := 0; i < 3; i++ {
		c.recordLatency(2 * time.Millisecond)
	}

	start := time.Now()
	fleet, got := assembleFleet(t, c, next, prev, diff)
	if fleet.Stats.Hedges == 0 {
		t.Fatalf("straggling worker was never hedged: %+v", fleet.Stats)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hedged refresh still waited out the straggler (%v)", elapsed)
	}
	if fleet.Stats.RemoteShards != diff.DirtyShards || fleet.Stats.LocalFallbackShards != 0 {
		t.Fatalf("stats %+v: want all %d dirty shards computed remotely", fleet.Stats, diff.DirtyShards)
	}
	if !bytes.Equal(maskVolatile(t, got), maskVolatile(t, want)) {
		t.Fatal("hedged refresh differs from the local-only refresh")
	}
}

// TestChaosCoordinatorCrashRecovery is acceptance scenario (c): the
// coordinator dies at every dispatch/assembly checkpoint in turn. After
// each crash the previous generation must still be the serving file,
// openable and rollback-clean, and a retried refresh must publish the
// exact local-path bytes.
func TestChaosCoordinatorCrashRecovery(t *testing.T) {
	stages := []string{"pre-dispatch", "pre-commit", "commit:mid-write", "pre-publish"}
	for _, stage := range stages {
		t.Run(stage, func(t *testing.T) {
			cfg := refreshCfg()
			prevBytes, _ := buildGeneration(t, refreshGraph(t, [4]int{1, 2, 3, 4}), cfg)
			next := refreshGraph(t, [4]int{9, 2, 3, 4})

			dir := t.TempDir()
			path := filepath.Join(dir, "scores.snap")
			if err := os.WriteFile(path, prevBytes, 0o644); err != nil {
				t.Fatal(err)
			}
			gs := serve.NewGenerationStore(path, 5)
			adopted, err := gs.Adopt()
			if err != nil || adopted == nil {
				t.Fatalf("Adopt = (%v, %v)", adopted, err)
			}
			prev, err := serve.OpenSnapshot(path)
			if err != nil {
				t.Fatal(err)
			}
			defer prev.Close()
			_, _, want := localRefreshBytes(t, next, prev)

			urls := startWorkers(t, 2)
			cl := &chaosLogf{}
			crashed := NewCoordinator(urls, Options{
				Logf: cl.logf,
				Checkpoint: func(s string) error {
					if s == stage {
						return fmt.Errorf("injected coordinator crash at %s", s)
					}
					return nil
				},
			})
			if _, _, _, _, err := RefreshGeneration(context.Background(), crashed, gs, next, prev); err == nil {
				t.Fatalf("refresh survived an injected crash at %s", stage)
			}

			// The previous generation still serves, byte for byte, and the
			// journal still verifies it as the rollback target.
			serving, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(serving, prevBytes) {
				t.Fatalf("crash at %s disturbed the serving snapshot", stage)
			}
			if snap, err := serve.OpenSnapshot(path); err != nil {
				t.Fatalf("serving snapshot no longer opens after crash at %s: %v", stage, err)
			} else {
				snap.Close()
			}
			good, err := gs.LastGood()
			if err != nil {
				t.Fatalf("no good generation after crash at %s: %v", stage, err)
			}
			if good.CRC != adopted.CRC || good.Size != adopted.Size {
				// A crash after commit legitimately leaves the (valid, never
				// published) next generation as the newest good one; the
				// serving bytes above are the real invariant. But before
				// commit the adopted generation must still be the last good.
				if stage == "pre-dispatch" || stage == "pre-commit" || stage == "commit:mid-write" {
					t.Fatalf("crash at %s replaced the last-good generation", stage)
				}
			}

			// Recovery: sweep debris and rerun with a fresh coordinator.
			if _, err := gs.SweepTemp(); err != nil {
				t.Fatal(err)
			}
			retry := NewCoordinator(urls, Options{Logf: cl.logf})
			if _, _, _, _, err := RefreshGeneration(context.Background(), retry, gs, next, prev); err != nil {
				t.Fatalf("retried refresh after crash at %s: %v", stage, err)
			}
			published, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(maskVolatile(t, published), maskVolatile(t, want)) {
				t.Fatalf("recovered refresh after crash at %s differs from the local-only refresh", stage)
			}
		})
	}
}

// TestChaosRetryAfterHonored: a worker shedding 503 with a Retry-After
// hint must not be hammered back on the coordinator's millisecond-scale
// local schedule — the re-dispatch waits out the max of the local
// backoff and the worker's own hint.
func TestChaosRetryAfterHonored(t *testing.T) {
	prev, _, next, diff, want := chaosFixture(t)
	urls := startWorkers(t, 1)

	inj := faultfs.NewHTTPInjector()
	inj.SetRetryAfter(hostOf(t, urls[0]), 1)
	inj.Respond5xx(hostOf(t, urls[0]), 1) // one shed with a 1s hint, then healthy
	cl := &chaosLogf{}
	c := NewCoordinator(urls, Options{
		Transport:   inj.Transport(nil),
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
		Logf:        cl.logf,
	})

	start := time.Now()
	fleet, got := assembleFleet(t, c, next, prev, diff)
	if fleet.Stats.Retries == 0 {
		t.Fatalf("shed worker never forced a re-dispatch: %+v", fleet.Stats)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("re-dispatch after a Retry-After: 1 shed came back in %v — the hint was not honored", elapsed)
	}
	if fleet.Stats.LocalFallbackShards != 0 {
		t.Fatalf("shed worker pushed shards to local fallback: %+v", fleet.Stats)
	}
	if !bytes.Equal(maskVolatile(t, got), maskVolatile(t, want)) {
		t.Fatal("refresh under a shedding worker differs from the local-only refresh")
	}
}

// TestChaosFlappingWorker: a worker that answers 503 for a burst and
// then recovers must be retried onto, not abandoned — the fleet heals
// without falling back to local compute.
func TestChaosFlappingWorker(t *testing.T) {
	prev, _, next, diff, want := chaosFixture(t)
	urls := startWorkers(t, 2)

	inj := faultfs.NewHTTPInjector()
	inj.Respond5xx(hostOf(t, urls[0]), 2) // two failures, then healthy
	cl := &chaosLogf{}
	c := NewCoordinator(urls, Options{
		Transport:   inj.Transport(nil),
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
		Logf:        cl.logf,
	})

	fleet, got := assembleFleet(t, c, next, prev, diff)
	if fleet.Stats.LocalFallbackShards != 0 {
		t.Fatalf("flapping worker pushed shards to local fallback: %+v", fleet.Stats)
	}
	if !bytes.Equal(maskVolatile(t, got), maskVolatile(t, want)) {
		t.Fatal("refresh under a flapping worker differs from the local-only refresh")
	}
}
