package dist

import (
	"fmt"
	"io"
	"log"
	"net/http"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/core"
	"simrankpp/internal/partition"
	"simrankpp/internal/serve"
	"simrankpp/internal/sparse"
)

// Worker executes refresh-shard leases: rebuild the shard's subgraph
// from the wire, run one engine over it (warm-started when the lease
// carries seeds), and return the encoded segments in global ids. The
// rebuild is bit-faithful: lease names arrive in subview-local order
// and edges ship every weight channel, so the rebuilt CSR — and
// therefore the deterministic engine's output, and therefore the
// encoded segment bytes — is identical to what the coordinator's own
// local recompute of the same shard would produce.
type Worker struct {
	// Workers is the engine's row-parallelism budget (<= 0: GOMAXPROCS).
	Workers int
	// MaxLeaseBytes bounds a /refresh-shard request body; <= 0 selects
	// 1 GiB.
	MaxLeaseBytes int64
	// Logf receives one line per lease; nil uses the standard logger.
	Logf func(format string, args ...any)
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// wireScores adapts a lease's warm-start pairs to core.ScoreSource so
// the worker's engine seeds through the exact same newWarmSeeder path a
// local refresh uses. Naming delegates to the rebuilt subgraph (the
// lease shipped prior-generation pairs already mapped to local ids);
// partner lists hold only j > i, which is the half the seeder keeps.
type wireScores struct {
	g             *clickgraph.Graph
	queryPartners [][]sparse.Scored
	adPartners    [][]sparse.Scored
}

func newWireScores(g *clickgraph.Graph, warmQ, warmA []WirePair) *wireScores {
	ws := &wireScores{
		g:             g,
		queryPartners: make([][]sparse.Scored, g.NumQueries()),
		adPartners:    make([][]sparse.Scored, g.NumAds()),
	}
	for _, p := range warmQ {
		ws.queryPartners[p.I] = append(ws.queryPartners[p.I], sparse.Scored{Node: int(p.J), Score: p.Score})
	}
	for _, p := range warmA {
		ws.adPartners[p.I] = append(ws.adPartners[p.I], sparse.Scored{Node: int(p.J), Score: p.Score})
	}
	return ws
}

func (ws *wireScores) Query(id int) string             { return ws.g.Query(id) }
func (ws *wireScores) Ad(id int) string                { return ws.g.Ad(id) }
func (ws *wireScores) QueryID(name string) (int, bool) { return ws.g.QueryID(name) }
func (ws *wireScores) AdID(name string) (int, bool)    { return ws.g.AdID(name) }

func (ws *wireScores) TopRewrites(q, k int) []sparse.Scored {
	return ws.queryPartners[q]
}

func (ws *wireScores) TopSimilarAds(a, k int) []sparse.Scored {
	return ws.adPartners[a]
}

// RefreshShard executes one lease and returns its response.
func (w *Worker) RefreshShard(l *Lease) (*SegmentResponse, error) {
	if err := l.Config.Validate(); err != nil {
		return nil, fmt.Errorf("dist: lease config: %w", err)
	}
	// Rebuild the shard subgraph. Names intern in shipped (subview-
	// local) order so ids match the coordinator's subview; each wire
	// edge is added exactly once (the subview CSR holds unique (q,a)
	// edges), so Builder's duplicate-merge never fires and the compiled
	// CSR is the subview's, bit for bit.
	b := clickgraph.NewBuilder()
	for _, name := range l.QueryNames {
		b.AddQuery(name)
	}
	for _, name := range l.AdNames {
		b.AddAd(name)
	}
	if b.NumQueries() != len(l.QueryNames) || b.NumAds() != len(l.AdNames) {
		return nil, fmt.Errorf("dist: lease shard %d has duplicate node names", l.Shard)
	}
	for _, e := range l.Edges {
		if err := b.AddEdge(l.QueryNames[e.Q], l.AdNames[e.A], clickgraph.EdgeWeights{
			Impressions:       e.Impressions,
			Clicks:            e.Clicks,
			ExpectedClickRate: e.Rate,
		}); err != nil {
			return nil, fmt.Errorf("dist: rebuilding lease shard %d: %w", l.Shard, err)
		}
	}
	g := b.Build()

	// One engine over the whole subgraph — NOT a per-component plan.
	// Under a tolerance the engine stops when the whole shard converges;
	// splitting into components would let each stop on its own schedule
	// and diverge from what the coordinator's local path computes.
	localQ := make([]int, g.NumQueries())
	for i := range localQ {
		localQ[i] = i
	}
	localA := make([]int, g.NumAds())
	for i := range localA {
		localA[i] = i
	}
	plan := &partition.Plan{
		Shards:     []partition.Shard{{Queries: localQ, Ads: localA}},
		NumQueries: g.NumQueries(),
		NumAds:     g.NumAds(),
	}
	plan.Reannotate(g)

	opt := core.ShardOptions{Workers: w.Workers}
	if len(l.WarmQuery)+len(l.WarmAd) > 0 {
		opt.WarmStart = newWireScores(g, l.WarmQuery, l.WarmAd)
	}
	res, err := core.RunSharded(g, l.Config, plan, opt)
	if err != nil {
		return nil, fmt.Errorf("dist: running lease shard %d: %w", l.Shard, err)
	}

	seg := serve.EncodeShardSegment(res.QueryScores, res.AdScores, l.QueryIDs, l.AdIDs)
	return &SegmentResponse{
		Generation:  l.Generation,
		Shard:       l.Shard,
		Fingerprint: l.Fingerprint,
		Iterations:  res.Iterations,
		Converged:   res.Converged,
		QuerySeg:    seg.QuerySeg,
		QueryCRC:    seg.QueryCRC,
		AdSeg:       seg.AdSeg,
		AdCRC:       seg.AdCRC,
	}, nil
}

// Handler serves the worker protocol:
//
//	POST /refresh-shard  an encoded Lease; answers an encoded
//	                     SegmentResponse (400 on a bad lease, 500 on an
//	                     engine failure)
//	GET  /healthz        liveness probe
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		io.WriteString(rw, `{"status":"ok"}`+"\n")
	})
	mux.HandleFunc("/refresh-shard", func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(rw, "POST required", http.StatusMethodNotAllowed)
			return
		}
		limit := w.MaxLeaseBytes
		if limit <= 0 {
			limit = 1 << 30
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
		if err != nil {
			http.Error(rw, "reading lease: "+err.Error(), http.StatusBadRequest)
			return
		}
		if int64(len(body)) > limit {
			http.Error(rw, "lease exceeds size limit", http.StatusRequestEntityTooLarge)
			return
		}
		lease, err := DecodeLease(body)
		if err != nil {
			w.logf("dist: rejected lease: %v", err)
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := w.RefreshShard(lease)
		if err != nil {
			w.logf("dist: lease shard %d failed: %v", lease.Shard, err)
			http.Error(rw, err.Error(), http.StatusInternalServerError)
			return
		}
		w.logf("dist: completed lease shard %d gen %016x (%d queries, %d ads, %d edges; %d iters, converged=%v)",
			lease.Shard, lease.Generation, len(lease.QueryNames), len(lease.AdNames), len(lease.Edges),
			resp.Iterations, resp.Converged)
		rw.Header().Set("Content-Type", "application/octet-stream")
		rw.Write(resp.Encode())
	})
	return mux
}
