package dist

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/core"
	"simrankpp/internal/hedge"
	"simrankpp/internal/partition"
	"simrankpp/internal/serve"
)

// Options tunes the coordinator's failure handling. Zero values select
// the defaults noted on each field.
type Options struct {
	// LeaseTimeout bounds one dispatch round-trip (default 30s); a
	// worker that has not answered by then is treated as failed and the
	// lease is re-dispatched.
	LeaseTimeout time.Duration
	// MaxAttempts bounds dispatch rounds per shard (default 4); a round
	// may involve two workers when hedged. Exhausting it sends the
	// shard to the local fallback.
	MaxAttempts int
	// BackoffBase/BackoffMax shape the capped exponential backoff
	// between a shard's dispatch rounds (defaults 100ms / 5s); the wait
	// is scaled by Jitter into [½, 1]× so re-dispatches don't stampede.
	BackoffBase, BackoffMax time.Duration
	// HedgeQuantile picks the completed-lease latency percentile after
	// which a straggler is hedged to a second worker (default 0.95);
	// HedgeAfter floors the hedge delay (default 250ms). Hedging starts
	// only once 3 leases have completed — before that there is no
	// latency signal to call a dispatch a straggler against.
	HedgeQuantile float64
	HedgeAfter    time.Duration
	// MaxWorkerFails is how many consecutive failures mark a worker
	// dead (default 3). Dead workers receive no further leases.
	MaxWorkerFails int
	// Concurrency bounds in-flight shards (default 2 × workers).
	Concurrency int
	// LocalWorkers is the engine budget for the local fallback run
	// (<= 0: GOMAXPROCS).
	LocalWorkers int
	// Transport overrides the HTTP transport (the chaos suite's
	// fault-injection seam); nil uses http.DefaultTransport.
	Transport http.RoundTripper
	// Jitter overrides the backoff jitter source, returning values in
	// [0, 1]; nil uses math/rand. Tests pin it for determinism.
	Jitter func() float64
	// BidTerms is the bid-term set the previous generation's precomputed
	// rewrite section was built under; AssembleRefresh rejects a refresh
	// whose set differs (clean shards byte-copy their filtered lists).
	// nil when the section is unfiltered or absent.
	BidTerms map[string]bool
	// Checkpoint, when non-nil, is called at each refresh stage
	// ("pre-dispatch", "pre-commit", "commit:mid-write", "pre-publish");
	// returning an error aborts the refresh there — the crash-injection
	// seam the chaos suite drives.
	Checkpoint func(stage string) error
	// Logf receives progress lines; nil uses the standard logger.
	Logf func(format string, args ...any)
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.LeaseTimeout <= 0 {
		out.LeaseTimeout = 30 * time.Second
	}
	if out.MaxAttempts <= 0 {
		out.MaxAttempts = 4
	}
	if out.BackoffBase <= 0 {
		out.BackoffBase = 100 * time.Millisecond
	}
	if out.BackoffMax <= 0 {
		out.BackoffMax = 5 * time.Second
	}
	if out.HedgeQuantile <= 0 || out.HedgeQuantile >= 1 {
		out.HedgeQuantile = 0.95
	}
	if out.HedgeAfter <= 0 {
		out.HedgeAfter = 250 * time.Millisecond
	}
	if out.MaxWorkerFails <= 0 {
		out.MaxWorkerFails = 3
	}
	if out.Jitter == nil {
		out.Jitter = rand.Float64
	}
	return out
}

// FleetStats counts what the failure machinery did during one refresh.
type FleetStats struct {
	// RemoteShards/LocalFallbackShards partition the dirty shards by
	// where their segments were computed.
	RemoteShards, LocalFallbackShards int
	// Retries counts re-dispatched leases (a hedge is not a retry);
	// Hedges counts second-worker dispatches for stragglers;
	// DuplicateWins counts completions that lost the idempotent accept
	// race (their bytes were discarded).
	Retries, Hedges, DuplicateWins int
	// WorkerDeaths counts workers marked dead after consecutive
	// failures.
	WorkerDeaths int
}

// FleetResult is one distributed refresh's compute output, ready for
// serve.AssembleRefresh.
type FleetResult struct {
	// Segments has one entry per plan shard: non-nil exactly at the
	// dirty indices.
	Segments []*serve.ShardSegment
	// Iterations is the deepest dirty-shard run; Converged ANDs over
	// every dirty shard (vacuously true with none).
	Iterations int
	Converged  bool
	Stats      FleetStats
}

// workerState tracks one worker's health.
type workerState struct {
	url   string
	fails int
	dead  bool
}

// completionKey is the idempotency identity a completed lease files
// under: duplicate completions (hedges, re-dispatched timeouts that
// raced their retry) collapse onto one entry, first writer wins.
type completionKey struct {
	gen   uint64
	shard uint32
	fp    uint64
}

// Coordinator dispatches dirty-shard leases to a worker fleet.
type Coordinator struct {
	opt     Options
	client  *http.Client
	workers []*workerState
	backoff hedge.Backoff
	lat     *hedge.Tracker

	mu        sync.Mutex
	rr        int
	completed map[completionKey]*serve.ShardSegment
	stats     FleetStats
}

// NewCoordinator returns a coordinator over the given worker base URLs
// (e.g. "http://host:9090").
func NewCoordinator(workerURLs []string, opt Options) *Coordinator {
	opt = (&opt).withDefaults()
	c := &Coordinator{
		opt:       opt,
		client:    &http.Client{Transport: opt.Transport},
		backoff:   hedge.Backoff{Base: opt.BackoffBase, Max: opt.BackoffMax, Jitter: opt.Jitter},
		lat:       &hedge.Tracker{Quantile: opt.HedgeQuantile, Floor: opt.HedgeAfter},
		completed: make(map[completionKey]*serve.ShardSegment),
	}
	for _, u := range workerURLs {
		c.workers = append(c.workers, &workerState{url: u})
	}
	return c
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opt.Logf != nil {
		c.opt.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// pickWorker round-robins over live workers, skipping exclude (the
// hedge's primary); nil when none qualify.
func (c *Coordinator) pickWorker(exclude *workerState) *workerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	for range c.workers {
		w := c.workers[c.rr%len(c.workers)]
		c.rr++
		if !w.dead && w != exclude {
			return w
		}
	}
	return nil
}

// markResult updates a worker's health after a dispatch.
func (c *Coordinator) markResult(w *workerState, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ok {
		w.fails = 0
		return
	}
	w.fails++
	if !w.dead && w.fails >= c.opt.MaxWorkerFails {
		w.dead = true
		c.stats.WorkerDeaths++
		c.logf("dist: worker %s marked dead after %d consecutive failures", w.url, w.fails)
	}
}

// recordLatency files one completed-lease round-trip time with the
// shared latency tracker — the hedging threshold's signal.
func (c *Coordinator) recordLatency(d time.Duration) { c.lat.Record(d) }

// hedgeDelay returns when a dispatch becomes a straggler: the
// configured percentile of completed-lease latencies, floored at
// HedgeAfter. ok is false until 3 leases have completed.
func (c *Coordinator) hedgeDelay() (time.Duration, bool) { return c.lat.Delay() }

// accept files a completed lease idempotently: the first completion
// under a (generation, shard, fingerprint) key wins, later ones are
// counted and dropped. A response whose echo or CRCs disagree with the
// lease is rejected outright — it is not a completion of this work.
func (c *Coordinator) accept(l *Lease, resp *SegmentResponse) (first bool, err error) {
	if resp.Generation != l.Generation || resp.Shard != l.Shard || resp.Fingerprint != l.Fingerprint {
		return false, fmt.Errorf("dist: completion echo (gen %016x shard %d fp %016x) does not match lease (gen %016x shard %d fp %016x)",
			resp.Generation, resp.Shard, resp.Fingerprint, l.Generation, l.Shard, l.Fingerprint)
	}
	seg := &serve.ShardSegment{
		QuerySeg: resp.QuerySeg, QueryCRC: resp.QueryCRC,
		AdSeg: resp.AdSeg, AdCRC: resp.AdCRC,
	}
	if err := seg.Validate(); err != nil {
		return false, err
	}
	key := completionKey{gen: l.Generation, shard: l.Shard, fp: l.Fingerprint}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.completed[key]; dup {
		c.stats.DuplicateWins++
		return false, nil
	}
	c.completed[key] = seg
	return true, nil
}

// dispatchOnce sends one lease to one worker and decodes the response.
func (c *Coordinator) dispatchOnce(ctx context.Context, w *workerState, leaseBytes []byte) (*SegmentResponse, error) {
	ctx, cancel := context.WithTimeout(ctx, c.opt.LeaseTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+"/refresh-shard", bytes.NewReader(leaseBytes))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	httpResp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer httpResp.Body.Close()
	body, err := io.ReadAll(httpResp.Body)
	if err != nil {
		return nil, err
	}
	if httpResp.StatusCode != http.StatusOK {
		// Carry the worker's Retry-After hint (a shedding 503 sends one)
		// up to the retry loop, which takes the max of it and the local
		// backoff schedule.
		return nil, fmt.Errorf("dist: worker %s %w", w.url, &hedge.StatusError{
			Code:       httpResp.StatusCode,
			RetryAfter: hedge.ParseRetryAfter(httpResp.Header),
			Detail:     truncated(body),
		})
	}
	return DecodeSegmentResponse(body)
}

func truncated(b []byte) string {
	const max = 200
	if len(b) > max {
		b = b[:max]
	}
	return string(bytes.TrimSpace(b))
}

// shardOutcome is one dispatch's result, tagged with the worker that
// produced it.
type shardOutcome struct {
	resp *SegmentResponse
	w    *workerState
	err  error
}

// dispatchShard drives one shard through attempts, hedging, and
// backoff. It returns the accepted response or an error when every
// avenue failed (the caller then falls back to local recompute).
func (c *Coordinator) dispatchShard(ctx context.Context, l *Lease) (*SegmentResponse, error) {
	leaseBytes, err := l.Encode()
	if err != nil {
		return nil, err
	}
	var lastErr error
	for attempt := 0; attempt < c.opt.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if attempt > 0 {
			c.mu.Lock()
			c.stats.Retries++
			c.mu.Unlock()
			// Equal-jitter backoff, floored at whatever Retry-After the
			// failed worker asked for — its overload signal outranks the
			// local schedule.
			if err := c.backoff.Sleep(ctx, attempt, hedge.RetryAfterHint(lastErr)); err != nil {
				return nil, err
			}
		}
		primary := c.pickWorker(nil)
		if primary == nil {
			if lastErr == nil {
				lastErr = fmt.Errorf("dist: no live workers")
			}
			return nil, lastErr
		}
		resp, err := c.dispatchHedged(ctx, l, leaseBytes, primary)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		c.logf("dist: shard %d attempt %d failed: %v", l.Shard, attempt+1, err)
	}
	return nil, fmt.Errorf("dist: shard %d exhausted %d attempts: %w", l.Shard, c.opt.MaxAttempts, lastErr)
}

// dispatchHedged runs one dispatch round: the primary worker, plus —
// if the round outlives the straggler threshold — one hedge to a
// different worker. The first accepted completion wins and cancels the
// other; a completion that loses the accept race is already counted by
// accept.
func (c *Coordinator) dispatchHedged(ctx context.Context, l *Lease, leaseBytes []byte, primary *workerState) (*SegmentResponse, error) {
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan shardOutcome, 2)
	send := func(w *workerState) {
		start := time.Now()
		resp, err := c.dispatchOnce(rctx, w, leaseBytes)
		if err == nil {
			c.recordLatency(time.Since(start))
		}
		results <- shardOutcome{resp: resp, w: w, err: err}
	}
	go send(primary)
	outstanding := 1

	var hedgeCh <-chan time.Time
	if delay, ok := c.hedgeDelay(); ok {
		t := time.NewTimer(delay)
		defer t.Stop()
		hedgeCh = t.C
	}

	var lastErr error
	for outstanding > 0 {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-hedgeCh:
			hedgeCh = nil
			if secondary := c.pickWorker(primary); secondary != nil {
				c.mu.Lock()
				c.stats.Hedges++
				c.mu.Unlock()
				c.logf("dist: shard %d straggling on %s, hedging to %s", l.Shard, primary.url, secondary.url)
				go send(secondary)
				outstanding++
			}
		case out := <-results:
			outstanding--
			if out.err != nil {
				c.markResult(out.w, false)
				lastErr = out.err
				continue
			}
			first, err := c.accept(l, out.resp)
			if err != nil {
				// A decoded-but-wrong response is a worker fault too.
				c.markResult(out.w, false)
				lastErr = err
				continue
			}
			c.markResult(out.w, true)
			// first==false means a concurrent path (a hedge racing its
			// primary) already filed this shard; either copy is
			// byte-identical by the determinism contract, and the caller
			// reads the filed segment from the registry either way.
			_ = first
			return out.resp, nil
		}
	}
	return nil, lastErr
}

// buildLease assembles one dirty shard's dispatch payload: the induced
// subgraph in subview-local order, and — when warm is set — the exact
// warm-start pairs the local path's seeder would pull, precomputed
// against the previous generation so the worker needs no access to it.
func buildLease(g *clickgraph.Graph, prev *serve.Snapshot, plan *partition.Plan, si int, generation uint64, cfg core.Config, warm bool) (*Lease, error) {
	sh := &plan.Shards[si]
	view, err := clickgraph.NewSubview(g, sh.Queries, sh.Ads)
	if err != nil {
		return nil, fmt.Errorf("dist: shard %d subview: %w", si, err)
	}
	vg := view.Graph
	l := &Lease{
		Generation:  generation,
		Shard:       uint32(si),
		Fingerprint: sh.Fingerprint,
		Config:      cfg,
		QueryIDs:    view.QueryIDs,
		AdIDs:       view.AdIDs,
	}
	l.QueryNames = make([]string, vg.NumQueries())
	for i := range l.QueryNames {
		l.QueryNames[i] = vg.Query(i)
	}
	l.AdNames = make([]string, vg.NumAds())
	for i := range l.AdNames {
		l.AdNames[i] = vg.Ad(i)
	}
	vg.Edges(func(q, a int, w clickgraph.EdgeWeights) bool {
		l.Edges = append(l.Edges, WireEdge{
			Q: uint32(q), A: uint32(a),
			Impressions: w.Impressions, Clicks: w.Clicks, Rate: w.ExpectedClickRate,
		})
		return true
	})
	if warm {
		// Mirror core's warm seeder exactly — same iteration order, same
		// j > i guard — so the worker's seeded frontier is bit-identical
		// to what a local warm run of this shard would build.
		for q := 0; q < vg.NumQueries(); q++ {
			old, ok := prev.QueryID(vg.Query(q))
			if !ok {
				continue
			}
			for _, sc := range prev.TopRewrites(old, -1) {
				if nj, ok := vg.QueryID(prev.Query(sc.Node)); ok && nj > q {
					l.WarmQuery = append(l.WarmQuery, WirePair{I: uint32(q), J: uint32(nj), Score: sc.Score})
				}
			}
		}
		for a := 0; a < vg.NumAds(); a++ {
			old, ok := prev.AdID(vg.Ad(a))
			if !ok {
				continue
			}
			for _, sc := range prev.TopSimilarAds(old, -1) {
				if nj, ok := vg.AdID(prev.Ad(sc.Node)); ok && nj > a {
					l.WarmAd = append(l.WarmAd, WirePair{I: uint32(a), J: uint32(nj), Score: sc.Score})
				}
			}
		}
	}
	return l, nil
}

// planGeneration derives the target generation's identity: the XOR of
// every projected shard's new-graph fingerprint — the same value the
// assembled snapshot's header will advertise.
func planGeneration(plan *partition.Plan) uint64 {
	var fp uint64
	for i := range plan.Shards {
		fp ^= plan.Shards[i].Fingerprint
	}
	return fp
}

// RefreshShards computes every dirty shard's segment — remotely where
// the fleet allows, locally where it does not — and returns the
// assembled compute result. The engine configuration is the previous
// snapshot's recorded config; dirty shards are warm-started exactly
// when it converges by tolerance (serve.RunRefresh's rule).
func (c *Coordinator) RefreshShards(ctx context.Context, g *clickgraph.Graph, prev *serve.Snapshot, diff *partition.Diff) (*FleetResult, error) {
	cfg := prev.Config()
	warm := cfg.Tolerance > 0
	generation := planGeneration(diff.Plan)
	out := &FleetResult{
		Segments:  make([]*serve.ShardSegment, len(diff.Plan.Shards)),
		Converged: true,
	}

	var dirtyIdx []int
	for si, d := range diff.Dirty {
		if d {
			dirtyIdx = append(dirtyIdx, si)
		}
	}
	if len(dirtyIdx) == 0 {
		return out, nil
	}

	// Dispatch phase: every dirty shard through the fleet, bounded
	// concurrency, failures collected for the fallback phase.
	type shardDone struct {
		si   int
		resp *SegmentResponse
		err  error
	}
	conc := c.opt.Concurrency
	if conc <= 0 {
		conc = 2 * len(c.workers)
	}
	if conc < 1 {
		conc = 1
	}
	sem := make(chan struct{}, conc)
	done := make(chan shardDone, len(dirtyIdx))
	var wg sync.WaitGroup
	for _, si := range dirtyIdx {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if len(c.workers) == 0 {
				done <- shardDone{si: si, err: fmt.Errorf("dist: no workers configured")}
				return
			}
			lease, err := buildLease(g, prev, diff.Plan, si, generation, cfg, warm)
			if err != nil {
				done <- shardDone{si: si, err: err}
				return
			}
			resp, err := c.dispatchShard(ctx, lease)
			done <- shardDone{si: si, resp: resp, err: err}
		}(si)
	}
	wg.Wait()
	close(done)

	var failed []int
	for d := range done {
		if d.err != nil {
			failed = append(failed, d.si)
			continue
		}
		key := completionKey{gen: generation, shard: uint32(d.si), fp: diff.Plan.Shards[d.si].Fingerprint}
		c.mu.Lock()
		out.Segments[d.si] = c.completed[key]
		c.mu.Unlock()
		if out.Segments[d.si] == nil {
			// Defensive: a success without a filed completion cannot
			// happen (accept files before dispatchShard returns), but a
			// nil segment must never reach assembly.
			failed = append(failed, d.si)
			continue
		}
		out.Stats.RemoteShards++
		if d.resp.Iterations > out.Iterations {
			out.Iterations = d.resp.Iterations
		}
		out.Converged = out.Converged && d.resp.Converged
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Fallback phase: shards the fleet could not complete degrade to
	// the single-machine refresh path — one warm dirty-shard run.
	if len(failed) > 0 {
		sort.Ints(failed)
		c.logf("dist: fallback-to-local: recomputing %d shard(s) %v locally (fleet unavailable or exhausted)", len(failed), failed)
		mask := make([]bool, len(diff.Plan.Shards))
		for _, si := range failed {
			mask[si] = true
		}
		opt := core.ShardOptions{
			Workers:           c.opt.LocalWorkers,
			RetainShardScores: true,
			RunShards:         mask,
		}
		if warm {
			opt.WarmStart = prev
		}
		res, err := core.RunSharded(g, cfg, diff.Plan, opt)
		if err != nil {
			return nil, fmt.Errorf("dist: local fallback: %w", err)
		}
		for _, si := range failed {
			ss := &res.ShardScores[si]
			seg := serve.EncodeShardSegment(ss.QueryScores, ss.AdScores, ss.QueryIDs, ss.AdIDs)
			out.Segments[si] = &seg
			out.Stats.LocalFallbackShards++
		}
		if res.Iterations > out.Iterations {
			out.Iterations = res.Iterations
		}
		out.Converged = out.Converged && res.Converged
	}

	c.mu.Lock()
	out.Stats.Retries = c.stats.Retries
	out.Stats.Hedges = c.stats.Hedges
	out.Stats.DuplicateWins = c.stats.DuplicateWins
	out.Stats.WorkerDeaths = c.stats.WorkerDeaths
	c.mu.Unlock()
	return out, nil
}

// checkpointWriter invokes the crash hook once, after the first write
// has reached the journal's temp file — the "coordinator died with a
// partial snapshot on disk" instant.
type checkpointWriter struct {
	io.Writer
	hook  func() error
	fired bool
}

func (cw *checkpointWriter) Write(p []byte) (int, error) {
	n, err := cw.Writer.Write(p)
	if err == nil && !cw.fired {
		cw.fired = true
		if herr := cw.hook(); herr != nil {
			return n, herr
		}
	}
	return n, err
}

// RefreshGeneration runs one complete distributed refresh against a
// generation journal: diff, fleet dispatch (with local fallback),
// journaled commit of the assembled snapshot, publish. Every stage
// passes the Checkpoint hook first, so a chaos test can kill the
// refresh at any point and assert the previous generation still
// serves. The caller owns Adopt/SweepTemp/Prune around it, exactly as
// with the local refreshGeneration path. On success the published
// generation is returned — the ingest controller keys its
// reload-on-publish and its fold logging off it.
func RefreshGeneration(ctx context.Context, c *Coordinator, gs *serve.GenerationStore, g *clickgraph.Graph, prev *serve.Snapshot) (serve.RefreshStats, *partition.Diff, *FleetResult, *serve.Generation, error) {
	var st serve.RefreshStats
	checkpoint := c.opt.Checkpoint
	if checkpoint == nil {
		checkpoint = func(string) error { return nil }
	}
	if err := checkpoint("pre-dispatch"); err != nil {
		return st, nil, nil, nil, err
	}
	diff, err := partition.DiffPlans(prev, g)
	if err != nil {
		return st, nil, nil, nil, err
	}
	fleet, err := c.RefreshShards(ctx, g, prev, diff)
	if err != nil {
		return st, diff, nil, nil, err
	}
	if err := checkpoint("pre-commit"); err != nil {
		return st, diff, fleet, nil, err
	}
	cfg := prev.Config()
	gen, err := gs.Commit(diff.DirtyShards, planGeneration(diff.Plan), func(w io.Writer) error {
		cw := &checkpointWriter{Writer: w, hook: func() error { return checkpoint("commit:mid-write") }}
		var werr error
		st, werr = serve.AssembleRefresh(cw, prev, g, cfg, diff.Plan, diff.Dirty, fleet.Segments,
			fleet.Iterations, fleet.Converged, c.opt.BidTerms)
		return werr
	})
	if err != nil {
		return st, diff, fleet, nil, err
	}
	if err := checkpoint("pre-publish"); err != nil {
		return st, diff, fleet, nil, err
	}
	if err := gs.Publish(gen); err != nil {
		return st, diff, fleet, nil, err
	}
	c.logf("dist: published generation %d (%d remote, %d local-fallback, %d retries, %d hedges)",
		gen.ID, fleet.Stats.RemoteShards, fleet.Stats.LocalFallbackShards, fleet.Stats.Retries, fleet.Stats.Hedges)
	return st, diff, fleet, gen, nil
}
