// Package dist turns the incremental refresh into a fleet operation: a
// coordinator diffs the new graph against the serving snapshot
// (partition.DiffPlans), dispatches each dirty shard as a lease to a
// pool of HTTP workers, and assembles the next generation from the
// CRC'd segments they return — the same bytes the single-machine
// refresh path writes, so a distributed refresh is byte-identical to a
// local one. Failure is the default case: leases carry deadlines and
// are re-dispatched with capped exponential backoff + jitter,
// stragglers are hedged to a second worker, duplicate completions
// resolve idempotently by (generation, shard, fingerprint), and a shard
// whose workers are all dead falls back to local recompute, so the
// refresh degrades to the single-machine path instead of failing.
package dist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"

	"simrankpp/internal/core"
)

// Wire formats (all integers little-endian).
//
// A lease ("SRPPLEA1") is one dirty shard's complete work order: the
// shard's induced subgraph (names in subview-local = ascending-global
// order, edges with all three weight channels), the global id maps the
// response's segments must be keyed by, the engine configuration as
// JSON, and optional warm-start pairs drawn from the previous
// generation. A trailing CRC32 covers every preceding byte.
//
// A segment response ("SRPPSEG1") echoes the lease identity
// (generation, shard, fingerprint), reports the shard run's iteration
// count and convergence, and carries the two encoded score segments —
// the exact bytes serve.AssembleRefresh stores — each with its own
// CRC32, plus a whole-message CRC32 trailer.

const (
	leaseMagic    = "SRPPLEA1"
	responseMagic = "SRPPSEG1"

	// maxWireNodes/maxWireEdges/maxWirePairs bound decoded counts so a
	// corrupt or hostile length prefix cannot drive an allocation bomb.
	maxWireNodes = 1 << 28
	maxWireEdges = 1 << 30
	maxWirePairs = 1 << 30
)

// WireEdge is one subgraph edge in worker-local ids with every weight
// channel, exactly what clickgraph.Builder.AddEdge needs to reproduce
// the subview's CSR.
type WireEdge struct {
	Q, A                uint32
	Impressions, Clicks int64
	Rate                float64
}

// WirePair is one warm-start score pair in worker-local ids, I < J.
type WirePair struct {
	I, J  uint32
	Score float64
}

// Lease is one dirty shard's dispatch payload.
type Lease struct {
	// Generation identifies the refresh this lease belongs to (the
	// target generation's fingerprint); Shard is the plan index;
	// Fingerprint the shard's new-graph subgraph fingerprint. The triple
	// is the idempotency key duplicate completions resolve under.
	Generation  uint64
	Shard       uint32
	Fingerprint uint64
	// Config is the engine configuration the shard must run under —
	// the previous snapshot's recorded config.
	Config core.Config
	// QueryNames/AdNames are the shard's node names in subview-local
	// order (ascending global id); QueryIDs/AdIDs the matching global
	// ids the returned segments must be remapped to.
	QueryNames, AdNames []string
	QueryIDs, AdIDs     []int
	// Edges is the induced subgraph in local ids.
	Edges []WireEdge
	// WarmQuery/WarmAd seed the shard engine from the previous
	// generation's scores (empty under a fixed-iteration config).
	WarmQuery, WarmAd []WirePair
}

// SegmentResponse is a worker's completed shard: the lease identity
// echoed, run metadata, and the encoded segments in global ids.
type SegmentResponse struct {
	Generation  uint64
	Shard       uint32
	Fingerprint uint64
	Iterations  int
	Converged   bool
	QuerySeg    []byte
	QueryCRC    uint32
	AdSeg       []byte
	AdCRC       uint32
}

// wireWriter accumulates an encoding; the CRC trailer is appended last
// over everything before it.
type wireWriter struct{ buf []byte }

func (w *wireWriter) bytes(b []byte) { w.buf = append(w.buf, b...) }
func (w *wireWriter) u8(v uint8)     { w.buf = append(w.buf, v) }
func (w *wireWriter) u32(v uint32)   { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *wireWriter) u64(v uint64)   { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *wireWriter) f64(v float64)  { w.u64(math.Float64bits(v)) }
func (w *wireWriter) str(s string) {
	w.buf = binary.AppendUvarint(w.buf, uint64(len(s)))
	w.buf = append(w.buf, s...)
}
func (w *wireWriter) finish() []byte {
	return binary.LittleEndian.AppendUint32(w.buf, crc32.ChecksumIEEE(w.buf))
}

// wireReader decodes with bounds checks; any overrun marks err and
// every later read returns zero values, so decoders check err once.
type wireReader struct {
	buf []byte
	pos int
	err error
}

func (r *wireReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *wireReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > len(r.buf) {
		r.fail("dist: truncated message (want %d bytes at offset %d of %d)", n, r.pos, len(r.buf))
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *wireReader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *wireReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *wireReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *wireReader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *wireReader) str() string {
	if r.err != nil {
		return ""
	}
	n, sz := binary.Uvarint(r.buf[r.pos:])
	if sz <= 0 || n > uint64(len(r.buf)) {
		r.fail("dist: bad string length at offset %d", r.pos)
		return ""
	}
	r.pos += sz
	return string(r.take(int(n)))
}

// count reads a u32 length prefix bounded by max.
func (r *wireReader) count(what string, max int) int {
	n := r.u32()
	if r.err == nil && int64(n) > int64(max) {
		r.fail("dist: %s count %d exceeds limit %d", what, n, max)
	}
	return int(n)
}

// checkTrailer verifies buf ends with a CRC32 over the rest and returns
// the payload without it.
func checkTrailer(buf []byte, what string) ([]byte, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("dist: %s too short for a CRC trailer (%d bytes)", what, len(buf))
	}
	body, trailer := buf[:len(buf)-4], buf[len(buf)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(trailer); got != want {
		return nil, fmt.Errorf("dist: %s CRC mismatch (got %08x want %08x) — corrupt in transit", what, got, want)
	}
	return body, nil
}

// Encode serializes the lease with its CRC trailer.
func (l *Lease) Encode() ([]byte, error) {
	if len(l.QueryNames) != len(l.QueryIDs) || len(l.AdNames) != len(l.AdIDs) {
		return nil, fmt.Errorf("dist: lease name/id lists disagree (%d/%d queries, %d/%d ads)",
			len(l.QueryNames), len(l.QueryIDs), len(l.AdNames), len(l.AdIDs))
	}
	cfgJSON, err := json.Marshal(l.Config)
	if err != nil {
		return nil, fmt.Errorf("dist: encoding lease config: %w", err)
	}
	w := &wireWriter{}
	w.bytes([]byte(leaseMagic))
	w.u64(l.Generation)
	w.u32(l.Shard)
	w.u64(l.Fingerprint)
	w.u32(uint32(len(cfgJSON)))
	w.bytes(cfgJSON)
	w.u32(uint32(len(l.QueryNames)))
	w.u32(uint32(len(l.AdNames)))
	for _, s := range l.QueryNames {
		w.str(s)
	}
	for _, s := range l.AdNames {
		w.str(s)
	}
	for _, id := range l.QueryIDs {
		w.u32(uint32(id))
	}
	for _, id := range l.AdIDs {
		w.u32(uint32(id))
	}
	w.u32(uint32(len(l.Edges)))
	for _, e := range l.Edges {
		w.u32(e.Q)
		w.u32(e.A)
		w.u64(uint64(e.Impressions))
		w.u64(uint64(e.Clicks))
		w.f64(e.Rate)
	}
	for _, pairs := range [2][]WirePair{l.WarmQuery, l.WarmAd} {
		w.u32(uint32(len(pairs)))
		for _, p := range pairs {
			w.u32(p.I)
			w.u32(p.J)
			w.f64(p.Score)
		}
	}
	return w.finish(), nil
}

// DecodeLease parses and validates a lease message.
func DecodeLease(buf []byte) (*Lease, error) {
	body, err := checkTrailer(buf, "lease")
	if err != nil {
		return nil, err
	}
	r := &wireReader{buf: body}
	if magic := r.take(8); r.err != nil || string(magic) != leaseMagic {
		return nil, fmt.Errorf("dist: bad lease magic")
	}
	l := &Lease{}
	l.Generation = r.u64()
	l.Shard = r.u32()
	l.Fingerprint = r.u64()
	cfgJSON := r.take(r.count("config", 1<<20))
	if r.err == nil {
		if err := json.Unmarshal(cfgJSON, &l.Config); err != nil {
			return nil, fmt.Errorf("dist: decoding lease config: %w", err)
		}
	}
	nq := r.count("query", maxWireNodes)
	na := r.count("ad", maxWireNodes)
	if r.err != nil {
		return nil, r.err
	}
	l.QueryNames = make([]string, nq)
	for i := range l.QueryNames {
		l.QueryNames[i] = r.str()
	}
	l.AdNames = make([]string, na)
	for i := range l.AdNames {
		l.AdNames[i] = r.str()
	}
	l.QueryIDs = make([]int, nq)
	for i := range l.QueryIDs {
		l.QueryIDs[i] = int(r.u32())
	}
	l.AdIDs = make([]int, na)
	for i := range l.AdIDs {
		l.AdIDs[i] = int(r.u32())
	}
	ne := r.count("edge", maxWireEdges)
	if r.err != nil {
		return nil, r.err
	}
	l.Edges = make([]WireEdge, ne)
	for i := range l.Edges {
		l.Edges[i] = WireEdge{
			Q:           r.u32(),
			A:           r.u32(),
			Impressions: int64(r.u64()),
			Clicks:      int64(r.u64()),
			Rate:        r.f64(),
		}
	}
	for _, dst := range [2]*[]WirePair{&l.WarmQuery, &l.WarmAd} {
		np := r.count("warm pair", maxWirePairs)
		if r.err != nil {
			return nil, r.err
		}
		pairs := make([]WirePair, np)
		for i := range pairs {
			pairs[i] = WirePair{I: r.u32(), J: r.u32(), Score: r.f64()}
		}
		*dst = pairs
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(body) {
		return nil, fmt.Errorf("dist: %d trailing bytes after lease", len(body)-r.pos)
	}
	// Structural sanity beyond the CRC: local ids must address the
	// shipped node lists, warm pairs must respect the i<j storage order.
	for i, e := range l.Edges {
		if int(e.Q) >= nq || int(e.A) >= na {
			return nil, fmt.Errorf("dist: lease edge %d references node out of range", i)
		}
	}
	for _, p := range l.WarmQuery {
		if int(p.I) >= nq || int(p.J) >= nq || p.I >= p.J {
			return nil, fmt.Errorf("dist: lease warm query pair out of range or unordered")
		}
	}
	for _, p := range l.WarmAd {
		if int(p.I) >= na || int(p.J) >= na || p.I >= p.J {
			return nil, fmt.Errorf("dist: lease warm ad pair out of range or unordered")
		}
	}
	return l, nil
}

// Encode serializes the response with its CRC trailer.
func (resp *SegmentResponse) Encode() []byte {
	w := &wireWriter{}
	w.bytes([]byte(responseMagic))
	w.u64(resp.Generation)
	w.u32(resp.Shard)
	w.u64(resp.Fingerprint)
	w.u32(uint32(resp.Iterations))
	if resp.Converged {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.u32(uint32(len(resp.QuerySeg)))
	w.u32(resp.QueryCRC)
	w.u32(uint32(len(resp.AdSeg)))
	w.u32(resp.AdCRC)
	w.bytes(resp.QuerySeg)
	w.bytes(resp.AdSeg)
	return w.finish()
}

// DecodeSegmentResponse parses and validates a response message.
func DecodeSegmentResponse(buf []byte) (*SegmentResponse, error) {
	body, err := checkTrailer(buf, "segment response")
	if err != nil {
		return nil, err
	}
	r := &wireReader{buf: body}
	if magic := r.take(8); r.err != nil || string(magic) != responseMagic {
		return nil, fmt.Errorf("dist: bad segment response magic")
	}
	resp := &SegmentResponse{}
	resp.Generation = r.u64()
	resp.Shard = r.u32()
	resp.Fingerprint = r.u64()
	resp.Iterations = int(r.u32())
	resp.Converged = r.u8() != 0
	qLen := r.count("query segment byte", len(body))
	resp.QueryCRC = r.u32()
	aLen := r.count("ad segment byte", len(body))
	resp.AdCRC = r.u32()
	resp.QuerySeg = r.take(qLen)
	resp.AdSeg = r.take(aLen)
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(body) {
		return nil, fmt.Errorf("dist: %d trailing bytes after segment response", len(body)-r.pos)
	}
	return resp, nil
}
