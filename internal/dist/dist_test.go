package dist

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"testing"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/core"
	"simrankpp/internal/partition"
	"simrankpp/internal/serve"
)

// The fixtures mirror serve's refresh tests: a deterministic 4-cluster
// graph with every node interned up front (stable ids across rebuilds)
// and per-cluster weights derived from seeds[c], so bumping one
// cluster's seed models a 1-cluster churn step. Each cluster is exactly
// two connected components (equal-parity edges), so the component plan
// has 8 shards and a 1-cluster bump dirties 2 of them.

func refreshGraph(t *testing.T, seeds [4]int) *clickgraph.Graph {
	t.Helper()
	b := clickgraph.NewBuilder()
	for c := 0; c < 4; c++ {
		for q := 0; q < 10; q++ {
			b.AddQuery(fmt.Sprintf("c%d-q%d", c, q))
		}
		for a := 0; a < 8; a++ {
			b.AddAd(fmt.Sprintf("c%d-a%d", c, a))
		}
	}
	for c := 0; c < 4; c++ {
		for q := 0; q < 10; q++ {
			for a := 0; a < 8; a++ {
				if q%2 != a%2 {
					continue
				}
				clicks := int64((q*7+a*3+seeds[c])%9 + 1)
				err := b.AddEdge(fmt.Sprintf("c%d-q%d", c, q), fmt.Sprintf("c%d-a%d", c, a),
					clickgraph.EdgeWeights{
						Impressions:       clicks * 3,
						Clicks:            clicks,
						ExpectedClickRate: float64((q*5+a*11+seeds[c])%100) / 100,
					})
				if err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return b.Build()
}

func refreshCfg() core.Config {
	cfg := core.DefaultConfig().WithVariant(core.Weighted)
	cfg.Channel = core.ChannelClicks
	cfg.Iterations = 40
	cfg.Tolerance = 1e-10
	cfg.PruneEpsilon = 1e-8
	return cfg
}

// buildGeneration runs g sharded (scores retained) and snapshots it.
func buildGeneration(t *testing.T, g *clickgraph.Graph, cfg core.Config) ([]byte, *serve.Snapshot) {
	t.Helper()
	plan := partition.ComponentPlan(g)
	res, err := core.RunSharded(g, cfg, plan, core.ShardOptions{Workers: 3, RetainShardScores: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := serve.WriteSnapshot(&buf, res); err != nil {
		t.Fatal(err)
	}
	snap, err := serve.NewSnapshot(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), snap
}

// localRefreshBytes runs one single-machine refresh step in memory —
// the bytes every distributed path must reproduce exactly.
func localRefreshBytes(t *testing.T, g *clickgraph.Graph, prev *serve.Snapshot) (*core.Result, *partition.Diff, []byte) {
	t.Helper()
	res, diff, err := serve.RunRefresh(g, prev, 3)
	if err != nil {
		t.Fatalf("RunRefresh: %v", err)
	}
	var buf bytes.Buffer
	if _, err := serve.RefreshSnapshot(&buf, prev, res, diff.Dirty, nil); err != nil {
		t.Fatalf("RefreshSnapshot: %v", err)
	}
	return res, diff, buf.Bytes()
}

// maskVolatile zeroes the only header fields two equivalent snapshots
// may legitimately disagree on: the generation timestamp at [128,136)
// and the header CRC at [196,200) that covers it (format v3 layout).
func maskVolatile(t *testing.T, b []byte) []byte {
	t.Helper()
	const generatedAtOff, headerCRCOff = 128, 196
	if len(b) < headerCRCOff+4 {
		t.Fatalf("snapshot too short to mask: %d bytes", len(b))
	}
	out := append([]byte(nil), b...)
	for i := generatedAtOff; i < generatedAtOff+8; i++ {
		out[i] = 0
	}
	for i := headerCRCOff; i < headerCRCOff+4; i++ {
		out[i] = 0
	}
	return out
}

// startWorkers launches n in-process worker servers and returns their
// base URLs.
func startWorkers(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		ts := httptest.NewServer((&Worker{Workers: 3, Logf: t.Logf}).Handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	return urls
}

// dirtyLease diffs next against prev and builds the lease for the first
// dirty shard.
func dirtyLease(t *testing.T, prev *serve.Snapshot, next *clickgraph.Graph) (*Lease, *partition.Diff) {
	t.Helper()
	diff, err := partition.DiffPlans(prev, next)
	if err != nil {
		t.Fatal(err)
	}
	for si, d := range diff.Dirty {
		if !d {
			continue
		}
		cfg := prev.Config()
		l, err := buildLease(next, prev, diff.Plan, si, planGeneration(diff.Plan), cfg, cfg.Tolerance > 0)
		if err != nil {
			t.Fatal(err)
		}
		return l, diff
	}
	t.Fatal("no dirty shard in diff")
	return nil, nil
}

func eqSlices[T comparable](t *testing.T, name string, got, want []T) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d entries, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s[%d] = %v, want %v", name, i, got[i], want[i])
		}
	}
}

func TestLeaseRoundTrip(t *testing.T) {
	cfg := refreshCfg()
	_, prev := buildGeneration(t, refreshGraph(t, [4]int{1, 2, 3, 4}), cfg)
	l, _ := dirtyLease(t, prev, refreshGraph(t, [4]int{9, 2, 3, 4}))
	if len(l.Edges) == 0 || len(l.WarmQuery) == 0 || len(l.WarmAd) == 0 {
		t.Fatalf("fixture lease is degenerate: %d edges, %d warm query pairs, %d warm ad pairs",
			len(l.Edges), len(l.WarmQuery), len(l.WarmAd))
	}

	enc, err := l.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeLease(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Generation != l.Generation || dec.Shard != l.Shard || dec.Fingerprint != l.Fingerprint {
		t.Fatalf("identity (%016x, %d, %016x) != (%016x, %d, %016x)",
			dec.Generation, dec.Shard, dec.Fingerprint, l.Generation, l.Shard, l.Fingerprint)
	}
	if dec.Config != l.Config {
		t.Fatalf("config %+v != %+v", dec.Config, l.Config)
	}
	eqSlices(t, "QueryNames", dec.QueryNames, l.QueryNames)
	eqSlices(t, "AdNames", dec.AdNames, l.AdNames)
	eqSlices(t, "QueryIDs", dec.QueryIDs, l.QueryIDs)
	eqSlices(t, "AdIDs", dec.AdIDs, l.AdIDs)
	eqSlices(t, "Edges", dec.Edges, l.Edges)
	eqSlices(t, "WarmQuery", dec.WarmQuery, l.WarmQuery)
	eqSlices(t, "WarmAd", dec.WarmAd, l.WarmAd)
}

// TestLeaseDecodeRejectsCorruption flips every byte of an encoded lease
// in turn: the trailing CRC (or a structural check behind it) must
// reject each mutation — a corrupted lease must never reach an engine.
func TestLeaseDecodeRejectsCorruption(t *testing.T) {
	cfg := refreshCfg()
	_, prev := buildGeneration(t, refreshGraph(t, [4]int{1, 2, 3, 4}), cfg)
	l, _ := dirtyLease(t, prev, refreshGraph(t, [4]int{9, 2, 3, 4}))
	enc, err := l.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(enc); off++ {
		mut := append([]byte(nil), enc...)
		mut[off] ^= 0x40
		if _, err := DecodeLease(mut); err == nil {
			t.Fatalf("decode accepted a lease with byte %d corrupted", off)
		}
	}
	if _, err := DecodeLease(enc[:len(enc)-1]); err == nil {
		t.Fatal("decode accepted a truncated lease")
	}
	if _, err := DecodeLease(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatal("decode accepted a lease with trailing bytes")
	}
}

func TestSegmentResponseRoundTripAndCorruption(t *testing.T) {
	cfg := refreshCfg()
	_, prev := buildGeneration(t, refreshGraph(t, [4]int{1, 2, 3, 4}), cfg)
	l, _ := dirtyLease(t, prev, refreshGraph(t, [4]int{9, 2, 3, 4}))
	w := &Worker{Workers: 3, Logf: t.Logf}
	resp, err := w.RefreshShard(l)
	if err != nil {
		t.Fatal(err)
	}

	enc := resp.Encode()
	dec, err := DecodeSegmentResponse(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Generation != resp.Generation || dec.Shard != resp.Shard || dec.Fingerprint != resp.Fingerprint ||
		dec.Iterations != resp.Iterations || dec.Converged != resp.Converged ||
		dec.QueryCRC != resp.QueryCRC || dec.AdCRC != resp.AdCRC {
		t.Fatalf("decoded response header %+v differs", dec)
	}
	eqSlices(t, "QuerySeg", dec.QuerySeg, resp.QuerySeg)
	eqSlices(t, "AdSeg", dec.AdSeg, resp.AdSeg)

	for off := 0; off < len(enc); off++ {
		mut := append([]byte(nil), enc...)
		mut[off] ^= 0x40
		if _, err := DecodeSegmentResponse(mut); err == nil {
			t.Fatalf("decode accepted a response with byte %d corrupted", off)
		}
	}
	if _, err := DecodeSegmentResponse(enc[:len(enc)-1]); err == nil {
		t.Fatal("decode accepted a truncated response")
	}
}

// TestWorkerShardByteIdentity pins the distributed exactness contract at
// the shard level: a worker executing a lease produces segment bytes
// identical to what the local dirty-shard path encodes for that shard.
func TestWorkerShardByteIdentity(t *testing.T) {
	cfg := refreshCfg()
	_, prev := buildGeneration(t, refreshGraph(t, [4]int{1, 2, 3, 4}), cfg)
	next := refreshGraph(t, [4]int{9, 2, 3, 4})

	res, diff, _ := localRefreshBytes(t, next, prev)
	w := &Worker{Workers: 3, Logf: t.Logf}
	checked := 0
	for si, d := range diff.Dirty {
		if !d {
			continue
		}
		ss := &res.ShardScores[si]
		want := serve.EncodeShardSegment(ss.QueryScores, ss.AdScores, ss.QueryIDs, ss.AdIDs)
		l, err := buildLease(next, prev, diff.Plan, si, planGeneration(diff.Plan), prev.Config(), prev.Config().Tolerance > 0)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := w.RefreshShard(l)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(resp.QuerySeg, want.QuerySeg) || resp.QueryCRC != want.QueryCRC {
			t.Fatalf("shard %d query segment differs from the local path's", si)
		}
		if !bytes.Equal(resp.AdSeg, want.AdSeg) || resp.AdCRC != want.AdCRC {
			t.Fatalf("shard %d ad segment differs from the local path's", si)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no dirty shards checked")
	}
}

// TestDistributedRefreshByteIdentical is the tentpole contract end to
// end: a refresh computed by a worker fleet assembles into exactly the
// bytes the single-machine refresh writes, modulo the generation
// timestamp.
func TestDistributedRefreshByteIdentical(t *testing.T) {
	cfg := refreshCfg()
	_, prev := buildGeneration(t, refreshGraph(t, [4]int{1, 2, 3, 4}), cfg)
	next := refreshGraph(t, [4]int{9, 2, 3, 4})
	_, _, want := localRefreshBytes(t, next, prev)

	diff, err := partition.DiffPlans(prev, next)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCoordinator(startWorkers(t, 2), Options{Logf: t.Logf})
	fleet, err := c.RefreshShards(context.Background(), next, prev, diff)
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Stats.RemoteShards != diff.DirtyShards || fleet.Stats.LocalFallbackShards != 0 {
		t.Fatalf("stats %+v: want %d remote shards, 0 local", fleet.Stats, diff.DirtyShards)
	}
	var buf bytes.Buffer
	st, err := serve.AssembleRefresh(&buf, prev, next, prev.Config(), diff.Plan, diff.Dirty,
		fleet.Segments, fleet.Iterations, fleet.Converged, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.DirtyShards != diff.DirtyShards {
		t.Fatalf("assembled %d dirty shards, want %d", st.DirtyShards, diff.DirtyShards)
	}
	if !bytes.Equal(maskVolatile(t, buf.Bytes()), maskVolatile(t, want)) {
		t.Fatal("distributed refresh bytes differ from the local refresh")
	}
	snap, err := serve.NewSnapshot(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatalf("assembled snapshot does not open: %v", err)
	}
	if m := snap.Meta(); m.LastRefreshDirty != diff.DirtyShards {
		t.Errorf("LastRefreshDirty = %d, want %d", m.LastRefreshDirty, diff.DirtyShards)
	}
}

// TestDistributedZeroDirty: an unchanged graph dispatches nothing and
// reproduces the previous payload byte for byte.
func TestDistributedZeroDirty(t *testing.T) {
	cfg := refreshCfg()
	seeds := [4]int{1, 2, 3, 4}
	prevBytes, prev := buildGeneration(t, refreshGraph(t, seeds), cfg)
	next := refreshGraph(t, seeds)

	diff, err := partition.DiffPlans(prev, next)
	if err != nil {
		t.Fatal(err)
	}
	if diff.DirtyShards != 0 {
		t.Fatalf("identical graph classified %d shards dirty", diff.DirtyShards)
	}
	// No workers at all: a zero-dirty refresh must not need the fleet.
	c := NewCoordinator(nil, Options{Logf: t.Logf})
	fleet, err := c.RefreshShards(context.Background(), next, prev, diff)
	if err != nil {
		t.Fatal(err)
	}
	if !fleet.Converged {
		t.Fatal("zero-dirty fleet result not vacuously converged")
	}
	var buf bytes.Buffer
	if _, err := serve.AssembleRefresh(&buf, prev, next, prev.Config(), diff.Plan, diff.Dirty,
		fleet.Segments, fleet.Iterations, fleet.Converged, nil); err != nil {
		t.Fatal(err)
	}
	const headerSize = 200
	if !bytes.Equal(buf.Bytes()[headerSize:], prevBytes[headerSize:]) {
		t.Fatal("zero-dirty assembled payload differs from the previous snapshot")
	}
}

// TestAcceptIdempotent pins duplicate-completion resolution: the first
// completion under a (generation, shard, fingerprint) key wins, later
// ones are counted and dropped, and a response whose echo or CRCs do
// not match the lease is rejected as a worker fault.
func TestAcceptIdempotent(t *testing.T) {
	cfg := refreshCfg()
	_, prev := buildGeneration(t, refreshGraph(t, [4]int{1, 2, 3, 4}), cfg)
	l, _ := dirtyLease(t, prev, refreshGraph(t, [4]int{9, 2, 3, 4}))
	resp, err := (&Worker{Workers: 3, Logf: t.Logf}).RefreshShard(l)
	if err != nil {
		t.Fatal(err)
	}

	c := NewCoordinator(nil, Options{Logf: t.Logf})
	first, err := c.accept(l, resp)
	if err != nil || !first {
		t.Fatalf("first accept = (%v, %v), want (true, nil)", first, err)
	}
	dup, err := c.accept(l, resp)
	if err != nil || dup {
		t.Fatalf("duplicate accept = (%v, %v), want (false, nil)", dup, err)
	}
	if c.stats.DuplicateWins != 1 {
		t.Fatalf("DuplicateWins = %d, want 1", c.stats.DuplicateWins)
	}

	wrongEcho := *resp
	wrongEcho.Shard++
	if _, err := c.accept(l, &wrongEcho); err == nil {
		t.Fatal("accept took a completion echoing the wrong shard")
	}
	badCRC := *resp
	badCRC.QueryCRC ^= 1
	if _, err := c.accept(l, &badCRC); err == nil {
		t.Fatal("accept took a completion whose segment fails its CRC")
	}
}
