package pearson

import (
	"math"
	"testing"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/core"
)

func buildGraph(t *testing.T, edges []struct {
	Q, A string
	W    float64
}) *clickgraph.Graph {
	t.Helper()
	b := clickgraph.NewBuilder()
	for _, e := range edges {
		if err := b.AddEdge(e.Q, e.A, clickgraph.EdgeWeights{
			Impressions: 100, Clicks: int64(e.W * 100), ExpectedClickRate: e.W,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestPerfectPositiveCorrelation(t *testing.T) {
	// Two queries with identical weight patterns over two shared ads
	// (plus distinct means so deviations are nonzero).
	g := buildGraph(t, []struct {
		Q, A string
		W    float64
	}{
		{"q1", "a1", 0.9}, {"q1", "a2", 0.1},
		{"q2", "a1", 0.8}, {"q2", "a2", 0.2},
	})
	q1, _ := g.QueryID("q1")
	q2, _ := g.QueryID("q2")
	got := Similarity(g, core.ChannelRate, q1, q2)
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("correlation = %v want 1", got)
	}
}

func TestPerfectNegativeCorrelation(t *testing.T) {
	g := buildGraph(t, []struct {
		Q, A string
		W    float64
	}{
		{"q1", "a1", 0.9}, {"q1", "a2", 0.1},
		{"q2", "a1", 0.1}, {"q2", "a2", 0.9},
	})
	q1, _ := g.QueryID("q1")
	q2, _ := g.QueryID("q2")
	got := Similarity(g, core.ChannelRate, q1, q2)
	if math.Abs(got+1) > 1e-12 {
		t.Errorf("correlation = %v want -1", got)
	}
}

func TestNoCommonAdsZero(t *testing.T) {
	g := buildGraph(t, []struct {
		Q, A string
		W    float64
	}{
		{"q1", "a1", 0.5},
		{"q2", "a2", 0.5},
	})
	q1, _ := g.QueryID("q1")
	q2, _ := g.QueryID("q2")
	if got := Similarity(g, core.ChannelRate, q1, q2); got != 0 {
		t.Errorf("no common ads: correlation = %v want 0", got)
	}
}

// The structural failure Figure 8 exposes: a degree-1 query has zero
// weight deviation, so Pearson is degenerate and returns 0 even against a
// genuinely related query.
func TestDegreeOneQueryDegenerate(t *testing.T) {
	g := buildGraph(t, []struct {
		Q, A string
		W    float64
	}{
		{"q1", "a1", 0.5},
		{"q2", "a1", 0.9}, {"q2", "a2", 0.1},
	})
	q1, _ := g.QueryID("q1")
	q2, _ := g.QueryID("q2")
	if got := Similarity(g, core.ChannelRate, q1, q2); got != 0 {
		t.Errorf("degree-1 query correlation = %v want 0 (degenerate)", got)
	}
}

func TestSelfSimilarity(t *testing.T) {
	g := buildGraph(t, []struct {
		Q, A string
		W    float64
	}{{"q1", "a1", 0.5}})
	q1, _ := g.QueryID("q1")
	if got := Similarity(g, core.ChannelRate, q1, q1); got != 1 {
		t.Errorf("self correlation = %v want 1", got)
	}
}

func TestSimilaritiesOnlyPositive(t *testing.T) {
	g := buildGraph(t, []struct {
		Q, A string
		W    float64
	}{
		{"q1", "a1", 0.9}, {"q1", "a2", 0.1},
		{"q2", "a1", 0.8}, {"q2", "a2", 0.2}, // +1 with q1
		{"q3", "a1", 0.1}, {"q3", "a2", 0.9}, // -1 with q1
	})
	tab := Similarities(g, core.ChannelRate)
	q1, _ := g.QueryID("q1")
	q2, _ := g.QueryID("q2")
	q3, _ := g.QueryID("q3")
	if v, ok := tab.Get(q1, q2); !ok || v <= 0 {
		t.Errorf("positive pair missing: %v %v", v, ok)
	}
	if _, ok := tab.Get(q1, q3); ok {
		t.Error("negative correlation stored; rewrites must be positive")
	}
}

func TestTopRewritesOrdering(t *testing.T) {
	g := buildGraph(t, []struct {
		Q, A string
		W    float64
	}{
		{"q1", "a1", 0.9}, {"q1", "a2", 0.1}, {"q1", "a3", 0.5},
		{"q2", "a1", 0.8}, {"q2", "a2", 0.2}, // strong match
		{"q3", "a1", 0.5}, {"q3", "a2", 0.5}, {"q3", "a3", 0.4}, // weaker
	})
	q1, _ := g.QueryID("q1")
	top := TopRewrites(g, core.ChannelRate, q1, 5)
	if len(top) == 0 {
		t.Fatal("no rewrites")
	}
	for i := 1; i < len(top); i++ {
		if top[i-1].Score < top[i].Score {
			t.Errorf("rewrites not sorted: %v", top)
		}
	}
	q2, _ := g.QueryID("q2")
	if top[0].Node != q2 {
		t.Errorf("best rewrite = %s want q2", g.Query(top[0].Node))
	}
	if got := TopRewrites(g, core.ChannelRate, q1, 1); len(got) != 1 {
		t.Errorf("limit not applied: %d", len(got))
	}
}

func TestChannelSelection(t *testing.T) {
	// Click counts and rates disagree; the channel must matter.
	b := clickgraph.NewBuilder()
	add := func(q, a string, clicks int64, rate float64) {
		t.Helper()
		if err := b.AddEdge(q, a, clickgraph.EdgeWeights{
			Impressions: 1000, Clicks: clicks, ExpectedClickRate: rate,
		}); err != nil {
			t.Fatal(err)
		}
	}
	add("q1", "a1", 900, 0.1)
	add("q1", "a2", 100, 0.9)
	add("q2", "a1", 800, 0.2)
	add("q2", "a2", 200, 0.8)
	g := b.Build()
	q1, _ := g.QueryID("q1")
	q2, _ := g.QueryID("q2")
	rate := Similarity(g, core.ChannelRate, q1, q2)
	clicks := Similarity(g, core.ChannelClicks, q1, q2)
	if math.Abs(rate-1) > 1e-12 || math.Abs(clicks-1) > 1e-12 {
		t.Errorf("both channels should correlate perfectly here: rate=%v clicks=%v", rate, clicks)
	}
	impr := Similarity(g, core.ChannelImpressions, q1, q2)
	if impr != 0 {
		t.Errorf("impressions are constant; correlation = %v want 0 (degenerate)", impr)
	}
}
