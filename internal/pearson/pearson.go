// Package pearson implements the query-rewriting baseline of §9.1 of the
// Simrank++ paper: the Pearson correlation between two queries' edge
// weights over their common ads. It can only relate queries that share at
// least one ad, which is exactly the limitation the paper's coverage
// experiment (Figure 8) exposes.
package pearson

import (
	"math"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/core"
	"simrankpp/internal/sparse"
)

// Similarity returns sim_pearson(q1, q2) on g using the given weight
// channel: the Pearson correlation of the two queries' weights over
// E(q1) ∩ E(q2), with each query's mean taken over all of its own edges
// (w̄_q in the paper). It returns 0 when the queries share no ad or when
// either deviation vector is identically zero (degenerate correlation).
// Values are in [-1, 1].
func Similarity(g *clickgraph.Graph, ch core.WeightChannel, q1, q2 int) float64 {
	common := g.CommonAds(q1, q2)
	if len(common) == 0 || q1 == q2 {
		if q1 == q2 && g.QueryDegree(q1) > 0 {
			return 1
		}
		return 0
	}
	m1, m2 := meanWeight(g, ch, q1), meanWeight(g, ch, q2)
	num, d1, d2 := 0.0, 0.0, 0.0
	for _, a := range common {
		x := weight(g, ch, q1, a) - m1
		y := weight(g, ch, q2, a) - m2
		num += x * y
		d1 += x * x
		d2 += y * y
	}
	den := math.Sqrt(d1 * d2)
	if den == 0 {
		return 0
	}
	return num / den
}

// Similarities computes Pearson similarity between every query pair that
// shares at least one ad, returned as a sparse pair table. Only strictly
// positive correlations are stored: negative correlation is evidence
// against a rewrite, and the rewriting pipeline ranks by descending score.
func Similarities(g *clickgraph.Graph, ch core.WeightChannel) *sparse.PairTable {
	t := sparse.NewPairTable(0)
	// Candidate pairs are exactly those sharing an ad; enumerate them by
	// scattering through ads, deduping via the table itself.
	seen := sparse.NewPairTable(0)
	for a := 0; a < g.NumAds(); a++ {
		qs, _ := g.QueriesOf(a)
		for x := 0; x < len(qs); x++ {
			for y := x + 1; y < len(qs); y++ {
				if _, ok := seen.Get(qs[x], qs[y]); ok {
					continue
				}
				seen.Set(qs[x], qs[y], 1)
				if v := Similarity(g, ch, qs[x], qs[y]); v > 0 {
					t.Set(qs[x], qs[y], v)
				}
			}
		}
	}
	return t
}

// TopRewrites returns the k best-correlated rewrite candidates for q,
// descending; k < 0 returns all.
func TopRewrites(g *clickgraph.Graph, ch core.WeightChannel, q, k int) []sparse.Scored {
	var out []sparse.Scored
	ads, _ := g.AdsOf(q)
	seen := map[int]bool{}
	for _, a := range ads {
		qs, _ := g.QueriesOf(a)
		for _, p := range qs {
			if p == q || seen[p] {
				continue
			}
			seen[p] = true
			if v := Similarity(g, ch, q, p); v > 0 {
				out = append(out, sparse.Scored{Node: p, Score: v})
			}
		}
	}
	sparse.SortScoredDesc(out)
	if k >= 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

func meanWeight(g *clickgraph.Graph, ch core.WeightChannel, q int) float64 {
	ads, ws := weightRow(g, ch, q)
	if len(ads) == 0 {
		return 0
	}
	s := 0.0
	for _, w := range ws {
		s += w
	}
	return s / float64(len(ads))
}

func weight(g *clickgraph.Graph, ch core.WeightChannel, q, a int) float64 {
	w, ok := g.EdgeWeightsOf(q, a)
	if !ok {
		return 0
	}
	switch ch {
	case core.ChannelClicks:
		return float64(w.Clicks)
	case core.ChannelImpressions:
		return float64(w.Impressions)
	default:
		return w.ExpectedClickRate
	}
}

func weightRow(g *clickgraph.Graph, ch core.WeightChannel, q int) ([]int, []float64) {
	switch ch {
	case core.ChannelClicks:
		return g.ClicksOfQuery(q)
	case core.ChannelImpressions:
		ads, _ := g.AdsOf(q)
		ws := make([]float64, len(ads))
		for i, a := range ads {
			ew, _ := g.EdgeWeightsOf(q, a)
			ws[i] = float64(ew.Impressions)
		}
		return ads, ws
	default:
		return g.AdsOf(q)
	}
}
