// Package stem implements the Porter stemming algorithm (Porter, 1980).
// The Simrank++ evaluation pipeline (§9.3) uses stemming to filter out
// duplicate query rewrites: "camera" and "cameras" reduce to the same stem
// and only one survives.
package stem

import "strings"

// Word reduces a single lowercase word to its Porter stem. Words shorter
// than three letters are returned unchanged, per the original algorithm.
func Word(s string) string {
	w := []byte(strings.ToLower(s))
	if len(w) <= 2 {
		return string(w)
	}
	w = step1a(w)
	w = step1b(w)
	w = step1c(w)
	w = step2(w)
	w = step3(w)
	w = step4(w)
	w = step5a(w)
	w = step5b(w)
	return string(w)
}

// Phrase stems each whitespace-separated word of a query and rejoins with
// single spaces, the normalization used for duplicate-rewrite detection.
func Phrase(s string) string {
	fields := strings.Fields(s)
	for i, f := range fields {
		fields[i] = Word(f)
	}
	return strings.Join(fields, " ")
}

// isConsonant reports whether w[i] is a consonant in Porter's sense:
// letters other than aeiou, with y consonant only when preceded by a
// vowel... precisely: y is a consonant when at position 0 or when the
// previous letter is a vowel-position consonant.
func isConsonant(w []byte, i int) bool {
	switch w[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isConsonant(w, i-1)
	default:
		return true
	}
}

// measure returns m, the number of VC sequences in w[:len].
func measure(w []byte) int {
	m := 0
	i := 0
	n := len(w)
	// Skip initial consonants.
	for i < n && isConsonant(w, i) {
		i++
	}
	for i < n {
		// Vowel run.
		for i < n && !isConsonant(w, i) {
			i++
		}
		if i >= n {
			break
		}
		// Consonant run closes one VC.
		for i < n && isConsonant(w, i) {
			i++
		}
		m++
	}
	return m
}

func containsVowel(w []byte) bool {
	for i := range w {
		if !isConsonant(w, i) {
			return true
		}
	}
	return false
}

// endsDoubleConsonant reports whether w ends in two identical consonants.
func endsDoubleConsonant(w []byte) bool {
	n := len(w)
	return n >= 2 && w[n-1] == w[n-2] && isConsonant(w, n-1)
}

// endsCVC reports whether w ends consonant-vowel-consonant where the final
// consonant is not w, x or y.
func endsCVC(w []byte) bool {
	n := len(w)
	if n < 3 {
		return false
	}
	if !isConsonant(w, n-3) || isConsonant(w, n-2) || !isConsonant(w, n-1) {
		return false
	}
	switch w[n-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

func hasSuffix(w []byte, s string) bool {
	return len(w) >= len(s) && string(w[len(w)-len(s):]) == s
}

// replaceSuffix replaces suffix old with new if the stem before old has
// measure > minM; reports whether a replacement happened. minM < 0 means
// "no measure condition".
func replaceSuffix(w []byte, old, new string, minM int) ([]byte, bool) {
	if !hasSuffix(w, old) {
		return w, false
	}
	stem := w[:len(w)-len(old)]
	if minM >= 0 && measure(stem) <= minM {
		return w, false
	}
	return append(append([]byte{}, stem...), new...), true
}

func step1a(w []byte) []byte {
	switch {
	case hasSuffix(w, "sses"):
		return w[:len(w)-2]
	case hasSuffix(w, "ies"):
		return w[:len(w)-2]
	case hasSuffix(w, "ss"):
		return w
	case hasSuffix(w, "s"):
		return w[:len(w)-1]
	}
	return w
}

func step1b(w []byte) []byte {
	if w2, ok := replaceSuffix(w, "eed", "ee", 0); ok {
		return w2
	}
	if hasSuffix(w, "eed") {
		return w
	}
	var stem []byte
	switch {
	case hasSuffix(w, "ed") && containsVowel(w[:len(w)-2]):
		stem = w[:len(w)-2]
	case hasSuffix(w, "ing") && containsVowel(w[:len(w)-3]):
		stem = w[:len(w)-3]
	default:
		return w
	}
	switch {
	case hasSuffix(stem, "at"), hasSuffix(stem, "bl"), hasSuffix(stem, "iz"):
		return append(stem, 'e')
	case endsDoubleConsonant(stem):
		switch stem[len(stem)-1] {
		case 'l', 's', 'z':
			return stem
		}
		return stem[:len(stem)-1]
	case measure(stem) == 1 && endsCVC(stem):
		return append(stem, 'e')
	}
	return stem
}

func step1c(w []byte) []byte {
	if hasSuffix(w, "y") && containsVowel(w[:len(w)-1]) {
		out := append([]byte{}, w...)
		out[len(out)-1] = 'i'
		return out
	}
	return w
}

var step2Rules = []struct{ old, new string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
	{"izer", "ize"}, {"abli", "able"}, {"alli", "al"}, {"entli", "ent"},
	{"eli", "e"}, {"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
	{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"},
}

func step2(w []byte) []byte {
	for _, r := range step2Rules {
		if w2, ok := replaceSuffix(w, r.old, r.new, 0); ok {
			return w2
		}
		if hasSuffix(w, r.old) {
			return w
		}
	}
	return w
}

var step3Rules = []struct{ old, new string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func step3(w []byte) []byte {
	for _, r := range step3Rules {
		if w2, ok := replaceSuffix(w, r.old, r.new, 0); ok {
			return w2
		}
		if hasSuffix(w, r.old) {
			return w
		}
	}
	return w
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func step4(w []byte) []byte {
	for _, s := range step4Suffixes {
		if !hasSuffix(w, s) {
			continue
		}
		stem := w[:len(w)-len(s)]
		if s == "ion" {
			if len(stem) == 0 || (stem[len(stem)-1] != 's' && stem[len(stem)-1] != 't') {
				return w
			}
		}
		if measure(stem) > 1 {
			return stem
		}
		return w
	}
	return w
}

func step5a(w []byte) []byte {
	if !hasSuffix(w, "e") {
		return w
	}
	stem := w[:len(w)-1]
	m := measure(stem)
	if m > 1 || (m == 1 && !endsCVC(stem)) {
		return stem
	}
	return w
}

func step5b(w []byte) []byte {
	if endsDoubleConsonant(w) && w[len(w)-1] == 'l' && measure(w[:len(w)-1]) > 1 {
		return w[:len(w)-1]
	}
	return w
}
