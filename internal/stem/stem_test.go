package stem

import "testing"

// Classic Porter test vectors.
func TestWordKnownVectors(t *testing.T) {
	cases := map[string]string{
		"caresses":       "caress",
		"ponies":         "poni",
		"ties":           "ti",
		"caress":         "caress",
		"cats":           "cat",
		"feed":           "feed",
		"agreed":         "agre",
		"plastered":      "plaster",
		"bled":           "bled",
		"motoring":       "motor",
		"sing":           "sing",
		"conflated":      "conflat",
		"troubled":       "troubl",
		"sized":          "size",
		"hopping":        "hop",
		"tanned":         "tan",
		"falling":        "fall",
		"hissing":        "hiss",
		"fizzed":         "fizz",
		"failing":        "fail",
		"filing":         "file",
		"happy":          "happi",
		"sky":            "sky",
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"conformabli":    "conform",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		"triplicate":     "triplic",
		"formative":      "form",
		"formalize":      "formal",
		"electriciti":    "electr",
		"electrical":     "electr",
		"hopeful":        "hope",
		"goodness":       "good",
		"revival":        "reviv",
		"allowance":      "allow",
		"inference":      "infer",
		"airliner":       "airlin",
		"gyroscopic":     "gyroscop",
		"adjustable":     "adjust",
		"defensible":     "defens",
		"irritant":       "irrit",
		"replacement":    "replac",
		"adjustment":     "adjust",
		"dependent":      "depend",
		"adoption":       "adopt",
		"homologou":      "homolog",
		"communism":      "commun",
		"activate":       "activ",
		"angulariti":     "angular",
		"homologous":     "homolog",
		"effective":      "effect",
		"bowdlerize":     "bowdler",
		"probate":        "probat",
		"rate":           "rate",
		"cease":          "ceas",
		"controll":       "control",
		"roll":           "roll",
	}
	for in, want := range cases {
		if got := Word(in); got != want {
			t.Errorf("Word(%q) = %q want %q", in, got, want)
		}
	}
}

func TestWordShortAndCase(t *testing.T) {
	if got := Word("a"); got != "a" {
		t.Errorf("Word(a) = %q", got)
	}
	if got := Word("at"); got != "at" {
		t.Errorf("Word(at) = %q", got)
	}
	if Word("CAMERAS") != Word("cameras") {
		t.Error("stemming not case-insensitive")
	}
}

// The property the rewriting pipeline relies on: singular and plural of
// typical query words reduce to the same stem.
func TestPluralDedup(t *testing.T) {
	pairs := [][2]string{
		{"camera", "cameras"},
		{"flower", "flowers"},
		{"rewrite", "rewrites"},
		{"battery", "batteries"},
		{"query", "queries"},
	}
	for _, p := range pairs {
		if Word(p[0]) != Word(p[1]) {
			t.Errorf("stems differ: %q -> %q, %q -> %q", p[0], Word(p[0]), p[1], Word(p[1]))
		}
	}
}

func TestPhrase(t *testing.T) {
	if got := Phrase("digital  cameras"); got != "digit camera" {
		t.Errorf("Phrase = %q want %q", got, "digit camera")
	}
	if got := Phrase(""); got != "" {
		t.Errorf("Phrase(empty) = %q", got)
	}
	if Phrase("Digital Cameras") != Phrase("digital camera") {
		t.Error("Phrase not normalizing case/plural")
	}
}

func TestIdempotent(t *testing.T) {
	words := []string{"relational", "cameras", "hopefulness", "motoring", "controlling"}
	for _, w := range words {
		once := Word(w)
		twice := Word(once)
		if once != twice {
			t.Errorf("stemming not idempotent for %q: %q -> %q", w, once, twice)
		}
	}
}
