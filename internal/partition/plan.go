package partition

import (
	"fmt"
	"io"
	"sort"

	"simrankpp/internal/clickgraph"
)

// This file turns the ACL machinery into a shard planner: decompose the
// click graph into connected components, pack components that fit a node
// budget into exact shards, carve components above the budget with ACL
// sweep cuts, and report the cut edges that make a carved plan
// approximate. core.RunSharded executes a Plan with one engine per shard.

// Shard is one planned piece of the graph, identified by global node ids.
type Shard struct {
	// Queries and Ads are the shard's global ids, ascending.
	Queries, Ads []int
	// Exact reports that the shard is a union of whole connected
	// components: no edge leaves it, so a SimRank run restricted to it is
	// exact (bit-identical to the monolithic run on its pairs).
	Exact bool
	// CutEdges counts the parent-graph edges with exactly one endpoint in
	// this shard — the evidence a per-shard run cannot see. 0 for exact
	// shards.
	CutEdges int
	// Conductance is the sweep-cut conductance of the ACL cut that carved
	// this shard (0 for exact shards; for the remainder of a carved
	// component it is recomputed directly).
	Conductance float64
	// Fingerprint is the order-independent hash of the shard's subgraph —
	// its nodes (ids and names) and every incident edge with all three
	// weight channels (see fingerprint.go). Two plans assigning the same
	// shard index the same fingerprint observed the same subgraph, which
	// is what lets an incremental refresh skip the shard's recompute and
	// byte-copy its snapshot segment.
	Fingerprint uint64
}

// Nodes returns the shard's node count (queries + ads).
func (s *Shard) Nodes() int { return len(s.Queries) + len(s.Ads) }

// Plan is a full-coverage decomposition of one graph into disjoint shards.
type Plan struct {
	Shards []Shard
	// Exact reports that every shard is exact, i.e. the plan is a grouping
	// of whole components and a sharded run reproduces the monolithic run
	// bit for bit (at a fixed iteration count).
	Exact bool
	// TotalCutEdges counts each crossing edge once.
	TotalCutEdges int
	// NumQueries and NumAds record the planned graph's dimensions, so a
	// plan cannot silently be run against a different graph.
	NumQueries, NumAds int
}

// PlanConfig parameterizes BuildPlan.
type PlanConfig struct {
	// MaxShardNodes is the node budget: components at most this large are
	// packed whole into shards; larger components are carved with ACL
	// sweep cuts whose prefixes are bounded by the budget. Only a carved
	// component's remainder can exceed it, when no seed yields a usable
	// cut.
	MaxShardNodes int
	// MinCutNodes is the minimum sweep-cut prefix when carving (keeps
	// carved pieces big enough to amortize a shard engine).
	MinCutNodes int
	// PPR parameterizes the ACL push.
	PPR PPRConfig
}

// DefaultPlanConfig returns a 4096-node budget with the default ACL push.
func DefaultPlanConfig() PlanConfig {
	return PlanConfig{MaxShardNodes: 4096, MinCutNodes: 64, PPR: DefaultPPRConfig()}
}

// Validate reports whether the configuration is usable.
func (c PlanConfig) Validate() error {
	if c.MaxShardNodes < 1 {
		return fmt.Errorf("partition: MaxShardNodes must be >= 1, got %d", c.MaxShardNodes)
	}
	if c.MinCutNodes < 1 {
		return fmt.Errorf("partition: MinCutNodes must be >= 1, got %d", c.MinCutNodes)
	}
	return c.PPR.Validate()
}

// ComponentPlan returns the exact plan with one shard per connected
// component — the reference decomposition the differential tests pin
// against the monolithic engines, and the natural plan when no component
// outgrows one machine.
func ComponentPlan(g *clickgraph.Graph) *Plan {
	comps := clickgraph.Components(g)
	p := &Plan{
		Shards:     make([]Shard, len(comps)),
		Exact:      true,
		NumQueries: g.NumQueries(),
		NumAds:     g.NumAds(),
	}
	for i, c := range comps {
		p.Shards[i] = Shard{Queries: c.Queries, Ads: c.Ads, Exact: true}
	}
	p.annotate(g)
	return p
}

// BuildPlan decomposes g under the budget: connected components at most
// MaxShardNodes nodes are greedily packed (largest first, first fit) into
// exact shards; a component above the budget is carved by repeated ACL
// clustering — seed at the highest-degree unassigned query, sweep for the
// lowest-conductance cut, peel, repeat until the remainder fits. Carved
// shards are approximate: their cut edges are counted and reported, and
// the plan as a whole is Exact only if no component needed carving.
func BuildPlan(g *clickgraph.Graph, cfg PlanConfig) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Plan{Exact: true, NumQueries: g.NumQueries(), NumAds: g.NumAds()}
	var packable []clickgraph.Component // components within budget
	for _, c := range clickgraph.Components(g) {
		if len(c.Queries)+len(c.Ads) <= cfg.MaxShardNodes {
			packable = append(packable, c)
			continue
		}
		shards, exact := carveComponent(g, c, cfg)
		if !exact {
			p.Exact = false
		}
		p.Shards = append(p.Shards, shards...)
	}
	p.Shards = append(p.Shards, packComponents(packable, cfg.MaxShardNodes)...)
	p.annotate(g)
	return p, nil
}

// packComponents bins whole components into exact shards: components
// arrive largest-first (Components' order) and each goes into the first
// shard with room. Ids are appended as components land and each shard is
// sorted once at the end, so packing moves every id O(1) times plus one
// sort — not once per absorbed component. The first-fit scan starts past
// the shards that are completely full (they can never admit another
// component), which keeps the dominant many-tiny-components case — shards
// filling to the budget one after another — near-linear.
func packComponents(comps []clickgraph.Component, budget int) []Shard {
	var shards []Shard
	nodes := func(i int) int { return len(shards[i].Queries) + len(shards[i].Ads) }
	first := 0 // shards before this have no room for even a singleton
	for _, c := range comps {
		n := len(c.Queries) + len(c.Ads)
		for first < len(shards) && nodes(first) >= budget {
			first++
		}
		placed := -1
		for i := first; i < len(shards); i++ {
			if nodes(i)+n <= budget {
				placed = i
				break
			}
		}
		if placed < 0 {
			shards = append(shards, Shard{Exact: true})
			placed = len(shards) - 1
		}
		shards[placed].Queries = append(shards[placed].Queries, c.Queries...)
		shards[placed].Ads = append(shards[placed].Ads, c.Ads...)
	}
	for i := range shards {
		sort.Ints(shards[i].Queries)
		sort.Ints(shards[i].Ads)
	}
	return shards
}

// carveComponent peels ACL clusters off one oversized component until the
// remainder fits the budget. Clusters are restricted to still-unassigned
// component nodes so pieces stay disjoint. exact reports whether carving
// turned out unnecessary (no cut was ever made — possible when no seed
// yields a usable cluster, leaving the whole component as one shard).
func carveComponent(g *clickgraph.Graph, c clickgraph.Component, cfg PlanConfig) (shards []Shard, exact bool) {
	unassigned := make(map[NodeID]bool, len(c.Queries)+len(c.Ads))
	for _, q := range c.Queries {
		unassigned[QueryNode(q)] = true
	}
	for _, a := range c.Ads {
		unassigned[AdNode(g, a)] = true
	}
	for len(unassigned) > cfg.MaxShardNodes {
		seed, ok := bestUnassignedSeed(g, c, unassigned)
		if !ok {
			break
		}
		// The push runs on the whole graph but mass cannot leave the
		// component; restricting the sweep to unassigned nodes keeps the
		// peeled pieces disjoint.
		ppr, err := ApproximatePageRank(g, seed, cfg.PPR)
		if err != nil {
			break // cfg was validated; only an impossible seed gets here
		}
		for u := range ppr {
			if !unassigned[u] {
				delete(ppr, u)
			}
		}
		// Bounding the sweep by the budget keeps carved pieces within it
		// and, because the loop runs only while len(unassigned) exceeds the
		// budget, guarantees the cut is a strict subset — without the bound
		// the full-support prefix (conductance 0: it cuts nothing) would
		// win whenever the push reaches the whole component.
		cluster, phi := SweepCutBounded(g, ppr, cfg.MinCutNodes, cfg.MaxShardNodes)
		cluster[seed] = true
		if len(cluster) >= len(unassigned) {
			break // the "cut" would take everything: no usable split
		}
		shards = append(shards, shardFromSet(g, cluster, false, phi))
		for u := range cluster {
			delete(unassigned, u)
		}
	}
	rest := shardFromSet(g, unassigned, len(shards) == 0, 0)
	if len(shards) > 0 {
		rest.Conductance = Conductance(g, unassigned)
	}
	shards = append(shards, rest)
	return shards, len(shards) == 1
}

// bestUnassignedSeed picks the highest-degree unassigned query of the
// component, smaller id on ties.
func bestUnassignedSeed(g *clickgraph.Graph, c clickgraph.Component, unassigned map[NodeID]bool) (NodeID, bool) {
	best, bestDeg := NodeID(-1), 0
	for _, q := range c.Queries {
		u := QueryNode(q)
		if !unassigned[u] {
			continue
		}
		if d := g.QueryDegree(q); d > bestDeg {
			best, bestDeg = u, d
		}
	}
	return best, best >= 0
}

// shardFromSet materializes a shard from a unified-space node set.
func shardFromSet(g *clickgraph.Graph, set map[NodeID]bool, exact bool, phi float64) Shard {
	s := Shard{Exact: exact, Conductance: phi}
	for u := range set {
		side, id := Split(g, u)
		if side == clickgraph.QuerySide {
			s.Queries = append(s.Queries, id)
		} else {
			s.Ads = append(s.Ads, id)
		}
	}
	sort.Ints(s.Queries)
	sort.Ints(s.Ads)
	return s
}

// Validate reports whether the plan covers g exactly: every query and ad
// id appears in exactly one shard and the recorded dimensions match.
func (p *Plan) Validate(g *clickgraph.Graph) error {
	if p.NumQueries != g.NumQueries() || p.NumAds != g.NumAds() {
		return fmt.Errorf("partition: plan built for %d×%d graph, got %d×%d",
			p.NumQueries, p.NumAds, g.NumQueries(), g.NumAds())
	}
	if err := coverage(p.Shards, g.NumQueries(), func(s *Shard) []int { return s.Queries }, "query"); err != nil {
		return err
	}
	return coverage(p.Shards, g.NumAds(), func(s *Shard) []int { return s.Ads }, "ad")
}

func coverage(shards []Shard, n int, ids func(*Shard) []int, side string) error {
	seen := make([]bool, n)
	total := 0
	for si := range shards {
		for _, id := range ids(&shards[si]) {
			if id < 0 || id >= n {
				return fmt.Errorf("partition: shard %d: %s id %d outside [0,%d)", si, side, id, n)
			}
			if seen[id] {
				return fmt.Errorf("partition: %s id %d assigned to more than one shard", side, id)
			}
			seen[id] = true
			total++
		}
	}
	if total != n {
		return fmt.Errorf("partition: plan covers %d of %d %s ids", total, n, side)
	}
	return nil
}

// WriteSummary prints the plan as a human-readable table: per-shard sizes,
// cut edges and conductance, plus plan-level totals — the inspection
// surface cmd/partition exposes before anything is run.
func (p *Plan) WriteSummary(w io.Writer) error {
	kind := func(s *Shard) string {
		if s.Exact {
			return "exact"
		}
		return "cut"
	}
	if _, err := fmt.Fprintf(w, "%-10s  %8s  %8s  %8s  %9s  %11s  %-5s\n",
		"shard", "queries", "ads", "nodes", "cut-edges", "conductance", "kind"); err != nil {
		return err
	}
	for i := range p.Shards {
		s := &p.Shards[i]
		if _, err := fmt.Fprintf(w, "%-10d  %8d  %8d  %8d  %9d  %11.4f  %-5s\n",
			i, len(s.Queries), len(s.Ads), s.Nodes(), s.CutEdges, s.Conductance, kind(s)); err != nil {
			return err
		}
	}
	exactness := "exact (component-grouping: sharded run is bit-identical to monolithic)"
	if !p.Exact {
		exactness = "approximate (ACL cuts drop cross-shard evidence)"
	}
	_, err := fmt.Fprintf(w, "total: %d shards, %d queries, %d ads, %d cut edges — %s\n",
		len(p.Shards), p.NumQueries, p.NumAds, p.TotalCutEdges, exactness)
	return err
}
