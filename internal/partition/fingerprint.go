package partition

import (
	"math"

	"simrankpp/internal/clickgraph"
)

// This file gives every shard an order-independent subgraph fingerprint —
// the change-detection layer of the incremental refresh story. A shard's
// fingerprint is the XOR of a hash per node (side, id, name) and a hash
// per *incident* edge (endpoint ids plus all three weight channels), so it
// is insensitive to enumeration order but flips when anything the shard's
// SimRank run can observe moves: an edge appears or disappears, a weight
// changes, a node joins, leaves, or is re-interned under a different id.
// Including ids (not just names) is deliberate: a clean fingerprint match
// then guarantees the shard's snapshot segment — which stores global ids —
// is byte-for-byte reusable. Cut edges are incident to both shards they
// straddle, so a new crossing edge dirties both sides even though it is in
// neither shard's induced subgraph.

// mix64 is the splitmix64 finalizer: a cheap bijective avalanche so that
// XOR-accumulated element hashes do not cancel structure.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// fnv64a hashes a string (FNV-1a).
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

const (
	fpQueryTag = 0x51756572 // "Quer"
	fpAdTag    = 0x41647674 // "Advt"
	fpEdgeTag  = 0x45646765 // "Edge"
)

func queryNodeHash(id int, name string) uint64 {
	return mix64(fnv64a(name) ^ mix64(uint64(id)<<32|fpQueryTag))
}

func adNodeHash(id int, name string) uint64 {
	return mix64(fnv64a(name) ^ mix64(uint64(id)<<32|fpAdTag))
}

func edgeHash(q, a int, w clickgraph.EdgeWeights) uint64 {
	h := mix64(uint64(q)<<32 | uint64(uint32(a)))
	h = mix64(h ^ uint64(w.Impressions) ^ fpEdgeTag)
	h = mix64(h ^ uint64(w.Clicks))
	h = mix64(h ^ math.Float64bits(w.ExpectedClickRate))
	return h
}

// GraphFingerprint returns the whole graph's fingerprint: the value a
// single shard covering every node would carry. serve.WriteSnapshot uses
// it for monolithic (one-segment) snapshots.
func GraphFingerprint(g *clickgraph.Graph) uint64 {
	var fp uint64
	for q := 0; q < g.NumQueries(); q++ {
		fp ^= queryNodeHash(q, g.Query(q))
	}
	for a := 0; a < g.NumAds(); a++ {
		fp ^= adNodeHash(a, g.Ad(a))
	}
	g.Edges(func(q, a int, w clickgraph.EdgeWeights) bool {
		fp ^= edgeHash(q, a, w)
		return true
	})
	return fp
}

// Reannotate re-derives every edge-dependent field of the plan — cut
// edges, fingerprints, and the exactness flags (a shard is exact iff no
// edge crosses it, i.e. it is a union of whole components) — from g.
// Callers applying a plan to a graph other than the one it was built on
// (a loaded plan file, a projected refresh plan) must use it so the
// recorded fingerprints always describe the graph the engines run on.
func (p *Plan) Reannotate(g *clickgraph.Graph) {
	p.annotate(g)
	p.Exact = true
	for si := range p.Shards {
		p.Shards[si].Exact = p.Shards[si].CutEdges == 0
		if !p.Shards[si].Exact {
			p.Exact = false
		}
	}
}

// shardIndex builds per-side node→shard lookup arrays (-1 = unassigned).
func (p *Plan) shardIndex() (qShard, aShard []int32) {
	qShard = make([]int32, p.NumQueries)
	aShard = make([]int32, p.NumAds)
	for i := range qShard {
		qShard[i] = -1
	}
	for i := range aShard {
		aShard[i] = -1
	}
	for si := range p.Shards {
		for _, q := range p.Shards[si].Queries {
			qShard[q] = int32(si)
		}
		for _, a := range p.Shards[si].Ads {
			aShard[a] = int32(si)
		}
	}
	return qShard, aShard
}

// annotate derives the plan's per-shard edge bookkeeping from g in one
// scan: cut-edge counts (each crossing edge counted once per incident
// shard and once in the plan total) and subgraph fingerprints (node hashes
// plus incident-edge hashes; an internal edge folds in once, a crossing
// edge into both shards). BuildPlan, ComponentPlan and DiffPlans all call
// it, so every plan a caller can obtain carries fingerprints.
func (p *Plan) annotate(g *clickgraph.Graph) {
	qShard, aShard := p.shardIndex()
	for si := range p.Shards {
		s := &p.Shards[si]
		s.CutEdges = 0
		fp := uint64(0)
		for _, q := range s.Queries {
			fp ^= queryNodeHash(q, g.Query(q))
		}
		for _, a := range s.Ads {
			fp ^= adNodeHash(a, g.Ad(a))
		}
		s.Fingerprint = fp
	}
	p.TotalCutEdges = 0
	g.Edges(func(q, a int, w clickgraph.EdgeWeights) bool {
		sq, sa := qShard[q], aShard[a]
		h := edgeHash(q, a, w)
		if sq == sa {
			if sq >= 0 {
				p.Shards[sq].Fingerprint ^= h
			}
			return true
		}
		p.TotalCutEdges++
		if sq >= 0 {
			p.Shards[sq].CutEdges++
			p.Shards[sq].Fingerprint ^= h
		}
		if sa >= 0 {
			p.Shards[sa].CutEdges++
			p.Shards[sa].Fingerprint ^= h
		}
		return true
	})
}
