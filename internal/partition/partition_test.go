package partition

import (
	"math"
	"testing"

	"simrankpp/internal/clickgraph"
)

// twoClusters builds a graph with two dense bipartite clusters joined by
// a single bridge edge — the canonical low-conductance structure ACL
// should separate.
func twoClusters(t *testing.T) *clickgraph.Graph {
	t.Helper()
	b := clickgraph.NewBuilder()
	add := func(q, a string) {
		t.Helper()
		if err := b.AddClick(q, a, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			add("left-q"+string(rune('0'+i)), "left-a"+string(rune('0'+j)))
			add("right-q"+string(rune('0'+i)), "right-a"+string(rune('0'+j)))
		}
	}
	add("left-q0", "right-a0") // bridge
	return b.Build()
}

func TestPPRValidation(t *testing.T) {
	g := twoClusters(t)
	if _, err := ApproximatePageRank(g, 0, PPRConfig{Alpha: 0, Epsilon: 1e-6}); err == nil {
		t.Error("accepted alpha=0")
	}
	if _, err := ApproximatePageRank(g, 0, PPRConfig{Alpha: 0.15, Epsilon: 0}); err == nil {
		t.Error("accepted epsilon=0")
	}
	if _, err := ApproximatePageRank(g, -1, DefaultPPRConfig()); err == nil {
		t.Error("accepted negative seed")
	}
	if _, err := ApproximatePageRank(g, NodeID(g.NumQueries()+g.NumAds()), DefaultPPRConfig()); err == nil {
		t.Error("accepted seed beyond node space")
	}
}

func TestPPRMassConservation(t *testing.T) {
	g := twoClusters(t)
	seed, _ := g.QueryID("left-q1")
	p, err := ApproximatePageRank(g, QueryNode(seed), DefaultPPRConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Settled mass must be positive and at most 1.
	total := 0.0
	for _, v := range p {
		if v < 0 {
			t.Fatalf("negative PPR mass %v", v)
		}
		total += v
	}
	if total <= 0 || total > 1+1e-9 {
		t.Errorf("total settled mass = %v, want in (0, 1]", total)
	}
	// The seed's own cluster must hold most of the mass.
	left := 0.0
	for u, v := range p {
		side, id := Split(g, u)
		var name string
		if side == clickgraph.QuerySide {
			name = g.Query(id)
		} else {
			name = g.Ad(id)
		}
		if len(name) >= 4 && name[:4] == "left" {
			left += v
		}
	}
	if left < total*0.8 {
		t.Errorf("left cluster mass %v of %v; PPR should stay local", left, total)
	}
}

func TestSweepCutFindsBridge(t *testing.T) {
	g := twoClusters(t)
	seed, _ := g.QueryID("left-q1")
	cluster, phi, err := Cluster(g, QueryNode(seed), DefaultPPRConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cluster) == 0 {
		t.Fatal("empty cluster")
	}
	// The best cut should isolate (a subset of) the left cluster at low
	// conductance: exactly the 8 left nodes cut only the bridge.
	if phi > 0.1 {
		t.Errorf("conductance %v, want <= 0.1 (single bridge edge)", phi)
	}
	for u := range cluster {
		side, id := Split(g, u)
		var name string
		if side == clickgraph.QuerySide {
			name = g.Query(id)
		} else {
			name = g.Ad(id)
		}
		if len(name) < 4 || name[:4] != "left" {
			t.Errorf("cluster crossed the bridge: contains %s", name)
		}
	}
}

func TestConductanceDefinition(t *testing.T) {
	g := twoClusters(t)
	// The left half: 4 queries + 4 ads, volume 4*4*2+1, cut 1.
	s := map[NodeID]bool{}
	for i := 0; i < 4; i++ {
		q, _ := g.QueryID("left-q" + string(rune('0'+i)))
		a, _ := g.AdID("left-a" + string(rune('0'+i)))
		s[QueryNode(q)] = true
		s[AdNode(g, a)] = true
	}
	phi := Conductance(g, s)
	want := 1.0 / 33.0 // cut=1, vol(left)=16*2+1=33, vol(right)=33 equal
	if math.Abs(phi-want) > 1e-12 {
		t.Errorf("conductance = %v want %v", phi, want)
	}
	if Conductance(g, map[NodeID]bool{}) != 1 {
		t.Error("empty set conductance should be 1")
	}
}

func TestExtractDisjointCover(t *testing.T) {
	g := twoClusters(t)
	subs, err := Extract(g, 2, DefaultPPRConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 2 {
		t.Fatalf("extracted %d subgraphs want 2", len(subs))
	}
	seen := map[string]bool{}
	for _, s := range subs {
		for q := 0; q < s.Graph.NumQueries(); q++ {
			name := s.Graph.Query(q)
			if seen[name] {
				t.Errorf("query %s appears in two subgraphs", name)
			}
			seen[name] = true
		}
	}
}

func TestExtractValidation(t *testing.T) {
	g := twoClusters(t)
	if _, err := Extract(g, 0, DefaultPPRConfig(), 1); err == nil {
		t.Error("accepted count=0")
	}
	if _, err := Extract(g, 1, PPRConfig{}, 1); err == nil {
		t.Error("accepted invalid PPR config")
	}
}

func TestSweepCutMinRespectsFloor(t *testing.T) {
	g := twoClusters(t)
	seed, _ := g.QueryID("left-q1")
	p, err := ApproximatePageRank(g, QueryNode(seed), DefaultPPRConfig())
	if err != nil {
		t.Fatal(err)
	}
	cut, _ := SweepCutMin(g, p, 6)
	if len(cut) < 6 {
		t.Errorf("cut size %d below floor 6", len(cut))
	}
}

func TestNodeIDSplitRoundTrip(t *testing.T) {
	g := twoClusters(t)
	for q := 0; q < g.NumQueries(); q++ {
		side, id := Split(g, QueryNode(q))
		if side != clickgraph.QuerySide || id != q {
			t.Fatalf("query %d round trip gave %v/%d", q, side, id)
		}
	}
	for a := 0; a < g.NumAds(); a++ {
		side, id := Split(g, AdNode(g, a))
		if side != clickgraph.AdSide || id != a {
			t.Fatalf("ad %d round trip gave %v/%d", a, side, id)
		}
	}
}
