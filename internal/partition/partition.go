// Package partition implements the local graph-partitioning algorithm of
// Andersen, Chung and Lang (FOCS 2006) that the Simrank++ paper uses to
// decompose its giant click-graph component into five manageable subgraphs
// (§9.2, Table 5): approximate personalized PageRank computed by the push
// method, followed by a sweep cut that picks the prefix of smallest
// conductance.
//
// The click graph is treated as an undirected graph over a unified node
// space: query q is node q, ad a is node NumQueries + a.
package partition

import (
	"fmt"
	"sort"

	"simrankpp/internal/clickgraph"
)

// NodeID addresses a node in the unified space.
type NodeID int

// QueryNode returns the unified id of query q.
func QueryNode(q int) NodeID { return NodeID(q) }

// AdNode returns the unified id of ad a on graph g.
func AdNode(g *clickgraph.Graph, a int) NodeID { return NodeID(g.NumQueries() + a) }

// Split separates a unified id back into (side, per-side id).
func Split(g *clickgraph.Graph, n NodeID) (clickgraph.Side, int) {
	if int(n) < g.NumQueries() {
		return clickgraph.QuerySide, int(n)
	}
	return clickgraph.AdSide, int(n) - g.NumQueries()
}

// degree returns the unified-space degree of node n.
func degree(g *clickgraph.Graph, n NodeID) int {
	side, id := Split(g, n)
	if side == clickgraph.QuerySide {
		return g.QueryDegree(id)
	}
	return g.AdDegree(id)
}

// neighbors returns the unified-space neighbors of node n.
func neighbors(g *clickgraph.Graph, n NodeID) []NodeID {
	side, id := Split(g, n)
	var raw []int
	if side == clickgraph.QuerySide {
		raw, _ = g.AdsOf(id)
	} else {
		raw, _ = g.QueriesOf(id)
	}
	out := make([]NodeID, len(raw))
	for i, r := range raw {
		if side == clickgraph.QuerySide {
			out[i] = AdNode(g, r)
		} else {
			out[i] = QueryNode(r)
		}
	}
	return out
}

// PPRConfig parameterizes the approximate personalized PageRank push.
type PPRConfig struct {
	// Alpha is the teleport probability. ACL's analysis uses values
	// around 0.1-0.2.
	Alpha float64
	// Epsilon is the per-degree residual threshold: pushing stops when
	// every node u has residual r(u) < Epsilon·deg(u). Smaller epsilon
	// means a more accurate (and larger) support.
	Epsilon float64
}

// DefaultPPRConfig returns alpha 0.15 and epsilon 1e-6.
func DefaultPPRConfig() PPRConfig { return PPRConfig{Alpha: 0.15, Epsilon: 1e-6} }

// Validate reports whether the configuration is usable.
func (c PPRConfig) Validate() error {
	if !(c.Alpha > 0 && c.Alpha < 1) {
		return fmt.Errorf("partition: Alpha must be in (0,1), got %v", c.Alpha)
	}
	if !(c.Epsilon > 0) {
		return fmt.Errorf("partition: Epsilon must be > 0, got %v", c.Epsilon)
	}
	return nil
}

// ApproximatePageRank runs the ACL push algorithm from the given seed and
// returns the sparse approximate PPR vector. Isolated seeds yield a vector
// supported only on the seed.
func ApproximatePageRank(g *clickgraph.Graph, seed NodeID, cfg PPRConfig) (map[NodeID]float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := NodeID(g.NumQueries() + g.NumAds())
	if seed < 0 || seed >= n {
		return nil, fmt.Errorf("partition: seed %d outside unified node space [0,%d)", seed, n)
	}
	p := make(map[NodeID]float64)
	r := map[NodeID]float64{seed: 1}
	queue := []NodeID{seed}
	inQueue := map[NodeID]bool{seed: true}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		inQueue[u] = false
		du := degree(g, u)
		ru := r[u]
		if du == 0 {
			// Isolated node: all residual mass settles here.
			p[u] += ru
			r[u] = 0
			continue
		}
		if ru < cfg.Epsilon*float64(du) {
			continue
		}
		// Push: move alpha fraction to p, spread half the rest.
		p[u] += cfg.Alpha * ru
		share := (1 - cfg.Alpha) * ru / (2 * float64(du))
		r[u] = (1 - cfg.Alpha) * ru / 2
		for _, v := range neighbors(g, u) {
			r[v] += share
			if !inQueue[v] && r[v] >= cfg.Epsilon*float64(degree(g, v)) {
				inQueue[v] = true
				queue = append(queue, v)
			}
		}
		if r[u] >= cfg.Epsilon*float64(du) && !inQueue[u] {
			inQueue[u] = true
			queue = append(queue, u)
		}
	}
	return p, nil
}

// Conductance returns Φ(S) = cut(S) / min(vol(S), vol(complement)) for the
// node set S, where vol sums degrees and cut counts edges with exactly one
// endpoint in S. It returns 1 for empty, full, or zero-volume sets (the
// convention that makes sweep cuts ignore them).
func Conductance(g *clickgraph.Graph, s map[NodeID]bool) float64 {
	totalVol := 0
	for q := 0; q < g.NumQueries(); q++ {
		totalVol += g.QueryDegree(q)
	}
	for a := 0; a < g.NumAds(); a++ {
		totalVol += g.AdDegree(a)
	}
	vol, cut := 0, 0
	for u := range s {
		vol += degree(g, u)
		for _, v := range neighbors(g, u) {
			if !s[v] {
				cut++
			}
		}
	}
	other := totalVol - vol
	m := vol
	if other < m {
		m = other
	}
	if m == 0 {
		return 1
	}
	return float64(cut) / float64(m)
}

// SweepCut orders the support of the PPR vector by p(u)/deg(u) descending
// and returns the prefix set with the smallest conductance, along with
// that conductance. Zero-degree nodes are excluded from the sweep.
func SweepCut(g *clickgraph.Graph, p map[NodeID]float64) (map[NodeID]bool, float64) {
	return SweepCutMin(g, p, 1)
}

// SweepCutMin is SweepCut restricted to prefixes of at least minNodes
// nodes (clamped to the support size), which keeps extracted subgraphs
// "big enough" the way the paper's iterative extraction required.
func SweepCutMin(g *clickgraph.Graph, p map[NodeID]float64, minNodes int) (map[NodeID]bool, float64) {
	return SweepCutBounded(g, p, minNodes, 0)
}

// SweepCutBounded is SweepCutMin additionally restricted to prefixes of
// at most maxNodes nodes (0 means unbounded). The shard planner uses the
// bound for two things: carved pieces respect the shard budget, and the
// sweep can never "choose" the entire support — when the support covers a
// whole component of a multi-component graph, the full prefix has
// conductance 0 (it cuts nothing) and would always win, which is a
// non-answer for a planner that needs a strict piece.
func SweepCutBounded(g *clickgraph.Graph, p map[NodeID]float64, minNodes, maxNodes int) (map[NodeID]bool, float64) {
	type ranked struct {
		node NodeID
		val  float64
	}
	order := make([]ranked, 0, len(p))
	for u, pv := range p {
		if d := degree(g, u); d > 0 {
			order = append(order, ranked{node: u, val: pv / float64(d)})
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].val != order[j].val {
			return order[i].val > order[j].val
		}
		return order[i].node < order[j].node
	})
	if len(order) == 0 {
		return map[NodeID]bool{}, 1
	}
	if minNodes < 1 {
		minNodes = 1
	}
	if minNodes > len(order) {
		minNodes = len(order)
	}
	if maxNodes <= 0 || maxNodes > len(order) {
		maxNodes = len(order)
	}
	if maxNodes < minNodes {
		maxNodes = minNodes
	}

	totalVol := 0
	for q := 0; q < g.NumQueries(); q++ {
		totalVol += g.QueryDegree(q)
	}
	for a := 0; a < g.NumAds(); a++ {
		totalVol += g.AdDegree(a)
	}

	// Incremental conductance over the sweep: adding node u adds deg(u) to
	// vol; each edge to a node already inside converts a cut edge into an
	// internal one (cut -= 1), each edge to an outside node adds one.
	in := make(map[NodeID]bool, len(order))
	vol, cut := 0, 0
	bestPhi := 1.0
	bestLen := 0
	for i, rk := range order[:maxNodes] {
		u := rk.node
		in[u] = true
		vol += degree(g, u)
		for _, v := range neighbors(g, u) {
			if in[v] {
				cut--
			} else {
				cut++
			}
		}
		m := vol
		if other := totalVol - vol; other < m {
			m = other
		}
		if m <= 0 || i+1 < minNodes {
			continue
		}
		phi := float64(cut) / float64(m)
		if phi < bestPhi {
			bestPhi = phi
			bestLen = i + 1
		}
	}
	if bestLen == 0 {
		bestLen = minNodes
	}
	best := make(map[NodeID]bool, bestLen)
	for _, rk := range order[:bestLen] {
		best[rk.node] = true
	}
	return best, bestPhi
}

// Cluster runs ApproximatePageRank from seed and sweeps for the best cut
// of at least minNodes nodes.
func Cluster(g *clickgraph.Graph, seed NodeID, cfg PPRConfig, minNodes int) (map[NodeID]bool, float64, error) {
	p, err := ApproximatePageRank(g, seed, cfg)
	if err != nil {
		return nil, 0, err
	}
	s, phi := SweepCutMin(g, p, minNodes)
	return s, phi, nil
}

// Subgraph is one extracted piece with its seed and conductance.
type Subgraph struct {
	Graph       *clickgraph.Graph
	Seed        NodeID
	Conductance float64
}

// Extract peels count subgraphs from g the way the paper built its
// five-subgraph dataset: pick the highest-degree unassigned query as seed,
// run the ACL cluster around it, remove the cluster's nodes from the pool,
// repeat. Clusters are induced subgraphs of g; nodes never repeat across
// subgraphs. minNodes forces each sweep cut to keep at least that many
// nodes, so the pieces are big enough to evaluate on. If the graph runs
// out of unassigned queries early, fewer than count subgraphs are
// returned.
func Extract(g *clickgraph.Graph, count int, cfg PPRConfig, minNodes int) ([]Subgraph, error) {
	if count < 1 {
		return nil, fmt.Errorf("partition: count must be >= 1, got %d", count)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	assigned := make(map[NodeID]bool)
	var out []Subgraph
	for len(out) < count {
		seed, ok := bestSeed(g, assigned)
		if !ok {
			break
		}
		cluster, phi, err := Cluster(g, seed, cfg, minNodes)
		if err != nil {
			return nil, err
		}
		// Keep only unassigned members; always include the seed.
		var queryIDs, adIDs []int
		cluster[seed] = true
		for u := range cluster {
			if assigned[u] {
				continue
			}
			assigned[u] = true
			side, id := Split(g, u)
			if side == clickgraph.QuerySide {
				queryIDs = append(queryIDs, id)
			} else {
				adIDs = append(adIDs, id)
			}
		}
		sort.Ints(queryIDs)
		sort.Ints(adIDs)
		if len(queryIDs) == 0 {
			continue
		}
		out = append(out, Subgraph{
			Graph:       g.InducedSubgraph(queryIDs, adIDs),
			Seed:        seed,
			Conductance: phi,
		})
	}
	return out, nil
}

// bestSeed returns the unassigned query with the largest degree,
// preferring smaller ids on ties; ok is false when no unassigned query
// with nonzero degree remains.
func bestSeed(g *clickgraph.Graph, assigned map[NodeID]bool) (NodeID, bool) {
	best, bestDeg := NodeID(-1), 0
	for q := 0; q < g.NumQueries(); q++ {
		u := QueryNode(q)
		if assigned[u] {
			continue
		}
		if d := g.QueryDegree(q); d > bestDeg {
			best, bestDeg = u, d
		}
	}
	return best, best >= 0
}
