package partition

import (
	"fmt"
	"strings"
	"testing"

	"simrankpp/internal/clickgraph"
)

// clusteredGraph builds count disjoint pseudo-random clusters of nq
// queries × na ads with edges edges each.
func clusteredGraph(seed uint64, count, nq, na, edges int) *clickgraph.Graph {
	b := clickgraph.NewBuilder()
	s := seed
	next := func(n int) int {
		s = s*6364136223846793005 + 1442695040888963407
		return int((s >> 33) % uint64(n))
	}
	for c := 0; c < count; c++ {
		for i := 0; i < nq; i++ {
			b.AddQuery(fmt.Sprintf("c%d-q%d", c, i))
		}
		for e := 0; e < edges; e++ {
			err := b.AddEdge(fmt.Sprintf("c%d-q%d", c, next(nq)), fmt.Sprintf("c%d-ad%d", c, next(na)),
				clickgraph.EdgeWeights{Impressions: 3, Clicks: 1, ExpectedClickRate: 0.3})
			if err != nil {
				panic(err)
			}
		}
	}
	return b.Build()
}

func TestComponentPlanExactAndCovering(t *testing.T) {
	g := clusteredGraph(1, 5, 10, 8, 30)
	p := ComponentPlan(g)
	if !p.Exact {
		t.Error("component plan must be exact")
	}
	if err := p.Validate(g); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	st := clickgraph.ComputeStats(g)
	if len(p.Shards) != st.Components {
		t.Errorf("shards = %d, want one per component (%d)", len(p.Shards), st.Components)
	}
	if p.TotalCutEdges != 0 {
		t.Errorf("component plan has %d cut edges, want 0", p.TotalCutEdges)
	}
}

func TestBuildPlanPacksSmallComponents(t *testing.T) {
	g := clusteredGraph(2, 6, 12, 9, 40)
	cfg := DefaultPlanConfig()
	cfg.MaxShardNodes = 50 // each cluster is ≤ 21 nodes: 2+ per shard
	p, err := BuildPlan(g, cfg)
	if err != nil {
		t.Fatalf("BuildPlan: %v", err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !p.Exact || p.TotalCutEdges != 0 {
		t.Errorf("packed plan should be exact with 0 cut edges, got exact=%v cut=%d", p.Exact, p.TotalCutEdges)
	}
	st := clickgraph.ComputeStats(g)
	if len(p.Shards) >= st.Components {
		t.Errorf("packing produced %d shards from %d components; expected fewer", len(p.Shards), st.Components)
	}
	for i := range p.Shards {
		if n := p.Shards[i].Nodes(); n > cfg.MaxShardNodes {
			t.Errorf("packed shard %d has %d nodes, budget %d", i, n, cfg.MaxShardNodes)
		}
		if !p.Shards[i].Exact {
			t.Errorf("packed shard %d not exact", i)
		}
	}
}

// bridgedGraph builds two dense clusters joined by a handful of weak
// bridge edges: one connected component that a good sweep cut splits at
// the bridge.
func bridgedGraph(nq, na int) *clickgraph.Graph {
	b := clickgraph.NewBuilder()
	add := func(cluster int, q, a int) {
		err := b.AddEdge(fmt.Sprintf("b%d-q%d", cluster, q), fmt.Sprintf("b%d-ad%d", cluster, a),
			clickgraph.EdgeWeights{Impressions: 4, Clicks: 2, ExpectedClickRate: 0.5})
		if err != nil {
			panic(err)
		}
	}
	for c := 0; c < 2; c++ {
		for q := 0; q < nq; q++ {
			// Consecutive ad offsets keep each cluster one connected piece.
			for k := 0; k < 4; k++ {
				add(c, q, (q+k)%na)
			}
		}
	}
	// Two bridge edges between the clusters.
	for k := 0; k < 2; k++ {
		err := b.AddEdge(fmt.Sprintf("b0-q%d", k), fmt.Sprintf("b1-ad%d", k),
			clickgraph.EdgeWeights{Impressions: 1, Clicks: 0, ExpectedClickRate: 0.01})
		if err != nil {
			panic(err)
		}
	}
	return b.Build()
}

func TestBuildPlanCarvesOversizedComponent(t *testing.T) {
	g := bridgedGraph(40, 30)
	st := clickgraph.ComputeStats(g)
	if st.Components != 1 {
		t.Fatalf("fixture should be one component, got %d", st.Components)
	}
	cfg := DefaultPlanConfig()
	cfg.MaxShardNodes = 90 // each half is 70 nodes; the whole is 140
	cfg.MinCutNodes = 20
	p, err := BuildPlan(g, cfg)
	if err != nil {
		t.Fatalf("BuildPlan: %v", err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(p.Shards) < 2 {
		t.Fatalf("expected the component carved into >= 2 shards, got %d", len(p.Shards))
	}
	if p.Exact {
		t.Error("carved plan must not claim exactness")
	}
	if p.TotalCutEdges == 0 {
		t.Error("carved plan must report its cut edges")
	}
	cutSum := 0
	for i := range p.Shards {
		cutSum += p.Shards[i].CutEdges
	}
	if cutSum != 2*p.TotalCutEdges {
		t.Errorf("per-shard cut edges sum %d, want 2×total (%d)", cutSum, 2*p.TotalCutEdges)
	}
}

func TestPlanValidateRejectsMismatch(t *testing.T) {
	g := clusteredGraph(3, 2, 8, 6, 20)
	other := clusteredGraph(4, 2, 9, 6, 20)
	p := ComponentPlan(g)
	if err := p.Validate(other); err == nil {
		t.Error("accepted plan for a different graph")
	}
	// Drop a node: coverage must fail.
	p2 := ComponentPlan(g)
	p2.Shards[0].Queries = p2.Shards[0].Queries[1:]
	if err := p2.Validate(g); err == nil {
		t.Error("accepted plan missing a query")
	}
	// Duplicate a node across shards.
	p3 := ComponentPlan(g)
	if len(p3.Shards) >= 2 {
		p3.Shards[1].Queries = append([]int{p3.Shards[0].Queries[0]}, p3.Shards[1].Queries...)
		if err := p3.Validate(g); err == nil {
			t.Error("accepted plan with an overlapping query")
		}
	}
}

func TestPlanWriteSummary(t *testing.T) {
	g := bridgedGraph(30, 20)
	cfg := DefaultPlanConfig()
	cfg.MaxShardNodes = 60
	cfg.MinCutNodes = 15
	p, err := BuildPlan(g, cfg)
	if err != nil {
		t.Fatalf("BuildPlan: %v", err)
	}
	var sb strings.Builder
	if err := p.WriteSummary(&sb); err != nil {
		t.Fatalf("WriteSummary: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"shard", "cut-edges", "conductance", "total:"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "approximate") {
		t.Errorf("carved plan summary should say approximate:\n%s", out)
	}
}
