package partition

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"simrankpp/internal/clickgraph"
)

// diffFixture builds the base two-cluster graph the delta tests mutate:
// per cluster c, queries c?-q0,c?-q1 and ads c?-ad0,c?-ad1 with the three
// edges q0–ad0, q0–ad1, q1–ad0 (q1–ad1 deliberately absent so a test can
// add an edge between existing nodes). edits mutates the builder before
// compiling.
func diffFixture(t *testing.T, edits func(b *clickgraph.Builder)) *clickgraph.Graph {
	t.Helper()
	b := clickgraph.NewBuilder()
	addBase := func(b *clickgraph.Builder) {
		for c := 0; c < 2; c++ {
			for _, qa := range [][2]int{{0, 0}, {0, 1}, {1, 0}} {
				err := b.AddEdge(fmt.Sprintf("c%d-q%d", c, qa[0]), fmt.Sprintf("c%d-ad%d", c, qa[1]),
					clickgraph.EdgeWeights{Impressions: 10, Clicks: 2, ExpectedClickRate: 0.2})
				if err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	addBase(b)
	if edits != nil {
		edits(b)
	}
	return b.Build()
}

// diffAgainstBase plans the base fixture and diffs the edited graph
// against it.
func diffAgainstBase(t *testing.T, edits func(b *clickgraph.Builder)) (*Diff, *Plan) {
	t.Helper()
	base := diffFixture(t, nil)
	plan := ComponentPlan(base) // two shards, one per cluster
	if len(plan.Shards) != 2 {
		t.Fatalf("fixture plan has %d shards, want 2", len(plan.Shards))
	}
	d, err := DiffPlans(NewPlanAssignment(base, plan), diffFixture(t, edits))
	if err != nil {
		t.Fatalf("DiffPlans: %v", err)
	}
	return d, plan
}

func wantDirty(t *testing.T, d *Diff, want []bool) {
	t.Helper()
	if !reflect.DeepEqual(d.Dirty, want) {
		t.Errorf("Dirty = %v, want %v", d.Dirty, want)
	}
	dirty := 0
	for _, b := range d.Dirty {
		if b {
			dirty++
		}
	}
	if d.DirtyShards != dirty || d.CleanShards != len(d.Dirty)-dirty {
		t.Errorf("counts %d dirty / %d clean inconsistent with mask %v", d.DirtyShards, d.CleanShards, d.Dirty)
	}
}

func TestDiffIdenticalGraphAllClean(t *testing.T) {
	d, plan := diffAgainstBase(t, nil)
	wantDirty(t, d, []bool{false, false})
	if d.NewQueries+d.NewAds+d.MovedQueries+d.MovedAds != 0 {
		t.Errorf("identical graph reported new/moved nodes: %+v", d)
	}
	for i := range plan.Shards {
		if d.Plan.Shards[i].Fingerprint != plan.Shards[i].Fingerprint {
			t.Errorf("shard %d fingerprint changed on identical graph", i)
		}
		if !reflect.DeepEqual(d.Plan.Shards[i].Queries, plan.Shards[i].Queries) {
			t.Errorf("shard %d query ids changed on identical graph", i)
		}
	}
}

func TestDiffEdgeAddDirtiesOneShard(t *testing.T) {
	d, _ := diffAgainstBase(t, func(b *clickgraph.Builder) {
		// The q1–ad1 edge is absent from the base, so this is a pure edge
		// addition between existing cluster-1 nodes.
		if err := b.AddClick("c1-q1", "c1-ad1", 0.5); err != nil {
			t.Fatal(err)
		}
	})
	// Cluster 1 is shard 1 (clusters are interned in order and equal-sized,
	// components come back size-sorted stable).
	wantDirty(t, d, []bool{false, true})
}

func TestDiffWeightChangeDirtiesOneShard(t *testing.T) {
	d, _ := diffAgainstBase(t, func(b *clickgraph.Builder) {
		// Merging another observation shifts clicks/impressions/rate of an
		// existing cluster-0 edge.
		err := b.AddEdge("c0-q0", "c0-ad0", clickgraph.EdgeWeights{Impressions: 5, Clicks: 5, ExpectedClickRate: 1})
		if err != nil {
			t.Fatal(err)
		}
	})
	wantDirty(t, d, []bool{true, false})
}

func TestDiffEdgeRemovalSplittingComponent(t *testing.T) {
	// Rebuild without c1-q1's single edge, splitting the now-isolated
	// c1-q1 off its component — the shard keeps both halves of the split
	// and is dirty; cluster 0 is untouched.
	base := diffFixture(t, nil)
	plan := ComponentPlan(base)
	b := clickgraph.NewBuilder()
	base.Edges(func(q, a int, w clickgraph.EdgeWeights) bool {
		if base.Query(q) != "c1-q1" {
			if err := b.AddEdge(base.Query(q), base.Ad(a), w); err != nil {
				t.Fatal(err)
			}
		}
		return true
	})
	b.AddQuery("c1-q1") // node survives, isolated
	got := b.Build()
	d, err := DiffPlans(NewPlanAssignment(base, plan), got)
	if err != nil {
		t.Fatalf("DiffPlans: %v", err)
	}
	wantDirty(t, d, []bool{false, true})
	if err := d.Plan.Validate(got); err != nil {
		t.Fatalf("projected plan invalid: %v", err)
	}
}

func TestDiffNewNodeJoinsNeighborShard(t *testing.T) {
	d, _ := diffAgainstBase(t, func(b *clickgraph.Builder) {
		// A chain of two new nodes hanging off cluster 0: the new ad
		// attaches through the new query, exercising the breadth-first
		// adoption.
		if err := b.AddClick("c0-qnew", "c0-ad1", 0.4); err != nil {
			t.Fatal(err)
		}
		if err := b.AddClick("c0-qnew", "c0-adnew", 0.4); err != nil {
			t.Fatal(err)
		}
	})
	wantDirty(t, d, []bool{true, false})
	if d.NewQueries != 1 || d.NewAds != 1 {
		t.Errorf("new nodes = %d queries %d ads, want 1/1", d.NewQueries, d.NewAds)
	}
	if len(d.Plan.Shards) != 2 {
		t.Fatalf("no appended shard expected, got %d shards", len(d.Plan.Shards))
	}
	if n := d.Plan.Shards[0].Nodes(); n != 6 {
		t.Errorf("shard 0 has %d nodes after adoption, want 6", n)
	}
}

func TestDiffWhollyNewComponentAppendsShard(t *testing.T) {
	d, _ := diffAgainstBase(t, func(b *clickgraph.Builder) {
		if err := b.AddClick("island-q", "island-ad", 0.9); err != nil {
			t.Fatal(err)
		}
	})
	wantDirty(t, d, []bool{false, false, true})
	if d.PrevShards != 2 || len(d.Plan.Shards) != 3 {
		t.Fatalf("appended shard missing: prev=%d now=%d", d.PrevShards, len(d.Plan.Shards))
	}
	s := &d.Plan.Shards[2]
	if !s.Exact || s.Nodes() != 2 {
		t.Errorf("appended shard = %d nodes exact=%v, want the 2-node island, exact", s.Nodes(), s.Exact)
	}
}

func TestDiffMovedIDsDirtyTheirShards(t *testing.T) {
	// Same topology, but cluster 1 interned before cluster 0: every node's
	// id moves, so both shards are dirty even though names and edges match.
	base := diffFixture(t, nil)
	plan := ComponentPlan(base)
	b := clickgraph.NewBuilder()
	for _, c := range []int{1, 0} {
		for _, qa := range [][2]int{{0, 0}, {0, 1}, {1, 0}} {
			err := b.AddEdge(fmt.Sprintf("c%d-q%d", c, qa[0]), fmt.Sprintf("c%d-ad%d", c, qa[1]),
				clickgraph.EdgeWeights{Impressions: 10, Clicks: 2, ExpectedClickRate: 0.2})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	got := b.Build()
	d, err := DiffPlans(NewPlanAssignment(base, plan), got)
	if err != nil {
		t.Fatalf("DiffPlans: %v", err)
	}
	wantDirty(t, d, []bool{true, true})
	if d.MovedQueries == 0 || d.MovedAds == 0 {
		t.Errorf("expected moved nodes, got %+v", d)
	}
}

func TestGraphFingerprintSensitivity(t *testing.T) {
	base := diffFixture(t, nil)
	if got := GraphFingerprint(diffFixture(t, nil)); got != GraphFingerprint(base) {
		t.Error("fingerprint not deterministic across rebuilds")
	}
	variants := map[string]func(b *clickgraph.Builder){
		"edge add":      func(b *clickgraph.Builder) { _ = b.AddClick("c0-q0", "c1-ad2", 0.1) },
		"weight change": func(b *clickgraph.Builder) { _ = b.AddEdge("c0-q0", "c0-ad0", clickgraph.EdgeWeights{Impressions: 1, Clicks: 1, ExpectedClickRate: 0.9}) },
		"node add":      func(b *clickgraph.Builder) { b.AddQuery("extra") },
	}
	for name, edit := range variants {
		if GraphFingerprint(diffFixture(t, edit)) == GraphFingerprint(base) {
			t.Errorf("%s did not change the fingerprint", name)
		}
	}
}

// TestReannotateRefreshesFingerprints pins the stale-plan hazard: a plan
// applied to a graph whose edges drifted (node coverage unchanged, so
// Validate passes) must have Reannotate re-derive its fingerprints from
// that graph — a snapshot persisting the stored ones would otherwise
// carry another generation's change-detection state.
func TestReannotateRefreshesFingerprints(t *testing.T) {
	base := diffFixture(t, nil)
	plan := ComponentPlan(base)
	orig := []uint64{plan.Shards[0].Fingerprint, plan.Shards[1].Fingerprint}

	changed := diffFixture(t, func(b *clickgraph.Builder) {
		err := b.AddEdge("c0-q0", "c0-ad0", clickgraph.EdgeWeights{Impressions: 5, Clicks: 5, ExpectedClickRate: 1})
		if err != nil {
			t.Fatal(err)
		}
	})
	if err := plan.Validate(changed); err != nil {
		t.Fatalf("fixture: weight-only drift should still validate: %v", err)
	}
	plan.Reannotate(changed)
	if plan.Shards[0].Fingerprint == orig[0] {
		t.Error("cluster-0 fingerprint not re-derived from the drifted graph")
	}
	if plan.Shards[1].Fingerprint != orig[1] {
		t.Error("untouched cluster-1 fingerprint changed under Reannotate")
	}
}

func TestPlanBinaryRoundTrip(t *testing.T) {
	g := clusteredGraph(5, 6, 12, 9, 40)
	cfg := DefaultPlanConfig()
	cfg.MaxShardNodes = 50
	p, err := BuildPlan(g, cfg)
	if err != nil {
		t.Fatalf("BuildPlan: %v", err)
	}
	var buf bytes.Buffer
	if err := p.WriteBinary(&buf); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ReadPlan(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadPlan: %v", err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Errorf("round trip mismatch:\n  wrote %+v\n  read  %+v", p, got)
	}
	if err := got.Validate(g); err != nil {
		t.Errorf("loaded plan does not validate: %v", err)
	}

	// Corruption must be detected, not decoded.
	raw := buf.Bytes()
	raw[len(raw)/2] ^= 0x40
	if _, err := ReadPlan(bytes.NewReader(raw)); err == nil {
		t.Error("corrupt plan accepted")
	}
	if _, err := ReadPlan(bytes.NewReader(raw[:len(raw)/3])); err == nil {
		t.Error("truncated plan accepted")
	}
}
