package partition

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
)

// Plan persistence: a compact binary encoding so the refresh path (and
// repeated sharded runs over the same graph) reuse a planned decomposition
// instead of re-paying BuildPlan's ACL clustering. Node id lists are
// delta-encoded uvarints (ids are ascending within a shard); the whole
// payload is CRC-guarded. The format is versioned independently of the
// snapshot format — a plan names a decomposition of one specific graph
// (Plan.Validate checks the dimensions on use).

const planMagic = "SRPPPLN1"

// WriteBinary serializes the plan.
func (p *Plan) WriteBinary(w io.Writer) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))
	var scratch [binary.MaxVarintLen64]byte
	u := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	if _, err := bw.WriteString(planMagic); err != nil {
		return err
	}
	flags := uint64(0)
	if p.Exact {
		flags = 1
	}
	for _, v := range []uint64{flags, uint64(p.NumQueries), uint64(p.NumAds),
		uint64(p.TotalCutEdges), uint64(len(p.Shards))} {
		if err := u(v); err != nil {
			return err
		}
	}
	ids := func(list []int) error {
		if err := u(uint64(len(list))); err != nil {
			return err
		}
		prev := 0
		for _, id := range list {
			if err := u(uint64(id - prev)); err != nil {
				return err
			}
			prev = id
		}
		return nil
	}
	for i := range p.Shards {
		s := &p.Shards[i]
		if err := ids(s.Queries); err != nil {
			return err
		}
		if err := ids(s.Ads); err != nil {
			return err
		}
		sf := uint64(0)
		if s.Exact {
			sf = 1
		}
		for _, v := range []uint64{sf, uint64(s.CutEdges),
			math.Float64bits(s.Conductance), s.Fingerprint} {
			if err := u(v); err != nil {
				return err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	_, err := w.Write(sum[:])
	return err
}

// ReadPlan deserializes a plan written by WriteBinary, verifying the
// trailing checksum.
func ReadPlan(r io.Reader) (*Plan, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(raw) < len(planMagic)+4 {
		return nil, fmt.Errorf("partition: plan file too small (%d bytes)", len(raw))
	}
	body, sum := raw[:len(raw)-4], binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("partition: plan checksum mismatch (corrupt file)")
	}
	if string(body[:len(planMagic)]) != planMagic {
		return nil, fmt.Errorf("partition: bad plan magic %q", body[:len(planMagic)])
	}
	buf := body[len(planMagic):]
	u := func() (uint64, error) {
		v, n := binary.Uvarint(buf)
		if n <= 0 {
			return 0, fmt.Errorf("partition: plan file truncated")
		}
		buf = buf[n:]
		return v, nil
	}
	var hdr [5]uint64
	for i := range hdr {
		if hdr[i], err = u(); err != nil {
			return nil, err
		}
	}
	flags, nq, na, cut, shards := hdr[0], hdr[1], hdr[2], hdr[3], hdr[4]
	if nq > math.MaxInt32 || na > math.MaxInt32 || shards > uint64(len(buf))+1 {
		return nil, fmt.Errorf("partition: plan dimensions implausible (%d×%d, %d shards)", nq, na, shards)
	}
	p := &Plan{
		Exact:         flags&1 != 0,
		NumQueries:    int(nq),
		NumAds:        int(na),
		TotalCutEdges: int(cut),
		Shards:        make([]Shard, shards),
	}
	ids := func(limit int) ([]int, error) {
		n, err := u()
		if err != nil {
			return nil, err
		}
		if n > uint64(limit) {
			return nil, fmt.Errorf("partition: shard id list of %d exceeds side size %d", n, limit)
		}
		if n == 0 {
			return nil, nil
		}
		out := make([]int, n)
		prev := uint64(0)
		for i := range out {
			d, err := u()
			if err != nil {
				return nil, err
			}
			prev += d
			if prev >= uint64(limit) {
				return nil, fmt.Errorf("partition: shard id %d outside side size %d", prev, limit)
			}
			out[i] = int(prev)
		}
		return out, nil
	}
	for i := range p.Shards {
		s := &p.Shards[i]
		if s.Queries, err = ids(p.NumQueries); err != nil {
			return nil, err
		}
		if s.Ads, err = ids(p.NumAds); err != nil {
			return nil, err
		}
		var vals [4]uint64
		for k := range vals {
			if vals[k], err = u(); err != nil {
				return nil, err
			}
		}
		s.Exact = vals[0]&1 != 0
		s.CutEdges = int(vals[1])
		s.Conductance = math.Float64frombits(vals[2])
		s.Fingerprint = vals[3]
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("partition: %d trailing bytes after plan payload", len(buf))
	}
	return p, nil
}

// WritePlanFile writes the plan to a temporary file in path's directory
// and renames it into place.
func WritePlanFile(path string, p *Plan) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := p.WriteBinary(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadPlanFile reads a plan written by WritePlanFile.
func ReadPlanFile(path string) (*Plan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadPlan(f)
}
