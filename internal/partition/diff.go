package partition

import (
	"fmt"

	"simrankpp/internal/clickgraph"
)

// This file is the change-detection half of incremental refresh: given a
// previous generation's shard assignment (names → ids and shards, plus
// per-shard fingerprints — a serve.Snapshot carries all of it, as does an
// old graph + plan pair) and the *new* graph, DiffPlans projects the old
// decomposition onto the new graph and classifies every shard as clean
// (identical subgraph, identical ids: the previous scores and snapshot
// segment are reusable verbatim) or dirty (something it can observe
// moved: re-run it, ideally warm-started). The projection never runs
// BuildPlan — it is one name-lookup pass plus one edge scan, so the
// refresh path's planning cost is proportional to the graph scan, not to
// ACL clustering.

// PrevAssignment is the previous generation's node→shard record the diff
// maps a new graph against: shard count, per-shard subgraph fingerprints,
// and name-keyed lookups returning the node's previous id and shard.
// *serve.Snapshot implements it (names from the string table, shards from
// the route map, fingerprints from the directory); PlanAssignment adapts
// an in-memory old graph + plan.
type PrevAssignment interface {
	NumShards() int
	ShardFingerprint(i int) uint64
	// PrevQuery returns the previous id and shard of the query named name.
	PrevQuery(name string) (id, shard int, ok bool)
	// PrevAd is PrevQuery for the ad side.
	PrevAd(name string) (id, shard int, ok bool)
}

// PlanAssignment adapts a previous graph and its plan to PrevAssignment.
type PlanAssignment struct {
	g      *clickgraph.Graph
	plan   *Plan
	qShard []int32
	aShard []int32
}

// NewPlanAssignment indexes plan (built for g) for diffing.
func NewPlanAssignment(g *clickgraph.Graph, p *Plan) *PlanAssignment {
	q, a := p.shardIndex()
	return &PlanAssignment{g: g, plan: p, qShard: q, aShard: a}
}

// NumShards implements PrevAssignment.
func (pa *PlanAssignment) NumShards() int { return len(pa.plan.Shards) }

// ShardFingerprint implements PrevAssignment.
func (pa *PlanAssignment) ShardFingerprint(i int) uint64 { return pa.plan.Shards[i].Fingerprint }

// PrevQuery implements PrevAssignment.
func (pa *PlanAssignment) PrevQuery(name string) (int, int, bool) {
	id, ok := pa.g.QueryID(name)
	if !ok || pa.qShard[id] < 0 {
		return 0, 0, false
	}
	return id, int(pa.qShard[id]), true
}

// PrevAd implements PrevAssignment.
func (pa *PlanAssignment) PrevAd(name string) (int, int, bool) {
	id, ok := pa.g.AdID(name)
	if !ok || pa.aShard[id] < 0 {
		return 0, 0, false
	}
	return id, int(pa.aShard[id]), true
}

// Diff is the outcome of mapping a new graph against a previous
// assignment: the projected plan for the new graph (previous shard
// indices preserved, so shard i of the plan corresponds to segment i of
// the previous snapshot; wholly-new components land in one appended
// shard) and the per-shard dirty classification.
type Diff struct {
	// Plan covers the new graph. Shards [0, PrevShards) correspond
	// index-for-index to the previous generation's; any shard at index >=
	// PrevShards is new. Exactness is recomputed from the projected cut
	// edges, not carried over.
	Plan *Plan
	// Dirty has one entry per Plan shard: false means the shard's
	// subgraph (nodes with their ids, incident edges with their weights)
	// is identical to the previous generation's — its scores and its
	// snapshot segment can be reused without recomputation.
	Dirty []bool
	// PrevShards echoes the previous generation's shard count.
	PrevShards int
	// CleanShards and DirtyShards count the classification.
	CleanShards, DirtyShards int
	// NewQueries/NewAds count nodes whose names the previous generation
	// did not know; MovedQueries/MovedAds count nodes re-interned under a
	// different id (their shards are dirty: stored segments key scores by
	// id, so an id shift invalidates them even if the topology matched).
	NewQueries, NewAds     int
	MovedQueries, MovedAds int
}

// DirtyShards returns the dirty classification of mapping g against prev
// — the convenience form of DiffPlans for callers that only schedule
// work. See DiffPlans for the semantics.
func DirtyShards(prev PrevAssignment, g *clickgraph.Graph) ([]bool, error) {
	d, err := DiffPlans(prev, g)
	if err != nil {
		return nil, err
	}
	return d.Dirty, nil
}

// DiffPlans maps the new graph g against a previous assignment:
//
//  1. Every node whose name the previous generation knew keeps its
//     previous shard (nodes whose id changed are recorded as moved).
//  2. Nodes with unknown names adopt a shard from an already-assigned
//     neighbor (breadth-first, so a chain of new nodes hanging off an old
//     shard joins that shard); nodes in wholly-new components — no path
//     to any previously-known node — are collected into one appended
//     shard, which is a union of whole components by construction.
//  3. The projected plan is annotated (cut edges + fingerprints) in one
//     edge scan; a shard is clean iff its fingerprint equals the previous
//     generation's and it absorbed no new or moved node. Deleted nodes
//     and changed, added or removed edges all flip the fingerprint, so
//     they need no separate tracking.
//
// Exactness of each projected shard is re-derived (CutEdges == 0), since
// churn can connect or disconnect shards regardless of what the old plan
// believed.
func DiffPlans(prev PrevAssignment, g *clickgraph.Graph) (*Diff, error) {
	nq, na := g.NumQueries(), g.NumAds()
	prevShards := prev.NumShards()
	if prevShards < 1 {
		return nil, fmt.Errorf("partition: previous assignment has no shards")
	}
	d := &Diff{PrevShards: prevShards}

	qShard := make([]int32, nq)
	aShard := make([]int32, na)
	// touched marks shards that gained a new or moved node: dirty even if
	// the fingerprint happened to match (it cannot for moved ids, but the
	// classification should not lean on hash sensitivity alone).
	touched := make([]bool, prevShards+1)
	var newQ, newA []int // unassigned after the name pass
	for q := 0; q < nq; q++ {
		oldID, sh, ok := prev.PrevQuery(g.Query(q))
		if !ok {
			qShard[q] = -1
			newQ = append(newQ, q)
			d.NewQueries++
			continue
		}
		qShard[q] = int32(sh)
		if oldID != q {
			d.MovedQueries++
			touched[sh] = true
		}
	}
	for a := 0; a < na; a++ {
		oldID, sh, ok := prev.PrevAd(g.Ad(a))
		if !ok {
			aShard[a] = -1
			newA = append(newA, a)
			d.NewAds++
			continue
		}
		aShard[a] = int32(sh)
		if oldID != a {
			d.MovedAds++
			touched[sh] = true
		}
	}

	// Attach new nodes to a neighbor's shard, breadth-first: each pass
	// assigns nodes adjacent to the assigned frontier, so chains resolve
	// in as many passes as their depth. Churn is marginal by assumption;
	// in the worst (wholly-new long chain) case this is passes × degree
	// scans over only the still-new nodes.
	for len(newQ) > 0 || len(newA) > 0 {
		progress := false
		rq := newQ[:0]
		for _, q := range newQ {
			assigned := false
			nbrs, _ := g.AdsOf(q)
			for _, a := range nbrs {
				if aShard[a] >= 0 {
					qShard[q] = aShard[a]
					touched[aShard[a]] = true
					assigned, progress = true, true
					break
				}
			}
			if !assigned {
				rq = append(rq, q)
			}
		}
		newQ = rq
		ra := newA[:0]
		for _, a := range newA {
			assigned := false
			nbrs, _ := g.QueriesOf(a)
			for _, q := range nbrs {
				if qShard[q] >= 0 {
					aShard[a] = qShard[q]
					touched[qShard[q]] = true
					assigned, progress = true, true
					break
				}
			}
			if !assigned {
				ra = append(ra, a)
			}
		}
		newA = ra
		if !progress {
			break
		}
	}
	// Leftovers are wholly-new components: one appended shard.
	appended := len(newQ) > 0 || len(newA) > 0
	numShards := prevShards
	if appended {
		for _, q := range newQ {
			qShard[q] = int32(prevShards)
		}
		for _, a := range newA {
			aShard[a] = int32(prevShards)
		}
		touched[prevShards] = true
		numShards++
	}

	p := &Plan{Shards: make([]Shard, numShards), NumQueries: nq, NumAds: na}
	for q := 0; q < nq; q++ { // ascending ids, so shard lists come out sorted
		s := &p.Shards[qShard[q]]
		s.Queries = append(s.Queries, q)
	}
	for a := 0; a < na; a++ {
		s := &p.Shards[aShard[a]]
		s.Ads = append(s.Ads, a)
	}
	p.Reannotate(g)
	if err := p.Validate(g); err != nil {
		return nil, fmt.Errorf("partition: projected plan invalid: %w", err)
	}

	d.Plan = p
	d.Dirty = make([]bool, numShards)
	for si := range p.Shards {
		dirty := si >= prevShards || touched[si] ||
			p.Shards[si].Fingerprint != prev.ShardFingerprint(si)
		d.Dirty[si] = dirty
		if dirty {
			d.DirtyShards++
		} else {
			d.CleanShards++
		}
	}
	return d, nil
}
