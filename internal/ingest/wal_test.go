package ingest

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func walRec(i int) Record {
	clicks := int64(i%5 + 1)
	return Record{
		Query:       fmt.Sprintf("query-%d", i),
		Ad:          fmt.Sprintf("ad-%d", i%7),
		Impressions: clicks * 3,
		Clicks:      clicks,
		Rate:        float64(i%100) / 100,
	}
}

func appendRecs(t *testing.T, l *Log, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		if _, err := l.Append(walRec(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
}

func replayAll(t *testing.T, l *Log, from uint64) (seqs []uint64, recs []Record) {
	t.Helper()
	err := l.Replay(from, func(seq uint64, rec Record) error {
		seqs = append(seqs, seq)
		recs = append(recs, rec)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return seqs, recs
}

func TestWALRoundTripAndRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogOptions{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendRecs(t, l, 0, 100)
	if l.Segments() < 3 {
		t.Fatalf("expected rotation at 256 bytes, got %d segments", l.Segments())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l, err = OpenLog(dir, LogOptions{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.TornBytesTruncated() != 0 {
		t.Fatalf("clean reopen truncated %d bytes", l.TornBytesTruncated())
	}
	if got := l.NextSeq(); got != 100 {
		t.Fatalf("NextSeq = %d, want 100", got)
	}
	seqs, recs := replayAll(t, l, 0)
	if len(recs) != 100 {
		t.Fatalf("replayed %d records, want 100", len(recs))
	}
	for i := range recs {
		if seqs[i] != uint64(i) {
			t.Fatalf("record %d has seq %d", i, seqs[i])
		}
		if !reflect.DeepEqual(recs[i], walRec(i)) {
			t.Fatalf("record %d = %+v, want %+v", i, recs[i], walRec(i))
		}
	}
	// Partial replay starts exactly at the cursor.
	seqs, _ = replayAll(t, l, 42)
	if len(seqs) != 58 || seqs[0] != 42 {
		t.Fatalf("replay from 42: %d records starting at %v", len(seqs), seqs[:1])
	}
}

// activeSegPath returns the lexically-last segment file — the active one.
func activeSegPath(t *testing.T, dir string) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no segments in %s (%v)", dir, err)
	}
	return names[len(names)-1]
}

// TestWALReopenEmptySegment pins the empty-segment edge cases: a brand
// new log (header-only segment), and reopening it, must behave as an
// empty record set, not an error.
func TestWALReopenEmptySegment(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if sz := fileSize(activeSegPath(t, dir)); sz != segHeaderSize {
		t.Fatalf("empty segment is %d bytes, want %d", sz, segHeaderSize)
	}
	l, err = OpenLog(dir, LogOptions{})
	if err != nil {
		t.Fatalf("reopening empty log: %v", err)
	}
	defer l.Close()
	if got := l.NextSeq(); got != 0 {
		t.Fatalf("NextSeq = %d after empty reopen", got)
	}
	if seqs, _ := replayAll(t, l, 0); len(seqs) != 0 {
		t.Fatalf("empty log replayed %d records", len(seqs))
	}
	if seq, err := l.Append(walRec(0)); err != nil || seq != 0 {
		t.Fatalf("first append after empty reopen: seq %d, err %v", seq, err)
	}
}

// TestWALTornTailEveryLength cuts the active segment at EVERY byte
// length between the last full-record boundary and the file end.
// Each cut must reopen as the full-record prefix, byte-for-byte and
// record-for-record identical to a clean run, and accept new appends.
// The boundary cut itself (a record missing entirely) is a clean end,
// not a torn tail.
func TestWALTornTailEveryLength(t *testing.T) {
	const keep = 4 // records that must survive
	build := func(dir string) (boundary, full int64) {
		l, err := OpenLog(dir, LogOptions{})
		if err != nil {
			t.Fatal(err)
		}
		appendRecs(t, l, 0, keep)
		boundary = fileSize(activeSegPath(t, dir)) // after Sync, before the torn record
		appendRecs(t, l, keep, 1)
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		return boundary, fileSize(activeSegPath(t, dir))
	}
	cleanDir := t.TempDir()
	boundary, full := build(cleanDir)
	cleanPrefix, err := os.ReadFile(activeSegPath(t, cleanDir))
	if err != nil {
		t.Fatal(err)
	}
	cleanPrefix = cleanPrefix[:boundary]

	for cut := boundary; cut < full; cut++ {
		dir := t.TempDir()
		if b2, f2 := build(dir); b2 != boundary || f2 != full {
			t.Fatalf("nondeterministic build: boundary %d/%d, full %d/%d", b2, boundary, f2, full)
		}
		seg := activeSegPath(t, dir)
		if err := os.Truncate(seg, cut); err != nil {
			t.Fatal(err)
		}
		l, err := OpenLog(dir, LogOptions{})
		if err != nil {
			t.Fatalf("cut at %d: reopen: %v", cut, err)
		}
		if torn := l.TornBytesTruncated(); (cut == boundary) != (torn == 0) {
			t.Fatalf("cut at %d (boundary %d): torn bytes %d", cut, boundary, torn)
		}
		if got := l.NextSeq(); got != keep {
			t.Fatalf("cut at %d: NextSeq %d, want %d", cut, got, keep)
		}
		if sz := fileSize(seg); sz != boundary {
			t.Fatalf("cut at %d: segment is %d bytes after reopen, want truncation to %d", cut, sz, boundary)
		}
		after, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(after, cleanPrefix) {
			t.Fatalf("cut at %d: surviving bytes differ from the clean run's prefix", cut)
		}
		seqs, recs := replayAll(t, l, 0)
		if len(recs) != keep {
			t.Fatalf("cut at %d: replayed %d records, want %d", cut, len(recs), keep)
		}
		for i := range recs {
			if seqs[i] != uint64(i) || !reflect.DeepEqual(recs[i], walRec(i)) {
				t.Fatalf("cut at %d: record %d = seq %d %+v", cut, i, seqs[i], recs[i])
			}
		}
		// The log must keep working where the tail left off.
		if seq, err := l.Append(walRec(keep)); err != nil || seq != keep {
			t.Fatalf("cut at %d: append after truncation: seq %d, err %v", cut, seq, err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWALFlipEveryByteOfFinalFrame flips every single byte of the last
// record's frame in turn: each flip must be rejected (CRC, length
// bounds, or payload validation) and reopen must serve exactly the
// preceding records — no flipped byte may ever surface as a record.
func TestWALFlipEveryByteOfFinalFrame(t *testing.T) {
	const keep = 2
	dir := t.TempDir()
	l, err := OpenLog(dir, LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	appendRecs(t, l, 0, keep)
	boundary := fileSize(activeSegPath(t, dir))
	appendRecs(t, l, keep, 1)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := activeSegPath(t, dir)
	clean, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}

	for off := boundary; off < int64(len(clean)); off++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), clean...)
			mut[off] ^= 1 << bit
			if err := os.WriteFile(seg, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			l, err := OpenLog(dir, LogOptions{})
			if err != nil {
				t.Fatalf("flip byte %d bit %d: reopen: %v", off, bit, err)
			}
			if got := l.NextSeq(); got != keep {
				t.Fatalf("flip byte %d bit %d: NextSeq %d, want %d (corrupt record accepted?)", off, bit, got, keep)
			}
			seqs, recs := replayAll(t, l, 0)
			if len(recs) != keep {
				t.Fatalf("flip byte %d bit %d: replayed %d records", off, bit, len(recs))
			}
			for i := range recs {
				if seqs[i] != uint64(i) || !reflect.DeepEqual(recs[i], walRec(i)) {
					t.Fatalf("flip byte %d bit %d: record %d corrupted", off, bit, i)
				}
			}
			l.Close()
		}
	}
}

// TestWALMidChainCorruptionFatal: the torn-tail tolerance applies ONLY
// to the active segment. The same damage in a sealed (fsynced, rotated
// away) segment is corruption and must refuse to open.
func TestWALMidChainCorruptionFatal(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogOptions{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendRecs(t, l, 0, 60)
	if l.Segments() < 3 {
		t.Fatalf("need 3+ segments, got %d", l.Segments())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))

	t.Run("flipped byte", func(t *testing.T) {
		first := names[0]
		raw, err := os.ReadFile(first)
		if err != nil {
			t.Fatal(err)
		}
		mut := append([]byte(nil), raw...)
		mut[segHeaderSize+10] ^= 0x40
		if err := os.WriteFile(first, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenLog(dir, LogOptions{}); err == nil {
			t.Fatal("mid-chain corruption opened without error")
		}
		if err := os.WriteFile(first, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("missing segment", func(t *testing.T) {
		second := names[1]
		raw, err := os.ReadFile(second)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Remove(second); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenLog(dir, LogOptions{}); err == nil {
			t.Fatal("segment gap opened without error")
		}
		if err := os.WriteFile(second, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	})
	// Restored intact, the chain must open again.
	l, err = OpenLog(dir, LogOptions{})
	if err != nil {
		t.Fatalf("restored chain does not open: %v", err)
	}
	defer l.Close()
	if seqs, _ := replayAll(t, l, 0); len(seqs) != 60 {
		t.Fatalf("restored chain replayed %d records", len(seqs))
	}
}

func TestWALBackpressure(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogOptions{MaxLagRecords: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendRecs(t, l, 0, 5)
	if _, err := l.Append(walRec(5)); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("append past MaxLagRecords: %v, want ErrBackpressure", err)
	}
	l.SetFolded(3)
	if _, err := l.Append(walRec(5)); err != nil {
		t.Fatalf("append after SetFolded: %v", err)
	}
	if lag := l.Lag(); lag != 3 {
		t.Fatalf("lag = %d, want 3", lag)
	}
}

// TestWALAdvanceTo pins the cursor-ahead-of-WAL recovery: records that
// were folded, published, and then lost from the WAL directory must not
// make later sequence numbers collide.
func TestWALAdvanceTo(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.AdvanceTo(10); err != nil {
		t.Fatal(err)
	}
	if got := l.NextSeq(); got != 10 {
		t.Fatalf("NextSeq = %d after AdvanceTo(10)", got)
	}
	if seq, err := l.Append(walRec(0)); err != nil || seq != 10 {
		t.Fatalf("append after advance: seq %d, err %v", seq, err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	seqs, _ := replayAll(t, l, 10)
	if len(seqs) != 1 || seqs[0] != 10 {
		t.Fatalf("replay from 10: %v", seqs)
	}
	// AdvanceTo backwards is a no-op.
	if err := l.AdvanceTo(3); err != nil {
		t.Fatal(err)
	}
	if got := l.NextSeq(); got != 11 {
		t.Fatalf("NextSeq = %d after backwards AdvanceTo", got)
	}
}

func TestWALTruncateBefore(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogOptions{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendRecs(t, l, 0, 60)
	segs := l.Segments()
	if segs < 3 {
		t.Fatalf("need 3+ segments, got %d", segs)
	}
	l.SetFolded(30)
	if err := l.TruncateBefore(30); err != nil {
		t.Fatal(err)
	}
	if l.Segments() >= segs {
		t.Fatalf("TruncateBefore removed nothing (%d segments)", l.Segments())
	}
	// Everything at or past the cursor must still replay.
	seqs, recs := replayAll(t, l, 30)
	if len(seqs) == 0 || seqs[0] > 30 || seqs[len(seqs)-1] != 59 {
		t.Fatalf("replay after truncation: %d records, first %d", len(seqs), seqs[0])
	}
	for i, seq := range seqs {
		if seq < 30 {
			continue
		}
		if !reflect.DeepEqual(recs[i], walRec(int(seq))) {
			t.Fatalf("record %d corrupted after truncation", seq)
		}
	}
	// The active segment is never deleted, even if fully folded.
	l.SetFolded(60)
	if err := l.TruncateBefore(60); err != nil {
		t.Fatal(err)
	}
	if l.Segments() < 1 {
		t.Fatal("active segment deleted")
	}
}
