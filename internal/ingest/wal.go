package ingest

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// The WAL is a directory of fixed-header segments:
//
//	wal-00000000.seg  wal-00000001.seg  ...
//
// Segment header (32 bytes):
//
//	magic "SRPPWAL1" | version u32 | segment index u64 | first seq u64 | CRC32(header[0:28]) u32
//
// followed by length-prefixed, CRC-trailered record frames:
//
//	payload len u32 | payload | CRC32(payload) u32
//
// Record payload (all little-endian, fixed layout so a flipped length
// byte can't make the decoder allocate unboundedly):
//
//	qlen u16 | query | alen u16 | ad | impressions u64 | clicks u64 | rate float64 bits u64
//
// Records carry implicit sequence numbers: segment firstSeq + position.
// The fold cursor is a sequence number; replay starts at the first
// segment whose range covers it. TruncateBefore drops whole segments
// strictly below the cursor — retention is oldest-segment granular, so
// the bytes a crash recovery could still need are never deleted.
//
// Durability contract: Append buffers; Sync flushes and fsyncs once for
// however many appends preceded it (group commit). Rotation fsyncs the
// finished segment and the directory, so only the ACTIVE segment can
// ever have a torn tail. Reopen verifies every frame: a torn or corrupt
// tail on the last segment is truncated at the last valid record
// boundary; the same damage mid-chain (a segment that was fsynced and
// rotated away) is a hard error — that's corruption, not a crash.

const (
	segMagic      = "SRPPWAL1"
	segVersion    = 1
	segHeaderSize = 32

	// Payload bounds: 2+name + 2+name + 3×8 bytes.
	minPayloadLen = 2 + 1 + 2 + 1 + 24
	maxPayloadLen = 2 + maxNameLen + 2 + maxNameLen + 24
	frameOverhead = 8 // u32 length prefix + u32 CRC trailer
)

// ErrBackpressure is returned by Append when the WAL has outrun folding
// past LogOptions.MaxLagRecords. Callers should surface it as "retry
// later" (the ingest daemon answers 503 + Retry-After) — the bound is
// what keeps replay time and WAL disk usage finite when refresh is
// failing or slow.
var ErrBackpressure = errors.New("ingest: WAL lag exceeds MaxLagRecords; folding is behind, retry later")

// LogOptions tunes a Log.
type LogOptions struct {
	// SegmentBytes rotates the active segment once it reaches this many
	// bytes (header included). Default 4 MiB.
	SegmentBytes int64
	// MaxLagRecords bounds nextSeq - foldedSeq: appends beyond it fail
	// with ErrBackpressure until SetFolded advances. 0 disables.
	MaxLagRecords uint64
}

type segInfo struct {
	path     string
	index    uint64
	firstSeq uint64
	records  uint64
}

// Log is the segmented WAL. All methods are safe for concurrent use;
// one goroutine appending while another replays is the intended shape
// (the ingest handler vs the fold loop).
type Log struct {
	dir string
	opt LogOptions

	mu      sync.Mutex
	segs    []segInfo // ascending by index; last is active
	f       *os.File  // active segment, append-only
	w       *bufio.Writer
	size    int64 // active segment bytes (through the buffer)
	nextSeq uint64
	folded  uint64 // durable fold cursor, for lag accounting
	dirty   bool   // unsynced appends
	scratch []byte

	tornBytes int64 // tail bytes truncated at open, for diagnostics
}

// OpenLog opens (or creates) the WAL in dir, scanning every segment,
// truncating a torn tail on the last one, and positioning the next
// append after the last valid record.
func OpenLog(dir string, opt LogOptions) (*Log, error) {
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = 4 << 20
	}
	if opt.SegmentBytes < segHeaderSize+minPayloadLen+frameOverhead {
		opt.SegmentBytes = segHeaderSize + minPayloadLen + frameOverhead
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opt: opt}

	names, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	for i, path := range names {
		last := i == len(names)-1
		var wantIdx uint64
		if _, err := fmt.Sscanf(filepath.Base(path), "wal-%08d.seg", &wantIdx); err != nil {
			return nil, fmt.Errorf("ingest: unrecognized WAL file %s", path)
		}
		h, records, validEnd, torn, err := scanSegment(path)
		if err != nil {
			if last && errors.Is(err, errBadSegHeader) {
				// The segment file was created but its header never
				// reached disk whole — nothing in it can be valid.
				// Remove it; a fresh active segment is created below.
				l.tornBytes += fileSize(path)
				if rmErr := os.Remove(path); rmErr != nil {
					return nil, rmErr
				}
				continue
			}
			return nil, fmt.Errorf("ingest: WAL segment %s: %w", path, err)
		}
		if h.index != wantIdx {
			return nil, fmt.Errorf("ingest: WAL segment %s header claims index %d", path, h.index)
		}
		if n := len(l.segs); n > 0 {
			prev := l.segs[n-1]
			if h.index != prev.index+1 {
				return nil, fmt.Errorf("ingest: WAL segment gap: %s follows index %d", path, prev.index)
			}
			if h.firstSeq != prev.firstSeq+prev.records {
				return nil, fmt.Errorf("ingest: WAL segment %s first seq %d breaks the chain (want %d)",
					path, h.firstSeq, prev.firstSeq+prev.records)
			}
		}
		if torn {
			if !last {
				return nil, fmt.Errorf("ingest: WAL segment %s is corrupt mid-chain (damage past the first %d records)", path, records)
			}
			st, err := os.Stat(path)
			if err != nil {
				return nil, err
			}
			l.tornBytes += st.Size() - validEnd
			if err := os.Truncate(path, validEnd); err != nil {
				return nil, err
			}
		}
		l.segs = append(l.segs, segInfo{path: path, index: h.index, firstSeq: h.firstSeq, records: records})
	}
	if l.tornBytes > 0 {
		if err := syncDir(dir); err != nil {
			return nil, err
		}
	}

	if len(l.segs) == 0 {
		if err := l.createSegment(0, 0); err != nil {
			return nil, err
		}
	} else {
		active := l.segs[len(l.segs)-1]
		f, err := os.OpenFile(active.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		l.f, l.w, l.size = f, bufio.NewWriterSize(f, 64*1024), st.Size()
	}
	active := l.segs[len(l.segs)-1]
	l.nextSeq = active.firstSeq + active.records
	l.folded = l.segs[0].firstSeq // everything below the first retained segment has been folded
	return l, nil
}

// TornBytesTruncated reports how many tail bytes the open scan dropped —
// zero after a clean shutdown.
func (l *Log) TornBytesTruncated() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tornBytes
}

// Append validates rec, frames it, and buffers it for the next Sync.
// It returns the record's sequence number. ErrBackpressure rejects the
// append when the WAL is MaxLagRecords ahead of the fold cursor.
func (l *Log) Append(rec Record) (uint64, error) {
	if err := rec.Validate(); err != nil {
		return 0, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.opt.MaxLagRecords > 0 && l.nextSeq-l.folded >= l.opt.MaxLagRecords {
		return 0, ErrBackpressure
	}
	l.scratch = appendFrame(l.scratch[:0], rec)
	if _, err := l.w.Write(l.scratch); err != nil {
		return 0, err
	}
	seq := l.nextSeq
	l.nextSeq++
	l.segs[len(l.segs)-1].records++
	l.size += int64(len(l.scratch))
	l.dirty = true
	if l.size >= l.opt.SegmentBytes {
		if err := l.rotateLocked(l.nextSeq); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// Sync flushes buffered appends and fsyncs the active segment — the
// group-commit point. A batch of Appends followed by one Sync costs one
// fsync.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.dirty = false
	return nil
}

// NextSeq is the sequence number the next Append will get.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// FoldedSeq is the fold cursor last reported via SetFolded.
func (l *Log) FoldedSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.folded
}

// Lag is the number of appended records not yet durably folded.
func (l *Log) Lag() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq - l.folded
}

// SetFolded records that every sequence number below seq has been
// durably folded (the controller calls this after its cursor fsync).
// It releases backpressure; it does not delete anything — pair with
// TruncateBefore for retention.
func (l *Log) SetFolded(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq > l.folded {
		l.folded = seq
	}
}

// AdvanceTo fast-forwards the log so the next append gets sequence seq,
// rotating to a fresh segment. Used when a durable fold cursor is AHEAD
// of the WAL (the tail was lost after its records were already folded
// and published): those records live on in the checkpoint graph, and
// re-numbering from the cursor keeps replay arithmetic monotone.
func (l *Log) AdvanceTo(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq <= l.nextSeq {
		return nil
	}
	l.nextSeq = seq
	return l.rotateLocked(seq)
}

// rotateLocked seals the active segment (flush + fsync + close) and
// opens the next one with firstSeq as its base sequence number.
func (l *Log) rotateLocked(firstSeq uint64) error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.dirty = false
	return l.createSegment(l.segs[len(l.segs)-1].index+1, firstSeq)
}

// createSegment creates and fsyncs a new active segment file. The
// header is synced before any record can enter it, so reopen can always
// trust a non-last segment's header.
func (l *Log) createSegment(index, firstSeq uint64) error {
	path := filepath.Join(l.dir, fmt.Sprintf("wal-%08d.seg", index))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	hdr := encodeSegHeader(index, firstSeq)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.segs = append(l.segs, segInfo{path: path, index: index, firstSeq: firstSeq})
	l.f, l.w, l.size = f, bufio.NewWriterSize(f, 64*1024), segHeaderSize
	return nil
}

// Replay calls fn for every record with sequence >= from, in order. It
// holds the log lock for the duration — appends wait, which is the
// point: the fold must see a stable prefix. Every frame is re-validated;
// any damage is an error (reopen already truncated legitimate torn
// tails, so damage here means the disk lied after fsync).
func (l *Log) Replay(from uint64, fn func(seq uint64, rec Record) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.dirty {
		// Flush (no fsync) so the read side sees every buffered frame.
		if err := l.w.Flush(); err != nil {
			return err
		}
	}
	for _, seg := range l.segs {
		end := seg.firstSeq + seg.records
		if end <= from {
			continue
		}
		if err := replaySegment(seg, from, fn); err != nil {
			return err
		}
	}
	return nil
}

func replaySegment(seg segInfo, from uint64, fn func(uint64, Record) error) error {
	f, err := os.Open(seg.path)
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 256*1024)
	if _, err := br.Discard(segHeaderSize); err != nil {
		return fmt.Errorf("ingest: WAL segment %s: %w", seg.path, err)
	}
	scratch := make([]byte, 0, 4096)
	for i := uint64(0); i < seg.records; i++ {
		payload, err := readFrame(br, &scratch)
		if err != nil {
			return fmt.Errorf("ingest: WAL segment %s record %d: %w", seg.path, i, err)
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return fmt.Errorf("ingest: WAL segment %s record %d: %w", seg.path, i, err)
		}
		if seq := seg.firstSeq + i; seq >= from {
			if err := fn(seq, rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// TruncateBefore deletes whole segments whose every record is below
// seq. The active segment is never deleted; retention is per-segment,
// so some already-folded records usually remain — harmless, replay
// starts at the cursor.
func (l *Log) TruncateBefore(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	removed := false
	for len(l.segs) > 1 && l.segs[0].firstSeq+l.segs[0].records <= seq {
		if err := os.Remove(l.segs[0].path); err != nil {
			return err
		}
		l.segs = l.segs[1:]
		removed = true
	}
	if removed {
		return syncDir(l.dir)
	}
	return nil
}

// Segments reports how many WAL segments are on disk.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// Close flushes, fsyncs, and closes the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.syncLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// --- wire helpers ---

var errBadSegHeader = errors.New("invalid segment header")

type segHeader struct {
	index    uint64
	firstSeq uint64
}

func encodeSegHeader(index, firstSeq uint64) []byte {
	hdr := make([]byte, segHeaderSize)
	copy(hdr, segMagic)
	binary.LittleEndian.PutUint32(hdr[8:], segVersion)
	binary.LittleEndian.PutUint64(hdr[12:], index)
	binary.LittleEndian.PutUint64(hdr[20:], firstSeq)
	binary.LittleEndian.PutUint32(hdr[28:], crc32.ChecksumIEEE(hdr[:28]))
	return hdr
}

func decodeSegHeader(hdr []byte) (segHeader, error) {
	if len(hdr) < segHeaderSize {
		return segHeader{}, errBadSegHeader
	}
	if string(hdr[:8]) != segMagic {
		return segHeader{}, errBadSegHeader
	}
	if crc32.ChecksumIEEE(hdr[:28]) != binary.LittleEndian.Uint32(hdr[28:32]) {
		return segHeader{}, errBadSegHeader
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != segVersion {
		return segHeader{}, fmt.Errorf("%w: version %d", errBadSegHeader, v)
	}
	return segHeader{
		index:    binary.LittleEndian.Uint64(hdr[12:]),
		firstSeq: binary.LittleEndian.Uint64(hdr[20:]),
	}, nil
}

func appendFrame(buf []byte, rec Record) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length, patched below
	p := len(buf)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(rec.Query)))
	buf = append(buf, rec.Query...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(rec.Ad)))
	buf = append(buf, rec.Ad...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(rec.Impressions))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(rec.Clicks))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(rec.Rate))
	payload := buf[p:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
}

// readFrame reads one length-prefixed, CRC-trailered frame. The length
// is bounds-checked BEFORE any allocation, and the payload buffer is
// reused across calls via *scratch — a flipped length byte costs at
// most maxPayloadLen bytes, never an unbounded make.
func readFrame(br *bufio.Reader, scratch *[]byte) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n < minPayloadLen || n > maxPayloadLen {
		return nil, fmt.Errorf("frame length %d outside [%d,%d]", n, minPayloadLen, maxPayloadLen)
	}
	if cap(*scratch) < int(n)+4 {
		*scratch = make([]byte, n+4)
	}
	buf := (*scratch)[:n+4]
	if _, err := io.ReadFull(br, buf); err != nil {
		// A bare io.EOF here means the file ended right after the length
		// prefix — that is a torn frame, not a clean end; only an EOF
		// BEFORE the prefix marks a record boundary.
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	payload := buf[:n]
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(buf[n:]); got != want {
		return nil, fmt.Errorf("frame CRC mismatch (got %08x want %08x)", got, want)
	}
	return payload, nil
}

// decodeRecord parses and fully validates one frame payload. Every
// field is bounds-checked and the payload must be exactly consumed, so
// a flipped byte anywhere either breaks the CRC or lands here.
func decodeRecord(p []byte) (Record, error) {
	var r Record
	q, p, err := decodeName(p, "query")
	if err != nil {
		return r, err
	}
	a, p, err := decodeName(p, "ad")
	if err != nil {
		return r, err
	}
	if len(p) != 24 {
		return r, fmt.Errorf("record payload has %d trailing weight bytes, want 24", len(p))
	}
	impr := binary.LittleEndian.Uint64(p)
	clicks := binary.LittleEndian.Uint64(p[8:])
	if impr > math.MaxInt64 {
		return r, fmt.Errorf("impressions %d overflow int64", impr)
	}
	if clicks > math.MaxInt64 {
		return r, fmt.Errorf("clicks %d overflow int64", clicks)
	}
	r = Record{
		Query:       q,
		Ad:          a,
		Impressions: int64(impr),
		Clicks:      int64(clicks),
		Rate:        math.Float64frombits(binary.LittleEndian.Uint64(p[16:])),
	}
	if err := r.Validate(); err != nil {
		return Record{}, err
	}
	return r, nil
}

func decodeName(p []byte, what string) (string, []byte, error) {
	if len(p) < 2 {
		return "", nil, fmt.Errorf("record payload truncated before %s length", what)
	}
	n := int(binary.LittleEndian.Uint16(p))
	p = p[2:]
	if n == 0 || n > maxNameLen {
		return "", nil, fmt.Errorf("%s length %d outside [1,%d]", what, n, maxNameLen)
	}
	if len(p) < n {
		return "", nil, fmt.Errorf("record payload truncated inside %s", what)
	}
	return string(p[:n]), p[n:], nil
}

// scanSegment validates path's header and counts its valid record
// prefix. torn reports bytes past validEnd that do not form a valid
// record chain — the caller decides truncate (last segment) vs hard
// error (mid-chain).
func scanSegment(path string) (h segHeader, records uint64, validEnd int64, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return h, 0, 0, false, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 256*1024)
	hdr := make([]byte, segHeaderSize)
	if _, rerr := io.ReadFull(br, hdr); rerr != nil {
		return h, 0, 0, false, errBadSegHeader
	}
	if h, err = decodeSegHeader(hdr); err != nil {
		return h, 0, 0, false, err
	}
	validEnd = segHeaderSize
	scratch := make([]byte, 0, 4096)
	for {
		payload, rerr := readFrame(br, &scratch)
		if rerr == io.EOF {
			return h, records, validEnd, false, nil // clean end at a record boundary
		}
		if rerr != nil {
			return h, records, validEnd, true, nil // torn or corrupt tail
		}
		if _, derr := decodeRecord(payload); derr != nil {
			return h, records, validEnd, true, nil
		}
		records++
		validEnd += int64(len(payload)) + frameOverhead
	}
}

func fileSize(path string) int64 {
	st, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return st.Size()
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
