package ingest

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzWALDecode throws arbitrary bytes at the WAL frame reader and
// record decoder. The invariants under fuzz: no panic, no allocation
// beyond the fixed frame bound however the length prefix lies, and any
// payload that decodes must round-trip through the encoder to the exact
// same bytes (so no two distinct wire forms decode to one record).
func FuzzWALDecode(f *testing.F) {
	var valid []byte
	valid = appendFrame(valid, Record{Query: "camera", Ad: "zoom-ad", Impressions: 30, Clicks: 10, Rate: 0.33})
	f.Add(append([]byte(nil), valid...))
	f.Add(append([]byte(nil), valid[:len(valid)-3]...)) // torn tail
	flipped := append([]byte(nil), valid...)
	flipped[6] ^= 0x10
	f.Add(flipped)
	f.Add(binary.LittleEndian.AppendUint32(nil, 0xFFFFFFFF)) // lying length prefix
	f.Add(binary.LittleEndian.AppendUint32(nil, 0))
	f.Add([]byte{})
	two := append([]byte(nil), valid...)
	two = appendFrame(two, Record{Query: "q", Ad: "a", Impressions: 3, Clicks: 1, Rate: 1})
	f.Add(two)

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		scratch := make([]byte, 0, 64)
		for i := 0; i < 1_000_000; i++ {
			payload, err := readFrame(br, &scratch)
			if err != nil {
				break // rejected — the only other exit is clean EOF
			}
			if len(payload) < minPayloadLen || len(payload) > maxPayloadLen {
				t.Fatalf("readFrame returned %d bytes outside [%d,%d]", len(payload), minPayloadLen, maxPayloadLen)
			}
			rec, err := decodeRecord(payload)
			if err != nil {
				continue // CRC-valid frame with an invalid record: rejected is fine
			}
			// Canonical wire form: decode∘encode must reproduce the payload.
			reframed := appendFrame(nil, rec)
			if !bytes.Equal(reframed[4:len(reframed)-4], payload) {
				t.Fatalf("decoded record %+v re-encodes to different payload bytes", rec)
			}
		}
		if cap(scratch) > maxPayloadLen+4 {
			t.Fatalf("decoder allocated %d bytes; bound is %d", cap(scratch), maxPayloadLen+4)
		}
	})
}
