package ingest

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/core"
	"simrankpp/internal/faultfs"
	"simrankpp/internal/hedge"
	"simrankpp/internal/partition"
	"simrankpp/internal/serve"
)

// The chaos suite kills the ingestion pipeline at every checkpoint a
// real crash could hit — mid-replay, mid-commit, between publish and
// cursor — and asserts the recovery invariant every time: the serving
// snapshot always opens, and a recovered controller converges on
// exactly the graph the full event history folds to, applying no record
// twice and losing none.

var chaosStages = []string{
	"fold:start",
	"fold:built",
	"fold:pre-commit",
	"fold:commit:mid-write",
	"fold:pre-publish",
	"fold:post-publish",
	"fold:post-cursor",
}

// expectedFingerprint builds, from scratch, the snapshot the full event
// prefix should converge to, and returns its generation fingerprint.
func expectedFingerprint(t *testing.T, env *testEnv, events int) string {
	t.Helper()
	b, err := builderFromGraph(env.base)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range env.records(0, events) {
		if err := b.AddEdge(r.Query, r.Ad, r.Weights()); err != nil {
			t.Fatal(err)
		}
	}
	return graphSnapshotFingerprint(t, b.Build())
}

func graphSnapshotFingerprint(t *testing.T, g *clickgraph.Graph) string {
	t.Helper()
	plan := partition.ComponentPlan(g)
	res, err := core.RunSharded(g, testRefreshCfg(), plan, core.ShardOptions{RetainShardScores: true})
	if err != nil {
		t.Fatal(err)
	}
	var fp uint64
	for i := range res.ShardStats {
		fp ^= res.ShardStats[i].Fingerprint
	}
	return fmt.Sprintf("%016x", fp)
}

func servingFingerprint(t *testing.T, path string) string {
	t.Helper()
	snap, err := serve.OpenSnapshot(path)
	if err != nil {
		t.Fatalf("serving snapshot does not open: %v", err)
	}
	defer snap.Close()
	if err := snap.PreloadAll(); err != nil {
		t.Fatalf("serving snapshot does not preload: %v", err)
	}
	return snap.Meta().Fingerprint
}

func TestChaosCrashAtEveryCheckpoint(t *testing.T) {
	for _, stage := range chaosStages {
		t.Run(stage, func(t *testing.T) {
			env := newTestEnv(t)
			want := expectedFingerprint(t, env, 60)

			crash := fmt.Errorf("injected crash at %s", stage)
			cfg := env.config()
			cfg.Checkpoint = func(s string) error {
				if s == stage {
					return crash
				}
				return nil
			}
			c, err := NewController(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.Ingest(env.records(0, 60)); err != nil {
				t.Fatal(err)
			}
			if _, err := c.FoldOnce(context.Background()); err == nil {
				t.Fatal("fold survived its injected crash")
			}
			// "Crash": the process dies here. Close only releases the
			// advisory lock so a successor can start — the WAL was
			// fsynced at Ingest, exactly as a kill -9 would leave it.
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}

			// Invariant 1: the serving path is never torn, whatever the
			// crash point — it is only ever replaced atomically.
			servingFingerprint(t, env.snapPath)

			// Recovery: a fresh controller folds through and converges.
			c2, err := NewController(env.config())
			if err != nil {
				t.Fatalf("recovery controller: %v", err)
			}
			defer c2.Close()
			fr, err := c2.FoldOnce(context.Background())
			if err != nil {
				t.Fatalf("recovery fold: %v", err)
			}
			// Crashes after publish converge by zero-dirty skip (or a
			// pure cursor skip); earlier crashes publish now. Either
			// way, one more fold must be a no-op...
			fr2, err := c2.FoldOnce(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if !fr2.Skipped {
				t.Fatalf("recovery did not converge: first %+v, second %+v", fr, fr2)
			}
			// ...and the serving snapshot is byte-complete and carries
			// exactly the full history's fingerprint: no record lost, no
			// record applied twice.
			if got := servingFingerprint(t, env.snapPath); got != want {
				t.Fatalf("recovered fingerprint %s, want %s (crash at %s)", got, want, stage)
			}
		})
	}
}

// TestChaosTornWALTail crashes between the WAL write and its fsync
// completing: the active segment gains a partial frame. Recovery must
// truncate it and converge on the acknowledged prefix.
func TestChaosTornWALTail(t *testing.T) {
	env := newTestEnv(t)
	want := expectedFingerprint(t, env, 40)

	c, err := NewController(env.config())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ingest(env.records(0, 40)); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// The 41st record's frame reaches disk only partially.
	var torn []byte
	torn = appendFrame(torn, env.records(40, 41)[0])
	seg := activeSegPath(t, env.walDir)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn[:len(torn)-5]); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := NewController(env.config())
	if err != nil {
		t.Fatalf("recovery with torn tail: %v", err)
	}
	defer c2.Close()
	fr, err := c2.FoldOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if fr.Pending != 40 {
		t.Fatalf("torn-tail fold saw %d pending records, want the 40 acknowledged", fr.Pending)
	}
	if got := servingFingerprint(t, env.snapPath); got != want {
		t.Fatalf("fingerprint %s, want %s", got, want)
	}
}

// TestChaosDiskFaultMidFold injects read faults into the serving
// snapshot while a fold is reading it, at several depths: every fault
// must fail the fold cleanly (degraded, last good generation intact)
// and clear on retry.
func TestChaosDiskFaultMidFold(t *testing.T) {
	env := newTestEnv(t)
	inj := faultfs.NewInjector()
	cfg := env.config()
	cfg.OpenSnapshot = func(path string) (*serve.Snapshot, error) {
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return serve.NewSnapshot(faultfs.Wrap(bytes.NewReader(raw), inj), int64(len(raw)))
	}
	c, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Ingest(env.records(0, 30)); err != nil {
		t.Fatal(err)
	}
	before := env.servingBytes(t)

	faults := 0
	for depth := 1; depth <= 4; depth++ {
		inj.Reset()
		inj.FailAfter(depth, fmt.Errorf("injected disk fault at read %d", depth))
		if _, err := c.FoldOnce(context.Background()); err != nil {
			faults++
			if !bytes.Equal(before, env.servingBytes(t)) {
				t.Fatalf("depth %d: failed fold changed serving bytes", depth)
			}
			if st := c.Stats(); !st.Degraded {
				t.Fatalf("depth %d: fold failed but not degraded: %+v", depth, st)
			}
		}
	}
	if faults == 0 {
		t.Fatal("no injected fault surfaced — the fold never read the snapshot?")
	}
	inj.Reset()
	fr, err := c.FoldOnce(context.Background())
	if err != nil {
		t.Fatalf("fold after faults cleared: %v", err)
	}
	if fr.Skipped && faults == 4 {
		t.Fatalf("healed fold skipped with records pending: %+v", fr)
	}
	if st := c.Stats(); st.Degraded || st.WALLagRecords != 0 {
		t.Fatalf("stats after heal: %+v", st)
	}
}

// TestChaosRefreshFailureStorm runs the REAL Run loop under a storm of
// refresh failures: backoff paces the retries, staleness climbs, the
// last good generation keeps serving, and the first success after the
// storm publishes and clears the degradation.
func TestChaosRefreshFailureStorm(t *testing.T) {
	env := newTestEnv(t)
	var fails atomic.Int64
	fails.Store(5)
	published := make(chan *serve.Generation, 1)
	cfg := env.config()
	cfg.Cadence = 2 * time.Millisecond
	cfg.Backoff = hedge.Backoff{Base: time.Millisecond, Max: 4 * time.Millisecond}
	cfg.OpenSnapshot = func(path string) (*serve.Snapshot, error) {
		if fails.Add(-1) >= 0 {
			return nil, fmt.Errorf("injected storm failure")
		}
		return serve.OpenSnapshot(path)
	}
	cfg.OnPublish = func(gen *serve.Generation) {
		select {
		case published <- gen:
		default:
		}
	}
	c, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	before := env.servingBytes(t)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- c.Run(ctx) }()
	if _, err := c.Ingest(env.records(0, 50)); err != nil {
		t.Fatal(err)
	}
	c.Kick()

	var gen *serve.Generation
	select {
	case gen = <-published:
	case <-time.After(30 * time.Second):
		t.Fatal("storm never cleared: no publish within 30s")
	}
	cancel()
	if err := <-done; err != nil && err != context.Canceled {
		t.Fatalf("Run returned %v", err)
	}

	st := c.Stats()
	if st.RefreshFailures < 5 {
		t.Fatalf("storm recorded %d failures, want >= 5", st.RefreshFailures)
	}
	if st.Degraded || st.LastGeneration != gen.ID {
		t.Fatalf("stats after storm cleared: %+v (gen %d)", st, gen.ID)
	}
	if bytes.Equal(before, env.servingBytes(t)) {
		t.Fatal("storm cleared but nothing was published")
	}
	if got, want := servingFingerprint(t, env.snapPath), expectedFingerprint(t, env, 50); got != want {
		t.Fatalf("post-storm fingerprint %s, want %s", got, want)
	}
}
