package ingest

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/partition"
)

// The fold state is the durable cursor that makes crash replay
// exactly-once with respect to the published generation. It is ONE
// atomic file — cursor sequence number AND the folded graph together —
// because splitting them would open a window (crash after one write,
// before the other) where replay re-applies WAL records onto a graph
// that already contains them, double-counting impressions.
//
// With the single file, every crash window resolves cleanly:
//
//   - crash before the generation publishes → state still holds the old
//     cursor and old graph; replay re-folds the pending records onto the
//     old graph and refreshes again — the serving side never saw the
//     half-finished generation (the journal's own crash safety).
//   - crash AFTER publish but BEFORE the state write → replay rebuilds a
//     graph identical to the one the published generation was computed
//     from (same intern order — see writeGraphOrdered), the fingerprint
//     diff classifies zero shards dirty, and the controller skips
//     straight to saving the state. The delta is never applied twice.
//
// File layout (little-endian):
//
//	magic "SRPPFST1" | version u32 | cursor seq u64 |
//	graph fingerprint u64 | graph text length u64 | graph text |
//	CRC32 of everything above u32
const (
	stateMagic   = "SRPPFST1"
	stateVersion = 1
	stateFile    = "fold-state.bin"
	// maxStateGraphBytes bounds the allocation a corrupt length field
	// could cause (1 GiB of graph text is far beyond any folded graph).
	maxStateGraphBytes = 1 << 30
)

// FoldState is the decoded durable fold cursor.
type FoldState struct {
	// Seq: every WAL record with sequence < Seq is folded into Graph.
	Seq uint64
	// Fingerprint is partition.GraphFingerprint(Graph), verified on load.
	Fingerprint uint64
	// Graph is the folded click graph under its original intern order.
	Graph *clickgraph.Graph
}

// SaveFoldState atomically writes the fold state into dir
// (temp + rename + fsync of file and directory).
func SaveFoldState(dir string, seq uint64, g *clickgraph.Graph) error {
	var buf bytes.Buffer
	buf.WriteString(stateMagic)
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:], stateVersion)
	binary.LittleEndian.PutUint64(hdr[4:], seq)
	binary.LittleEndian.PutUint64(hdr[12:], partition.GraphFingerprint(g))
	buf.Write(hdr[:])
	var gbuf bytes.Buffer
	if err := writeGraphOrdered(&gbuf, g); err != nil {
		return err
	}
	var glen [8]byte
	binary.LittleEndian.PutUint64(glen[:], uint64(gbuf.Len()))
	buf.Write(glen[:])
	buf.Write(gbuf.Bytes())
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf.Bytes()))
	buf.Write(crc[:])

	tmp, err := os.CreateTemp(dir, stateFile+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, stateFile)); err != nil {
		return err
	}
	return syncDir(dir)
}

// LoadFoldState reads the fold state from dir. A missing file returns
// (nil, nil) — first start. A corrupt file is an error: the operator
// playbook (OPERATIONS.md, "WAL corruption") covers recovery, silently
// refolding from the wrong cursor must not.
func LoadFoldState(dir string) (*FoldState, error) {
	raw, err := os.ReadFile(filepath.Join(dir, stateFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	const fixed = 8 + 20 + 8 + 4 // magic + header + graph length + CRC
	if len(raw) < fixed {
		return nil, fmt.Errorf("ingest: fold state truncated (%d bytes)", len(raw))
	}
	if string(raw[:8]) != stateMagic {
		return nil, fmt.Errorf("ingest: fold state has bad magic")
	}
	body, crcBytes := raw[:len(raw)-4], raw[len(raw)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(crcBytes); got != want {
		return nil, fmt.Errorf("ingest: fold state CRC mismatch (got %08x want %08x)", got, want)
	}
	if v := binary.LittleEndian.Uint32(raw[8:]); v != stateVersion {
		return nil, fmt.Errorf("ingest: fold state version %d, want %d", v, stateVersion)
	}
	st := &FoldState{
		Seq:         binary.LittleEndian.Uint64(raw[12:]),
		Fingerprint: binary.LittleEndian.Uint64(raw[20:]),
	}
	glen := binary.LittleEndian.Uint64(raw[28:])
	if glen > maxStateGraphBytes || int(glen) != len(body)-fixed+4 {
		return nil, fmt.Errorf("ingest: fold state graph length %d inconsistent with file size %d", glen, len(raw))
	}
	g, err := clickgraph.Read(bytes.NewReader(raw[36 : 36+glen]))
	if err != nil {
		return nil, fmt.Errorf("ingest: fold state graph: %w", err)
	}
	if fp := partition.GraphFingerprint(g); fp != st.Fingerprint {
		return nil, fmt.Errorf("ingest: fold state graph fingerprint %016x != recorded %016x", fp, st.Fingerprint)
	}
	st.Graph = g
	return st, nil
}

// writeGraphOrdered serializes g in the clickgraph text format with one
// crucial extra: EVERY node is declared (!query/!ad lines) in global id
// order before any edge. clickgraph.Read interns declarations on sight,
// so the round-trip reproduces g's exact intern order — which the whole
// incremental pipeline keys on: shard fingerprints hash node ids, and a
// clean shard's segment byte-copy assumes identical global ids. The
// stock clickgraph.Write declares only isolated nodes (ads re-intern in
// first-edge order), which is enough for a standalone graph file but
// would shift ids here and spuriously dirty every shard after a crash.
func writeGraphOrdered(w *bytes.Buffer, g *clickgraph.Graph) error {
	for _, q := range g.Queries() {
		w.WriteString("!query\t")
		w.WriteString(q)
		w.WriteByte('\n')
	}
	for _, a := range g.Ads() {
		w.WriteString("!ad\t")
		w.WriteString(a)
		w.WriteByte('\n')
	}
	bw := bufio.NewWriter(w)
	g.Edges(func(q, a int, wt clickgraph.EdgeWeights) bool {
		bw.WriteString(g.Query(q))
		bw.WriteByte('\t')
		bw.WriteString(g.Ad(a))
		bw.WriteByte('\t')
		bw.WriteString(strconv.FormatInt(wt.Impressions, 10))
		bw.WriteByte('\t')
		bw.WriteString(strconv.FormatInt(wt.Clicks, 10))
		bw.WriteByte('\t')
		bw.WriteString(strconv.FormatFloat(wt.ExpectedClickRate, 'g', -1, 64))
		bw.WriteByte('\n')
		return true
	})
	return bw.Flush()
}
