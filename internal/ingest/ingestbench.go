package ingest

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/core"
	"simrankpp/internal/partition"
	"simrankpp/internal/serve"
	"simrankpp/internal/workload"
)

// The freshness-vs-cost bench: replay the same deterministic click
// stream through the full ingest pipeline (WAL append+fsync → fold →
// dirty-shard refresh → journal publish) at several fold cadences and
// record what each cadence buys. Small cadences minimize staleness but
// pay the per-fold fixed cost (diff, clean-segment copy, journal write)
// more often; large cadences amortize it but let records age in the
// WAL. The curve lands in BENCH_core.json's "ingest" section so the
// trade-off is tracked across PRs.

// IngestBenchConfig parameterizes RunIngestBench.
type IngestBenchConfig struct {
	// Log is the deterministic workload (workload.GenerateClickLog).
	Log workload.ClickLogConfig `json:"log"`
	// Cadences are the records-per-fold settings to sweep.
	Cadences []int `json:"cadences"`
	// Workers bounds each fold's refresh pool (<= 0: GOMAXPROCS).
	Workers int `json:"workers"`
	// ArrivalPerSec models the stream's arrival rate for the staleness
	// column (the bench replays as fast as it can; staleness is
	// arrival-model arithmetic, not wall-clock waiting). Default 100.
	ArrivalPerSec float64 `json:"arrival_per_sec"`
}

// IngestBenchPoint is one cadence's measurement.
type IngestBenchPoint struct {
	RecordsPerFold int `json:"records_per_fold"`
	// Folds ran in total; Published of them wrote a generation (the
	// rest were zero-dirty skips — possible when a chunk only retraces
	// existing weights).
	Folds     int `json:"folds"`
	Published int `json:"published"`
	// Fold wall-clock: mean/max per fold and the sweep total.
	MeanFoldMs float64 `json:"mean_fold_ms"`
	MaxFoldMs  float64 `json:"max_fold_ms"`
	TotalMs    float64 `json:"total_ms"`
	// MeanDirtyShards/MeanCleanShards average the per-publish refresh
	// split; CleanCopyFraction is copied/(copied+re-encoded) segment
	// bytes — the share of the snapshot each fold did NOT have to
	// recompute, the incremental pipeline's win.
	MeanDirtyShards   float64 `json:"mean_dirty_shards"`
	MeanCleanShards   float64 `json:"mean_clean_shards"`
	CleanCopyFraction float64 `json:"clean_copy_fraction"`
	// ModelStalenessSeconds = cadence/(2·arrival) + mean fold time: the
	// expected age of a record at publish under the arrival model.
	ModelStalenessSeconds float64 `json:"model_staleness_seconds"`
}

// IngestBenchResult is the recorded freshness-vs-cost curve.
type IngestBenchResult struct {
	Config IngestBenchConfig  `json:"config"`
	Points []IngestBenchPoint `json:"points"`
}

// RunIngestBench replays the configured stream once per cadence through
// a real controller (tempdir WAL + journal), measuring fold cost and
// the modeled staleness.
func RunIngestBench(bc IngestBenchConfig) (*IngestBenchResult, error) {
	if bc.ArrivalPerSec <= 0 {
		bc.ArrivalPerSec = 100
	}
	if len(bc.Cadences) == 0 {
		bc.Cadences = []int{100, 500, 2000}
	}
	log := workload.GenerateClickLog(bc.Log)
	base, err := bc.Log.BaseGraph(log)
	if err != nil {
		return nil, err
	}
	// Rate channel: expected-click-rate weights live in [0,1], so the
	// spread factor e^{-variance} stays O(1). Raw click counts would give
	// per-node variances in the hundreds and prune every score to zero.
	cfg := core.DefaultConfig().WithVariant(core.Weighted)
	cfg.Channel = core.ChannelRate
	cfg.Iterations = 40
	cfg.Tolerance = 1e-10
	cfg.PruneEpsilon = 1e-8

	out := &IngestBenchResult{Config: bc}
	for _, k := range bc.Cadences {
		pt, err := benchCadence(bc, log, base, cfg, k)
		if err != nil {
			return nil, fmt.Errorf("ingest bench cadence %d: %w", k, err)
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

func benchCadence(bc IngestBenchConfig, log workload.ClickLog, base *clickgraph.Graph, cfg core.Config, k int) (IngestBenchPoint, error) {
	pt := IngestBenchPoint{RecordsPerFold: k}
	dir, err := os.MkdirTemp("", "ingestbench")
	if err != nil {
		return pt, err
	}
	defer os.RemoveAll(dir)

	snapPath := filepath.Join(dir, "serving.snap")
	plan := partition.ComponentPlan(base)
	res, err := core.RunSharded(base, cfg, plan, core.ShardOptions{
		Workers: bc.Workers, RetainShardScores: true,
	})
	if err != nil {
		return pt, err
	}
	if err := serve.WriteSnapshotFile(snapPath, res); err != nil {
		return pt, err
	}

	c, err := NewController(Config{
		WALDir:       filepath.Join(dir, "wal"),
		SnapshotPath: snapPath,
		BaseGraph:    base,
		Workers:      bc.Workers,
		Cadence:      time.Hour, // folds are driven manually below
	})
	if err != nil {
		return pt, err
	}
	defer c.Close()

	ctx := context.Background()
	var totalNs, maxNs int64
	var dirty, clean int
	var copied, reencoded int64
	for off := 0; off < len(log.Stream); off += k {
		end := off + k
		if end > len(log.Stream) {
			end = len(log.Stream)
		}
		recs := make([]Record, 0, end-off)
		for _, e := range log.Stream[off:end] {
			recs = append(recs, Record{
				Query: e.Query, Ad: e.Ad,
				Impressions: e.Impressions, Clicks: e.Clicks, Rate: e.Rate,
			})
		}
		if _, err := c.Ingest(recs); err != nil {
			return pt, err
		}
		t0 := time.Now()
		fr, err := c.FoldOnce(ctx)
		if err != nil {
			return pt, err
		}
		ns := time.Since(t0).Nanoseconds()
		totalNs += ns
		if ns > maxNs {
			maxNs = ns
		}
		pt.Folds++
		if !fr.Skipped {
			pt.Published++
			dirty += fr.Stats.DirtyShards
			clean += fr.Stats.CleanShards
			copied += fr.Stats.BytesCopied
			reencoded += fr.Stats.BytesReencoded
		}
	}
	if pt.Folds > 0 {
		pt.MeanFoldMs = float64(totalNs) / float64(pt.Folds) / 1e6
	}
	pt.MaxFoldMs = float64(maxNs) / 1e6
	pt.TotalMs = float64(totalNs) / 1e6
	if pt.Published > 0 {
		pt.MeanDirtyShards = float64(dirty) / float64(pt.Published)
		pt.MeanCleanShards = float64(clean) / float64(pt.Published)
	}
	if copied+reencoded > 0 {
		pt.CleanCopyFraction = float64(copied) / float64(copied+reencoded)
	}
	pt.ModelStalenessSeconds = float64(k)/(2*bc.ArrivalPerSec) + pt.MeanFoldMs/1e3
	return pt, nil
}
