// Package ingest closes the batch→continuous gap: a crash-safe streaming
// ingestion pipeline that tails weighted click edges into a write-ahead
// log, folds them into the click graph on a cadence or churn threshold,
// and drives the existing incremental-refresh machinery (fingerprint
// diff, warm dirty-shard run, clean-segment byte copy, generation
// journal) once per fold — with a durable fold cursor so replay after a
// crash is exactly-once with respect to the published generation.
//
// The package has three layers:
//
//   - Log: a segmented, CRC-trailered, length-prefixed WAL of Records
//     (wal.go). Appends batch through one fsync per Sync call, segments
//     rotate at a size threshold, reopen truncates a torn tail, and the
//     decoder is allocation-bounded and rejects every flipped byte —
//     the same validation discipline as internal/dist/protocol.go.
//   - fold state: one atomic CRC'd file holding the fold cursor AND the
//     folded graph under its original intern order (state.go), so the
//     crash windows between "generation published" and "cursor saved"
//     resolve by replaying onto an id-identical graph and observing a
//     zero-dirty diff — never by double-applying a delta.
//   - Controller: the refresh loop (controller.go) — serialized folds,
//     capped equal-jitter backoff on refresh failure, ingestion
//     backpressure when the WAL outruns folding, and bounded-staleness
//     gauges surfaced through serve.Server's /readyz and /stats.
package ingest

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"simrankpp/internal/clickgraph"
)

// Record is one weighted click-edge observation: the unit the WAL
// stores and the delta buffer folds. Semantics match
// clickgraph.EdgeWeights — Impressions and Clicks accumulate across
// records for the same (Query, Ad) pair, Rate merges as an
// impressions-weighted mean (clickgraph.Builder.AddEdge).
type Record struct {
	Query, Ad   string
	Impressions int64
	Clicks      int64
	Rate        float64
}

// Weights converts the record to the click-graph edge form.
func (r Record) Weights() clickgraph.EdgeWeights {
	return clickgraph.EdgeWeights{
		Impressions:       r.Impressions,
		Clicks:            r.Clicks,
		ExpectedClickRate: r.Rate,
	}
}

// maxNameLen bounds query/ad name lengths in the WAL — the allocation
// bound the decoder enforces before trusting a length field.
const maxNameLen = 4096

// Validate applies the same edge discipline as clickgraph.AddEdge, plus
// the WAL's wire bounds, so every record that enters the log is
// guaranteed to fold cleanly later. Rejecting at append time means a
// replay can treat any invalid record as corruption, not bad input.
func (r Record) Validate() error {
	switch {
	case r.Query == "":
		return errors.New("ingest: record has empty query")
	case r.Ad == "":
		return errors.New("ingest: record has empty ad")
	case len(r.Query) > maxNameLen:
		return fmt.Errorf("ingest: query name %d bytes exceeds the %d-byte bound", len(r.Query), maxNameLen)
	case len(r.Ad) > maxNameLen:
		return fmt.Errorf("ingest: ad name %d bytes exceeds the %d-byte bound", len(r.Ad), maxNameLen)
	case strings.ContainsAny(r.Query, "\t\n") || strings.ContainsAny(r.Ad, "\t\n"):
		return errors.New("ingest: names must not contain tabs or newlines")
	case r.Impressions < 0:
		return fmt.Errorf("ingest: negative impressions %d", r.Impressions)
	case r.Clicks < 0:
		return fmt.Errorf("ingest: negative clicks %d", r.Clicks)
	case r.Impressions > 0 && r.Clicks > r.Impressions:
		return fmt.Errorf("ingest: clicks %d exceed impressions %d", r.Clicks, r.Impressions)
	case math.IsNaN(r.Rate) || r.Rate < 0 || r.Rate > 1:
		return fmt.Errorf("ingest: expected click rate %v outside [0,1]", r.Rate)
	}
	return nil
}

// Text form: one record per line, tab-separated, the same five fields as
// a click-graph edge line (query, ad, impressions, clicks, rate). This
// is the /ingest request body and the replayable click-log file format.

// FormatRecord renders r as one text line (no trailing newline).
func FormatRecord(r Record) string {
	return r.Query + "\t" + r.Ad + "\t" +
		strconv.FormatInt(r.Impressions, 10) + "\t" +
		strconv.FormatInt(r.Clicks, 10) + "\t" +
		strconv.FormatFloat(r.Rate, 'g', -1, 64)
}

// ParseRecord parses one text line. Blank lines and '#' comments are the
// caller's concern (ReadRecords skips them).
func ParseRecord(line string) (Record, error) {
	f := strings.Split(line, "\t")
	if len(f) != 5 {
		return Record{}, fmt.Errorf("ingest: record line has %d fields, want 5 (query ad impressions clicks rate)", len(f))
	}
	impr, err := strconv.ParseInt(f[2], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("ingest: bad impressions %q: %v", f[2], err)
	}
	clicks, err := strconv.ParseInt(f[3], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("ingest: bad clicks %q: %v", f[3], err)
	}
	rate, err := strconv.ParseFloat(f[4], 64)
	if err != nil {
		return Record{}, fmt.Errorf("ingest: bad rate %q: %v", f[4], err)
	}
	r := Record{Query: f[0], Ad: f[1], Impressions: impr, Clicks: clicks, Rate: rate}
	if err := r.Validate(); err != nil {
		return Record{}, err
	}
	return r, nil
}

// ReadRecords parses a stream of text-form records, skipping blank lines
// and '#' comments. Used by the /ingest endpoint and the log-replay
// tooling; a click-log file generated by workload.WriteClickLog reads
// back with this.
func ReadRecords(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 2*maxNameLen+64)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		rec, err := ParseRecord(s)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}
