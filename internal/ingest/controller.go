package ingest

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/dist"
	"simrankpp/internal/hedge"
	"simrankpp/internal/partition"
	"simrankpp/internal/serve"
)

// Config parameterizes a Controller.
type Config struct {
	// WALDir holds the WAL segments and the fold-state file. Required.
	WALDir string
	// SnapshotPath is the serving snapshot the generation journal fronts
	// (the same path simrankd serves and simrank -refresh targets).
	// Required.
	SnapshotPath string
	// GraphPath is the base click-graph file, read on FIRST start only
	// (no fold state yet): it must be the graph the serving snapshot was
	// built from, so fold zero starts from the exact interned ids the
	// snapshot's shard fingerprints assume. Later starts recover the
	// graph from the fold state instead.
	GraphPath string
	// BaseGraph, when non-nil, is used instead of reading GraphPath —
	// the in-process form of the same contract (tests, embedding).
	BaseGraph *clickgraph.Graph

	// Workers bounds the refresh shard pool (<= 0: GOMAXPROCS).
	Workers int
	// Cadence is the fold interval (default 30s).
	Cadence time.Duration
	// ChurnRecords kicks a fold early once this many records are
	// pending, without waiting out the cadence. 0 disables.
	ChurnRecords uint64
	// MaxLagRecords bounds WAL lag: Ingest rejects with ErrBackpressure
	// beyond it (see LogOptions.MaxLagRecords). 0 disables.
	MaxLagRecords uint64
	// SegmentBytes is the WAL rotation threshold (default 4 MiB).
	SegmentBytes int64
	// KeepGenerations is the journal retention (serve.NewGenerationStore).
	KeepGenerations int
	// Bids is the bid-term set the snapshot's precomputed rewrite
	// section was built under (RefreshSnapshot contract); nil when the
	// snapshot carries no section.
	Bids map[string]bool
	// Fleet, when non-empty, dispatches dirty shards to these
	// simrank-worker URLs per fold (dist.RefreshGeneration — retries,
	// hedging, local fallback) instead of running them in-process.
	Fleet []string
	// Backoff schedules fold retries after a refresh failure (capped
	// equal-jitter; zero value = 100ms base, 5s cap).
	Backoff hedge.Backoff

	// Logf receives progress lines (nil: silent).
	Logf func(format string, args ...any)
	// Now is the gauge clock (nil: time.Now). Tests pin it.
	Now func() time.Time
	// Checkpoint, when non-nil, is called at every named stage of a fold
	// ("fold:start", "fold:built", "fold:pre-commit",
	// "fold:commit:mid-write", "fold:pre-publish", "fold:post-publish",
	// "fold:post-cursor"); returning an error aborts the fold there —
	// the crash-injection hook the chaos tests drive, mirroring the
	// generation store's own failAt discipline.
	Checkpoint func(stage string) error
	// OpenSnapshot opens the serving snapshot for a fold (nil:
	// serve.OpenSnapshot). The fault tests wrap it in faultfs.
	OpenSnapshot func(path string) (*serve.Snapshot, error)
	// OnPublish runs after a fold publishes a generation (and after the
	// fold cursor is durable) — the daemon reloads its serving index
	// here. Called on the fold goroutine; keep it quick.
	OnPublish func(gen *serve.Generation)
}

// FoldResult reports what one FoldOnce did.
type FoldResult struct {
	// Replayed is how many WAL records this fold newly applied to the
	// delta buffer; Pending is the total folded ahead of the previous
	// durable cursor (replayed now plus records applied by earlier
	// failed attempts and retained in memory).
	Replayed, Pending uint64
	// Skipped reports a zero-dirty fold: the rebuilt graph fingerprints
	// identically to the serving generation shard for shard, so nothing
	// was recomputed or published — only the cursor advanced. This is
	// also how a crash between publish and cursor-save converges on
	// replay: exactly-once by fingerprint, not by luck.
	Skipped bool
	// GenID is the published generation (0 when Skipped).
	GenID uint64
	// Stats is the snapshot write's dirty/clean split (zero when Skipped).
	Stats serve.RefreshStats
	// Duration is the fold's wall time.
	Duration time.Duration
}

// Stats is the controller's gauge block, surfaced through /stats (and,
// with Degraded, /readyz) via Status.
type Stats struct {
	// WALRecords is the next WAL sequence number (records ever appended,
	// including truncated ones); FoldCursor the durable fold cursor;
	// WALLagRecords their difference — how many appended records the
	// published generation does not yet reflect.
	WALRecords    uint64 `json:"wal_records"`
	FoldCursor    uint64 `json:"fold_cursor"`
	WALLagRecords uint64 `json:"wal_lag_records"`
	WALSegments   int    `json:"wal_segments"`
	// LastFoldAgeSeconds is the time since the last successful fold
	// (since start-up if none yet); StalenessSeconds is how long the
	// oldest unfolded record has been waiting — 0 when nothing is
	// pending. Bounded staleness means StalenessSeconds stays near the
	// cadence; it rising with RefreshFailures is the degraded signature.
	LastFoldAgeSeconds float64 `json:"last_fold_age_seconds"`
	StalenessSeconds   float64 `json:"staleness_seconds"`
	// Folds counts successful folds (SkippedFolds of them zero-dirty);
	// RefreshFailures counts failed fold attempts;
	// BackpressureRejects counts Ingest calls bounced at MaxLagRecords.
	Folds               int64 `json:"folds"`
	SkippedFolds        int64 `json:"skipped_folds"`
	RefreshFailures     int64 `json:"refresh_failures"`
	BackpressureRejects int64 `json:"backpressure_rejects"`
	// LastGeneration is the newest generation this controller published.
	LastGeneration uint64 `json:"last_generation,omitempty"`
	Degraded       bool   `json:"degraded"`
	LastError      string `json:"last_error,omitempty"`
}

// Controller is the continuous-refresh loop: it owns the WAL, the delta
// buffer (a long-lived clickgraph.Builder — AddEdge's merge semantics
// ARE the fold semantics: impressions and clicks sum, rates merge as an
// impressions-weighted mean), the fold cursor, and the generation
// journal writer lock. One controller per snapshot; the advisory lock
// enforces it against concurrent CLI refreshes too.
type Controller struct {
	cfg   Config
	log   *Log
	gs    *serve.GenerationStore
	coord *dist.Coordinator
	release func() error

	// foldMu serializes folds — overlapping FoldOnce calls (cadence
	// firing during a slow manual fold, a Kick racing the timer) queue
	// rather than interleave journal writes.
	foldMu     sync.Mutex
	builder    *clickgraph.Builder
	applied    uint64 // WAL records below this are in builder (in-memory)
	stateSaved bool   // a fold-state file exists for this builder state

	mu              sync.Mutex // gauges
	durable         uint64
	folds           int64
	skippedFolds    int64
	refreshFailures int64
	backpressure    int64
	lastGenID       uint64
	started         time.Time
	lastFold        time.Time
	pendingSince    time.Time // zero when nothing is pending
	degraded        bool
	lastErr         string

	kick chan struct{}
}

// NewController opens the WAL, takes the journal lock, and restores the
// delta buffer — from the fold state if one exists, else from the base
// graph (Config.BaseGraph / GraphPath). It does not start folding; call
// Run (or FoldOnce) for that.
func NewController(cfg Config) (*Controller, error) {
	if cfg.WALDir == "" {
		return nil, errors.New("ingest: Config.WALDir is required")
	}
	if cfg.SnapshotPath == "" {
		return nil, errors.New("ingest: Config.SnapshotPath is required")
	}
	if cfg.Cadence <= 0 {
		cfg.Cadence = 30 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.OpenSnapshot == nil {
		cfg.OpenSnapshot = serve.OpenSnapshot
	}

	c := &Controller{cfg: cfg, kick: make(chan struct{}, 1)}
	c.gs = serve.NewGenerationStore(cfg.SnapshotPath, cfg.KeepGenerations)
	release, err := c.gs.Lock()
	if err != nil {
		return nil, err
	}
	c.release = release
	fail := func(err error) (*Controller, error) {
		release()
		if c.log != nil {
			c.log.Close()
		}
		return nil, err
	}
	if n, err := c.gs.SweepTemp(); err != nil {
		return fail(err)
	} else if n > 0 {
		cfg.Logf("ingest: swept %d stale journal temp file(s)", n)
	}

	if c.log, err = OpenLog(cfg.WALDir, LogOptions{
		SegmentBytes:  cfg.SegmentBytes,
		MaxLagRecords: cfg.MaxLagRecords,
	}); err != nil {
		return fail(err)
	}
	if torn := c.log.TornBytesTruncated(); torn > 0 {
		cfg.Logf("ingest: truncated %d torn byte(s) from the WAL tail", torn)
	}

	state, err := LoadFoldState(cfg.WALDir)
	if err != nil {
		return fail(err)
	}
	switch {
	case state != nil:
		c.builder, err = builderFromGraph(state.Graph)
		if err != nil {
			return fail(fmt.Errorf("ingest: rebuilding delta buffer from fold state: %w", err))
		}
		c.applied, c.durable, c.stateSaved = state.Seq, state.Seq, true
	default:
		// First start. Refuse to guess if the WAL has already dropped
		// records (TruncateBefore ran under a state file that is now
		// gone): replaying the remainder onto the base graph would
		// silently lose the truncated prefix.
		if c.log.FoldedSeq() > 0 {
			return fail(fmt.Errorf("ingest: no fold state but the WAL starts at sequence %d — restore %s or start with a fresh WAL directory", c.log.FoldedSeq(), stateFile))
		}
		base := cfg.BaseGraph
		if base == nil {
			if cfg.GraphPath == "" {
				return fail(errors.New("ingest: first start needs the base graph (Config.GraphPath) the serving snapshot was built from"))
			}
			if base, err = readGraphFile(cfg.GraphPath); err != nil {
				return fail(err)
			}
		}
		if c.builder, err = builderFromGraph(base); err != nil {
			return fail(fmt.Errorf("ingest: seeding delta buffer from base graph: %w", err))
		}
	}
	if c.durable > c.log.NextSeq() {
		// The WAL tail was lost after those records were folded and
		// published — they live on in the fold-state graph. Fast-forward
		// so sequence numbers stay monotone.
		cfg.Logf("ingest: WAL ends at sequence %d but the fold cursor is %d; fast-forwarding (folded records live in the fold state)",
			c.log.NextSeq(), c.durable)
		if err := c.log.AdvanceTo(c.durable); err != nil {
			return fail(err)
		}
	}
	c.log.SetFolded(c.durable)

	if len(cfg.Fleet) > 0 {
		c.coord = dist.NewCoordinator(cfg.Fleet, dist.Options{
			LocalWorkers: cfg.Workers,
			BidTerms:     cfg.Bids,
			Logf:         cfg.Logf,
			Checkpoint:   cfg.Checkpoint,
		})
	}

	now := cfg.Now()
	c.started, c.lastFold = now, now
	if c.log.NextSeq() > c.durable {
		// Pending records of unknown age survive a restart: date their
		// staleness from now — conservative in the cheap direction.
		c.pendingSince = now
	}
	return c, nil
}

// Close releases the journal lock and closes the WAL. It does not stop
// a running Run loop — cancel its context first.
func (c *Controller) Close() error {
	err := c.log.Close()
	if c.release != nil {
		if rerr := c.release(); err == nil {
			err = rerr
		}
		c.release = nil
	}
	return err
}

// Ingest validates, appends, and fsyncs recs as one batch (one fsync
// however many records), returning how many were durably appended.
// ErrBackpressure (possibly after a partial append, reflected in n)
// means the WAL is MaxLagRecords ahead of folding — callers surface
// "retry later". Crossing ChurnRecords kicks the fold loop.
func (c *Controller) Ingest(recs []Record) (n int, err error) {
	for _, r := range recs {
		if _, aerr := c.log.Append(r); aerr != nil {
			err = aerr
			break
		}
		n++
	}
	if n > 0 {
		if serr := c.log.Sync(); serr != nil && err == nil {
			return n, serr
		}
	}
	c.mu.Lock()
	if errors.Is(err, ErrBackpressure) {
		c.backpressure++
	}
	if c.pendingSince.IsZero() && c.log.NextSeq() > c.durable {
		c.pendingSince = c.cfg.Now()
	}
	durable := c.durable
	c.mu.Unlock()
	if c.cfg.ChurnRecords > 0 && c.log.NextSeq()-durable >= c.cfg.ChurnRecords {
		c.Kick()
	}
	return n, err
}

// Kick nudges the Run loop to fold now instead of waiting out the
// cadence. No-op if a kick is already pending or nothing is listening.
func (c *Controller) Kick() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// Run folds on the cadence (or on Kick) until ctx is cancelled. A
// failed fold flips the controller degraded and retries on the capped
// equal-jitter backoff schedule — kicks are ignored while backing off,
// so a churn storm cannot defeat the backoff. The serving side keeps
// answering from the last good generation throughout.
func (c *Controller) Run(ctx context.Context) error {
	attempt := 0
	for {
		wait := c.cfg.Cadence
		if attempt > 0 {
			wait = c.cfg.Backoff.Delay(attempt)
		}
		timer := time.NewTimer(wait)
		if attempt == 0 {
			select {
			case <-ctx.Done():
				timer.Stop()
				return ctx.Err()
			case <-timer.C:
			case <-c.kick:
				timer.Stop()
			}
		} else {
			select {
			case <-ctx.Done():
				timer.Stop()
				return ctx.Err()
			case <-timer.C:
			}
		}
		if _, err := c.FoldOnce(ctx); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			attempt++
			c.cfg.Logf("ingest: fold failed (attempt %d, retrying in %v): %v",
				attempt, c.cfg.Backoff.Delay(attempt+1), err)
		} else {
			attempt = 0
		}
	}
}

// FoldOnce runs one fold: replay pending WAL records into the delta
// buffer, rebuild the graph, refresh the serving snapshot through the
// generation journal (local shard pool or fleet), then durably advance
// the fold cursor and truncate folded WAL segments.
//
// Failure discipline: any error leaves the durable cursor and the
// serving snapshot untouched (the journal's own crash safety covers the
// commit/publish window), marks the controller degraded, and keeps the
// already-replayed records in the delta buffer — the retry rebuilds the
// graph without re-reading the WAL, so a record is never applied twice
// in memory either. A cancelled ctx aborts between shards and is
// reported as ctx's error without counting as a refresh failure.
func (c *Controller) FoldOnce(ctx context.Context) (*FoldResult, error) {
	c.foldMu.Lock()
	defer c.foldMu.Unlock()
	start := c.cfg.Now()
	if err := c.checkpoint("fold:start"); err != nil {
		return nil, c.fail(err)
	}

	var replayed uint64
	if c.log.NextSeq() > c.applied {
		next := c.applied
		err := c.log.Replay(c.applied, func(seq uint64, rec Record) error {
			if aerr := c.builder.AddEdge(rec.Query, rec.Ad, rec.Weights()); aerr != nil {
				return aerr
			}
			replayed++
			next = seq + 1
			return nil
		})
		if err != nil {
			return nil, c.fail(fmt.Errorf("ingest: WAL replay: %w", err))
		}
		c.applied = next
	}
	res := &FoldResult{Replayed: replayed, Pending: c.applied - c.durableSeq()}
	if res.Pending == 0 && c.stateSaved {
		// Nothing new since the last durable fold: not even a cursor to
		// advance. (Without a state file yet, fall through — the skip
		// path below writes the first one.)
		res.Skipped = true
		c.noteFold(res, start)
		return res, nil
	}

	g := c.builder.Build()
	if err := c.checkpoint("fold:built"); err != nil {
		return nil, c.fail(err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	prev, err := c.cfg.OpenSnapshot(c.cfg.SnapshotPath)
	if err != nil {
		return nil, c.fail(fmt.Errorf("ingest: opening serving snapshot: %w", err))
	}
	defer prev.Close()
	if _, err := c.gs.Adopt(); err != nil {
		return nil, c.fail(fmt.Errorf("ingest: adopting serving snapshot: %w", err))
	}

	var gen *serve.Generation
	if c.coord != nil {
		gen, err = c.foldFleet(ctx, g, prev, res)
	} else {
		gen, err = c.foldLocal(ctx, g, prev, res)
	}
	if err != nil {
		if ctx.Err() != nil {
			// Shutdown, not failure: serving bytes and cursor are
			// untouched; the fold re-runs after restart.
			return nil, ctx.Err()
		}
		return nil, c.fail(err)
	}

	// Durable cursor: the single atomic state write that makes replay
	// exactly-once. Crash before it → the published generation already
	// reflects these records, and the next fold's replay rebuilds an
	// id-identical graph whose diff is zero-dirty (see state.go).
	if err := SaveFoldState(c.cfg.WALDir, c.applied, g); err != nil {
		return nil, c.fail(fmt.Errorf("ingest: saving fold cursor: %w", err))
	}
	c.stateSaved = true
	if err := c.checkpoint("fold:post-cursor"); err != nil {
		return nil, c.fail(err)
	}
	c.log.SetFolded(c.applied)
	if err := c.log.TruncateBefore(c.applied); err != nil {
		c.cfg.Logf("ingest: WAL retention: %v", err)
	}
	if _, err := c.gs.Prune(); err != nil {
		c.cfg.Logf("ingest: journal retention: %v", err)
	}

	if gen != nil {
		res.GenID = gen.ID
	}
	c.noteFold(res, start)
	if gen != nil {
		c.cfg.Logf("ingest: fold published generation %d (%d records, %d dirty / %d clean shards, %s)",
			gen.ID, res.Pending, res.Stats.DirtyShards, res.Stats.CleanShards, res.Duration.Round(time.Millisecond))
		if c.cfg.OnPublish != nil {
			c.cfg.OnPublish(gen)
		}
	}
	return res, nil
}

// foldLocal runs the in-process refresh path: dirty-shard pool, journal
// commit, publish. A zero-dirty diff publishes nothing and marks the
// fold skipped.
func (c *Controller) foldLocal(ctx context.Context, g *clickgraph.Graph, prev *serve.Snapshot, res *FoldResult) (*serve.Generation, error) {
	run, diff, err := serve.RunRefreshContext(ctx, g, prev, c.cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("ingest: refresh run: %w", err)
	}
	if diff.DirtyShards == 0 {
		res.Skipped = true
		return nil, nil
	}
	if err := c.checkpoint("fold:pre-commit"); err != nil {
		return nil, err
	}
	var fp uint64
	for i := range run.ShardStats {
		fp ^= run.ShardStats[i].Fingerprint
	}
	gen, err := c.gs.Commit(diff.DirtyShards, fp, func(w io.Writer) error {
		cw := &checkpointWriter{w: w, hook: func() error { return c.checkpoint("fold:commit:mid-write") }}
		var werr error
		res.Stats, werr = serve.RefreshSnapshot(cw, prev, run, diff.Dirty, c.cfg.Bids)
		return werr
	})
	if err != nil {
		return nil, fmt.Errorf("ingest: journal commit: %w", err)
	}
	if err := c.checkpoint("fold:pre-publish"); err != nil {
		return nil, err
	}
	if err := c.gs.Publish(gen); err != nil {
		return nil, fmt.Errorf("ingest: publish: %w", err)
	}
	if err := c.checkpoint("fold:post-publish"); err != nil {
		return nil, err
	}
	return gen, nil
}

// foldFleet dispatches dirty shards to the worker fleet
// (dist.RefreshGeneration: leases, retries, hedging, local fallback).
// The zero-dirty skip is decided here first so an unchanged graph never
// costs a fleet round trip or an empty generation.
func (c *Controller) foldFleet(ctx context.Context, g *clickgraph.Graph, prev *serve.Snapshot, res *FoldResult) (*serve.Generation, error) {
	diff, err := partition.DiffPlans(prev, g)
	if err != nil {
		return nil, fmt.Errorf("ingest: refresh diff: %w", err)
	}
	if diff.DirtyShards == 0 {
		res.Skipped = true
		return nil, nil
	}
	st, _, _, gen, err := dist.RefreshGeneration(ctx, c.coord, c.gs, g, prev)
	if err != nil {
		return nil, fmt.Errorf("ingest: fleet refresh: %w", err)
	}
	res.Stats = st
	return gen, nil
}

// Stats reports the bounded-staleness gauges.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	st := Stats{
		WALRecords:          c.log.NextSeq(),
		FoldCursor:          c.durable,
		WALSegments:         c.log.Segments(),
		LastFoldAgeSeconds:  now.Sub(c.lastFold).Seconds(),
		Folds:               c.folds,
		SkippedFolds:        c.skippedFolds,
		RefreshFailures:     c.refreshFailures,
		BackpressureRejects: c.backpressure,
		LastGeneration:      c.lastGenID,
		Degraded:            c.degraded,
		LastError:           c.lastErr,
	}
	st.WALLagRecords = st.WALRecords - st.FoldCursor
	if !c.pendingSince.IsZero() {
		st.StalenessSeconds = now.Sub(c.pendingSince).Seconds()
	}
	return st
}

// Status adapts Stats to the serving surface — wire it into a
// serve.Server with SetIngestStatus so /readyz turns "degraded" and
// /stats carries the gauges while refresh is failing.
func (c *Controller) Status() serve.IngestStatus {
	st := c.Stats()
	return serve.IngestStatus{Degraded: st.Degraded, Reason: st.LastError, Stats: st}
}

// --- internals ---

func (c *Controller) checkpoint(stage string) error {
	if c.cfg.Checkpoint == nil {
		return nil
	}
	return c.cfg.Checkpoint(stage)
}

func (c *Controller) durableSeq() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.durable
}

// fail records a fold failure: degraded until the next success, cursor
// and serving untouched.
func (c *Controller) fail(err error) error {
	c.mu.Lock()
	c.refreshFailures++
	c.degraded = true
	c.lastErr = err.Error()
	if c.pendingSince.IsZero() && c.log.NextSeq() > c.durable {
		c.pendingSince = c.cfg.Now()
	}
	c.mu.Unlock()
	return err
}

// noteFold records a successful fold's gauge effects.
func (c *Controller) noteFold(res *FoldResult, start time.Time) {
	res.Duration = c.cfg.Now().Sub(start)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.durable = c.applied
	c.folds++
	if res.Skipped {
		c.skippedFolds++
	}
	if res.GenID != 0 {
		c.lastGenID = res.GenID
	}
	c.degraded = false
	c.lastErr = ""
	c.lastFold = c.cfg.Now()
	if c.log.NextSeq() > c.durable {
		// Records arrived while this fold ran: the next staleness clock
		// starts now.
		c.pendingSince = c.cfg.Now()
	} else {
		c.pendingSince = time.Time{}
	}
}

// checkpointWriter fires its hook once, after the first write reaches
// the journal temp file — the "died with a partial snapshot on disk"
// instant (same idiom as dist's and the generation store's own).
type checkpointWriter struct {
	w     io.Writer
	hook  func() error
	fired bool
}

func (cw *checkpointWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	if err == nil && !cw.fired {
		cw.fired = true
		if herr := cw.hook(); herr != nil {
			return n, herr
		}
	}
	return n, err
}

// builderFromGraph re-interns g into a fresh Builder in g's exact id
// order — queries first, ads second, both by ascending id — so the
// builder's future Build()s keep every existing node's global id. The
// incremental pipeline keys on this: shard fingerprints hash ids, and a
// clean shard's segment byte-copy assumes identical ids.
func builderFromGraph(g *clickgraph.Graph) (*clickgraph.Builder, error) {
	b := clickgraph.NewBuilder()
	for _, q := range g.Queries() {
		b.AddQuery(q)
	}
	for _, a := range g.Ads() {
		b.AddAd(a)
	}
	var err error
	g.Edges(func(q, a int, w clickgraph.EdgeWeights) bool {
		err = b.AddEdge(g.Query(q), g.Ad(a), w)
		return err == nil
	})
	if err != nil {
		return nil, err
	}
	return b, nil
}

func readGraphFile(path string) (*clickgraph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return clickgraph.Read(f)
}
