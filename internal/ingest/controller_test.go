package ingest

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/core"
	"simrankpp/internal/partition"
	"simrankpp/internal/serve"
	"simrankpp/internal/workload"
)

func testClickCfg() workload.ClickLogConfig {
	return workload.ClickLogConfig{
		Seed: 7, Clusters: 3, QueriesPerCluster: 8, AdsPerCluster: 6,
		BaseEvents: 120, StreamEvents: 120, HotFraction: 0.98,
	}
}

func testRefreshCfg() core.Config {
	cfg := core.DefaultConfig().WithVariant(core.Weighted)
	cfg.Channel = core.ChannelRate
	cfg.Iterations = 30
	cfg.Tolerance = 1e-9
	cfg.PruneEpsilon = 1e-8
	return cfg
}

// testEnv is a serving snapshot built from the click-log base plus the
// replayable stream the tests feed through the controller.
type testEnv struct {
	dir      string
	snapPath string
	walDir   string
	base     *clickgraph.Graph
	log      workload.ClickLog
}

func newTestEnv(t *testing.T) *testEnv {
	t.Helper()
	lc := testClickCfg()
	lg := workload.GenerateClickLog(lc)
	base, err := lc.BaseGraph(lg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "serving.snap")
	plan := partition.ComponentPlan(base)
	res, err := core.RunSharded(base, testRefreshCfg(), plan, core.ShardOptions{RetainShardScores: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := serve.WriteSnapshotFile(snapPath, res); err != nil {
		t.Fatal(err)
	}
	return &testEnv{dir: dir, snapPath: snapPath, walDir: filepath.Join(dir, "wal"), base: base, log: lg}
}

func (e *testEnv) config() Config {
	return Config{
		WALDir:       e.walDir,
		SnapshotPath: e.snapPath,
		BaseGraph:    e.base,
		Cadence:      time.Hour,
	}
}

func (e *testEnv) records(from, to int) []Record {
	recs := make([]Record, 0, to-from)
	for _, ev := range e.log.Stream[from:to] {
		recs = append(recs, Record{
			Query: ev.Query, Ad: ev.Ad,
			Impressions: ev.Impressions, Clicks: ev.Clicks, Rate: ev.Rate,
		})
	}
	return recs
}

func (e *testEnv) servingBytes(t *testing.T) []byte {
	t.Helper()
	b, err := os.ReadFile(e.snapPath)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestControllerFoldPublishesAndSkips(t *testing.T) {
	env := newTestEnv(t)
	before := env.servingBytes(t)
	c, err := NewController(env.config())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if n, err := c.Ingest(env.records(0, 60)); err != nil || n != 60 {
		t.Fatalf("ingest: n=%d err=%v", n, err)
	}
	fr, err := c.FoldOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if fr.Skipped || fr.GenID == 0 || fr.Replayed != 60 {
		t.Fatalf("first fold: %+v", fr)
	}
	if fr.Stats.DirtyShards == 0 {
		t.Fatalf("fold with new click mass refreshed no shards: %+v", fr.Stats)
	}
	after := env.servingBytes(t)
	if bytes.Equal(before, after) {
		t.Fatal("fold published but the serving snapshot did not change")
	}
	if _, err := os.Stat(filepath.Join(env.walDir, stateFile)); err != nil {
		t.Fatalf("fold state missing: %v", err)
	}

	// No new records: the fold is a pure skip and serving bytes are
	// untouched, byte for byte.
	fr2, err := c.FoldOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !fr2.Skipped || fr2.Replayed != 0 {
		t.Fatalf("idle fold: %+v", fr2)
	}
	if !bytes.Equal(after, env.servingBytes(t)) {
		t.Fatal("idle fold rewrote the serving snapshot")
	}

	st := c.Stats()
	if st.Folds != 2 || st.SkippedFolds != 1 || st.WALLagRecords != 0 || st.Degraded {
		t.Fatalf("stats: %+v", st)
	}
	if st.FoldCursor != 60 || st.WALRecords != 60 {
		t.Fatalf("cursor gauges: %+v", st)
	}
}

// TestControllerRestartConverges pins crash replay: restarting from the
// fold state (and then again with the state file deleted — the
// duplicate-replay-after-cursor-loss case) must converge to a zero-dirty
// skip without touching a single published byte.
func TestControllerRestartConverges(t *testing.T) {
	env := newTestEnv(t)
	c, err := NewController(env.config())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ingest(env.records(0, 80)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FoldOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	published := env.servingBytes(t)

	// Restart from the fold state: nothing pending, nothing changes.
	c, err = NewController(env.config())
	if err != nil {
		t.Fatal(err)
	}
	fr, err := c.FoldOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !fr.Skipped {
		t.Fatalf("restart fold: %+v", fr)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(published, env.servingBytes(t)) {
		t.Fatal("restart changed serving bytes")
	}

	// Lose the durable cursor (fsynced state file gone — e.g. the disk
	// was restored from before the fold). The controller rebuilds from
	// the base graph, replays the ENTIRE WAL, and the rebuilt graph
	// fingerprints shard-for-shard identical to the published generation:
	// the fold is a zero-dirty skip, not a double apply.
	if err := os.Remove(filepath.Join(env.walDir, stateFile)); err != nil {
		t.Fatal(err)
	}
	c, err = NewController(env.config())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fr, err = c.FoldOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !fr.Skipped || fr.Replayed != 80 {
		t.Fatalf("replay-after-cursor-loss fold: %+v", fr)
	}
	if !bytes.Equal(published, env.servingBytes(t)) {
		t.Fatal("duplicate replay changed published bytes")
	}
	// And the re-derived cursor is durable again.
	st, err := LoadFoldState(env.walDir)
	if err != nil || st == nil || st.Seq != 80 {
		t.Fatalf("fold state after recovery: %+v, %v", st, err)
	}
}

// TestControllerShutdownMidFold pins satellite (b): a context cancelled
// mid-fold (SIGTERM) abandons the fold cleanly — serving bytes, fold
// state, and WAL cursor all intact, degraded NOT set — and the next
// fold finishes the work.
func TestControllerShutdownMidFold(t *testing.T) {
	env := newTestEnv(t)
	ctx, cancel := context.WithCancel(context.Background())
	cfg := env.config()
	cfg.Checkpoint = func(stage string) error {
		if stage == "fold:built" {
			cancel() // SIGTERM arrives while the delta graph is being refreshed
		}
		return nil
	}
	c, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	before := env.servingBytes(t)
	if _, err := c.Ingest(env.records(0, 50)); err != nil {
		t.Fatal(err)
	}
	walBefore := fileSize(activeSegPath(t, env.walDir))

	if _, err := c.FoldOnce(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled fold returned %v, want context.Canceled", err)
	}
	if !bytes.Equal(before, env.servingBytes(t)) {
		t.Fatal("cancelled fold changed serving bytes")
	}
	if _, err := os.Stat(filepath.Join(env.walDir, stateFile)); !os.IsNotExist(err) {
		t.Fatalf("cancelled fold wrote a fold state: %v", err)
	}
	if got := fileSize(activeSegPath(t, env.walDir)); got != walBefore {
		t.Fatalf("cancelled fold changed the WAL (%d -> %d bytes)", walBefore, got)
	}
	if st := c.Stats(); st.Degraded || st.RefreshFailures != 0 {
		t.Fatalf("shutdown counted as failure: %+v", st)
	}

	// A fresh context picks the fold back up and publishes.
	fr, err := c.FoldOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if fr.Skipped || fr.GenID == 0 || fr.Pending != 50 {
		t.Fatalf("resumed fold: %+v", fr)
	}
	if bytes.Equal(before, env.servingBytes(t)) {
		t.Fatal("resumed fold did not publish")
	}
}

// TestControllerDegradedStatus drives a refresh failure and checks the
// full surface: serving keeps the last good generation, /readyz reports
// degraded (still HTTP 200), /stats carries the ingest gauges, and a
// healed fold clears it all.
func TestControllerDegradedStatus(t *testing.T) {
	env := newTestEnv(t)
	failing := true
	cfg := env.config()
	cfg.OpenSnapshot = func(path string) (*serve.Snapshot, error) {
		if failing {
			return nil, fmt.Errorf("injected: disk on fire")
		}
		return serve.OpenSnapshot(path)
	}
	c, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	idx, err := serve.OpenSnapshot(env.snapPath)
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	srv := serve.NewServer(idx, serve.DefaultServerConfig())
	srv.SetIngestStatus(c.Status)
	handler := srv.Handler()

	readyz := func() (code int, body string) {
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
		return rec.Code, rec.Body.String()
	}
	if code, body := readyz(); code != 200 || !strings.Contains(body, `"ok"`) {
		t.Fatalf("healthy readyz: %d %s", code, body)
	}

	before := env.servingBytes(t)
	if _, err := c.Ingest(env.records(0, 40)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FoldOnce(context.Background()); err == nil {
		t.Fatal("injected failure did not fail the fold")
	}
	if !bytes.Equal(before, env.servingBytes(t)) {
		t.Fatal("failed fold changed serving bytes")
	}
	st := c.Stats()
	if !st.Degraded || st.RefreshFailures != 1 || st.WALLagRecords != 40 {
		t.Fatalf("degraded stats: %+v", st)
	}
	code, body := readyz()
	if code != 200 {
		t.Fatalf("degraded readyz must stay 200 (got %d): the last good generation is still serving", code)
	}
	if !strings.Contains(body, `"degraded"`) || !strings.Contains(body, "disk on fire") {
		t.Fatalf("degraded readyz body: %s", body)
	}

	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	var stats struct {
		Ingest *serve.IngestStatus `json:"ingest"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Ingest == nil || !stats.Ingest.Degraded {
		t.Fatalf("/stats ingest block: %+v", stats.Ingest)
	}
	if !strings.Contains(rec.Body.String(), "wal_lag_records") {
		t.Fatalf("/stats missing ingest gauges: %s", rec.Body.String())
	}

	// Heal: the retry fold publishes and the degraded flag clears.
	failing = false
	fr, err := c.FoldOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if fr.Skipped || fr.Pending != 40 {
		t.Fatalf("healed fold: %+v", fr)
	}
	if st := c.Stats(); st.Degraded || st.WALLagRecords != 0 {
		t.Fatalf("stats after heal: %+v", st)
	}
	if _, body := readyz(); !strings.Contains(body, `"ok"`) {
		t.Fatalf("healed readyz: %s", body)
	}
}

// TestControllerStalenessGauges pins the bounded-staleness arithmetic
// under a fake clock.
func TestControllerStalenessGauges(t *testing.T) {
	env := newTestEnv(t)
	now := time.Unix(1_000_000, 0)
	cfg := env.config()
	cfg.Now = func() time.Time { return now }
	failing := false
	cfg.OpenSnapshot = func(path string) (*serve.Snapshot, error) {
		if failing {
			return nil, fmt.Errorf("injected")
		}
		return serve.OpenSnapshot(path)
	}
	c, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if st := c.Stats(); st.StalenessSeconds != 0 {
		t.Fatalf("idle staleness: %+v", st)
	}
	if _, err := c.Ingest(env.records(0, 30)); err != nil {
		t.Fatal(err)
	}
	now = now.Add(42 * time.Second)
	if st := c.Stats(); st.StalenessSeconds != 42 {
		t.Fatalf("staleness after 42s pending: %+v", st)
	}

	// A failing refresh lets staleness keep climbing — the degraded
	// signature an operator alerts on.
	failing = true
	if _, err := c.FoldOnce(context.Background()); err == nil {
		t.Fatal("want injected failure")
	}
	now = now.Add(18 * time.Second)
	if st := c.Stats(); st.StalenessSeconds != 60 || !st.Degraded {
		t.Fatalf("staleness under failure: %+v", st)
	}

	failing = false
	if _, err := c.FoldOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.StalenessSeconds != 0 || st.LastFoldAgeSeconds != 0 || st.Degraded {
		t.Fatalf("staleness after fold: %+v", st)
	}
}

// TestControllerLockExcludesSecond pins satellite (a): the advisory lock
// makes a second writer on the same snapshot fail fast, with an error
// that says who holds it.
func TestControllerLockExcludesSecond(t *testing.T) {
	env := newTestEnv(t)
	c, err := NewController(env.config())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := NewController(env.config()); err == nil {
		t.Fatal("second controller acquired the journal lock")
	} else if !strings.Contains(err.Error(), "locked by another refresh or ingest controller") {
		t.Fatalf("second controller error is not actionable: %v", err)
	}
	// Released on Close: a new controller can start.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c2, err := NewController(env.config())
	if err != nil {
		t.Fatalf("lock not released by Close: %v", err)
	}
	c2.Close()
}

// TestControllerChurnKickAndBackpressure covers the Run-loop plumbing
// around the fold: churn threshold kicks an early fold, and MaxLagRecords
// bounces Ingest with ErrBackpressure while folding is stuck.
func TestControllerChurnKickAndBackpressure(t *testing.T) {
	env := newTestEnv(t)
	cfg := env.config()
	cfg.ChurnRecords = 10
	cfg.MaxLagRecords = 50
	failing := true
	cfg.OpenSnapshot = func(path string) (*serve.Snapshot, error) {
		if failing {
			return nil, fmt.Errorf("injected")
		}
		return serve.OpenSnapshot(path)
	}
	c, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Ingest(env.records(0, 50)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ingest(env.records(50, 51)); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("ingest past MaxLagRecords: %v", err)
	}
	if st := c.Stats(); st.BackpressureRejects != 1 {
		t.Fatalf("backpressure gauge: %+v", st)
	}
	// Draining the WAL (healed fold) releases backpressure.
	failing = false
	if _, err := c.FoldOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ingest(env.records(50, 51)); err != nil {
		t.Fatalf("ingest after drain: %v", err)
	}
}
