package clickgraph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format is one edge per line:
//
//	query <TAB> ad <TAB> impressions <TAB> clicks <TAB> expectedClickRate
//
// with '#'-prefixed comment lines and blank lines ignored. Isolated nodes
// can be declared with "!query <TAB> name" / "!ad <TAB> name" lines. It is
// the interchange format between cmd/clickgen, cmd/partition, cmd/simrank
// and cmd/experiments.

// Write serializes g in the text edge format. Edges appear in (query id,
// ad id) order, so output is deterministic for a given graph.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# click graph: %d queries, %d ads, %d edges\n",
		g.NumQueries(), g.NumAds(), g.NumEdges()); err != nil {
		return err
	}
	// Declare isolated nodes so round-tripping preserves them.
	for q := 0; q < g.NumQueries(); q++ {
		if g.QueryDegree(q) == 0 {
			if _, err := fmt.Fprintf(bw, "!query\t%s\n", g.Query(q)); err != nil {
				return err
			}
		}
	}
	for a := 0; a < g.NumAds(); a++ {
		if g.AdDegree(a) == 0 {
			if _, err := fmt.Fprintf(bw, "!ad\t%s\n", g.Ad(a)); err != nil {
				return err
			}
		}
	}
	var werr error
	g.Edges(func(q, a int, ew EdgeWeights) bool {
		_, werr = fmt.Fprintf(bw, "%s\t%s\t%d\t%d\t%s\n",
			g.Query(q), g.Ad(a), ew.Impressions, ew.Clicks,
			strconv.FormatFloat(ew.ExpectedClickRate, 'g', -1, 64))
		return werr == nil
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// Read parses a graph in the text edge format.
func Read(r io.Reader) (*Graph, error) {
	b := NewBuilder()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r\n")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		switch {
		case fields[0] == "!query" && len(fields) == 2:
			b.AddQuery(fields[1])
			continue
		case fields[0] == "!ad" && len(fields) == 2:
			b.AddAd(fields[1])
			continue
		}
		if len(fields) != 5 {
			return nil, fmt.Errorf("clickgraph: line %d: want 5 tab-separated fields, got %d", lineNo, len(fields))
		}
		impr, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("clickgraph: line %d: bad impressions: %v", lineNo, err)
		}
		clicks, err := strconv.ParseInt(fields[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("clickgraph: line %d: bad clicks: %v", lineNo, err)
		}
		rate, err := strconv.ParseFloat(fields[4], 64)
		if err != nil {
			return nil, fmt.Errorf("clickgraph: line %d: bad rate: %v", lineNo, err)
		}
		if err := b.AddEdge(fields[0], fields[1], EdgeWeights{
			Impressions: impr, Clicks: clicks, ExpectedClickRate: rate,
		}); err != nil {
			return nil, fmt.Errorf("clickgraph: line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build(), nil
}
