// Package clickgraph implements the weighted bipartite click graph at the
// heart of the Simrank++ paper (§2): queries on one side, ads on the other,
// and an edge (q, α) whenever at least one user who issued q clicked α
// during the observation window. Each edge carries three weights —
// impressions, clicks, and the position-adjusted expected click rate — and
// the graph exposes CSR adjacency in both directions for the SimRank
// engines.
package clickgraph

import (
	"fmt"
	"sort"

	"simrankpp/internal/sparse"
)

// Side distinguishes the two node partitions.
type Side int

const (
	// QuerySide is the partition of user queries.
	QuerySide Side = iota
	// AdSide is the partition of advertisements.
	AdSide
)

// String implements fmt.Stringer.
func (s Side) String() string {
	switch s {
	case QuerySide:
		return "query"
	case AdSide:
		return "ad"
	default:
		return fmt.Sprintf("Side(%d)", int(s))
	}
}

// EdgeWeights are the three per-edge measurements the back-end records
// (§2): how often the ad was displayed for the query, how often it was
// clicked, and the position-adjusted clicks-over-impressions estimate.
type EdgeWeights struct {
	Impressions int64
	Clicks      int64
	// ExpectedClickRate is the position-adjusted click-through estimate in
	// [0, 1]. All weighted experiments in the paper use this weight.
	ExpectedClickRate float64
}

// Edge is a (query, ad) connection with its weights.
type Edge struct {
	Query, Ad string
	EdgeWeights
}

// Builder accumulates edges and compiles an immutable Graph. Adding the
// same (query, ad) pair twice merges the observations: impressions and
// clicks sum, and the expected click rate is re-estimated as an
// impressions-weighted mean.
type Builder struct {
	queryID map[string]int
	adID    map[string]int
	queries []string
	ads     []string
	edges   map[[2]int]EdgeWeights
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		queryID: make(map[string]int),
		adID:    make(map[string]int),
		edges:   make(map[[2]int]EdgeWeights),
	}
}

func (b *Builder) internQuery(q string) int {
	if id, ok := b.queryID[q]; ok {
		return id
	}
	id := len(b.queries)
	b.queryID[q] = id
	b.queries = append(b.queries, q)
	return id
}

func (b *Builder) internAd(a string) int {
	if id, ok := b.adID[a]; ok {
		return id
	}
	id := len(b.ads)
	b.adID[a] = id
	b.ads = append(b.ads, a)
	return id
}

// AddQuery ensures a query node exists even if it has no edges yet.
func (b *Builder) AddQuery(q string) { b.internQuery(q) }

// AddAd ensures an ad node exists even if it has no edges yet.
func (b *Builder) AddAd(a string) { b.internAd(a) }

// AddEdge records an observation for (query, ad). It returns an error for
// physically impossible weights: negative counts, clicks exceeding
// impressions when impressions are recorded, or an expected click rate
// outside [0, 1].
func (b *Builder) AddEdge(query, ad string, w EdgeWeights) error {
	if w.Impressions < 0 || w.Clicks < 0 {
		return fmt.Errorf("clickgraph: negative counts for (%q,%q): %+v", query, ad, w)
	}
	if w.Impressions > 0 && w.Clicks > w.Impressions {
		return fmt.Errorf("clickgraph: clicks %d exceed impressions %d for (%q,%q)",
			w.Clicks, w.Impressions, query, ad)
	}
	if w.ExpectedClickRate < 0 || w.ExpectedClickRate > 1 {
		return fmt.Errorf("clickgraph: expected click rate %v outside [0,1] for (%q,%q)",
			w.ExpectedClickRate, query, ad)
	}
	qi, ai := b.internQuery(query), b.internAd(ad)
	key := [2]int{qi, ai}
	if old, ok := b.edges[key]; ok {
		merged := EdgeWeights{
			Impressions: old.Impressions + w.Impressions,
			Clicks:      old.Clicks + w.Clicks,
		}
		// Impressions-weighted mean of the two rate estimates; fall back to
		// a plain mean when neither observation carries impressions.
		ti, tn := float64(old.Impressions), float64(w.Impressions)
		if ti+tn > 0 {
			merged.ExpectedClickRate = (old.ExpectedClickRate*ti + w.ExpectedClickRate*tn) / (ti + tn)
		} else {
			merged.ExpectedClickRate = (old.ExpectedClickRate + w.ExpectedClickRate) / 2
		}
		b.edges[key] = merged
		return nil
	}
	b.edges[key] = w
	return nil
}

// AddClick is shorthand for a single displayed-and-clicked observation with
// the given rate estimate.
func (b *Builder) AddClick(query, ad string, rate float64) error {
	return b.AddEdge(query, ad, EdgeWeights{Impressions: 1, Clicks: 1, ExpectedClickRate: rate})
}

// NumQueries returns the number of distinct queries added so far.
func (b *Builder) NumQueries() int { return len(b.queries) }

// NumAds returns the number of distinct ads added so far.
func (b *Builder) NumAds() int { return len(b.ads) }

// NumEdges returns the number of distinct (query, ad) pairs added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build compiles the accumulated edges into an immutable Graph.
func (b *Builder) Build() *Graph {
	nq, na := len(b.queries), len(b.ads)
	type flat struct {
		q, a int
		w    EdgeWeights
	}
	flats := make([]flat, 0, len(b.edges))
	for k, w := range b.edges {
		flats = append(flats, flat{q: k[0], a: k[1], w: w})
	}
	sort.Slice(flats, func(i, j int) bool {
		if flats[i].q != flats[j].q {
			return flats[i].q < flats[j].q
		}
		return flats[i].a < flats[j].a
	})

	rate := sparse.NewCOO(nq, na)
	clicks := sparse.NewCOO(nq, na)
	impr := sparse.NewCOO(nq, na)
	for _, f := range flats {
		// Coordinates come from the interner, so Append cannot fail.
		_ = rate.Append(f.q, f.a, f.w.ExpectedClickRate)
		_ = clicks.Append(f.q, f.a, float64(f.w.Clicks))
		_ = impr.Append(f.q, f.a, float64(f.w.Impressions))
	}
	g := &Graph{
		queries:  append([]string(nil), b.queries...),
		ads:      append([]string(nil), b.ads...),
		queryID:  make(map[string]int, nq),
		adID:     make(map[string]int, na),
		rateQA:   rate.Compile(),
		clicksQA: clicks.Compile(),
		imprQA:   impr.Compile(),
	}
	g.rateAQ = g.rateQA.Transpose()
	g.clicksAQ = g.clicksQA.Transpose()
	g.imprAQ = g.imprQA.Transpose()
	for i, q := range g.queries {
		g.queryID[q] = i
	}
	for i, a := range g.ads {
		g.adID[a] = i
	}
	return g
}

// Graph is an immutable weighted bipartite click graph. Node ids are dense
// ints per side: query ids in [0, NumQueries), ad ids in [0, NumAds).
type Graph struct {
	queries []string
	ads     []string
	queryID map[string]int
	adID    map[string]int

	// Query→ad CSR matrices, one per weight channel, plus their transposes.
	rateQA, rateAQ     *sparse.CSR
	clicksQA, clicksAQ *sparse.CSR
	imprQA, imprAQ     *sparse.CSR
}

// NumQueries returns the number of query nodes.
func (g *Graph) NumQueries() int { return len(g.queries) }

// NumAds returns the number of ad nodes.
func (g *Graph) NumAds() int { return len(g.ads) }

// NumEdges returns the number of (query, ad) edges.
func (g *Graph) NumEdges() int { return g.rateQA.NNZ() }

// Query returns the query string for id, panicking on out-of-range ids as
// any slice index would.
func (g *Graph) Query(id int) string { return g.queries[id] }

// Ad returns the ad string for id.
func (g *Graph) Ad(id int) string { return g.ads[id] }

// QueryID returns the id of query q and whether it exists.
func (g *Graph) QueryID(q string) (int, bool) {
	id, ok := g.queryID[q]
	return id, ok
}

// AdID returns the id of ad a and whether it exists.
func (g *Graph) AdID(a string) (int, bool) {
	id, ok := g.adID[a]
	return id, ok
}

// Queries returns all query strings indexed by id. Callers must not mutate
// the returned slice.
func (g *Graph) Queries() []string { return g.queries }

// Ads returns all ad strings indexed by id. Callers must not mutate the
// returned slice.
func (g *Graph) Ads() []string { return g.ads }

// AdsOf returns the ad neighbors of query q with their expected click
// rates, as shared slices that must not be mutated. This is E(q) in the
// paper's notation.
func (g *Graph) AdsOf(q int) (ads []int, rates []float64) { return g.rateQA.Row(q) }

// QueriesOf returns the query neighbors of ad a with their expected click
// rates. This is E(α).
func (g *Graph) QueriesOf(a int) (queries []int, rates []float64) { return g.rateAQ.Row(a) }

// QueryDegree returns N(q), the number of ads adjacent to query q.
func (g *Graph) QueryDegree(q int) int { return g.rateQA.RowNNZ(q) }

// AdDegree returns N(α), the number of queries adjacent to ad a.
func (g *Graph) AdDegree(a int) int { return g.rateAQ.RowNNZ(a) }

// HasEdge reports whether (q, a) is an edge.
func (g *Graph) HasEdge(q, a int) bool {
	cols, _ := g.rateQA.Row(q)
	i := sort.SearchInts(cols, a)
	return i < len(cols) && cols[i] == a
}

// EdgeWeightsOf returns the full weights of edge (q, a) and whether the
// edge exists.
func (g *Graph) EdgeWeightsOf(q, a int) (EdgeWeights, bool) {
	if !g.HasEdge(q, a) {
		return EdgeWeights{}, false
	}
	return EdgeWeights{
		Impressions:       int64(g.imprQA.At(q, a)),
		Clicks:            int64(g.clicksQA.At(q, a)),
		ExpectedClickRate: g.rateQA.At(q, a),
	}, true
}

// Rate returns the expected click rate of edge (q, a), 0 if absent.
func (g *Graph) Rate(q, a int) float64 { return g.rateQA.At(q, a) }

// Clicks returns the click count of edge (q, a), 0 if absent.
func (g *Graph) Clicks(q, a int) int64 { return int64(g.clicksQA.At(q, a)) }

// ClicksOfQuery returns the ad neighbors of q with raw click counts.
func (g *Graph) ClicksOfQuery(q int) (ads []int, clicks []float64) { return g.clicksQA.Row(q) }

// ClicksOfAd returns the query neighbors of a with raw click counts.
func (g *Graph) ClicksOfAd(a int) (queries []int, clicks []float64) { return g.clicksAQ.Row(a) }

// Edges calls fn for every edge in (query id, ad id) order. If fn returns
// false, iteration stops.
func (g *Graph) Edges(fn func(q, a int, w EdgeWeights) bool) {
	for q := 0; q < g.NumQueries(); q++ {
		cols, rates := g.rateQA.Row(q)
		lo := g.clicksQA.RowPtr[q]
		imLo := g.imprQA.RowPtr[q]
		for i, a := range cols {
			w := EdgeWeights{
				Impressions:       int64(g.imprQA.Val[imLo+i]),
				Clicks:            int64(g.clicksQA.Val[lo+i]),
				ExpectedClickRate: rates[i],
			}
			if !fn(q, a, w) {
				return
			}
		}
	}
}

// CommonAds returns the ads adjacent to both q1 and q2, i.e. E(q1) ∩ E(q2),
// in ascending id order.
func (g *Graph) CommonAds(q1, q2 int) []int {
	a1, _ := g.rateQA.Row(q1)
	a2, _ := g.rateQA.Row(q2)
	return intersectSorted(a1, a2)
}

// CommonQueries returns the queries adjacent to both a1 and a2.
func (g *Graph) CommonQueries(a1, a2 int) []int {
	q1, _ := g.rateAQ.Row(a1)
	q2, _ := g.rateAQ.Row(a2)
	return intersectSorted(q1, q2)
}

func intersectSorted(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// RemoveEdges returns a new Graph equal to g minus the listed (query id,
// ad id) edges. Node ids are preserved, including nodes left isolated.
// Unknown edges are ignored. The desirability experiment (§9.3) uses this
// to delete the direct evidence between a query and its rewrite candidates.
func (g *Graph) RemoveEdges(drop [][2]int) *Graph {
	skip := make(map[[2]int]bool, len(drop))
	for _, e := range drop {
		skip[e] = true
	}
	b := NewBuilder()
	for _, q := range g.queries {
		b.AddQuery(q)
	}
	for _, a := range g.ads {
		b.AddAd(a)
	}
	g.Edges(func(q, a int, w EdgeWeights) bool {
		if !skip[[2]int{q, a}] {
			// Weights were validated when first added, so re-adding them
			// cannot fail.
			_ = b.AddEdge(g.queries[q], g.ads[a], w)
		}
		return true
	})
	return b.Build()
}

// InducedSubgraph returns the subgraph on the given query and ad id sets,
// with nodes re-interned (ids are NOT preserved). Edges survive only if
// both endpoints are kept.
func (g *Graph) InducedSubgraph(queryIDs, adIDs []int) *Graph {
	keepQ := make(map[int]bool, len(queryIDs))
	for _, q := range queryIDs {
		keepQ[q] = true
	}
	keepA := make(map[int]bool, len(adIDs))
	for _, a := range adIDs {
		keepA[a] = true
	}
	b := NewBuilder()
	for _, q := range queryIDs {
		b.AddQuery(g.queries[q])
	}
	for _, a := range adIDs {
		b.AddAd(g.ads[a])
	}
	g.Edges(func(q, a int, w EdgeWeights) bool {
		if keepQ[q] && keepA[a] {
			_ = b.AddEdge(g.queries[q], g.ads[a], w)
		}
		return true
	})
	return b.Build()
}
