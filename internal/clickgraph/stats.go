package clickgraph

import "sort"

// Stats summarizes a click graph the way Table 5 of the paper reports its
// five-subgraph dataset: node counts, edge counts, plus degree and weight
// shape information used to verify the generator's power laws.
type Stats struct {
	Queries, Ads, Edges int
	// Components is the number of connected components of the bipartite
	// graph, counting isolated nodes as singleton components.
	Components int
	// LargestComponent is the node count (queries + ads) of the biggest
	// component.
	LargestComponent int
	MeanAdsPerQuery  float64
	MeanQueriesPerAd float64
	MaxQueryDegree   int
	MaxAdDegree      int
	TotalClicks      int64
	TotalImpressions int64
}

// ComputeStats scans the graph once and returns its summary.
func ComputeStats(g *Graph) Stats {
	s := Stats{Queries: g.NumQueries(), Ads: g.NumAds(), Edges: g.NumEdges()}
	for q := 0; q < g.NumQueries(); q++ {
		d := g.QueryDegree(q)
		if d > s.MaxQueryDegree {
			s.MaxQueryDegree = d
		}
	}
	for a := 0; a < g.NumAds(); a++ {
		d := g.AdDegree(a)
		if d > s.MaxAdDegree {
			s.MaxAdDegree = d
		}
	}
	if s.Queries > 0 {
		s.MeanAdsPerQuery = float64(s.Edges) / float64(s.Queries)
	}
	if s.Ads > 0 {
		s.MeanQueriesPerAd = float64(s.Edges) / float64(s.Ads)
	}
	g.Edges(func(q, a int, w EdgeWeights) bool {
		s.TotalClicks += w.Clicks
		s.TotalImpressions += w.Impressions
		return true
	})
	comps := Components(g)
	s.Components = len(comps)
	for _, c := range comps {
		if n := len(c.Queries) + len(c.Ads); n > s.LargestComponent {
			s.LargestComponent = n
		}
	}
	return s
}

// Component is one connected component, holding query and ad ids.
type Component struct {
	Queries []int
	Ads     []int
}

// Components returns the connected components of the bipartite graph via
// iterative BFS, largest first (ties broken by smallest contained query
// id, then ad id, for determinism). Isolated nodes form singleton
// components.
func Components(g *Graph) []Component {
	nq, na := g.NumQueries(), g.NumAds()
	// Unified node space: queries [0, nq), ads [nq, nq+na).
	visited := make([]bool, nq+na)
	var comps []Component
	var queue []int
	for start := 0; start < nq+na; start++ {
		if visited[start] {
			continue
		}
		visited[start] = true
		queue = queue[:0]
		queue = append(queue, start)
		var c Component
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			if v < nq {
				c.Queries = append(c.Queries, v)
				ads, _ := g.AdsOf(v)
				for _, a := range ads {
					if !visited[nq+a] {
						visited[nq+a] = true
						queue = append(queue, nq+a)
					}
				}
			} else {
				a := v - nq
				c.Ads = append(c.Ads, a)
				qs, _ := g.QueriesOf(a)
				for _, q := range qs {
					if !visited[q] {
						visited[q] = true
						queue = append(queue, q)
					}
				}
			}
		}
		sort.Ints(c.Queries)
		sort.Ints(c.Ads)
		comps = append(comps, c)
	}
	sort.Slice(comps, func(i, j int) bool {
		ni := len(comps[i].Queries) + len(comps[i].Ads)
		nj := len(comps[j].Queries) + len(comps[j].Ads)
		if ni != nj {
			return ni > nj
		}
		return componentMinID(comps[i]) < componentMinID(comps[j])
	})
	return comps
}

func componentMinID(c Component) int {
	// Queries and ads are sorted; a component is nonempty by construction.
	if len(c.Queries) > 0 {
		return c.Queries[0]
	}
	return c.Ads[0] + 1<<30
}

// QueryDegreeHistogram returns a map degree → count over query nodes.
func QueryDegreeHistogram(g *Graph) map[int]int {
	h := make(map[int]int)
	for q := 0; q < g.NumQueries(); q++ {
		h[g.QueryDegree(q)]++
	}
	return h
}

// AdDegreeHistogram returns a map degree → count over ad nodes.
func AdDegreeHistogram(g *Graph) map[int]int {
	h := make(map[int]int)
	for a := 0; a < g.NumAds(); a++ {
		h[g.AdDegree(a)]++
	}
	return h
}
