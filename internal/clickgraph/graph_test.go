package clickgraph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func mustAdd(t *testing.T, b *Builder, q, a string, w EdgeWeights) {
	t.Helper()
	if err := b.AddEdge(q, a, w); err != nil {
		t.Fatalf("AddEdge(%q,%q): %v", q, a, err)
	}
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder()
	mustAdd(t, b, "q1", "a1", EdgeWeights{Impressions: 10, Clicks: 3, ExpectedClickRate: 0.3})
	mustAdd(t, b, "q1", "a2", EdgeWeights{Impressions: 5, Clicks: 1, ExpectedClickRate: 0.2})
	mustAdd(t, b, "q2", "a1", EdgeWeights{Impressions: 2, Clicks: 2, ExpectedClickRate: 0.9})
	g := b.Build()

	if g.NumQueries() != 2 || g.NumAds() != 2 || g.NumEdges() != 3 {
		t.Fatalf("sizes: %d queries %d ads %d edges", g.NumQueries(), g.NumAds(), g.NumEdges())
	}
	q1, ok := g.QueryID("q1")
	if !ok {
		t.Fatal("q1 missing")
	}
	a1, ok := g.AdID("a1")
	if !ok {
		t.Fatal("a1 missing")
	}
	w, ok := g.EdgeWeightsOf(q1, a1)
	if !ok || w.Impressions != 10 || w.Clicks != 3 || w.ExpectedClickRate != 0.3 {
		t.Errorf("EdgeWeightsOf(q1,a1) = %+v,%v", w, ok)
	}
	if g.QueryDegree(q1) != 2 {
		t.Errorf("QueryDegree(q1) = %d want 2", g.QueryDegree(q1))
	}
	if g.AdDegree(a1) != 2 {
		t.Errorf("AdDegree(a1) = %d want 2", g.AdDegree(a1))
	}
	if _, ok := g.QueryID("nope"); ok {
		t.Error("unknown query resolved")
	}
}

func TestBuilderRejectsBadWeights(t *testing.T) {
	cases := []EdgeWeights{
		{Impressions: -1},
		{Clicks: -1},
		{Impressions: 1, Clicks: 2},
		{ExpectedClickRate: -0.1},
		{ExpectedClickRate: 1.1},
	}
	for _, w := range cases {
		b := NewBuilder()
		if err := b.AddEdge("q", "a", w); err == nil {
			t.Errorf("AddEdge accepted invalid weights %+v", w)
		}
	}
}

func TestBuilderMergesDuplicateEdges(t *testing.T) {
	b := NewBuilder()
	mustAdd(t, b, "q", "a", EdgeWeights{Impressions: 10, Clicks: 1, ExpectedClickRate: 0.1})
	mustAdd(t, b, "q", "a", EdgeWeights{Impressions: 30, Clicks: 3, ExpectedClickRate: 0.5})
	g := b.Build()
	q, _ := g.QueryID("q")
	a, _ := g.AdID("a")
	w, _ := g.EdgeWeightsOf(q, a)
	if w.Impressions != 40 || w.Clicks != 4 {
		t.Errorf("merged counts = %+v", w)
	}
	// Impressions-weighted mean: (0.1*10 + 0.5*30)/40 = 0.4.
	if w.ExpectedClickRate != 0.4 {
		t.Errorf("merged rate = %v want 0.4", w.ExpectedClickRate)
	}
}

func TestCommonAds(t *testing.T) {
	g := Fig3()
	cam, _ := g.QueryID("camera")
	dig, _ := g.QueryID("digital camera")
	pc, _ := g.QueryID("pc")
	fl, _ := g.QueryID("flower")
	if n := len(g.CommonAds(cam, dig)); n != 2 {
		t.Errorf("camera/digital camera common ads = %d want 2", n)
	}
	if n := len(g.CommonAds(pc, cam)); n != 1 {
		t.Errorf("pc/camera common ads = %d want 1", n)
	}
	if n := len(g.CommonAds(pc, fl)); n != 0 {
		t.Errorf("pc/flower common ads = %d want 0", n)
	}
}

// Table 1 of the paper, exactly.
func TestFig3MatchesTable1(t *testing.T) {
	g := Fig3()
	want := map[[2]string]int{
		{"pc", "camera"}: 1, {"pc", "digital camera"}: 1, {"pc", "tv"}: 0, {"pc", "flower"}: 0,
		{"camera", "digital camera"}: 2, {"camera", "tv"}: 1, {"camera", "flower"}: 0,
		{"digital camera", "tv"}: 1, {"digital camera", "flower"}: 0,
		{"tv", "flower"}: 0,
	}
	for pair, n := range want {
		i, ok1 := g.QueryID(pair[0])
		j, ok2 := g.QueryID(pair[1])
		if !ok1 || !ok2 {
			t.Fatalf("missing query in pair %v", pair)
		}
		if got := len(g.CommonAds(i, j)); got != n {
			t.Errorf("common ads %v = %d want %d", pair, got, n)
		}
	}
}

func TestComponents(t *testing.T) {
	g := Fig3()
	comps := Components(g)
	// Fig3 has two components: the electronics cluster and the flower
	// cluster.
	if len(comps) != 2 {
		t.Fatalf("components = %d want 2", len(comps))
	}
	if len(comps[0].Queries) != 4 {
		t.Errorf("largest component queries = %d want 4", len(comps[0].Queries))
	}
	if len(comps[1].Queries) != 1 || len(comps[1].Ads) != 2 {
		t.Errorf("flower component = %d queries %d ads, want 1 and 2",
			len(comps[1].Queries), len(comps[1].Ads))
	}
}

func TestComputeStats(t *testing.T) {
	g := Fig3()
	s := ComputeStats(g)
	if s.Queries != 5 || s.Ads != 7 || s.Edges != 12 {
		t.Errorf("stats sizes: %+v", s)
	}
	if s.Components != 2 {
		t.Errorf("components = %d want 2", s.Components)
	}
	if s.TotalClicks != 12 {
		t.Errorf("total clicks = %d want 12 (one per edge)", s.TotalClicks)
	}
	if s.MaxQueryDegree != 3 {
		t.Errorf("max query degree = %d want 3", s.MaxQueryDegree)
	}
}

func TestRemoveEdges(t *testing.T) {
	g := Fig3()
	pc, _ := g.QueryID("pc")
	hp, _ := g.AdID("hp.com")
	g2 := g.RemoveEdges([][2]int{{pc, hp}})
	if g2.NumEdges() != g.NumEdges()-1 {
		t.Fatalf("edges after removal = %d want %d", g2.NumEdges(), g.NumEdges()-1)
	}
	// Node ids preserved.
	if g2.NumQueries() != g.NumQueries() || g2.NumAds() != g.NumAds() {
		t.Fatal("node counts changed")
	}
	pc2, _ := g2.QueryID("pc")
	hp2, _ := g2.AdID("hp.com")
	if g2.HasEdge(pc2, hp2) {
		t.Error("removed edge still present")
	}
	// Original untouched.
	if !g.HasEdge(pc, hp) {
		t.Error("RemoveEdges mutated the original graph")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Fig3()
	cam, _ := g.QueryID("camera")
	dig, _ := g.QueryID("digital camera")
	hp, _ := g.AdID("hp.com")
	bb, _ := g.AdID("bestbuy.com")
	sub := g.InducedSubgraph([]int{cam, dig}, []int{hp, bb})
	if sub.NumQueries() != 2 || sub.NumAds() != 2 || sub.NumEdges() != 4 {
		t.Errorf("induced K2,2: %d/%d/%d", sub.NumQueries(), sub.NumAds(), sub.NumEdges())
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	b := NewBuilder()
	mustAdd(t, b, "camera", "hp.com", EdgeWeights{Impressions: 10, Clicks: 2, ExpectedClickRate: 0.25})
	mustAdd(t, b, "digital camera", "hp.com", EdgeWeights{Impressions: 7, Clicks: 1, ExpectedClickRate: 0.125})
	b.AddQuery("isolated query")
	b.AddAd("isolated-ad.com")
	g := b.Build()

	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatalf("Write: %v", err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if g2.NumQueries() != g.NumQueries() || g2.NumAds() != g.NumAds() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip sizes: %d/%d/%d vs %d/%d/%d",
			g2.NumQueries(), g2.NumAds(), g2.NumEdges(),
			g.NumQueries(), g.NumAds(), g.NumEdges())
	}
	g.Edges(func(q, a int, w EdgeWeights) bool {
		q2, ok := g2.QueryID(g.Query(q))
		if !ok {
			t.Fatalf("query %q lost", g.Query(q))
		}
		a2, ok := g2.AdID(g.Ad(a))
		if !ok {
			t.Fatalf("ad %q lost", g.Ad(a))
		}
		w2, ok := g2.EdgeWeightsOf(q2, a2)
		if !ok || w2 != w {
			t.Errorf("edge (%s,%s) weights %+v vs %+v", g.Query(q), g.Ad(a), w2, w)
		}
		return true
	})
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := []string{
		"q\ta\tx\t1\t0.5\n", // bad impressions
		"q\ta\t1\tx\t0.5\n", // bad clicks
		"q\ta\t1\t1\tx\n",   // bad rate
		"q\ta\t1\n",         // wrong field count
		"q\ta\t1\t2\t0.5\n", // clicks > impressions
		"q\ta\t1\t1\t1.5\n", // rate out of range
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("Read accepted malformed input %q", c)
		}
	}
}

// Property: any set of valid edges round-trips through Build without loss.
func TestBuilderProperty(t *testing.T) {
	check := func(edges []struct {
		Q, A  uint8
		Click uint8
	}) bool {
		b := NewBuilder()
		type key struct{ q, a string }
		want := map[key]int64{}
		for _, e := range edges {
			q := string(rune('a' + e.Q%16))
			a := string(rune('A' + e.A%16))
			c := int64(e.Click%5) + 1
			if err := b.AddEdge(q, a, EdgeWeights{Impressions: c * 2, Clicks: c, ExpectedClickRate: 0.5}); err != nil {
				return false
			}
			want[key{q, a}] += c
		}
		g := b.Build()
		if g.NumEdges() != len(want) {
			return false
		}
		for k, clicks := range want {
			qi, ok1 := g.QueryID(k.q)
			ai, ok2 := g.AdID(k.a)
			if !ok1 || !ok2 {
				return false
			}
			if g.Clicks(qi, ai) != clicks {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
