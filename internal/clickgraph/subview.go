package clickgraph

import (
	"fmt"
	"sort"

	"simrankpp/internal/sparse"
)

// Subview is an induced subgraph of a parent Graph together with the
// stable local↔global id remapping the shard engines stitch results back
// through. Local ids are dense per side and assigned in ascending global
// order, so the relative order of any two surviving nodes — and therefore
// the iteration order of every neighbor list — is exactly the parent's.
// That monotonicity is what lets a per-shard SimRank run reproduce the
// whole-graph run bit for bit on shards that are unions of connected
// components.
type Subview struct {
	// Graph is the induced subgraph: only edges with both endpoints kept
	// survive, and its node ids are local.
	Graph *Graph
	// QueryIDs maps local query id -> global query id (strictly
	// ascending); AdIDs likewise for ads. Callers must not mutate them.
	QueryIDs, AdIDs []int
}

// GlobalQuery returns the parent-graph id of local query q.
func (v *Subview) GlobalQuery(q int) int { return v.QueryIDs[q] }

// GlobalAd returns the parent-graph id of local ad a.
func (v *Subview) GlobalAd(a int) int { return v.AdIDs[a] }

// LocalQuery returns the local id of global query q and whether q is in
// the view. O(log n) over the ascending id list.
func (v *Subview) LocalQuery(q int) (int, bool) { return searchID(v.QueryIDs, q) }

// LocalAd returns the local id of global ad a and whether a is in the view.
func (v *Subview) LocalAd(a int) (int, bool) { return searchID(v.AdIDs, a) }

func searchID(ids []int, id int) (int, bool) {
	i := sort.SearchInts(ids, id)
	return i, i < len(ids) && ids[i] == id
}

// NewSubview builds the induced subgraph on the given global query and ad
// id sets. The id lists are copied, sorted and de-duplicated; out-of-range
// ids are an error. Unlike InducedSubgraph (which replays edges through a
// Builder), the view is assembled directly from the parent's CSR rows —
// one counting pass and one copying pass per weight channel, no maps on
// the edge path — so carving many shards out of a large graph stays cheap.
func NewSubview(g *Graph, queryIDs, adIDs []int) (*Subview, error) {
	qSel, err := checkIDs(queryIDs, g.NumQueries(), "query")
	if err != nil {
		return nil, err
	}
	aSel, err := checkIDs(adIDs, g.NumAds(), "ad")
	if err != nil {
		return nil, err
	}

	// Global→local ad translation for the column rewrite. O(NumAds) scratch,
	// transient and reused nowhere, so shard extraction stays allocation-flat
	// in the number of shards times the ad side.
	aLoc := make([]int32, g.NumAds())
	for i := range aLoc {
		aLoc[i] = -1
	}
	for i, a := range aSel {
		aLoc[a] = int32(i)
	}

	// One shared structure pass sizes the rows; the three weight channels
	// share the structure (they are built from the same edge set), so the
	// column array can be computed once and copied.
	rowPtr := make([]int, len(qSel)+1)
	for i, q := range qSel {
		cols, _ := g.rateQA.Row(q)
		n := 0
		for _, a := range cols {
			if aLoc[a] >= 0 {
				n++
			}
		}
		rowPtr[i+1] = rowPtr[i] + n
	}
	nnz := rowPtr[len(qSel)]
	colIdx := make([]int, nnz)
	rateV := make([]float64, nnz)
	clickV := make([]float64, nnz)
	imprV := make([]float64, nnz)
	for i, q := range qSel {
		cols, rates := g.rateQA.Row(q)
		lo := g.clicksQA.RowPtr[q]
		imLo := g.imprQA.RowPtr[q]
		w := rowPtr[i]
		for k, a := range cols {
			la := aLoc[a]
			if la < 0 {
				continue
			}
			// Parent columns ascend and local ids preserve their order, so
			// rows come out ascending without sorting.
			colIdx[w] = int(la)
			rateV[w] = rates[k]
			clickV[w] = g.clicksQA.Val[lo+k]
			imprV[w] = g.imprQA.Val[imLo+k]
			w++
		}
	}

	sub := &Graph{
		queries: make([]string, len(qSel)),
		ads:     make([]string, len(aSel)),
		queryID: make(map[string]int, len(qSel)),
		adID:    make(map[string]int, len(aSel)),
	}
	for i, q := range qSel {
		sub.queries[i] = g.queries[q]
		sub.queryID[sub.queries[i]] = i
	}
	for i, a := range aSel {
		sub.ads[i] = g.ads[a]
		sub.adID[sub.ads[i]] = i
	}
	// The three channels share the structure arrays; CSR is immutable after
	// construction, so aliasing rowPtr/colIdx across them is safe.
	sub.rateQA = sparse.NewCSR(len(qSel), len(aSel), rowPtr, colIdx, rateV)
	sub.clicksQA = sparse.NewCSR(len(qSel), len(aSel), rowPtr, colIdx, clickV)
	sub.imprQA = sparse.NewCSR(len(qSel), len(aSel), rowPtr, colIdx, imprV)
	sub.rateAQ = sub.rateQA.Transpose()
	sub.clicksAQ = sub.clicksQA.Transpose()
	sub.imprAQ = sub.imprQA.Transpose()
	return &Subview{Graph: sub, QueryIDs: qSel, AdIDs: aSel}, nil
}

// checkIDs copies, sorts, de-duplicates and range-checks one side's ids.
func checkIDs(ids []int, n int, side string) ([]int, error) {
	out := append([]int(nil), ids...)
	sort.Ints(out)
	w := 0
	for i, id := range out {
		if id < 0 || id >= n {
			return nil, fmt.Errorf("clickgraph: %s id %d outside [0,%d)", side, id, n)
		}
		if i > 0 && out[i-1] == id {
			continue
		}
		out[w] = id
		w++
	}
	return out[:w], nil
}
