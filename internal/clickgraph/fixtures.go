package clickgraph

import "fmt"

// This file builds the small graphs the paper uses as running examples, so
// tests and the table experiments reference exactly the structures in
// Figures 3-6.

// Fig3 builds the unweighted sample click graph of Figure 3: five queries
// {pc, camera, digital camera, tv, flower} and seven ads. The figure itself
// is an image, so the wiring is reconstructed from the constraints the text
// states: the common-ad counts of Table 1, the complete bipartite subgraphs
// {camera, digital camera} × {hp.com, bestbuy.com} and
// {flower} × {teleflora.com, orchids.com} called out in §6, and the
// structural symmetry between "camera" and "digital camera" that Table 2
// exhibits. Every edge gets one click and a unit expected click rate,
// matching the paper's "an edge indicates the existence of at least one
// click".
func Fig3() *Graph {
	// Table 1 requires:
	//   pc–camera = 1, pc–digital camera = 1, pc–tv = 0, pc–flower = 0
	//   camera–digital camera = 2, camera–tv = 1, camera–flower = 0
	//   digital camera–tv = 1, digital camera–flower = 0, tv–flower = 0
	// The wiring below satisfies every count with 7 ads, and keeps
	// {camera, digital camera} × {hp.com, bestbuy.com} as the complete
	// bipartite subgraph the paper calls out in §6.
	edges := []struct{ q, a string }{
		{"pc", "pcworld.com"},
		{"pc", "hp.com"},
		{"camera", "hp.com"},
		{"camera", "bestbuy.com"},
		{"digital camera", "hp.com"},
		{"digital camera", "bestbuy.com"},
		{"camera", "fujifilm.com"},
		{"digital camera", "dpreview.com"},
		{"tv", "fujifilm.com"},
		{"tv", "dpreview.com"},
		{"flower", "teleflora.com"},
		{"flower", "orchids.com"},
	}
	b := NewBuilder()
	for _, e := range edges {
		if err := b.AddClick(e.q, e.a, 1); err != nil {
			panic(fmt.Sprintf("clickgraph: Fig3 fixture: %v", err))
		}
	}
	return b.Build()
}

// Fig4K22 builds the K2,2 complete bipartite graph of Figure 4(a):
// queries {camera, digital camera} fully connected to ads
// {hp.com, bestbuy.com}.
func Fig4K22() *Graph {
	b := NewBuilder()
	for _, q := range []string{"camera", "digital camera"} {
		for _, a := range []string{"hp.com", "bestbuy.com"} {
			if err := b.AddClick(q, a, 1); err != nil {
				panic(fmt.Sprintf("clickgraph: Fig4K22 fixture: %v", err))
			}
		}
	}
	return b.Build()
}

// Fig4K12 builds the K1,2 graph of Figure 4(b): ad hp.com connected to
// queries {pc, camera}. In the paper's orientation the two queries are the
// side whose pairwise similarity is studied, so here V1 = {hp.com} (one
// ad), V2 = {pc, camera}.
func Fig4K12() *Graph {
	b := NewBuilder()
	for _, q := range []string{"pc", "camera"} {
		if err := b.AddClick(q, "hp.com", 1); err != nil {
			panic(fmt.Sprintf("clickgraph: Fig4K12 fixture: %v", err))
		}
	}
	return b.Build()
}

// CompleteBipartite builds K_{m,n}: m queries named q0..q(m-1) fully
// connected to n ads named a0..a(n-1), all weights unit.
func CompleteBipartite(m, n int) *Graph {
	b := NewBuilder()
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if err := b.AddClick(fmt.Sprintf("q%d", i), fmt.Sprintf("a%d", j), 1); err != nil {
				panic(fmt.Sprintf("clickgraph: CompleteBipartite fixture: %v", err))
			}
		}
	}
	return b.Build()
}

// Fig5Left builds the left weighted graph of Figure 5: queries flower and
// orchids each bring 100 clicks to the same ad — equal spread, high
// similarity expected.
func Fig5Left() *Graph {
	return twoQueryOneAd("flower", "orchids", "teleflora.com", 100, 100)
}

// Fig5Right builds the right weighted graph of Figure 5: flower brings
// 190 clicks and teleflora brings 10 to the same ad — high variance,
// lower similarity expected.
func Fig5Right() *Graph {
	return twoQueryOneAd("flower", "teleflora", "teleflora.com", 190, 10)
}

// Fig6Small builds a Figure 6-style pair where both queries bring the same
// small number of clicks to the shared ad.
func Fig6Small() *Graph {
	return twoQueryOneAd("flower", "teleflora", "teleflora.com", 5, 5)
}

// Fig6Large builds a Figure 6-style pair where both queries bring the same
// large number of clicks to the shared ad; with equal spread, more clicks
// should mean more similarity under weighted SimRank's consistency rules.
func Fig6Large() *Graph {
	return twoQueryOneAd("flower", "orchids", "teleflora.com", 100, 100)
}

func twoQueryOneAd(q1, q2, ad string, c1, c2 int64) *Graph {
	b := NewBuilder()
	for _, e := range []struct {
		q string
		c int64
	}{{q1, c1}, {q2, c2}} {
		if err := b.AddEdge(e.q, ad, EdgeWeights{
			Impressions:       e.c * 2,
			Clicks:            e.c,
			ExpectedClickRate: 0.5,
		}); err != nil {
			panic(fmt.Sprintf("clickgraph: fixture: %v", err))
		}
	}
	return b.Build()
}
