package clickgraph

import (
	"testing"
)

// subviewRandomGraph builds a deterministic pseudo-random graph for the
// subview tests (a local copy of the core package's generator idiom).
func subviewRandomGraph(seed uint64, nq, na, edges int) *Graph {
	b := NewBuilder()
	s := seed
	next := func(n int) int {
		s = s*6364136223846793005 + 1442695040888963407
		return int((s >> 33) % uint64(n))
	}
	for i := 0; i < nq; i++ {
		b.AddQuery(testName("q", i))
	}
	for i := 0; i < na; i++ {
		b.AddAd(testName("ad", i))
	}
	for e := 0; e < edges; e++ {
		clicks := int64(next(9) + 1)
		err := b.AddEdge(testName("q", next(nq)), testName("ad", next(na)), EdgeWeights{
			Impressions: clicks * 2, Clicks: clicks,
			ExpectedClickRate: float64(next(100)) / 100,
		})
		if err != nil {
			panic(err)
		}
	}
	return b.Build()
}

func testName(prefix string, i int) string {
	return prefix + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func TestSubviewMatchesInducedSubgraph(t *testing.T) {
	g := subviewRandomGraph(5, 20, 15, 80)
	queryIDs := []int{0, 2, 3, 7, 8, 11, 12, 19}
	adIDs := []int{1, 2, 5, 6, 9, 14}
	want := g.InducedSubgraph(queryIDs, adIDs)
	view, err := NewSubview(g, queryIDs, adIDs)
	if err != nil {
		t.Fatalf("NewSubview: %v", err)
	}
	got := view.Graph
	if got.NumQueries() != want.NumQueries() || got.NumAds() != want.NumAds() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("dims: got %d×%d/%d edges, want %d×%d/%d",
			got.NumQueries(), got.NumAds(), got.NumEdges(),
			want.NumQueries(), want.NumAds(), want.NumEdges())
	}
	// InducedSubgraph interns in list order; checkIDs sorts ascending and
	// the test ids are already ascending, so local ids agree node for node.
	want.Edges(func(q, a int, w EdgeWeights) bool {
		gw, ok := got.EdgeWeightsOf(q, a)
		if !ok {
			t.Fatalf("edge (%d,%d) missing from subview", q, a)
		}
		if gw != w {
			t.Fatalf("edge (%d,%d): weights %+v, want %+v", q, a, gw, w)
		}
		return true
	})
}

func TestSubviewIDMapping(t *testing.T) {
	g := subviewRandomGraph(9, 12, 10, 50)
	// Deliberately unsorted with a duplicate: NewSubview must sort+dedupe.
	view, err := NewSubview(g, []int{7, 1, 4, 1}, []int{9, 0, 3})
	if err != nil {
		t.Fatalf("NewSubview: %v", err)
	}
	wantQ := []int{1, 4, 7}
	if len(view.QueryIDs) != len(wantQ) {
		t.Fatalf("QueryIDs = %v, want %v", view.QueryIDs, wantQ)
	}
	for local, global := range wantQ {
		if view.GlobalQuery(local) != global {
			t.Errorf("GlobalQuery(%d) = %d, want %d", local, view.GlobalQuery(local), global)
		}
		if l, ok := view.LocalQuery(global); !ok || l != local {
			t.Errorf("LocalQuery(%d) = %d,%v, want %d,true", global, l, ok, local)
		}
		if view.Graph.Query(local) != g.Query(global) {
			t.Errorf("query name mismatch at local %d", local)
		}
	}
	if _, ok := view.LocalQuery(5); ok {
		t.Error("LocalQuery(5) should be absent")
	}
	if a, ok := view.LocalAd(3); !ok || view.GlobalAd(a) != 3 {
		t.Errorf("ad mapping roundtrip failed: %d,%v", a, ok)
	}
}

func TestSubviewWholeGraph(t *testing.T) {
	g := subviewRandomGraph(3, 10, 8, 40)
	all := func(n int) []int {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	view, err := NewSubview(g, all(g.NumQueries()), all(g.NumAds()))
	if err != nil {
		t.Fatalf("NewSubview: %v", err)
	}
	if view.Graph.NumEdges() != g.NumEdges() {
		t.Fatalf("whole-graph view lost edges: %d vs %d", view.Graph.NumEdges(), g.NumEdges())
	}
	g.Edges(func(q, a int, w EdgeWeights) bool {
		gw, ok := view.Graph.EdgeWeightsOf(q, a)
		if !ok || gw != w {
			t.Fatalf("edge (%d,%d): %+v,%v want %+v", q, a, gw, ok, w)
		}
		return true
	})
}

func TestSubviewRejectsOutOfRange(t *testing.T) {
	g := subviewRandomGraph(4, 5, 5, 10)
	if _, err := NewSubview(g, []int{0, 5}, nil); err == nil {
		t.Error("accepted out-of-range query id")
	}
	if _, err := NewSubview(g, nil, []int{-1}); err == nil {
		t.Error("accepted negative ad id")
	}
}
