package sparse

import "sync"

// PairFrontier is the flat accumulation structure behind the SimRank
// engines' scatter passes. Where PairTable pays one hash+probe per
// contribution, a frontier buckets contributions by the smaller node index
// into per-row slices and keeps each row as a sorted, duplicate-free
// prefix plus a small unsorted tail:
//
//   - Add binary-searches the prefix (a handful of comparisons over a
//     contiguous int32 array). Scatter streams are heavily duplicated —
//     the same target pair receives one contribution per path through the
//     opposite side, often hundreds — so the overwhelmingly common case
//     is a hit: one in-place +=, no growth, no rehashing, no allocation.
//   - Misses append to the tail. When the tail outgrows a quarter of the
//     prefix it is folded: sort+sum the tail (the same COO→CSR discipline
//     COO.Compile uses, via compactPairs) and linear-merge it into the
//     prefix through a reusable scratch buffer. Fold cost is O(prefix)
//     per O(prefix/4) misses, so even an all-distinct stream pays O(1)
//     amortized moves per contribution.
//
// Compact folds every tail, leaving rows sorted and duplicate-free for
// O(log d) Get, ordered Range, and cheap merge-walk MaxAbsDiff/Prune.
//
// A frontier is reusable: Reset keeps every row's capacity, so an engine
// that ping-pongs two frontiers per side allocates only while row
// capacities are still growing toward the fixpoint's occupancy.
//
// Like PairTable, the diagonal is implicit (Add(i,i) is a no-op) and each
// unordered pair is stored once under its smaller index. Column indices
// are packed to int32 — the same 32-bit-per-side bound PairKey imposes.
//
// A frontier is not safe for concurrent mutation; the parallel engine
// gives each worker a private frontier and merges by disjoint row ranges.
type PairFrontier struct {
	cols   [][]int32
	vals   [][]float64
	sorted []int // per-row length of the sorted duplicate-free prefix
	// scratch backs foldRow's prefix+tail merge, reused across folds.
	scratchC  []int32
	scratchV  []float64
	compacted bool
}

// minFoldTail is the smallest tail worth folding: below it the append path
// is cheaper than any sorting.
const minFoldTail = 16

// NewPairFrontier returns an empty frontier for a side with rows nodes.
// It is not compacted; call Compact (or CompactNormalize) before reads.
func NewPairFrontier(rows int) *PairFrontier {
	return &PairFrontier{
		cols:   make([][]int32, rows),
		vals:   make([][]float64, rows),
		sorted: make([]int, rows),
	}
}

// FrontierFromPairTable builds a compacted frontier holding the same pairs
// as t, for a side with rows nodes.
func FrontierFromPairTable(t *PairTable, rows int) *PairFrontier {
	f := NewPairFrontier(rows)
	t.Range(func(i, j int, v float64) bool {
		f.Add(i, j, v)
		return true
	})
	f.Compact()
	return f
}

// NumRows returns the number of row buckets (the side's node count).
func (f *PairFrontier) NumRows() int { return len(f.cols) }

// Compacted reports whether the frontier is in its read-optimized form.
func (f *PairFrontier) Compacted() bool { return f.compacted }

// Len returns the number of stored cells: distinct pairs plus pending
// tail contributions before Compact, distinct pairs after. O(rows).
func (f *PairFrontier) Len() int {
	n := 0
	for _, row := range f.cols {
		n += len(row)
	}
	return n
}

// Resize re-dimensions the frontier to rows row buckets and empties it,
// keeping as much allocated capacity as possible: shrinking retains the
// out-of-range rows' backing slices for a later re-grow, and growing
// within capacity picks them back up. The shard engine pool uses this to
// run one reusable frontier arena across shards of different sizes.
func (f *PairFrontier) Resize(rows int) {
	if rows <= cap(f.cols) && rows <= cap(f.vals) && rows <= cap(f.sorted) {
		f.cols = f.cols[:rows]
		f.vals = f.vals[:rows]
		f.sorted = f.sorted[:rows]
	} else {
		nc := make([][]int32, rows)
		copy(nc, f.cols)
		nv := make([][]float64, rows)
		copy(nv, f.vals)
		ns := make([]int, rows)
		copy(ns, f.sorted)
		f.cols, f.vals, f.sorted = nc, nv, ns
	}
	f.Reset()
}

// Reset empties the frontier for reuse, keeping every row's capacity.
func (f *PairFrontier) Reset() {
	for r := range f.cols {
		f.cols[r] = f.cols[r][:0]
		f.vals[r] = f.vals[r][:0]
		f.sorted[r] = 0
	}
	f.compacted = false
}

// searchPrefix binary-searches row r's sorted prefix for column c,
// returning the insertion point and whether it is an exact hit.
func (f *PairFrontier) searchPrefix(r int, c int32) (int, bool) {
	cols := f.cols[r]
	lo, hi := 0, f.sorted[r]
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cols[mid] < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < f.sorted[r] && cols[lo] == c
}

// Add accumulates contribution v for the unordered pair (i, j) into the
// bucket of the smaller index. Diagonal pairs are dropped, matching
// PairTable.
func (f *PairFrontier) Add(i, j int, v float64) {
	if i == j {
		return
	}
	if i > j {
		i, j = j, i
	}
	if k, hit := f.searchPrefix(i, int32(j)); hit {
		f.vals[i][k] += v
		return
	}
	f.cols[i] = append(f.cols[i], int32(j))
	f.vals[i] = append(f.vals[i], v)
	f.compacted = false
	m := f.sorted[i]
	if len(f.cols[i])-m >= minFoldTail+m/4 {
		f.foldRow(i)
	}
}

// foldRow merges row r's tail into its sorted prefix: compact the tail in
// place, then linear-merge prefix and tail through the scratch buffer,
// summing keys present in both.
func (f *PairFrontier) foldRow(r int) {
	m := f.sorted[r]
	cols, vals := f.cols[r], f.vals[r]
	if len(cols) == m {
		return
	}
	n := compactPairs(cols[m:], vals[m:])
	tc, tv := cols[m:m+n], vals[m:m+n]
	if m == 0 {
		f.cols[r], f.vals[r] = cols[:n], vals[:n]
		f.sorted[r] = n
		return
	}
	need := m + n
	if cap(f.scratchC) < need {
		f.scratchC = make([]int32, need)
		f.scratchV = make([]float64, need)
	}
	sc, sv := f.scratchC[:need], f.scratchV[:need]
	i, j, w := 0, 0, 0
	for i < m || j < n {
		switch {
		case j >= n || (i < m && cols[i] < tc[j]):
			sc[w], sv[w] = cols[i], vals[i]
			i++
		case i >= m || tc[j] < cols[i]:
			sc[w], sv[w] = tc[j], tv[j]
			j++
		default:
			sc[w], sv[w] = cols[i], vals[i]+tv[j]
			i++
			j++
		}
		w++
	}
	copy(cols[:w], sc[:w])
	copy(vals[:w], sv[:w])
	f.cols[r], f.vals[r] = cols[:w], vals[:w]
	f.sorted[r] = w
}

// Compact folds every pending tail. After it returns, each pair is stored
// once and rows are ascending.
func (f *PairFrontier) Compact() {
	for r := range f.cols {
		f.foldRow(r)
	}
	f.compacted = true
}

// CompactNormalize compacts every row and rewrites each summed pair with
// norm(i, j, sum); pairs for which norm reports false are dropped. This is
// the single pass the engines use to turn raw scatter sums into the next
// iteration's scores without an intermediate table.
func (f *PairFrontier) CompactNormalize(norm func(i, j int, sum float64) (float64, bool)) {
	for r := range f.cols {
		f.foldRow(r)
		f.normalizeRow(r, norm)
	}
	f.compacted = true
}

// normalizeRow filters/rewrites a folded row in place, preserving order.
func (f *PairFrontier) normalizeRow(r int, norm func(i, j int, sum float64) (float64, bool)) {
	if norm == nil {
		return
	}
	cols, vals := f.cols[r], f.vals[r]
	w := 0
	for k := range cols {
		if v, ok := norm(r, int(cols[k]), vals[k]); ok {
			cols[w], vals[w] = cols[k], v
			w++
		}
	}
	f.cols[r], f.vals[r] = cols[:w], vals[:w]
	f.sorted[r] = w
}

// rawCompactNormalizeRow rebuilds row r from an arbitrary cell soup (used
// by the parallel merge after concatenating shard buckets): full sort+sum,
// then normalize. Unlike foldRow it touches no shared scratch, so disjoint
// rows can be processed concurrently.
func (f *PairFrontier) rawCompactNormalizeRow(r int, norm func(i, j int, sum float64) (float64, bool)) {
	n := compactPairs(f.cols[r], f.vals[r])
	f.cols[r], f.vals[r] = f.cols[r][:n], f.vals[r][:n]
	f.sorted[r] = n
	f.normalizeRow(r, norm)
}

// Get returns the stored value for the unordered pair (i, j): a binary
// search of the row's sorted prefix plus a scan of any pending tail (empty
// once compacted).
func (f *PairFrontier) Get(i, j int) (float64, bool) {
	if i == j {
		return 0, false
	}
	if i > j {
		i, j = j, i
	}
	if i >= len(f.cols) {
		return 0, false
	}
	target := int32(j)
	sum, found := 0.0, false
	if k, hit := f.searchPrefix(i, target); hit {
		sum, found = f.vals[i][k], true
	}
	cols, vals := f.cols[i], f.vals[i]
	for k := f.sorted[i]; k < len(cols); k++ {
		if cols[k] == target {
			sum += vals[k]
			found = true
		}
	}
	return sum, found
}

// Range calls fn for every stored cell with i < j, in row-major sorted
// order when compacted. If fn returns false, Range stops.
func (f *PairFrontier) Range(fn func(i, j int, v float64) bool) {
	for r := range f.cols {
		vals := f.vals[r]
		for k, c := range f.cols[r] {
			if !fn(r, int(c), vals[k]) {
				return
			}
		}
	}
}

// RangeRow calls fn for every stored cell (r, j, v) of row r.
func (f *PairFrontier) RangeRow(r int, fn func(j int, v float64) bool) {
	vals := f.vals[r]
	for k, c := range f.cols[r] {
		if !fn(int(c), vals[k]) {
			return
		}
	}
}

// Map rewrites every stored pair's value with fn, dropping pairs for which
// fn reports false. The frontier is compacted first if needed; rows keep
// their sorted order.
func (f *PairFrontier) Map(fn func(i, j int, v float64) (float64, bool)) {
	if !f.compacted {
		f.Compact()
	}
	for r := range f.cols {
		f.normalizeRow(r, fn)
	}
}

// Prune removes every pair whose absolute value is below eps and returns
// how many were removed, mirroring PairTable.Prune. The frontier is
// compacted first if needed.
func (f *PairFrontier) Prune(eps float64) int {
	if !f.compacted {
		f.Compact()
	}
	removed := 0
	for r := range f.cols {
		cols, vals := f.cols[r], f.vals[r]
		w := 0
		for k := range cols {
			if vals[k] < eps && vals[k] > -eps {
				removed++
				continue
			}
			cols[w], vals[w] = cols[k], vals[k]
			w++
		}
		f.cols[r], f.vals[r] = cols[:w], vals[:w]
		f.sorted[r] = w
	}
	return removed
}

// MaxAbsDiff returns the largest |a-b| over the union of both frontiers'
// pairs, treating missing entries as 0 — the convergence measure for
// iterative SimRank. Rows are compared with a linear merge-walk over their
// sorted columns; either frontier is compacted first if needed.
func (f *PairFrontier) MaxAbsDiff(o *PairFrontier) float64 {
	return f.MaxAbsDiffChanged(o, 0, nil)
}

// MaxAbsDiffChanged is MaxAbsDiff with change tracking fused into the same
// merge-walk: when changed is non-nil, every node incident to a pair whose
// |a-b| exceeds tol is marked — both the bucket row and the partner column,
// since a stored pair {i, j} is part of node i's and node j's score rows
// alike. A node left unmarked therefore has every one of its stored pairs
// within tol of the other frontier (exactly equal when tol is 0), which is
// the per-node signal the engines' delta iteration keys row skipping on.
func (f *PairFrontier) MaxAbsDiffChanged(o *PairFrontier, tol float64, changed *Bitset) float64 {
	if !f.compacted {
		f.Compact()
	}
	if !o.compacted {
		o.Compact()
	}
	max := 0.0
	n := len(f.cols)
	if len(o.cols) > n {
		n = len(o.cols)
	}
	for r := 0; r < n; r++ {
		var ac []int32
		var av []float64
		if r < len(f.cols) {
			ac, av = f.cols[r], f.vals[r]
		}
		var bc []int32
		var bv []float64
		if r < len(o.cols) {
			bc, bv = o.cols[r], o.vals[r]
		}
		i, j := 0, 0
		for i < len(ac) || j < len(bc) {
			var d float64
			var c int32
			switch {
			case j >= len(bc) || (i < len(ac) && ac[i] < bc[j]):
				d, c = av[i], ac[i]
				i++
			case i >= len(ac) || bc[j] < ac[i]:
				d, c = bv[j], bc[j]
				j++
			default:
				d, c = av[i]-bv[j], ac[i]
				i++
				j++
			}
			if d < 0 {
				d = -d
			}
			if d > max {
				max = d
			}
			if changed != nil && d > tol {
				changed.Set(r)
				changed.Set(int(c))
			}
		}
	}
	return max
}

// SetRow replaces row r's cells with the given columns and values, which
// must be duplicate-free with every column > r; order may be arbitrary
// (SetRow sorts in place after copying). The slices are copied, not
// retained, so callers can reuse them. Distinct rows may be set
// concurrently. The row-major passes use this to emit each computed row
// straight into the frontier.
func (f *PairFrontier) SetRow(r int, cols []int32, vals []float64) {
	rc := append(f.cols[r][:0], cols...)
	rv := append(f.vals[r][:0], vals...)
	sortPairs(rc, rv)
	f.cols[r], f.vals[r] = rc, rv
	f.sorted[r] = len(rc)
}

// SetSortedRow is SetRow for columns that are already strictly ascending:
// the copy is kept but the sort is skipped. The harvest loops emit rows in
// sorted order (they walk a sorted touched list), so this removes the
// per-row sortPairs that dominated SetRow's cost.
func (f *PairFrontier) SetSortedRow(r int, cols []int32, vals []float64) {
	f.cols[r] = append(f.cols[r][:0], cols...)
	f.vals[r] = append(f.vals[r][:0], vals...)
	f.sorted[r] = len(cols)
}

// CopyRowFrom replaces row r of f with row r of src, reusing f's row
// capacity. Distinct rows may be copied concurrently, like SetRow. The
// delta iteration uses it to carry an output row forward when none of the
// inputs it depends on changed.
func (f *PairFrontier) CopyRowFrom(src *PairFrontier, r int) {
	f.cols[r] = append(f.cols[r][:0], src.cols[r]...)
	f.vals[r] = append(f.vals[r][:0], src.vals[r]...)
	f.sorted[r] = src.sorted[r]
}

// SymAdj is the fully-expanded symmetric adjacency of a pair frontier:
// CSR-style partner lists where each stored pair {i, j} appears in both
// row i and row j (the diagonal stays implicit). The SimRank row-major
// passes read it to gather all partners of a node in one contiguous scan.
type SymAdj struct {
	RowPtr []int
	Col    []int32
	Val    []float64

	next []int // fill cursor, kept for reuse
}

// RowNNZ returns the number of partners of node r.
func (s *SymAdj) RowNNZ(r int) int { return s.RowPtr[r+1] - s.RowPtr[r] }

// Row returns node r's partner columns and values (ascending columns).
// The slices alias the adjacency's storage; callers must not mutate them.
func (s *SymAdj) Row(r int) ([]int32, []float64) {
	lo, hi := s.RowPtr[r], s.RowPtr[r+1]
	return s.Col[lo:hi], s.Val[lo:hi]
}

// ExpandSymmetric writes f's symmetric adjacency into dst (allocating one
// if nil), reusing dst's buffers when they are large enough, and returns
// it. The frontier is compacted first if needed. Rows come out with
// ascending columns.
func (f *PairFrontier) ExpandSymmetric(dst *SymAdj) *SymAdj {
	if !f.compacted {
		f.Compact()
	}
	if dst == nil {
		dst = &SymAdj{}
	}
	n := len(f.cols)
	if cap(dst.RowPtr) < n+1 {
		dst.RowPtr = make([]int, n+1)
		dst.next = make([]int, n)
	}
	ptr := dst.RowPtr[:n+1]
	next := dst.next[:n]
	for i := range ptr {
		ptr[i] = 0
	}
	for r, row := range f.cols {
		ptr[r+1] += len(row)
		for _, c := range row {
			ptr[int(c)+1]++
		}
	}
	for i := 0; i < n; i++ {
		ptr[i+1] += ptr[i]
	}
	nnz := ptr[n]
	if cap(dst.Col) < nnz {
		dst.Col = make([]int32, nnz)
		dst.Val = make([]float64, nnz)
	}
	col, val := dst.Col[:nnz], dst.Val[:nnz]
	copy(next, ptr[:n])
	// Scanning rows in ascending order emits, for every node m, first its
	// partners below m (as their rows are scanned) and then its own row's
	// partners above m — each batch ascending, so rows are sorted for free.
	for r, row := range f.cols {
		vals := f.vals[r]
		for k, c := range row {
			p := next[r]
			col[p], val[p] = c, vals[k]
			next[r]++
			q := next[int(c)]
			col[q], val[q] = int32(r), vals[k]
			next[int(c)]++
		}
	}
	dst.RowPtr, dst.Col, dst.Val, dst.next = ptr, col, val, next
	return dst
}

// ToPairTable converts the frontier into an equivalent PairTable (the
// package's public result representation). Pending tails are folded first.
func (f *PairFrontier) ToPairTable() *PairTable {
	if !f.compacted {
		f.Compact()
	}
	t := NewPairTable(f.Len())
	f.Range(func(i, j int, v float64) bool {
		t.Set(i, j, v)
		return true
	})
	return t
}

// SplitByWeight partitions [0, len(weights)) into parts contiguous ranges
// of roughly equal total weight, returned as parts+1 bounds. Both the
// frontier shard merge and the engine's row-parallel passes use it to
// balance work, not row counts, across workers.
func SplitByWeight(weights []int, parts int) []int {
	n := len(weights)
	total := 0
	for _, w := range weights {
		total += w
	}
	bounds := make([]int, parts+1)
	bounds[parts] = n
	r, acc := 0, 0
	for k := 1; k < parts; k++ {
		goal := total * k / parts
		for r < n && acc < goal {
			acc += weights[r]
			r++
		}
		bounds[k] = r
	}
	return bounds
}

// ParallelMergeNormalize merges the shards' accumulated contributions into
// dst, compacts, and applies norm (which may be nil), with the row space
// sharded across workers by contribution weight. Each worker owns a
// contiguous, disjoint row range — per-row: concatenate every shard's
// bucket, sort+sum in place, normalize — so no locks are needed and the
// serial merge bottleneck of a table-based shard reduction disappears.
// All shards must have dst's row count. dst is reset first and is
// compacted when the call returns.
func ParallelMergeNormalize(dst *PairFrontier, shards []*PairFrontier, workers int, norm func(i, j int, sum float64) (float64, bool)) {
	dst.Reset()
	n := len(dst.cols)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	// Weight rows by total incoming cells so ranges balance work, not rows.
	weights := make([]int, n)
	for _, s := range shards {
		for r := 0; r < n; r++ {
			weights[r] += len(s.cols[r])
		}
	}
	bounds := SplitByWeight(weights, workers)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		lo, hi := bounds[k], bounds[k+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for r := lo; r < hi; r++ {
				if need := weights[r]; cap(dst.cols[r]) < need {
					dst.cols[r] = make([]int32, 0, need)
					dst.vals[r] = make([]float64, 0, need)
				}
				for _, s := range shards {
					dst.cols[r] = append(dst.cols[r], s.cols[r]...)
					dst.vals[r] = append(dst.vals[r], s.vals[r]...)
				}
				dst.rawCompactNormalizeRow(r, norm)
			}
		}(lo, hi)
	}
	wg.Wait()
	dst.compacted = true
}
