package sparse

// This file holds the shared, non-allocating sort used everywhere the
// package orders a (column, value) pair of parallel slices: CSR row
// normalization and PairFrontier compaction. The previous sort.Sort path
// allocated an interface header per row and paid dynamic dispatch per
// comparison; this one is a plain three-way quicksort specialized to the
// two-slice layout.

// insertionCutoff is the subarray size below which sortPairs switches to
// insertion sort. Click-graph rows are mostly tiny, so the cutoff branch
// is the common case.
const insertionCutoff = 16

// sortPairs sorts cols ascending, permuting vals in lockstep. It allocates
// nothing: three-way (Dutch-flag) partitioning handles the duplicate-heavy
// rows frontier compaction produces without quadratic blowup, recursion on
// the smaller partition bounds stack depth at O(log n), and small runs use
// insertion sort.
func sortPairs[C ~int32 | ~int](cols []C, vals []float64) {
	for len(cols) > insertionCutoff {
		n := len(cols)
		// Median-of-three pivot from the first, middle and last elements.
		m := n / 2
		if cols[m] < cols[0] {
			cols[0], cols[m] = cols[m], cols[0]
			vals[0], vals[m] = vals[m], vals[0]
		}
		if cols[n-1] < cols[0] {
			cols[0], cols[n-1] = cols[n-1], cols[0]
			vals[0], vals[n-1] = vals[n-1], vals[0]
		}
		if cols[n-1] < cols[m] {
			cols[m], cols[n-1] = cols[n-1], cols[m]
			vals[m], vals[n-1] = vals[n-1], vals[m]
		}
		pivot := cols[m]
		// Three-way partition: [0,lt) < pivot, [lt,k) == pivot, (gt,n) > pivot.
		lt, gt, k := 0, n-1, 0
		for k <= gt {
			switch {
			case cols[k] < pivot:
				cols[k], cols[lt] = cols[lt], cols[k]
				vals[k], vals[lt] = vals[lt], vals[k]
				lt++
				k++
			case cols[k] > pivot:
				cols[k], cols[gt] = cols[gt], cols[k]
				vals[k], vals[gt] = vals[gt], vals[k]
				gt--
			default:
				k++
			}
		}
		// Recurse into the smaller side, loop on the larger.
		if lt < n-(gt+1) {
			sortPairs(cols[:lt], vals[:lt])
			cols, vals = cols[gt+1:], vals[gt+1:]
		} else {
			sortPairs(cols[gt+1:], vals[gt+1:])
			cols, vals = cols[:lt], vals[:lt]
		}
	}
	for i := 1; i < len(cols); i++ {
		c, v := cols[i], vals[i]
		j := i - 1
		for j >= 0 && cols[j] > c {
			cols[j+1], vals[j+1] = cols[j], vals[j]
			j--
		}
		cols[j+1], vals[j+1] = c, v
	}
}

// compactPairs sorts cols ascending (moving vals in lockstep) and sums the
// values of duplicate columns in place, returning the compacted length —
// the COO→CSR duplicate-merging discipline as a reusable primitive.
func compactPairs[C ~int32 | ~int](cols []C, vals []float64) int {
	if len(cols) == 0 {
		return 0
	}
	sortPairs(cols, vals)
	w := 0
	for r := 1; r < len(cols); r++ {
		if cols[r] == cols[w] {
			vals[w] += vals[r]
			continue
		}
		w++
		cols[w] = cols[r]
		vals[w] = vals[r]
	}
	return w + 1
}
