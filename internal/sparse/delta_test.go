package sparse

import (
	"math"
	"testing"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	if b.Count() != 0 {
		t.Fatalf("fresh bitset Count = %d", b.Count())
	}
	for _, i := range []int{0, 63, 64, 129} {
		if b.Has(i) {
			t.Fatalf("fresh bitset has bit %d", i)
		}
		b.Set(i)
		if !b.Has(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	b.Set(64) // idempotent
	if b.Count() != 4 {
		t.Fatalf("Count = %d want 4", b.Count())
	}
	b.Clear()
	if b.Count() != 0 || b.Has(63) {
		t.Fatal("Clear left bits behind")
	}
}

// TestMaxAbsDiffChangedMarks differentially checks the fused change
// tracking against a brute-force recomputation over the pair union: a
// node is marked iff some pair involving it differs by more than tol.
func TestMaxAbsDiffChangedMarks(t *testing.T) {
	rng := lcg(11)
	const rows = 16
	for trial := 0; trial < 100; trial++ {
		a := NewPairFrontier(rows)
		b := NewPairFrontier(rows)
		for k := 0; k < 60; k++ {
			i, j := rng.next(rows), rng.next(rows)
			if i == j {
				continue
			}
			switch rng.next(3) {
			case 0:
				a.Add(i, j, rng.float())
			case 1:
				b.Add(i, j, rng.float())
			default:
				v := rng.float()
				a.Add(i, j, v)
				b.Add(i, j, v) // equal cell: must not mark at any tol
			}
		}
		a.Compact()
		b.Compact()
		diff := map[[2]int]float64{}
		a.Range(func(i, j int, v float64) bool {
			diff[[2]int{i, j}] += v
			return true
		})
		b.Range(func(i, j int, v float64) bool {
			diff[[2]int{i, j}] -= v
			return true
		})
		for _, tol := range []float64{0, 0.5, 5} {
			wantMax := 0.0
			wantMark := make([]bool, rows)
			for p, d := range diff {
				ad := math.Abs(d)
				if ad > wantMax {
					wantMax = ad
				}
				if ad > tol {
					wantMark[p[0]] = true
					wantMark[p[1]] = true
				}
			}
			changed := NewBitset(rows)
			got := a.MaxAbsDiffChanged(b, tol, changed)
			if math.Abs(got-wantMax) > 1e-12 {
				t.Fatalf("trial %d tol %g: max %v want %v", trial, tol, got, wantMax)
			}
			for r := 0; r < rows; r++ {
				if changed.Has(r) != wantMark[r] {
					t.Fatalf("trial %d tol %g: node %d marked=%v want %v", trial, tol, r, changed.Has(r), wantMark[r])
				}
			}
			// And the nil-bitset form must agree with plain MaxAbsDiff.
			if d := a.MaxAbsDiffChanged(b, tol, nil); d != got {
				t.Fatalf("trial %d: nil-bitset diff %v vs %v", trial, d, got)
			}
		}
	}
}

func TestSetSortedRowMatchesSetRow(t *testing.T) {
	rng := lcg(23)
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.next(30)
		cols := make([]int32, 0, n)
		vals := make([]float64, 0, n)
		c := 1
		for len(cols) < n {
			c += 1 + rng.next(5)
			cols = append(cols, int32(c))
			vals = append(vals, rng.float())
		}
		a := NewPairFrontier(40 + c)
		b := NewPairFrontier(40 + c)
		a.SetRow(0, cols, vals)
		b.SetSortedRow(0, cols, vals)
		a.Compact()
		b.Compact()
		if d := a.MaxAbsDiff(b); d != 0 {
			t.Fatalf("trial %d: SetSortedRow differs from SetRow by %v", trial, d)
		}
	}
}

func TestCopyRowFrom(t *testing.T) {
	src := NewPairFrontier(6)
	src.Add(1, 3, 0.5)
	src.Add(1, 5, 0.25)
	src.Add(2, 4, 1.5)
	src.Compact()
	dst := NewPairFrontier(6)
	dst.Add(1, 2, 9) // overwritten by the copy
	dst.Compact()
	dst.CopyRowFrom(src, 1)
	dst.CopyRowFrom(src, 2)
	dst.CopyRowFrom(src, 3) // empty row copies as empty
	if v, ok := dst.Get(1, 3); !ok || v != 0.5 {
		t.Fatalf("Get(1,3) = %v,%v", v, ok)
	}
	if v, ok := dst.Get(1, 5); !ok || v != 0.25 {
		t.Fatalf("Get(1,5) = %v,%v", v, ok)
	}
	if v, ok := dst.Get(2, 4); !ok || v != 1.5 {
		t.Fatalf("Get(2,4) = %v,%v", v, ok)
	}
	if _, ok := dst.Get(1, 2); ok {
		t.Fatal("stale cell survived CopyRowFrom")
	}
	if dst.Len() != 3 {
		t.Fatalf("Len = %d want 3", dst.Len())
	}
	// The copy must not alias src's storage.
	dst.Map(func(i, j int, v float64) (float64, bool) { return v * 2, true })
	if v, _ := src.Get(1, 3); v != 0.5 {
		t.Fatalf("mutating the copy changed src: %v", v)
	}
}

func TestSymAdjRow(t *testing.T) {
	f := NewPairFrontier(5)
	f.Add(0, 2, 1)
	f.Add(2, 4, 3)
	f.Compact()
	s := f.ExpandSymmetric(nil)
	cols, vals := s.Row(2)
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 4 || vals[0] != 1 || vals[1] != 3 {
		t.Fatalf("Row(2) = %v %v", cols, vals)
	}
	if cols, _ := s.Row(1); len(cols) != 0 {
		t.Fatalf("Row(1) = %v, want empty", cols)
	}
}
