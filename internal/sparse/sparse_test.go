package sparse

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCOOCompileBasic(t *testing.T) {
	m := NewCOO(3, 4)
	entries := []Entry{{0, 1, 2}, {2, 3, 5}, {0, 0, 1}, {1, 2, -3}}
	for _, e := range entries {
		if err := m.Append(e.Row, e.Col, e.Val); err != nil {
			t.Fatalf("Append(%v): %v", e, err)
		}
	}
	c := m.Compile()
	if r, col := c.Dims(); r != 3 || col != 4 {
		t.Fatalf("Dims = %d,%d want 3,4", r, col)
	}
	if c.NNZ() != 4 {
		t.Fatalf("NNZ = %d want 4", c.NNZ())
	}
	for _, e := range entries {
		if got := c.At(e.Row, e.Col); got != e.Val {
			t.Errorf("At(%d,%d) = %v want %v", e.Row, e.Col, got, e.Val)
		}
	}
	if got := c.At(2, 0); got != 0 {
		t.Errorf("At(2,0) = %v want 0", got)
	}
}

func TestCOOAppendOutOfRange(t *testing.T) {
	m := NewCOO(2, 2)
	for _, rc := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		if err := m.Append(rc[0], rc[1], 1); err == nil {
			t.Errorf("Append(%d,%d) accepted out-of-range entry", rc[0], rc[1])
		}
	}
}

func TestCOODuplicatesSum(t *testing.T) {
	m := NewCOO(2, 2)
	for i := 0; i < 3; i++ {
		if err := m.Append(1, 1, 2.5); err != nil {
			t.Fatal(err)
		}
	}
	c := m.Compile()
	if got := c.At(1, 1); got != 7.5 {
		t.Errorf("duplicate sum = %v want 7.5", got)
	}
	if c.NNZ() != 1 {
		t.Errorf("NNZ after merge = %d want 1", c.NNZ())
	}
}

func TestCSRRowsSorted(t *testing.T) {
	m := NewCOO(1, 5)
	for _, col := range []int{4, 0, 3, 1} {
		if err := m.Append(0, col, float64(col)); err != nil {
			t.Fatal(err)
		}
	}
	c := m.Compile()
	cols, vals := c.Row(0)
	for i := 1; i < len(cols); i++ {
		if cols[i-1] >= cols[i] {
			t.Fatalf("row not sorted: %v", cols)
		}
	}
	for i, col := range cols {
		if vals[i] != float64(col) {
			t.Errorf("value misaligned at col %d: %v", col, vals[i])
		}
	}
}

func TestCSRTranspose(t *testing.T) {
	m := NewCOO(3, 2)
	data := []Entry{{0, 0, 1}, {0, 1, 2}, {1, 1, 3}, {2, 0, 4}}
	for _, e := range data {
		if err := m.Append(e.Row, e.Col, e.Val); err != nil {
			t.Fatal(err)
		}
	}
	tr := m.Compile().Transpose()
	if r, c := tr.Dims(); r != 2 || c != 3 {
		t.Fatalf("transpose dims = %d,%d want 2,3", r, c)
	}
	for _, e := range data {
		if got := tr.At(e.Col, e.Row); got != e.Val {
			t.Errorf("transpose At(%d,%d) = %v want %v", e.Col, e.Row, got, e.Val)
		}
	}
}

func TestCSRTransposeInvolution(t *testing.T) {
	check := func(seed uint64) bool {
		// Build a pseudo-random small matrix from the seed.
		rows, cols := int(seed%5)+1, int((seed/5)%5)+1
		m := NewCOO(rows, cols)
		s := seed
		for i := 0; i < 12; i++ {
			s = s*6364136223846793005 + 1442695040888963407
			r := int((s >> 33) % uint64(rows))
			c := int((s >> 13) % uint64(cols))
			if err := m.Append(r, c, float64(i)); err != nil {
				return false
			}
		}
		a := m.Compile()
		b := a.Transpose().Transpose()
		if a.NNZ() != b.NNZ() {
			return false
		}
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if a.At(r, c) != b.At(r, c) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestCSRMulVec(t *testing.T) {
	m := NewCOO(2, 3)
	// [1 2 0; 0 0 3]
	for _, e := range []Entry{{0, 0, 1}, {0, 1, 2}, {1, 2, 3}} {
		if err := m.Append(e.Row, e.Col, e.Val); err != nil {
			t.Fatal(err)
		}
	}
	c := m.Compile()
	y, err := c.MulVec([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 5 || y[1] != 9 {
		t.Errorf("MulVec = %v want [5 9]", y)
	}
	if _, err := c.MulVec([]float64{1}); err == nil {
		t.Error("MulVec accepted wrong-length vector")
	}
}

func TestCSRRowSumsAndScale(t *testing.T) {
	m := NewCOO(2, 2)
	for _, e := range []Entry{{0, 0, 1}, {0, 1, 2}, {1, 0, 3}} {
		if err := m.Append(e.Row, e.Col, e.Val); err != nil {
			t.Fatal(err)
		}
	}
	c := m.Compile()
	sums := c.RowSums()
	if sums[0] != 3 || sums[1] != 3 {
		t.Errorf("RowSums = %v want [3 3]", sums)
	}
	s := c.Scale(2)
	if s.At(0, 1) != 4 || c.At(0, 1) != 2 {
		t.Errorf("Scale mutated original or failed: %v %v", s.At(0, 1), c.At(0, 1))
	}
}

func TestPairKeyRoundTrip(t *testing.T) {
	check := func(a, b uint32) bool {
		i, j := int(a%1000000), int(b%1000000)
		k := PairKey(i, j)
		x, y := UnpackPair(k)
		lo, hi := i, j
		if lo > hi {
			lo, hi = hi, lo
		}
		return x == lo && y == hi && k == PairKey(j, i)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestPairTableBasics(t *testing.T) {
	pt := NewPairTable(0)
	pt.Set(3, 1, 0.5)
	if v, ok := pt.Get(1, 3); !ok || v != 0.5 {
		t.Errorf("Get(1,3) = %v,%v want 0.5,true", v, ok)
	}
	pt.Add(1, 3, 0.25)
	if v, _ := pt.Get(3, 1); v != 0.75 {
		t.Errorf("after Add, Get = %v want 0.75", v)
	}
	// Diagonal is a no-op.
	pt.Set(2, 2, 9)
	if v, ok := pt.Get(2, 2); ok || v != 0 {
		t.Errorf("diagonal stored: %v %v", v, ok)
	}
	pt.Delete(1, 3)
	if _, ok := pt.Get(1, 3); ok {
		t.Error("Delete did not remove pair")
	}
}

func TestPairTablePrune(t *testing.T) {
	pt := NewPairTable(0)
	pt.Set(0, 1, 0.5)
	pt.Set(0, 2, 1e-9)
	pt.Set(1, 2, -1e-9)
	if removed := pt.Prune(1e-6); removed != 2 {
		t.Errorf("Prune removed %d want 2", removed)
	}
	if pt.Len() != 1 {
		t.Errorf("Len after prune = %d want 1", pt.Len())
	}
}

func TestPairTableMaxAbsDiff(t *testing.T) {
	a, b := NewPairTable(0), NewPairTable(0)
	a.Set(0, 1, 0.5)
	b.Set(0, 1, 0.4)
	b.Set(0, 2, 0.3) // only in b
	if d := a.MaxAbsDiff(b); math.Abs(d-0.3) > 1e-15 {
		t.Errorf("MaxAbsDiff = %v want 0.3", d)
	}
	if d := b.MaxAbsDiff(a); math.Abs(d-0.3) > 1e-15 {
		t.Errorf("MaxAbsDiff not symmetric: %v", d)
	}
	if d := a.MaxAbsDiff(a.Clone()); d != 0 {
		t.Errorf("self diff = %v want 0", d)
	}
}

func TestPairTableTopKFor(t *testing.T) {
	pt := NewPairTable(0)
	pt.Set(0, 1, 0.9)
	pt.Set(0, 2, 0.5)
	pt.Set(0, 3, 0.9) // tie with node 1; smaller id wins
	pt.Set(2, 3, 0.7) // unrelated to node 0
	top := pt.TopKFor(0, 2)
	if len(top) != 2 || top[0].Node != 1 || top[1].Node != 3 {
		t.Errorf("TopKFor(0,2) = %+v want nodes [1 3]", top)
	}
	all := pt.TopKFor(0, -1)
	if len(all) != 3 {
		t.Errorf("TopKFor(0,-1) returned %d want 3", len(all))
	}
	if len(pt.TopKFor(9, 5)) != 0 {
		t.Error("TopKFor of absent node should be empty")
	}
}

func TestPairTableRangeStops(t *testing.T) {
	pt := NewPairTable(0)
	for i := 0; i < 10; i++ {
		pt.Set(i, i+1, 1)
	}
	n := 0
	pt.Range(func(i, j int, v float64) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("Range visited %d pairs after early stop, want 3", n)
	}
}
