// Package sparse implements the hand-rolled sparse linear algebra this
// repository is built on: coordinate (COO) and compressed-sparse-row (CSR)
// matrices, sparse vectors, and a packed pair-score table used by the
// large-graph SimRank engines. Everything is stdlib-only and allocation
// conscious: CSR rows are contiguous slices, and the pair table keys
// (i, j) node pairs into a single uint64.
package sparse

import (
	"fmt"
	"sort"
)

// Entry is one nonzero of a COO matrix.
type Entry struct {
	Row, Col int
	Val      float64
}

// COO is a coordinate-format sparse matrix builder. It is the mutable
// staging structure: append entries in any order, then compile to CSR for
// fast row traversal. Duplicate (row, col) entries are summed at compile
// time, matching the usual COO→CSR semantics.
type COO struct {
	rows, cols int
	entries    []Entry
}

// NewCOO returns an empty rows×cols COO matrix. It panics if either
// dimension is negative (a programming error, not an input error).
func NewCOO(rows, cols int) *COO {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("sparse: negative dimensions %dx%d", rows, cols))
	}
	return &COO{rows: rows, cols: cols}
}

// Dims returns the matrix dimensions.
func (m *COO) Dims() (rows, cols int) { return m.rows, m.cols }

// NNZ returns the number of stored entries (before duplicate merging).
func (m *COO) NNZ() int { return len(m.entries) }

// Append adds value v at (r, c). It returns an error if the coordinates are
// out of range. Zero values are stored too; callers that want them dropped
// should skip them (CSR compilation keeps explicit zeros so that graph
// edges with zero weight remain structurally present).
func (m *COO) Append(r, c int, v float64) error {
	if r < 0 || r >= m.rows || c < 0 || c >= m.cols {
		return fmt.Errorf("sparse: entry (%d,%d) outside %dx%d matrix", r, c, m.rows, m.cols)
	}
	m.entries = append(m.entries, Entry{Row: r, Col: c, Val: v})
	return nil
}

// CSR is a compressed-sparse-row matrix: RowPtr has rows+1 offsets into
// ColIdx/Val. Immutable after construction.
type CSR struct {
	rows, cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64
}

// Compile converts the COO matrix to CSR, summing duplicate coordinates and
// sorting each row's columns ascending.
func (m *COO) Compile() *CSR {
	counts := make([]int, m.rows+1)
	for _, e := range m.entries {
		counts[e.Row+1]++
	}
	for i := 0; i < m.rows; i++ {
		counts[i+1] += counts[i]
	}
	colIdx := make([]int, len(m.entries))
	val := make([]float64, len(m.entries))
	next := make([]int, m.rows)
	copy(next, counts[:m.rows])
	for _, e := range m.entries {
		p := next[e.Row]
		colIdx[p] = e.Col
		val[p] = e.Val
		next[e.Row]++
	}
	c := &CSR{rows: m.rows, cols: m.cols, RowPtr: counts, ColIdx: colIdx, Val: val}
	c.normalizeRows()
	return c
}

// normalizeRows sorts columns within each row and merges duplicates in
// place, shrinking the arrays if merging removed entries.
func (c *CSR) normalizeRows() {
	outPtr := make([]int, len(c.RowPtr))
	w := 0
	for r := 0; r < c.rows; r++ {
		lo, hi := c.RowPtr[r], c.RowPtr[r+1]
		sortPairs(c.ColIdx[lo:hi], c.Val[lo:hi])
		outPtr[r] = w
		for i := lo; i < hi; i++ {
			if w > outPtr[r] && c.ColIdx[w-1] == c.ColIdx[i] {
				c.Val[w-1] += c.Val[i]
				continue
			}
			c.ColIdx[w] = c.ColIdx[i]
			c.Val[w] = c.Val[i]
			w++
		}
	}
	outPtr[c.rows] = w
	c.RowPtr = outPtr
	c.ColIdx = c.ColIdx[:w]
	c.Val = c.Val[:w]
}

// NewCSR wraps prebuilt CSR arrays without copying. rowPtr must have
// rows+1 ascending offsets into colIdx/val, and each row's columns must be
// ascending and duplicate-free — the invariants Compile establishes. It is
// for construction paths that already produce compiled form (e.g. induced
// subgraph extraction slicing a parent CSR) and panics on malformed
// dimensions, treating them as programming errors like NewCOO does.
func NewCSR(rows, cols int, rowPtr, colIdx []int, val []float64) *CSR {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("sparse: negative dimensions %dx%d", rows, cols))
	}
	if len(rowPtr) != rows+1 || len(colIdx) != len(val) || rowPtr[rows] != len(colIdx) {
		panic(fmt.Sprintf("sparse: inconsistent CSR arrays: rows=%d len(rowPtr)=%d len(colIdx)=%d len(val)=%d",
			rows, len(rowPtr), len(colIdx), len(val)))
	}
	return &CSR{rows: rows, cols: cols, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
}

// Dims returns the matrix dimensions.
func (c *CSR) Dims() (rows, cols int) { return c.rows, c.cols }

// NNZ returns the number of stored nonzeros.
func (c *CSR) NNZ() int { return len(c.ColIdx) }

// Row returns the column indices and values of row r as shared slices.
// Callers must not mutate them.
func (c *CSR) Row(r int) (cols []int, vals []float64) {
	lo, hi := c.RowPtr[r], c.RowPtr[r+1]
	return c.ColIdx[lo:hi], c.Val[lo:hi]
}

// RowNNZ returns the number of nonzeros in row r.
func (c *CSR) RowNNZ(r int) int { return c.RowPtr[r+1] - c.RowPtr[r] }

// At returns the value at (r, c2), 0 if not stored. O(log row-nnz).
func (c *CSR) At(r, c2 int) float64 {
	lo, hi := c.RowPtr[r], c.RowPtr[r+1]
	cols := c.ColIdx[lo:hi]
	i := sort.SearchInts(cols, c2)
	if i < len(cols) && cols[i] == c2 {
		return c.Val[lo+i]
	}
	return 0
}

// Transpose returns the CSC-equivalent: a CSR matrix of the transpose.
func (c *CSR) Transpose() *CSR {
	counts := make([]int, c.cols+1)
	for _, col := range c.ColIdx {
		counts[col+1]++
	}
	for i := 0; i < c.cols; i++ {
		counts[i+1] += counts[i]
	}
	colIdx := make([]int, len(c.ColIdx))
	val := make([]float64, len(c.Val))
	next := make([]int, c.cols)
	copy(next, counts[:c.cols])
	for r := 0; r < c.rows; r++ {
		for p := c.RowPtr[r]; p < c.RowPtr[r+1]; p++ {
			col := c.ColIdx[p]
			q := next[col]
			colIdx[q] = r
			val[q] = c.Val[p]
			next[col]++
		}
	}
	// Rows of the transpose are already sorted because we scanned source
	// rows in ascending order.
	return &CSR{rows: c.cols, cols: c.rows, RowPtr: counts, ColIdx: colIdx, Val: val}
}

// MulVec computes y = c * x. It returns an error on dimension mismatch.
func (c *CSR) MulVec(x []float64) ([]float64, error) {
	if len(x) != c.cols {
		return nil, fmt.Errorf("sparse: MulVec dimension mismatch: matrix %dx%d, vector %d", c.rows, c.cols, len(x))
	}
	y := make([]float64, c.rows)
	for r := 0; r < c.rows; r++ {
		sum := 0.0
		for p := c.RowPtr[r]; p < c.RowPtr[r+1]; p++ {
			sum += c.Val[p] * x[c.ColIdx[p]]
		}
		y[r] = sum
	}
	return y, nil
}

// RowSums returns the sum of each row's values.
func (c *CSR) RowSums() []float64 {
	out := make([]float64, c.rows)
	for r := 0; r < c.rows; r++ {
		s := 0.0
		for p := c.RowPtr[r]; p < c.RowPtr[r+1]; p++ {
			s += c.Val[p]
		}
		out[r] = s
	}
	return out
}

// Scale returns a copy of c with every value multiplied by f.
func (c *CSR) Scale(f float64) *CSR {
	out := &CSR{
		rows:   c.rows,
		cols:   c.cols,
		RowPtr: append([]int(nil), c.RowPtr...),
		ColIdx: append([]int(nil), c.ColIdx...),
		Val:    make([]float64, len(c.Val)),
	}
	for i, v := range c.Val {
		out.Val[i] = v * f
	}
	return out
}
