package sparse

import (
	"sort"
	"sync"
	"sync/atomic"
)

// PairKey packs an unordered node pair into a single uint64 map key with the
// smaller index in the high word. Both indices must fit in 32 bits, which
// bounds graphs at ~4.3 billion nodes per side — far beyond what the
// SimRank engines can iterate anyway.
func PairKey(i, j int) uint64 {
	if i > j {
		i, j = j, i
	}
	return uint64(uint32(i))<<32 | uint64(uint32(j))
}

// UnpackPair inverts PairKey, returning i <= j.
func UnpackPair(k uint64) (i, j int) {
	return int(k >> 32), int(uint32(k))
}

// PairTable stores symmetric pair scores sparsely: score(i,j) == score(j,i)
// is stored once under PairKey(i,j). Diagonal entries (i,i) are implicit and
// fixed by the caller (SimRank defines s(x,x)=1) — Get never consults the
// table for them; callers handle the diagonal explicitly.
//
// The zero value is not usable; construct with NewPairTable.
type PairTable struct {
	m map[uint64]float64
	// idx, when set, maps each node to its partners sorted by
	// descending score — the serving-path index behind TopKFor. Any
	// mutation invalidates it; EnsureIndex rebuilds on demand. The
	// atomic pointer plus build mutex let concurrent read-only servers
	// trigger and use the build safely; mutation remains (as for the
	// rest of PairTable) not concurrency-safe.
	idx   atomic.Pointer[partnerIndex]
	idxMu sync.Mutex
}

type partnerIndex map[int][]Scored

// NewPairTable returns an empty table with capacity hint n.
func NewPairTable(n int) *PairTable {
	return &PairTable{m: make(map[uint64]float64, n)}
}

// Len returns the number of stored off-diagonal pairs.
func (t *PairTable) Len() int { return len(t.m) }

// Get returns the stored score for the unordered pair (i, j) and whether it
// was present. Get(i, i) always reports (0, false): the diagonal is the
// caller's invariant, not table state.
func (t *PairTable) Get(i, j int) (float64, bool) {
	if i == j {
		return 0, false
	}
	v, ok := t.m[PairKey(i, j)]
	return v, ok
}

// Set stores score v for the unordered pair (i, j). Setting a diagonal pair
// is a no-op: the diagonal is implicit.
func (t *PairTable) Set(i, j int, v float64) {
	if i == j {
		return
	}
	t.idx.Store(nil)
	t.m[PairKey(i, j)] = v
}

// Add accumulates v into the score of the unordered pair (i, j).
func (t *PairTable) Add(i, j int, v float64) {
	if i == j {
		return
	}
	t.idx.Store(nil)
	t.m[PairKey(i, j)] += v
}

// Delete removes the pair (i, j) if present.
func (t *PairTable) Delete(i, j int) {
	t.idx.Store(nil)
	delete(t.m, PairKey(i, j))
}

// Range calls fn for every stored pair with i < j. Iteration order is
// unspecified. If fn returns false, Range stops.
func (t *PairTable) Range(fn func(i, j int, v float64) bool) {
	for k, v := range t.m {
		i, j := UnpackPair(k)
		if !fn(i, j, v) {
			return
		}
	}
}

// Prune removes every pair whose absolute score is below eps and returns
// how many were removed. The large-graph SimRank engine calls this between
// iterations to keep the frontier bounded.
func (t *PairTable) Prune(eps float64) int {
	t.idx.Store(nil)
	removed := 0
	for k, v := range t.m {
		if v < eps && v > -eps {
			delete(t.m, k)
			removed++
		}
	}
	return removed
}

// Clone returns a deep copy of the table.
func (t *PairTable) Clone() *PairTable {
	c := NewPairTable(len(t.m))
	for k, v := range t.m {
		c.m[k] = v
	}
	return c
}

// MaxAbsDiff returns the largest |a-b| over the union of both tables'
// pairs, treating missing entries as 0. It is the convergence measure for
// iterative SimRank.
func (t *PairTable) MaxAbsDiff(o *PairTable) float64 {
	max := 0.0
	abs := func(x float64) float64 {
		if x < 0 {
			return -x
		}
		return x
	}
	for k, v := range t.m {
		d := abs(v - o.m[k])
		if d > max {
			max = d
		}
	}
	for k, v := range o.m {
		if _, ok := t.m[k]; !ok {
			if d := abs(v); d > max {
				max = d
			}
		}
	}
	return max
}

// Scored is one (node, score) result row.
type Scored struct {
	Node  int
	Score float64
}

// EnsureIndex builds the per-node partner index if it is not already
// present. One O(nnz + Σ d log d) pass replaces the O(nnz) full-table scan
// TopKFor otherwise pays per query. The index is dropped on any mutation.
// EnsureIndex may be called from multiple goroutines serving a read-only
// table (the build is mutex-guarded); like the rest of PairTable, it is
// not safe concurrently with mutation.
func (t *PairTable) EnsureIndex() {
	if t.idx.Load() != nil {
		return
	}
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	if t.idx.Load() != nil {
		return
	}
	idx := make(partnerIndex)
	for key, v := range t.m {
		a, b := UnpackPair(key)
		idx[a] = append(idx[a], Scored{Node: b, Score: v})
		idx[b] = append(idx[b], Scored{Node: a, Score: v})
	}
	for n := range idx {
		SortScoredDesc(idx[n])
	}
	t.idx.Store(&idx)
}

// Indexed reports whether the partner index is currently built.
func (t *PairTable) Indexed() bool { return t.idx.Load() != nil }

// TopKFor returns the k highest-scoring partners of node i, ties broken by
// ascending node id for determinism. With the index built (EnsureIndex) it
// is an O(k) copy; otherwise it falls back to the O(len(table)) scan.
func (t *PairTable) TopKFor(i, k int) []Scored {
	if idx := t.idx.Load(); idx != nil {
		s := (*idx)[i]
		if k >= 0 && len(s) > k {
			s = s[:k]
		}
		if len(s) == 0 {
			return nil
		}
		out := make([]Scored, len(s))
		copy(out, s)
		return out
	}
	var out []Scored
	for key, v := range t.m {
		a, b := UnpackPair(key)
		switch i {
		case a:
			out = append(out, Scored{Node: b, Score: v})
		case b:
			out = append(out, Scored{Node: a, Score: v})
		}
	}
	SortScoredDesc(out)
	if k >= 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// SortScoredDesc sorts rows by descending score, then ascending node id.
func SortScoredDesc(s []Scored) {
	sort.Slice(s, func(a, b int) bool {
		if s[a].Score != s[b].Score {
			return s[a].Score > s[b].Score
		}
		return s[a].Node < s[b].Node
	})
}
