package sparse

import "math/bits"

// Bitset is a minimal fixed-capacity bit vector. The engines use one per
// graph side to track which nodes' scores changed between iterations
// (MaxAbsDiffChanged marks it), so the next pass can skip output rows
// whose inputs are all unchanged.
type Bitset struct {
	words []uint64
}

// NewBitset returns a cleared bitset with capacity for n bits.
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64)}
}

// Resize re-dimensions the bitset to n bits and clears it, reusing the
// word array when it is large enough.
func (b *Bitset) Resize(n int) {
	words := (n + 63) / 64
	if words > cap(b.words) {
		b.words = make([]uint64, words)
		return
	}
	b.words = b.words[:words]
	b.Clear()
}

// Clear zeroes every bit, keeping capacity.
func (b *Bitset) Clear() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Set sets bit i.
func (b *Bitset) Set(i int) {
	b.words[i>>6] |= 1 << (uint(i) & 63)
}

// Has reports whether bit i is set.
func (b *Bitset) Has(i int) bool {
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}
