package sparse

import (
	"math"
	"sort"
	"testing"
)

// lcg is a tiny deterministic generator for randomized differential tests.
type lcg uint64

func (s *lcg) next(n int) int {
	*s = *s*6364136223846793005 + 1442695040888963407
	return int((uint64(*s) >> 33) % uint64(n))
}

func (s *lcg) float() float64 { return float64(s.next(2000)-1000) / 100 }

func TestSortPairsMatchesReference(t *testing.T) {
	rng := lcg(7)
	for trial := 0; trial < 200; trial++ {
		n := rng.next(200)
		cols := make([]int32, n)
		vals := make([]float64, n)
		// Small key range forces heavy duplication, the frontier's common case.
		for i := range cols {
			cols[i] = int32(rng.next(20))
			vals[i] = float64(i)
		}
		type kv struct {
			c int32
			v float64
		}
		ref := make([]kv, n)
		for i := range ref {
			ref[i] = kv{cols[i], vals[i]}
		}
		sort.SliceStable(ref, func(a, b int) bool { return ref[a].c < ref[b].c })
		sortPairs(cols, vals)
		seen := make(map[float64]bool, n)
		for i := range cols {
			if cols[i] != ref[i].c {
				t.Fatalf("trial %d: cols[%d] = %d, want %d", trial, i, cols[i], ref[i].c)
			}
			if i > 0 && cols[i-1] > cols[i] {
				t.Fatalf("trial %d: not sorted at %d", trial, i)
			}
			seen[vals[i]] = true
		}
		// Values must be a permutation (each original index appears once).
		if len(seen) != n {
			t.Fatalf("trial %d: values not a permutation: %d distinct of %d", trial, len(seen), n)
		}
	}
}

func TestCompactPairsSumsDuplicates(t *testing.T) {
	cols := []int32{5, 2, 5, 9, 2, 5}
	vals := []float64{1, 10, 2, 100, 20, 4}
	n := compactPairs(cols, vals)
	if n != 3 {
		t.Fatalf("compacted length %d, want 3", n)
	}
	wantC := []int32{2, 5, 9}
	wantV := []float64{30, 7, 100}
	for i := 0; i < n; i++ {
		if cols[i] != wantC[i] || vals[i] != wantV[i] {
			t.Errorf("entry %d: (%d, %v), want (%d, %v)", i, cols[i], vals[i], wantC[i], wantV[i])
		}
	}
}

func TestFrontierEmptyRows(t *testing.T) {
	f := NewPairFrontier(5)
	f.Compact()
	if f.Len() != 0 {
		t.Errorf("empty frontier Len = %d", f.Len())
	}
	if _, ok := f.Get(0, 3); ok {
		t.Error("Get on empty frontier reported a value")
	}
	if d := f.MaxAbsDiff(NewPairFrontier(5)); d != 0 {
		t.Errorf("MaxAbsDiff of empties = %v", d)
	}
	f.Range(func(i, j int, v float64) bool {
		t.Fatalf("Range visited (%d,%d) on empty frontier", i, j)
		return false
	})
	// A frontier with only some rows populated must skip the empty ones.
	f.Add(2, 4, 1.5)
	f.Compact()
	if v, ok := f.Get(4, 2); !ok || v != 1.5 {
		t.Errorf("Get(4,2) = %v,%v want 1.5,true", v, ok)
	}
	if f.Len() != 1 {
		t.Errorf("Len = %d want 1", f.Len())
	}
}

func TestFrontierDiagonalDropped(t *testing.T) {
	f := NewPairFrontier(4)
	f.Add(2, 2, 99)
	f.Add(1, 3, 1)
	f.Compact()
	if f.Len() != 1 {
		t.Errorf("diagonal contribution stored: Len = %d", f.Len())
	}
	if _, ok := f.Get(2, 2); ok {
		t.Error("Get(2,2) found the diagonal")
	}
}

func TestFrontierPruneThenAddReuse(t *testing.T) {
	f := NewPairFrontier(6)
	f.Add(0, 1, 1e-9)
	f.Add(0, 2, 0.5)
	f.Add(3, 4, -1e-9)
	f.Compact()
	if removed := f.Prune(1e-6); removed != 2 {
		t.Fatalf("Prune removed %d, want 2", removed)
	}
	if f.Len() != 1 {
		t.Fatalf("post-prune Len = %d", f.Len())
	}
	// Reuse after prune: reset and refill, including rows prune emptied.
	f.Reset()
	if f.Len() != 0 {
		t.Fatalf("post-reset Len = %d", f.Len())
	}
	f.Add(0, 1, 2)
	f.Add(1, 0, 3) // unordered: same pair
	f.Add(3, 4, 7)
	f.Compact()
	if v, ok := f.Get(0, 1); !ok || v != 5 {
		t.Errorf("Get(0,1) after reuse = %v,%v want 5,true", v, ok)
	}
	if v, ok := f.Get(3, 4); !ok || v != 7 {
		t.Errorf("Get(3,4) after reuse = %v,%v want 7,true", v, ok)
	}
}

func TestFrontierCompactNormalizeDrops(t *testing.T) {
	f := NewPairFrontier(3)
	f.Add(0, 1, 2)
	f.Add(0, 2, 4)
	f.Add(1, 2, 6)
	f.CompactNormalize(func(i, j int, sum float64) (float64, bool) {
		if j == 2 {
			return 0, false
		}
		return sum * 10, true
	})
	if f.Len() != 1 {
		t.Fatalf("Len = %d want 1", f.Len())
	}
	if v, ok := f.Get(0, 1); !ok || v != 20 {
		t.Errorf("Get(0,1) = %v,%v want 20,true", v, ok)
	}
}

// TestFrontierMatchesMapAccumulation is the fuzz-style differential test:
// identical random Add streams into a PairFrontier and a PairTable must
// produce identical contents through compact, prune, map, and diff.
func TestFrontierMatchesMapAccumulation(t *testing.T) {
	rng := lcg(12345)
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.next(30)
		adds := 1 + rng.next(400)
		f := NewPairFrontier(n)
		m := NewPairTable(0)
		for a := 0; a < adds; a++ {
			i, j := rng.next(n), rng.next(n)
			v := rng.float()
			f.Add(i, j, v)
			m.Add(i, j, v)
		}
		f.Compact()
		assertFrontierEqualsTable(t, trial, "compact", f, m, n)

		// Prune both with the same epsilon; counts must agree exactly
		// because the accumulated values are identical sums of the same
		// inputs in different order only across pairs, not within one.
		eps := 0.75
		fr, mr := f.Prune(eps), m.Prune(eps)
		if fr != mr {
			t.Fatalf("trial %d: Prune removed %d (frontier) vs %d (map)", trial, fr, mr)
		}
		assertFrontierEqualsTable(t, trial, "prune", f, m, n)

		// MaxAbsDiff against a second random set must agree.
		f2 := NewPairFrontier(n)
		m2 := NewPairTable(0)
		for a := 0; a < adds/2; a++ {
			i, j := rng.next(n), rng.next(n)
			v := rng.float()
			f2.Add(i, j, v)
			m2.Add(i, j, v)
		}
		f2.Compact()
		if df, dm := f.MaxAbsDiff(f2), m.MaxAbsDiff(m2); math.Abs(df-dm) > 1e-12 {
			t.Fatalf("trial %d: MaxAbsDiff %v (frontier) vs %v (map)", trial, df, dm)
		}
		if df, dm := f2.MaxAbsDiff(f), m2.MaxAbsDiff(m); math.Abs(df-dm) > 1e-12 {
			t.Fatalf("trial %d: reverse MaxAbsDiff %v vs %v", trial, df, dm)
		}

		// Round-trip to PairTable preserves everything.
		rt := f.ToPairTable()
		if rt.Len() != f.Len() {
			t.Fatalf("trial %d: round trip Len %d vs %d", trial, rt.Len(), f.Len())
		}
		rt.Range(func(i, j int, v float64) bool {
			if fv, ok := f.Get(i, j); !ok || fv != v {
				t.Fatalf("trial %d: round trip (%d,%d) %v vs %v", trial, i, j, v, fv)
			}
			return true
		})
	}
}

func assertFrontierEqualsTable(t *testing.T, trial int, stage string, f *PairFrontier, m *PairTable, n int) {
	t.Helper()
	if f.Len() != m.Len() {
		t.Fatalf("trial %d %s: Len %d (frontier) vs %d (map)", trial, stage, f.Len(), m.Len())
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			fv, fok := f.Get(i, j)
			mv, mok := m.Get(i, j)
			if fok != mok || math.Abs(fv-mv) > 1e-12 {
				t.Fatalf("trial %d %s: pair (%d,%d) frontier %v,%v map %v,%v",
					trial, stage, i, j, fv, fok, mv, mok)
			}
		}
	}
	// Range must visit exactly the stored pairs, i < j, ascending within rows.
	last := -1
	count := 0
	f.Range(func(i, j int, v float64) bool {
		if i >= j {
			t.Fatalf("trial %d %s: Range yielded i=%d >= j=%d", trial, stage, i, j)
		}
		key := i*(n+1) + j
		if key <= last {
			t.Fatalf("trial %d %s: Range out of order at (%d,%d)", trial, stage, i, j)
		}
		last = key
		count++
		return true
	})
	if count != m.Len() {
		t.Fatalf("trial %d %s: Range visited %d pairs, want %d", trial, stage, count, m.Len())
	}
}

func TestFrontierUncompactedGetSums(t *testing.T) {
	f := NewPairFrontier(3)
	f.Add(0, 1, 1)
	f.Add(1, 0, 2)
	if v, ok := f.Get(0, 1); !ok || v != 3 {
		t.Errorf("uncompacted Get = %v,%v want 3,true", v, ok)
	}
}

func TestFrontierFromPairTable(t *testing.T) {
	m := NewPairTable(0)
	m.Set(0, 3, 1.5)
	m.Set(2, 1, -2)
	f := FrontierFromPairTable(m, 4)
	if !f.Compacted() || f.Len() != 2 {
		t.Fatalf("FrontierFromPairTable: compacted=%v len=%d", f.Compacted(), f.Len())
	}
	if v, _ := f.Get(3, 0); v != 1.5 {
		t.Errorf("Get(3,0) = %v", v)
	}
	if v, _ := f.Get(1, 2); v != -2 {
		t.Errorf("Get(1,2) = %v", v)
	}
}

func TestParallelMergeNormalizeMatchesSerial(t *testing.T) {
	rng := lcg(777)
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.next(40)
		workers := 1 + rng.next(6)
		shards := make([]*PairFrontier, workers)
		serial := NewPairFrontier(n)
		for w := range shards {
			shards[w] = NewPairFrontier(n)
			adds := rng.next(200)
			for a := 0; a < adds; a++ {
				i, j := rng.next(n), rng.next(n)
				v := float64(1 + rng.next(5))
				shards[w].Add(i, j, v)
				serial.Add(i, j, v)
			}
		}
		norm := func(i, j int, sum float64) (float64, bool) {
			if sum > 40 {
				return 0, false
			}
			return sum / 2, true
		}
		dst := NewPairFrontier(n)
		ParallelMergeNormalize(dst, shards, workers, norm)
		serial.CompactNormalize(norm)
		// Integer-valued contributions make the comparison exact even
		// though addition order differs between the two paths.
		if d := dst.MaxAbsDiff(serial); d != 0 {
			t.Fatalf("trial %d (workers=%d): merged result differs by %v", trial, workers, d)
		}
		if dst.Len() != serial.Len() {
			t.Fatalf("trial %d: Len %d vs %d", trial, dst.Len(), serial.Len())
		}
	}
}

func TestPairTableIndexedTopKMatchesScan(t *testing.T) {
	rng := lcg(42)
	m := NewPairTable(0)
	for a := 0; a < 300; a++ {
		m.Add(rng.next(25), rng.next(25), rng.float())
	}
	for _, k := range []int{-1, 0, 1, 3, 100} {
		for i := 0; i < 25; i++ {
			scan := m.TopKFor(i, k) // index not built yet
			m.EnsureIndex()
			if !m.Indexed() {
				t.Fatal("EnsureIndex did not build")
			}
			indexed := m.TopKFor(i, k)
			if len(scan) != len(indexed) {
				t.Fatalf("node %d k=%d: %d scan vs %d indexed", i, k, len(scan), len(indexed))
			}
			for p := range scan {
				if scan[p] != indexed[p] {
					t.Fatalf("node %d k=%d entry %d: %+v vs %+v", i, k, p, scan[p], indexed[p])
				}
			}
			// Mutation invalidates so the next iteration re-exercises both
			// paths (off-diagonal: Set on the diagonal is a no-op).
			n1 := rng.next(24)
			m.Set(n1, n1+1, rng.float())
			if m.Indexed() {
				t.Fatal("mutation did not invalidate index")
			}
		}
	}
}
