// Package eval implements the four evaluation metrics of §9.4 of the
// Simrank++ paper: precision/recall (11-point interpolated curves and
// P@X), query coverage, rewriting depth, and desirability prediction.
package eval

import "fmt"

// Judged is one rewrite with its editorial grade, in rank order.
type Judged struct {
	Text  string
	Grade int // 1 (precise) .. 4 (mismatch)
}

// QueryJudgments is a method's graded rewrite list for one query.
type QueryJudgments struct {
	Query    string
	Rewrites []Judged
}

// relevantIn counts grades <= threshold in the first k rewrites.
func relevantIn(rs []Judged, k, threshold int) int {
	if k > len(rs) {
		k = len(rs)
	}
	n := 0
	for _, r := range rs[:k] {
		if r.Grade <= threshold {
			n++
		}
	}
	return n
}

// PrecisionAtX returns the mean precision after X = 1..maxX rewrites
// across queries, the paper's P@X (Figures 9-10 bottom). For a query with
// fewer than X rewrites, its full list is used (precision of what the
// method delivered); queries with no rewrites are skipped.
func PrecisionAtX(byQuery []QueryJudgments, maxX, threshold int) []float64 {
	out := make([]float64, maxX)
	for x := 1; x <= maxX; x++ {
		sum, n := 0.0, 0
		for _, qj := range byQuery {
			if len(qj.Rewrites) == 0 {
				continue
			}
			k := x
			if k > len(qj.Rewrites) {
				k = len(qj.Rewrites)
			}
			sum += float64(relevantIn(qj.Rewrites, k, threshold)) / float64(k)
			n++
		}
		if n > 0 {
			out[x-1] = sum / float64(n)
		}
	}
	return out
}

// PRPoint is one point of a precision/recall curve.
type PRPoint struct {
	Recall, Precision float64
}

// PrecisionRecall returns the 11-point interpolated precision/recall curve
// (recall levels 0.0, 0.1, ..., 1.0) averaged over queries, the standard
// IR methodology the paper plots (Figures 9-10 top).
//
// pooledRelevant[query] is the denominator of recall: the number of
// relevant rewrites for the query among all methods (§9.4's definition).
// Queries with zero pooled relevant rewrites are skipped.
func PrecisionRecall(byQuery []QueryJudgments, pooledRelevant map[string]int, threshold int) []PRPoint {
	const levels = 11
	sums := make([]float64, levels)
	n := 0
	for _, qj := range byQuery {
		total := pooledRelevant[qj.Query]
		if total == 0 {
			continue
		}
		n++
		// Exact precision at each relevant hit, then standard
		// interpolation: P_interp(r) = max precision at recall >= r.
		precAt := make([]float64, 0, len(qj.Rewrites))
		recAt := make([]float64, 0, len(qj.Rewrites))
		hits := 0
		for i, r := range qj.Rewrites {
			if r.Grade <= threshold {
				hits++
				precAt = append(precAt, float64(hits)/float64(i+1))
				recAt = append(recAt, float64(hits)/float64(total))
			}
		}
		for level := 0; level < levels; level++ {
			r := float64(level) / 10
			best := 0.0
			for i := range precAt {
				if recAt[i] >= r && precAt[i] > best {
					best = precAt[i]
				}
			}
			sums[level] += best
		}
	}
	out := make([]PRPoint, levels)
	for level := 0; level < levels; level++ {
		p := 0.0
		if n > 0 {
			p = sums[level] / float64(n)
		}
		out[level] = PRPoint{Recall: float64(level) / 10, Precision: p}
	}
	return out
}

// PoolRelevant builds the recall denominators: for each query, the number
// of distinct rewrite strings graded relevant by any method.
func PoolRelevant(methods [][]QueryJudgments, threshold int) map[string]int {
	pool := make(map[string]map[string]bool)
	for _, byQuery := range methods {
		for _, qj := range byQuery {
			set := pool[qj.Query]
			if set == nil {
				set = make(map[string]bool)
				pool[qj.Query] = set
			}
			for _, r := range qj.Rewrites {
				if r.Grade <= threshold {
					set[r.Text] = true
				}
			}
		}
	}
	out := make(map[string]int, len(pool))
	for q, set := range pool {
		out[q] = len(set)
	}
	return out
}

// Coverage returns the fraction of sample queries for which the method
// produced at least one rewrite (Figure 8).
func Coverage(byQuery []QueryJudgments) float64 {
	if len(byQuery) == 0 {
		return 0
	}
	n := 0
	for _, qj := range byQuery {
		if len(qj.Rewrites) > 0 {
			n++
		}
	}
	return float64(n) / float64(len(byQuery))
}

// DepthHistogram returns, for k = 1..max, the fraction of sample queries
// with at least k rewrites — the cumulative buckets of Figure 11 read
// right to left ("1-5", "2-5", ..., "5").
func DepthHistogram(byQuery []QueryJudgments, max int) []float64 {
	out := make([]float64, max)
	if len(byQuery) == 0 {
		return out
	}
	for _, qj := range byQuery {
		d := len(qj.Rewrites)
		if d > max {
			d = max
		}
		for k := 1; k <= d; k++ {
			out[k-1]++
		}
	}
	for i := range out {
		out[i] /= float64(len(byQuery))
	}
	return out
}

// MeanGrade returns the average editorial grade over all rewrites of all
// queries (lower is better); ok reports whether any rewrite existed.
func MeanGrade(byQuery []QueryJudgments) (mean float64, ok bool) {
	sum, n := 0.0, 0
	for _, qj := range byQuery {
		for _, r := range qj.Rewrites {
			sum += float64(r.Grade)
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// FormatPercent renders a fraction as a percentage string for reports.
func FormatPercent(f float64) string { return fmt.Sprintf("%.0f%%", f*100) }
