package eval

import (
	"math"
	"testing"
)

func qj(query string, grades ...int) QueryJudgments {
	out := QueryJudgments{Query: query}
	for i, g := range grades {
		out.Rewrites = append(out.Rewrites, Judged{Text: query + "-rw" + string(rune('a'+i)), Grade: g})
	}
	return out
}

func TestCoverage(t *testing.T) {
	byQuery := []QueryJudgments{
		qj("q1", 1, 2),
		qj("q2"),
		qj("q3", 4),
		qj("q4", 3, 3, 3),
	}
	if got := Coverage(byQuery); got != 0.75 {
		t.Errorf("Coverage = %v want 0.75", got)
	}
	if Coverage(nil) != 0 {
		t.Error("empty coverage should be 0")
	}
}

func TestPrecisionAtX(t *testing.T) {
	byQuery := []QueryJudgments{
		qj("q1", 1, 4, 2, 4, 4), // P@1=1, P@2=0.5, P@3=2/3 ...
		qj("q2", 4, 4),          // P@1=0, P@2=0
	}
	p := PrecisionAtX(byQuery, 5, 2)
	if p[0] != 0.5 {
		t.Errorf("P@1 = %v want 0.5", p[0])
	}
	if p[1] != 0.25 {
		t.Errorf("P@2 = %v want 0.25", p[1])
	}
	// q1 has 2 relevant in its 5; q2 at X=5 only has 2 rewrites, so its
	// precision is that of the delivered list.
	want5 := (2.0/5.0 + 0.0/2.0) / 2
	if math.Abs(p[4]-want5) > 1e-12 {
		t.Errorf("P@5 = %v want %v", p[4], want5)
	}
	// Threshold 1: only grade-1 counts.
	p1 := PrecisionAtX(byQuery, 1, 1)
	if p1[0] != 0.5 {
		t.Errorf("threshold-1 P@1 = %v want 0.5", p1[0])
	}
}

func TestPrecisionRecallCurve(t *testing.T) {
	byQuery := []QueryJudgments{
		qj("q1", 1, 4, 2), // hits at ranks 1 and 3
	}
	pooled := map[string]int{"q1": 2}
	curve := PrecisionRecall(byQuery, pooled, 2)
	if len(curve) != 11 {
		t.Fatalf("curve length = %d want 11", len(curve))
	}
	// At recall 0.5 (first hit covers 1/2), interpolated precision = 1.
	if curve[5].Precision != 1 {
		t.Errorf("precision at recall 0.5 = %v want 1", curve[5].Precision)
	}
	// At recall 1.0, precision = 2/3 (both hits by rank 3).
	if math.Abs(curve[10].Precision-2.0/3.0) > 1e-12 {
		t.Errorf("precision at recall 1.0 = %v want 2/3", curve[10].Precision)
	}
	// Curves are non-increasing in recall.
	for i := 1; i < 11; i++ {
		if curve[i].Precision > curve[i-1].Precision+1e-12 {
			t.Errorf("curve increased at level %d", i)
		}
	}
	// Queries with zero pooled relevant rewrites are skipped entirely.
	empty := PrecisionRecall(byQuery, map[string]int{}, 2)
	for _, p := range empty {
		if p.Precision != 0 {
			t.Error("no-pool curve should be all zeros")
		}
	}
}

func TestPoolRelevant(t *testing.T) {
	m1 := []QueryJudgments{qj("q1", 1, 3), qj("q2", 4)}
	m2 := []QueryJudgments{qj("q1", 2), qj("q2", 1)}
	// m2's q1 rewrite has a different text than m1's ("q1-rwa" both!).
	// Rename to make them distinct.
	m2[0].Rewrites[0].Text = "other rewrite"
	pool := PoolRelevant([][]QueryJudgments{m1, m2}, 2)
	if pool["q1"] != 2 {
		t.Errorf("pooled q1 = %d want 2 (one from each method)", pool["q1"])
	}
	if pool["q2"] != 1 {
		t.Errorf("pooled q2 = %d want 1", pool["q2"])
	}
	// Same text counted once.
	dup := PoolRelevant([][]QueryJudgments{m1, m1}, 2)
	if dup["q1"] != 1 {
		t.Errorf("duplicate pooling = %d want 1", dup["q1"])
	}
}

func TestDepthHistogram(t *testing.T) {
	byQuery := []QueryJudgments{
		qj("q1", 1, 1, 1, 1, 1), // depth 5
		qj("q2", 1, 1),          // depth 2
		qj("q3"),                // depth 0
		qj("q4", 1),             // depth 1
	}
	h := DepthHistogram(byQuery, 5)
	want := []float64{0.75, 0.5, 0.25, 0.25, 0.25}
	for k := 1; k <= 5; k++ {
		if math.Abs(h[k-1]-want[k-1]) > 1e-12 {
			t.Errorf("depth >= %d fraction = %v want %v", k, h[k-1], want[k-1])
		}
	}
}

func TestMeanGrade(t *testing.T) {
	byQuery := []QueryJudgments{qj("q1", 1, 3), qj("q2", 4)}
	mean, ok := MeanGrade(byQuery)
	if !ok || math.Abs(mean-8.0/3.0) > 1e-12 {
		t.Errorf("MeanGrade = %v,%v want 8/3,true", mean, ok)
	}
	if _, ok := MeanGrade(nil); ok {
		t.Error("MeanGrade of empty should report !ok")
	}
}
