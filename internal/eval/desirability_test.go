package eval

import (
	"math"
	"testing"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/core"
)

// desirabilityGraph builds a graph rich enough to host trials: a ring of
// queries sharing ads with staggered weights.
func desirabilityGraph(t *testing.T) *clickgraph.Graph {
	t.Helper()
	b := clickgraph.NewBuilder()
	add := func(q, a string, rate float64) {
		t.Helper()
		if err := b.AddEdge(q, a, clickgraph.EdgeWeights{
			Impressions: 100, Clicks: int64(rate * 100), ExpectedClickRate: rate,
		}); err != nil {
			t.Fatal(err)
		}
	}
	const n = 12
	for i := 0; i < n; i++ {
		q := "q" + string(rune('a'+i))
		// Each query clicks its own ad, the next ad, and a hub ad,
		// with varying rates.
		add(q, "ad"+string(rune('a'+i)), 0.2+0.05*float64(i%5))
		add(q, "ad"+string(rune('a'+(i+1)%n)), 0.1+0.04*float64(i%7))
		add(q, "hub", 0.15+0.03*float64(i%4))
	}
	return b.Build()
}

func TestDesirabilityFormula(t *testing.T) {
	b := clickgraph.NewBuilder()
	add := func(q, a string, rate float64) {
		t.Helper()
		if err := b.AddEdge(q, a, clickgraph.EdgeWeights{
			Impressions: 10, Clicks: int64(rate * 10), ExpectedClickRate: rate,
		}); err != nil {
			t.Fatal(err)
		}
	}
	add("q1", "a1", 0.5)
	add("q1", "a2", 0.5)
	add("q2", "a1", 0.8) // shared with q1
	add("q2", "a3", 0.4) // private
	g := b.Build()
	q1, _ := g.QueryID("q1")
	q2, _ := g.QueryID("q2")
	// des(q1,q2) = w(q2,a1)/|E(q2)| = 0.8/2.
	if got := Desirability(g, core.ChannelRate, q1, q2); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("des(q1,q2) = %v want 0.4", got)
	}
	// Asymmetric: des(q2,q1) = w(q1,a1)/|E(q1)| = 0.25.
	if got := Desirability(g, core.ChannelRate, q2, q1); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("des(q2,q1) = %v want 0.25", got)
	}
}

func TestBuildTrialsInvariants(t *testing.T) {
	g := desirabilityGraph(t)
	trials := BuildTrials(g, core.ChannelRate, 10, 7)
	if len(trials) == 0 {
		t.Fatal("no trials built")
	}
	for i, tr := range trials {
		if tr.Des2 == tr.Des3 {
			t.Errorf("trial %d has tied desirability", i)
		}
		if g.QueryDegree(tr.Q2) != g.QueryDegree(tr.Q3) {
			t.Errorf("trial %d candidates not degree-matched", i)
		}
		if len(g.CommonAds(tr.Q1, tr.Q2)) != len(g.CommonAds(tr.Q1, tr.Q3)) {
			t.Errorf("trial %d candidates not shared-count-matched", i)
		}
		// Removal must eliminate all common ads with both candidates.
		if n := len(tr.Pruned.CommonAds(tr.Q1, tr.Q2)); n != 0 {
			t.Errorf("trial %d: %d common ads with q2 remain", i, n)
		}
		if n := len(tr.Pruned.CommonAds(tr.Q1, tr.Q3)); n != 0 {
			t.Errorf("trial %d: %d common ads with q3 remain", i, n)
		}
		if tr.Pruned.QueryDegree(tr.Q1) == 0 {
			t.Errorf("trial %d left q1 isolated", i)
		}
		// Connectivity promised by the protocol.
		if !reachable(tr.Pruned, tr.Q1, tr.Q2) || !reachable(tr.Pruned, tr.Q1, tr.Q3) {
			t.Errorf("trial %d lost connectivity", i)
		}
	}
	// Determinism.
	again := BuildTrials(g, core.ChannelRate, 10, 7)
	if len(again) != len(trials) {
		t.Fatal("BuildTrials not deterministic")
	}
	for i := range trials {
		if trials[i].Q1 != again[i].Q1 || trials[i].Q2 != again[i].Q2 || trials[i].Q3 != again[i].Q3 {
			t.Fatal("BuildTrials not deterministic in trial selection")
		}
	}
}

func TestRunDesirabilityWithOracleScorer(t *testing.T) {
	g := desirabilityGraph(t)
	trials := BuildTrials(g, core.ChannelRate, 8, 7)
	if len(trials) == 0 {
		t.Skip("graph too small for trials")
	}
	// A scorer that returns the ground truth must be 100% correct.
	oracle := func(tr Trial) (float64, float64, error) { return tr.Des2, tr.Des3, nil }
	c, n, err := RunDesirability(trials, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if c != n {
		t.Errorf("oracle scorer correct on %d/%d", c, n)
	}
	// An inverted scorer must be 0% correct.
	inv := func(tr Trial) (float64, float64, error) { return -tr.Des2, -tr.Des3, nil }
	c, n, err = RunDesirability(trials, inv)
	if err != nil {
		t.Fatal(err)
	}
	if c != 0 {
		t.Errorf("inverted scorer correct on %d/%d, want 0", c, n)
	}
	// A constant scorer (all ties) is never strictly correct.
	tie := func(tr Trial) (float64, float64, error) { return 1, 1, nil }
	c, _, err = RunDesirability(trials, tie)
	if err != nil {
		t.Fatal(err)
	}
	if c != 0 {
		t.Errorf("tie scorer scored %d correct, want 0", c)
	}
}

func TestScorersRun(t *testing.T) {
	g := desirabilityGraph(t)
	trials := BuildTrials(g, core.ChannelRate, 3, 7)
	if len(trials) == 0 {
		t.Skip("no trials")
	}
	cfg := core.DefaultConfig()
	for name, scorer := range map[string]Scorer{
		"local": LocalScorer(cfg, core.DefaultLocalConfig()),
		"full":  FullScorer(cfg),
	} {
		if _, _, err := RunDesirability(trials, scorer); err != nil {
			t.Errorf("%s scorer: %v", name, err)
		}
	}
}
