package eval

import (
	"fmt"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/core"
	"simrankpp/internal/workload"
)

// This file implements the second evaluation method of §9.3: remove the
// direct evidence between a query q1 and two rewrite candidates q2, q3,
// and test whether a similarity method can still predict, from the
// remaining graph, which candidate the removed evidence said was more
// desirable.

// Desirability returns des(q1, q2) = Σ_{i ∈ E(q1)∩E(q2)} w(q2, i)/|E(q2)|,
// the paper's ground-truth preference score, on the given weight channel.
func Desirability(g *clickgraph.Graph, ch core.WeightChannel, q1, q2 int) float64 {
	common := g.CommonAds(q1, q2)
	deg := g.QueryDegree(q2)
	if deg == 0 {
		return 0
	}
	sum := 0.0
	for _, a := range common {
		sum += edgeWeight(g, ch, q2, a)
	}
	return sum / float64(deg)
}

func edgeWeight(g *clickgraph.Graph, ch core.WeightChannel, q, a int) float64 {
	w, ok := g.EdgeWeightsOf(q, a)
	if !ok {
		return 0
	}
	switch ch {
	case core.ChannelClicks:
		return float64(w.Clicks)
	case core.ChannelImpressions:
		return float64(w.Impressions)
	default:
		return w.ExpectedClickRate
	}
}

// Trial is one desirability test case.
type Trial struct {
	// Q1 is the probe query; Q2 and Q3 its candidate rewrites, each
	// sharing at least one ad with Q1 in the original graph.
	Q1, Q2, Q3 int
	// Des2 and Des3 are the ground-truth desirability scores computed on
	// the original graph before edge removal.
	Des2, Des3 float64
	// Removed lists the deleted (query, ad) edges: every edge from Q1 to
	// an ad it shares with Q2 or Q3.
	Removed [][2]int
	// Pruned is the graph after removal; similarity is computed on it.
	Pruned *clickgraph.Graph
}

// BuildTrials samples count trials from g per the paper's protocol:
// random q1, two random queries sharing at least one common ad with it,
// removal of q1's shared edges, and a connectivity requirement that a
// path from q2 (and q3) to q1 still exists afterwards so SimRank has
// something to work with.
//
// Candidates are structure-matched: q2 and q3 must have equal degree and
// share the same number of ads with q1, and every removed shared ad must
// retain at least one other query neighbor. This controls the structural
// signal so that the ground-truth ordering is carried by the edge
// weights, which is the regime the paper's results exhibit: its
// structure-only methods predict at 54% — coin-flip level — while
// weighted SimRank reaches 92%.
//
// Trials where the two desirability scores tie are discarded (no
// ground-truth ordering to predict). Fewer than count trials are returned
// if the graph cannot supply them within the attempt budget.
func BuildTrials(g *clickgraph.Graph, ch core.WeightChannel, count int, seed uint64) []Trial {
	r := workload.NewRNG(seed)
	var out []Trial
	attempts := 0
	maxAttempts := count * 2000
	for len(out) < count && attempts < maxAttempts {
		attempts++
		q1 := r.Intn(g.NumQueries())
		partners := coAdQueries(g, q1)
		if len(partners) < 2 {
			continue
		}
		i := r.Intn(len(partners))
		j := r.Intn(len(partners))
		if i == j {
			continue
		}
		q2, q3 := partners[i], partners[j]
		if g.QueryDegree(q2) != g.QueryDegree(q3) {
			continue
		}
		shared2 := g.CommonAds(q1, q2)
		shared3 := g.CommonAds(q1, q3)
		if len(shared2) != len(shared3) {
			continue
		}
		des2 := Desirability(g, ch, q1, q2)
		des3 := Desirability(g, ch, q1, q3)
		if des2 == des3 {
			continue
		}
		sharedOK := true
		var removed [][2]int
		for _, a := range append(append([]int(nil), shared2...), shared3...) {
			if g.AdDegree(a) < 2 {
				sharedOK = false
				break
			}
			removed = append(removed, [2]int{q1, a})
		}
		if !sharedOK {
			continue
		}
		pruned := g.RemoveEdges(removed)
		if pruned.QueryDegree(q1) == 0 {
			continue
		}
		if !reachable(pruned, q1, q2) || !reachable(pruned, q1, q3) {
			continue
		}
		out = append(out, Trial{
			Q1: q1, Q2: q2, Q3: q3,
			Des2: des2, Des3: des3,
			Removed: removed, Pruned: pruned,
		})
	}
	return out
}

// coAdQueries returns the queries sharing at least one ad with q,
// ascending.
func coAdQueries(g *clickgraph.Graph, q int) []int {
	seen := map[int]bool{}
	var out []int
	ads, _ := g.AdsOf(q)
	for _, a := range ads {
		qs, _ := g.QueriesOf(a)
		for _, p := range qs {
			if p != q && !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	return out
}

// reachable reports whether dst is reachable from src in the bipartite
// graph by BFS over query nodes (two edges per hop).
func reachable(g *clickgraph.Graph, src, dst int) bool {
	if src == dst {
		return true
	}
	seen := map[int]bool{src: true}
	queue := []int{src}
	for len(queue) > 0 {
		q := queue[0]
		queue = queue[1:]
		ads, _ := g.AdsOf(q)
		for _, a := range ads {
			qs, _ := g.QueriesOf(a)
			for _, p := range qs {
				if p == dst {
					return true
				}
				if !seen[p] {
					seen[p] = true
					queue = append(queue, p)
				}
			}
		}
	}
	return false
}

// Scorer computes a method's similarity scores s(q1, q2) and s(q1, q3) on
// the pruned graph of a trial.
type Scorer func(t Trial) (s12, s13 float64, err error)

// LocalScorer adapts the neighborhood SimRank engine into a Scorer.
func LocalScorer(cfg core.Config, lc core.LocalConfig) Scorer {
	return func(t Trial) (float64, float64, error) {
		scored, err := core.LocalSimilarities(t.Pruned, t.Q1, cfg, lc)
		if err != nil {
			return 0, 0, err
		}
		var s12, s13 float64
		for _, s := range scored {
			switch s.Node {
			case t.Q2:
				s12 = s.Score
			case t.Q3:
				s13 = s.Score
			}
		}
		return s12, s13, nil
	}
}

// FullScorer adapts the exact sparse engine into a Scorer (expensive:
// a full all-pairs run per trial).
func FullScorer(cfg core.Config) Scorer {
	return func(t Trial) (float64, float64, error) {
		res, err := core.Run(t.Pruned, cfg)
		if err != nil {
			return 0, 0, err
		}
		return res.QuerySim(t.Q1, t.Q2), res.QuerySim(t.Q1, t.Q3), nil
	}
}

// RunDesirability scores every trial and returns how many orderings the
// scorer predicted correctly: the prediction is correct when the
// similarity ordering of (q2, q3) strictly agrees with the ground-truth
// desirability ordering.
func RunDesirability(trials []Trial, scorer Scorer) (correct, total int, err error) {
	for i, t := range trials {
		s12, s13, err := scorer(t)
		if err != nil {
			return correct, total, fmt.Errorf("eval: trial %d: %w", i, err)
		}
		total++
		if (t.Des2 > t.Des3 && s12 > s13) || (t.Des2 < t.Des3 && s12 < s13) {
			correct++
		}
	}
	return correct, total, nil
}
