package judge

import (
	"testing"

	"simrankpp/internal/workload"
)

func testUniverse(t *testing.T) *workload.Universe {
	t.Helper()
	cfg := workload.DefaultUniverseConfig()
	cfg.Categories = 3
	cfg.SubtopicsPerCategory = 3
	cfg.IntentsPerSubtopic = 3
	u, err := workload.BuildUniverse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// findPair returns the texts of a query pair with the wanted relation.
func findPair(t *testing.T, u *workload.Universe, want workload.Relation) (string, string) {
	t.Helper()
	for i := range u.Queries {
		for j := range u.Queries {
			if i != j && u.Relation(i, j) == want {
				return u.Queries[i].Text, u.Queries[j].Text
			}
		}
	}
	t.Fatalf("no pair with relation %v", want)
	return "", ""
}

func TestGradeMatchesHierarchy(t *testing.T) {
	u := testUniverse(t)
	o := New(u)
	for _, tc := range []struct {
		rel  workload.Relation
		want int
	}{
		{workload.SameIntent, GradePrecise},
		{workload.SameSubtopic, GradeApproximate},
		{workload.SameCategory, GradePossible},
		{workload.Unrelated, GradeMismatch},
	} {
		q, r := findPair(t, u, tc.rel)
		if got := o.Grade(q, r); got != tc.want {
			t.Errorf("Grade(%v pair) = %d want %d", tc.rel, got, tc.want)
		}
	}
}

func TestGradeUnknownIsMismatch(t *testing.T) {
	u := testUniverse(t)
	o := New(u)
	if got := o.Grade("gibberish query", u.Queries[0].Text); got != GradeMismatch {
		t.Errorf("unknown query graded %d want %d", got, GradeMismatch)
	}
}

func TestNoisyOracle(t *testing.T) {
	u := testUniverse(t)
	if _, err := NewNoisy(u, -0.1, 1); err == nil {
		t.Error("accepted negative noise")
	}
	if _, err := NewNoisy(u, 1.1, 1); err == nil {
		t.Error("accepted noise > 1")
	}
	o, err := NewNoisy(u, 0.5, 123)
	if err != nil {
		t.Fatal(err)
	}
	q, r := findPair(t, u, workload.SameSubtopic)
	shifted := false
	for i := 0; i < 200; i++ {
		g := o.Grade(q, r)
		if g < GradePrecise || g > GradeMismatch {
			t.Fatalf("grade %d out of range", g)
		}
		if g != GradeApproximate {
			shifted = true
		}
	}
	if !shifted {
		t.Error("noise 0.5 never shifted a grade in 200 judgments")
	}
}

func TestRelevantThresholds(t *testing.T) {
	if !Relevant(1, 2) || !Relevant(2, 2) || Relevant(3, 2) || Relevant(4, 2) {
		t.Error("threshold-2 relevance wrong")
	}
	if !Relevant(1, 1) || Relevant(2, 1) {
		t.Error("threshold-1 relevance wrong")
	}
}

func TestGradeName(t *testing.T) {
	names := map[int]string{1: "precise match", 2: "approximate match", 3: "marginal match", 4: "mismatch"}
	for g, want := range names {
		if GradeName(g) != want {
			t.Errorf("GradeName(%d) = %q want %q", g, GradeName(g), want)
		}
	}
	if GradeName(9) == "" {
		t.Error("unknown grade should still render")
	}
}
