// Package judge implements the editorial oracle that substitutes for
// Yahoo!'s Editorial Evaluation Team (§9.3 of the Simrank++ paper): it
// grades a (query, rewrite) pair on the paper's 1-4 scale — precise,
// approximate, possible, mismatch — from the workload universe's latent
// intent hierarchy. Like the human editors, the oracle judges semantic
// relatedness only; it never consults the click graph.
package judge

import (
	"fmt"

	"simrankpp/internal/workload"
)

// Grades on the paper's editorial scale (Table 6).
const (
	// GradePrecise: the rewrite matches the user's intent (score 1).
	GradePrecise = 1
	// GradeApproximate: close topical relationship, narrowed/broadened
	// scope (score 2).
	GradeApproximate = 2
	// GradePossible: categorical relationship or complementary product
	// (score 3).
	GradePossible = 3
	// GradeMismatch: no clear relationship (score 4).
	GradeMismatch = 4
)

// GradeName returns the paper's label for a grade.
func GradeName(g int) string {
	switch g {
	case GradePrecise:
		return "precise match"
	case GradeApproximate:
		return "approximate match"
	case GradePossible:
		return "marginal match"
	case GradeMismatch:
		return "mismatch"
	default:
		return fmt.Sprintf("grade(%d)", g)
	}
}

// Oracle grades rewrites against a universe's ground truth.
type Oracle struct {
	universe *workload.Universe
	// noise is the probability a judgment shifts by ±1 grade (clamped),
	// modeling editor disagreement.
	noise float64
	rng   *workload.RNG
}

// New returns a noiseless oracle.
func New(u *workload.Universe) *Oracle {
	return &Oracle{universe: u}
}

// NewNoisy returns an oracle whose judgments shift by one grade with the
// given probability, deterministically from seed.
func NewNoisy(u *workload.Universe, noise float64, seed uint64) (*Oracle, error) {
	if noise < 0 || noise > 1 {
		return nil, fmt.Errorf("judge: noise must be in [0,1], got %v", noise)
	}
	return &Oracle{universe: u, noise: noise, rng: workload.NewRNG(seed)}, nil
}

// Grade judges the rewrite of query (both as query strings) on the 1-4
// scale. Unknown strings grade as mismatch — an editor shown gibberish
// marks it unrelated.
func (o *Oracle) Grade(query, rewrite string) int {
	g := o.universe.RelationByText(query, rewrite).Grade()
	if o.noise > 0 && o.rng.Float64() < o.noise {
		if o.rng.Float64() < 0.5 {
			g--
		} else {
			g++
		}
		if g < GradePrecise {
			g = GradePrecise
		}
		if g > GradeMismatch {
			g = GradeMismatch
		}
	}
	return g
}

// Relevant reports whether grade g counts as relevant under a threshold
// task: threshold 2 treats grades {1,2} as relevant (Figure 9), threshold
// 1 only grade 1 (Figure 10).
func Relevant(g, threshold int) bool { return g <= threshold }
