// Package faultfs injects programmable storage faults into the snapshot
// read path, so the serving layer's failure behavior — shard quarantine,
// backoff, generation rollback, load shedding — can be proven by
// deterministic chaos tests instead of waiting for a bad disk. The
// wrapper sits at the io.ReaderAt seam every snapshot reader already
// uses (serve.NewSnapshot takes any ReaderAt), so no production code
// changes to become testable: tests wrap the real reader, schedule
// faults on the Injector, and flip them on and off while requests are
// in flight.
//
// Supported faults, each independently togglable at runtime:
//
//   - bit flips at chosen absolute offsets (CRC corruption on the byte
//     a segment load will read — the quarantine trigger)
//   - short reads (a read returns fewer bytes than asked, with
//     io.ErrUnexpectedEOF, as a truncated file would)
//   - per-call latency (slow-disk emulation — the load-shedding and
//     deadline trigger)
//   - fail-after-K (the first K reads succeed, every later one returns
//     a chosen error — a disk dying mid-serve)
package faultfs

import (
	"errors"
	"io"
	"sync"
	"time"
)

// ErrInjected is the default error returned by FailAfter when the
// caller does not choose one.
var ErrInjected = errors.New("faultfs: injected read failure")

// BitFlip names one corrupted bit: the byte at absolute offset Off has
// bit Bit (0–7) inverted on every read that covers it.
type BitFlip struct {
	Off int64
	Bit uint8
}

// Injector holds the programmable fault schedule shared by every reader
// wrapped with it. All methods are safe for concurrent use with reads
// in flight — tests clear a fault while a server is serving to model
// recovery.
type Injector struct {
	mu       sync.Mutex
	flips    map[int64]byte // offset -> XOR mask
	shortLen int            // >0: cap read lengths at this many bytes
	latency  time.Duration  // per-call sleep
	failLeft int64          // reads remaining before failures start; -1 = never
	failErr  error
	calls    int64
}

// NewInjector returns an injector with no faults scheduled.
func NewInjector() *Injector {
	return &Injector{flips: make(map[int64]byte), failLeft: -1}
}

// FlipBit schedules a persistent bit flip: every read covering offset
// off sees bit (0–7) of that byte inverted. Several flips may target
// the same byte; they XOR together.
func (in *Injector) FlipBit(off int64, bit uint8) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.flips[off] ^= 1 << (bit & 7)
	if in.flips[off] == 0 {
		delete(in.flips, off)
	}
}

// ClearFlips removes every scheduled bit flip — the "fault cleared"
// half of a transient-corruption scenario.
func (in *Injector) ClearFlips() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.flips = make(map[int64]byte)
}

// ShortReads caps every read at n bytes; a capped read returns
// io.ErrUnexpectedEOF alongside the truncated data, as io.ReaderAt
// requires for partial reads. n <= 0 disables the fault.
func (in *Injector) ShortReads(n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.shortLen = n
}

// SetLatency makes every read sleep d before touching the underlying
// reader. d <= 0 disables the fault.
func (in *Injector) SetLatency(d time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.latency = d
}

// FailAfter lets the next k reads through and fails every read after
// them with err (ErrInjected when err is nil). k < 0 disables the
// fault.
func (in *Injector) FailAfter(k int, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if err == nil {
		err = ErrInjected
	}
	in.failLeft, in.failErr = int64(k), err
}

// Reset clears every scheduled fault (the call counter keeps running).
func (in *Injector) Reset() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.flips = make(map[int64]byte)
	in.shortLen = 0
	in.latency = 0
	in.failLeft = -1
	in.failErr = nil
}

// Calls reports how many reads the injector has intercepted.
func (in *Injector) Calls() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.calls
}

// plan snapshots the faults applying to one read. The latency sleep and
// the underlying read happen outside the injector lock, so concurrent
// requests serialize only on the schedule lookup, not on the injected
// slowness itself.
type plan struct {
	flips    map[int64]byte
	shortLen int
	latency  time.Duration
	fail     error
}

func (in *Injector) planRead() plan {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.calls++
	p := plan{shortLen: in.shortLen, latency: in.latency}
	if in.failLeft >= 0 {
		if in.failLeft == 0 {
			p.fail = in.failErr
		} else {
			in.failLeft--
		}
	}
	if len(in.flips) > 0 {
		p.flips = make(map[int64]byte, len(in.flips))
		for o, m := range in.flips {
			p.flips[o] = m
		}
	}
	return p
}

// ReaderAt wraps an io.ReaderAt, applying inj's scheduled faults to
// every read.
type ReaderAt struct {
	inner io.ReaderAt
	inj   *Injector
}

// Wrap returns a ReaderAt serving inner's bytes through inj's faults.
func Wrap(inner io.ReaderAt, inj *Injector) *ReaderAt {
	return &ReaderAt{inner: inner, inj: inj}
}

// ReadAt implements io.ReaderAt with faults applied in order: latency,
// fail-after-K, the underlying read, bit flips, short read.
func (r *ReaderAt) ReadAt(p []byte, off int64) (int, error) {
	fp := r.inj.planRead()
	if fp.latency > 0 {
		time.Sleep(fp.latency)
	}
	if fp.fail != nil {
		return 0, fp.fail
	}
	n, err := r.inner.ReadAt(p, off)
	for fo, mask := range fp.flips {
		if fo >= off && fo < off+int64(n) {
			p[fo-off] ^= mask
		}
	}
	if fp.shortLen > 0 && n > fp.shortLen {
		n = fp.shortLen
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
	}
	return n, err
}
