package faultfs

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// faultClient returns a test server answering body to every request and
// a client whose transport routes through inj.
func faultClient(t *testing.T, inj *HTTPInjector, body string) (*httptest.Server, *http.Client) {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	t.Cleanup(ts.Close)
	return ts, &http.Client{Transport: inj.Transport(nil)}
}

func TestTransportDropCountsDown(t *testing.T) {
	inj := NewHTTPInjector()
	ts, cl := faultClient(t, inj, "ok")
	host := strings.TrimPrefix(ts.URL, "http://")

	inj.Drop(host, 2)
	for i := 0; i < 2; i++ {
		if _, err := cl.Get(ts.URL); !errors.Is(err, ErrDropped) {
			t.Fatalf("request %d: err = %v, want ErrDropped", i, err)
		}
	}
	resp, err := cl.Get(ts.URL)
	if err != nil {
		t.Fatalf("post-drop request: %v", err)
	}
	defer resp.Body.Close()
	if b, _ := io.ReadAll(resp.Body); string(b) != "ok" {
		t.Fatalf("post-drop body = %q", b)
	}
	if inj.Calls() != 3 {
		t.Fatalf("Calls() = %d, want 3", inj.Calls())
	}
}

func TestTransportDropForeverUntilReset(t *testing.T) {
	inj := NewHTTPInjector()
	ts, cl := faultClient(t, inj, "ok")

	inj.Drop("", -1) // any host, permanently
	for i := 0; i < 3; i++ {
		if _, err := cl.Get(ts.URL); !errors.Is(err, ErrDropped) {
			t.Fatalf("request %d survived a dead-host drop: %v", i, err)
		}
	}
	inj.Reset()
	resp, err := cl.Get(ts.URL)
	if err != nil {
		t.Fatalf("post-reset request: %v", err)
	}
	resp.Body.Close()
}

func TestTransport5xxBurst(t *testing.T) {
	inj := NewHTTPInjector()
	ts, cl := faultClient(t, inj, "ok")
	host := strings.TrimPrefix(ts.URL, "http://")

	inj.Respond5xx(host, 1)
	resp, err := cl.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("injected status = %d, want 503", resp.StatusCode)
	}
	resp, err = cl.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-burst status = %d, want 200", resp.StatusCode)
	}
}

func TestTransportTruncateBody(t *testing.T) {
	inj := NewHTTPInjector()
	ts, cl := faultClient(t, inj, "a long enough body to truncate")
	host := strings.TrimPrefix(ts.URL, "http://")

	inj.TruncateBody(host, 6)
	resp, err := cl.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated read err = %v, want ErrUnexpectedEOF", err)
	}
	if string(b) != "a long" {
		t.Fatalf("truncated body = %q, want first 6 bytes", b)
	}
}

func TestTransportFlipBodyBit(t *testing.T) {
	inj := NewHTTPInjector()
	ts, cl := faultClient(t, inj, "abcdef")
	host := strings.TrimPrefix(ts.URL, "http://")

	inj.FlipBodyBit(host, 2, 0) // 'c' ^ 0x01 = 'b'
	resp, err := cl.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "abbdef" {
		t.Fatalf("flipped body = %q, want %q", b, "abbdef")
	}
}

func TestTransportLatencyHonorsContext(t *testing.T) {
	inj := NewHTTPInjector()
	ts, cl := faultClient(t, inj, "ok")

	inj.SetLatency("", time.Minute)
	cl.Timeout = 50 * time.Millisecond
	start := time.Now()
	_, err := cl.Get(ts.URL)
	if err == nil {
		t.Fatal("latency-injected request did not time out")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation waited out the injected latency (%v)", elapsed)
	}
}

func TestTransportHostScoping(t *testing.T) {
	inj := NewHTTPInjector()
	tsA, cl := faultClient(t, inj, "ok")
	tsB := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer tsB.Close()

	inj.Drop(strings.TrimPrefix(tsA.URL, "http://"), -1)
	if _, err := cl.Get(tsA.URL); !errors.Is(err, ErrDropped) {
		t.Fatalf("scoped host not dropped: %v", err)
	}
	resp, err := cl.Get(tsB.URL)
	if err != nil {
		t.Fatalf("unscoped host affected by another host's fault: %v", err)
	}
	resp.Body.Close()
}
