package faultfs

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

func data() []byte {
	b := make([]byte, 64)
	for i := range b {
		b[i] = byte(i)
	}
	return b
}

func TestPassThrough(t *testing.T) {
	src := data()
	r := Wrap(bytes.NewReader(src), NewInjector())
	got := make([]byte, len(src))
	n, err := r.ReadAt(got, 0)
	if err != nil || n != len(src) || !bytes.Equal(got, src) {
		t.Fatalf("clean read = %d, %v, equal=%v", n, err, bytes.Equal(got, src))
	}
}

func TestBitFlip(t *testing.T) {
	src := data()
	inj := NewInjector()
	inj.FlipBit(10, 3)
	r := Wrap(bytes.NewReader(src), inj)

	got := make([]byte, 16)
	if _, err := r.ReadAt(got, 5); err != nil {
		t.Fatal(err)
	}
	if got[5] != src[10]^(1<<3) {
		t.Errorf("byte 10 = %#x, want %#x", got[5], src[10]^(1<<3))
	}
	// Reads not covering the offset are untouched.
	if _, err := r.ReadAt(got[:4], 20); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:4], src[20:24]) {
		t.Error("read away from the flip was corrupted")
	}
	// A second flip of the same bit cancels; ClearFlips heals too.
	inj.FlipBit(10, 3)
	if _, err := r.ReadAt(got, 5); err != nil {
		t.Fatal(err)
	}
	if got[5] != src[10] {
		t.Errorf("double-flipped byte = %#x, want original %#x", got[5], src[10])
	}
}

func TestShortReads(t *testing.T) {
	src := data()
	inj := NewInjector()
	inj.ShortReads(4)
	r := Wrap(bytes.NewReader(src), inj)
	got := make([]byte, 16)
	n, err := r.ReadAt(got, 0)
	if n != 4 || err != io.ErrUnexpectedEOF {
		t.Fatalf("short read = %d, %v; want 4, ErrUnexpectedEOF", n, err)
	}
	inj.ShortReads(0)
	if n, err := r.ReadAt(got, 0); n != 16 || err != nil {
		t.Fatalf("after disabling: %d, %v", n, err)
	}
}

func TestFailAfter(t *testing.T) {
	src := data()
	inj := NewInjector()
	boom := errors.New("boom")
	inj.FailAfter(2, boom)
	r := Wrap(bytes.NewReader(src), inj)
	got := make([]byte, 8)
	for i := 0; i < 2; i++ {
		if _, err := r.ReadAt(got, 0); err != nil {
			t.Fatalf("read %d failed early: %v", i, err)
		}
	}
	if _, err := r.ReadAt(got, 0); !errors.Is(err, boom) {
		t.Fatalf("third read err = %v, want boom", err)
	}
	if _, err := r.ReadAt(got, 0); !errors.Is(err, boom) {
		t.Fatal("failure was not persistent")
	}
	inj.Reset()
	if _, err := r.ReadAt(got, 0); err != nil {
		t.Fatalf("after Reset: %v", err)
	}
}

func TestFailAfterDefaultError(t *testing.T) {
	inj := NewInjector()
	inj.FailAfter(0, nil)
	r := Wrap(bytes.NewReader(data()), inj)
	if _, err := r.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}

func TestLatencyAndCalls(t *testing.T) {
	inj := NewInjector()
	inj.SetLatency(20 * time.Millisecond)
	r := Wrap(bytes.NewReader(data()), inj)
	start := time.Now()
	if _, err := r.ReadAt(make([]byte, 1), 0); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("read returned after %v, want >= 20ms", d)
	}
	if inj.Calls() != 1 {
		t.Errorf("calls = %d, want 1", inj.Calls())
	}
}
