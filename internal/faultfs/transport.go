// HTTP counterpart of the disk injector: a fault-injecting
// http.RoundTripper for the distributed-refresh chaos tests. The
// coordinator takes any RoundTripper (dist.Options.Transport), so —
// exactly like the ReaderAt seam — no production code changes to become
// testable: tests wrap http.DefaultTransport (or a test server's
// transport), schedule faults per worker host, and flip them on and off
// while leases are in flight.
//
// Supported faults, independently togglable at runtime and scoped to a
// host ("host:port") or to every host (""):
//
//   - dropped requests (connection-refused-style error — a dead or
//     unreachable worker)
//   - 5xx bursts (a worker up but failing — overload, crash loop)
//   - per-request latency (a straggling worker — the hedging trigger)
//   - truncated response bodies (a connection cut mid-transfer)
//   - bit-flipped response bodies (payload corruption the response CRC
//     must catch)

package faultfs

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// ErrDropped is the transport error a dropped request fails with.
var ErrDropped = fmt.Errorf("faultfs: injected connection failure")

// hostFaults is one host's scheduled faults (or the any-host default).
type hostFaults struct {
	dropLeft   int           // requests to drop; -1 = all, 0 = none
	fiveLeft   int           // requests to answer 503; -1 = all, 0 = none
	retryAfter int           // Retry-After seconds stamped on injected 503s
	latency    time.Duration // per-request sleep
	truncate   int           // >0: cut response bodies to this many bytes
	flipOff    int64         // body byte offset for flipMask
	flipMask   byte          // XOR mask applied at flipOff; 0 = off
}

// HTTPInjector holds a programmable per-host fault schedule shared by
// every transport wrapped with it. All methods are safe for concurrent
// use with requests in flight.
type HTTPInjector struct {
	mu    sync.Mutex
	hosts map[string]*hostFaults
	calls int64
}

// NewHTTPInjector returns an injector with no faults scheduled.
func NewHTTPInjector() *HTTPInjector {
	return &HTTPInjector{hosts: make(map[string]*hostFaults)}
}

func (in *HTTPInjector) host(h string) *hostFaults {
	f := in.hosts[h]
	if f == nil {
		f = &hostFaults{}
		in.hosts[h] = f
	}
	return f
}

// Drop makes the next n requests to host fail with a connection error
// (host "" = every host). n < 0 drops every request until reset — a
// dead worker; n = 0 cancels the fault.
func (in *HTTPInjector) Drop(host string, n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.host(host).dropLeft = n
}

// Respond5xx makes the next n requests to host answer 503 with an empty
// body (n < 0: every request; n = 0 cancels) — a worker that is up but
// failing.
func (in *HTTPInjector) Respond5xx(host string, n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.host(host).fiveLeft = n
}

// SetRetryAfter stamps a Retry-After header of the given seconds on
// every injected 503 from host — an overloaded server hinting when to
// come back, which Retry-After-aware retry loops must honor. seconds
// <= 0 cancels the header.
func (in *HTTPInjector) SetRetryAfter(host string, seconds int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.host(host).retryAfter = seconds
}

// SetLatency delays every request to host by d before it is sent.
// d <= 0 cancels the fault.
func (in *HTTPInjector) SetLatency(host string, d time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.host(host).latency = d
}

// TruncateBody cuts every response body from host to n bytes, the
// connection failing with io.ErrUnexpectedEOF beyond them. n <= 0
// cancels the fault.
func (in *HTTPInjector) TruncateBody(host string, n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.host(host).truncate = n
}

// FlipBodyBit inverts bit (0–7) of the response-body byte at offset off
// for every response from host — corruption the lease/segment CRCs must
// reject. Flipping the same bit again cancels the fault.
func (in *HTTPInjector) FlipBodyBit(host string, off int64, bit uint8) {
	in.mu.Lock()
	defer in.mu.Unlock()
	f := in.host(host)
	if f.flipMask != 0 && f.flipOff != off {
		f.flipMask = 0 // one flip site per host; retarget
	}
	f.flipOff = off
	f.flipMask ^= 1 << (bit & 7)
}

// Reset clears every scheduled fault (the call counter keeps running).
func (in *HTTPInjector) Reset() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.hosts = make(map[string]*hostFaults)
}

// Calls reports how many requests the injector has intercepted.
func (in *HTTPInjector) Calls() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.calls
}

// httpPlan snapshots the faults applying to one request: the host's own
// schedule merged over the any-host defaults. Countdown faults (drop,
// 5xx) are consumed inside the injector lock; latency and body faults
// apply outside it.
type httpPlan struct {
	drop       bool
	fiveXX     bool
	retryAfter int
	latency    time.Duration
	truncate   int
	flipOff    int64
	flipMask   byte
}

func (in *HTTPInjector) planRequest(host string) httpPlan {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.calls++
	var p httpPlan
	for _, f := range [2]*hostFaults{in.hosts[""], in.hosts[host]} {
		if f == nil {
			continue
		}
		if f.dropLeft != 0 {
			p.drop = true
			if f.dropLeft > 0 {
				f.dropLeft--
			}
		}
		if f.fiveLeft != 0 {
			p.fiveXX = true
			if f.fiveLeft > 0 {
				f.fiveLeft--
			}
		}
		if f.retryAfter > p.retryAfter {
			p.retryAfter = f.retryAfter
		}
		if f.latency > p.latency {
			p.latency = f.latency
		}
		if f.truncate > 0 {
			p.truncate = f.truncate
		}
		if f.flipMask != 0 {
			p.flipOff, p.flipMask = f.flipOff, f.flipMask
		}
	}
	return p
}

// transport applies inj's schedule around an inner RoundTripper.
type transport struct {
	inner http.RoundTripper
	inj   *HTTPInjector
}

// Transport returns a RoundTripper serving inner's responses through
// inj's faults. inner nil selects http.DefaultTransport.
func (in *HTTPInjector) Transport(inner http.RoundTripper) http.RoundTripper {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &transport{inner: inner, inj: in}
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	p := t.inj.planRequest(req.URL.Host)
	if p.latency > 0 {
		select {
		case <-time.After(p.latency):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if p.drop {
		return nil, ErrDropped
	}
	if p.fiveXX {
		hdr := make(http.Header)
		if p.retryAfter > 0 {
			hdr.Set("Retry-After", fmt.Sprintf("%d", p.retryAfter))
		}
		return &http.Response{
			StatusCode: http.StatusServiceUnavailable,
			Status:     "503 Service Unavailable (injected)",
			Proto:      req.Proto, ProtoMajor: req.ProtoMajor, ProtoMinor: req.ProtoMinor,
			Header:        hdr,
			Body:          io.NopCloser(bytes.NewReader(nil)),
			ContentLength: 0,
			Request:       req,
		}, nil
	}
	resp, err := t.inner.RoundTrip(req)
	if err != nil || resp == nil || resp.Body == nil {
		return resp, err
	}
	if p.truncate > 0 || p.flipMask != 0 {
		resp.Body = &faultBody{inner: resp.Body, plan: p}
		if p.truncate > 0 {
			resp.ContentLength = -1 // body no longer matches the header
		}
	}
	return resp, err
}

// faultBody applies body faults as the response streams: a bit flip at
// an absolute body offset, then truncation with io.ErrUnexpectedEOF —
// what a connection cut mid-transfer yields to the reader.
type faultBody struct {
	inner io.ReadCloser
	plan  httpPlan
	pos   int64
}

func (b *faultBody) Read(p []byte) (int, error) {
	if b.plan.truncate > 0 {
		if rem := int64(b.plan.truncate) - b.pos; rem <= 0 {
			return 0, io.ErrUnexpectedEOF
		} else if int64(len(p)) > rem {
			p = p[:rem]
		}
	}
	n, err := b.inner.Read(p)
	if b.plan.flipMask != 0 && b.plan.flipOff >= b.pos && b.plan.flipOff < b.pos+int64(n) {
		p[b.plan.flipOff-b.pos] ^= b.plan.flipMask
	}
	b.pos += int64(n)
	if b.plan.truncate > 0 && err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *faultBody) Close() error { return b.inner.Close() }
