// Package workload provides deterministic synthetic click-log generation:
// a seeded random number generator, power-law samplers, an intent-hierarchy
// topic model, and a query/ad population builder. Together with package
// sponsored it substitutes for the proprietary Yahoo! click logs used in the
// Simrank++ paper while preserving their measured statistical shape
// (power-law ads-per-query, queries-per-ad and clicks-per-edge
// distributions).
package workload

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xorshift128+ seeded via splitmix64). Every randomized component in this
// repository draws from an explicit RNG so experiments are reproducible
// bit-for-bit from a single uint64 seed.
type RNG struct {
	s0, s1 uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from a single uint64 seed.
func (r *RNG) Seed(seed uint64) {
	// splitmix64 to expand the seed into two nonzero state words.
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r.s0 = next()
	r.s1 = next()
	if r.s0 == 0 && r.s1 == 0 {
		r.s0 = 1
	}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, via the Box-Muller transform.
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		return -math.Log(u)
	}
}

// Fork derives an independent generator from this one. Child streams are
// decorrelated from the parent and from each other, which lets callers hand
// out per-subsystem RNGs from one top-level seed.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1342543de82ef95)
}
