package workload

import (
	"fmt"
	"math"
	"sort"
)

// Zipf samples integers in [1, n] with probability proportional to
// 1/rank^exponent. It precomputes the cumulative mass so sampling is a
// binary search; construction is O(n), sampling O(log n).
//
// The Simrank++ paper reports power-law distributions for ads-per-query,
// queries-per-ad and clicks per (query, ad) pair; Zipf is the discrete
// sampler used to reproduce those shapes.
type Zipf struct {
	n        int
	exponent float64
	cdf      []float64 // cdf[i] = P(value <= i+1)
}

// NewZipf returns a Zipf sampler over [1, n] with the given exponent.
// It returns an error if n < 1 or exponent < 0.
func NewZipf(n int, exponent float64) (*Zipf, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: Zipf needs n >= 1, got %d", n)
	}
	if exponent < 0 || math.IsNaN(exponent) {
		return nil, fmt.Errorf("workload: Zipf needs exponent >= 0, got %v", exponent)
	}
	z := &Zipf{n: n, exponent: exponent, cdf: make([]float64, n)}
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += math.Pow(float64(i), -exponent)
		z.cdf[i-1] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
	return z, nil
}

// N returns the upper bound of the sampler's support.
func (z *Zipf) N() int { return z.n }

// Exponent returns the power-law exponent.
func (z *Zipf) Exponent() float64 { return z.exponent }

// Sample draws one value in [1, n].
func (z *Zipf) Sample(r *RNG) int {
	u := r.Float64()
	return sort.SearchFloat64s(z.cdf, u) + 1
}

// Prob returns the probability mass of value k, or 0 if k is out of range.
func (z *Zipf) Prob(k int) float64 {
	if k < 1 || k > z.n {
		return 0
	}
	if k == 1 {
		return z.cdf[0]
	}
	return z.cdf[k-1] - z.cdf[k-2]
}

// Pareto samples continuous values from a bounded Pareto distribution on
// [lo, hi] with shape alpha. Used for bid prices and click-rate spreads.
type Pareto struct {
	lo, hi, alpha float64
}

// NewPareto returns a bounded Pareto sampler. It returns an error unless
// 0 < lo < hi and alpha > 0.
func NewPareto(lo, hi, alpha float64) (*Pareto, error) {
	if !(lo > 0) || !(hi > lo) {
		return nil, fmt.Errorf("workload: Pareto needs 0 < lo < hi, got lo=%v hi=%v", lo, hi)
	}
	if !(alpha > 0) {
		return nil, fmt.Errorf("workload: Pareto needs alpha > 0, got %v", alpha)
	}
	return &Pareto{lo: lo, hi: hi, alpha: alpha}, nil
}

// Sample draws one value in [lo, hi] by inverse-CDF of the truncated Pareto.
func (p *Pareto) Sample(r *RNG) float64 {
	u := r.Float64()
	la := math.Pow(p.lo, p.alpha)
	ha := math.Pow(p.hi, p.alpha)
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/p.alpha)
	if x < p.lo {
		x = p.lo
	}
	if x > p.hi {
		x = p.hi
	}
	return x
}

// DegreeSequence draws n degrees from z and returns them. Degrees are the
// building block for the bipartite configuration-style graph the generator
// wires: ads-per-query on one side, queries-per-ad implied on the other.
func DegreeSequence(r *RNG, z *Zipf, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = z.Sample(r)
	}
	return out
}

// FitExponent estimates a power-law exponent from a degree histogram using
// the discrete maximum-likelihood estimator of Clauset-Shalizi-Newman with
// xmin = 1: alpha ≈ 1 + n / Σ ln(x_i / (xmin - 1/2)). It is used by tests
// and by `cmd/clickgen -stats` to verify the generator reproduces the
// power laws the paper reports. Returns NaN for fewer than 2 samples.
func FitExponent(degrees []int) float64 {
	n := 0
	sum := 0.0
	for _, d := range degrees {
		if d < 1 {
			continue
		}
		n++
		sum += math.Log(float64(d) / 0.5)
	}
	if n < 2 || sum == 0 {
		return math.NaN()
	}
	return 1 + float64(n)/sum
}
