package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"simrankpp/internal/clickgraph"
)

// The replayable click log: the benchkit-side generator for the ingest
// pipeline. A run has two halves — base events that build the serving
// snapshot's graph, and a stream of follow-on events that the WAL tails
// and the controller folds. Everything is deterministic from the seed,
// so a freshness-vs-cost sweep (fold cadence vs wall-clock vs
// staleness) replays bit-identically, and so do the ingest chaos tests.
//
// The stream is locality-skewed on purpose: HotFraction of the events
// land in the first HotClusters clusters, mirroring how real click
// traffic churns a few campaigns while the rest of the graph idles —
// the regime where incremental refresh (dirty hot shards, byte-copied
// cold ones) earns its keep.

// ClickEvent is one weighted click-edge observation, the text-log twin
// of ingest.Record.
type ClickEvent struct {
	Query, Ad   string
	Impressions int64
	Clicks      int64
	Rate        float64
}

// ClickLogConfig parameterizes GenerateClickLog.
type ClickLogConfig struct {
	Seed uint64
	// Clusters structurally disjoint query/ad groups (each becomes at
	// least one component, so ComponentPlan shards by cluster).
	Clusters          int
	QueriesPerCluster int
	AdsPerCluster     int
	// BaseEvents is the number of pre-snapshot events beyond the
	// coverage pass (every node is touched at least once so the base
	// graph interns the full universe up front — stable ids are what
	// keep cold shards byte-copy clean across folds).
	BaseEvents int
	// StreamEvents is the replayable stream's length.
	StreamEvents int
	// HotClusters (default 1) receive HotFraction (default 0.9) of the
	// stream; the rest spreads uniformly.
	HotClusters int
	HotFraction float64
}

func (c *ClickLogConfig) defaults() {
	if c.Clusters <= 0 {
		c.Clusters = 4
	}
	if c.QueriesPerCluster <= 0 {
		c.QueriesPerCluster = 16
	}
	if c.AdsPerCluster <= 0 {
		c.AdsPerCluster = 12
	}
	if c.HotClusters <= 0 || c.HotClusters > c.Clusters {
		c.HotClusters = 1
	}
	if c.HotFraction <= 0 || c.HotFraction > 1 {
		c.HotFraction = 0.9
	}
}

// ClickLog is a generated base + stream pair.
type ClickLog struct {
	Base   []ClickEvent
	Stream []ClickEvent
}

// GenerateClickLog produces the deterministic event halves for cfg.
func GenerateClickLog(cfg ClickLogConfig) ClickLog {
	cfg.defaults()
	rng := NewRNG(cfg.Seed)
	qname := func(c, q int) string { return fmt.Sprintf("c%d-q%d", c, q) }
	aname := func(c, a int) string { return fmt.Sprintf("c%d-a%d", c, a) }
	event := func(c int) ClickEvent {
		clicks := int64(1 + rng.Intn(20))
		return ClickEvent{
			Query:       qname(c, rng.Intn(cfg.QueriesPerCluster)),
			Ad:          aname(c, rng.Intn(cfg.AdsPerCluster)),
			Impressions: clicks * 3,
			Clicks:      clicks,
			Rate:        float64(rng.Intn(1000)) / 1000,
		}
	}

	var log ClickLog
	// Coverage pass: every query and every ad appears in the base graph.
	for c := 0; c < cfg.Clusters; c++ {
		for q := 0; q < cfg.QueriesPerCluster; q++ {
			e := event(c)
			e.Query = qname(c, q)
			log.Base = append(log.Base, e)
		}
		for a := 0; a < cfg.AdsPerCluster; a++ {
			e := event(c)
			e.Ad = aname(c, a)
			log.Base = append(log.Base, e)
		}
	}
	for i := 0; i < cfg.BaseEvents; i++ {
		log.Base = append(log.Base, event(i%cfg.Clusters))
	}
	for i := 0; i < cfg.StreamEvents; i++ {
		var c int
		if cfg.Clusters > cfg.HotClusters && rng.Float64() >= cfg.HotFraction {
			c = cfg.HotClusters + rng.Intn(cfg.Clusters-cfg.HotClusters)
		} else {
			c = rng.Intn(cfg.HotClusters)
		}
		log.Stream = append(log.Stream, event(c))
	}
	return log
}

// BaseGraph folds the base events into a click graph with EVERY node of
// the configured universe interned first, in cluster-major order — the
// graph the serving snapshot is built from and the intern order every
// later fold must preserve.
func (cfg ClickLogConfig) BaseGraph(log ClickLog) (*clickgraph.Graph, error) {
	cfg.defaults()
	b := clickgraph.NewBuilder()
	for c := 0; c < cfg.Clusters; c++ {
		for q := 0; q < cfg.QueriesPerCluster; q++ {
			b.AddQuery(fmt.Sprintf("c%d-q%d", c, q))
		}
	}
	for c := 0; c < cfg.Clusters; c++ {
		for a := 0; a < cfg.AdsPerCluster; a++ {
			b.AddAd(fmt.Sprintf("c%d-a%d", c, a))
		}
	}
	for _, e := range log.Base {
		if err := b.AddEdge(e.Query, e.Ad, clickgraph.EdgeWeights{
			Impressions: e.Impressions, Clicks: e.Clicks, ExpectedClickRate: e.Rate,
		}); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// WriteClickLog writes events in the ingest text-log format (one
// tab-separated record per line — what POST /ingest accepts and
// ingest.ReadRecords parses back).
func WriteClickLog(w io.Writer, events []ClickEvent) error {
	bw := bufio.NewWriter(w)
	for _, e := range events {
		bw.WriteString(e.Query)
		bw.WriteByte('\t')
		bw.WriteString(e.Ad)
		bw.WriteByte('\t')
		bw.WriteString(strconv.FormatInt(e.Impressions, 10))
		bw.WriteByte('\t')
		bw.WriteString(strconv.FormatInt(e.Clicks, 10))
		bw.WriteByte('\t')
		bw.WriteString(strconv.FormatFloat(e.Rate, 'g', -1, 64))
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
