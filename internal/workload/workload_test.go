package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestRNGIntnUniform(t *testing.T) {
	r := NewRNG(11)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Intn(10)]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-n/10) > n/10*0.1 {
			t.Errorf("bucket %d count %d deviates >10%% from uniform", i, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRNGPermIsPermutation(t *testing.T) {
	check := func(seed uint64) bool {
		r := NewRNG(seed)
		n := int(seed%20) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGNormAndExp(t *testing.T) {
	r := NewRNG(5)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 || math.Abs(variance-1) > 0.05 {
		t.Errorf("NormFloat64 mean=%v var=%v, want ~0 and ~1", mean, variance)
	}
	sum = 0
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatal("ExpFloat64 negative")
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.05 {
		t.Errorf("ExpFloat64 mean = %v, want ~1", mean)
	}
}

func TestZipfValidationAndMass(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Error("NewZipf accepted n=0")
	}
	if _, err := NewZipf(10, -1); err == nil {
		t.Error("NewZipf accepted negative exponent")
	}
	z, err := NewZipf(100, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for k := 1; k <= 100; k++ {
		p := z.Prob(k)
		if p < 0 {
			t.Fatalf("Prob(%d) = %v < 0", k, p)
		}
		total += p
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("probability mass = %v, want 1", total)
	}
	if z.Prob(0) != 0 || z.Prob(101) != 0 {
		t.Error("out-of-range Prob should be 0")
	}
	// Rank 1 must dominate rank 100.
	if z.Prob(1) <= z.Prob(100) {
		t.Error("Zipf not decreasing")
	}
}

func TestZipfSampleDistribution(t *testing.T) {
	z, err := NewZipf(50, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(3)
	counts := make([]int, 51)
	const n = 200000
	for i := 0; i < n; i++ {
		v := z.Sample(r)
		if v < 1 || v > 50 {
			t.Fatalf("sample %d out of range", v)
		}
		counts[v]++
	}
	// Empirical frequency of rank 1 should be near its mass.
	want := z.Prob(1)
	got := float64(counts[1]) / n
	if math.Abs(got-want) > 0.01 {
		t.Errorf("rank-1 frequency %v, want ~%v", got, want)
	}
}

func TestParetoBounds(t *testing.T) {
	if _, err := NewPareto(0, 1, 1); err == nil {
		t.Error("accepted lo=0")
	}
	if _, err := NewPareto(2, 1, 1); err == nil {
		t.Error("accepted hi<lo")
	}
	if _, err := NewPareto(1, 2, 0); err == nil {
		t.Error("accepted alpha=0")
	}
	p, err := NewPareto(0.1, 5, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		v := p.Sample(r)
		if v < 0.1 || v > 5 {
			t.Fatalf("Pareto sample %v outside [0.1, 5]", v)
		}
	}
}

func TestFitExponent(t *testing.T) {
	// A degenerate sample has no estimate.
	if !math.IsNaN(FitExponent([]int{1})) {
		t.Error("FitExponent of single sample should be NaN")
	}
	// Degrees drawn from Zipf(exponent=2) should fit near 2.
	z, err := NewZipf(10000, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(17)
	degrees := DegreeSequence(r, z, 50000)
	if got := FitExponent(degrees); math.Abs(got-2.0) > 0.25 {
		t.Errorf("fitted exponent %v, want ~2.0", got)
	}
}

func TestBuildUniverseBasics(t *testing.T) {
	cfg := DefaultUniverseConfig()
	u, err := BuildUniverse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantIntents := cfg.Categories * cfg.SubtopicsPerCategory * cfg.IntentsPerSubtopic
	if len(u.Intents) != wantIntents {
		t.Fatalf("intents = %d want %d", len(u.Intents), wantIntents)
	}
	if len(u.Queries) < wantIntents || len(u.Ads) < wantIntents {
		t.Fatalf("every intent needs at least one query and ad: %d queries %d ads",
			len(u.Queries), len(u.Ads))
	}
	// Text lookup round-trips.
	for _, q := range u.Queries[:50] {
		got, ok := u.QueryByText(q.Text)
		if !ok || got.ID != q.ID {
			t.Fatalf("QueryByText(%q) = %+v, %v", q.Text, got, ok)
		}
	}
	// Determinism: same seed, same universe.
	u2, err := BuildUniverse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(u2.Queries) != len(u.Queries) || u2.Queries[10].Text != u.Queries[10].Text {
		t.Error("universe not deterministic for fixed seed")
	}
}

func TestUniverseValidation(t *testing.T) {
	bad := DefaultUniverseConfig()
	bad.Categories = 0
	if _, err := BuildUniverse(bad); err == nil {
		t.Error("accepted zero categories")
	}
	bad = DefaultUniverseConfig()
	bad.MaxQueriesPerIntent = 0
	if _, err := BuildUniverse(bad); err == nil {
		t.Error("accepted zero queries per intent")
	}
	bad = DefaultUniverseConfig()
	bad.StemVariantRate = 1.5
	if _, err := BuildUniverse(bad); err == nil {
		t.Error("accepted out-of-range StemVariantRate")
	}
}

func TestRelations(t *testing.T) {
	cfg := DefaultUniverseConfig()
	u, err := BuildUniverse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Same query: same intent.
	if r := u.Relation(0, 0); r != SameIntent {
		t.Errorf("self relation = %v", r)
	}
	// Check classification against the hierarchy arithmetic for a sample
	// of pairs.
	for i := 0; i < 30; i++ {
		for j := i; j < 30; j++ {
			r := u.Relation(i, j)
			i1, i2 := u.Intents[u.Queries[i].Intent], u.Intents[u.Queries[j].Intent]
			var want Relation
			switch {
			case i1.ID == i2.ID:
				want = SameIntent
			case i1.Subtopic == i2.Subtopic:
				want = SameSubtopic
			case i1.Category == i2.Category:
				want = SameCategory
			default:
				want = Unrelated
			}
			if r != want {
				t.Fatalf("Relation(%d,%d) = %v want %v", i, j, r, want)
			}
			if r.Grade() < 1 || r.Grade() > 4 {
				t.Fatalf("grade out of range: %d", r.Grade())
			}
		}
	}
	if u.RelationByText("no such query", u.Queries[0].Text) != Unrelated {
		t.Error("unknown text should be Unrelated")
	}
}

func TestSampleQueryPopularityBias(t *testing.T) {
	u, err := BuildUniverse(DefaultUniverseConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(21)
	counts := make(map[int]int)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[u.SampleQuery(r)]++
	}
	// The most popular query must be sampled far more often than a
	// median-popularity one.
	best, bestPop := 0, 0.0
	for _, q := range u.Queries {
		if q.Popularity > bestPop {
			best, bestPop = q.ID, q.Popularity
		}
	}
	if counts[best] < n/len(u.Queries) {
		t.Errorf("most popular query sampled only %d times", counts[best])
	}
}

func TestSiblingAndCategoryIntents(t *testing.T) {
	cfg := DefaultUniverseConfig()
	u, err := BuildUniverse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	intent := u.Intents[0]
	sibs := u.SiblingIntents(intent.ID)
	if len(sibs) != cfg.IntentsPerSubtopic-1 {
		t.Errorf("siblings = %d want %d", len(sibs), cfg.IntentsPerSubtopic-1)
	}
	for _, s := range sibs {
		if u.Intents[s].Subtopic != intent.Subtopic || s == intent.ID {
			t.Errorf("bad sibling %d", s)
		}
	}
	cats := u.CategoryIntents(intent.ID)
	want := (cfg.SubtopicsPerCategory - 1) * cfg.IntentsPerSubtopic
	if len(cats) != want {
		t.Errorf("category intents = %d want %d", len(cats), want)
	}
	for _, c := range cats {
		if u.Intents[c].Category != intent.Category || u.Intents[c].Subtopic == intent.Subtopic {
			t.Errorf("bad category intent %d", c)
		}
	}
}
