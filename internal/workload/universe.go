package workload

import (
	"fmt"
	"sort"
)

// The universe is the latent ground truth behind the synthetic click log:
// a three-level intent hierarchy (category → subtopic → intent), a query
// population phrased over intent-specific lexemes, and an ad population
// targeting intents. The similarity algorithms never see this structure —
// they only see the click graph the sponsored-search simulator emits — but
// the editorial oracle (package judge) grades rewrites against it, exactly
// as Yahoo!'s human editors graded against their own understanding of
// query meaning rather than against the click graph.

// Relation classifies how two queries relate in the intent hierarchy,
// mirroring the paper's four editorial grades (Table 6).
type Relation int

const (
	// SameIntent: the queries express the same user intent (grade 1,
	// precise rewrite).
	SameIntent Relation = iota
	// SameSubtopic: sibling intents under one subtopic (grade 2,
	// approximate rewrite).
	SameSubtopic
	// SameCategory: same broad category only (grade 3, possible rewrite).
	SameCategory
	// Unrelated: no categorical relationship (grade 4, clear mismatch).
	Unrelated
)

// String implements fmt.Stringer.
func (r Relation) String() string {
	switch r {
	case SameIntent:
		return "same-intent"
	case SameSubtopic:
		return "same-subtopic"
	case SameCategory:
		return "same-category"
	default:
		return "unrelated"
	}
}

// Grade maps a relation to the paper's 1-4 editorial score.
func (r Relation) Grade() int { return int(r) + 1 }

// Intent is a leaf of the hierarchy.
type Intent struct {
	ID       int
	Subtopic int
	Category int
}

// Query is one distinct query string with its latent intent and a traffic
// popularity weight.
type Query struct {
	ID         int
	Text       string
	Intent     int
	Popularity float64
}

// Ad is one advertisement targeting an intent; Quality scales its
// intrinsic click appeal.
type Ad struct {
	ID      int
	Name    string
	Intent  int
	Quality float64
}

// UniverseConfig sizes the synthetic population.
type UniverseConfig struct {
	// Categories, SubtopicsPerCategory and IntentsPerSubtopic shape the
	// hierarchy; the intent count is their product.
	Categories, SubtopicsPerCategory, IntentsPerSubtopic int
	// MaxQueriesPerIntent bounds the Zipf-distributed number of query
	// phrasings per intent (at least 1 each).
	MaxQueriesPerIntent int
	// MaxAdsPerIntent bounds the Zipf-distributed number of ads targeting
	// each intent (at least 1 each).
	MaxAdsPerIntent int
	// QueryCountExponent and AdCountExponent are the Zipf exponents of
	// the two per-intent counts; the paper observes power laws in
	// ads-per-query and queries-per-ad, which these induce.
	QueryCountExponent, AdCountExponent float64
	// PopularityExponent is the Zipf exponent of query traffic
	// popularity over the whole query population.
	PopularityExponent float64
	// StemVariantRate is the probability that an extra query phrasing is
	// a pure morphological variant of the intent's first phrasing
	// ("camera" → "cameras"), exercising the stem-dedup filter.
	StemVariantRate float64
	// Seed drives all sampling.
	Seed uint64
}

// DefaultUniverseConfig returns a laptop-scale population: 12 categories ×
// 6 subtopics × 5 intents = 360 intents, a few thousand queries.
func DefaultUniverseConfig() UniverseConfig {
	return UniverseConfig{
		Categories:           14,
		SubtopicsPerCategory: 6,
		IntentsPerSubtopic:   6,
		MaxQueriesPerIntent:  12,
		MaxAdsPerIntent:      8,
		QueryCountExponent:   1.1,
		AdCountExponent:      1.1,
		PopularityExponent:   1.0,
		StemVariantRate:      0.15,
		Seed:                 1,
	}
}

// Validate reports whether the configuration is usable.
func (c UniverseConfig) Validate() error {
	if c.Categories < 1 || c.SubtopicsPerCategory < 1 || c.IntentsPerSubtopic < 1 {
		return fmt.Errorf("workload: hierarchy dimensions must be >= 1, got %d/%d/%d",
			c.Categories, c.SubtopicsPerCategory, c.IntentsPerSubtopic)
	}
	if c.MaxQueriesPerIntent < 1 || c.MaxAdsPerIntent < 1 {
		return fmt.Errorf("workload: per-intent maxima must be >= 1, got queries=%d ads=%d",
			c.MaxQueriesPerIntent, c.MaxAdsPerIntent)
	}
	if c.QueryCountExponent < 0 || c.AdCountExponent < 0 || c.PopularityExponent < 0 {
		return fmt.Errorf("workload: Zipf exponents must be >= 0")
	}
	if c.StemVariantRate < 0 || c.StemVariantRate > 1 {
		return fmt.Errorf("workload: StemVariantRate must be in [0,1], got %v", c.StemVariantRate)
	}
	return nil
}

// Universe is the generated ground truth.
type Universe struct {
	Config  UniverseConfig
	Intents []Intent
	Queries []Query
	Ads     []Ad

	queryByText map[string]int
	popCDF      []float64
}

// BuildUniverse generates the population deterministically from the
// config's seed.
func BuildUniverse(cfg UniverseConfig) (*Universe, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := NewRNG(cfg.Seed)
	u := &Universe{Config: cfg, queryByText: make(map[string]int)}

	qCount, err := NewZipf(cfg.MaxQueriesPerIntent, cfg.QueryCountExponent)
	if err != nil {
		return nil, err
	}
	aCount, err := NewZipf(cfg.MaxAdsPerIntent, cfg.AdCountExponent)
	if err != nil {
		return nil, err
	}

	intentID := 0
	for cat := 0; cat < cfg.Categories; cat++ {
		for sub := 0; sub < cfg.SubtopicsPerCategory; sub++ {
			for k := 0; k < cfg.IntentsPerSubtopic; k++ {
				in := Intent{ID: intentID, Subtopic: cat*cfg.SubtopicsPerCategory + sub, Category: cat}
				u.Intents = append(u.Intents, in)

				nq := qCount.Sample(r)
				base := fmt.Sprintf("%s %s %s", categoryWord(cat), subtopicWord(cat, sub), intentWord(intentID))
				for v := 0; v < nq; v++ {
					text := base
					switch {
					case v == 0:
						// The canonical phrasing.
					case r.Float64() < cfg.StemVariantRate:
						// A morphological variant that stems to the same
						// phrase, to exercise duplicate filtering.
						text = base + "s"
					default:
						text = fmt.Sprintf("%s %s", base, variantWord(intentID, v))
					}
					if _, dup := u.queryByText[text]; dup {
						continue // stem variants can collide; keep one
					}
					q := Query{ID: len(u.Queries), Text: text, Intent: intentID}
					u.queryByText[text] = q.ID
					u.Queries = append(u.Queries, q)
				}

				na := aCount.Sample(r)
				for v := 0; v < na; v++ {
					u.Ads = append(u.Ads, Ad{
						ID:      len(u.Ads),
						Name:    fmt.Sprintf("ad-%d-%d.example.com", intentID, v),
						Intent:  intentID,
						Quality: 0.5 + 0.5*r.Float64(),
					})
				}
				intentID++
			}
		}
	}

	// Zipf popularity over a random permutation of queries, so popularity
	// is independent of hierarchy position.
	pop, err := NewZipf(len(u.Queries), cfg.PopularityExponent)
	if err != nil {
		return nil, err
	}
	perm := r.Perm(len(u.Queries))
	for i := range u.Queries {
		rank := perm[i] + 1
		u.Queries[i].Popularity = pop.Prob(rank)
	}
	u.buildPopCDF()
	return u, nil
}

func (u *Universe) buildPopCDF() {
	u.popCDF = make([]float64, len(u.Queries))
	sum := 0.0
	for i, q := range u.Queries {
		sum += q.Popularity
		u.popCDF[i] = sum
	}
	for i := range u.popCDF {
		u.popCDF[i] /= sum
	}
}

// QueryByText returns the query with the given text.
func (u *Universe) QueryByText(s string) (Query, bool) {
	id, ok := u.queryByText[s]
	if !ok {
		return Query{}, false
	}
	return u.Queries[id], true
}

// SampleQuery draws one query id by traffic popularity.
func (u *Universe) SampleQuery(r *RNG) int {
	return sort.SearchFloat64s(u.popCDF, r.Float64())
}

// Relation classifies the hierarchy relationship of two query ids.
func (u *Universe) Relation(q1, q2 int) Relation {
	return u.IntentRelation(u.Queries[q1].Intent, u.Queries[q2].Intent)
}

// QueryAdRelation classifies the relationship between a query's intent and
// an ad's target intent; it drives the click model's relevance.
func (u *Universe) QueryAdRelation(q, a int) Relation {
	return u.IntentRelation(u.Queries[q].Intent, u.Ads[a].Intent)
}

// IntentRelation classifies two intent ids by their hierarchy positions.
func (u *Universe) IntentRelation(int1, int2 int) Relation {
	i1, i2 := u.Intents[int1], u.Intents[int2]
	switch {
	case i1.ID == i2.ID:
		return SameIntent
	case i1.Subtopic == i2.Subtopic:
		return SameSubtopic
	case i1.Category == i2.Category:
		return SameCategory
	default:
		return Unrelated
	}
}

// RelationByText classifies two query strings; unknown strings are
// Unrelated.
func (u *Universe) RelationByText(t1, t2 string) Relation {
	q1, ok1 := u.QueryByText(t1)
	q2, ok2 := u.QueryByText(t2)
	if !ok1 || !ok2 {
		return Unrelated
	}
	return u.Relation(q1.ID, q2.ID)
}

// IntentQueries returns the ids of all queries expressing intent id.
func (u *Universe) IntentQueries(intent int) []int {
	var out []int
	for _, q := range u.Queries {
		if q.Intent == intent {
			out = append(out, q.ID)
		}
	}
	return out
}

// IntentAds returns the ids of all ads targeting intent id.
func (u *Universe) IntentAds(intent int) []int {
	var out []int
	for _, a := range u.Ads {
		if a.Intent == intent {
			out = append(out, a.ID)
		}
	}
	return out
}

// CategoryIntents returns the intents in the same category but under a
// different subtopic.
func (u *Universe) CategoryIntents(intent int) []int {
	cat := u.Intents[intent].Category
	sub := u.Intents[intent].Subtopic
	var out []int
	for _, in := range u.Intents {
		if in.Category == cat && in.Subtopic != sub {
			out = append(out, in.ID)
		}
	}
	return out
}

// SiblingIntents returns the other intents under the same subtopic.
func (u *Universe) SiblingIntents(intent int) []int {
	sub := u.Intents[intent].Subtopic
	var out []int
	for _, in := range u.Intents {
		if in.Subtopic == sub && in.ID != intent {
			out = append(out, in.ID)
		}
	}
	return out
}

// Synthetic vocabulary. Words are pronounceable CV syllable strings so
// the Porter stemmer treats them like English-ish tokens.

var consonants = []string{"b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r", "s", "t", "v"}
var vowels = []string{"a", "e", "i", "o", "u"}

func syllableWord(seed uint64, syllables int) string {
	// A tiny splitmix keeps word generation independent of the universe
	// RNG stream, so word spelling is stable across config changes.
	out := ""
	s := seed
	next := func(n int) int {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return int(z % uint64(n))
	}
	for i := 0; i < syllables; i++ {
		out += consonants[next(len(consonants))] + vowels[next(len(vowels))]
	}
	return out
}

func categoryWord(cat int) string { return syllableWord(uint64(cat)*7919+13, 2) }

func subtopicWord(cat, sub int) string {
	return syllableWord(uint64(cat)*104729+uint64(sub)*7907+29, 2)
}

func intentWord(intent int) string { return syllableWord(uint64(intent)*15485863+41, 3) }

func variantWord(intent, v int) string {
	return syllableWord(uint64(intent)*32452843+uint64(v)*999983+59, 2)
}
