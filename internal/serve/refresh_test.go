package serve

import (
	"bytes"
	"fmt"
	"testing"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/core"
	"simrankpp/internal/partition"
)

// refreshGraph builds a deterministic 4-cluster graph with every node
// interned up front (stable ids across rebuilds — the discipline a real
// ingest pipeline needs for incremental refresh to bite) and per-cluster
// edge weights derived from seeds[c], so bumping one cluster's seed
// models a 1-cluster churn step. Edges connect q to a of equal parity, so
// each cluster is exactly two connected components with stable structure.
func refreshGraph(t *testing.T, seeds [4]int) *clickgraph.Graph {
	t.Helper()
	b := clickgraph.NewBuilder()
	for c := 0; c < 4; c++ {
		for q := 0; q < 10; q++ {
			b.AddQuery(fmt.Sprintf("c%d-q%d", c, q))
		}
		for a := 0; a < 8; a++ {
			b.AddAd(fmt.Sprintf("c%d-a%d", c, a))
		}
	}
	for c := 0; c < 4; c++ {
		for q := 0; q < 10; q++ {
			for a := 0; a < 8; a++ {
				if q%2 != a%2 {
					continue
				}
				clicks := int64((q*7+a*3+seeds[c])%9 + 1)
				err := b.AddEdge(fmt.Sprintf("c%d-q%d", c, q), fmt.Sprintf("c%d-a%d", c, a),
					clickgraph.EdgeWeights{
						Impressions:       clicks * 3,
						Clicks:            clicks,
						ExpectedClickRate: float64((q*5+a*11+seeds[c])%100) / 100,
					})
				if err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return b.Build()
}

// refreshCfg converges tightly so warm and cold runs land on the same
// fixpoint to well below the assertion tolerance.
func refreshCfg() core.Config {
	cfg := core.DefaultConfig().WithVariant(core.Weighted)
	cfg.Channel = core.ChannelClicks
	cfg.Iterations = 40
	cfg.Tolerance = 1e-10
	cfg.PruneEpsilon = 1e-8
	return cfg
}

// buildGeneration runs g sharded (scores retained) and snapshots it.
func buildGeneration(t *testing.T, g *clickgraph.Graph, cfg core.Config) (*core.Result, []byte, *Snapshot) {
	t.Helper()
	plan := partition.ComponentPlan(g)
	res, err := core.RunSharded(g, cfg, plan, core.ShardOptions{Workers: 3, RetainShardScores: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, res); err != nil {
		t.Fatal(err)
	}
	snap, err := NewSnapshot(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes(), snap
}

// refreshBytes runs one refresh step in memory.
func refreshBytes(t *testing.T, g *clickgraph.Graph, prev *Snapshot) (*core.Result, *partition.Diff, RefreshStats, []byte) {
	t.Helper()
	res, diff, err := RunRefresh(g, prev, 3)
	if err != nil {
		t.Fatalf("RunRefresh: %v", err)
	}
	var buf bytes.Buffer
	st, err := RefreshSnapshot(&buf, prev, res, diff.Dirty, nil)
	if err != nil {
		t.Fatalf("RefreshSnapshot: %v", err)
	}
	return res, diff, st, buf.Bytes()
}

// TestRefreshZeroDirtyByteIdentical pins the exactness contract's second
// half: refreshing against an unchanged graph recomputes nothing,
// re-encodes nothing, and reproduces the previous snapshot byte for byte
// outside the header (the header differs only in generation metadata).
func TestRefreshZeroDirtyByteIdentical(t *testing.T) {
	cfg := refreshCfg()
	seeds := [4]int{1, 2, 3, 4}
	_, prevBytes, prev := buildGeneration(t, refreshGraph(t, seeds), cfg)

	res, diff, st, got := refreshBytes(t, refreshGraph(t, seeds), prev)
	if diff.DirtyShards != 0 || st.DirtyShards != 0 {
		t.Fatalf("identical graph classified %d shards dirty", diff.DirtyShards)
	}
	if st.BytesReencoded != 0 || st.BytesCopied == 0 {
		t.Fatalf("zero-dirty refresh re-encoded %d bytes, copied %d", st.BytesReencoded, st.BytesCopied)
	}
	for i, ss := range res.ShardScores {
		if ss.QueryScores != nil || ss.AdScores != nil {
			t.Fatalf("zero-dirty refresh computed scores for shard %d", i)
		}
	}
	if !bytes.Equal(got[headerSize:], prevBytes[headerSize:]) {
		t.Fatal("zero-dirty refresh payload differs from the previous snapshot")
	}
	snap, err := NewSnapshot(bytes.NewReader(got), int64(len(got)))
	if err != nil {
		t.Fatalf("refreshed snapshot does not open: %v", err)
	}
	if m := snap.Meta(); m.LastRefreshDirty != 0 {
		t.Errorf("LastRefreshDirty = %d, want 0", m.LastRefreshDirty)
	}
	if prev.Meta().LastRefreshDirty != -1 {
		t.Errorf("full build LastRefreshDirty = %d, want -1", prev.Meta().LastRefreshDirty)
	}
	if snap.Meta().Fingerprint != prev.Meta().Fingerprint {
		t.Errorf("generation fingerprint changed on an identical graph")
	}
}

// TestRefreshChurnedClusterSegmentReuse pins the tentpole behavior on a
// real churn step: only the churned cluster's shards are recomputed
// (warm-started), clean shards' segments are byte-copied from the
// previous file, and the refreshed snapshot's scores match a full cold
// rebuild of the new graph to within the convergence tolerance.
func TestRefreshChurnedClusterSegmentReuse(t *testing.T) {
	cfg := refreshCfg()
	base := refreshGraph(t, [4]int{1, 2, 3, 4})
	_, prevBytes, prev := buildGeneration(t, base, cfg)

	churned := refreshGraph(t, [4]int{1, 2, 99, 4}) // cluster 2 rewritten
	res, diff, st, got := refreshBytes(t, churned, prev)

	// Cluster 2 is two components → two dirty shards; the other six stay
	// clean.
	if diff.DirtyShards != 2 || diff.CleanShards != prev.NumShards()-2 {
		t.Fatalf("classified %d dirty / %d clean, want 2 / %d",
			diff.DirtyShards, diff.CleanShards, prev.NumShards()-2)
	}
	if st.BytesCopied == 0 || st.BytesReencoded == 0 {
		t.Fatalf("stats = %+v: expected both copied and re-encoded bytes", st)
	}
	snap, err := NewSnapshot(bytes.NewReader(got), int64(len(got)))
	if err != nil {
		t.Fatalf("refreshed snapshot does not open: %v", err)
	}
	if err := snap.PreloadAll(); err != nil {
		t.Fatalf("refreshed snapshot fails verification: %v", err)
	}
	if m := snap.Meta(); m.LastRefreshDirty != 2 {
		t.Errorf("LastRefreshDirty = %d, want 2", m.LastRefreshDirty)
	}

	// Clean shards: no recompute happened (pinning byte-copy, not a
	// lucky re-encode) and the stored segment bytes equal the previous
	// generation's exactly.
	for i := range diff.Dirty {
		if diff.Dirty[i] {
			continue
		}
		if res.ShardScores[i].QueryScores != nil {
			t.Fatalf("clean shard %d was recomputed", i)
		}
		pe, ne := prev.dir[i], snap.dir[i]
		if pe.qPairs != ne.qPairs || pe.qCRC != ne.qCRC || pe.aCRC != ne.aCRC || pe.fp != ne.fp {
			t.Fatalf("clean shard %d directory entry drifted: %+v vs %+v", i, pe, ne)
		}
		prevSeg := prevBytes[pe.qOff : pe.qOff+pe.qPairs*pairRecordSize]
		newSeg := got[ne.qOff : ne.qOff+ne.qPairs*pairRecordSize]
		if !bytes.Equal(prevSeg, newSeg) {
			t.Fatalf("clean shard %d query segment bytes differ", i)
		}
	}

	// The refreshed snapshot must agree with a cold full rebuild of the
	// churned graph to within the fixpoint tolerance, for every pair.
	fullRes, _, _ := buildGeneration(t, churned, cfg)
	const tol = 1e-6
	for q1 := 0; q1 < churned.NumQueries(); q1++ {
		for q2 := q1; q2 < churned.NumQueries(); q2++ {
			gotV, wantV := snap.QuerySim(q1, q2), fullRes.QuerySim(q1, q2)
			if d := gotV - wantV; d > tol || d < -tol {
				t.Fatalf("QuerySim(%d,%d) = %v, full rebuild %v", q1, q2, gotV, wantV)
			}
		}
	}
	for a1 := 0; a1 < churned.NumAds(); a1++ {
		for a2 := a1; a2 < churned.NumAds(); a2++ {
			gotV, wantV := snap.AdSim(a1, a2), fullRes.AdSim(a1, a2)
			if d := gotV - wantV; d > tol || d < -tol {
				t.Fatalf("AdSim(%d,%d) = %v, full rebuild %v", a1, a2, gotV, wantV)
			}
		}
	}
}

// TestRefreshNewNodesAndChain runs two chained refreshes — new nodes
// attach to an existing cluster, then a wholly-new island appears — so a
// refreshed snapshot proves usable as the next refresh's base.
func TestRefreshNewNodesAndChain(t *testing.T) {
	cfg := refreshCfg()
	seeds := [4]int{5, 6, 7, 8}
	_, _, prev := buildGeneration(t, refreshGraph(t, seeds), cfg)

	// Step 1: a new query hangs off cluster 1.
	b1 := refreshGraph(t, seeds)
	grown := func(extra func(b *clickgraph.Builder)) *clickgraph.Graph {
		b := clickgraph.NewBuilder()
		b1.Edges(func(q, a int, w clickgraph.EdgeWeights) bool {
			if err := b.AddEdge(b1.Query(q), b1.Ad(a), w); err != nil {
				t.Fatal(err)
			}
			return true
		})
		extra(b)
		return b.Build()
	}
	g1 := grown(func(b *clickgraph.Builder) {
		if err := b.AddClick("c1-qnew", "c1-a0", 0.5); err != nil {
			t.Fatal(err)
		}
	})
	res1, diff1, err := RunRefresh(g1, prev, 2)
	if err != nil {
		t.Fatalf("step 1 RunRefresh: %v", err)
	}
	if diff1.NewQueries != 1 {
		t.Fatalf("step 1 saw %d new queries, want 1", diff1.NewQueries)
	}
	var buf1 bytes.Buffer
	if _, err := RefreshSnapshot(&buf1, prev, res1, diff1.Dirty, nil); err != nil {
		t.Fatalf("step 1 RefreshSnapshot: %v", err)
	}
	snap1, err := NewSnapshot(bytes.NewReader(buf1.Bytes()), int64(buf1.Len()))
	if err != nil {
		t.Fatal(err)
	}

	// Step 2, based on the refreshed snapshot: an island component.
	g2 := grown(func(b *clickgraph.Builder) {
		if err := b.AddClick("c1-qnew", "c1-a0", 0.5); err != nil {
			t.Fatal(err)
		}
		if err := b.AddClick("island-q", "island-a", 0.9); err != nil {
			t.Fatal(err)
		}
	})
	res2, diff2, err := RunRefresh(g2, snap1, 2)
	if err != nil {
		t.Fatalf("step 2 RunRefresh: %v", err)
	}
	if len(diff2.Plan.Shards) != snap1.NumShards()+1 {
		t.Fatalf("island did not append a shard: %d shards from %d", len(diff2.Plan.Shards), snap1.NumShards())
	}
	var buf2 bytes.Buffer
	st2, err := RefreshSnapshot(&buf2, snap1, res2, diff2.Dirty, nil)
	if err != nil {
		t.Fatalf("step 2 RefreshSnapshot: %v", err)
	}
	if st2.DirtyShards != 1 {
		t.Errorf("step 2 recomputed %d shards, want only the island", st2.DirtyShards)
	}
	snap2, err := NewSnapshot(bytes.NewReader(buf2.Bytes()), int64(buf2.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if err := snap2.PreloadAll(); err != nil {
		t.Fatalf("chained snapshot fails verification: %v", err)
	}
	full, _, _ := buildGeneration(t, g2, cfg)
	qi, _ := snap2.QueryID("island-q")
	ai, _ := snap2.AdID("island-a")
	fqi, _ := full.QueryID("island-q")
	if top := snap2.TopRewrites(qi, -1); len(top) != len(full.TopRewrites(fqi, -1)) {
		t.Errorf("island query rewrites differ from full rebuild")
	}
	_ = ai
}

// TestRefreshFixedIterationsBitIdentical pins the Tolerance == 0
// contract: under a fixed-iteration configuration a refresh must not
// warm-start (that would leave dirty shards at twice the effective
// iteration depth of clean ones) — it re-runs dirty shards cold, so the
// refreshed snapshot is bit-identical to a cold run of the whole
// projected plan: clean shards via byte-copy, dirty shards via
// deterministic recompute.
func TestRefreshFixedIterationsBitIdentical(t *testing.T) {
	cfg := core.DefaultConfig().WithVariant(core.Weighted)
	cfg.Channel = core.ChannelClicks
	cfg.PruneEpsilon = 1e-6 // Iterations 7, Tolerance 0
	base := refreshGraph(t, [4]int{1, 2, 3, 4})
	_, _, prev := buildGeneration(t, base, cfg)

	churned := refreshGraph(t, [4]int{1, 2, 99, 4})
	res, diff, st, got := refreshBytes(t, churned, prev)
	if diff.DirtyShards == 0 || diff.CleanShards == 0 {
		t.Fatalf("fixture should mix clean and dirty shards, got %d/%d", diff.CleanShards, diff.DirtyShards)
	}
	if st.BytesCopied == 0 {
		t.Fatal("no clean segments were byte-copied")
	}
	_ = res
	snap, err := NewSnapshot(bytes.NewReader(got), int64(len(got)))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Meta().IterationBudget != cfg.Iterations {
		t.Errorf("recorded iteration budget %d, want %d", snap.Meta().IterationBudget, cfg.Iterations)
	}
	full, err := core.RunSharded(churned, cfg, diff.Plan, core.ShardOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for q1 := 0; q1 < churned.NumQueries(); q1++ {
		for q2 := q1; q2 < churned.NumQueries(); q2++ {
			if gotV, wantV := snap.QuerySim(q1, q2), full.QuerySim(q1, q2); gotV != wantV {
				t.Fatalf("QuerySim(%d,%d) = %v, want %v (bit-identical)", q1, q2, gotV, wantV)
			}
		}
	}
	for a1 := 0; a1 < churned.NumAds(); a1++ {
		for a2 := a1; a2 < churned.NumAds(); a2++ {
			if gotV, wantV := snap.AdSim(a1, a2), full.AdSim(a1, a2); gotV != wantV {
				t.Fatalf("AdSim(%d,%d) = %v, want %v (bit-identical)", a1, a2, gotV, wantV)
			}
		}
	}
}

// TestRefreshRejectsConfigMismatch pins the coherence guard.
func TestRefreshRejectsConfigMismatch(t *testing.T) {
	cfg := refreshCfg()
	g := refreshGraph(t, [4]int{1, 2, 3, 4})
	_, _, prev := buildGeneration(t, g, cfg)

	bad := cfg
	bad.C1 = 0.6
	plan := partition.ComponentPlan(g)
	res, err := core.RunSharded(g, bad, plan, core.ShardOptions{RetainShardScores: true})
	if err != nil {
		t.Fatal(err)
	}
	dirty := make([]bool, len(plan.Shards))
	var buf bytes.Buffer
	if _, err := RefreshSnapshot(&buf, prev, res, dirty, nil); err == nil {
		t.Fatal("refresh under a different decay factor was accepted")
	}
}
