package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/core"
)

func fig3Server(t *testing.T, cfg Config) (*Server, *core.Result) {
	t.Helper()
	res, err := core.Run(clickgraph.Fig3(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return NewServer(res, cfg), res
}

func get(t *testing.T, h http.Handler, url string) (int, []byte) {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

func TestServerRewriteEndpoint(t *testing.T) {
	srv, res := fig3Server(t, DefaultServerConfig())
	h := srv.Handler()

	code, body := get(t, h, "/rewrite?q=camera&top=2")
	if code != http.StatusOK {
		t.Fatalf("GET /rewrite = %d: %s", code, body)
	}
	var resp rewriteResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("bad JSON %q: %v", body, err)
	}
	if resp.Query != "camera" || resp.Method != "simrank" {
		t.Errorf("response header = %+v", resp)
	}
	if len(resp.Rewrites) == 0 || len(resp.Rewrites) > 2 {
		t.Fatalf("got %d rewrites, want 1..2", len(resp.Rewrites))
	}
	// The top rewrite must agree with the live index (camera's best
	// partner on Fig3 is "digital camera").
	if resp.Rewrites[0].Text != "digital camera" {
		t.Errorf("top rewrite = %q, want %q", resp.Rewrites[0].Text, "digital camera")
	}
	cam, _ := res.QueryID("camera")
	want := res.TopRewrites(cam, 1)[0]
	if resp.Rewrites[0].Score != want.Score {
		t.Errorf("top score = %v, want %v", resp.Rewrites[0].Score, want.Score)
	}

	// Error paths.
	if code, _ := get(t, h, "/rewrite"); code != http.StatusBadRequest {
		t.Errorf("missing q -> %d, want 400", code)
	}
	if code, _ := get(t, h, "/rewrite?q=nope"); code != http.StatusNotFound {
		t.Errorf("unknown query -> %d, want 404", code)
	}
	if code, _ := get(t, h, "/rewrite?q=camera&top=x"); code != http.StatusBadRequest {
		t.Errorf("bad top -> %d, want 400", code)
	}
}

func TestServerSimilarEndpoint(t *testing.T) {
	srv, res := fig3Server(t, DefaultServerConfig())
	h := srv.Handler()

	code, body := get(t, h, "/similar?q=pc&top=3")
	if code != http.StatusOK {
		t.Fatalf("GET /similar = %d: %s", code, body)
	}
	var resp rewriteResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	pc, _ := res.QueryID("pc")
	want := res.TopRewrites(pc, 3)
	if len(resp.Rewrites) != len(want) {
		t.Fatalf("got %d similar queries, want %d", len(resp.Rewrites), len(want))
	}
	for i := range want {
		if resp.Rewrites[i].Text != res.Query(want[i].Node) || resp.Rewrites[i].Score != want[i].Score {
			t.Errorf("similar[%d] = %+v, want %q %v", i, resp.Rewrites[i], res.Query(want[i].Node), want[i].Score)
		}
	}

	code, body = get(t, h, "/similar?ad=hp.com&top=3")
	if code != http.StatusOK {
		t.Fatalf("GET /similar?ad = %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Rewrites) == 0 {
		t.Error("no similar ads for hp.com")
	}
	if code, _ := get(t, h, "/similar"); code != http.StatusBadRequest {
		t.Errorf("neither q nor ad -> %d, want 400", code)
	}
	if code, _ := get(t, h, "/similar?q=pc&ad=hp.com"); code != http.StatusBadRequest {
		t.Errorf("both q and ad -> %d, want 400", code)
	}
}

func TestServerCacheAndStats(t *testing.T) {
	srv, _ := fig3Server(t, Config{DefaultTop: 5, MaxTop: 10, CacheSize: 8})
	h := srv.Handler()

	_, first := get(t, h, "/rewrite?q=camera")
	_, second := get(t, h, "/rewrite?q=camera")
	if !bytes.Equal(first, second) {
		t.Errorf("cached response differs: %q vs %q", first, second)
	}
	// A 404 and a 400 to exercise the per-endpoint error counters.
	if code, _ := get(t, h, "/rewrite?q=nope"); code != http.StatusNotFound {
		t.Fatalf("unknown query = %d", code)
	}
	if code, _ := get(t, h, "/similar"); code != http.StatusBadRequest {
		t.Fatalf("bad similar = %d", code)
	}
	code, body := get(t, h, "/stats")
	if code != http.StatusOK {
		t.Fatalf("GET /stats = %d", code)
	}
	var stats StatsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	// /stats counts itself: 3 rewrites + 1 similar + this stats request.
	if stats.Requests != 5 || stats.CacheHits != 1 || stats.CacheEntries != 1 {
		t.Errorf("stats = %+v, want 5 requests / 1 hit / 1 entry", stats)
	}
	if ep := stats.Endpoints["rewrite"]; ep.Requests != 3 || ep.Errors4xx != 1 || ep.Errors5xx != 0 {
		t.Errorf("rewrite endpoint stats = %+v, want 3 requests / 1 4xx", ep)
	}
	if ep := stats.Endpoints["similar"]; ep.Requests != 1 || ep.Errors4xx != 1 {
		t.Errorf("similar endpoint stats = %+v, want 1 request / 1 4xx", ep)
	}
	if ep := stats.Endpoints["stats"]; ep.Requests != 1 {
		t.Errorf("stats endpoint did not count itself: %+v", ep)
	}
	if stats.Queries != 5 || stats.Method != "simrank" {
		t.Errorf("index stats = %+v", stats)
	}
	if stats.Snapshot != nil {
		t.Error("live result reported snapshot metadata")
	}
}

func TestServerHealthz(t *testing.T) {
	srv, _ := fig3Server(t, DefaultServerConfig())
	code, body := get(t, srv.Handler(), "/healthz")
	if code != http.StatusOK || string(body) != "ok\n" {
		t.Errorf("healthz = %d %q", code, body)
	}
}

func TestServerReadyzHealthy(t *testing.T) {
	srv, _ := fig3Server(t, DefaultServerConfig())
	code, body := get(t, srv.Handler(), "/readyz")
	if code != http.StatusOK {
		t.Fatalf("readyz = %d", code)
	}
	var resp ReadyResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "ok" || len(resp.Quarantined) != 0 {
		t.Errorf("readyz = %+v, want ok with no quarantined shards", resp)
	}
}

// TestGenerationIdentitySurfaced pins the fleet-agreement contract: a
// snapshot-backed server reports its generation identity (journal id,
// graph fingerprint hex, generated-at, dirty count) in both /readyz and
// /stats, identically — the key a read gateway compares across replicas
// to keep answers generation-consistent. A live (non-snapshot) index
// reports none.
func TestGenerationIdentitySurfaced(t *testing.T) {
	res, err := core.Run(testGraph(t), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	snap := mustSnapshot(t, res)
	srv := NewServer(snap, DefaultServerConfig())
	srv.SetGenerationID(7)
	h := srv.Handler()

	code, body := get(t, h, "/readyz")
	if code != http.StatusOK {
		t.Fatalf("readyz = %d: %s", code, body)
	}
	var ready ReadyResponse
	if err := json.Unmarshal(body, &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Generation == nil {
		t.Fatal("readyz carries no generation identity")
	}
	meta := snap.Meta()
	if ready.Generation.ID != 7 || ready.Generation.Fingerprint != meta.Fingerprint ||
		!ready.Generation.GeneratedAt.Equal(meta.GeneratedAt) || ready.Generation.DirtyShards != meta.LastRefreshDirty {
		t.Errorf("readyz generation = %+v, want id 7, fingerprint %s, generated %v, dirty %d",
			ready.Generation, meta.Fingerprint, meta.GeneratedAt, meta.LastRefreshDirty)
	}

	code, body = get(t, h, "/stats")
	if code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	var stats StatsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Generation == nil || *stats.Generation != *ready.Generation {
		t.Errorf("stats generation = %+v, want the same identity readyz reports (%+v)",
			stats.Generation, ready.Generation)
	}

	// A live-result server has no snapshot generation to agree on.
	live, _ := fig3Server(t, DefaultServerConfig())
	_, body = get(t, live.Handler(), "/readyz")
	var liveReady ReadyResponse
	if err := json.Unmarshal(body, &liveReady); err != nil {
		t.Fatal(err)
	}
	if liveReady.Generation != nil {
		t.Errorf("live-index readyz reports a generation: %+v", liveReady.Generation)
	}
}

// TestReloadFailureKeepsServing pins the SIGHUP reload failure path: a
// load that fails (corrupt new snapshot) leaves the old index serving,
// increments reload_failures, and does not bump reloads.
func TestReloadFailureKeepsServing(t *testing.T) {
	srv, _ := fig3Server(t, DefaultServerConfig())
	h := srv.Handler()
	_, before := get(t, h, "/rewrite?q=camera")

	badLoad := func() (ScoreIndex, error) {
		_, err := NewSnapshot(bytes.NewReader([]byte("SRPPSNAPgarbage")), 15)
		return nil, err
	}
	if err := srv.Reload(badLoad, nil, nil, t.Logf); err == nil {
		t.Fatal("Reload of a corrupt snapshot reported success")
	}
	if got := srv.ReloadFailures(); got != 1 {
		t.Errorf("reload failures = %d, want 1", got)
	}
	code, after := get(t, h, "/rewrite?q=camera")
	if code != http.StatusOK || !bytes.Equal(before, after) {
		t.Errorf("old index stopped serving after failed reload: %d %q", code, after)
	}
	var stats StatsResponse
	_, body := get(t, h, "/stats")
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.ReloadFailures != 1 || stats.Reloads != 0 {
		t.Errorf("stats report %d reloads / %d failures, want 0 / 1", stats.Reloads, stats.ReloadFailures)
	}
}

// TestReloadFallsBackToGoodIndex pins the generation-fallback half: when
// the primary load fails but the fallback loader produces an index, the
// server swaps to the fallback and still counts the failed load.
func TestReloadFallsBackToGoodIndex(t *testing.T) {
	srv, _ := fig3Server(t, DefaultServerConfig())
	badLoad := func() (ScoreIndex, error) {
		_, err := NewSnapshot(bytes.NewReader([]byte("short")), 5)
		return nil, err
	}
	wres, err := core.Run(clickgraph.Fig3(), core.DefaultConfig().WithVariant(core.Weighted))
	if err != nil {
		t.Fatal(err)
	}
	fallback := func() (ScoreIndex, error) { return wres, nil }
	if err := srv.Reload(badLoad, fallback, nil, t.Logf); err != nil {
		t.Fatalf("Reload with working fallback failed: %v", err)
	}
	if srv.ReloadFailures() != 1 {
		t.Errorf("reload failures = %d, want 1", srv.ReloadFailures())
	}
	code, body := get(t, srv.Handler(), "/rewrite?q=camera")
	if code != http.StatusOK {
		t.Fatalf("rewrite after fallback = %d", code)
	}
	var resp rewriteResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Method != "weighted simrank" {
		t.Errorf("method after fallback = %q, want the fallback index's", resp.Method)
	}
}

// TestConcurrentSwapAndCachePut races index swaps against in-flight
// requests populating the response cache — the reload-under-load path.
// Run under -race (CI's chaos job does) it proves Swap's drain and the
// cache's locking compose; functionally it checks every response is
// well-formed and the server survives.
func TestConcurrentSwapAndCachePut(t *testing.T) {
	res, err := core.Run(clickgraph.Fig3(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	wres, err := core.Run(clickgraph.Fig3(), core.DefaultConfig().WithVariant(core.Weighted))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(res, Config{DefaultTop: 5, MaxTop: 10, CacheSize: 4})
	h := srv.Handler()

	const loops = 50
	var wg sync.WaitGroup
	queries := []string{"camera", "digital camera", "pc", "tv", "flower"}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < loops; i++ {
				q := queries[(w+i)%len(queries)]
				req := httptest.NewRequest("GET", "/rewrite?q="+url.QueryEscape(q), nil)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("rewrite %q = %d during swaps", q, rec.Code)
					return
				}
				var resp rewriteResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					t.Errorf("torn response for %q: %v", q, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < loops; i++ {
			if i%2 == 0 {
				srv.Swap(wres)
			} else {
				srv.Swap(res)
			}
		}
	}()
	wg.Wait()
}

// TestServerSnapshotSwap pins graceful reload: the server serves a
// snapshot, Swap replaces it, the cache is dropped, and stats expose the
// snapshot metadata and lazy segment count.
func TestServerSnapshotSwap(t *testing.T) {
	res, err := core.Run(clickgraph.Fig3(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, res); err != nil {
		t.Fatal(err)
	}
	snap, err := NewSnapshot(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(snap, DefaultServerConfig())
	h := srv.Handler()

	code, body := get(t, h, "/stats")
	if code != http.StatusOK {
		t.Fatalf("GET /stats = %d", code)
	}
	var stats StatsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Snapshot == nil || stats.Snapshot.Shards != 1 {
		t.Fatalf("stats lack snapshot metadata: %+v", stats)
	}
	if stats.LoadedSegments != 0 {
		t.Errorf("segments loaded before any query: %d", stats.LoadedSegments)
	}

	if code, _ := get(t, h, "/rewrite?q=camera"); code != http.StatusOK {
		t.Fatal("rewrite from snapshot failed")
	}
	if srv.cache.Len() != 1 {
		t.Fatalf("cache entries = %d, want 1", srv.cache.Len())
	}
	// Swap in a weighted run; the cache must drop and the method change.
	wres, err := core.Run(clickgraph.Fig3(), core.DefaultConfig().WithVariant(core.Weighted))
	if err != nil {
		t.Fatal(err)
	}
	if old := srv.Swap(wres); old != ScoreIndex(snap) {
		t.Error("Swap did not return the previous index")
	}
	if srv.cache.Len() != 0 {
		t.Error("cache survived Swap")
	}
	code, body = get(t, h, "/rewrite?q=camera")
	if code != http.StatusOK {
		t.Fatalf("rewrite after swap = %d", code)
	}
	var resp rewriteResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Method != "weighted simrank" {
		t.Errorf("method after swap = %q, want weighted simrank", resp.Method)
	}
}
