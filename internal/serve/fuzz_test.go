package serve

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/core"
	"simrankpp/internal/partition"
)

// FuzzOpenSnapshot throws arbitrary bytes at the snapshot reader — header,
// string table, route map, directory, and the lazily-loaded segments the
// refresh path byte-copies. The contract under corruption is an error, not
// a panic and not an unbounded allocation: every length the file claims is
// validated against the file's actual size before it drives a make().
// The hand-picked corruption tests (snapshot_test.go) pin specific error
// paths; the fuzzer hunts the ones nobody picked.
func FuzzOpenSnapshot(f *testing.F) {
	// Seed with real snapshots — monolithic and sharded — so mutations
	// start from deep in the happy path, plus a few shallow corruptions.
	g := clickgraph.Fig3()
	res, err := core.Run(g, core.DefaultConfig())
	if err != nil {
		f.Fatal(err)
	}
	var mono bytes.Buffer
	if err := WriteSnapshot(&mono, res); err != nil {
		f.Fatal(err)
	}
	f.Add(mono.Bytes())

	b := clickgraph.NewBuilder()
	for c := 0; c < 3; c++ {
		for q := 0; q < 4; q++ {
			for a := 0; a < 3; a++ {
				name := func(kind string, i int) string { return string(rune('x'+c)) + kind + string(rune('0'+i)) }
				if err := b.AddClick(name("q", q), name("a", a), 0.5); err != nil {
					f.Fatal(err)
				}
			}
		}
	}
	sg := b.Build()
	sres, err := core.RunSharded(sg, core.DefaultConfig(), partition.ComponentPlan(sg),
		core.ShardOptions{RetainShardScores: true})
	if err != nil {
		f.Fatal(err)
	}
	var sharded bytes.Buffer
	if err := WriteSnapshot(&sharded, sres); err != nil {
		f.Fatal(err)
	}
	f.Add(sharded.Bytes())

	// v3 seeds: a sharded snapshot carrying a precomputed top-k rewrite
	// section (bid-filtered, so the header's bid hash is nonzero), the
	// same with its top-k region truncated away, and one with a byte
	// flipped inside the first shard's blob (a valid header whose section
	// must quarantine, not crash).
	var topk bytes.Buffer
	bids := map[string]bool{sg.Query(0): true, sg.Query(5): true}
	if err := WriteSnapshotTopK(&topk, sres, TopKOptions{K: 3, BidTerms: bids}); err != nil {
		f.Fatal(err)
	}
	f.Add(topk.Bytes())
	f.Add(topk.Bytes()[:headerSize+dirEntrySize])
	if ref, err := NewSnapshot(bytes.NewReader(topk.Bytes()), int64(topk.Len())); err == nil {
		if off, ln := ref.dir[0].tkOff, ref.dir[0].tkLen; ln > 0 {
			blobFlip := append([]byte(nil), topk.Bytes()...)
			blobFlip[int(off)+int(ln)/2] ^= 0x01
			f.Add(blobFlip)
		}
		ref.Close()
	}

	// Generation manifests live beside snapshots on disk; a confused
	// operator (or a buggy rollback script) pointing the daemon at one
	// must get a clean rejection. Seed the raw manifest, a padded one
	// (past the header-size gate, into the magic check), and a hybrid
	// with snapshot magic spliced over manifest bytes.
	mf := encodeManifest(&Generation{
		ID: 7, Fingerprint: 0xdeadbeef, CRC: 0x1234, Size: 4096,
		CreatedAt: time.Unix(1700000000, 0), DirtyShards: 2,
	})
	f.Add(append([]byte(nil), mf...))
	f.Add(append(append([]byte(nil), mf...), make([]byte, headerSize)...))
	hybrid := append([]byte(nil), mf...)
	hybrid = append(hybrid, mf...)
	hybrid = append(hybrid, make([]byte, headerSize)...)
	copy(hybrid, snapshotMagic)
	f.Add(hybrid)

	truncated := append([]byte(nil), mono.Bytes()...)
	f.Add(truncated[:len(truncated)*2/3])
	huge := append([]byte(nil), mono.Bytes()...)
	binary.LittleEndian.PutUint64(huge[80:], ^uint64(0)) // stringsLen = 2^64-1
	f.Add(huge)
	f.Add([]byte("SRPPSNAP"))

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := NewSnapshot(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		// An accepted snapshot must survive its whole read surface.
		_ = snap.PreloadAll()
		m := snap.Meta()
		for q := 0; q < m.NumQueries; q++ {
			snap.TopRewrites(q, 3)
			if q+1 < m.NumQueries {
				snap.QuerySim(q, q+1)
			}
			id, shard, ok := snap.PrevQuery(snap.Query(q))
			if ok && (id != q || shard != int(snap.qRoute[q])) {
				// Duplicate names may remap; ids must still be in range.
				if id < 0 || id >= m.NumQueries {
					t.Fatalf("PrevQuery returned id %d outside [0,%d)", id, m.NumQueries)
				}
			}
			// The precomputed section decodes under the same no-panic
			// contract; a bad blob answers (nil, false), never garbage
			// node ids.
			if recs, ok := snap.PrecomputedRewrites(q, 3); ok {
				for _, r := range recs {
					if r.Node < 0 || r.Node >= m.NumQueries {
						t.Fatalf("PrecomputedRewrites returned node %d outside [0,%d)", r.Node, m.NumQueries)
					}
				}
			}
		}
		for a := 0; a < m.NumAds; a++ {
			snap.TopSimilarAds(a, 3)
		}
		for i := 0; i < snap.NumShards(); i++ {
			snap.ShardFingerprint(i)
		}
	})
}
