//go:build unix

package serve

import (
	"errors"
	"os"
	"syscall"
)

// flockExclusive takes a non-blocking exclusive flock on f. EWOULDBLOCK
// means another holder exists — the caller turns that into its
// fail-fast error.
func flockExclusive(f *os.File) error {
	err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
	if errors.Is(err, syscall.EWOULDBLOCK) {
		return errors.New("flock: held elsewhere")
	}
	return err
}

func funlock(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}
