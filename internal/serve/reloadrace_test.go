package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestReloadRacesRefreshSwap drives SIGHUP-style reloads concurrently
// with an in-place `-refresh`-style swap of the serving file (temp +
// rename, the only replacement the snapshot contract permits) and
// asserts every reload lands on exactly one of the two generations —
// header, segments and fingerprint all from the same file, never a torn
// mix. Run under -race this also checks the Server.Swap/handler
// synchronization.
func TestReloadRacesRefreshSwap(t *testing.T) {
	cfg := refreshCfg()
	g := refreshGraph(t, [4]int{1, 2, 3, 4})
	_, bytesA, snapA := buildGeneration(t, g, cfg)
	fpA := snapA.Meta().Fingerprint

	// Generation B: one cluster churned, refreshed from A.
	churned := refreshGraph(t, [4]int{9, 2, 3, 4})
	_, _, _, bytesB := refreshBytes(t, churned, snapA)
	snapB, err := NewSnapshot(bytes.NewReader(bytesB), int64(len(bytesB)))
	if err != nil {
		t.Fatal(err)
	}
	fpB := snapB.Meta().Fingerprint
	if fpA == fpB {
		t.Fatal("fixture generations share a fingerprint — the race would be undetectable")
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "serving.snap")
	swapIn := func(b []byte) {
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, b, 0o644); err != nil {
			t.Error(err)
			return
		}
		if err := os.Rename(tmp, path); err != nil {
			t.Error(err)
		}
	}
	swapIn(bytesA)

	// load opens the serving path and forces every segment through its
	// CRC check: a torn read (header of one generation, segments of the
	// other) cannot pass PreloadAll, because each generation's directory
	// carries its own segment CRCs and offsets.
	load := func() (ScoreIndex, error) {
		snap, err := OpenSnapshot(path)
		if err != nil {
			return nil, err
		}
		if err := snap.PreloadAll(); err != nil {
			snap.Close()
			return nil, err
		}
		return snap, nil
	}

	first, err := load()
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(first, DefaultServerConfig())
	h := srv.Handler()

	const swaps = 40
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < swaps; i++ {
			if i%2 == 0 {
				swapIn(bytesB)
			} else {
				swapIn(bytesA)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Reload as fast as the swapper churns, interleaved with live
	// queries; every loaded index must be wholly generation A or B.
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < swaps; i++ {
			if err := srv.Reload(load, nil, func(old ScoreIndex) {
				if s, ok := old.(*Snapshot); ok {
					s.Close()
				}
			}, t.Logf); err != nil {
				t.Errorf("reload %d: %v", i, err)
				return
			}
			got := srv.Index().(*Snapshot)
			if fp := got.Meta().Fingerprint; fp != fpA && fp != fpB {
				t.Errorf("reload %d landed on fingerprint %s, not generation A (%s) or B (%s)", i, fp, fpA, fpB)
				return
			}
			if err := got.Err(); err != nil {
				t.Errorf("reload %d: loaded snapshot degraded: %v", i, err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Live traffic against whichever generation is in: both fixtures
	// intern identical node names, so any query answers under either.
	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
			req := httptest.NewRequest("GET", "/rewrite?q=c0-q0", nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Fatalf("query during reload race = %d: %s", rec.Code, rec.Body.Bytes())
			}
		}
	}
	wg.Wait()

	if s, ok := srv.Index().(*Snapshot); ok {
		defer s.Close()
	}
}

// TestShedRetryAfterDerivedFromOverloadDepth pins the derived
// Retry-After schedule: the hint grows by one base interval per
// MaxInFlight consecutive sheds, clamps at MaxRetryAfterSeconds, and
// resets to the base as soon as a request is admitted again.
func TestShedRetryAfterDerivedFromOverloadDepth(t *testing.T) {
	cfg := DefaultServerConfig()
	cfg.MaxInFlight = 1
	cfg.RetryAfterSeconds = 1
	cfg.MaxRetryAfterSeconds = 3
	srv, _ := fig3Server(t, cfg)
	h := srv.Handler()

	shedOnce := func(i int, want string) {
		t.Helper()
		req := httptest.NewRequest("GET", "/rewrite?q=camera", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("shed %d = %d, want 503: %s", i, rec.Code, rec.Body.Bytes())
		}
		if got := rec.Header().Get("Retry-After"); got != want {
			t.Fatalf("shed %d Retry-After = %q, want %q", i, got, want)
		}
	}

	// Hold the only slot: every scoring request sheds, and with depth 1
	// each consecutive shed adds a base interval until the clamp.
	srv.inflight <- struct{}{}
	for i, want := range []string{"1", "2", "3", "3", "3"} {
		shedOnce(i, want)
	}

	// An admitted request resets the streak; the next shed starts over.
	<-srv.inflight
	if code, body := get(t, h, "/rewrite?q=camera"); code != http.StatusOK {
		t.Fatalf("admitted request = %d: %s", code, body)
	}
	srv.inflight <- struct{}{}
	shedOnce(99, "1")
	<-srv.inflight
}
