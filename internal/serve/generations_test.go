package serve

import (
	"bytes"
	"errors"
	"hash/crc32"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

// Generation-store tests: the crash half of the fault-tolerance story.
// A refresh killed at any injected checkpoint must leave the previous
// generation intact and loadable, sweepable debris at worst, and a
// rollback path that restores byte-identical serving.

// genFixture is the generation corpus the tests share: gen1 is the
// baseline snapshot, gen2 and gen3 refresh-shaped successors with
// churned cluster scores (so snapshot bytes and /rewrite bodies
// distinguish every generation).
type genFixture struct {
	gen1, gen2, gen3 []byte
	fp1, fp2, fp3    uint64
}

func buildGenFixture(t *testing.T) genFixture {
	t.Helper()
	fp := func(snap *Snapshot) uint64 {
		var x uint64
		for i := 0; i < snap.NumShards(); i++ {
			x ^= snap.ShardFingerprint(i)
		}
		return x
	}
	_, b1, s1 := buildGeneration(t, refreshGraph(t, [4]int{1, 2, 3, 4}), refreshCfg())
	_, b2, s2 := buildGeneration(t, refreshGraph(t, [4]int{9, 2, 3, 4}), refreshCfg())
	_, b3, s3 := buildGeneration(t, refreshGraph(t, [4]int{9, 7, 3, 4}), refreshCfg())
	if bytes.Equal(b1, b2) || bytes.Equal(b2, b3) {
		t.Fatal("fixture generations are byte-identical; churn seed had no effect")
	}
	return genFixture{gen1: b1, gen2: b2, gen3: b3, fp1: fp(s1), fp2: fp(s2), fp3: fp(s3)}
}

// servingDir lays out a serving path holding gen1 with its generation
// adopted, as the first managed refresh would find it.
func servingDir(t *testing.T, fx genFixture) (path string, gs *GenerationStore, adopted *Generation) {
	t.Helper()
	path = filepath.Join(t.TempDir(), "scores.snap")
	if err := os.WriteFile(path, fx.gen1, 0o644); err != nil {
		t.Fatal(err)
	}
	gs = NewGenerationStore(path, 3)
	adopted, err := gs.Adopt()
	if err != nil {
		t.Fatal(err)
	}
	if adopted == nil || adopted.ID != 1 {
		t.Fatalf("Adopt() = %+v, want generation 1", adopted)
	}
	return path, gs, adopted
}

// commitAndPublish runs the write half of a refresh: journal gen2 and
// re-point serving at it.
func commitAndPublish(gs *GenerationStore, fx genFixture) (*Generation, error) {
	return commitPublishBytes(gs, fx.gen2, fx.fp2)
}

// commitPublishBytes journals data as a new generation and re-points
// serving at it. It writes in two chunks, as the real RefreshSnapshot
// streams sections — which is also what arms the mid-write (torn second
// write) crash.
func commitPublishBytes(gs *GenerationStore, data []byte, fp uint64) (*Generation, error) {
	g, err := gs.Commit(1, fp, func(w io.Writer) error {
		half := len(data) / 2
		if _, werr := w.Write(data[:half]); werr != nil {
			return werr
		}
		_, werr := w.Write(data[half:])
		return werr
	})
	if err != nil {
		return nil, err
	}
	return g, gs.Publish(g)
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func globTemps(t *testing.T, dirs ...string) []string {
	t.Helper()
	var out []string
	for _, d := range dirs {
		m, err := filepath.Glob(filepath.Join(d, "*.tmp*"))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, m...)
	}
	return out
}

// TestGenerationCrashAtEveryCheckpoint kills the refresh at each
// injected point and asserts the crash contract: the serving file is
// untouched and still opens, the previous generation verifies, debris
// is swept by the next run, and that next run completes the refresh and
// can still roll back to generation 1.
func TestGenerationCrashAtEveryCheckpoint(t *testing.T) {
	fx := buildGenFixture(t)
	stages := []struct {
		stage      string
		leavesTemp bool
	}{
		{"commit:mid-write", true},   // torn snapshot write
		{"commit:pre-rename", true},  // full temp, never renamed
		{"commit:post-snap", false},  // snapshot renamed, no manifest
		{"manifest:mid-write", true}, // manifest temp created empty
		{"manifest:pre-rename", true},
		{"publish:pre-rename", true}, // link debris beside serving path
	}
	for _, tc := range stages {
		t.Run(tc.stage, func(t *testing.T) {
			path, gs, adopted := servingDir(t, fx)
			gs.failAt = tc.stage
			_, err := commitAndPublish(gs, fx)
			if !errors.Is(err, errCrashInjected) {
				t.Fatalf("crash at %s: err = %v, want injected crash", tc.stage, err)
			}

			// The serving path never saw the crash: byte-identical and
			// openable.
			if got := readFile(t, path); !bytes.Equal(got, fx.gen1) {
				t.Fatal("serving file changed across a crashed refresh")
			}
			if snap, err := OpenSnapshot(path); err != nil {
				t.Fatalf("serving file no longer opens: %v", err)
			} else {
				snap.Close()
			}
			// The previous generation still verifies end to end.
			if err := gs.verify(adopted); err != nil {
				t.Fatalf("previous generation no longer verifies: %v", err)
			}

			// The next run sweeps the debris…
			recovered := NewGenerationStore(path, 3)
			swept, err := recovered.SweepTemp()
			if err != nil {
				t.Fatal(err)
			}
			if tc.leavesTemp && swept == 0 {
				t.Fatalf("crash at %s left no temp to sweep, expected debris", tc.stage)
			}
			if temps := globTemps(t, gs.Dir(), filepath.Dir(path)); len(temps) != 0 {
				t.Fatalf("temps remain after sweep: %v", temps)
			}
			// …and LastGood never trusts a half-committed generation: only
			// a crash after the manifest landed (publish:pre-rename) may
			// report gen 2.
			lg, err := recovered.LastGood()
			if err != nil {
				t.Fatalf("no good generation after crash at %s: %v", tc.stage, err)
			}
			wantCRC := crc32.ChecksumIEEE(fx.gen1)
			if tc.stage == "publish:pre-rename" {
				wantCRC = crc32.ChecksumIEEE(fx.gen2)
			}
			if lg.CRC != wantCRC {
				t.Fatalf("LastGood after crash at %s = generation %d (crc %08x), want crc %08x",
					tc.stage, lg.ID, lg.CRC, wantCRC)
			}

			// The retried refresh completes (with fresh content — the
			// re-run refreshed a newer graph)…
			g2, err := commitPublishBytes(recovered, fx.gen3, fx.fp3)
			if err != nil {
				t.Fatalf("retried refresh after crash at %s: %v", tc.stage, err)
			}
			if got := readFile(t, path); !bytes.Equal(got, fx.gen3) {
				t.Fatal("retried refresh did not publish its generation")
			}
			if g2.ID <= adopted.ID {
				t.Fatalf("retried refresh got generation id %d, want > %d", g2.ID, adopted.ID)
			}
			// …and rollback from it restores generation 1 byte for byte.
			rb, err := recovered.Rollback()
			if err != nil {
				t.Fatal(err)
			}
			if tc.stage == "publish:pre-rename" {
				// Generation 2 was fully journaled before this crash, so
				// the retried refresh became generation 3 and one rollback
				// step lands on 2; a second reaches the original.
				if rb.ID != g2.ID-1 {
					t.Fatalf("first rollback restored generation %d, want %d", rb.ID, g2.ID-1)
				}
				if rb, err = recovered.Rollback(); err != nil {
					t.Fatal(err)
				}
			}
			if rb.ID != adopted.ID {
				t.Fatalf("rollback restored generation %d, want %d", rb.ID, adopted.ID)
			}
			if got := readFile(t, path); !bytes.Equal(got, fx.gen1) {
				t.Fatal("rollback did not restore generation 1 byte-identically")
			}
		})
	}
}

// TestGenerationRollbackByteIdenticalRewrite is the serving half of the
// crash contract: refresh to generation 2, roll back, reload (what
// SIGHUP triggers) — the /rewrite body must be byte-identical to what
// generation 1 served before the refresh.
func TestGenerationRollbackByteIdenticalRewrite(t *testing.T) {
	fx := buildGenFixture(t)
	path, gs, _ := servingDir(t, fx)

	open := func() (ScoreIndex, error) { return OpenSnapshot(path) }
	fallback := func() (ScoreIndex, error) {
		g, err := NewGenerationStore(path, 0).LastGood()
		if err != nil {
			return nil, err
		}
		return OpenSnapshot(g.SnapPath)
	}
	retire := func(old ScoreIndex) {
		if c, ok := old.(*Snapshot); ok {
			c.Close()
		}
	}
	idx, err := open()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultServerConfig()
	cfg.CacheSize = 0
	srv := NewServer(idx, cfg)
	h := srv.Handler()

	// A cluster-0 query scores differently across the two generations.
	url := rewriteURL("c0-q0")
	code, before := get(t, h, url)
	if code != http.StatusOK {
		t.Fatalf("baseline rewrite = %d: %s", code, before)
	}

	if _, err := commitAndPublish(gs, fx); err != nil {
		t.Fatal(err)
	}
	if err := srv.Reload(open, fallback, retire, nil); err != nil {
		t.Fatal(err)
	}
	_, during := get(t, h, url)
	if bytes.Equal(before, during) {
		t.Fatal("generation 2 serves the same bytes as generation 1; fixture churn is invisible")
	}

	if _, err := gs.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Reload(open, fallback, retire, nil); err != nil {
		t.Fatal(err)
	}
	code, after := get(t, h, url)
	if code != http.StatusOK {
		t.Fatalf("post-rollback rewrite = %d: %s", code, after)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("post-rollback rewrite differs from pre-refresh:\n before %s\n after  %s", before, after)
	}
}

// TestGenerationReloadFallsBackWhenServingCorrupt covers the daemon-side
// net: the serving file is corrupt at reload time, so Reload's fallback
// serves the last good journaled generation instead of wedging.
func TestGenerationReloadFallsBackWhenServingCorrupt(t *testing.T) {
	fx := buildGenFixture(t)
	path, _, _ := servingDir(t, fx)

	idx, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultServerConfig()
	cfg.CacheSize = 0
	srv := NewServer(idx, cfg)
	h := srv.Handler()
	_, before := get(t, h, rewriteURL("c0-q0"))

	// The batch side "replaces" the serving file with garbage. Replacement
	// is by rename, never an in-place write — the serving file may be a
	// hardlink into the journal, so an in-place write would corrupt the
	// journaled generation too (the store's single-writer contract).
	garbage := filepath.Join(filepath.Dir(path), "broken.next")
	if err := os.WriteFile(garbage, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(garbage, path); err != nil {
		t.Fatal(err)
	}
	open := func() (ScoreIndex, error) { return OpenSnapshot(path) }
	fallback := func() (ScoreIndex, error) {
		g, err := NewGenerationStore(path, 0).LastGood()
		if err != nil {
			return nil, err
		}
		return OpenSnapshot(g.SnapPath)
	}
	if err := srv.Reload(open, fallback, nil, nil); err != nil {
		t.Fatalf("Reload with good fallback returned %v", err)
	}
	if srv.ReloadFailures() != 1 {
		t.Fatalf("reload failures = %d, want 1", srv.ReloadFailures())
	}
	code, after := get(t, h, rewriteURL("c0-q0"))
	if code != http.StatusOK || !bytes.Equal(before, after) {
		t.Fatalf("fallback generation serves %d / %s, want identical to pre-corruption body", code, after)
	}

	// RestoreServing repairs the file itself for the next direct open.
	g, err := NewGenerationStore(path, 0).RestoreServing()
	if err != nil {
		t.Fatal(err)
	}
	if g == nil {
		t.Fatal("RestoreServing did not restore a corrupt serving file")
	}
	if got := readFile(t, path); !bytes.Equal(got, fx.gen1) {
		t.Fatal("RestoreServing did not restore generation 1 bytes")
	}
	// On a healthy file it is a no-op.
	if g, err := NewGenerationStore(path, 0).RestoreServing(); err != nil || g != nil {
		t.Fatalf("RestoreServing on healthy file = %v, %v; want nil, nil", g, err)
	}
}

// TestGenerationAdoptIsIdempotent: adopting an already-journaled serving
// file reuses the matching generation instead of duplicating it.
func TestGenerationAdoptIsIdempotent(t *testing.T) {
	fx := buildGenFixture(t)
	_, gs, adopted := servingDir(t, fx)
	again, err := gs.Adopt()
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != adopted.ID {
		t.Fatalf("second Adopt() = generation %d, want %d", again.ID, adopted.ID)
	}
	gens, err := gs.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 1 {
		t.Fatalf("List() has %d generations after double adopt, want 1", len(gens))
	}
}

// TestGenerationLastGoodSkipsCorrupt: a generation whose snapshot no
// longer matches its manifest is skipped by LastGood, and a corrupt
// manifest drops the generation from List entirely.
func TestGenerationLastGoodSkipsCorrupt(t *testing.T) {
	fx := buildGenFixture(t)
	path, gs, adopted := servingDir(t, fx)
	g2, err := commitAndPublish(gs, fx)
	if err != nil {
		t.Fatal(err)
	}

	// Flip a byte deep in gen2's journaled snapshot: manifest CRC check
	// must disqualify it.
	snapBytes := readFile(t, g2.SnapPath)
	snapBytes[len(snapBytes)/2] ^= 0xff
	if err := os.WriteFile(g2.SnapPath, snapBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	lg, err := gs.LastGood()
	if err != nil {
		t.Fatal(err)
	}
	if lg.ID != adopted.ID {
		t.Fatalf("LastGood() = generation %d with gen %d corrupt, want %d", lg.ID, g2.ID, adopted.ID)
	}

	// Corrupt gen2's manifest too: it vanishes from List.
	mf := readFile(t, gs.manifName(g2.ID))
	mf[20] ^= 0xff
	if err := os.WriteFile(gs.manifName(g2.ID), mf, 0o644); err != nil {
		t.Fatal(err)
	}
	gens, err := gs.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 1 || gens[0].ID != adopted.ID {
		t.Fatalf("List() = %+v with gen %d manifest corrupt, want only generation %d", gens, g2.ID, adopted.ID)
	}

	// Rollback with the serving file corrupt as well restores gen 1
	// (replacement by rename — see the single-writer contract).
	garbage := filepath.Join(filepath.Dir(path), "broken.next")
	if err := os.WriteFile(garbage, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(garbage, path); err != nil {
		t.Fatal(err)
	}
	rb, err := gs.Rollback()
	if err != nil {
		t.Fatal(err)
	}
	if rb.ID != adopted.ID || !bytes.Equal(readFile(t, path), fx.gen1) {
		t.Fatalf("Rollback() restored generation %d, want %d byte-identical", rb.ID, adopted.ID)
	}
}

// TestGenerationPrune: only the newest keep generations survive, and
// pruning never touches the serving file.
func TestGenerationPrune(t *testing.T) {
	fx := buildGenFixture(t)
	path := filepath.Join(t.TempDir(), "scores.snap")
	if err := os.WriteFile(path, fx.gen1, 0o644); err != nil {
		t.Fatal(err)
	}
	gs := NewGenerationStore(path, 2)
	if _, err := gs.Adopt(); err != nil {
		t.Fatal(err)
	}
	if _, err := commitAndPublish(gs, fx); err != nil {
		t.Fatal(err)
	}
	// A third generation (back to gen1 content — content may repeat, ids
	// must not).
	g3, err := gs.Commit(1, fx.fp1, func(w io.Writer) error {
		_, werr := w.Write(fx.gen1)
		return werr
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := gs.Publish(g3); err != nil {
		t.Fatal(err)
	}

	removed, err := gs.Prune()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("Prune() removed %d generations, want 1", removed)
	}
	gens, err := gs.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 || gens[0].ID != 2 || gens[1].ID != 3 {
		t.Fatalf("List() after prune = %+v, want generations 2 and 3", gens)
	}
	if _, err := os.Stat(gs.snapName(1)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("pruned generation 1 snapshot still exists (err %v)", err)
	}
	if got := readFile(t, path); !bytes.Equal(got, fx.gen1) {
		t.Fatal("Prune touched the serving file")
	}
	// Serving still matches a journaled generation (g3 has gen1's bytes),
	// so rollback remains possible.
	if lg, err := gs.LastGood(); err != nil || lg.ID != 3 {
		t.Fatalf("LastGood() after prune = %+v, %v", lg, err)
	}
}
