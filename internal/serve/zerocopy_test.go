package serve

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/core"
	"simrankpp/internal/partition"
	"simrankpp/internal/sparse"
)

// This file pins the zero-copy serving tentpole: the mmap path answers
// bit-identically to the heap path at every layer (raw lookups, segView
// vs PairTable, HTTP bodies), the precomputed top-k section answers
// byte-identically to the live pipeline (including through a refresh
// that byte-copies clean shards' lists), and the section degrades to the
// pipeline — never to an error — when its blob is corrupt or its
// parameters don't match.

// writeTopKFile runs g sharded and persists it with a top-k section.
func writeTopKFile(t *testing.T, g *clickgraph.Graph, opts TopKOptions) (string, *core.Result) {
	t.Helper()
	plan := partition.ComponentPlan(g)
	cfg := core.DefaultConfig().WithVariant(core.Weighted)
	cfg.PruneEpsilon = 1e-6
	res, err := core.RunSharded(g, cfg, plan, core.ShardOptions{Workers: 3, RetainShardScores: true})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "zc.snap")
	if err := WriteSnapshotFileTopK(path, res, opts); err != nil {
		t.Fatalf("WriteSnapshotFileTopK: %v", err)
	}
	return path, res
}

// openBoth opens path on the mmap and heap paths, skipping the test on
// platforms where mmap is unavailable.
func openBoth(t *testing.T, path string) (*Snapshot, *Snapshot) {
	t.Helper()
	mm, err := OpenSnapshot(path)
	if err != nil {
		t.Fatalf("OpenSnapshot: %v", err)
	}
	t.Cleanup(func() { mm.Close() })
	if !mm.Mmapped() {
		t.Skip("mmap unavailable on this platform; heap fallback already covered elsewhere")
	}
	hp, err := OpenSnapshotHeap(path)
	if err != nil {
		t.Fatalf("OpenSnapshotHeap: %v", err)
	}
	t.Cleanup(func() { hp.Close() })
	if hp.Mmapped() {
		t.Fatal("OpenSnapshotHeap returned a mapped snapshot")
	}
	return mm, hp
}

// TestMmapHeapDifferential is the tentpole's core guarantee: every
// lookup the serving surface offers answers identically from the mapped
// bytes and from the decoded heap tables.
func TestMmapHeapDifferential(t *testing.T) {
	g := testGraph(t)
	path, res := writeTopKFile(t, g, TopKOptions{K: DefaultRewriteTopK})
	mm, hp := openBoth(t, path)

	for q := 0; q < g.NumQueries(); q++ {
		for _, k := range []int{-1, 0, 1, 3} {
			if got, want := mm.TopRewrites(q, k), hp.TopRewrites(q, k); !scoredEqual(got, want) {
				t.Fatalf("TopRewrites(%d,%d): mmap %v, heap %v", q, k, got, want)
			}
		}
		if got, want := mm.TopRewrites(q, -1), res.TopRewrites(q, -1); !scoredEqual(got, want) {
			t.Fatalf("TopRewrites(%d): mmap %v, live %v", q, got, want)
		}
		for q2 := q; q2 < g.NumQueries(); q2++ {
			if got, want := mm.QuerySim(q, q2), hp.QuerySim(q, q2); got != want {
				t.Fatalf("QuerySim(%d,%d): mmap %v, heap %v", q, q2, got, want)
			}
		}
		pm, okm := mm.PrecomputedRewrites(q, 5)
		ph, okh := hp.PrecomputedRewrites(q, 5)
		if okm != okh || !scoredEqual(pm, ph) {
			t.Fatalf("PrecomputedRewrites(%d): mmap %v,%v heap %v,%v", q, pm, okm, ph, okh)
		}
	}
	for a := 0; a < g.NumAds(); a++ {
		if got, want := mm.TopSimilarAds(a, -1), hp.TopSimilarAds(a, -1); !scoredEqual(got, want) {
			t.Fatalf("TopSimilarAds(%d): mmap %v, heap %v", a, got, want)
		}
		for a2 := a; a2 < g.NumAds(); a2++ {
			if got, want := mm.AdSim(a, a2), hp.AdSim(a, a2); got != want {
				t.Fatalf("AdSim(%d,%d): mmap %v, heap %v", a, a2, got, want)
			}
		}
	}
}

// serverOver wraps snap in a Server with the cache off (every request
// exercises the lookup path, not the LRU).
func serverOver(snap *Snapshot, mutate func(*Config)) *Server {
	cfg := DefaultServerConfig()
	cfg.CacheSize = 0
	if mutate != nil {
		mutate(&cfg)
	}
	return NewServer(snap, cfg)
}

// TestMmapHeapResponsesByteIdentical lifts the differential to the HTTP
// layer: /rewrite and /similar bodies are byte-equal across the two
// paths for every query and ad in the fixture.
func TestMmapHeapResponsesByteIdentical(t *testing.T) {
	g := testGraph(t)
	path, _ := writeTopKFile(t, g, TopKOptions{K: DefaultRewriteTopK})
	mm, hp := openBoth(t, path)
	hm, hh := serverOver(mm, nil).Handler(), serverOver(hp, nil).Handler()

	urls := make([]string, 0, 2*g.NumQueries()+g.NumAds())
	for q := 0; q < g.NumQueries(); q++ {
		urls = append(urls,
			"/rewrite?q="+g.Query(q)+"&top=3",
			"/similar?q="+g.Query(q)+"&top=4")
	}
	for a := 0; a < g.NumAds(); a++ {
		urls = append(urls, "/similar?ad="+g.Ad(a)+"&top=4")
	}
	urls = append(urls, "/rewrite?q=absent-query", "/similar?q=absent-query")
	for _, u := range urls {
		mc, mb := get(t, hm, u)
		hc, hb := get(t, hh, u)
		if mc != hc || !bytes.Equal(mb, hb) {
			t.Fatalf("GET %s: mmap %d %q, heap %d %q", u, mc, mb, hc, hb)
		}
	}
}

// TestPrecomputedMatchesPipeline pins the fast-path contract: with a
// usable section, /rewrite answers are byte-identical whether they come
// from the precomputed lists or the live pipeline, at every depth the
// section covers — with and without a bid-term filter.
func TestPrecomputedMatchesPipeline(t *testing.T) {
	g := testGraph(t)
	bids := map[string]bool{}
	for q := 0; q < g.NumQueries(); q += 3 {
		bids[g.Query(q)] = true
	}
	for _, tc := range []struct {
		name string
		bids map[string]bool
	}{{"unfiltered", nil}, {"bid-filtered", bids}} {
		t.Run(tc.name, func(t *testing.T) {
			path, _ := writeTopKFile(t, g, TopKOptions{K: 4, BidTerms: tc.bids})
			mm, err := OpenSnapshot(path)
			if err != nil {
				t.Fatal(err)
			}
			defer mm.Close()
			if mm.Meta().RewriteTopK != 4 {
				t.Fatalf("RewriteTopK = %d, want 4", mm.Meta().RewriteTopK)
			}
			fast := serverOver(mm, func(c *Config) { c.BidTerms = tc.bids }).Handler()
			slow := serverOver(mm, func(c *Config) { c.BidTerms = tc.bids; c.DisablePrecomputed = true }).Handler()
			for q := 0; q < g.NumQueries(); q++ {
				for top := 1; top <= 4; top++ {
					u := fmt.Sprintf("/rewrite?q=%s&top=%d", g.Query(q), top)
					fc, fb := get(t, fast, u)
					sc, sb := get(t, slow, u)
					if fc != sc || !bytes.Equal(fb, sb) {
						t.Fatalf("GET %s: precomputed %d %q, pipeline %d %q", u, fc, fb, sc, sb)
					}
				}
			}
		})
	}
}

// TestPrecomputedFallsBackPastSectionDepth: a top beyond the stored k
// cannot use the section; the server must transparently run the
// pipeline, not truncate.
func TestPrecomputedFallsBackPastSectionDepth(t *testing.T) {
	g := testGraph(t)
	path, _ := writeTopKFile(t, g, TopKOptions{K: 2})
	mm, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mm.Close()
	if mm.RewriteSectionUsable(2, 0) != true || mm.RewriteSectionUsable(3, 0) != false {
		t.Fatalf("RewriteSectionUsable depth gating broken: k=2 got usable(2)=%v usable(3)=%v",
			mm.RewriteSectionUsable(2, 0), mm.RewriteSectionUsable(3, 0))
	}
	fast := serverOver(mm, nil).Handler()
	slow := serverOver(mm, func(c *Config) { c.DisablePrecomputed = true }).Handler()
	for q := 0; q < g.NumQueries(); q++ {
		u := "/rewrite?q=" + g.Query(q) + "&top=5" // beyond k=2 → pipeline
		fc, fb := get(t, fast, u)
		sc, sb := get(t, slow, u)
		if fc != sc || !bytes.Equal(fb, sb) {
			t.Fatalf("GET %s: section-open server %d %q, pipeline server %d %q", u, fc, fb, sc, sb)
		}
	}
}

// TestPrecomputedBidHashMismatch: a server running a different bid set
// than the section was built under must not serve the section.
func TestPrecomputedBidHashMismatch(t *testing.T) {
	g := testGraph(t)
	builtBids := map[string]bool{g.Query(0): true, g.Query(1): true}
	servedBids := map[string]bool{g.Query(2): true}
	path, _ := writeTopKFile(t, g, TopKOptions{K: 4, BidTerms: builtBids})
	mm, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mm.Close()
	if mm.RewriteSectionUsable(3, BidTermsHash(servedBids)) {
		t.Fatal("section built under one bid set usable under another")
	}
	// The mismatched server still answers correctly — via the pipeline.
	mis := serverOver(mm, func(c *Config) { c.BidTerms = servedBids }).Handler()
	pipe := serverOver(mm, func(c *Config) { c.BidTerms = servedBids; c.DisablePrecomputed = true }).Handler()
	for q := 0; q < g.NumQueries(); q++ {
		u := "/rewrite?q=" + g.Query(q) + "&top=3"
		mc, mb := get(t, mis, u)
		pc, pb := get(t, pipe, u)
		if mc != pc || !bytes.Equal(mb, pb) {
			t.Fatalf("GET %s: mismatched-bids server %d %q, pipeline %d %q", u, mc, mb, pc, pb)
		}
	}
}

// TestRefreshPreservesPrecomputedIdentity runs a real churn step over a
// snapshot carrying a section — clean shards' lists are byte-copied,
// dirty shards' rebuilt — and pins that the refreshed snapshot still
// answers /rewrite byte-identically to the live pipeline for every
// query, clean and dirty alike.
func TestRefreshPreservesPrecomputedIdentity(t *testing.T) {
	bids := map[string]bool{}
	g0 := refreshGraph(t, [4]int{1, 2, 3, 4})
	for q := 0; q < g0.NumQueries(); q += 2 {
		bids[g0.Query(q)] = true
	}
	plan := partition.ComponentPlan(g0)
	cfg := refreshCfg()
	res0, err := core.RunSharded(g0, cfg, plan, core.ShardOptions{Workers: 3, RetainShardScores: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf0 bytes.Buffer
	if err := WriteSnapshotTopK(&buf0, res0, TopKOptions{K: 5, BidTerms: bids}); err != nil {
		t.Fatal(err)
	}
	prev, err := NewSnapshot(bytes.NewReader(buf0.Bytes()), int64(buf0.Len()))
	if err != nil {
		t.Fatal(err)
	}
	defer prev.Close()

	// Churn cluster 2 and refresh.
	g1 := refreshGraph(t, [4]int{1, 2, 9, 4})
	res1, diff, err := RunRefresh(g1, prev, 3)
	if err != nil {
		t.Fatal(err)
	}
	dirtyCount := 0
	for _, d := range diff.Dirty {
		if d {
			dirtyCount++
		}
	}
	if dirtyCount == 0 || dirtyCount == len(diff.Dirty) {
		t.Fatalf("fixture produced %d/%d dirty shards; want a mix", dirtyCount, len(diff.Dirty))
	}
	var buf1 bytes.Buffer
	if _, err := RefreshSnapshot(&buf1, prev, res1, diff.Dirty, bids); err != nil {
		t.Fatalf("RefreshSnapshot: %v", err)
	}
	// Write to disk so the refreshed generation serves from the mmap path.
	path := filepath.Join(t.TempDir(), "refreshed.snap")
	if err := os.WriteFile(path, buf1.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	next, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	defer next.Close()
	if next.Meta().RewriteTopK != 5 || next.Meta().RewriteBidHash != BidTermsHash(bids) {
		t.Fatalf("refreshed section meta = k%d hash %x, want k5 hash %x",
			next.Meta().RewriteTopK, next.Meta().RewriteBidHash, BidTermsHash(bids))
	}
	fast := serverOver(next, func(c *Config) { c.BidTerms = bids }).Handler()
	slow := serverOver(next, func(c *Config) { c.BidTerms = bids; c.DisablePrecomputed = true }).Handler()
	for q := 0; q < g1.NumQueries(); q++ {
		u := "/rewrite?q=" + g1.Query(q) + "&top=5"
		fc, fb := get(t, fast, u)
		sc, sb := get(t, slow, u)
		if fc != sc || !bytes.Equal(fb, sb) {
			t.Fatalf("after refresh, GET %s: precomputed %d %q, pipeline %d %q", u, fc, fb, sc, sb)
		}
	}

	// A refresh under a different bid set than the section was built
	// with must refuse — silently rebuilding only dirty lists would mix
	// filter regimes across shards.
	other := map[string]bool{g1.Query(1): true}
	if _, err := RefreshSnapshot(&bytes.Buffer{}, prev, res1, diff.Dirty, other); err == nil {
		t.Fatal("RefreshSnapshot accepted a bid set differing from the section's")
	}
}

// makeSegBytes packs (i, j, score) records in the snapshot's segment
// layout. Records must already be sorted ascending by (i, j) with i < j.
func makeSegBytes(t *testing.T, recs [][3]float64) []byte {
	t.Helper()
	b := make([]byte, 0, len(recs)*pairRecordSize)
	for _, r := range recs {
		var rec [pairRecordSize]byte
		binary.LittleEndian.PutUint32(rec[0:], uint32(r[0]))
		binary.LittleEndian.PutUint32(rec[4:], uint32(r[1]))
		binary.LittleEndian.PutUint64(rec[8:], math.Float64bits(r[2]))
		b = append(b, rec[:]...)
	}
	return b
}

// TestSegViewBoundaries pins the in-place search on the awkward shapes:
// empty segment, single pair, first and last record of a segment, a
// node with partners in both the scattered and contiguous regions, and
// absent nodes — each cross-checked against a PairTable holding the
// same pairs (the heap path's data structure).
func TestSegViewBoundaries(t *testing.T) {
	cases := []struct {
		name string
		recs [][3]float64 // sorted (i, j, score), i < j
	}{
		{"empty", nil},
		{"single-pair", [][3]float64{{2, 7, 0.5}}},
		{"two-pairs-shared-node", [][3]float64{{1, 3, 0.4}, {3, 9, 0.7}}},
		{"ties-and-regions", [][3]float64{
			{0, 1, 0.9}, {0, 5, 0.3}, {1, 5, 0.3}, {2, 5, 0.8}, {2, 6, 0.1}, {5, 9, 0.3},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			raw := makeSegBytes(t, tc.recs)
			v := segView{b: raw, byJ: buildScatterIndex(raw)}
			tab := sparse.NewPairTable(16)
			maxNode := 0
			for _, r := range tc.recs {
				tab.Set(int(r[0]), int(r[1]), r[2])
				if int(r[1]) > maxNode {
					maxNode = int(r[1])
				}
			}
			tab.EnsureIndex()
			if v.pairs() != len(tc.recs) {
				t.Fatalf("pairs() = %d, want %d", v.pairs(), len(tc.recs))
			}
			for node := 0; node <= maxNode+1; node++ {
				for _, k := range []int{-1, 0, 1, 2, len(tc.recs) + 1} {
					got, want := v.topKFor(node, k), tab.TopKFor(node, k)
					if len(want) == 0 {
						want = nil
					}
					if !scoredEqual(got, want) {
						t.Errorf("topKFor(%d,%d) = %v, PairTable %v", node, k, got, want)
					}
				}
				for other := 0; other <= maxNode+1; other++ {
					gs, gok := v.find(node, other)
					ws, wok := tab.Get(node, other)
					if node == other {
						// find treats the diagonal as absent; PairTable
						// never stores it either.
						ws, wok = 0, false
					}
					if gs != ws || gok != wok {
						t.Errorf("find(%d,%d) = %v,%v, PairTable %v,%v", node, other, gs, gok, ws, wok)
					}
				}
			}
		})
	}
}

// TestQueryIDZeroAlloc pins the string-interning satellite: resolving a
// query or ad name on a warm snapshot — hit or miss — allocates nothing
// on either path.
func TestQueryIDZeroAlloc(t *testing.T) {
	g := testGraph(t)
	path, _ := writeTopKFile(t, g, TopKOptions{K: 2})
	mm, hp := openBoth(t, path)
	hit, miss := g.Query(0), "no such query"
	for name, snap := range map[string]*Snapshot{"mmap": mm, "heap": hp} {
		if n := testing.AllocsPerRun(200, func() {
			if _, ok := snap.QueryID(hit); !ok {
				t.Fatal("hit lookup failed")
			}
			if _, ok := snap.QueryID(miss); ok {
				t.Fatal("miss lookup hit")
			}
			snap.AdID(hit)
		}); n != 0 {
			t.Errorf("%s: QueryID/AdID allocated %.1f per run, want 0", name, n)
		}
	}
}

// TestTopKBlobCorruptionFallsBack pins the quarantine semantics of the
// new section: a corrupt top-k blob quarantines only the "topk" side —
// /rewrite transparently falls back to the pipeline with correct
// answers, and /readyz reports degraded, never unready, because scoring
// segments are intact.
func TestTopKBlobCorruptionFallsBack(t *testing.T) {
	g := testGraph(t)
	path, _ := writeTopKFile(t, g, TopKOptions{K: 4})
	probe, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	// Find the blob of the shard serving query 0 and flip one byte.
	si := int(probe.qRoute[0])
	off, ln := probe.dir[si].tkOff, probe.dir[si].tkLen
	probe.Close()
	if ln == 0 {
		t.Fatal("fixture shard has no top-k blob")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[off+ln/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	snap, err := OpenSnapshot(path)
	if err != nil {
		t.Fatalf("open with corrupt blob should succeed (lazy load): %v", err)
	}
	defer snap.Close()
	srv := serverOver(snap, nil)
	h := srv.Handler()

	clean := serverOver(snap, func(c *Config) { c.DisablePrecomputed = true }).Handler()
	for q := 0; q < g.NumQueries(); q++ {
		u := "/rewrite?q=" + g.Query(q) + "&top=3"
		code, body := get(t, h, u)
		wc, wb := get(t, clean, u)
		if code != wc || !bytes.Equal(body, wb) {
			t.Fatalf("GET %s with corrupt blob: %d %q, pipeline %d %q", u, code, body, wc, wb)
		}
	}
	qs := snap.Quarantined()
	if len(qs) == 0 {
		t.Fatal("corrupt blob load left nothing quarantined")
	}
	for _, s := range qs {
		if s.Side != "topk" {
			t.Fatalf("quarantined side %q, want only topk", s.Side)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200 (degraded): %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), `"degraded"`) {
		t.Fatalf("/readyz body %q, want degraded", rec.Body.String())
	}
}
