package serve

import (
	"os"
	"path/filepath"
	"time"

	"simrankpp/internal/core"
)

// This file measures the serving path on the shard benchmark workload so
// BENCH_core.json tracks it PR over PR alongside the engine passes: how
// long a sharded run takes to persist, how cheap opening is relative to
// the data (the lazy-segment claim in numbers), and what a warm lookup
// costs.

// SnapshotBenchResult is one measurement of the snapshot serving path.
type SnapshotBenchResult struct {
	// Shards and Bytes describe the written snapshot.
	Shards int   `json:"shards"`
	Bytes  int64 `json:"bytes"`
	// QueryPairs + AdPairs is the score volume behind WriteNs.
	QueryPairs int64 `json:"query_pairs"`
	AdPairs    int64 `json:"ad_pairs"`
	// WriteNs persists the sharded result (parallel segment encode +
	// file write + rename); OpenNs opens it (header, strings, route map,
	// directory — no segments). Best of the harness's repetitions.
	WriteNs int64 `json:"snapshot_write_ns"`
	OpenNs  int64 `json:"snapshot_open_ns"`
	// FirstLookupNs is one cold TopRewrites — it pays its shard's
	// segment load + index build; LookupNs is the mean warm TopRewrites
	// over Lookups queries spread across every shard.
	FirstLookupNs int64 `json:"first_lookup_ns"`
	LookupNs      int64 `json:"lookup_ns"`
	Lookups       int   `json:"lookups"`
}

// RunSnapshotBench measures write / open / lookup on a snapshot of res —
// normally the sharded Result core.RunShardBench already computed (with
// shard scores retained), so the serving numbers describe exactly the
// workload the shard numbers do without a second engine run. Snapshots go
// to a temporary directory (removed afterwards); reps repetitions of
// write and open are taken, best kept.
func RunSnapshotBench(res *core.Result, reps int) (SnapshotBenchResult, error) {
	if reps < 1 {
		reps = 1
	}
	dir, err := os.MkdirTemp("", "simrank-snap-bench")
	if err != nil {
		return SnapshotBenchResult{}, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "bench.snap")

	out := SnapshotBenchResult{
		Shards:     len(res.ShardScores),
		QueryPairs: int64(res.QueryScores.Len()),
		AdPairs:    int64(res.AdScores.Len()),
	}
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		if err := WriteSnapshotFile(path, res); err != nil {
			return SnapshotBenchResult{}, err
		}
		if ns := time.Since(t0).Nanoseconds(); r == 0 || ns < out.WriteNs {
			out.WriteNs = ns
		}
	}
	st, err := os.Stat(path)
	if err != nil {
		return SnapshotBenchResult{}, err
	}
	out.Bytes = st.Size()

	var snap *Snapshot
	for r := 0; r < reps; r++ {
		if snap != nil {
			snap.Close()
		}
		t0 := time.Now()
		snap, err = OpenSnapshot(path)
		if err != nil {
			return SnapshotBenchResult{}, err
		}
		if ns := time.Since(t0).Nanoseconds(); r == 0 || ns < out.OpenNs {
			out.OpenNs = ns
		}
	}
	defer snap.Close()

	t0 := time.Now()
	snap.TopRewrites(0, 5)
	out.FirstLookupNs = time.Since(t0).Nanoseconds()

	// Warm lookups across the whole query space touch every shard; one
	// priming pass pays the remaining segment loads and index builds so
	// the measured pass is pure serving. Stride keeps the count bounded
	// on big workloads.
	nq := res.NumQueries()
	stride := nq / 2048
	if stride < 1 {
		stride = 1
	}
	for q := 0; q < nq; q += stride {
		snap.TopRewrites(q, 5)
	}
	t0 = time.Now()
	for q := 0; q < nq; q += stride {
		snap.TopRewrites(q, 5)
		out.Lookups++
	}
	if out.Lookups > 0 {
		out.LookupNs = time.Since(t0).Nanoseconds() / int64(out.Lookups)
	}
	return out, nil
}
