//go:build !unix

package serve

import "os"

// Non-Unix platforms get no advisory locking: Lock succeeds
// unconditionally. The production deployment targets are Unix; this
// stub keeps the build portable without pretending to exclude anyone.
func flockExclusive(*os.File) error { return nil }

func funlock(*os.File) error { return nil }
