package serve

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"simrankpp/internal/core"
	"simrankpp/internal/partition"
	"simrankpp/internal/sparse"
)

// This file is the batch→online handoff of Figure 2 in binary form: a
// versioned snapshot a sharded run writes once and a server opens in
// O(header + string table), routing each query to its shard's score
// segment without ever materializing the other shards.
//
// Layout (all integers little-endian):
//
//	header    fixed 200 bytes: magic, version, run metadata (variant,
//	          iterations executed and budgeted, C1/C2, converged,
//	          strict-evidence/spread flags, weight channel, evidence
//	          form, prune epsilon, convergence and delta-skip
//	          tolerances), graph
//	          dimensions, shard count, generation info (creation time,
//	          dirty-shard count of the refresh that produced it), section
//	          offsets/lengths, per-section CRC32s, the precomputed
//	          rewrite section's parameters (k, candidate pool, bid-term
//	          hash), and a trailing CRC32 over the header itself.
//	strings   NumQueries then NumAds names, each uvarint length + raw
//	          bytes. Length-prefixed, so names may contain tabs or
//	          newlines that would corrupt the line-oriented text format.
//	route     NumQueries + NumAds uint32s: each node's shard index — the
//	          partition.Plan node→shard map in serialized form. Pairs
//	          never cross shards (cut pairs score 0), so one lookup
//	          routes a query to the only segment that can score it.
//	dir       one fixed 64-byte entry per shard: offset, pair count and
//	          CRC32 of its query segment and of its ad segment, the
//	          shard's subgraph fingerprint — which is what lets the next
//	          refresh diff a new graph against this snapshot alone
//	          (partition.DiffPlans) and byte-copy unchanged segments
//	          (RefreshSnapshot) — plus the offset/length/CRC32 of the
//	          shard's precomputed top-k rewrite blob.
//	segments  per shard, per side: pair records (uint32 i, uint32 j,
//	          float64 score) with i < j in global ids, sorted ascending —
//	          written in parallel, one encoder per shard, and either
//	          decoded lazily per shard per side on first access (heap
//	          mode) or binary-searched in place over the mapped bytes
//	          (mmap mode; see segview.go).
//	topk      per shard, one self-contained blob of precomputed §9.3
//	          rewrite lists: u32 entry count, then per stored query
//	          (global id ascending) a (u32 id, u32 list offset relative
//	          to the blob, u32 list length) entry, then the list records
//	          (u32 rewrite id, float64 score). Offsets are blob-relative
//	          and ids are global, so a refresh byte-copies clean shards'
//	          blobs exactly like score segments. See topk.go.

const (
	snapshotMagic   = "SRPPSNAP"
	snapshotVersion = 3
	headerSize      = 200
	dirEntrySize    = 64
	pairRecordSize  = 16

	// Precomputed top-k blob encoding: per-query directory entries and
	// list records (see topk.go).
	topkEntrySize = 12
	topkRecSize   = 12

	flagConverged      = 1 << 0
	flagStrictEvidence = 1 << 1
	flagDisableSpread  = 1 << 2

	// fullBuildSentinel in the header's dirty-shard field marks a snapshot
	// written whole (WriteSnapshot) rather than by a refresh.
	fullBuildSentinel = ^uint32(0)
)

// SnapshotMeta is the run metadata a snapshot carries, available from the
// header alone.
type SnapshotMeta struct {
	Variant core.Variant `json:"variant"`
	// Iterations is how many iterations the producing run actually
	// executed (a tolerance can stop it early); IterationBudget is the
	// configured ceiling, which is what a refresh must run dirty shards
	// under — a heavily-churned shard may legitimately need more
	// iterations than the converged previous generation used.
	Iterations      int                `json:"iterations"`
	IterationBudget int                `json:"iteration_budget"`
	C1              float64            `json:"c1"`
	C2              float64            `json:"c2"`
	Converged       bool               `json:"converged"`
	StrictEvidence  bool               `json:"strict_evidence,omitempty"`
	DisableSpread   bool               `json:"disable_spread,omitempty"`
	Channel         core.WeightChannel `json:"channel"`
	EvidenceForm    core.EvidenceForm  `json:"evidence_form"`
	PruneEpsilon    float64            `json:"prune_epsilon"`
	Tolerance       float64            `json:"tolerance"`
	DeltaSkipTol    float64            `json:"delta_skip_tolerance"`
	NumQueries      int                `json:"queries"`
	NumAds          int                `json:"ads"`
	// Shards is the number of score segments; 1 for a monolithic run.
	Shards int `json:"shards"`
	// QueryPairs and AdPairs are the total stored pair counts across all
	// shards (recorded in the header, so stats never force a segment load).
	QueryPairs int64 `json:"query_pairs"`
	AdPairs    int64 `json:"ad_pairs"`
	// GeneratedAt is when the snapshot was written — the generation marker
	// an operator checks after a SIGHUP reload.
	GeneratedAt time.Time `json:"generated_at"`
	// LastRefreshDirty is how many shards the refresh that wrote this
	// snapshot recomputed, or -1 for a full (non-incremental) build.
	LastRefreshDirty int `json:"last_refresh_dirty_shards"`
	// Fingerprint is the XOR of every shard's subgraph fingerprint — a
	// whole-generation identity, printed hex for /stats.
	Fingerprint string `json:"fingerprint"`
	// RewriteTopK is the depth of the precomputed per-query rewrite lists
	// (0 when the snapshot carries no top-k section); RewriteTopN is the
	// candidate-pool size those lists were filtered from — a serving
	// pipeline whose effective pool differs must fall back to live
	// scoring for byte-identity.
	RewriteTopK int `json:"rewrite_topk"`
	RewriteTopN int `json:"rewrite_topn,omitempty"`
	// RewriteBidHash is the order-independent hash of the bid-term set
	// the lists were filtered with (0 = no bid filtering); a server
	// configured with different terms must not serve the section.
	RewriteBidHash uint64 `json:"-"`
	// RewriteBidFiltered reports whether the section was built under a
	// bid-term filter (the /stats-visible face of RewriteBidHash).
	RewriteBidFiltered bool `json:"rewrite_bid_filtered,omitempty"`
}

// shardSource is one shard's tables awaiting encoding: ids remap local →
// global and are nil for an identity (monolithic) shard.
type shardSource struct {
	qIDs, aIDs []int
	q, a       *sparse.PairTable
}

// snapshotSources decomposes a result into per-shard table sources: the
// retained shard outputs of a RunSharded(..., RetainShardScores) run, or
// the stitched tables as one identity shard.
func snapshotSources(res *core.Result) []shardSource {
	if len(res.ShardScores) > 0 {
		out := make([]shardSource, len(res.ShardScores))
		for i, s := range res.ShardScores {
			out[i] = shardSource{qIDs: s.QueryIDs, aIDs: s.AdIDs, q: s.QueryScores, a: s.AdScores}
		}
		return out
	}
	return []shardSource{{q: res.QueryScores, a: res.AdScores}}
}

// encodeSegment flattens one pair table into the sorted binary record
// stream, remapping ids through the ascending local→global map when given
// (monotone, so local i < j stays global i < j).
func encodeSegment(t *sparse.PairTable, ids []int) []byte {
	type rec struct {
		i, j uint32
		v    float64
	}
	recs := make([]rec, 0, t.Len())
	t.Range(func(i, j int, v float64) bool {
		if ids != nil {
			i, j = ids[i], ids[j]
		}
		recs = append(recs, rec{uint32(i), uint32(j), v})
		return true
	})
	sort.Slice(recs, func(a, b int) bool {
		if recs[a].i != recs[b].i {
			return recs[a].i < recs[b].i
		}
		return recs[a].j < recs[b].j
	})
	buf := make([]byte, len(recs)*pairRecordSize)
	for k, r := range recs {
		o := k * pairRecordSize
		binary.LittleEndian.PutUint32(buf[o:], r.i)
		binary.LittleEndian.PutUint32(buf[o+4:], r.j)
		binary.LittleEndian.PutUint64(buf[o+8:], math.Float64bits(r.v))
	}
	return buf
}

// shardPayload is one shard's encoded segments plus its directory
// metadata, ready for assembly. RefreshSnapshot fills it by byte-copying
// a previous snapshot; WriteSnapshot by encoding tables.
type shardPayload struct {
	qSeg, aSeg []byte
	qCRC, aCRC uint32
	fp         uint64
	// tkBlob is the shard's precomputed top-k rewrite blob (empty when
	// the snapshot carries no section).
	tkBlob []byte
	tkCRC  uint32
	// qIDs/aIDs are the shard's global node ids for the route section
	// (nil means identity — the single-shard monolithic case).
	qIDs, aIDs []int
}

// genInfo is the generation metadata stamped into the header.
type genInfo struct {
	iterations  int
	converged   bool
	generatedAt time.Time
	// dirtyShards is how many shards the producing refresh recomputed;
	// fullBuildSentinel for a from-scratch write.
	dirtyShards uint32
}

// shardFingerprints extracts per-shard fingerprints from a sharded run's
// stats (plan order, matching ShardScores), or computes the whole-graph
// fingerprint for a monolithic result.
func shardFingerprints(res *core.Result, shards int) ([]uint64, error) {
	if shards == 1 && len(res.ShardScores) == 0 {
		return []uint64{partition.GraphFingerprint(res.Graph)}, nil
	}
	if len(res.ShardStats) != shards {
		return nil, fmt.Errorf("serve: result has %d shard stats for %d segments; snapshots need RunSharded results (or a monolithic run)",
			len(res.ShardStats), shards)
	}
	fps := make([]uint64, shards)
	for i := range fps {
		fps[i] = res.ShardStats[i].Fingerprint
	}
	return fps, nil
}

// WriteSnapshot serializes res in the snapshot format, including a
// precomputed rewrite section at the default depth (see TopKOptions;
// use WriteSnapshotTopK to tune or disable it). A result carrying
// retained shard scores (core.ShardOptions.RetainShardScores) writes one
// segment pair per shard, encoded in parallel directly from the shard
// engines' local tables; any other result writes a single segment pair.
// Results of a partial (ShardOptions.RunShards) run are rejected — their
// missing shards can only be completed by RefreshSnapshot.
func WriteSnapshot(w io.Writer, res *core.Result) error {
	return WriteSnapshotTopK(w, res, DefaultTopKOptions())
}

// WriteSnapshotTopK is WriteSnapshot with an explicit precomputed
// rewrite-section configuration.
func WriteSnapshotTopK(w io.Writer, res *core.Result, opts TopKOptions) error {
	srcs := snapshotSources(res)
	fps, err := shardFingerprints(res, len(srcs))
	if err != nil {
		return err
	}
	payloads := make([]shardPayload, len(srcs))
	for i := range srcs {
		if srcs[i].q == nil || srcs[i].a == nil {
			return fmt.Errorf("serve: shard %d has no scores (partial refresh run?); use RefreshSnapshot", i)
		}
		payloads[i].qIDs, payloads[i].aIDs = srcs[i].qIDs, srcs[i].aIDs
		payloads[i].fp = fps[i]
	}

	all := make([]int, len(srcs))
	for i := range all {
		all[i] = i
	}
	encodePayloads(payloads, all, func(i int) (*sparse.PairTable, *sparse.PairTable) {
		return srcs[i].q, srcs[i].a
	})
	tk := opts.meta()
	if err := fillTopKBlobs(payloads, all, res, tk, opts.BidTerms); err != nil {
		return err
	}

	return writeAssembled(w, res, res.Config, payloads, genInfo{
		iterations:  res.Iterations,
		converged:   res.Converged,
		generatedAt: time.Now(),
		dirtyShards: fullBuildSentinel,
	}, tk)
}

// encodePayloads fills the given payload indices' segments and CRCs from
// their score tables, one encoder per shard on a bounded pool — the
// parallel encode both WriteSnapshot (every shard) and RefreshSnapshot
// (dirty shards only) run.
func encodePayloads(payloads []shardPayload, idx []int, tables func(i int) (q, a *sparse.PairTable)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(idx) {
		workers = len(idx)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				q, a := tables(i)
				payloads[i].qSeg = encodeSegment(q, payloads[i].qIDs)
				payloads[i].aSeg = encodeSegment(a, payloads[i].aIDs)
				payloads[i].qCRC = crc32.ChecksumIEEE(payloads[i].qSeg)
				payloads[i].aCRC = crc32.ChecksumIEEE(payloads[i].aSeg)
			}
		}()
	}
	for _, i := range idx {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// nodeNames is the naming surface writeAssembled reads — the graph
// dimensions plus id→name lookups. Both *core.Result and
// *clickgraph.Graph satisfy it, which is what lets a distributed refresh
// (which has a graph and pre-encoded segments, but no stitched Result)
// assemble the same bytes the local path writes.
type nodeNames interface {
	NumQueries() int
	NumAds() int
	Query(id int) string
	Ad(id int) string
}

// topkMeta is the precomputed rewrite section's header parameters: list
// depth k, the candidate-pool size the lists were filtered from, and the
// bid-term-set hash. A zero k means no section (every blob empty).
type topkMeta struct {
	k, topN uint32
	bidHash uint64
}

// writeAssembled lays out and writes a complete snapshot from per-shard
// payloads: string table and route map from the names source, directory
// and header from the payloads, cfg, gen and the top-k section
// parameters.
func writeAssembled(w io.Writer, names nodeNames, cfg core.Config, payloads []shardPayload, gen genInfo, tk topkMeta) error {
	nq, na := names.NumQueries(), names.NumAds()
	if len(payloads) > 1<<30 || uint64(nq) > math.MaxUint32 || uint64(na) > math.MaxUint32 {
		return fmt.Errorf("serve: snapshot dimensions overflow uint32")
	}

	// String table: length-prefixed names, queries then ads.
	var strBuf []byte
	var lenScratch [binary.MaxVarintLen64]byte
	appendName := func(s string) {
		n := binary.PutUvarint(lenScratch[:], uint64(len(s)))
		strBuf = append(strBuf, lenScratch[:n]...)
		strBuf = append(strBuf, s...)
	}
	for q := 0; q < nq; q++ {
		appendName(names.Query(q))
	}
	for a := 0; a < na; a++ {
		appendName(names.Ad(a))
	}

	// Route section: node → shard, from the shard id lists.
	route := make([]byte, 4*(nq+na))
	for si := range payloads {
		for _, q := range payloads[si].qIDs {
			binary.LittleEndian.PutUint32(route[4*q:], uint32(si))
		}
		for _, a := range payloads[si].aIDs {
			binary.LittleEndian.PutUint32(route[4*(nq+a):], uint32(si))
		}
	}

	// Directory + totals; segment offsets follow header/strings/route/dir,
	// and the top-k blobs follow every shard's segments.
	stringsOff := uint64(headerSize)
	routeOff := stringsOff + uint64(len(strBuf))
	dirOff := routeOff + uint64(len(route))
	segOff := dirOff + uint64(dirEntrySize*len(payloads))
	dir := make([]byte, dirEntrySize*len(payloads))
	var totalQ, totalA uint64
	for i := range payloads {
		o := i * dirEntrySize
		qPairs := uint64(len(payloads[i].qSeg) / pairRecordSize)
		aPairs := uint64(len(payloads[i].aSeg) / pairRecordSize)
		binary.LittleEndian.PutUint64(dir[o:], segOff)
		segOff += uint64(len(payloads[i].qSeg))
		binary.LittleEndian.PutUint64(dir[o+8:], segOff)
		segOff += uint64(len(payloads[i].aSeg))
		binary.LittleEndian.PutUint64(dir[o+16:], qPairs)
		binary.LittleEndian.PutUint64(dir[o+24:], aPairs)
		binary.LittleEndian.PutUint32(dir[o+32:], payloads[i].qCRC)
		binary.LittleEndian.PutUint32(dir[o+36:], payloads[i].aCRC)
		binary.LittleEndian.PutUint64(dir[o+40:], payloads[i].fp)
		totalQ += qPairs
		totalA += aPairs
	}
	for i := range payloads {
		o := i * dirEntrySize
		binary.LittleEndian.PutUint64(dir[o+48:], segOff)
		binary.LittleEndian.PutUint32(dir[o+56:], uint32(len(payloads[i].tkBlob)))
		binary.LittleEndian.PutUint32(dir[o+60:], payloads[i].tkCRC)
		segOff += uint64(len(payloads[i].tkBlob))
	}

	hdr := make([]byte, headerSize)
	copy(hdr, snapshotMagic)
	binary.LittleEndian.PutUint32(hdr[8:], snapshotVersion)
	var flags uint32
	if gen.converged {
		flags |= flagConverged
	}
	if cfg.StrictEvidence {
		flags |= flagStrictEvidence
	}
	if cfg.DisableSpread {
		flags |= flagDisableSpread
	}
	binary.LittleEndian.PutUint32(hdr[12:], flags)
	binary.LittleEndian.PutUint32(hdr[16:], uint32(cfg.Variant))
	binary.LittleEndian.PutUint32(hdr[20:], uint32(gen.iterations))
	binary.LittleEndian.PutUint64(hdr[24:], math.Float64bits(cfg.C1))
	binary.LittleEndian.PutUint64(hdr[32:], math.Float64bits(cfg.C2))
	binary.LittleEndian.PutUint32(hdr[40:], uint32(nq))
	binary.LittleEndian.PutUint32(hdr[44:], uint32(na))
	binary.LittleEndian.PutUint32(hdr[48:], uint32(len(payloads)))
	binary.LittleEndian.PutUint32(hdr[52:], crc32.ChecksumIEEE(strBuf))
	binary.LittleEndian.PutUint64(hdr[56:], totalQ)
	binary.LittleEndian.PutUint64(hdr[64:], totalA)
	binary.LittleEndian.PutUint64(hdr[72:], stringsOff)
	binary.LittleEndian.PutUint64(hdr[80:], uint64(len(strBuf)))
	binary.LittleEndian.PutUint64(hdr[88:], routeOff)
	binary.LittleEndian.PutUint64(hdr[96:], uint64(len(route)))
	binary.LittleEndian.PutUint64(hdr[104:], dirOff)
	binary.LittleEndian.PutUint64(hdr[112:], uint64(len(dir)))
	binary.LittleEndian.PutUint32(hdr[120:], crc32.ChecksumIEEE(route))
	binary.LittleEndian.PutUint32(hdr[124:], crc32.ChecksumIEEE(dir))
	binary.LittleEndian.PutUint64(hdr[128:], uint64(gen.generatedAt.Unix()))
	binary.LittleEndian.PutUint32(hdr[136:], gen.dirtyShards)
	binary.LittleEndian.PutUint32(hdr[140:], uint32(cfg.Channel))
	binary.LittleEndian.PutUint32(hdr[144:], uint32(cfg.EvidenceForm))
	binary.LittleEndian.PutUint64(hdr[148:], math.Float64bits(cfg.PruneEpsilon))
	binary.LittleEndian.PutUint64(hdr[156:], math.Float64bits(cfg.Tolerance))
	binary.LittleEndian.PutUint64(hdr[164:], math.Float64bits(cfg.DeltaSkipTolerance))
	binary.LittleEndian.PutUint32(hdr[172:], uint32(cfg.Iterations))
	binary.LittleEndian.PutUint32(hdr[176:], tk.k)
	binary.LittleEndian.PutUint32(hdr[180:], tk.topN)
	binary.LittleEndian.PutUint64(hdr[184:], tk.bidHash)
	binary.LittleEndian.PutUint32(hdr[192:], 0) // reserved
	binary.LittleEndian.PutUint32(hdr[196:], crc32.ChecksumIEEE(hdr[:196]))

	for _, b := range [][]byte{hdr, strBuf, route, dir} {
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	for i := range payloads {
		if _, err := w.Write(payloads[i].qSeg); err != nil {
			return err
		}
		if _, err := w.Write(payloads[i].aSeg); err != nil {
			return err
		}
	}
	for i := range payloads {
		if _, err := w.Write(payloads[i].tkBlob); err != nil {
			return err
		}
	}
	return nil
}

// WriteSnapshotFile writes the snapshot to a temporary file in path's
// directory and renames it into place, so a server reloading on SIGHUP
// never observes a half-written snapshot.
func WriteSnapshotFile(path string, res *core.Result) error {
	return WriteSnapshotFileTopK(path, res, DefaultTopKOptions())
}

// WriteSnapshotFileTopK is WriteSnapshotFile with an explicit
// precomputed rewrite-section configuration.
func WriteSnapshotFileTopK(path string, res *core.Result, opts TopKOptions) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := WriteSnapshotTopK(tmp, res, opts); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// segEntry is one decoded directory row.
type segEntry struct {
	qOff, aOff     uint64
	qPairs, aPairs uint64
	qCRC, aCRC     uint32
	fp             uint64
	tkOff          uint64
	tkLen          uint64
	tkCRC          uint32
}

// segState is one score segment's lazy-load state machine. A segment
// that fails to load (torn write, bad disk, CRC mismatch) is
// quarantined: lookups against it fail fast until a capped exponential
// backoff elapses, then the next touch retries the load — so a
// transient fault heals without a restart while a persistent one
// cannot melt the disk with retry storms. The mutex makes concurrent
// first touches race-free (one loader, everyone else waits, exactly
// like the sync.Once it replaced); after a successful load the table
// is read-only (PairTable reads and EnsureIndex are concurrency-safe),
// as is a verified raw view (never written after verification).
type segState struct {
	mu sync.Mutex
	// Exactly one of tab/raw is populated on success: tab holds the
	// decoded table in heap mode, raw the CRC-verified zero-copy view in
	// mmap mode (and, for the top-k side, the verified blob bytes in
	// either mode).
	tab *sparse.PairTable
	raw []byte
	// byJ is the scatter index over raw in mmap mode (see
	// segView.byJ): record indices sorted by (j, i), built once here so
	// ranked lookups never scan the segment.
	byJ      []uint32
	loaded   bool
	err      error     // last load failure
	failures int       // consecutive load failures
	retryAt  time.Time // quarantined until then
	// ready mirrors loaded with release/acquire semantics: once a load
	// succeeds the payload fields above are frozen, so readers that
	// observe ready skip the mutex entirely — a segment lookup on the
	// hot path costs no lock once its shard is warm.
	ready atomic.Bool
}

// snapShard is one shard's lazily-loaded state: the two score-segment
// sides plus the precomputed top-k rewrite blob.
type snapShard struct {
	q, a, tk segState
}

// Quarantine backoff policy: first failure waits backoffBase, each
// further failure doubles it up to backoffMax.
const (
	defaultBackoffBase = time.Second
	defaultBackoffMax  = time.Minute
)

// errQuarantined wraps a segment's load failure while its backoff has
// not elapsed: the fault is remembered, the disk is not re-touched.
type errQuarantined struct {
	shard    int
	side     string
	failures int
	retryAt  time.Time
	cause    error
}

func (e *errQuarantined) Error() string {
	return fmt.Sprintf("serve: shard %d %s segment quarantined after %d failed loads (retry at %s): %v",
		e.shard, e.side, e.failures, e.retryAt.UTC().Format(time.RFC3339), e.cause)
}

func (e *errQuarantined) Unwrap() error { return e.cause }

// ShardHealth describes one quarantined score segment — the /readyz and
// /stats degraded-mode detail.
type ShardHealth struct {
	Shard    int       `json:"shard"`
	Side     string    `json:"side"` // "query", "ad", or "topk"
	Failures int       `json:"failures"`
	Error    string    `json:"error"`
	RetryAt  time.Time `json:"retry_at"`
}

// Snapshot is a loaded snapshot file implementing ScoreIndex. Opening
// reads only the header, string table, route map and directory — O(nodes),
// independent of how many scores the file holds; each shard's score
// segments are read, checksummed and indexed on first access. A
// memory-mapped snapshot (OpenSnapshot on supported platforms) skips
// the decode entirely: segments are CRC-verified once on first touch
// and binary-searched in place over the mapped bytes.
type Snapshot struct {
	r      io.ReaderAt
	size   int64
	closer io.Closer
	// mapped is the whole file when memory-mapped; nil in heap mode.
	// Views handed out (segment raws, top-k blobs) alias this memory, so
	// Close must not be called while lookups are in flight — the server
	// swap protocol (write-lock the index swap) guarantees that.
	mapped []byte

	meta         SnapshotMeta
	queries, ads []string
	queryID      map[string]int
	adID         map[string]int
	qRoute       []uint32
	aRoute       []uint32
	dir          []segEntry
	shards       []snapShard
	// loaded counts successfully materialized segments; atomic because
	// stats readers race with lazy loads under the per-segment locks.
	loaded atomic.Int32

	// Quarantine policy for failed segment loads; now is a clock hook so
	// chaos tests can step through backoff windows deterministically, and
	// jitter (equal-jitter: wait spread over [backoff/2, backoff]) keeps
	// simultaneously-quarantined shards from retrying in lockstep and
	// hammering the disk together. jitter() must return a value in [0,1];
	// 1 reproduces the undithered exponential schedule.
	backoffBase, backoffMax time.Duration
	now                     func() time.Time
	jitter                  func() float64

	mu      sync.Mutex
	lazyErr error // first segment-load failure, surfaced via Err
}

// OpenSnapshot opens a snapshot file, memory-mapping it when the
// platform supports it and falling back silently to the heap reader
// when mapping fails. Close releases it.
func OpenSnapshot(path string) (*Snapshot, error) {
	return openSnapshotFile(path, mmapSupported)
}

// OpenSnapshotHeap opens a snapshot file on the read-into-heap segment
// path, never mapping — the differential-test and fallback twin of
// OpenSnapshot (also reachable via simrankd -mmap=false, or everywhere
// under the simrank_nommap build tag / on non-Linux platforms).
func OpenSnapshotHeap(path string) (*Snapshot, error) {
	return openSnapshotFile(path, false)
}

func openSnapshotFile(path string, tryMmap bool) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	var mapped []byte
	if tryMmap && st.Size() >= headerSize {
		// A failed map is not fatal: serve from the heap path instead.
		if m, merr := mmapFile(f, st.Size()); merr == nil {
			mapped = m
		}
	}
	s, err := newSnapshot(f, st.Size(), mapped)
	if err != nil {
		if mapped != nil {
			munmapFile(mapped)
		}
		f.Close()
		return nil, err
	}
	s.closer = f
	return s, nil
}

// NewSnapshot opens a snapshot from any random-access reader of the
// given total size — always heap mode (mapping needs a file; use
// OpenSnapshot).
func NewSnapshot(r io.ReaderAt, size int64) (*Snapshot, error) {
	return newSnapshot(r, size, nil)
}

func newSnapshot(r io.ReaderAt, size int64, mapped []byte) (*Snapshot, error) {
	if size < headerSize {
		return nil, fmt.Errorf("serve: snapshot too small (%d bytes)", size)
	}
	hdr := make([]byte, headerSize)
	if _, err := r.ReadAt(hdr, 0); err != nil {
		return nil, fmt.Errorf("serve: reading snapshot header: %w", err)
	}
	if string(hdr[:8]) != snapshotMagic {
		return nil, fmt.Errorf("serve: bad snapshot magic %q", hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != snapshotVersion {
		return nil, fmt.Errorf("serve: unsupported snapshot version %d (want %d)", v, snapshotVersion)
	}
	if got, want := crc32.ChecksumIEEE(hdr[:196]), binary.LittleEndian.Uint32(hdr[196:]); got != want {
		return nil, fmt.Errorf("serve: snapshot header checksum mismatch (corrupt header)")
	}

	flags := binary.LittleEndian.Uint32(hdr[12:])
	s := &Snapshot{
		r: r, size: size, mapped: mapped,
		backoffBase: defaultBackoffBase,
		backoffMax:  defaultBackoffMax,
		now:         time.Now,
		jitter:      rand.Float64,
	}
	s.meta = SnapshotMeta{
		Variant:         core.Variant(binary.LittleEndian.Uint32(hdr[16:])),
		Iterations:      int(binary.LittleEndian.Uint32(hdr[20:])),
		IterationBudget: int(binary.LittleEndian.Uint32(hdr[172:])),
		C1:              math.Float64frombits(binary.LittleEndian.Uint64(hdr[24:])),
		C2:              math.Float64frombits(binary.LittleEndian.Uint64(hdr[32:])),
		Converged:       flags&flagConverged != 0,
		StrictEvidence:  flags&flagStrictEvidence != 0,
		DisableSpread:   flags&flagDisableSpread != 0,
		Channel:         core.WeightChannel(binary.LittleEndian.Uint32(hdr[140:])),
		EvidenceForm:    core.EvidenceForm(binary.LittleEndian.Uint32(hdr[144:])),
		PruneEpsilon:    math.Float64frombits(binary.LittleEndian.Uint64(hdr[148:])),
		Tolerance:       math.Float64frombits(binary.LittleEndian.Uint64(hdr[156:])),
		DeltaSkipTol:    math.Float64frombits(binary.LittleEndian.Uint64(hdr[164:])),
		NumQueries:      int(binary.LittleEndian.Uint32(hdr[40:])),
		NumAds:          int(binary.LittleEndian.Uint32(hdr[44:])),
		Shards:          int(binary.LittleEndian.Uint32(hdr[48:])),
		QueryPairs:      int64(binary.LittleEndian.Uint64(hdr[56:])),
		AdPairs:         int64(binary.LittleEndian.Uint64(hdr[64:])),
		GeneratedAt:     time.Unix(int64(binary.LittleEndian.Uint64(hdr[128:])), 0).UTC(),
	}
	if d := binary.LittleEndian.Uint32(hdr[136:]); d == fullBuildSentinel {
		s.meta.LastRefreshDirty = -1
	} else {
		s.meta.LastRefreshDirty = int(d)
	}
	s.meta.RewriteTopK = int(binary.LittleEndian.Uint32(hdr[176:]))
	s.meta.RewriteTopN = int(binary.LittleEndian.Uint32(hdr[180:]))
	s.meta.RewriteBidHash = binary.LittleEndian.Uint64(hdr[184:])
	s.meta.RewriteBidFiltered = s.meta.RewriteBidHash != 0
	stringsOff := binary.LittleEndian.Uint64(hdr[72:])
	stringsLen := binary.LittleEndian.Uint64(hdr[80:])
	routeOff := binary.LittleEndian.Uint64(hdr[88:])
	routeLen := binary.LittleEndian.Uint64(hdr[96:])
	dirOff := binary.LittleEndian.Uint64(hdr[104:])
	dirLen := binary.LittleEndian.Uint64(hdr[112:])

	// Structural sanity before any size-driven allocation: the section
	// lengths must agree with the header's dimensions, and the names
	// cannot outnumber the string-table bytes (each name costs ≥ 1 byte).
	// Everything allocated below is thereby bounded by the input size.
	nq, na := s.meta.NumQueries, s.meta.NumAds
	if routeLen != uint64(4*(nq+na)) {
		return nil, fmt.Errorf("serve: route map is %d bytes, want %d", routeLen, 4*(nq+na))
	}
	if dirLen != uint64(dirEntrySize*s.meta.Shards) {
		return nil, fmt.Errorf("serve: shard directory is %d bytes, want %d", dirLen, dirEntrySize*s.meta.Shards)
	}
	if stringsLen < uint64(nq)+uint64(na) {
		return nil, fmt.Errorf("serve: string table of %d bytes cannot hold %d names", stringsLen, nq+na)
	}

	strBuf, err := s.section("string table", stringsOff, stringsLen, binary.LittleEndian.Uint32(hdr[52:]))
	if err != nil {
		return nil, err
	}
	route, err := s.section("route map", routeOff, routeLen, binary.LittleEndian.Uint32(hdr[120:]))
	if err != nil {
		return nil, err
	}
	dirBuf, err := s.section("shard directory", dirOff, dirLen, binary.LittleEndian.Uint32(hdr[124:]))
	if err != nil {
		return nil, err
	}

	s.queries = make([]string, nq)
	s.ads = make([]string, na)
	s.queryID = make(map[string]int, nq)
	s.adID = make(map[string]int, na)
	// Intern the whole table once: every name is a substring of one
	// backing string, so decoding costs one allocation total (not one
	// per name) and lookups never re-touch the raw section. The copy
	// also detaches names from mapped memory, keeping them valid past
	// Close.
	interned := string(strBuf)
	pos := 0
	readName := func() (string, error) {
		n, used := binary.Uvarint(strBuf[pos:])
		if used <= 0 || n > uint64(len(strBuf)) || pos+used+int(n) > len(strBuf) {
			return "", fmt.Errorf("serve: string table truncated at byte %d", pos)
		}
		name := interned[pos+used : pos+used+int(n)]
		pos += used + int(n)
		return name, nil
	}
	for q := 0; q < nq; q++ {
		if s.queries[q], err = readName(); err != nil {
			return nil, err
		}
		s.queryID[s.queries[q]] = q
	}
	for a := 0; a < na; a++ {
		if s.ads[a], err = readName(); err != nil {
			return nil, err
		}
		s.adID[s.ads[a]] = a
	}

	s.qRoute = make([]uint32, nq)
	s.aRoute = make([]uint32, na)
	for q := 0; q < nq; q++ {
		s.qRoute[q] = binary.LittleEndian.Uint32(route[4*q:])
	}
	for a := 0; a < na; a++ {
		s.aRoute[a] = binary.LittleEndian.Uint32(route[4*(nq+a):])
	}
	s.dir = make([]segEntry, s.meta.Shards)
	var genFP uint64
	for i := range s.dir {
		o := i * dirEntrySize
		s.dir[i] = segEntry{
			qOff:   binary.LittleEndian.Uint64(dirBuf[o:]),
			aOff:   binary.LittleEndian.Uint64(dirBuf[o+8:]),
			qPairs: binary.LittleEndian.Uint64(dirBuf[o+16:]),
			aPairs: binary.LittleEndian.Uint64(dirBuf[o+24:]),
			qCRC:   binary.LittleEndian.Uint32(dirBuf[o+32:]),
			aCRC:   binary.LittleEndian.Uint32(dirBuf[o+36:]),
			fp:     binary.LittleEndian.Uint64(dirBuf[o+40:]),
			tkOff:  binary.LittleEndian.Uint64(dirBuf[o+48:]),
			tkLen:  uint64(binary.LittleEndian.Uint32(dirBuf[o+56:])),
			tkCRC:  binary.LittleEndian.Uint32(dirBuf[o+60:]),
		}
		genFP ^= s.dir[i].fp
	}
	s.meta.Fingerprint = fmt.Sprintf("%016x", genFP)
	for si, r := range s.qRoute {
		if int(r) >= s.meta.Shards {
			return nil, fmt.Errorf("serve: query %d routed to shard %d of %d", si, r, s.meta.Shards)
		}
	}
	for si, r := range s.aRoute {
		if int(r) >= s.meta.Shards {
			return nil, fmt.Errorf("serve: ad %d routed to shard %d of %d", si, r, s.meta.Shards)
		}
	}
	s.shards = make([]snapShard, s.meta.Shards)
	return s, nil
}

// section reads and checksums one eagerly-loaded region — zero-copy
// over the mapped bytes when mapped, read into the heap otherwise. The
// bounds check is overflow-safe: length is checked against the file
// size before the offset is, so off+length cannot wrap.
func (s *Snapshot) section(name string, off, length uint64, wantCRC uint32) ([]byte, error) {
	if length > uint64(s.size) || off > uint64(s.size)-length {
		return nil, fmt.Errorf("serve: %s [%d,+%d) extends past snapshot end (%d bytes)", name, off, length, s.size)
	}
	var buf []byte
	if s.mapped != nil {
		buf = s.mapped[off : off+length]
	} else {
		buf = make([]byte, length)
		if _, err := s.r.ReadAt(buf, int64(off)); err != nil {
			return nil, fmt.Errorf("serve: reading %s: %w", name, err)
		}
	}
	if got := crc32.ChecksumIEEE(buf); got != wantCRC {
		return nil, fmt.Errorf("serve: %s checksum mismatch", name)
	}
	return buf, nil
}

// segmentBytes reads and checksums one score segment's raw bytes without
// decoding them — the byte-copy path RefreshSnapshot reuses for clean
// shards. Bounds checks are overflow-safe (pairs is bounded before the
// byte length is computed).
func (s *Snapshot) segmentBytes(side string, shard int, off, pairs uint64, wantCRC uint32) ([]byte, error) {
	if pairs > uint64(s.size)/pairRecordSize {
		return nil, fmt.Errorf("serve: shard %d %s segment claims %d pairs, more than the snapshot holds (%d bytes)",
			shard, side, pairs, s.size)
	}
	length := pairs * pairRecordSize
	if off > uint64(s.size)-length {
		return nil, fmt.Errorf("serve: shard %d %s segment [%d,+%d) extends past snapshot end (%d bytes): truncated snapshot",
			shard, side, off, length, s.size)
	}
	if length == 0 {
		// An empty segment may sit exactly at end of file, where some
		// ReaderAt implementations return EOF even for zero-length reads.
		if wantCRC != crc32.ChecksumIEEE(nil) {
			return nil, fmt.Errorf("serve: shard %d %s segment checksum mismatch", shard, side)
		}
		return nil, nil
	}
	var buf []byte
	if s.mapped != nil {
		buf = s.mapped[off : off+length]
	} else {
		buf = make([]byte, length)
		if _, err := s.r.ReadAt(buf, int64(off)); err != nil {
			return nil, fmt.Errorf("serve: reading shard %d %s segment: %w", shard, side, err)
		}
	}
	if got := crc32.ChecksumIEEE(buf); got != wantCRC {
		return nil, fmt.Errorf("serve: shard %d %s segment checksum mismatch", shard, side)
	}
	return buf, nil
}

// topkBytes reads and checksums shard si's precomputed top-k blob —
// zero-copy when mapped. A zero-length blob (snapshot written with the
// section disabled) returns nil.
func (s *Snapshot) topkBytes(si int) ([]byte, error) {
	e := &s.dir[si]
	if e.tkLen > uint64(s.size) || e.tkOff > uint64(s.size)-e.tkLen {
		return nil, fmt.Errorf("serve: shard %d topk blob [%d,+%d) extends past snapshot end (%d bytes)",
			si, e.tkOff, e.tkLen, s.size)
	}
	if e.tkLen == 0 {
		if e.tkCRC != crc32.ChecksumIEEE(nil) {
			return nil, fmt.Errorf("serve: shard %d topk blob checksum mismatch", si)
		}
		return nil, nil
	}
	var buf []byte
	if s.mapped != nil {
		buf = s.mapped[e.tkOff : e.tkOff+e.tkLen]
	} else {
		buf = make([]byte, e.tkLen)
		if _, err := s.r.ReadAt(buf, int64(e.tkOff)); err != nil {
			return nil, fmt.Errorf("serve: reading shard %d topk blob: %w", si, err)
		}
	}
	if got := crc32.ChecksumIEEE(buf); got != e.tkCRC {
		return nil, fmt.Errorf("serve: shard %d topk blob checksum mismatch", si)
	}
	return buf, nil
}

// loadSegment reads, verifies and decodes one score segment.
func (s *Snapshot) loadSegment(side string, shard int, off, pairs uint64, wantCRC uint32) (*sparse.PairTable, error) {
	buf, err := s.segmentBytes(side, shard, off, pairs, wantCRC)
	if err != nil {
		return nil, err
	}
	t := sparse.NewPairTable(int(pairs))
	for k := 0; k < int(pairs); k++ {
		o := k * pairRecordSize
		i := int(binary.LittleEndian.Uint32(buf[o:]))
		j := int(binary.LittleEndian.Uint32(buf[o+4:]))
		v := math.Float64frombits(binary.LittleEndian.Uint64(buf[o+8:]))
		t.Set(i, j, v)
	}
	return t, nil
}

func (s *Snapshot) recordErr(err error) {
	s.mu.Lock()
	if s.lazyErr == nil {
		s.lazyErr = err
	}
	s.mu.Unlock()
}

// segLoad materializes one segment side under st's lock, running the
// shared quarantine state machine. A failed load quarantines the
// segment: until its backoff elapses, callers get the remembered error
// without a disk touch; after it elapses, the next touch retries —
// which is how a shard recovers once a transient fault clears. All
// other shards are untouched by one shard's quarantine: the daemon
// keeps answering for them. Side "query"/"ad" decodes into a table
// (heap mode) or CRC-verifies the mapped bytes in place (mmap mode);
// side "topk" verifies and structurally validates the shard's
// precomputed rewrite blob in either mode.
func (s *Snapshot) segLoad(st *segState, side string, si int) error {
	if st.loaded {
		return nil
	}
	if st.failures > 0 && s.now().Before(st.retryAt) {
		return &errQuarantined{shard: si, side: side, failures: st.failures, retryAt: st.retryAt, cause: st.err}
	}
	e := &s.dir[si]
	var err error
	switch side {
	case "topk":
		var raw []byte
		if raw, err = s.topkBytes(si); err == nil {
			if err = validateTopKBlob(raw, s.meta.RewriteTopK); err != nil {
				err = fmt.Errorf("serve: shard %d topk blob: %w", si, err)
			} else {
				st.raw = raw
			}
		}
	default:
		off, pairs, crc := e.qOff, e.qPairs, e.qCRC
		if side == "ad" {
			off, pairs, crc = e.aOff, e.aPairs, e.aCRC
		}
		if s.mapped != nil {
			var raw []byte
			if raw, err = s.segmentBytes(side, si, off, pairs, crc); err == nil {
				st.raw = raw
				st.byJ = buildScatterIndex(raw)
			}
		} else {
			var tab *sparse.PairTable
			if tab, err = s.loadSegment(side, si, off, pairs, crc); err == nil {
				st.tab = tab
			}
		}
	}
	if err != nil {
		st.failures++
		st.err = err
		backoff := s.backoffBase << (st.failures - 1)
		if backoff > s.backoffMax || backoff <= 0 {
			backoff = s.backoffMax
		}
		half := backoff / 2
		backoff = half + time.Duration(s.jitter()*float64(backoff-half))
		st.retryAt = s.now().Add(backoff)
		s.recordErr(err)
		return err
	}
	st.loaded = true
	st.failures, st.err = 0, nil
	st.ready.Store(true)
	s.loaded.Add(1)
	return nil
}

// segTable returns one side's decoded table for shard si (heap mode),
// loading it on first use.
func (s *Snapshot) segTable(st *segState, side string, si int) (*sparse.PairTable, error) {
	if st.ready.Load() {
		return st.tab, nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := s.segLoad(st, side, si); err != nil {
		return nil, err
	}
	return st.tab, nil
}

// segRawView returns one side's verified raw segment view (mmap mode),
// loading it on first use.
func (s *Snapshot) segRawView(st *segState, side string, si int) (segView, error) {
	if st.ready.Load() {
		return segView{b: st.raw, byJ: st.byJ}, nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := s.segLoad(st, side, si); err != nil {
		return segView{}, err
	}
	return segView{b: st.raw, byJ: st.byJ}, nil
}

// queryTable returns shard si's query-side table, loading it on first use.
func (s *Snapshot) queryTable(si int) (*sparse.PairTable, error) {
	return s.segTable(&s.shards[si].q, "query", si)
}

// adTable is queryTable for the ad side.
func (s *Snapshot) adTable(si int) (*sparse.PairTable, error) {
	return s.segTable(&s.shards[si].a, "ad", si)
}

// queryView and adView are the mmap-mode twins of queryTable/adTable:
// CRC-verified in-place views searched without decoding.
func (s *Snapshot) queryView(si int) (segView, error) {
	return s.segRawView(&s.shards[si].q, "query", si)
}

func (s *Snapshot) adView(si int) (segView, error) {
	return s.segRawView(&s.shards[si].a, "ad", si)
}

// topkBlob returns shard si's verified precomputed rewrite blob (either
// mode), loading it on first use; nil when the snapshot carries no
// section.
func (s *Snapshot) topkBlob(si int) ([]byte, error) {
	st := &s.shards[si].tk
	if st.ready.Load() {
		return st.raw, nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := s.segLoad(st, "topk", si); err != nil {
		return nil, err
	}
	return st.raw, nil
}

// Mmapped reports whether lookups run zero-copy over a memory-mapped
// snapshot (the /stats `mmap` field).
func (s *Snapshot) Mmapped() bool { return s.mapped != nil }

// Quarantined reports every score segment currently in quarantine — a
// past load failed and no retry has succeeded since. Empty means fully
// healthy (or untouched: lazily-loaded segments that were never read
// are not failures).
func (s *Snapshot) Quarantined() []ShardHealth {
	var out []ShardHealth
	for i := range s.shards {
		for _, side := range [3]struct {
			name string
			st   *segState
		}{{"query", &s.shards[i].q}, {"ad", &s.shards[i].a}, {"topk", &s.shards[i].tk}} {
			side.st.mu.Lock()
			if !side.st.loaded && side.st.failures > 0 {
				out = append(out, ShardHealth{
					Shard:    i,
					Side:     side.name,
					Failures: side.st.failures,
					Error:    side.st.err.Error(),
					RetryAt:  side.st.retryAt,
				})
			}
			side.st.mu.Unlock()
		}
	}
	return out
}

// SetQuarantineBackoff overrides the capped exponential backoff applied
// to failed segment loads (defaults: 1s base, 1m cap). Chaos tests also
// use it to shrink waits.
func (s *Snapshot) SetQuarantineBackoff(base, max time.Duration) {
	if base > 0 {
		s.backoffBase = base
	}
	if max > 0 {
		s.backoffMax = max
	}
}

// SetQuarantineJitter overrides the jitter source for quarantine backoff.
// f must return values in [0, 1]: the wait becomes
// backoff/2 + f()·backoff/2, so f = rand.Float64 (the default) spreads
// retries over half the window and a constant 1 restores the exact
// deterministic schedule (what the chaos tests pin).
func (s *Snapshot) SetQuarantineJitter(f func() float64) {
	if f != nil {
		s.jitter = f
	}
}

// Meta returns the snapshot's run metadata.
func (s *Snapshot) Meta() SnapshotMeta { return s.meta }

// Err returns the first score-segment load failure, if any. Lookup methods
// on a shard whose segment is unreadable return empty results; servers
// surface this through /stats.
func (s *Snapshot) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lazyErr
}

// LoadedSegments counts the score segments currently materialized — the
// observable face of lazy loading (0 right after opening). Safe to call
// concurrently with lazy loads (stats endpoint vs cold queries).
func (s *Snapshot) LoadedSegments() int { return int(s.loaded.Load()) }

// PreloadAll materializes and verifies every score segment and top-k
// blob, returning the first failure. Use it to validate a snapshot end
// to end.
func (s *Snapshot) PreloadAll() error {
	for i := range s.shards {
		if s.mapped != nil {
			if _, err := s.queryView(i); err != nil {
				return err
			}
			if _, err := s.adView(i); err != nil {
				return err
			}
		} else {
			if _, err := s.queryTable(i); err != nil {
				return err
			}
			if _, err := s.adTable(i); err != nil {
				return err
			}
		}
		if _, err := s.topkBlob(i); err != nil {
			return err
		}
	}
	return nil
}

// Close unmaps the snapshot (when mapped) and releases the underlying
// file (when file-backed). Lookups must not race with Close: views
// handed out by a mapped snapshot alias the mapping.
func (s *Snapshot) Close() error {
	var err error
	if s.mapped != nil {
		err = munmapFile(s.mapped)
		s.mapped = nil
	}
	if s.closer != nil {
		if cerr := s.closer.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// NumQueries implements ScoreIndex.
func (s *Snapshot) NumQueries() int { return s.meta.NumQueries }

// NumAds implements ScoreIndex.
func (s *Snapshot) NumAds() int { return s.meta.NumAds }

// Query implements ScoreIndex.
func (s *Snapshot) Query(id int) string { return s.queries[id] }

// Ad implements ScoreIndex.
func (s *Snapshot) Ad(id int) string { return s.ads[id] }

// QueryID implements ScoreIndex.
func (s *Snapshot) QueryID(name string) (int, bool) {
	id, ok := s.queryID[name]
	return id, ok
}

// AdID implements ScoreIndex.
func (s *Snapshot) AdID(name string) (int, bool) {
	id, ok := s.adID[name]
	return id, ok
}

// QuerySim implements ScoreIndex: 1 on the diagonal, 0 across shards
// (sharded runs never score cross-shard pairs), the stored score within
// one. Mapped snapshots binary-search the segment bytes in place.
func (s *Snapshot) QuerySim(q1, q2 int) float64 {
	if q1 == q2 {
		return 1
	}
	if s.qRoute[q1] != s.qRoute[q2] {
		return 0
	}
	si := int(s.qRoute[q1])
	if s.mapped != nil {
		v, err := s.queryView(si)
		if err != nil {
			return 0
		}
		score, _ := v.find(q1, q2)
		return score
	}
	t, err := s.queryTable(si)
	if err != nil {
		return 0
	}
	v, _ := t.Get(q1, q2)
	return v
}

// AdSim implements ScoreIndex.
func (s *Snapshot) AdSim(a1, a2 int) float64 {
	if a1 == a2 {
		return 1
	}
	if s.aRoute[a1] != s.aRoute[a2] {
		return 0
	}
	si := int(s.aRoute[a1])
	if s.mapped != nil {
		v, err := s.adView(si)
		if err != nil {
			return 0
		}
		score, _ := v.find(a1, a2)
		return score
	}
	t, err := s.adTable(si)
	if err != nil {
		return 0
	}
	v, _ := t.Get(a1, a2)
	return v
}

// topRewrites is TopRewrites returning load errors: the shared core of
// the ScoreIndex surface and the deadline-aware variant.
func (s *Snapshot) topRewrites(q, k int) ([]sparse.Scored, error) {
	si := int(s.qRoute[q])
	if s.mapped != nil {
		v, err := s.queryView(si)
		if err != nil {
			return nil, err
		}
		return v.topKFor(q, k), nil
	}
	t, err := s.queryTable(si)
	if err != nil {
		return nil, err
	}
	t.EnsureIndex()
	return t.TopKFor(q, k), nil
}

// TopRewrites implements ScoreIndex: it routes q to its shard's query
// segment and answers from that segment alone — the decoded partner
// index in heap mode, an in-place scan of the mapped bytes in mmap
// mode (identical ranking either way; the differential tests pin it).
func (s *Snapshot) TopRewrites(q, k int) []sparse.Scored {
	out, err := s.topRewrites(q, k)
	if err != nil {
		return nil
	}
	return out
}

// TopRewritesContext is TopRewrites under a request deadline: an
// already-expired context returns before triggering a lazy segment load
// (the one potentially slow step on this path), and a load failure is
// surfaced as an error instead of an indistinguishable empty ranking.
func (s *Snapshot) TopRewritesContext(ctx context.Context, q, k int) ([]sparse.Scored, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out, err := s.topRewrites(q, k)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// TopSimilarAds implements ScoreIndex.
func (s *Snapshot) TopSimilarAds(a, k int) []sparse.Scored {
	si := int(s.aRoute[a])
	if s.mapped != nil {
		v, err := s.adView(si)
		if err != nil {
			return nil
		}
		return v.topKFor(a, k)
	}
	t, err := s.adTable(si)
	if err != nil {
		return nil
	}
	t.EnsureIndex()
	return t.TopKFor(a, k)
}

// VariantName implements ScoreIndex.
func (s *Snapshot) VariantName() string { return s.meta.Variant.String() }

// The methods below implement partition.PrevAssignment, so a previous
// snapshot alone — names from the string table, shards from the route
// map, fingerprints from the directory — is enough for partition.DiffPlans
// to classify a new graph's shards as clean or dirty.

// NumShards implements partition.PrevAssignment.
func (s *Snapshot) NumShards() int { return s.meta.Shards }

// ShardFingerprint implements partition.PrevAssignment.
func (s *Snapshot) ShardFingerprint(i int) uint64 { return s.dir[i].fp }

// PrevQuery implements partition.PrevAssignment.
func (s *Snapshot) PrevQuery(name string) (id, shard int, ok bool) {
	id, ok = s.queryID[name]
	if !ok {
		return 0, 0, false
	}
	return id, int(s.qRoute[id]), true
}

// PrevAd implements partition.PrevAssignment.
func (s *Snapshot) PrevAd(name string) (id, shard int, ok bool) {
	id, ok = s.adID[name]
	if !ok {
		return 0, 0, false
	}
	return id, int(s.aRoute[id]), true
}

var _ partition.PrevAssignment = (*Snapshot)(nil)

// Config reconstructs the engine configuration recorded in the header —
// what a refresh must run dirty shards with for clean-shard reuse to be
// coherent.
func (s *Snapshot) Config() core.Config {
	return core.Config{
		C1:                 s.meta.C1,
		C2:                 s.meta.C2,
		Iterations:         max(1, s.meta.IterationBudget),
		Tolerance:          s.meta.Tolerance,
		Variant:            s.meta.Variant,
		EvidenceForm:       s.meta.EvidenceForm,
		Channel:            s.meta.Channel,
		DisableSpread:      s.meta.DisableSpread,
		StrictEvidence:     s.meta.StrictEvidence,
		PruneEpsilon:       s.meta.PruneEpsilon,
		DeltaSkipTolerance: s.meta.DeltaSkipTol,
	}
}
