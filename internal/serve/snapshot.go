package serve

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"simrankpp/internal/core"
	"simrankpp/internal/sparse"
)

// This file is the batch→online handoff of Figure 2 in binary form: a
// versioned snapshot a sharded run writes once and a server opens in
// O(header + string table), routing each query to its shard's score
// segment without ever materializing the other shards.
//
// Layout (all integers little-endian):
//
//	header    fixed 132 bytes: magic, version, run metadata (variant,
//	          iterations, C1/C2, converged), graph dimensions, shard
//	          count, section offsets/lengths, per-section CRC32s, and a
//	          trailing CRC32 over the header itself.
//	strings   NumQueries then NumAds names, each uvarint length + raw
//	          bytes. Length-prefixed, so names may contain tabs or
//	          newlines that would corrupt the line-oriented text format.
//	route     NumQueries + NumAds uint32s: each node's shard index — the
//	          partition.Plan node→shard map in serialized form. Pairs
//	          never cross shards (cut pairs score 0), so one lookup
//	          routes a query to the only segment that can score it.
//	dir       one fixed 48-byte entry per shard: offset, pair count and
//	          CRC32 of its query segment and of its ad segment.
//	segments  per shard, per side: pair records (uint32 i, uint32 j,
//	          float64 score) with i < j in global ids, sorted ascending —
//	          written in parallel, one encoder per shard, and loaded
//	          lazily per shard per side on first access.

const (
	snapshotMagic   = "SRPPSNAP"
	snapshotVersion = 1
	headerSize      = 132
	dirEntrySize    = 48
	pairRecordSize  = 16

	flagConverged = 1 << 0
)

// SnapshotMeta is the run metadata a snapshot carries, available from the
// header alone.
type SnapshotMeta struct {
	Variant    core.Variant `json:"variant"`
	Iterations int          `json:"iterations"`
	C1         float64      `json:"c1"`
	C2         float64      `json:"c2"`
	Converged  bool         `json:"converged"`
	NumQueries int          `json:"queries"`
	NumAds     int          `json:"ads"`
	// Shards is the number of score segments; 1 for a monolithic run.
	Shards int `json:"shards"`
	// QueryPairs and AdPairs are the total stored pair counts across all
	// shards (recorded in the header, so stats never force a segment load).
	QueryPairs int64 `json:"query_pairs"`
	AdPairs    int64 `json:"ad_pairs"`
}

// shardSource is one shard's tables awaiting encoding: ids remap local →
// global and are nil for an identity (monolithic) shard.
type shardSource struct {
	qIDs, aIDs []int
	q, a       *sparse.PairTable
}

// snapshotSources decomposes a result into per-shard table sources: the
// retained shard outputs of a RunSharded(..., RetainShardScores) run, or
// the stitched tables as one identity shard.
func snapshotSources(res *core.Result) []shardSource {
	if len(res.ShardScores) > 0 {
		out := make([]shardSource, len(res.ShardScores))
		for i, s := range res.ShardScores {
			out[i] = shardSource{qIDs: s.QueryIDs, aIDs: s.AdIDs, q: s.QueryScores, a: s.AdScores}
		}
		return out
	}
	return []shardSource{{q: res.QueryScores, a: res.AdScores}}
}

// encodeSegment flattens one pair table into the sorted binary record
// stream, remapping ids through the ascending local→global map when given
// (monotone, so local i < j stays global i < j).
func encodeSegment(t *sparse.PairTable, ids []int) []byte {
	type rec struct {
		i, j uint32
		v    float64
	}
	recs := make([]rec, 0, t.Len())
	t.Range(func(i, j int, v float64) bool {
		if ids != nil {
			i, j = ids[i], ids[j]
		}
		recs = append(recs, rec{uint32(i), uint32(j), v})
		return true
	})
	sort.Slice(recs, func(a, b int) bool {
		if recs[a].i != recs[b].i {
			return recs[a].i < recs[b].i
		}
		return recs[a].j < recs[b].j
	})
	buf := make([]byte, len(recs)*pairRecordSize)
	for k, r := range recs {
		o := k * pairRecordSize
		binary.LittleEndian.PutUint32(buf[o:], r.i)
		binary.LittleEndian.PutUint32(buf[o+4:], r.j)
		binary.LittleEndian.PutUint64(buf[o+8:], math.Float64bits(r.v))
	}
	return buf
}

// WriteSnapshot serializes res in the snapshot format. A result carrying
// retained shard scores (core.ShardOptions.RetainShardScores) writes one
// segment pair per shard, encoded in parallel directly from the shard
// engines' local tables; any other result writes a single segment pair.
func WriteSnapshot(w io.Writer, res *core.Result) error {
	srcs := snapshotSources(res)
	nq, na := res.NumQueries(), res.NumAds()
	if len(srcs) > 1<<30 || uint64(nq) > math.MaxUint32 || uint64(na) > math.MaxUint32 {
		return fmt.Errorf("serve: snapshot dimensions overflow uint32")
	}

	// Per-shard segments, one encoder per shard on a bounded pool.
	qSegs := make([][]byte, len(srcs))
	aSegs := make([][]byte, len(srcs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(srcs) {
		workers = len(srcs)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				qSegs[i] = encodeSegment(srcs[i].q, srcs[i].qIDs)
				aSegs[i] = encodeSegment(srcs[i].a, srcs[i].aIDs)
			}
		}()
	}
	for i := range srcs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	// String table: length-prefixed names, queries then ads.
	var strBuf []byte
	var lenScratch [binary.MaxVarintLen64]byte
	appendName := func(s string) {
		n := binary.PutUvarint(lenScratch[:], uint64(len(s)))
		strBuf = append(strBuf, lenScratch[:n]...)
		strBuf = append(strBuf, s...)
	}
	for q := 0; q < nq; q++ {
		appendName(res.Query(q))
	}
	for a := 0; a < na; a++ {
		appendName(res.Ad(a))
	}

	// Route section: node → shard, from the retained shard id lists.
	route := make([]byte, 4*(nq+na))
	for si, src := range srcs {
		for _, q := range src.qIDs {
			binary.LittleEndian.PutUint32(route[4*q:], uint32(si))
		}
		for _, a := range src.aIDs {
			binary.LittleEndian.PutUint32(route[4*(nq+a):], uint32(si))
		}
	}

	// Directory + totals; segment offsets follow header/strings/route/dir.
	stringsOff := uint64(headerSize)
	routeOff := stringsOff + uint64(len(strBuf))
	dirOff := routeOff + uint64(len(route))
	segOff := dirOff + uint64(dirEntrySize*len(srcs))
	dir := make([]byte, dirEntrySize*len(srcs))
	var totalQ, totalA uint64
	for i := range srcs {
		o := i * dirEntrySize
		qPairs := uint64(len(qSegs[i]) / pairRecordSize)
		aPairs := uint64(len(aSegs[i]) / pairRecordSize)
		binary.LittleEndian.PutUint64(dir[o:], segOff)
		segOff += uint64(len(qSegs[i]))
		binary.LittleEndian.PutUint64(dir[o+8:], segOff)
		segOff += uint64(len(aSegs[i]))
		binary.LittleEndian.PutUint64(dir[o+16:], qPairs)
		binary.LittleEndian.PutUint64(dir[o+24:], aPairs)
		binary.LittleEndian.PutUint32(dir[o+32:], crc32.ChecksumIEEE(qSegs[i]))
		binary.LittleEndian.PutUint32(dir[o+36:], crc32.ChecksumIEEE(aSegs[i]))
		totalQ += qPairs
		totalA += aPairs
	}

	hdr := make([]byte, headerSize)
	copy(hdr, snapshotMagic)
	binary.LittleEndian.PutUint32(hdr[8:], snapshotVersion)
	var flags uint32
	if res.Converged {
		flags |= flagConverged
	}
	binary.LittleEndian.PutUint32(hdr[12:], flags)
	binary.LittleEndian.PutUint32(hdr[16:], uint32(res.Config.Variant))
	binary.LittleEndian.PutUint32(hdr[20:], uint32(res.Iterations))
	binary.LittleEndian.PutUint64(hdr[24:], math.Float64bits(res.Config.C1))
	binary.LittleEndian.PutUint64(hdr[32:], math.Float64bits(res.Config.C2))
	binary.LittleEndian.PutUint32(hdr[40:], uint32(nq))
	binary.LittleEndian.PutUint32(hdr[44:], uint32(na))
	binary.LittleEndian.PutUint32(hdr[48:], uint32(len(srcs)))
	binary.LittleEndian.PutUint32(hdr[52:], crc32.ChecksumIEEE(strBuf))
	binary.LittleEndian.PutUint64(hdr[56:], totalQ)
	binary.LittleEndian.PutUint64(hdr[64:], totalA)
	binary.LittleEndian.PutUint64(hdr[72:], stringsOff)
	binary.LittleEndian.PutUint64(hdr[80:], uint64(len(strBuf)))
	binary.LittleEndian.PutUint64(hdr[88:], routeOff)
	binary.LittleEndian.PutUint64(hdr[96:], uint64(len(route)))
	binary.LittleEndian.PutUint64(hdr[104:], dirOff)
	binary.LittleEndian.PutUint64(hdr[112:], uint64(len(dir)))
	binary.LittleEndian.PutUint32(hdr[120:], crc32.ChecksumIEEE(route))
	binary.LittleEndian.PutUint32(hdr[124:], crc32.ChecksumIEEE(dir))
	binary.LittleEndian.PutUint32(hdr[128:], crc32.ChecksumIEEE(hdr[:128]))

	for _, b := range [][]byte{hdr, strBuf, route, dir} {
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	for i := range srcs {
		if _, err := w.Write(qSegs[i]); err != nil {
			return err
		}
		if _, err := w.Write(aSegs[i]); err != nil {
			return err
		}
	}
	return nil
}

// WriteSnapshotFile writes the snapshot to a temporary file in path's
// directory and renames it into place, so a server reloading on SIGHUP
// never observes a half-written snapshot.
func WriteSnapshotFile(path string, res *core.Result) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := WriteSnapshot(tmp, res); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// segEntry is one decoded directory row.
type segEntry struct {
	qOff, aOff     uint64
	qPairs, aPairs uint64
	qCRC, aCRC     uint32
}

// snapShard is one shard's lazily-loaded tables. The sync.Onces make
// concurrent first touches race-free; after loading, the tables are
// read-only (PairTable reads and EnsureIndex are concurrency-safe).
type snapShard struct {
	qOnce, aOnce sync.Once
	qErr, aErr   error
	qTab, aTab   *sparse.PairTable
}

// Snapshot is a loaded snapshot file implementing ScoreIndex. Opening
// reads only the header, string table, route map and directory — O(nodes),
// independent of how many scores the file holds; each shard's score
// segments are read, checksummed and indexed on first access.
type Snapshot struct {
	r      io.ReaderAt
	size   int64
	closer io.Closer

	meta         SnapshotMeta
	queries, ads []string
	queryID      map[string]int
	adID         map[string]int
	qRoute       []uint32
	aRoute       []uint32
	dir          []segEntry
	shards       []snapShard
	// loaded counts successfully materialized segments; atomic because
	// stats readers race with lazy loads inside the Onces.
	loaded atomic.Int32

	mu      sync.Mutex
	lazyErr error // first segment-load failure, surfaced via Err
}

// OpenSnapshot opens a snapshot file. Close releases it.
func OpenSnapshot(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	s, err := NewSnapshot(f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	s.closer = f
	return s, nil
}

// NewSnapshot opens a snapshot from any random-access reader of the given
// total size.
func NewSnapshot(r io.ReaderAt, size int64) (*Snapshot, error) {
	if size < headerSize {
		return nil, fmt.Errorf("serve: snapshot too small (%d bytes)", size)
	}
	hdr := make([]byte, headerSize)
	if _, err := r.ReadAt(hdr, 0); err != nil {
		return nil, fmt.Errorf("serve: reading snapshot header: %w", err)
	}
	if string(hdr[:8]) != snapshotMagic {
		return nil, fmt.Errorf("serve: bad snapshot magic %q", hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != snapshotVersion {
		return nil, fmt.Errorf("serve: unsupported snapshot version %d (want %d)", v, snapshotVersion)
	}
	if got, want := crc32.ChecksumIEEE(hdr[:128]), binary.LittleEndian.Uint32(hdr[128:]); got != want {
		return nil, fmt.Errorf("serve: snapshot header checksum mismatch (corrupt header)")
	}

	flags := binary.LittleEndian.Uint32(hdr[12:])
	s := &Snapshot{r: r, size: size}
	s.meta = SnapshotMeta{
		Variant:    core.Variant(binary.LittleEndian.Uint32(hdr[16:])),
		Iterations: int(binary.LittleEndian.Uint32(hdr[20:])),
		C1:         math.Float64frombits(binary.LittleEndian.Uint64(hdr[24:])),
		C2:         math.Float64frombits(binary.LittleEndian.Uint64(hdr[32:])),
		Converged:  flags&flagConverged != 0,
		NumQueries: int(binary.LittleEndian.Uint32(hdr[40:])),
		NumAds:     int(binary.LittleEndian.Uint32(hdr[44:])),
		Shards:     int(binary.LittleEndian.Uint32(hdr[48:])),
		QueryPairs: int64(binary.LittleEndian.Uint64(hdr[56:])),
		AdPairs:    int64(binary.LittleEndian.Uint64(hdr[64:])),
	}
	stringsOff := binary.LittleEndian.Uint64(hdr[72:])
	stringsLen := binary.LittleEndian.Uint64(hdr[80:])
	routeOff := binary.LittleEndian.Uint64(hdr[88:])
	routeLen := binary.LittleEndian.Uint64(hdr[96:])
	dirOff := binary.LittleEndian.Uint64(hdr[104:])
	dirLen := binary.LittleEndian.Uint64(hdr[112:])

	strBuf, err := s.section("string table", stringsOff, stringsLen, binary.LittleEndian.Uint32(hdr[52:]))
	if err != nil {
		return nil, err
	}
	route, err := s.section("route map", routeOff, routeLen, binary.LittleEndian.Uint32(hdr[120:]))
	if err != nil {
		return nil, err
	}
	dirBuf, err := s.section("shard directory", dirOff, dirLen, binary.LittleEndian.Uint32(hdr[124:]))
	if err != nil {
		return nil, err
	}

	nq, na := s.meta.NumQueries, s.meta.NumAds
	if int(routeLen) != 4*(nq+na) {
		return nil, fmt.Errorf("serve: route map is %d bytes, want %d", routeLen, 4*(nq+na))
	}
	if int(dirLen) != dirEntrySize*s.meta.Shards {
		return nil, fmt.Errorf("serve: shard directory is %d bytes, want %d", dirLen, dirEntrySize*s.meta.Shards)
	}

	s.queries = make([]string, nq)
	s.ads = make([]string, na)
	s.queryID = make(map[string]int, nq)
	s.adID = make(map[string]int, na)
	pos := 0
	readName := func() (string, error) {
		n, used := binary.Uvarint(strBuf[pos:])
		if used <= 0 || pos+used+int(n) > len(strBuf) {
			return "", fmt.Errorf("serve: string table truncated at byte %d", pos)
		}
		name := string(strBuf[pos+used : pos+used+int(n)])
		pos += used + int(n)
		return name, nil
	}
	for q := 0; q < nq; q++ {
		if s.queries[q], err = readName(); err != nil {
			return nil, err
		}
		s.queryID[s.queries[q]] = q
	}
	for a := 0; a < na; a++ {
		if s.ads[a], err = readName(); err != nil {
			return nil, err
		}
		s.adID[s.ads[a]] = a
	}

	s.qRoute = make([]uint32, nq)
	s.aRoute = make([]uint32, na)
	for q := 0; q < nq; q++ {
		s.qRoute[q] = binary.LittleEndian.Uint32(route[4*q:])
	}
	for a := 0; a < na; a++ {
		s.aRoute[a] = binary.LittleEndian.Uint32(route[4*(nq+a):])
	}
	s.dir = make([]segEntry, s.meta.Shards)
	for i := range s.dir {
		o := i * dirEntrySize
		s.dir[i] = segEntry{
			qOff:   binary.LittleEndian.Uint64(dirBuf[o:]),
			aOff:   binary.LittleEndian.Uint64(dirBuf[o+8:]),
			qPairs: binary.LittleEndian.Uint64(dirBuf[o+16:]),
			aPairs: binary.LittleEndian.Uint64(dirBuf[o+24:]),
			qCRC:   binary.LittleEndian.Uint32(dirBuf[o+32:]),
			aCRC:   binary.LittleEndian.Uint32(dirBuf[o+36:]),
		}
	}
	for si, r := range s.qRoute {
		if int(r) >= s.meta.Shards {
			return nil, fmt.Errorf("serve: query %d routed to shard %d of %d", si, r, s.meta.Shards)
		}
	}
	for si, r := range s.aRoute {
		if int(r) >= s.meta.Shards {
			return nil, fmt.Errorf("serve: ad %d routed to shard %d of %d", si, r, s.meta.Shards)
		}
	}
	s.shards = make([]snapShard, s.meta.Shards)
	return s, nil
}

// section reads and checksums one eagerly-loaded region.
func (s *Snapshot) section(name string, off, length uint64, wantCRC uint32) ([]byte, error) {
	if off+length > uint64(s.size) {
		return nil, fmt.Errorf("serve: %s [%d,+%d) extends past snapshot end (%d bytes)", name, off, length, s.size)
	}
	buf := make([]byte, length)
	if _, err := s.r.ReadAt(buf, int64(off)); err != nil {
		return nil, fmt.Errorf("serve: reading %s: %w", name, err)
	}
	if got := crc32.ChecksumIEEE(buf); got != wantCRC {
		return nil, fmt.Errorf("serve: %s checksum mismatch", name)
	}
	return buf, nil
}

// loadSegment reads, verifies and decodes one score segment.
func (s *Snapshot) loadSegment(side string, shard int, off, pairs uint64, wantCRC uint32) (*sparse.PairTable, error) {
	length := pairs * pairRecordSize
	if off+length > uint64(s.size) {
		return nil, fmt.Errorf("serve: shard %d %s segment [%d,+%d) extends past snapshot end (%d bytes): truncated snapshot",
			shard, side, off, length, s.size)
	}
	buf := make([]byte, length)
	if _, err := s.r.ReadAt(buf, int64(off)); err != nil {
		return nil, fmt.Errorf("serve: reading shard %d %s segment: %w", shard, side, err)
	}
	if got := crc32.ChecksumIEEE(buf); got != wantCRC {
		return nil, fmt.Errorf("serve: shard %d %s segment checksum mismatch", shard, side)
	}
	t := sparse.NewPairTable(int(pairs))
	for k := 0; k < int(pairs); k++ {
		o := k * pairRecordSize
		i := int(binary.LittleEndian.Uint32(buf[o:]))
		j := int(binary.LittleEndian.Uint32(buf[o+4:]))
		v := math.Float64frombits(binary.LittleEndian.Uint64(buf[o+8:]))
		t.Set(i, j, v)
	}
	return t, nil
}

func (s *Snapshot) recordErr(err error) {
	s.mu.Lock()
	if s.lazyErr == nil {
		s.lazyErr = err
	}
	s.mu.Unlock()
}

// queryTable returns shard si's query-side table, loading it on first use.
func (s *Snapshot) queryTable(si int) (*sparse.PairTable, error) {
	sh := &s.shards[si]
	sh.qOnce.Do(func() {
		sh.qTab, sh.qErr = s.loadSegment("query", si, s.dir[si].qOff, s.dir[si].qPairs, s.dir[si].qCRC)
		if sh.qErr != nil {
			s.recordErr(sh.qErr)
		} else {
			s.loaded.Add(1)
		}
	})
	return sh.qTab, sh.qErr
}

// adTable is queryTable for the ad side.
func (s *Snapshot) adTable(si int) (*sparse.PairTable, error) {
	sh := &s.shards[si]
	sh.aOnce.Do(func() {
		sh.aTab, sh.aErr = s.loadSegment("ad", si, s.dir[si].aOff, s.dir[si].aPairs, s.dir[si].aCRC)
		if sh.aErr != nil {
			s.recordErr(sh.aErr)
		} else {
			s.loaded.Add(1)
		}
	})
	return sh.aTab, sh.aErr
}

// Meta returns the snapshot's run metadata.
func (s *Snapshot) Meta() SnapshotMeta { return s.meta }

// Err returns the first score-segment load failure, if any. Lookup methods
// on a shard whose segment is unreadable return empty results; servers
// surface this through /stats.
func (s *Snapshot) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lazyErr
}

// LoadedSegments counts the score segments currently materialized — the
// observable face of lazy loading (0 right after opening). Safe to call
// concurrently with lazy loads (stats endpoint vs cold queries).
func (s *Snapshot) LoadedSegments() int { return int(s.loaded.Load()) }

// PreloadAll materializes and verifies every score segment, returning the
// first failure. Use it to validate a snapshot end to end.
func (s *Snapshot) PreloadAll() error {
	for i := range s.shards {
		if _, err := s.queryTable(i); err != nil {
			return err
		}
		if _, err := s.adTable(i); err != nil {
			return err
		}
	}
	return nil
}

// Close releases the underlying file, when file-backed.
func (s *Snapshot) Close() error {
	if s.closer != nil {
		return s.closer.Close()
	}
	return nil
}

// NumQueries implements ScoreIndex.
func (s *Snapshot) NumQueries() int { return s.meta.NumQueries }

// NumAds implements ScoreIndex.
func (s *Snapshot) NumAds() int { return s.meta.NumAds }

// Query implements ScoreIndex.
func (s *Snapshot) Query(id int) string { return s.queries[id] }

// Ad implements ScoreIndex.
func (s *Snapshot) Ad(id int) string { return s.ads[id] }

// QueryID implements ScoreIndex.
func (s *Snapshot) QueryID(name string) (int, bool) {
	id, ok := s.queryID[name]
	return id, ok
}

// AdID implements ScoreIndex.
func (s *Snapshot) AdID(name string) (int, bool) {
	id, ok := s.adID[name]
	return id, ok
}

// QuerySim implements ScoreIndex: 1 on the diagonal, 0 across shards
// (sharded runs never score cross-shard pairs), the stored score within
// one.
func (s *Snapshot) QuerySim(q1, q2 int) float64 {
	if q1 == q2 {
		return 1
	}
	if s.qRoute[q1] != s.qRoute[q2] {
		return 0
	}
	t, err := s.queryTable(int(s.qRoute[q1]))
	if err != nil {
		return 0
	}
	v, _ := t.Get(q1, q2)
	return v
}

// AdSim implements ScoreIndex.
func (s *Snapshot) AdSim(a1, a2 int) float64 {
	if a1 == a2 {
		return 1
	}
	if s.aRoute[a1] != s.aRoute[a2] {
		return 0
	}
	t, err := s.adTable(int(s.aRoute[a1]))
	if err != nil {
		return 0
	}
	v, _ := t.Get(a1, a2)
	return v
}

// TopRewrites implements ScoreIndex: it routes q to its shard's query
// segment and answers from that segment's partner index alone.
func (s *Snapshot) TopRewrites(q, k int) []sparse.Scored {
	t, err := s.queryTable(int(s.qRoute[q]))
	if err != nil {
		return nil
	}
	t.EnsureIndex()
	return t.TopKFor(q, k)
}

// TopSimilarAds implements ScoreIndex.
func (s *Snapshot) TopSimilarAds(a, k int) []sparse.Scored {
	t, err := s.adTable(int(s.aRoute[a]))
	if err != nil {
		return nil
	}
	t.EnsureIndex()
	return t.TopKFor(a, k)
}

// VariantName implements ScoreIndex.
func (s *Snapshot) VariantName() string { return s.meta.Variant.String() }
