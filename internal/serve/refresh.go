package serve

import (
	"context"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/core"
	"simrankpp/internal/partition"
	"simrankpp/internal/sparse"
)

// Incremental snapshot refresh: the write half of making refresh cost
// proportional to the changed region of the graph. A refresh classifies
// shards against the previous snapshot (partition.DiffPlans over the
// fingerprints the directory carries), re-runs only the dirty ones —
// warm-started from the previous scores — and writes the next generation
// by byte-copying every clean shard's score segments out of the old file:
// their CRCs are already in the directory, so reuse pays one read + one
// checksum per segment instead of decode → re-sort → re-encode. A clean
// shard's segment is guaranteed reusable because its fingerprint covers
// node ids, names, and every incident edge with weights: identical
// fingerprint ⇒ identical subgraph under identical global ids ⇒ the
// deterministic per-shard engine would reproduce the identical bytes.

// RefreshStats reports what a RefreshSnapshot write did.
type RefreshStats struct {
	// DirtyShards/CleanShards count the segment pairs encoded vs reused.
	DirtyShards, CleanShards int
	// BytesReencoded is the segment bytes newly encoded from dirty-shard
	// scores; BytesCopied the segment bytes copied from the previous
	// snapshot without decoding.
	BytesReencoded, BytesCopied int64
}

// refreshTopK derives the next generation's top-k section parameters
// from the previous header — a refresh cannot choose its own depth,
// because clean shards' blobs are byte-copied and mixing depths within
// one snapshot would be incoherent — and rejects a bid-term set that
// differs from the one the previous generation's lists were filtered
// with (same reason: the copied blobs bake the old filter in).
func refreshTopK(prev *Snapshot, bids map[string]bool) (topkMeta, error) {
	tk := topkMeta{
		k:       uint32(prev.meta.RewriteTopK),
		topN:    uint32(prev.meta.RewriteTopN),
		bidHash: prev.meta.RewriteBidHash,
	}
	if tk.k > 0 && BidTermsHash(bids) != tk.bidHash {
		return tk, fmt.Errorf("serve: refresh bid-term set differs from the previous generation's precomputed rewrite section (rebuild with simrank -save to change filters)")
	}
	return tk, nil
}

// copyCleanBlob byte-copies shard i's precomputed rewrite blob from the
// previous generation — valid for the same reason segment copies are:
// the blob is position-independent (blob-relative offsets, global ids)
// and a clean shard's pipeline inputs are fingerprint-identical.
func copyCleanBlob(p *shardPayload, prev *Snapshot, i int) error {
	blob, err := prev.topkBytes(i)
	if err != nil {
		return err
	}
	p.tkBlob, p.tkCRC = blob, prev.dir[i].tkCRC
	return nil
}

// RefreshSnapshot writes the next snapshot generation: res must cover the
// new graph with one ShardScoreSet per shard (core.RunSharded with
// RetainShardScores; shards skipped via RunShards carry id lists only),
// and dirty must be the matching classification (partition.Diff.Dirty).
// Dirty shards' segments are encoded from their tables in parallel; clean
// shards' segments are byte-copied from prev, verified against the
// directory CRCs. The precomputed rewrite section follows the same split
// at the depth recorded in prev's header: dirty shards re-run the
// pipeline, clean shards byte-copy their blobs. bids must be the same
// bid-term set prev's section was built with (compared by hash); pass
// nil when prev carries no section. The run configuration must match
// prev's — mixing generations computed under different settings would
// serve incoherent scores. Byte counters cover score segments only.
func RefreshSnapshot(w io.Writer, prev *Snapshot, res *core.Result, dirty []bool, bids map[string]bool) (RefreshStats, error) {
	var st RefreshStats
	if len(res.ShardScores) == 0 {
		return st, fmt.Errorf("serve: refresh needs a RunSharded result with RetainShardScores")
	}
	if len(res.ShardScores) != len(dirty) {
		return st, fmt.Errorf("serve: %d dirty flags for %d shards", len(dirty), len(res.ShardScores))
	}
	if len(res.ShardStats) != len(res.ShardScores) {
		return st, fmt.Errorf("serve: result is missing per-shard stats")
	}
	if err := compatibleConfig(prev, res.Config); err != nil {
		return st, err
	}
	tk, err := refreshTopK(prev, bids)
	if err != nil {
		return st, err
	}

	payloads := make([]shardPayload, len(res.ShardScores))
	var encodeIdx []int
	for i := range res.ShardScores {
		ss := &res.ShardScores[i]
		payloads[i].qIDs, payloads[i].aIDs = ss.QueryIDs, ss.AdIDs
		payloads[i].fp = res.ShardStats[i].Fingerprint
		if dirty[i] {
			if ss.QueryScores == nil || ss.AdScores == nil {
				return st, fmt.Errorf("serve: dirty shard %d has no scores (was it in RunShards?)", i)
			}
			encodeIdx = append(encodeIdx, i)
			st.DirtyShards++
			continue
		}
		// Clean shard: reuse segment i of the previous generation.
		if i >= prev.meta.Shards {
			return st, fmt.Errorf("serve: shard %d marked clean but the previous snapshot has only %d shards",
				i, prev.meta.Shards)
		}
		if payloads[i].fp != prev.dir[i].fp {
			return st, fmt.Errorf("serve: shard %d marked clean but its fingerprint differs from the previous generation's", i)
		}
		var err error
		e := &prev.dir[i]
		if payloads[i].qSeg, err = prev.segmentBytes("query", i, e.qOff, e.qPairs, e.qCRC); err != nil {
			return st, err
		}
		if payloads[i].aSeg, err = prev.segmentBytes("ad", i, e.aOff, e.aPairs, e.aCRC); err != nil {
			return st, err
		}
		payloads[i].qCRC, payloads[i].aCRC = e.qCRC, e.aCRC
		if err := copyCleanBlob(&payloads[i], prev, i); err != nil {
			return st, err
		}
		st.CleanShards++
		st.BytesCopied += int64(len(payloads[i].qSeg) + len(payloads[i].aSeg))
	}

	encodePayloads(payloads, encodeIdx, func(i int) (*sparse.PairTable, *sparse.PairTable) {
		return res.ShardScores[i].QueryScores, res.ShardScores[i].AdScores
	})
	if err := fillTopKBlobs(payloads, encodeIdx, res, tk, bids); err != nil {
		return st, err
	}
	for _, i := range encodeIdx {
		st.BytesReencoded += int64(len(payloads[i].qSeg) + len(payloads[i].aSeg))
	}

	// Iterations: a refresh ran only its dirty shards, so the horizon the
	// snapshot advertises is the deeper of the two generations'.
	iters := res.Iterations
	if prev.meta.Iterations > iters {
		iters = prev.meta.Iterations
	}
	err = writeAssembled(w, res, res.Config, payloads, genInfo{
		iterations:  iters,
		converged:   res.Converged && prev.meta.Converged,
		generatedAt: time.Now(),
		dirtyShards: uint32(st.DirtyShards),
	}, tk)
	return st, err
}

// ShardSegment is one shard's encoded score segments in wire form — the
// exact bytes a snapshot stores for that shard, with their CRCs. It is
// the unit of exchange between a refresh coordinator and a remote worker:
// a worker encodes one from its shard run, the coordinator validates the
// CRCs and hands the bytes to AssembleRefresh unchanged.
type ShardSegment struct {
	QuerySeg, AdSeg []byte
	QueryCRC, AdCRC uint32
}

// EncodeShardSegment encodes one shard's score tables into segment wire
// form. qIDs/aIDs are the shard's ascending global node ids (nil for an
// identity/monolithic shard); the tables are local-id keyed, exactly as a
// per-shard engine produces them.
func EncodeShardSegment(q, a *sparse.PairTable, qIDs, aIDs []int) ShardSegment {
	var s ShardSegment
	s.QuerySeg = encodeSegment(q, qIDs)
	s.AdSeg = encodeSegment(a, aIDs)
	s.QueryCRC = crc32.ChecksumIEEE(s.QuerySeg)
	s.AdCRC = crc32.ChecksumIEEE(s.AdSeg)
	return s
}

// Validate re-checksums the segment bytes against the recorded CRCs —
// the integrity gate a coordinator applies to bytes that crossed a
// network before letting them anywhere near a snapshot.
func (s *ShardSegment) Validate() error {
	if got := crc32.ChecksumIEEE(s.QuerySeg); got != s.QueryCRC {
		return fmt.Errorf("serve: shard segment query CRC mismatch (got %08x want %08x)", got, s.QueryCRC)
	}
	if got := crc32.ChecksumIEEE(s.AdSeg); got != s.AdCRC {
		return fmt.Errorf("serve: shard segment ad CRC mismatch (got %08x want %08x)", got, s.AdCRC)
	}
	if len(s.QuerySeg)%pairRecordSize != 0 || len(s.AdSeg)%pairRecordSize != 0 {
		return fmt.Errorf("serve: shard segment length not a multiple of the pair record size")
	}
	return nil
}

// AssembleRefresh writes the next snapshot generation from pre-encoded
// dirty-shard segments — the distributed counterpart of RefreshSnapshot.
// plan must be the projected refresh plan (partition.DiffPlans) over g,
// dirty its classification, and segs one entry per shard with non-nil
// segments exactly at the dirty indices (a worker's response, or a local
// fallback's EncodeShardSegment). Clean shards byte-copy from prev under
// the same fingerprint guard as RefreshSnapshot; every provided segment
// is CRC-validated before use. Dirty shards' precomputed rewrite blobs
// are rebuilt here, at the coordinator, from the validated segment
// bytes (workers ship scores, not filter decisions); clean shards'
// blobs are byte-copied; bids follows the RefreshSnapshot contract.
// iterations/converged aggregate the dirty-shard runs (max /
// logical-AND semantics against prev are applied here, matching the
// local path).
func AssembleRefresh(w io.Writer, prev *Snapshot, g *clickgraph.Graph, cfg core.Config, plan *partition.Plan, dirty []bool, segs []*ShardSegment, iterations int, converged bool, bids map[string]bool) (RefreshStats, error) {
	var st RefreshStats
	if len(plan.Shards) != len(dirty) || len(plan.Shards) != len(segs) {
		return st, fmt.Errorf("serve: assemble got %d shards, %d dirty flags, %d segments",
			len(plan.Shards), len(dirty), len(segs))
	}
	if err := compatibleConfig(prev, cfg); err != nil {
		return st, err
	}
	tk, err := refreshTopK(prev, bids)
	if err != nil {
		return st, err
	}

	payloads := make([]shardPayload, len(plan.Shards))
	var dirtyIdx []int
	for i := range plan.Shards {
		sh := &plan.Shards[i]
		payloads[i].qIDs, payloads[i].aIDs = sh.Queries, sh.Ads
		payloads[i].fp = sh.Fingerprint
		if dirty[i] {
			seg := segs[i]
			if seg == nil {
				return st, fmt.Errorf("serve: dirty shard %d has no segment", i)
			}
			if err := seg.Validate(); err != nil {
				return st, fmt.Errorf("serve: shard %d: %w", i, err)
			}
			payloads[i].qSeg, payloads[i].aSeg = seg.QuerySeg, seg.AdSeg
			payloads[i].qCRC, payloads[i].aCRC = seg.QueryCRC, seg.AdCRC
			dirtyIdx = append(dirtyIdx, i)
			st.DirtyShards++
			st.BytesReencoded += int64(len(seg.QuerySeg) + len(seg.AdSeg))
			continue
		}
		if segs[i] != nil {
			return st, fmt.Errorf("serve: clean shard %d has a segment (dirty mask out of sync?)", i)
		}
		if i >= prev.meta.Shards {
			return st, fmt.Errorf("serve: shard %d marked clean but the previous snapshot has only %d shards",
				i, prev.meta.Shards)
		}
		if payloads[i].fp != prev.dir[i].fp {
			return st, fmt.Errorf("serve: shard %d marked clean but its fingerprint differs from the previous generation's", i)
		}
		var err error
		e := &prev.dir[i]
		if payloads[i].qSeg, err = prev.segmentBytes("query", i, e.qOff, e.qPairs, e.qCRC); err != nil {
			return st, err
		}
		if payloads[i].aSeg, err = prev.segmentBytes("ad", i, e.aOff, e.aPairs, e.aCRC); err != nil {
			return st, err
		}
		payloads[i].qCRC, payloads[i].aCRC = e.qCRC, e.aCRC
		if err := copyCleanBlob(&payloads[i], prev, i); err != nil {
			return st, err
		}
		st.CleanShards++
		st.BytesCopied += int64(len(payloads[i].qSeg) + len(payloads[i].aSeg))
	}
	if err := fillTopKBlobs(payloads, dirtyIdx, g, tk, bids); err != nil {
		return st, err
	}

	iters := iterations
	if prev.meta.Iterations > iters {
		iters = prev.meta.Iterations
	}
	err = writeAssembled(w, g, cfg, payloads, genInfo{
		iterations:  iters,
		converged:   converged && prev.meta.Converged,
		generatedAt: time.Now(),
		dirtyShards: uint32(st.DirtyShards),
	}, tk)
	return st, err
}

// compatibleConfig rejects a refresh whose engine configuration differs
// from the one the previous generation was computed with, as far as the
// header records it.
func compatibleConfig(prev *Snapshot, cfg core.Config) error {
	m := prev.Meta()
	switch {
	case cfg.Variant != m.Variant:
		return fmt.Errorf("serve: refresh variant %v != snapshot %v", cfg.Variant, m.Variant)
	case cfg.C1 != m.C1 || cfg.C2 != m.C2:
		return fmt.Errorf("serve: refresh decay (%v,%v) != snapshot (%v,%v)", cfg.C1, cfg.C2, m.C1, m.C2)
	case cfg.StrictEvidence != m.StrictEvidence,
		cfg.DisableSpread != m.DisableSpread,
		cfg.Channel != m.Channel,
		cfg.EvidenceForm != m.EvidenceForm,
		cfg.PruneEpsilon != m.PruneEpsilon:
		return fmt.Errorf("serve: refresh run settings differ from the snapshot's (strict/spread/channel/evidence/prune)")
	}
	return nil
}

// RefreshSnapshotFile writes the refreshed snapshot to a temporary file
// in path's directory and renames it into place. path may equal the file
// prev was opened from: the copy is read before the rename replaces it.
func RefreshSnapshotFile(path string, prev *Snapshot, res *core.Result, dirty []bool, bids map[string]bool) (RefreshStats, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return RefreshStats{}, err
	}
	defer os.Remove(tmp.Name())
	st, err := RefreshSnapshot(tmp, prev, res, dirty, bids)
	if err != nil {
		tmp.Close()
		return st, err
	}
	if err := tmp.Close(); err != nil {
		return st, err
	}
	return st, os.Rename(tmp.Name(), path)
}

// RunRefresh is the compute side of one refresh step: diff the new graph
// against the previous snapshot, run only the dirty shards, and return
// the partial result ready for RefreshSnapshot, together with the
// classification. workers <= 0 selects GOMAXPROCS. The engine
// configuration is taken from the previous snapshot's header, keeping
// generations coherent by construction.
//
// Dirty shards are warm-started from the previous scores only when the
// recorded configuration converges by tolerance. Under a fixed-iteration
// contract (Tolerance == 0) a warm start would be incoherent — a dirty
// shard seeded with generation-k scores and iterated k more would sit at
// an effective depth of 2k while its clean neighbors stay at k — whereas
// a cold re-run at the same fixed count reproduces exactly what a full
// rebuild would, bit for bit. So Tolerance > 0 buys the warm-start
// speedup; Tolerance == 0 buys exactness. Both keep the dirty-only
// scheduling and the segment-copy savings.
func RunRefresh(g *clickgraph.Graph, prev *Snapshot, workers int) (*core.Result, *partition.Diff, error) {
	return RunRefreshContext(context.Background(), g, prev, workers)
}

// RunRefreshContext is RunRefresh with cancellation: ctx is plumbed into
// the shard pool (core.ShardOptions.Context), so a cancelled context
// stops the dirty-shard run at the next shard boundary and the refresh
// returns ctx's error with nothing written. The ingest controller uses
// this to abandon an in-flight fold on SIGTERM — the serving snapshot
// and the WAL cursor are untouched, and the fold simply re-runs after
// restart.
func RunRefreshContext(ctx context.Context, g *clickgraph.Graph, prev *Snapshot, workers int) (*core.Result, *partition.Diff, error) {
	diff, err := partition.DiffPlans(prev, g)
	if err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, diff, err
	}
	cfg := prev.Config()
	opt := core.ShardOptions{
		Workers:           workers,
		RetainShardScores: true,
		RunShards:         diff.Dirty,
		Context:           ctx,
	}
	if cfg.Tolerance > 0 {
		opt.WarmStart = prev
	}
	res, err := core.RunSharded(g, cfg, diff.Plan, opt)
	if err != nil {
		return nil, nil, err
	}
	return res, diff, nil
}
