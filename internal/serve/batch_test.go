package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
)

// postBatch POSTs body to /batch and returns status and response bytes.
func postBatch(t *testing.T, h http.Handler, body string) (int, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/batch", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

// TestBatchMatchesSingleEndpoint pins /batch's contract: results arrive
// in request order, and every successful item is byte-for-byte the
// object the single /rewrite endpoint would have answered — including a
// mid-batch unknown query, which becomes an in-order error item without
// failing the batch.
func TestBatchMatchesSingleEndpoint(t *testing.T) {
	srv, _ := fig3Server(t, DefaultServerConfig())
	h := srv.Handler()

	queries := []string{"camera", "no such query", "digital camera", "camera"}
	body, _ := json.Marshal(BatchRequest{Queries: queries, Top: 3})
	code, raw := postBatch(t, h, string(body))
	if code != http.StatusOK {
		t.Fatalf("/batch = %d: %s", code, raw)
	}
	var resp BatchResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatalf("bad batch response %s: %v", raw, err)
	}
	if len(resp.Results) != len(queries) {
		t.Fatalf("got %d results, want %d", len(resp.Results), len(queries))
	}
	for i, q := range queries {
		if q == "no such query" {
			var item BatchItemError
			if err := json.Unmarshal(resp.Results[i], &item); err != nil {
				t.Fatalf("result[%d] not an error item: %s", i, resp.Results[i])
			}
			if item.Status != http.StatusNotFound || item.Query != q {
				t.Fatalf("result[%d] = %+v, want 404 for %q", i, item, q)
			}
			continue
		}
		sc, sb := get(t, h, "/rewrite?q="+url.QueryEscape(q)+"&top=3")
		if sc != http.StatusOK {
			t.Fatalf("single /rewrite for %q = %d", q, sc)
		}
		want := bytes.TrimSuffix(sb, []byte("\n"))
		if !bytes.Equal(resp.Results[i], want) {
			t.Fatalf("result[%d] = %s, single endpoint = %s", i, resp.Results[i], want)
		}
	}
}

// TestBatchValidation pins the endpoint's rejection surface.
func TestBatchValidation(t *testing.T) {
	srv, _ := fig3Server(t, DefaultServerConfig())
	h := srv.Handler()

	// GET is not allowed and says so.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/batch", nil))
	if rec.Code != http.StatusMethodNotAllowed || rec.Header().Get("Allow") != http.MethodPost {
		t.Fatalf("GET /batch = %d Allow=%q, want 405 Allow=POST", rec.Code, rec.Header().Get("Allow"))
	}

	big, _ := json.Marshal(BatchRequest{Queries: make([]string, DefaultServerConfig().MaxBatch+1)})
	for name, body := range map[string]string{
		"malformed":    `{"queries": [`,
		"empty":        `{"queries": []}`,
		"negative-top": `{"queries": ["camera"], "top": -1}`,
		"oversized":    string(big),
	} {
		if code, raw := postBatch(t, h, body); code != http.StatusBadRequest {
			t.Errorf("%s: /batch = %d (%s), want 400", name, code, raw)
		}
	}

	// top omitted (0) means the server default, not an error.
	body, _ := json.Marshal(BatchRequest{Queries: []string{"camera"}})
	code, raw := postBatch(t, h, string(body))
	if code != http.StatusOK {
		t.Fatalf("default-top batch = %d: %s", code, raw)
	}
	var resp BatchResponse
	if err := json.Unmarshal(raw, &resp); err != nil || len(resp.Results) != 1 {
		t.Fatalf("default-top batch response %s (err %v)", raw, err)
	}
	sc, sb := get(t, h, "/rewrite?q=camera")
	if sc != http.StatusOK || !bytes.Equal(resp.Results[0], bytes.TrimSuffix(sb, []byte("\n"))) {
		t.Fatalf("default-top item %s != single endpoint %s", resp.Results[0], sb)
	}
}

// TestStatsServingSurface pins the /stats additions: the batch endpoint
// shows up with latency percentiles after traffic, and the mmap /
// topk_section fields report what the server is actually doing.
func TestStatsServingSurface(t *testing.T) {
	g := testGraph(t)
	path, _ := writeTopKFile(t, g, TopKOptions{K: DefaultRewriteTopK})
	mm, hp := openBoth(t, path)

	srv := serverOver(mm, nil)
	h := srv.Handler()
	body, _ := json.Marshal(BatchRequest{Queries: []string{g.Query(0), g.Query(1)}, Top: 2})
	for i := 0; i < 3; i++ {
		if code, raw := postBatch(t, h, string(body)); code != http.StatusOK {
			t.Fatalf("batch = %d: %s", code, raw)
		}
		if code, _ := get(t, h, "/rewrite?q="+g.Query(0)+"&top=2"); code != http.StatusOK {
			t.Fatalf("rewrite = %d", code)
		}
	}
	var stats StatsResponse
	if code, raw := get(t, h, "/stats"); code != http.StatusOK {
		t.Fatalf("/stats = %d", code)
	} else if err := json.Unmarshal(raw, &stats); err != nil {
		t.Fatalf("bad stats: %v", err)
	}
	if !stats.Mmap {
		t.Error("stats.Mmap = false on a mapped snapshot")
	}
	ts := stats.TopKSection
	if ts == nil || !ts.Present || ts.K != DefaultRewriteTopK || !ts.Serving || ts.BidFiltered {
		t.Errorf("topk_section = %+v, want present, k=%d, serving, unfiltered", ts, DefaultRewriteTopK)
	}
	be, ok := stats.Endpoints["batch"]
	if !ok || be.Requests != 3 {
		t.Errorf("endpoints[batch] = %+v (ok=%v), want 3 requests", be, ok)
	}
	if be.P50Ms <= 0 || be.P99Ms < be.P50Ms {
		t.Errorf("endpoints[batch] percentiles p50=%v p99=%v, want 0 < p50 <= p99", be.P50Ms, be.P99Ms)
	}
	re := stats.Endpoints["rewrite"]
	if re.Requests != 3 || re.P99Ms < re.P50Ms {
		t.Errorf("endpoints[rewrite] = %+v, want 3 requests with p50 <= p99", re)
	}

	// Heap-opened snapshot with the section disabled: mmap=false and
	// serving=false, but the section is still reported present.
	var hs StatsResponse
	hh := serverOver(hp, func(c *Config) { c.DisablePrecomputed = true }).Handler()
	if _, raw := get(t, hh, "/stats"); json.Unmarshal(raw, &hs) != nil {
		t.Fatal("bad heap stats")
	}
	if hs.Mmap {
		t.Error("heap stats.Mmap = true")
	}
	if hs.TopKSection == nil || !hs.TopKSection.Present || hs.TopKSection.Serving {
		t.Errorf("heap topk_section = %+v, want present but not serving", hs.TopKSection)
	}
}
