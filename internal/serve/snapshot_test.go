package serve

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/core"
	"simrankpp/internal/partition"
	"simrankpp/internal/sparse"
)

// testGraph builds a deterministic multi-component click graph big enough
// that a component plan yields several shards.
func testGraph(t *testing.T) *clickgraph.Graph {
	t.Helper()
	b := clickgraph.NewBuilder()
	for c := 0; c < 4; c++ {
		for q := 0; q < 12; q++ {
			for a := 0; a < 8; a++ {
				if (q*7+a*3+c)%4 == 0 {
					err := b.AddEdge(fmt.Sprintf("c%d-q%d", c, q), fmt.Sprintf("c%d-a%d", c, a),
						clickgraph.EdgeWeights{
							Impressions:       int64(3 * (q + a + 1)),
							Clicks:            int64(q + a + 1),
							ExpectedClickRate: float64((q*5+a*11+c)%100) / 100,
						})
					if err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
	return b.Build()
}

func mustSnapshot(t *testing.T, res *core.Result) *Snapshot {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, res); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	snap, err := NewSnapshot(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatalf("NewSnapshot: %v", err)
	}
	return snap
}

func scoredEqual(a, b []sparse.Scored) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSnapshotRoundTrip pins the tentpole acceptance: a snapshot answers
// TopRewrites (and point lookups) bit-identically to the in-memory Result
// it was written from, across variants × strict evidence × monolithic and
// sharded runs.
func TestSnapshotRoundTrip(t *testing.T) {
	g := testGraph(t)
	plan := partition.ComponentPlan(g)
	if len(plan.Shards) < 2 {
		t.Fatalf("fixture produced %d shards; want >= 2", len(plan.Shards))
	}
	for _, variant := range []core.Variant{core.Simple, core.Evidence, core.Weighted} {
		for _, strict := range []bool{false, true} {
			for _, sharded := range []bool{false, true} {
				name := fmt.Sprintf("%v/strict=%v/sharded=%v", variant, strict, sharded)
				t.Run(name, func(t *testing.T) {
					cfg := core.DefaultConfig().WithVariant(variant)
					cfg.StrictEvidence = strict
					cfg.PruneEpsilon = 1e-6
					var res *core.Result
					var err error
					if sharded {
						res, err = core.RunSharded(g, cfg, plan, core.ShardOptions{Workers: 3, RetainShardScores: true})
					} else {
						res, err = core.Run(g, cfg)
					}
					if err != nil {
						t.Fatal(err)
					}
					snap := mustSnapshot(t, res)
					meta := snap.Meta()
					wantShards := 1
					if sharded {
						wantShards = len(plan.Shards)
					}
					if meta.Shards != wantShards {
						t.Errorf("snapshot has %d shards, want %d", meta.Shards, wantShards)
					}
					if meta.Variant != variant || meta.Iterations != res.Iterations {
						t.Errorf("meta = %+v, want variant %v iterations %d", meta, variant, res.Iterations)
					}
					if int64(res.QueryScores.Len()) != meta.QueryPairs || int64(res.AdScores.Len()) != meta.AdPairs {
						t.Errorf("meta pairs %d/%d, want %d/%d",
							meta.QueryPairs, meta.AdPairs, res.QueryScores.Len(), res.AdScores.Len())
					}
					for q := 0; q < g.NumQueries(); q++ {
						if got, want := snap.TopRewrites(q, -1), res.TopRewrites(q, -1); !scoredEqual(got, want) {
							t.Fatalf("TopRewrites(%d): snapshot %v, live %v", q, got, want)
						}
						if got, want := snap.TopRewrites(q, 3), res.TopRewrites(q, 3); !scoredEqual(got, want) {
							t.Fatalf("TopRewrites(%d, 3): snapshot %v, live %v", q, got, want)
						}
						if snap.Query(q) != g.Query(q) {
							t.Fatalf("query name %d = %q, want %q", q, snap.Query(q), g.Query(q))
						}
						if id, ok := snap.QueryID(g.Query(q)); !ok || id != q {
							t.Fatalf("QueryID(%q) = %d,%v", g.Query(q), id, ok)
						}
					}
					for a := 0; a < g.NumAds(); a++ {
						if got, want := snap.TopSimilarAds(a, -1), res.TopSimilarAds(a, -1); !scoredEqual(got, want) {
							t.Fatalf("TopSimilarAds(%d): snapshot %v, live %v", a, got, want)
						}
					}
					// Point lookups over the full pair space, including
					// cross-shard zeros and the implicit diagonal.
					for q1 := 0; q1 < g.NumQueries(); q1++ {
						for q2 := q1; q2 < g.NumQueries(); q2++ {
							if got, want := snap.QuerySim(q1, q2), res.QuerySim(q1, q2); got != want {
								t.Fatalf("QuerySim(%d,%d) = %v, want %v", q1, q2, got, want)
							}
						}
					}
					for a1 := 0; a1 < g.NumAds(); a1++ {
						for a2 := a1; a2 < g.NumAds(); a2++ {
							if got, want := snap.AdSim(a1, a2), res.AdSim(a1, a2); got != want {
								t.Fatalf("AdSim(%d,%d) = %v, want %v", a1, a2, got, want)
							}
						}
					}
					if err := snap.Err(); err != nil {
						t.Fatalf("snapshot error after full read: %v", err)
					}
				})
			}
		}
	}
}

// TestSnapshotLazySegmentAccess pins the open-cost acceptance: opening
// materializes no score segment, a query loads only its own shard's
// segment, and a corrupt segment of another shard is never touched.
func TestSnapshotLazySegmentAccess(t *testing.T) {
	g := testGraph(t)
	plan := partition.ComponentPlan(g)
	cfg := core.DefaultConfig().WithVariant(core.Weighted)
	cfg.PruneEpsilon = 1e-6
	res, err := core.RunSharded(g, cfg, plan, core.ShardOptions{RetainShardScores: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, res); err != nil {
		t.Fatal(err)
	}

	// Corrupt the last shard's query segment in place: flip bytes in the
	// middle of its record stream.
	probe, err := NewSnapshot(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	last := len(probe.dir) - 1
	if probe.dir[last].qPairs == 0 {
		t.Fatalf("last shard has no query pairs; pick a better fixture")
	}
	raw := buf.Bytes()
	off := int(probe.dir[last].qOff)
	for i := 0; i < pairRecordSize; i++ {
		raw[off+i] ^= 0xff
	}

	snap, err := NewSnapshot(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatalf("open after segment corruption failed — open is not lazy: %v", err)
	}
	if n := snap.LoadedSegments(); n != 0 {
		t.Fatalf("%d segments loaded right after open, want 0", n)
	}
	// A query routed to shard 0 must work and load exactly one segment.
	var q0 int = -1
	for q := 0; q < g.NumQueries(); q++ {
		if snap.qRoute[q] == 0 {
			q0 = q
			break
		}
	}
	if q0 < 0 {
		t.Fatal("no query routed to shard 0")
	}
	if got, want := snap.TopRewrites(q0, -1), res.TopRewrites(q0, -1); !scoredEqual(got, want) {
		t.Fatalf("TopRewrites(%d) = %v, want %v", q0, got, want)
	}
	if n := snap.LoadedSegments(); n != 1 {
		t.Fatalf("%d segments loaded after one query, want 1", n)
	}
	if err := snap.Err(); err != nil {
		t.Fatalf("healthy-shard query surfaced an error: %v", err)
	}
	// Touching the corrupt shard must fail its load, yield empty results,
	// and surface through Err and PreloadAll.
	var qBad int = -1
	for q := 0; q < g.NumQueries(); q++ {
		if int(snap.qRoute[q]) == last {
			qBad = q
			break
		}
	}
	if qBad < 0 {
		t.Fatal("no query routed to the corrupted shard")
	}
	if got := snap.TopRewrites(qBad, -1); got != nil {
		t.Fatalf("corrupt shard answered %v, want nil", got)
	}
	if err := snap.Err(); err == nil {
		t.Fatal("corrupt segment load did not surface through Err")
	}
	if err := snap.PreloadAll(); err == nil {
		t.Fatal("PreloadAll accepted a corrupt segment")
	}
}

// TestSnapshotConcurrentReaders exercises the lazy segment loads and
// index builds from many goroutines at once — the shape of concurrent
// HTTP handlers hitting a cold snapshot (meaningful under -race).
func TestSnapshotConcurrentReaders(t *testing.T) {
	g := testGraph(t)
	plan := partition.ComponentPlan(g)
	cfg := core.DefaultConfig()
	cfg.PruneEpsilon = 1e-6
	res, err := core.RunSharded(g, cfg, plan, core.ShardOptions{RetainShardScores: true})
	if err != nil {
		t.Fatal(err)
	}
	snap := mustSnapshot(t, res)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for q := 0; q < g.NumQueries(); q++ {
				if got, want := snap.TopRewrites(q, 5), res.TopRewrites(q, 5); !scoredEqual(got, want) {
					t.Errorf("worker %d: TopRewrites(%d) = %v, want %v", w, q, got, want)
					return
				}
				if got, want := snap.QuerySim(q, (q+1)%g.NumQueries()), res.QuerySim(q, (q+1)%g.NumQueries()); got != want {
					t.Errorf("worker %d: QuerySim(%d,·) = %v, want %v", w, q, got, want)
					return
				}
			}
			for a := 0; a < g.NumAds(); a++ {
				if got, want := snap.TopSimilarAds(a, 5), res.TopSimilarAds(a, 5); !scoredEqual(got, want) {
					t.Errorf("worker %d: TopSimilarAds(%d) = %v, want %v", w, a, got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := snap.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotRejectsCorruption pins the header/truncation error paths.
func TestSnapshotRejectsCorruption(t *testing.T) {
	g := clickgraph.Fig3()
	res, err := core.Run(g, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, res); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	open := func(b []byte) error {
		_, err := NewSnapshot(bytes.NewReader(b), int64(len(b)))
		return err
	}
	mutate := func(off int, val byte) []byte {
		b := append([]byte(nil), good...)
		b[off] ^= val
		return b
	}

	if err := open(good); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
	if err := open(mutate(0, 0xff)); err == nil {
		t.Error("bad magic accepted")
	}
	if err := open(mutate(8, 0xff)); err == nil {
		t.Error("bad version accepted")
	}
	if err := open(mutate(45, 0xff)); err == nil {
		t.Error("corrupt header (flipped dimension byte) accepted")
	}
	if err := open(good[:headerSize+4]); err == nil {
		t.Error("string-table truncation accepted")
	}
	if err := open(good[:60]); err == nil {
		t.Error("sub-header truncation accepted")
	}

	// Truncated segment: keep all eager sections, cut the score records.
	probe, err := NewSnapshot(bytes.NewReader(good), int64(len(good)))
	if err != nil {
		t.Fatal(err)
	}
	cut := int(probe.dir[0].qOff) + pairRecordSize/2
	snap, err := NewSnapshot(bytes.NewReader(good[:cut]), int64(cut))
	if err != nil {
		t.Fatalf("truncated-segment snapshot must still open (lazy): %v", err)
	}
	if err := snap.PreloadAll(); err == nil {
		t.Error("PreloadAll accepted a truncated segment")
	}
}
