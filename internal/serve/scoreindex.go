// Package serve is the online half of the paper's Figure 2 deployment
// split: SimRank++ scores are computed offline (core.Run / core.RunSharded),
// persisted as a shard-segmented binary snapshot, and answered at query
// time by a front-end that never touches an engine. The package provides
// the ScoreIndex read abstraction every score consumer targets, the
// versioned snapshot format (snapshot.go), and the simrankd HTTP server
// (server.go).
package serve

import (
	"simrankpp/internal/core"
	"simrankpp/internal/sparse"
)

// ScoreIndex is the engine-agnostic read surface over a computed
// similarity result: node naming plus pair scores plus the ranked
// serving-path lookups. A live *core.Result implements it directly; a
// *Snapshot implements it from a file, loading per-shard score segments
// lazily. The rewrite filtering pipeline and the simrankd server consume
// only this interface, so the compute path and the read path evolve
// independently.
//
// Implementations must be safe for concurrent readers.
type ScoreIndex interface {
	// NumQueries and NumAds are the scored graph's dimensions.
	NumQueries() int
	NumAds() int
	// Query and Ad resolve ids to display strings; QueryID and AdID
	// invert them.
	Query(id int) string
	Ad(id int) string
	QueryID(name string) (int, bool)
	AdID(name string) (int, bool)
	// QuerySim returns s(q1, q2): 1 on the diagonal, 0 for unscored
	// pairs. AdSim likewise for ads.
	QuerySim(q1, q2 int) float64
	AdSim(a1, a2 int) float64
	// TopRewrites returns the k most similar queries to q, best first
	// with deterministic tie-breaking; k < 0 means all. TopSimilarAds is
	// the ad-side counterpart.
	TopRewrites(q, k int) []sparse.Scored
	TopSimilarAds(a, k int) []sparse.Scored
	// VariantName names the similarity measure that produced the scores.
	VariantName() string
}

// Both halves of the batch/online split serve the same interface.
var (
	_ ScoreIndex = (*core.Result)(nil)
	_ ScoreIndex = (*Snapshot)(nil)
)
