package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Generation management: the fault-tolerance layer under `simrank
// -refresh`. Every refresh journals its output as a numbered generation
// beside the serving snapshot — the snapshot bytes plus a small CRC'd
// manifest recording the generation id, the source-graph fingerprint,
// and a whole-file hash — before atomically re-pointing the serving
// path at it. Because the serving file is only ever replaced by an
// atomic rename and the last Keep generations stay journaled, a torn
// write, a bad disk, or a refresh crashed at any instant leaves the
// previous generation intact and re-installable: `simrank -rollback`
// (or the refresh failure path itself) verifies manifests newest-first
// and re-points serving at the last good one. Temp files are journal
// debris by construction (unique *.tmp* names, never referenced by a
// manifest); SweepTemp clears them at the start of the next refresh.
//
// Layout, for a serving path P:
//
//	P                       the serving snapshot (what simrankd opens)
//	P.gens/gen-%08d.snap    generation N's snapshot bytes
//	P.gens/gen-%08d.mf      generation N's manifest (see below)
//	P.gens/journal-*.tmp    in-flight writes (crash debris until swept)
//
// Manifest format (56 bytes, little-endian): magic "SRPPMANI",
// format version, generation id, source fingerprint (XOR of the
// snapshot's shard subgraph fingerprints — ties the generation to the
// click graph it was computed from), CRC32 of the complete snapshot
// file, snapshot size, creation time, the refresh's dirty-shard count,
// and a trailing CRC32 over the manifest itself. A generation is
// "good" only when its manifest checksums, its snapshot file matches
// the recorded size and hash, and the snapshot header opens.
const (
	manifestMagic   = "SRPPMANI"
	manifestVersion = 1
	manifestSize    = 56
	genSnapSuffix   = ".snap"
	genManifSuffix  = ".mf"
	journalPrefix   = "journal-"
)

// DefaultKeepGenerations is how many generations a refresh retains when
// the operator does not choose.
const DefaultKeepGenerations = 3

// errCrashInjected simulates the refresh process dying at a checkpoint:
// tests arm it via failAt, and the store then leaves every partial file
// exactly where a kill -9 would — no cleanup runs.
var errCrashInjected = errors.New("serve: injected crash")

// Generation describes one journaled snapshot generation.
type Generation struct {
	ID          uint64    `json:"id"`
	SnapPath    string    `json:"snap_path"`
	Fingerprint uint64    `json:"fingerprint"`
	CRC         uint32    `json:"crc32"`
	Size        int64     `json:"size"`
	CreatedAt   time.Time `json:"created_at"`
	// DirtyShards is the producing refresh's dirty-shard count; -1 for a
	// full build (or an adopted pre-store snapshot).
	DirtyShards int `json:"dirty_shards"`
}

// GenerationStore manages the journaled generations beside one serving
// snapshot path. It assumes a single writer (one refresh/rollback at a
// time — the paper's deployment has exactly one batch side); readers
// (simrankd's reload fallback) are safe concurrently because
// generations are immutable once their manifest exists.
type GenerationStore struct {
	path string // serving snapshot path
	dir  string // journal directory beside it
	keep int

	// failAt names a checkpoint at which the next operation aborts with
	// errCrashInjected and no cleanup — the crash-test hook emulating a
	// kill at that instant. Empty in production.
	failAt string
}

// NewGenerationStore returns the store for serving path p, retaining
// keep generations (DefaultKeepGenerations when keep <= 0).
func NewGenerationStore(p string, keep int) *GenerationStore {
	if keep <= 0 {
		keep = DefaultKeepGenerations
	}
	return &GenerationStore{path: p, dir: p + ".gens", keep: keep}
}

// Dir returns the journal directory.
func (gs *GenerationStore) Dir() string { return gs.dir }

// crash aborts the calling operation when the test hook armed this
// checkpoint. Callers must not clean up after it — the point is to
// leave the disk exactly as a kill would.
func (gs *GenerationStore) crash(stage string) error {
	if gs.failAt == stage {
		return fmt.Errorf("%w at %s", errCrashInjected, stage)
	}
	return nil
}

func (gs *GenerationStore) snapName(id uint64) string {
	return filepath.Join(gs.dir, fmt.Sprintf("gen-%08d%s", id, genSnapSuffix))
}

func (gs *GenerationStore) manifName(id uint64) string {
	return filepath.Join(gs.dir, fmt.Sprintf("gen-%08d%s", id, genManifSuffix))
}

func encodeManifest(g *Generation) []byte {
	buf := make([]byte, manifestSize)
	copy(buf, manifestMagic)
	binary.LittleEndian.PutUint32(buf[8:], manifestVersion)
	binary.LittleEndian.PutUint64(buf[12:], g.ID)
	binary.LittleEndian.PutUint64(buf[20:], g.Fingerprint)
	binary.LittleEndian.PutUint32(buf[28:], g.CRC)
	binary.LittleEndian.PutUint64(buf[32:], uint64(g.Size))
	binary.LittleEndian.PutUint64(buf[40:], uint64(g.CreatedAt.Unix()))
	dirty := fullBuildSentinel
	if g.DirtyShards >= 0 {
		dirty = uint32(g.DirtyShards)
	}
	binary.LittleEndian.PutUint32(buf[48:], dirty)
	binary.LittleEndian.PutUint32(buf[52:], crc32.ChecksumIEEE(buf[:52]))
	return buf
}

func decodeManifest(buf []byte) (Generation, error) {
	var g Generation
	if len(buf) != manifestSize {
		return g, fmt.Errorf("serve: manifest is %d bytes, want %d", len(buf), manifestSize)
	}
	if string(buf[:8]) != manifestMagic {
		return g, fmt.Errorf("serve: bad manifest magic %q", buf[:8])
	}
	if got, want := crc32.ChecksumIEEE(buf[:52]), binary.LittleEndian.Uint32(buf[52:]); got != want {
		return g, fmt.Errorf("serve: manifest checksum mismatch (corrupt manifest)")
	}
	if v := binary.LittleEndian.Uint32(buf[8:]); v != manifestVersion {
		return g, fmt.Errorf("serve: unsupported manifest version %d (want %d)", v, manifestVersion)
	}
	g.ID = binary.LittleEndian.Uint64(buf[12:])
	g.Fingerprint = binary.LittleEndian.Uint64(buf[20:])
	g.CRC = binary.LittleEndian.Uint32(buf[28:])
	g.Size = int64(binary.LittleEndian.Uint64(buf[32:]))
	g.CreatedAt = time.Unix(int64(binary.LittleEndian.Uint64(buf[40:])), 0).UTC()
	if d := binary.LittleEndian.Uint32(buf[48:]); d == fullBuildSentinel {
		g.DirtyShards = -1
	} else {
		g.DirtyShards = int(d)
	}
	return g, nil
}

// List returns every generation with a readable, checksummed manifest,
// ascending by id. Corrupt or half-written manifests are skipped, not
// errors — a crashed refresh must not wedge the next one.
func (gs *GenerationStore) List() ([]Generation, error) {
	entries, err := os.ReadDir(gs.dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []Generation
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "gen-") || !strings.HasSuffix(name, genManifSuffix) {
			continue
		}
		idStr := strings.TrimSuffix(strings.TrimPrefix(name, "gen-"), genManifSuffix)
		id, err := strconv.ParseUint(idStr, 10, 64)
		if err != nil {
			continue
		}
		buf, err := os.ReadFile(filepath.Join(gs.dir, name))
		if err != nil {
			continue
		}
		g, err := decodeManifest(buf)
		if err != nil || g.ID != id {
			continue
		}
		g.SnapPath = gs.snapName(g.ID)
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// SweepTemp removes journal debris: in-flight temp files a crashed
// refresh or rollback left behind, both in the journal directory and
// beside the serving path (the publish-link and snapshot-write temps).
// Call it before starting a refresh — a generation referenced by a
// manifest is never a temp file, so sweeping is always safe under the
// store's single-writer contract.
func (gs *GenerationStore) SweepTemp() (int, error) {
	removed := 0
	sweep := func(dir, prefix string) error {
		entries, err := os.ReadDir(dir)
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		if err != nil {
			return err
		}
		for _, e := range entries {
			name := e.Name()
			if strings.HasPrefix(name, prefix) && strings.Contains(name, ".tmp") {
				if err := os.Remove(filepath.Join(dir, name)); err != nil {
					return err
				}
				removed++
			}
		}
		return nil
	}
	if err := sweep(gs.dir, journalPrefix); err != nil {
		return removed, err
	}
	// WriteSnapshotFile/Publish temps beside the serving path use the
	// base name as prefix with a .tmp infix.
	if err := sweep(filepath.Dir(gs.path), filepath.Base(gs.path)+".tmp"); err != nil {
		return removed, err
	}
	return removed, nil
}

// fileCRC hashes a whole file.
func fileCRC(path string) (uint32, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	h := crc32.NewIEEE()
	n, err := io.Copy(h, f)
	if err != nil {
		return 0, 0, err
	}
	return h.Sum32(), n, nil
}

// snapshotFingerprint opens a snapshot header and returns its
// generation fingerprint (XOR of shard fingerprints) plus the recorded
// dirty-shard count.
func snapshotFingerprint(path string) (fp uint64, dirty int, err error) {
	snap, err := OpenSnapshot(path)
	if err != nil {
		return 0, 0, err
	}
	defer snap.Close()
	for i := 0; i < snap.NumShards(); i++ {
		fp ^= snap.ShardFingerprint(i)
	}
	return fp, snap.Meta().LastRefreshDirty, nil
}

// writeManifest journals then installs a generation's manifest.
func (gs *GenerationStore) writeManifest(g *Generation) error {
	tmp, err := os.CreateTemp(gs.dir, journalPrefix+"*.tmp")
	if err != nil {
		return err
	}
	if err := gs.crash("manifest:mid-write"); err != nil {
		tmp.Close()
		return err // crash: temp file stays, manifest never exists
	}
	if _, err := tmp.Write(encodeManifest(g)); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := gs.crash("manifest:pre-rename"); err != nil {
		return err // crash: fully-written temp stays unrenamed
	}
	return os.Rename(tmp.Name(), gs.manifName(g.ID))
}

// Adopt journals the currently-served snapshot as a generation if no
// good generation already matches its bytes, so the very first refresh
// under generation management has a rollback target: the pre-refresh
// state itself. Returns the matching or newly-created generation, or
// (nil, nil) when no serving file exists yet.
func (gs *GenerationStore) Adopt() (*Generation, error) {
	crc, size, err := fileCRC(gs.path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	gens, err := gs.List()
	if err != nil {
		return nil, err
	}
	var maxID uint64
	for i := range gens {
		if gens[i].CRC == crc && gens[i].Size == size {
			return &gens[i], nil
		}
		if gens[i].ID > maxID {
			maxID = gens[i].ID
		}
	}
	fp, dirty, err := snapshotFingerprint(gs.path)
	if err != nil {
		return nil, fmt.Errorf("serve: current snapshot %s is not adoptable: %w", gs.path, err)
	}
	if err := os.MkdirAll(gs.dir, 0o755); err != nil {
		return nil, err
	}
	g := &Generation{
		ID:          maxID + 1,
		Fingerprint: fp,
		CRC:         crc,
		Size:        size,
		CreatedAt:   time.Now().UTC(),
		DirtyShards: dirty,
	}
	g.SnapPath = gs.snapName(g.ID)
	// Hardlink the serving file into the journal (same directory tree,
	// so same filesystem); fall back to a copy. Linking is safe because
	// the serving path is only ever replaced by rename, never written
	// in place — the journal link keeps the old inode alive.
	if err := linkOrCopy(gs.path, g.SnapPath, gs.dir); err != nil {
		return nil, err
	}
	if err := gs.writeManifest(g); err != nil {
		return nil, err
	}
	return g, nil
}

// linkOrCopy makes dst name src's bytes: hardlink when the filesystem
// allows, else a journaled copy (temp in tmpDir + rename).
func linkOrCopy(src, dst, tmpDir string) error {
	if err := os.Link(src, dst); err == nil || errors.Is(err, os.ErrExist) {
		return nil
	}
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	tmp, err := os.CreateTemp(tmpDir, journalPrefix+"*.tmp")
	if err != nil {
		return err
	}
	if _, err := io.Copy(tmp, in); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), dst)
}

// Commit journals a new generation: write writes the snapshot bytes to
// a temp file in the journal directory, which is renamed to its final
// gen-N name and described by a manifest only after every byte landed.
// A crash at any instant leaves either nothing, an unreferenced temp
// (swept later), or a snapshot without a manifest (never trusted) —
// previous generations and the serving path are untouched.
func (gs *GenerationStore) Commit(dirtyShards int, fingerprint uint64, write func(io.Writer) error) (*Generation, error) {
	if err := os.MkdirAll(gs.dir, 0o755); err != nil {
		return nil, err
	}
	gens, err := gs.List()
	if err != nil {
		return nil, err
	}
	var maxID uint64
	for i := range gens {
		if gens[i].ID > maxID {
			maxID = gens[i].ID
		}
	}
	tmp, err := os.CreateTemp(gs.dir, journalPrefix+"*.tmp")
	if err != nil {
		return nil, err
	}
	h := crc32.NewIEEE()
	cw := &crashableWriter{w: io.MultiWriter(tmp, h), gs: gs}
	if err := write(cw); err != nil {
		tmp.Close()
		if !errors.Is(err, errCrashInjected) {
			os.Remove(tmp.Name()) // a crash leaves debris; a plain error cleans up
		}
		return nil, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return nil, err
	}
	if err := gs.crash("commit:pre-rename"); err != nil {
		return nil, err
	}
	st, err := os.Stat(tmp.Name())
	if err != nil {
		os.Remove(tmp.Name())
		return nil, err
	}
	g := &Generation{
		ID:          maxID + 1,
		Fingerprint: fingerprint,
		CRC:         h.Sum32(),
		Size:        st.Size(),
		CreatedAt:   time.Now().UTC(),
		DirtyShards: dirtyShards,
	}
	g.SnapPath = gs.snapName(g.ID)
	if err := os.Rename(tmp.Name(), g.SnapPath); err != nil {
		os.Remove(tmp.Name())
		return nil, err
	}
	if err := gs.crash("commit:post-snap"); err != nil {
		return nil, err // crash: snapshot exists, manifest doesn't — never trusted
	}
	if err := gs.writeManifest(g); err != nil {
		return nil, err
	}
	return g, nil
}

// crashableWriter aborts mid-stream at the "commit:mid-write"
// checkpoint after letting some bytes through — the torn-write crash.
type crashableWriter struct {
	w  io.Writer
	gs *GenerationStore
	n  int64
}

func (cw *crashableWriter) Write(p []byte) (int, error) {
	if cw.n > 0 { // let the first write land, tear the second
		if err := cw.gs.crash("commit:mid-write"); err != nil {
			half := len(p) / 2
			cw.w.Write(p[:half])
			return half, err
		}
	}
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// Publish atomically re-points the serving path at generation g: a
// hardlink (or copy) of the journaled snapshot is renamed over the
// serving path, so a reader — or a crash — never observes a partial
// file. The journal entry itself is never consumed: rollback targets
// survive publication.
func (gs *GenerationStore) Publish(g *Generation) error {
	dir := filepath.Dir(gs.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(gs.path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	tmp.Close()
	os.Remove(tmpName) // we need the unique name, not the empty file
	if err := os.Link(g.SnapPath, tmpName); err != nil {
		if err := linkOrCopy(g.SnapPath, tmpName, dir); err != nil {
			return err
		}
	}
	if err := gs.crash("publish:pre-rename"); err != nil {
		return err // crash: link debris beside the serving path, old file intact
	}
	return os.Rename(tmpName, gs.path)
}

// verify re-checks a generation end to end: manifest already checksummed
// by List, so this validates the snapshot bytes against it (size, whole-
// file hash) and opens the header. It is what "last good" means.
func (gs *GenerationStore) verify(g *Generation) error {
	crc, size, err := fileCRC(g.SnapPath)
	if err != nil {
		return err
	}
	if size != g.Size || crc != g.CRC {
		return fmt.Errorf("serve: generation %d snapshot does not match its manifest (size %d vs %d, crc %08x vs %08x)",
			g.ID, size, g.Size, crc, g.CRC)
	}
	snap, err := OpenSnapshot(g.SnapPath)
	if err != nil {
		return err
	}
	return snap.Close()
}

// LastGood returns the newest generation that verifies end to end.
func (gs *GenerationStore) LastGood() (*Generation, error) {
	gens, err := gs.List()
	if err != nil {
		return nil, err
	}
	for i := len(gens) - 1; i >= 0; i-- {
		if gs.verify(&gens[i]) == nil {
			return &gens[i], nil
		}
	}
	return nil, fmt.Errorf("serve: no good generation in %s", gs.dir)
}

// current identifies which journaled generation the serving path
// currently holds, by whole-file hash.
func (gs *GenerationStore) current() (*Generation, bool) {
	crc, size, err := fileCRC(gs.path)
	if err != nil {
		return nil, false
	}
	gens, err := gs.List()
	if err != nil {
		return nil, false
	}
	for i := len(gens) - 1; i >= 0; i-- {
		if gens[i].CRC == crc && gens[i].Size == size {
			return &gens[i], true
		}
	}
	return nil, false
}

// Rollback re-points the serving path at the last good generation
// before the one currently served: the operator's "this generation is
// bad, give me the previous one". When the serving file is corrupt or
// missing (matches no journaled generation), it restores the newest
// good generation instead. Returns the generation now serving.
func (gs *GenerationStore) Rollback() (*Generation, error) {
	cur, curKnown := gs.current()
	gens, err := gs.List()
	if err != nil {
		return nil, err
	}
	for i := len(gens) - 1; i >= 0; i-- {
		if curKnown && gens[i].ID >= cur.ID {
			continue
		}
		if gs.verify(&gens[i]) != nil {
			continue
		}
		if err := gs.Publish(&gens[i]); err != nil {
			return nil, err
		}
		return &gens[i], nil
	}
	if curKnown {
		return nil, fmt.Errorf("serve: no good generation older than the current one (%d) to roll back to", cur.ID)
	}
	return nil, fmt.Errorf("serve: no good generation in %s to roll back to", gs.dir)
}

// RestoreServing is the refresh-failure safety net: when the serving
// path no longer opens as a snapshot (torn write, bad disk), it
// re-points it at the last good generation. Returns the generation
// restored, or (nil, nil) when the serving path was healthy.
func (gs *GenerationStore) RestoreServing() (*Generation, error) {
	if snap, err := OpenSnapshot(gs.path); err == nil {
		snap.Close()
		return nil, nil
	}
	g, err := gs.LastGood()
	if err != nil {
		return nil, err
	}
	if err := gs.Publish(g); err != nil {
		return nil, err
	}
	return g, nil
}

// Prune deletes all but the newest keep generations (snapshot +
// manifest), returning how many were removed. Unverifiable generations
// older than the newest keep good ones are removed too.
func (gs *GenerationStore) Prune() (int, error) {
	gens, err := gs.List()
	if err != nil {
		return 0, err
	}
	if len(gens) <= gs.keep {
		return 0, nil
	}
	removed := 0
	for i := 0; i < len(gens)-gs.keep; i++ {
		if err := os.Remove(gs.manifName(gens[i].ID)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return removed, err
		}
		if err := os.Remove(gens[i].SnapPath); err != nil && !errors.Is(err, os.ErrNotExist) {
			return removed, err
		}
		removed++
	}
	return removed, nil
}
