package serve

import (
	"os"
	"path/filepath"
	"time"

	"simrankpp/internal/core"
	"simrankpp/internal/partition"
)

// The refresh benchmark: N edge-churn steps over the evolving
// multi-cluster workload (core.RefreshWorkloadGraph), measuring at every
// step a full rebuild (BuildPlan + cold RunSharded + WriteSnapshot — what
// a deployment paid before incremental refresh) against the incremental
// path (open previous snapshot + DiffPlans + warm dirty-only RunSharded +
// RefreshSnapshot). BENCH_core.json records the trajectory; the headline
// is the per-step speedup and the re-encoded-vs-copied byte split.

// RefreshStepBench is one churn step's measurement.
type RefreshStepBench struct {
	Step int `json:"step"`
	// Shard classification of the step's diff.
	Shards      int `json:"shards"`
	DirtyShards int `json:"dirty_shards"`
	// FullNs is plan + cold sharded run + snapshot write; IncNs is open +
	// diff + warm dirty-only run + segment-reusing refresh write. Best of
	// the harness's repetitions.
	FullNs  int64   `json:"full_ns"`
	IncNs   int64   `json:"inc_ns"`
	Speedup float64 `json:"speedup"`
	// BytesReencoded/BytesCopied split the refreshed snapshot's segment
	// bytes by how they were produced; their sum is the score payload.
	BytesReencoded int64 `json:"bytes_reencoded"`
	BytesCopied    int64 `json:"bytes_copied"`
	// FullIters/IncIters compare convergence horizons: the cold run's
	// slowest shard vs the warm run's slowest dirty shard.
	FullIters int `json:"full_iters"`
	IncIters  int `json:"inc_iters"`
}

// RefreshBenchResult is the recorded refresh trajectory.
type RefreshBenchResult struct {
	Steps []RefreshStepBench `json:"steps"`
	// ChurnEdgeFraction is one churned cluster's share of the graph's
	// edges — the nominal churn rate per step.
	ChurnEdgeFraction float64 `json:"churn_edge_fraction"`
	// MinSpeedup/MeanSpeedup summarize the per-step speedups.
	MinSpeedup  float64 `json:"min_speedup"`
	MeanSpeedup float64 `json:"mean_speedup"`
}

// RunRefreshBench measures steps churn steps of the evolving workload
// with reps repetitions each (best wall time kept). The incremental chain
// is real: step s refreshes the snapshot step s-1 produced.
func RunRefreshBench(bc core.ShardBenchConfig, steps, reps int) (RefreshBenchResult, error) {
	var out RefreshBenchResult
	if reps < 1 {
		reps = 1
	}
	dir, err := os.MkdirTemp("", "simrank-refresh-bench")
	if err != nil {
		return out, err
	}
	defer os.RemoveAll(dir)
	prevPath := filepath.Join(dir, "prev.snap")
	fullPath := filepath.Join(dir, "full.snap")
	nextPath := filepath.Join(dir, "next.snap")

	cfg := core.ShardBenchRunConfig(bc)
	pcfg := partition.DefaultPlanConfig()
	pcfg.MaxShardNodes = bc.MaxShardNodes
	pcfg.MinCutNodes = bc.MaxShardNodes / 4

	// Generation 0: the base snapshot the first refresh diffs against.
	base := core.RefreshWorkloadGraph(bc, 0)
	basePlan, err := partition.BuildPlan(base, pcfg)
	if err != nil {
		return out, err
	}
	baseRes, err := core.RunSharded(base, cfg, basePlan, core.ShardOptions{Workers: bc.Workers, RetainShardScores: true})
	if err != nil {
		return out, err
	}
	if err := WriteSnapshotFile(prevPath, baseRes); err != nil {
		return out, err
	}
	if totalEdges := base.NumEdges(); totalEdges > 0 {
		out.ChurnEdgeFraction = float64(bc.ClusterEdges) / float64(totalEdges)
	}

	for s := 1; s <= steps; s++ {
		g := core.RefreshWorkloadGraph(bc, s)
		step := RefreshStepBench{Step: s}

		for r := 0; r < reps; r++ {
			t0 := time.Now()
			plan, err := partition.BuildPlan(g, pcfg)
			if err != nil {
				return out, err
			}
			res, err := core.RunSharded(g, cfg, plan, core.ShardOptions{Workers: bc.Workers, RetainShardScores: true})
			if err != nil {
				return out, err
			}
			if err := WriteSnapshotFile(fullPath, res); err != nil {
				return out, err
			}
			if ns := time.Since(t0).Nanoseconds(); r == 0 || ns < step.FullNs {
				step.FullNs = ns
				step.FullIters = res.Iterations
			}
		}

		// Incremental path, timed end to end against the same previous
		// generation every repetition; the refreshed snapshot is promoted
		// to be the next step's base only after timing.
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			prev, err := OpenSnapshot(prevPath)
			if err != nil {
				return out, err
			}
			res, diff, err := RunRefresh(g, prev, bc.Workers)
			if err != nil {
				prev.Close()
				return out, err
			}
			st, err := RefreshSnapshotFile(nextPath, prev, res, diff.Dirty, nil)
			if err != nil {
				prev.Close()
				return out, err
			}
			prev.Close()
			if ns := time.Since(t0).Nanoseconds(); r == 0 || ns < step.IncNs {
				step.IncNs = ns
				step.IncIters = res.Iterations
				step.Shards = len(diff.Plan.Shards)
				step.DirtyShards = diff.DirtyShards
				step.BytesReencoded = st.BytesReencoded
				step.BytesCopied = st.BytesCopied
			}
		}
		if err := os.Rename(nextPath, prevPath); err != nil {
			return out, err
		}
		if step.IncNs > 0 {
			step.Speedup = float64(step.FullNs) / float64(step.IncNs)
		}
		out.Steps = append(out.Steps, step)
	}

	sum := 0.0
	for i, st := range out.Steps {
		sum += st.Speedup
		if i == 0 || st.Speedup < out.MinSpeedup {
			out.MinSpeedup = st.Speedup
		}
	}
	if len(out.Steps) > 0 {
		out.MeanSpeedup = sum / float64(len(out.Steps))
	}
	return out, nil
}
