package serve

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"math"
	"runtime"
	"sort"
	"sync"

	"simrankpp/internal/rewrite"
	"simrankpp/internal/sparse"
)

// The precomputed top-k rewrite section: at save/refresh time the full
// §9.3 pipeline (top-100 candidate pool, stem dedup, bid-term filter)
// runs once per stored query and its surviving rewrites land in the
// snapshot, so /rewrite becomes a single in-place list lookup instead
// of per-candidate scoring. The lists are the pipeline's bytes by
// construction — the same rewrite.Pipeline code filters them here and
// at serve time, fed by the same sorted candidate ranking — so a server
// whose effective parameters match the header's (depth within k,
// identical candidate-pool size, identical bid-term set) answers
// byte-identically from the section or the live pipeline.
//
// Per-shard blob layout (all integers little-endian, offsets relative
// to the blob start, ids global — both properties are what make a blob
// position-independent, so RefreshSnapshot byte-copies clean shards'
// blobs exactly like score segments):
//
//	u32 entry count n
//	n × (u32 query id ascending, u32 list offset, u32 list length)
//	list records: (u32 rewrite query id, float64 score)
//
// Every query routed to the shard gets an entry (length 0 allowed), so
// a missing entry is a structural fault, never an empty answer.

// DefaultRewriteTopK is the list depth WriteSnapshot records when the
// caller does not choose one (the simrank CLI's -rewrite-topk default):
// deep enough for the paper's top-5 serving depth plus headroom for
// operators raising -top, shallow enough to stay a rounding error next
// to the score segments.
const DefaultRewriteTopK = 16

// TopKOptions configures the precomputed rewrite section.
type TopKOptions struct {
	// K is the stored list depth; 0 disables the section.
	K int
	// BidTerms is the bid-term filter the lists are built under — it
	// must match the serving daemon's -bids set (compared by hash) for
	// the section to be served.
	BidTerms map[string]bool
}

// DefaultTopKOptions is the configuration WriteSnapshot uses: default
// depth, no bid filtering.
func DefaultTopKOptions() TopKOptions { return TopKOptions{K: DefaultRewriteTopK} }

// meta derives the header parameters: the candidate pool mirrors the
// serving pipeline's TopN growth (100, grown to K when K exceeds it).
func (o TopKOptions) meta() topkMeta {
	if o.K <= 0 {
		return topkMeta{}
	}
	topN := o.K
	if topN < 100 {
		topN = 100
	}
	return topkMeta{k: uint32(o.K), topN: uint32(topN), bidHash: BidTermsHash(o.BidTerms)}
}

// BidTermsHash is an order-independent identity for a bid-term set: 0
// for nil (no filtering), and for any non-nil set the FNV-64a offset
// basis XORed with each term's hash — so an empty non-nil set (filter
// everything) still differs from no filter at all.
func BidTermsHash(terms map[string]bool) uint64 {
	if terms == nil {
		return 0
	}
	h := fnv.New64a()
	acc := h.Sum64() // offset basis
	for t, ok := range terms {
		if !ok {
			continue
		}
		h.Reset()
		h.Write([]byte(t))
		acc ^= h.Sum64()
	}
	return acc
}

// topkSliceSource feeds a prebuilt ranked candidate list through the
// real rewrite.Pipeline — literally the serving filter code running at
// build time, which is what guarantees stored lists match live answers
// byte for byte.
type topkSliceSource struct {
	list []sparse.Scored
}

func (s *topkSliceSource) Name() string { return "topk-build" }

func (s *topkSliceSource) Rewrites(_ int, limit int) ([]sparse.Scored, error) {
	if limit < 0 || limit > len(s.list) {
		limit = len(s.list)
	}
	return s.list[:limit], nil
}

// buildTopKBlob builds one shard's blob from its encoded query segment:
// decode partner lists in one pass, rank them exactly as
// PairTable.TopKFor would, and filter each query's ranking through the
// pipeline at depth k. qIDs is the shard's global query ids (nil =
// identity shard covering every query).
func buildTopKBlob(qSeg []byte, qIDs []int, names nodeNames, tk topkMeta, bids map[string]bool) ([]byte, error) {
	if tk.k == 0 {
		return nil, nil
	}
	var ids []int
	if qIDs != nil {
		ids = append([]int(nil), qIDs...)
		sort.Ints(ids)
	} else {
		ids = make([]int, names.NumQueries())
		for i := range ids {
			ids[i] = i
		}
	}
	partners := make(map[int][]sparse.Scored)
	for o := 0; o+pairRecordSize <= len(qSeg); o += pairRecordSize {
		i := int(binary.LittleEndian.Uint32(qSeg[o:]))
		j := int(binary.LittleEndian.Uint32(qSeg[o+4:]))
		v := math.Float64frombits(binary.LittleEndian.Uint64(qSeg[o+8:]))
		partners[i] = append(partners[i], sparse.Scored{Node: j, Score: v})
		partners[j] = append(partners[j], sparse.Scored{Node: i, Score: v})
	}

	pipe := rewrite.NewPipeline(names, bids)
	pipe.MaxRewrites = int(tk.k)
	pipe.TopN = int(tk.topN)
	src := &topkSliceSource{}

	entries := make([]byte, 4+len(ids)*topkEntrySize)
	binary.LittleEndian.PutUint32(entries, uint32(len(ids)))
	var lists []byte
	listsBase := len(entries)
	for e, qid := range ids {
		if uint64(qid) > math.MaxUint32 {
			return nil, fmt.Errorf("serve: query id %d overflows the topk entry", qid)
		}
		ranked := partners[qid]
		sparse.SortScoredDesc(ranked)
		src.list = ranked
		cands, err := pipe.Rewrite(src, qid)
		if err != nil {
			return nil, fmt.Errorf("serve: building topk list for query %d: %w", qid, err)
		}
		o := 4 + e*topkEntrySize
		binary.LittleEndian.PutUint32(entries[o:], uint32(qid))
		binary.LittleEndian.PutUint32(entries[o+4:], uint32(listsBase+len(lists)))
		binary.LittleEndian.PutUint32(entries[o+8:], uint32(len(cands)))
		for _, c := range cands {
			var rec [topkRecSize]byte
			binary.LittleEndian.PutUint32(rec[:], uint32(c.Query))
			binary.LittleEndian.PutUint64(rec[4:], math.Float64bits(c.Score))
			lists = append(lists, rec[:]...)
		}
	}
	return append(entries, lists...), nil
}

// fillTopKBlobs builds the given payload indices' blobs from their
// already-encoded query segments, one builder per shard on a bounded
// pool — the topk twin of encodePayloads, shared by WriteSnapshot
// (every shard) and the refresh paths (dirty shards only).
func fillTopKBlobs(payloads []shardPayload, idx []int, names nodeNames, tk topkMeta, bids map[string]bool) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(idx) {
		workers = len(idx)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				blob, err := buildTopKBlob(payloads[i].qSeg, payloads[i].qIDs, names, tk, bids)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				payloads[i].tkBlob = blob
				payloads[i].tkCRC = crc32.ChecksumIEEE(blob)
			}
		}()
	}
	for _, i := range idx {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return firstErr
}

// validateTopKBlob structurally checks one CRC-verified blob on first
// touch: bounded entry table, ids ascending, list lengths within k,
// every list inside the blob. A nil blob (section disabled) is valid.
func validateTopKBlob(b []byte, k int) error {
	if len(b) == 0 {
		return nil
	}
	if k <= 0 {
		return fmt.Errorf("topk blob present but header records no section")
	}
	if len(b) < 4 {
		return fmt.Errorf("topk blob truncated (%d bytes)", len(b))
	}
	n := binary.LittleEndian.Uint32(b)
	entriesEnd := 4 + uint64(n)*topkEntrySize
	if entriesEnd > uint64(len(b)) {
		return fmt.Errorf("topk blob claims %d entries, more than its %d bytes hold", n, len(b))
	}
	prev := int64(-1)
	for e := 0; e < int(n); e++ {
		o := 4 + e*topkEntrySize
		qid := binary.LittleEndian.Uint32(b[o:])
		off := uint64(binary.LittleEndian.Uint32(b[o+4:]))
		cnt := uint64(binary.LittleEndian.Uint32(b[o+8:]))
		if int64(qid) <= prev {
			return fmt.Errorf("topk entries out of order at %d", e)
		}
		prev = int64(qid)
		if cnt > uint64(k) {
			return fmt.Errorf("topk list for query %d holds %d rewrites, past depth %d", qid, cnt, k)
		}
		if off < entriesEnd || off+cnt*topkRecSize > uint64(len(b)) {
			return fmt.Errorf("topk list for query %d [%d,+%d recs) outside the blob", qid, off, cnt)
		}
	}
	return nil
}

// RewriteSectionUsable reports whether the snapshot's precomputed
// section can answer a /rewrite request at depth top under the bid-term
// set identified by bidHash, byte-identically to the live pipeline: the
// depth must be within the stored k, the bid sets must match, and the
// server's effective candidate pool (max(100, top), mirroring the
// pipeline's TopN growth) must equal the pool the lists were filtered
// from — a differing pool could admit different survivors, so the
// server falls back to live scoring instead of guessing.
func (s *Snapshot) RewriteSectionUsable(top int, bidHash uint64) bool {
	k := s.meta.RewriteTopK
	if k <= 0 || top <= 0 || top > k {
		return false
	}
	if s.meta.RewriteBidHash != bidHash {
		return false
	}
	pool := top
	if pool < 100 {
		pool = 100
	}
	return pool == s.meta.RewriteTopN
}

// PrecomputedRewrites answers query q at depth top from the snapshot's
// top-k section: one route lookup, one (lazily verified) blob, one
// binary search, one bounded copy. The boolean is false — caller falls
// back to the pipeline — when the section is absent or too shallow, the
// blob is quarantined, or q has no entry. Callers must check
// RewriteSectionUsable first for byte-identity with live answers.
func (s *Snapshot) PrecomputedRewrites(q, top int) ([]sparse.Scored, bool) {
	if s.meta.RewriteTopK == 0 || top < 0 || top > s.meta.RewriteTopK || q < 0 || q >= len(s.qRoute) {
		return nil, false
	}
	blob, err := s.topkBlob(int(s.qRoute[q]))
	if err != nil || len(blob) == 0 {
		return nil, false
	}
	n := int(binary.LittleEndian.Uint32(blob))
	e := sort.Search(n, func(e int) bool {
		return binary.LittleEndian.Uint32(blob[4+e*topkEntrySize:]) >= uint32(q)
	})
	if e == n || binary.LittleEndian.Uint32(blob[4+e*topkEntrySize:]) != uint32(q) {
		return nil, false
	}
	o := 4 + e*topkEntrySize
	off := int(binary.LittleEndian.Uint32(blob[o+4:]))
	cnt := int(binary.LittleEndian.Uint32(blob[o+8:]))
	if cnt > top {
		cnt = top
	}
	if cnt == 0 {
		return nil, true
	}
	out := make([]sparse.Scored, cnt)
	for r := 0; r < cnt; r++ {
		ro := off + r*topkRecSize
		out[r] = sparse.Scored{
			Node:  int(binary.LittleEndian.Uint32(blob[ro:])),
			Score: math.Float64frombits(binary.LittleEndian.Uint64(blob[ro+4:])),
		}
	}
	return out, true
}
