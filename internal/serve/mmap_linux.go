//go:build linux && !simrank_nommap

package serve

import (
	"os"
	"syscall"
)

// mmapSupported gates OpenSnapshot's zero-copy path; the simrank_nommap
// build tag (or a non-Linux platform) swaps in mmap_fallback.go, which
// forces every open onto the read-into-heap path.
const mmapSupported = true

// mmapFile maps the whole file read-only and shared — the snapshot is
// immutable once renamed into place, so the pages are backed by the
// page cache and shared across replica processes on one host.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 {
		return nil, syscall.EINVAL
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(b []byte) error {
	return syscall.Munmap(b)
}
