package serve

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/core"
	"simrankpp/internal/partition"
)

// The serving benchmark behind cmd/servebench: the same multi-cluster
// workload the shard benchmarks use is scored once, persisted with a
// precomputed top-k rewrite section, and then served two ways —
//
//   - zerocopy: the mmap path (segments binary-searched in place, /rewrite
//     answered from the precomputed section), and
//   - heap: the pre-optimization baseline (segments decoded into heap
//     tables, /rewrite running the live pipeline per request)
//
// — driving the real http.Handler in process at 1/8/64 concurrent
// clients and recording p50/p99/p999 latency, throughput, and allocs per
// request for /rewrite, /similar, and POST /batch. The response cache,
// load shedding, and deadlines are disabled so the numbers describe the
// lookup path itself, not the LRU. BENCH_serve.json records the matrix;
// the gate metric is RewriteP99Speedup (worst-case across
// concurrencies), which the zero-copy tentpole must keep ≥ its floor.

// ServeBenchCase is one (endpoint, path, clients) cell of the matrix.
type ServeBenchCase struct {
	// Endpoint is "rewrite", "similar", or "batch"; Path is "zerocopy"
	// (mmap + precomputed section) or "heap" (decoded tables + live
	// pipeline); Clients is the number of concurrent drivers.
	Endpoint string `json:"endpoint"`
	Path     string `json:"path"`
	Clients  int    `json:"clients"`
	Ops      int    `json:"ops"`
	// Latency quantiles over every request in the case, merged across
	// clients. BatchSize queries ride in each /batch op, so its
	// per-query cost is NsP50/BatchSize.
	NsP50  float64 `json:"ns_p50"`
	NsP99  float64 `json:"ns_p99"`
	NsP999 float64 `json:"ns_p999"`
	// QPS is ops over wall clock (whole-request throughput).
	QPS float64 `json:"qps"`
	// AllocsPerOp is the heap-allocation count per request (mallocs
	// delta over the measured window, divided by ops; includes the
	// driver's request/recorder objects, identical across paths).
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// ServeBenchResult is the recorded serving matrix plus its headline
// ratios.
type ServeBenchResult struct {
	// SnapshotBytes is the size of the benchmarked snapshot; Mmapped
	// reports whether the zerocopy side actually mapped it (false means
	// the platform fell back to heap and the comparison is vacuous).
	SnapshotBytes int64 `json:"snapshot_bytes"`
	Mmapped       bool  `json:"mmapped"`
	// BatchSize is the queries per /batch request.
	BatchSize int              `json:"batch_size"`
	Cases     []ServeBenchCase `json:"cases"`
	// RewriteP99Speedup is min over concurrencies of heap-p99 /
	// zerocopy-p99 on /rewrite — the tentpole's gate metric. Similar and
	// Batch speedups are recorded alongside for the table.
	RewriteP99Speedup float64 `json:"rewrite_p99_speedup"`
	SimilarP99Speedup float64 `json:"similar_p99_speedup"`
	BatchP99Speedup   float64 `json:"batch_p99_speedup"`
}

// serveBenchBatchSize is the queries carried per POST /batch request.
const serveBenchBatchSize = 8

// ServeBenchWorkload returns the serving benchmark's shape: the shard
// benchmark workload with its click density scaled toward a real query
// log (4x the edges on the same node counts and shard budget). The
// scaling matters because per-request pipeline cost — the thing the
// precomputed section removes — grows with a query's partner count,
// and the engine-benchmark graphs are far sparser than the click logs
// the paper serves.
func ServeBenchWorkload(smoke bool) core.ShardBenchConfig {
	bc := core.DefaultShardBenchConfig()
	if smoke {
		bc = core.SmokeShardBenchConfig()
	}
	bc.ClusterEdges *= 4
	bc.GiantEdges *= 4
	return bc
}

// The serving benchmark names its nodes with shopping-query-like phrases
// instead of the engine benchmarks' compact labels ("c3-q17"), because
// /rewrite's per-request pipeline cost is dominated by Porter-stemming
// each candidate's text — a cost proportional to words and letters that
// six-character labels understate by an order of magnitude. The trailing
// cluster-unique token keeps names distinct under stem dedup.
var serveBenchVocab = [3][]string{
	{"discounted", "refurbished", "wireless", "professional", "portable", "vintage", "waterproof", "ergonomic",
		"compact", "digital", "organic", "handmade", "industrial", "luxury", "budget", "certified"},
	{"cameras", "batteries", "running shoes", "coffee makers", "headphones", "mattresses", "sunglasses", "printers",
		"guitars", "watches", "backpacks", "blenders", "keyboards", "telescopes", "luggage", "speakers"},
	{"accessories", "comparison", "reviews", "warranty", "shipping", "clearance", "bundles", "replacement",
		"installation", "financing", "ratings", "deals", "repairs", "manuals", "coupons", "pricing"},
}

func serveBenchPhrase(prefix string, kind byte, i int) string {
	h := uint64(i)*2654435761 + uint64(kind)*97
	for _, c := range []byte(prefix) {
		h = h*131 + uint64(c)
	}
	v := serveBenchVocab
	return fmt.Sprintf("%s %s %s %s%c%d",
		v[0][h%uint64(len(v[0]))], v[1][(h/31)%uint64(len(v[1]))], v[2][(h/997)%uint64(len(v[2]))],
		prefix, kind, i)
}

// serveBenchGraph builds the workload's click graph: the exact cluster
// layout and edge sampling of core.MultiClusterGraph, with phrase names.
func serveBenchGraph(bc core.ShardBenchConfig) *clickgraph.Graph {
	b := clickgraph.NewBuilder()
	cluster := func(prefix string, seed uint64, nq, na, edges int) {
		s := seed
		next := func(n int) int {
			s = s*6364136223846793005 + 1442695040888963407
			return int((s >> 33) % uint64(n))
		}
		for i := 0; i < nq; i++ {
			b.AddQuery(serveBenchPhrase(prefix, 'q', i))
		}
		for e := 0; e < edges; e++ {
			q, a := next(nq), next(na)
			clicks := int64(next(20) + 1)
			if err := b.AddEdge(serveBenchPhrase(prefix, 'q', q), serveBenchPhrase(prefix, 'a', a), clickgraph.EdgeWeights{
				Impressions: clicks * 3, Clicks: clicks,
				ExpectedClickRate: float64(next(100)) / 100,
			}); err != nil {
				panic(err)
			}
		}
	}
	for c := 0; c < bc.Clusters; c++ {
		cluster(fmt.Sprintf("c%d-", c), bc.Seed+uint64(c)*1000003, bc.ClusterQueries, bc.ClusterAds, bc.ClusterEdges)
	}
	cluster("g-", bc.Seed+999999937, bc.GiantQueries, bc.GiantAds, bc.GiantEdges)
	return b.Build()
}

// serveBenchBidStride picks every Nth query as a bid term. Sparse bids
// are the production shape the paper describes — most candidate rewrites
// are not bid on — and they are what makes the live pipeline walk (and
// stem) deep into the TopN=100 ranking per request instead of stopping
// at the first five candidates.
const serveBenchBidStride = 16

func serveBenchBids(g *clickgraph.Graph) map[string]bool {
	bids := make(map[string]bool, g.NumQueries()/serveBenchBidStride+1)
	for i := 0; i < g.NumQueries(); i += serveBenchBidStride {
		bids[g.Query(i)] = true
	}
	return bids
}

// benchRecorder is a minimal http.ResponseWriter: the driver only needs
// the status code, and discarding bodies keeps the recorder out of the
// allocation profile it is there to measure.
type benchRecorder struct {
	h      http.Header
	status int
	n      int64
}

func (r *benchRecorder) Header() http.Header { return r.h }
func (r *benchRecorder) WriteHeader(c int)   { r.status = c }
func (r *benchRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	r.n += int64(len(p))
	return len(p), nil
}

// serveBenchServer opens path the requested way and wraps it in a Server
// with the cache, shedding, and deadlines off.
func serveBenchServer(path string, zerocopy bool, bids map[string]bool) (*Server, *Snapshot, error) {
	open := OpenSnapshotHeap
	if zerocopy {
		open = OpenSnapshot
	}
	snap, err := open(path)
	if err != nil {
		return nil, nil, err
	}
	if err := snap.PreloadAll(); err != nil {
		snap.Close()
		return nil, nil, err
	}
	cfg := DefaultServerConfig()
	cfg.CacheSize = 0
	cfg.MaxInFlight = 0
	cfg.RequestTimeout = 0
	cfg.BidTerms = bids
	cfg.DisablePrecomputed = !zerocopy
	return NewServer(snap, cfg), snap, nil
}

// serveBenchWork is the pre-built per-case workload: everything a driver
// goroutine needs so an op allocates nothing (GETs) or one reader
// (POSTs) outside the handler — driver garbage would otherwise show up
// in both sides' tails and drown the path difference the benchmark
// exists to measure.
type serveBenchWork struct {
	endpoint string
	path     string
	// rawQueries[i] is the pre-escaped "q=...&top=5" for GET endpoints;
	// bodies[i] is a pre-marshaled /batch payload.
	rawQueries []string
	bodies     [][]byte
}

func newServeBenchWork(endpoint string, queries []string) *serveBenchWork {
	w := &serveBenchWork{endpoint: endpoint, path: "/" + endpoint}
	switch endpoint {
	case "rewrite", "similar":
		w.rawQueries = make([]string, len(queries))
		for i, q := range queries {
			w.rawQueries[i] = "q=" + url.QueryEscape(q) + "&top=5"
		}
	case "batch":
		// One payload per distinct batch window over the rotating query
		// list; drivers cycle through them.
		n := (len(queries) + serveBenchBatchSize - 1) / serveBenchBatchSize
		w.bodies = make([][]byte, n)
		for b := 0; b < n; b++ {
			var buf bytes.Buffer
			buf.WriteString(`{"top":5,"queries":[`)
			for i := 0; i < serveBenchBatchSize; i++ {
				if i > 0 {
					buf.WriteByte(',')
				}
				fmt.Fprintf(&buf, "%q", queries[(b*serveBenchBatchSize+i)%len(queries)])
			}
			buf.WriteString(`]}`)
			w.bodies[b] = buf.Bytes()
		}
	}
	return w
}

// size returns how many distinct ops the workload rotates through.
func (w *serveBenchWork) size() int {
	if w.endpoint == "batch" {
		return len(w.bodies)
	}
	return len(w.rawQueries)
}

// prep points the client's reusable request at op (mod the workload) and
// returns it. GETs mutate only RawQuery; POSTs reset the body reader.
func (w *serveBenchWork) prep(req *http.Request, body *bytes.Reader, op int) *http.Request {
	if w.endpoint == "batch" {
		b := w.bodies[op%len(w.bodies)]
		body.Reset(b)
		req.ContentLength = int64(len(b))
		return req
	}
	req.URL.RawQuery = w.rawQueries[op%len(w.rawQueries)]
	return req
}

// newClientReq builds one driver goroutine's reusable request. The
// handlers (and ServeMux) treat the request as read-only, so sequential
// reuse from a single goroutine is safe.
func (w *serveBenchWork) newClientReq() (*http.Request, *bytes.Reader) {
	u := &url.URL{Path: w.path}
	if w.endpoint == "batch" {
		body := bytes.NewReader(nil)
		return &http.Request{Method: http.MethodPost, URL: u, Proto: "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1, Host: "bench",
			Header: http.Header{"Content-Type": []string{"application/json"}},
			Body:   io.NopCloser(body),
		}, body
	}
	return &http.Request{Method: http.MethodGet, URL: u, Proto: "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1, Host: "bench"}, nil
}

// runServeBenchCase drives h with clients concurrent loops of ops/clients
// requests each and returns the merged per-request latencies, the wall
// time, and the mallocs delta.
func runServeBenchCase(h http.Handler, work *serveBenchWork, clients, ops int) ([]time.Duration, time.Duration, uint64, error) {
	perClient := ops / clients
	if perClient < 1 {
		perClient = 1
	}
	lats := make([][]time.Duration, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lat := make([]time.Duration, 0, perClient)
			req, body := work.newClientReq()
			rec := benchRecorder{h: make(http.Header, 2)}
			for op := 0; op < perClient; op++ {
				r := work.prep(req, body, c*perClient+op)
				rec.status, rec.n = 0, 0
				t0 := time.Now()
				h.ServeHTTP(&rec, r)
				lat = append(lat, time.Since(t0))
				if rec.status != http.StatusOK {
					errs[c] = fmt.Errorf("servebench: %s returned HTTP %d", work.endpoint, rec.status)
					return
				}
			}
			lats[c] = lat
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	runtime.ReadMemStats(&ms1)
	for _, err := range errs {
		if err != nil {
			return nil, 0, 0, err
		}
	}
	var merged []time.Duration
	for _, l := range lats {
		merged = append(merged, l...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
	return merged, wall, ms1.Mallocs - ms0.Mallocs, nil
}

// latQuantile returns the q-quantile (0 < q <= 1) of sorted by ceil rank.
func latQuantile(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx].Nanoseconds())
}

// RunServeBench scores the multi-cluster workload, persists it with a
// precomputed top-k section, and measures the endpoint × path ×
// concurrency matrix. ops is the request count per cell (split across
// the cell's clients); concurrencies is typically {1, 8, 64}. Progress
// rows go to logf when non-nil.
func RunServeBench(bc core.ShardBenchConfig, concurrencies []int, ops int, logf func(format string, args ...any)) (ServeBenchResult, error) {
	var out ServeBenchResult
	if logf == nil {
		logf = func(string, ...any) {}
	}

	g := serveBenchGraph(bc)
	bids := serveBenchBids(g)
	pcfg := partition.DefaultPlanConfig()
	pcfg.MaxShardNodes = bc.MaxShardNodes
	pcfg.MinCutNodes = bc.MaxShardNodes / 4
	plan, err := partition.BuildPlan(g, pcfg)
	if err != nil {
		return out, err
	}
	res, err := core.RunSharded(g, core.ShardBenchRunConfig(bc), plan, core.ShardOptions{Workers: bc.Workers, RetainShardScores: true})
	if err != nil {
		return out, err
	}

	dir, err := os.MkdirTemp("", "simrank-serve-bench")
	if err != nil {
		return out, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "bench.snap")
	if err := WriteSnapshotFileTopK(path, res, TopKOptions{K: DefaultRewriteTopK, BidTerms: bids}); err != nil {
		return out, err
	}
	st, err := os.Stat(path)
	if err != nil {
		return out, err
	}
	out.SnapshotBytes = st.Size()
	out.BatchSize = serveBenchBatchSize

	// The query mix: every query name, so rotation touches all shards.
	queries := make([]string, g.NumQueries())
	for i := range queries {
		queries[i] = g.Query(i)
	}

	type side struct {
		name string
		srv  *Server
	}
	var sides []side
	for _, zerocopy := range []bool{true, false} {
		srv, snap, err := serveBenchServer(path, zerocopy, bids)
		if err != nil {
			return out, err
		}
		defer snap.Close()
		name := "heap"
		if zerocopy {
			name = "zerocopy"
			out.Mmapped = snap.Mmapped()
		}
		sides = append(sides, side{name: name, srv: srv})
	}

	// p99 per (endpoint, path, clients), for the speedup ratios.
	p99 := map[string]float64{}
	for _, endpoint := range []string{"rewrite", "similar", "batch"} {
		work := newServeBenchWork(endpoint, queries)
		for _, s := range sides {
			h := s.srv.Handler()
			// One warmup sweep per (endpoint, side) primes whatever the
			// path lazily builds (segment indexes on heap, page cache on
			// mmap) out of the measured window.
			warm := ops / 4
			if warm > 400 {
				warm = 400
			}
			if _, _, _, err := runServeBenchCase(h, work, 1, warm); err != nil {
				return out, err
			}
			for _, clients := range concurrencies {
				lat, wall, mallocs, err := runServeBenchCase(h, work, clients, ops)
				if err != nil {
					return out, err
				}
				c := ServeBenchCase{
					Endpoint: endpoint,
					Path:     s.name,
					Clients:  clients,
					Ops:      len(lat),
					NsP50:    latQuantile(lat, 0.50),
					NsP99:    latQuantile(lat, 0.99),
					NsP999:   latQuantile(lat, 0.999),
				}
				if wall > 0 {
					c.QPS = float64(len(lat)) / wall.Seconds()
				}
				if len(lat) > 0 {
					c.AllocsPerOp = float64(mallocs) / float64(len(lat))
				}
				out.Cases = append(out.Cases, c)
				p99[fmt.Sprintf("%s/%s/%d", endpoint, s.name, clients)] = c.NsP99
				logf("  %-8s %-8s %3d clients: p50 %8.0f ns  p99 %8.0f ns  p999 %9.0f ns  %9.0f qps  %6.1f allocs/op",
					endpoint, s.name, clients, c.NsP50, c.NsP99, c.NsP999, c.QPS, c.AllocsPerOp)
			}
		}
	}

	minSpeedup := func(endpoint string) float64 {
		min := 0.0
		for _, clients := range concurrencies {
			fast := p99[fmt.Sprintf("%s/zerocopy/%d", endpoint, clients)]
			slow := p99[fmt.Sprintf("%s/heap/%d", endpoint, clients)]
			if fast <= 0 {
				continue
			}
			if s := slow / fast; min == 0 || s < min {
				min = s
			}
		}
		return min
	}
	out.RewriteP99Speedup = minSpeedup("rewrite")
	out.SimilarP99Speedup = minSpeedup("similar")
	out.BatchP99Speedup = minSpeedup("batch")
	return out, nil
}
