package serve

import (
	"encoding/binary"
	"math"
	"sort"

	"simrankpp/internal/sparse"
)

// segView is a zero-copy cursor over one CRC-verified score segment: the
// sorted (uint32 i, uint32 j, float64 score) records exactly as they sit
// in the mapped snapshot, with i < j in global ids and records ascending
// by (i, j). The scores are never decoded — point lookups binary-search
// the packed keys in place, and ranked lookups read only the records a
// node's partners occupy. This is the janus-datalog idiom (serve
// straight off the immutable bytes) applied to the snapshot layout.
//
// A node's partners live in two regions: the contiguous (node, j) run —
// binary-searchable in the primary (i, j) order — and scattered (i,
// node) records anywhere before it. byJ makes the scatter searchable
// too: a permutation of record indices sorted by (j, i), built once per
// segment at load (4 bytes per pair, the only heap state the mapped
// path keeps; scores stay in the page cache).
//
// The view must match sparse.PairTable's answers bit for bit — same
// scores, same descending-score/ascending-id ordering — which the
// mmap-vs-heap differential tests pin.
type segView struct {
	b   []byte   // len(b) % pairRecordSize == 0, verified before construction
	byJ []uint32 // record indices sorted by packed (j<<32 | i)
}

// buildScatterIndex computes the by-(j, i) permutation for a verified
// segment. Called once per segment under the shard's load lock.
func buildScatterIndex(b []byte) []uint32 {
	v := segView{b: b}
	n := v.pairs()
	if n == 0 {
		return nil
	}
	idx := make([]uint32, n)
	for k := range idx {
		idx[k] = uint32(k)
	}
	sort.Slice(idx, func(a, b int) bool { return v.jkey(int(idx[a])) < v.jkey(int(idx[b])) })
	return idx
}

// pairs returns the record count.
func (v segView) pairs() int { return len(v.b) / pairRecordSize }

// key returns record k's packed (i<<32 | j) sort key.
func (v segView) key(k int) uint64 {
	o := k * pairRecordSize
	i := binary.LittleEndian.Uint32(v.b[o:])
	j := binary.LittleEndian.Uint32(v.b[o+4:])
	return uint64(i)<<32 | uint64(j)
}

// jkey returns record k's packed (j<<32 | i) key — the scatter-index
// sort order.
func (v segView) jkey(k int) uint64 {
	o := k * pairRecordSize
	i := binary.LittleEndian.Uint32(v.b[o:])
	j := binary.LittleEndian.Uint32(v.b[o+4:])
	return uint64(j)<<32 | uint64(i)
}

// score returns record k's score.
func (v segView) score(k int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(v.b[k*pairRecordSize+8:]))
}

// lowerBound returns the first record index whose key is >= want.
func (v segView) lowerBound(want uint64) int {
	return sort.Search(v.pairs(), func(k int) bool { return v.key(k) >= want })
}

// find binary-searches the unordered pair (a, b), returning its stored
// score — the in-place twin of PairTable.Get.
func (v segView) find(a, b int) (float64, bool) {
	if a == b {
		return 0, false
	}
	if a > b {
		a, b = b, a
	}
	want := uint64(uint32(a))<<32 | uint64(uint32(b))
	k := v.lowerBound(want)
	if k < v.pairs() && v.key(k) == want {
		return v.score(k), true
	}
	return 0, false
}

// topKFor returns node's k highest-scoring partners (ties broken by
// ascending id; k < 0 means all), matching PairTable.TopKFor exactly.
// The contiguous (node, j) run is binary-searched in the primary order;
// the scattered (i, node) records are the matching run of the by-(j, i)
// permutation. Both are O(log pairs + degree).
func (v segView) topKFor(node, k int) []sparse.Scored {
	// Both runs' bounds come from binary searches, so the result is
	// allocated exactly once at its final size.
	want := uint64(uint32(node)) << 32
	next := uint64(uint32(node)+1) << 32
	jLo := sort.Search(len(v.byJ), func(x int) bool { return v.jkey(int(v.byJ[x])) >= want })
	jHi := jLo + sort.Search(len(v.byJ)-jLo, func(x int) bool { return v.jkey(int(v.byJ[jLo+x])) >= next })
	iLo := v.lowerBound(want)
	iHi := iLo + sort.Search(v.pairs()-iLo, func(x int) bool { return v.key(iLo+x) >= next })
	out := make([]sparse.Scored, 0, (jHi-jLo)+(iHi-iLo))
	// Scattered region: records whose j side is node, contiguous in byJ.
	for x := jLo; x < jHi; x++ {
		r := int(v.byJ[x])
		out = append(out, sparse.Scored{
			Node:  int(binary.LittleEndian.Uint32(v.b[r*pairRecordSize:])),
			Score: v.score(r),
		})
	}
	// Contiguous region: the (node, j) run in the primary order.
	for r := iLo; r < iHi; r++ {
		out = append(out, sparse.Scored{
			Node:  int(binary.LittleEndian.Uint32(v.b[r*pairRecordSize+4:])),
			Score: v.score(r),
		})
	}
	sparse.SortScoredDesc(out)
	if k >= 0 && len(out) > k {
		out = out[:k]
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
