package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"simrankpp/internal/rewrite"
	"simrankpp/internal/sparse"
)

// This file is the query-rewrite front-end of Figure 2 as a daemon: an
// HTTP/JSON server answering rewrite queries from a ScoreIndex — normally
// a snapshot the batch side wrote — with the §9.3 filtering pipeline on
// the /rewrite path, a bounded LRU for hot queries, and a lock-guarded
// index swap so SIGHUP reloads never disturb in-flight requests.
//
// The serving path is built to fail partially, not totally (see
// OPERATIONS.md): a quarantined shard degrades /readyz while every other
// shard keeps answering, overload is shed with 503 + Retry-After at a
// bounded in-flight limit instead of queueing unboundedly, every scoring
// request carries a deadline plumbed through the rewrite pipeline, and a
// handler panic becomes a 500 plus a counter rather than a dead daemon.

// Config parameterizes a Server.
type Config struct {
	// DefaultTop is the rewrite depth when the request omits top; the
	// paper serves at most 5.
	DefaultTop int
	// MaxTop caps the per-request top parameter.
	MaxTop int
	// CacheSize bounds the hot-query LRU (entries); <= 0 disables it.
	CacheSize int
	// BidTerms, when non-nil, enables bid-term filtering on /rewrite.
	BidTerms map[string]bool
	// MaxInFlight bounds concurrently-served scoring requests (/rewrite
	// and /similar). Excess requests are shed immediately with 503 +
	// Retry-After instead of queueing: under overload, fast rejection
	// keeps tail latency bounded for the requests that are admitted.
	// <= 0 disables shedding.
	MaxInFlight int
	// RequestTimeout is the per-request deadline on scoring endpoints,
	// plumbed as a context through the rewrite path; an exceeded
	// deadline answers 504. <= 0 disables deadlines.
	RequestTimeout time.Duration
	// RetryAfterSeconds is the base Retry-After hint on shed responses;
	// defaults to 1. Under sustained overload the hint grows with the
	// shed streak — each MaxInFlight consecutive rejections (a full
	// window's worth of turned-away work) add another base interval —
	// so clients back off proportionally instead of re-arriving in the
	// same wave. The streak resets as soon as a request is admitted.
	RetryAfterSeconds int
	// MaxRetryAfterSeconds clamps the derived Retry-After hint;
	// defaults to 30.
	MaxRetryAfterSeconds int
	// MaxBatch caps how many queries one POST /batch may carry; defaults
	// to 256. A batch occupies one in-flight slot and one deadline no
	// matter its size, so the cap is what keeps a single request from
	// monopolizing the scoring budget.
	MaxBatch int
	// BatchConcurrency bounds how many of a batch's queries are scored
	// concurrently; defaults to 8.
	BatchConcurrency int
	// DisablePrecomputed forces /rewrite and /batch onto the live
	// pipeline even when the snapshot's precomputed top-k section could
	// answer (the simrankd -precomputed=false escape hatch; also what the
	// differential tests use to pin both paths byte-identical).
	DisablePrecomputed bool
}

// DefaultServerConfig returns the paper's depth-5 serving settings with a
// 4096-entry cache, a 256-request in-flight bound, and a 5s deadline.
func DefaultServerConfig() Config {
	return Config{DefaultTop: 5, MaxTop: 100, CacheSize: 4096,
		MaxInFlight: 256, RequestTimeout: 5 * time.Second, RetryAfterSeconds: 1,
		MaxBatch: 256, BatchConcurrency: 8}
}

// EndpointStats is one endpoint's request/error counters in /stats, with
// latency percentiles over the last latWindowSize requests.
type EndpointStats struct {
	Requests  int64 `json:"requests"`
	Errors4xx int64 `json:"errors_4xx"`
	Errors5xx int64 `json:"errors_5xx"`
	// P50Ms/P99Ms are handler-latency percentiles over a sliding window
	// of recent requests; absent until the endpoint has served one.
	P50Ms float64 `json:"p50_ms,omitempty"`
	P99Ms float64 `json:"p99_ms,omitempty"`
}

// latWindowSize is the per-endpoint latency ring: big enough for stable
// p99 estimates, small enough that /stats sorts it without noticing.
const latWindowSize = 512

// latWindow is a fixed-size ring of recent request latencies.
type latWindow struct {
	mu      sync.Mutex
	samples [latWindowSize]float64 // milliseconds
	n, next int
}

func (l *latWindow) record(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	l.mu.Lock()
	l.samples[l.next] = ms
	l.next = (l.next + 1) % latWindowSize
	if l.n < latWindowSize {
		l.n++
	}
	l.mu.Unlock()
}

// percentiles returns (p50, p99) over the window, zeros when empty.
func (l *latWindow) percentiles() (float64, float64) {
	l.mu.Lock()
	n := l.n
	buf := append([]float64(nil), l.samples[:n]...)
	l.mu.Unlock()
	if n == 0 {
		return 0, 0
	}
	sort.Float64s(buf)
	rank := func(p float64) float64 {
		i := int(math.Ceil(p*float64(n))) - 1
		if i < 0 {
			i = 0
		}
		return buf[i]
	}
	return rank(0.50), rank(0.99)
}

// endpointCounters is the live (atomic) form of EndpointStats.
type endpointCounters struct {
	requests, errors4xx, errors5xx atomic.Int64
	lat                            latWindow
}

func (c *endpointCounters) snapshot() EndpointStats {
	p50, p99 := c.lat.percentiles()
	return EndpointStats{
		Requests:  c.requests.Load(),
		Errors4xx: c.errors4xx.Load(),
		Errors5xx: c.errors5xx.Load(),
		P50Ms:     p50,
		P99Ms:     p99,
	}
}

// Server answers rewrite queries over HTTP from a ScoreIndex.
//
// Endpoints:
//
//	GET /rewrite?q=QUERY[&top=K]  pipeline-filtered rewrites (stem dedup,
//	                              bid filtering, depth cap)
//	GET /similar?q=QUERY[&top=K]  raw ranked similar queries, unfiltered
//	GET /similar?ad=AD[&top=K]    raw ranked similar ads
//	POST /batch                   many rewrite lookups in one request
//	GET /stats                    serving counters + index metadata
//	GET /healthz                  liveness probe (process up)
//	GET /readyz                   readiness: ok / degraded / unready,
//	                              with quarantined-shard detail
type Server struct {
	cfg   Config
	cache *lruCache
	start time.Time

	// bidHash identifies cfg.BidTerms (BidTermsHash), compared against
	// the snapshot header to decide whether the precomputed rewrite
	// section answers byte-identically to this server's pipeline.
	bidHash uint64

	// inflight is the scoring-request admission semaphore; nil when
	// shedding is disabled.
	inflight chan struct{}

	// mu guards idx: handlers hold the read side for the whole request,
	// so Swap (write side) returns only once no request uses the old
	// index — the graceful half of graceful reload.
	mu  sync.RWMutex
	idx ScoreIndex

	// genID is the journal generation id of the served snapshot when the
	// daemon could resolve one (simrankd matches the snapshot fingerprint
	// against the generation store); 0 otherwise.
	genID atomic.Uint64

	// ingest, when set, reports the co-located ingest controller's
	// bounded-staleness status into /readyz and /stats — the serving
	// surface is where operators and gateways already look.
	ingest atomic.Pointer[func() IngestStatus]

	endpoints      map[string]*endpointCounters
	requests       atomic.Int64
	cacheHits      atomic.Int64
	reloads        atomic.Int64
	reloadFailures atomic.Int64
	shed           atomic.Int64
	panics         atomic.Int64
	// shedStreak counts consecutive sheds since the last successful
	// admit — the overload-depth signal behind the derived Retry-After.
	shedStreak atomic.Int64
}

// NewServer returns a server answering from idx.
func NewServer(idx ScoreIndex, cfg Config) *Server {
	if cfg.DefaultTop <= 0 {
		cfg.DefaultTop = 5
	}
	if cfg.MaxTop <= 0 {
		cfg.MaxTop = 100
	}
	if cfg.RetryAfterSeconds <= 0 {
		cfg.RetryAfterSeconds = 1
	}
	if cfg.MaxRetryAfterSeconds <= 0 {
		cfg.MaxRetryAfterSeconds = 30
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 256
	}
	if cfg.BatchConcurrency <= 0 {
		cfg.BatchConcurrency = 8
	}
	s := &Server{cfg: cfg, cache: newLRU(cfg.CacheSize), idx: idx, start: time.Now(),
		bidHash: BidTermsHash(cfg.BidTerms)}
	if cfg.MaxInFlight > 0 {
		s.inflight = make(chan struct{}, cfg.MaxInFlight)
	}
	s.endpoints = make(map[string]*endpointCounters)
	for _, name := range []string{"rewrite", "similar", "batch", "stats", "healthz", "readyz"} {
		s.endpoints[name] = &endpointCounters{}
	}
	return s
}

// InFlight reports how many scoring requests are currently admitted —
// what a shutdown with an expired drain deadline is still waiting on.
func (s *Server) InFlight() int {
	if s.inflight == nil {
		return 0
	}
	return len(s.inflight)
}

// ReloadFailures reports how many reload attempts failed to load a new
// index (the old one kept serving).
func (s *Server) ReloadFailures() int64 { return s.reloadFailures.Load() }

// SetGenerationID records the journal generation id of the served
// snapshot, surfaced in /readyz and /stats generation identity. Call it
// after swapping in an index whose journal id is known; 0 (the default)
// means "not journaled / unknown".
func (s *Server) SetGenerationID(id uint64) { s.genID.Store(id) }

// IngestStatus is a co-located ingest controller's health as surfaced
// through the serving endpoints: /readyz upgrades "ok" to "degraded"
// while Degraded is true (still HTTP 200 — the daemon keeps answering
// from the last good generation, which is exactly why it should keep
// receiving traffic), and /stats carries the bounded-staleness gauges
// in Stats.
type IngestStatus struct {
	Degraded bool   `json:"degraded"`
	Reason   string `json:"reason,omitempty"`
	// Stats is the controller's gauge block (ingest.Stats):
	// wal_lag_records, last_fold_age_seconds, staleness_seconds,
	// refresh_failures, ...
	Stats any `json:"stats,omitempty"`
}

// SetIngestStatus wires an ingest controller's status callback into
// /readyz and /stats. fn is called per probe under no server locks and
// must be safe for concurrent use. Pass nil to detach.
func (s *Server) SetIngestStatus(fn func() IngestStatus) {
	if fn == nil {
		s.ingest.Store(nil)
		return
	}
	s.ingest.Store(&fn)
}

func (s *Server) ingestStatus() *IngestStatus {
	fn := s.ingest.Load()
	if fn == nil {
		return nil
	}
	st := (*fn)()
	return &st
}

// GenerationIdentity is the serving snapshot's generation identity as
// surfaced in /readyz and /stats: what a read gateway compares across a
// replicated fleet to pin generation-consistent answers, and what an
// operator checks to verify a rollout actually swapped generations.
type GenerationIdentity struct {
	// ID is the generation-journal id (simrank -generations), 0 when the
	// served snapshot was never journaled or the id is unknown.
	ID uint64 `json:"id"`
	// Fingerprint is the snapshot's graph fingerprint hex (XOR of
	// per-shard subgraph fingerprints) — the fleet-agreement key.
	Fingerprint string    `json:"fingerprint"`
	GeneratedAt time.Time `json:"generated_at"`
	// DirtyShards is how many shards the producing refresh recomputed;
	// -1 for a full (non-incremental) build.
	DirtyShards int `json:"dirty_shards"`
}

// generationIdentity derives the identity of the index being served;
// nil for indexes that are not snapshots (a live engine result has no
// generation to agree on).
func (s *Server) generationIdentity(idx ScoreIndex) *GenerationIdentity {
	snap, ok := idx.(*Snapshot)
	if !ok {
		return nil
	}
	m := snap.Meta()
	return &GenerationIdentity{
		ID:          s.genID.Load(),
		Fingerprint: m.Fingerprint,
		GeneratedAt: m.GeneratedAt,
		DirtyShards: m.LastRefreshDirty,
	}
}

// Index returns the currently-served score index — what the next
// admitted request will answer from.
func (s *Server) Index() ScoreIndex {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.idx
}

// Swap atomically replaces the served index and clears the response cache,
// returning the previous index once no in-flight request still reads it —
// the caller may then safely close it.
func (s *Server) Swap(idx ScoreIndex) ScoreIndex {
	s.mu.Lock()
	old := s.idx
	s.idx = idx
	s.mu.Unlock()
	s.cache.Clear()
	s.reloads.Add(1)
	return old
}

// Reload builds a fresh index via load and swaps it in. A failed load
// increments the reload-failure counter and — when fallback is non-nil —
// tries fallback (simrankd wires it to the last good journaled
// generation, so a corrupt new snapshot rolls the daemon back instead of
// wedging it); when both fail, the old index keeps serving and the load
// error is returned. The swapped-out index is passed to retire (which
// may close it); logf receives one line per attempt. Callbacks may be
// nil.
func (s *Server) Reload(load, fallback func() (ScoreIndex, error), retire func(ScoreIndex), logf func(format string, args ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	idx, err := load()
	if err != nil {
		s.reloadFailures.Add(1)
		if fallback == nil {
			logf("serve: reload failed, keeping current index: %v", err)
			return err
		}
		logf("serve: reload failed: %v", err)
		fidx, ferr := fallback()
		if ferr != nil {
			logf("serve: generation fallback failed too, keeping current index: %v", ferr)
			return err
		}
		logf("serve: fell back to previous good generation")
		idx = fidx
	}
	old := s.Swap(idx)
	if snap, ok := idx.(*Snapshot); ok {
		m := snap.Meta()
		logf("serve: reloaded index (%d queries, %d ads; generation %s, %d shards, fingerprint %s)",
			idx.NumQueries(), idx.NumAds(), m.GeneratedAt.Format(time.RFC3339), m.Shards, m.Fingerprint)
	} else {
		logf("serve: reloaded index (%d queries, %d ads)", idx.NumQueries(), idx.NumAds())
	}
	if retire != nil && old != nil {
		retire(old)
	}
	return nil
}

// ReloadOnSIGHUP installs a handler that, on each SIGHUP, reloads via
// Reload(load, fallback, retire, logf): a failed load falls back to
// fallback (may be nil), and a doubly-failed reload keeps the old index
// serving.
func (s *Server) ReloadOnSIGHUP(load, fallback func() (ScoreIndex, error), retire func(ScoreIndex), logf func(format string, args ...any)) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGHUP)
	go func() {
		for range ch {
			s.Reload(load, fallback, retire, logf)
		}
	}()
}

// Handler returns the server's route multiplexer with the resilience
// middleware applied: request/error accounting on every endpoint, panic
// recovery, and — on the scoring endpoints only, so health probes keep
// answering under overload — load shedding and per-request deadlines.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/rewrite", s.instrument("rewrite", true, s.handleRewrite))
	mux.Handle("/similar", s.instrument("similar", true, s.handleSimilar))
	mux.Handle("/batch", s.instrument("batch", true, s.handleBatch))
	mux.Handle("/stats", s.instrument("stats", false, s.handleStats))
	mux.Handle("/healthz", s.instrument("healthz", false, s.handleHealthz))
	mux.Handle("/readyz", s.instrument("readyz", false, s.handleReadyz))
	return mux
}

// statusWriter records the response status for the error counters.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status, w.wrote = code, true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.status, w.wrote = http.StatusOK, true
	}
	return w.ResponseWriter.Write(b)
}

// instrument wraps one endpoint with the middleware chain. scoring marks
// the endpoints doing index work, which are the ones that shed load and
// carry deadlines; /stats, /healthz and /readyz always answer — an
// operator diagnosing an overloaded daemon must not be shed by it.
func (s *Server) instrument(name string, scoring bool, h http.HandlerFunc) http.Handler {
	c := s.endpoints[name]
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		c.requests.Add(1)
		started := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			c.lat.record(time.Since(started))
			if p := recover(); p != nil {
				// A panicking handler must cost one 500, not the daemon.
				s.panics.Add(1)
				c.errors5xx.Add(1)
				if !sw.wrote {
					http.Error(sw.ResponseWriter, fmt.Sprintf("internal error: %v", p), http.StatusInternalServerError)
				}
				return
			}
			switch {
			case sw.status >= 500:
				c.errors5xx.Add(1)
			case sw.status >= 400:
				c.errors4xx.Add(1)
			}
		}()
		if scoring {
			if s.inflight != nil {
				select {
				case s.inflight <- struct{}{}:
					s.shedStreak.Store(0)
					defer func() { <-s.inflight }()
				default:
					// Shed: reject now, cheaply, rather than queue into a
					// latency spiral. Retry-After tells well-behaved
					// clients when to come back, scaled by how deep the
					// overload is (consecutive sheds per in-flight window)
					// and clamped.
					s.shed.Add(1)
					sw.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
					http.Error(sw, "overloaded: in-flight request limit reached", http.StatusServiceUnavailable)
					return
				}
			}
			if s.cfg.RequestTimeout > 0 {
				ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
				defer cancel()
				r = r.WithContext(ctx)
			}
		}
		h(sw, r)
	})
}

// retryAfter derives the Retry-After hint for one shed response: the
// base interval, plus one more base interval per MaxInFlight consecutive
// rejections since the last admit, clamped at the configured ceiling.
// Every MaxInFlight sheds represent at least a full serving window of
// work already turned away ahead of this client, so its wait scales with
// the backlog it would re-join.
func (s *Server) retryAfter() int {
	streak := s.shedStreak.Add(1)
	depth := int64(s.cfg.MaxInFlight)
	if depth < 1 {
		depth = 1
	}
	retry := s.cfg.RetryAfterSeconds * int(1+(streak-1)/depth)
	if retry > s.cfg.MaxRetryAfterSeconds {
		retry = s.cfg.MaxRetryAfterSeconds
	}
	return retry
}

// RewriteAnswer is one served rewrite.
type RewriteAnswer struct {
	Text  string  `json:"text"`
	Score float64 `json:"score"`
}

// rewriteResponse is the /rewrite (and /similar) payload.
type rewriteResponse struct {
	Query    string          `json:"query"`
	Method   string          `json:"method"`
	Rewrites []RewriteAnswer `json:"rewrites"`
}

func (s *Server) topParam(r *http.Request) (int, error) {
	raw := r.URL.Query().Get("top")
	if raw == "" {
		return s.cfg.DefaultTop, nil
	}
	top, err := strconv.Atoi(raw)
	if err != nil || top < 1 {
		return 0, fmt.Errorf("bad top %q: want a positive integer", raw)
	}
	if top > s.cfg.MaxTop {
		top = s.cfg.MaxTop
	}
	return top, nil
}

// scoreErrorInfo maps a scoring-path failure to a status and message: an
// exceeded deadline is 504 (the request, not the server, ran out of
// time); anything else is a 500.
func scoreErrorInfo(err error) (int, string) {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return http.StatusGatewayTimeout, "deadline exceeded"
	}
	return http.StatusInternalServerError, err.Error()
}

func scoreError(w http.ResponseWriter, err error) {
	status, msg := scoreErrorInfo(err)
	http.Error(w, msg, status)
}

func (s *Server) handleRewrite(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	top, err := s.topParam(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	body, status, msg := s.rewriteBody(r.Context(), q, top)
	if status != http.StatusOK {
		http.Error(w, msg, status)
		return
	}
	writeJSONBytes(w, body)
}

// rewriteBody computes one /rewrite answer — the shared core of the
// single endpoint and every /batch item. The caller holds the index read
// lock. It returns the cached-or-computed JSON body (trailing newline
// included) with StatusOK, or a status and message for error answers.
//
// When the served index is a snapshot whose precomputed top-k section
// matches this server's effective parameters (depth within the stored k,
// same candidate pool, same bid-term set — RewriteSectionUsable), the
// answer is a single in-place section lookup; otherwise — no snapshot,
// section absent or too shallow, parameters differ, blob quarantined, or
// DisablePrecomputed — it runs the live §9.3 pipeline. Both paths emit
// identical bytes by construction: the section was written by this same
// pipeline code at build time.
func (s *Server) rewriteBody(ctx context.Context, q string, top int) ([]byte, int, string) {
	key := "rw\x00" + q + "\x00" + strconv.Itoa(top)
	if body, ok := s.cache.Get(key); ok {
		s.cacheHits.Add(1)
		return body, http.StatusOK, ""
	}
	qid, ok := s.idx.QueryID(q)
	if !ok {
		return nil, http.StatusNotFound, fmt.Sprintf("query %q not in index", q)
	}

	var answers []RewriteAnswer
	method := ""
	if snap, isSnap := s.idx.(*Snapshot); isSnap && !s.cfg.DisablePrecomputed && snap.RewriteSectionUsable(top, s.bidHash) {
		if pre, hit := snap.PrecomputedRewrites(qid, top); hit {
			// The lookup may have sat on a slow (or fault-injected) blob
			// load; honor the request deadline before answering.
			if err := ctx.Err(); err != nil {
				status, msg := scoreErrorInfo(err)
				return nil, status, msg
			}
			answers = make([]RewriteAnswer, 0, len(pre))
			for _, sc := range pre {
				answers = append(answers, RewriteAnswer{Text: snap.Query(sc.Node), Score: sc.Score})
			}
			method = snap.VariantName()
		}
	}
	if method == "" {
		pipe := rewrite.NewPipeline(s.idx, s.cfg.BidTerms)
		pipe.MaxRewrites = top
		if top > pipe.TopN {
			// A depth above the paper's 100-candidate default (operator
			// raised -max-top) must widen the raw ranking too, or filtering
			// would silently truncate at TopN.
			pipe.TopN = top
		}
		src := &rewrite.ResultSource{Index: s.idx}
		cands, err := pipe.RewriteContext(ctx, src, qid)
		if err != nil {
			status, msg := scoreErrorInfo(err)
			return nil, status, msg
		}
		answers = make([]RewriteAnswer, 0, len(cands))
		for _, c := range cands {
			answers = append(answers, RewriteAnswer{Text: c.Text, Score: c.Score})
		}
		method = src.Name()
	}
	resp := rewriteResponse{Query: q, Method: method, Rewrites: answers}
	body, err := json.Marshal(resp)
	if err != nil {
		return nil, http.StatusInternalServerError, err.Error()
	}
	body = append(body, '\n')
	s.cache.Put(key, body)
	return body, http.StatusOK, ""
}

func (s *Server) handleSimilar(w http.ResponseWriter, r *http.Request) {
	q, ad := r.URL.Query().Get("q"), r.URL.Query().Get("ad")
	if (q == "") == (ad == "") {
		http.Error(w, "give exactly one of q or ad", http.StatusBadRequest)
		return
	}
	top, err := s.topParam(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	s.mu.RLock()
	defer s.mu.RUnlock()
	var scored []sparse.Scored
	var name func(int) string
	subject := q
	if q != "" {
		qid, ok := s.idx.QueryID(q)
		if !ok {
			http.Error(w, fmt.Sprintf("query %q not in index", q), http.StatusNotFound)
			return
		}
		scored = s.idx.TopRewrites(qid, top)
		name = s.idx.Query
	} else {
		aid, ok := s.idx.AdID(ad)
		if !ok {
			http.Error(w, fmt.Sprintf("ad %q not in index", ad), http.StatusNotFound)
			return
		}
		scored = s.idx.TopSimilarAds(aid, top)
		name = s.idx.Ad
		subject = ad
	}
	// The ranked lookup above may have sat on a slow (or fault-injected)
	// segment load; honor the request deadline before serializing.
	if err := r.Context().Err(); err != nil {
		scoreError(w, err)
		return
	}
	resp := rewriteResponse{Query: subject, Method: s.idx.VariantName(), Rewrites: make([]RewriteAnswer, 0, len(scored))}
	for _, sc := range scored {
		resp.Rewrites = append(resp.Rewrites, RewriteAnswer{Text: name(sc.Node), Score: sc.Score})
	}
	writeJSON(w, resp)
}

// BatchRequest is the POST /batch payload: one round trip for many
// rewrite lookups, sharing one admission slot and one deadline.
type BatchRequest struct {
	Queries []string `json:"queries"`
	// Top is the rewrite depth for every query; 0 means the server's
	// default, and values above MaxTop are clamped like the single
	// endpoint's top parameter.
	Top int `json:"top"`
}

// BatchItemError is one failed query's entry in a /batch response: the
// error message and status the single endpoint would have answered.
type BatchItemError struct {
	Query  string `json:"query"`
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// BatchResponse is the POST /batch payload: results in request order,
// each either a /rewrite response object or a BatchItemError.
type BatchResponse struct {
	Results []json.RawMessage `json:"results"`
}

// maxBatchBody bounds the /batch request body; far above any plausible
// MaxBatch-query payload, far below anything that hurts.
const maxBatchBody = 8 << 20

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST a JSON body to /batch", http.StatusMethodNotAllowed)
		return
	}
	var req BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBody)).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad batch body: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Queries) == 0 {
		http.Error(w, "empty batch: give queries", http.StatusBadRequest)
		return
	}
	if len(req.Queries) > s.cfg.MaxBatch {
		http.Error(w, fmt.Sprintf("batch of %d queries exceeds the %d limit", len(req.Queries), s.cfg.MaxBatch), http.StatusBadRequest)
		return
	}
	top := req.Top
	if top == 0 {
		top = s.cfg.DefaultTop
	}
	if top < 0 {
		http.Error(w, fmt.Sprintf("bad top %d: want a positive integer", req.Top), http.StatusBadRequest)
		return
	}
	if top > s.cfg.MaxTop {
		top = s.cfg.MaxTop
	}

	// One read lock for the whole batch: every item answers from the
	// same index generation even if a reload lands mid-request.
	s.mu.RLock()
	defer s.mu.RUnlock()
	results := make([]json.RawMessage, len(req.Queries))
	workers := s.cfg.BatchConcurrency
	if workers > len(req.Queries) {
		workers = len(req.Queries)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				q := req.Queries[i]
				body, status, msg := s.rewriteBody(r.Context(), q, top)
				if status == http.StatusOK {
					// The single endpoint's bytes, minus its trailing
					// newline: already-marshaled JSON embeds as-is.
					results[i] = json.RawMessage(body[:len(body)-1])
					continue
				}
				item, err := json.Marshal(BatchItemError{Query: q, Error: msg, Status: status})
				if err != nil {
					item = []byte(`{"error":"internal error","status":500}`)
				}
				results[i] = item
			}
		}()
	}
	for i := range req.Queries {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	writeJSON(w, BatchResponse{Results: results})
}

// StatsResponse is the /stats payload.
type StatsResponse struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Requests counts every request across all endpoints — including
	// the /stats request that reports it.
	Requests     int64 `json:"requests"`
	CacheHits    int64 `json:"cache_hits"`
	CacheEntries int   `json:"cache_entries"`
	CacheSize    int   `json:"cache_size"`
	// Endpoints breaks requests and error responses down per endpoint.
	Endpoints map[string]EndpointStats `json:"endpoints"`
	// Shed counts scoring requests rejected 503 at the in-flight limit;
	// Panics counts handler panics turned into 500s; InFlight is the
	// scoring requests currently admitted.
	Shed     int64 `json:"shed"`
	Panics   int64 `json:"panics"`
	InFlight int   `json:"in_flight"`
	// Reloads counts successful index swaps; ReloadFailures counts
	// reload attempts whose new index failed to load (old index kept).
	Reloads        int64  `json:"reloads"`
	ReloadFailures int64  `json:"reload_failures"`
	Queries        int    `json:"queries"`
	Ads            int    `json:"ads"`
	Method         string `json:"method"`
	// Generation is the served snapshot's generation identity (also in
	// /readyz) — the fleet-agreement key a gateway and an operator check.
	Generation *GenerationIdentity `json:"generation,omitempty"`
	// Snapshot-backed indexes add their header metadata, how many of the
	// per-shard score segments are materialized, any segment-load
	// failure, and the currently-quarantined segments (degraded mode).
	Snapshot          *SnapshotMeta `json:"snapshot,omitempty"`
	LoadedSegments    int           `json:"loaded_segments,omitempty"`
	IndexError        string        `json:"index_error,omitempty"`
	QuarantinedShards int           `json:"quarantined_shards"`
	Quarantined       []ShardHealth `json:"quarantined,omitempty"`
	// Mmap reports whether the served snapshot answers from memory-mapped
	// segment bytes (the zero-copy path) or heap-decoded tables.
	Mmap bool `json:"mmap"`
	// TopKSection describes the snapshot's precomputed rewrite section
	// and whether this server's parameters let /rewrite use it.
	TopKSection *TopKSectionStats `json:"topk_section,omitempty"`
	// Ingest is the co-located ingest controller's status and
	// bounded-staleness gauges (SetIngestStatus); absent when the daemon
	// serves without one.
	Ingest *IngestStatus `json:"ingest,omitempty"`
}

// TopKSectionStats is /stats' view of the precomputed rewrite section.
type TopKSectionStats struct {
	// Present is whether the snapshot carries a section at all.
	Present bool `json:"present"`
	// K and TopN are the stored list depth and the candidate-pool size
	// the lists were filtered from.
	K    int `json:"k"`
	TopN int `json:"top_n"`
	// BidFiltered is whether the lists were built under a bid-term set.
	BidFiltered bool `json:"bid_filtered"`
	// Serving is whether this server answers default-depth /rewrite
	// requests from the section (parameters match, not disabled).
	Serving bool `json:"serving"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	resp := StatsResponse{
		UptimeSeconds:  time.Since(s.start).Seconds(),
		Requests:       s.requests.Load(),
		CacheHits:      s.cacheHits.Load(),
		CacheEntries:   s.cache.Len(),
		CacheSize:      s.cfg.CacheSize,
		Endpoints:      make(map[string]EndpointStats, len(s.endpoints)),
		Shed:           s.shed.Load(),
		Panics:         s.panics.Load(),
		InFlight:       s.InFlight(),
		Reloads:        s.reloads.Load(),
		ReloadFailures: s.reloadFailures.Load(),
		Queries:        s.idx.NumQueries(),
		Ads:            s.idx.NumAds(),
		Method:         s.idx.VariantName(),
	}
	for name, c := range s.endpoints {
		resp.Endpoints[name] = c.snapshot()
	}
	resp.Generation = s.generationIdentity(s.idx)
	resp.Ingest = s.ingestStatus()
	if snap, ok := s.idx.(*Snapshot); ok {
		meta := snap.Meta()
		resp.Snapshot = &meta
		resp.LoadedSegments = snap.LoadedSegments()
		if err := snap.Err(); err != nil {
			resp.IndexError = err.Error()
		}
		resp.Quarantined = snap.Quarantined()
		resp.QuarantinedShards = len(resp.Quarantined)
		resp.Mmap = snap.Mmapped()
		resp.TopKSection = &TopKSectionStats{
			Present:     meta.RewriteTopK > 0,
			K:           meta.RewriteTopK,
			TopN:        meta.RewriteTopN,
			BidFiltered: meta.RewriteBidFiltered,
			Serving:     !s.cfg.DisablePrecomputed && snap.RewriteSectionUsable(s.cfg.DefaultTop, s.bidHash),
		}
	}
	writeJSON(w, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// ReadyResponse is the /readyz payload.
type ReadyResponse struct {
	// Status is "ok" (fully serving), "degraded" (some shards
	// quarantined, the rest answering — HTTP 200, so load balancers
	// keep routing the traffic this daemon can still serve), or
	// "unready" (no usable index — HTTP 503).
	Status string `json:"status"`
	// Generation identifies which snapshot generation the answers come
	// from — a read gateway probes this to keep a replicated fleet's
	// responses generation-consistent during rollouts.
	Generation  *GenerationIdentity `json:"generation,omitempty"`
	Quarantined []ShardHealth       `json:"quarantined,omitempty"`
	// Ingest reports a co-located ingest controller's status: a failing
	// refresh turns Status "degraded" while the daemon keeps answering
	// from the last good generation.
	Ingest *IngestStatus `json:"ingest,omitempty"`
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	idx := s.idx
	s.mu.RUnlock()
	resp := ReadyResponse{Status: "ok"}
	code := http.StatusOK
	if idx == nil {
		resp.Status = "unready"
		code = http.StatusServiceUnavailable
	} else if snap, ok := idx.(*Snapshot); ok {
		resp.Generation = s.generationIdentity(idx)
		if quar := snap.Quarantined(); len(quar) > 0 {
			resp.Status = "degraded"
			resp.Quarantined = quar
			// Only the score-segment sides decide unreadiness: a
			// quarantined topk blob costs the fast path, not answers —
			// /rewrite falls back to the live pipeline.
			scoring := 0
			for _, h := range quar {
				if h.Side != "topk" {
					scoring++
				}
			}
			if scoring >= 2*snap.NumShards() {
				// Every score segment of every shard is quarantined:
				// nothing can be answered — unready, not degraded.
				resp.Status = "unready"
				code = http.StatusServiceUnavailable
			}
		}
	}
	// A degraded ingest pipeline (refresh failing, staleness growing)
	// downgrades "ok" to "degraded" but never to unready: the last good
	// generation still answers, and HTTP stays 200 so routers keep
	// sending the traffic it can serve.
	if ing := s.ingestStatus(); ing != nil {
		resp.Ingest = ing
		if ing.Degraded && resp.Status == "ok" {
			resp.Status = "degraded"
		}
	}
	body, err := json.Marshal(resp)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(body, '\n'))
}

func writeJSON(w http.ResponseWriter, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSONBytes(w, append(body, '\n'))
}

func writeJSONBytes(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}
