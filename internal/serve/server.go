package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"simrankpp/internal/rewrite"
	"simrankpp/internal/sparse"
)

// This file is the query-rewrite front-end of Figure 2 as a daemon: an
// HTTP/JSON server answering rewrite queries from a ScoreIndex — normally
// a snapshot the batch side wrote — with the §9.3 filtering pipeline on
// the /rewrite path, a bounded LRU for hot queries, and a lock-guarded
// index swap so SIGHUP reloads never disturb in-flight requests.

// Config parameterizes a Server.
type Config struct {
	// DefaultTop is the rewrite depth when the request omits top; the
	// paper serves at most 5.
	DefaultTop int
	// MaxTop caps the per-request top parameter.
	MaxTop int
	// CacheSize bounds the hot-query LRU (entries); <= 0 disables it.
	CacheSize int
	// BidTerms, when non-nil, enables bid-term filtering on /rewrite.
	BidTerms map[string]bool
}

// DefaultServerConfig returns the paper's depth-5 serving settings with a
// 4096-entry cache.
func DefaultServerConfig() Config {
	return Config{DefaultTop: 5, MaxTop: 100, CacheSize: 4096}
}

// Server answers rewrite queries over HTTP from a ScoreIndex.
//
// Endpoints:
//
//	GET /rewrite?q=QUERY[&top=K]  pipeline-filtered rewrites (stem dedup,
//	                              bid filtering, depth cap)
//	GET /similar?q=QUERY[&top=K]  raw ranked similar queries, unfiltered
//	GET /similar?ad=AD[&top=K]    raw ranked similar ads
//	GET /stats                    serving counters + index metadata
//	GET /healthz                  liveness probe
type Server struct {
	cfg   Config
	cache *lruCache
	start time.Time

	// mu guards idx: handlers hold the read side for the whole request,
	// so Swap (write side) returns only once no request uses the old
	// index — the graceful half of graceful reload.
	mu  sync.RWMutex
	idx ScoreIndex

	requests  atomic.Int64
	cacheHits atomic.Int64
	reloads   atomic.Int64
}

// NewServer returns a server answering from idx.
func NewServer(idx ScoreIndex, cfg Config) *Server {
	if cfg.DefaultTop <= 0 {
		cfg.DefaultTop = 5
	}
	if cfg.MaxTop <= 0 {
		cfg.MaxTop = 100
	}
	return &Server{cfg: cfg, cache: newLRU(cfg.CacheSize), idx: idx, start: time.Now()}
}

// Swap atomically replaces the served index and clears the response cache,
// returning the previous index once no in-flight request still reads it —
// the caller may then safely close it.
func (s *Server) Swap(idx ScoreIndex) ScoreIndex {
	s.mu.Lock()
	old := s.idx
	s.idx = idx
	s.mu.Unlock()
	s.cache.Clear()
	s.reloads.Add(1)
	return old
}

// ReloadOnSIGHUP installs a handler that, on each SIGHUP, builds a fresh
// index via load and swaps it in; a failed load keeps the old index
// serving. The returned previous index is passed to retire (which may
// close it); logf receives one line per attempt. Both callbacks may be
// nil.
func (s *Server) ReloadOnSIGHUP(load func() (ScoreIndex, error), retire func(ScoreIndex), logf func(format string, args ...any)) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGHUP)
	go func() {
		for range ch {
			idx, err := load()
			if err != nil {
				logf("serve: reload failed, keeping current index: %v", err)
				continue
			}
			old := s.Swap(idx)
			if snap, ok := idx.(*Snapshot); ok {
				m := snap.Meta()
				logf("serve: reloaded index (%d queries, %d ads; generation %s, %d shards, fingerprint %s)",
					idx.NumQueries(), idx.NumAds(), m.GeneratedAt.Format(time.RFC3339), m.Shards, m.Fingerprint)
			} else {
				logf("serve: reloaded index (%d queries, %d ads)", idx.NumQueries(), idx.NumAds())
			}
			if retire != nil && old != nil {
				retire(old)
			}
		}
	}()
}

// Handler returns the server's route multiplexer.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/rewrite", s.handleRewrite)
	mux.HandleFunc("/similar", s.handleSimilar)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// RewriteAnswer is one served rewrite.
type RewriteAnswer struct {
	Text  string  `json:"text"`
	Score float64 `json:"score"`
}

// rewriteResponse is the /rewrite (and /similar) payload.
type rewriteResponse struct {
	Query    string          `json:"query"`
	Method   string          `json:"method"`
	Rewrites []RewriteAnswer `json:"rewrites"`
}

func (s *Server) topParam(r *http.Request) (int, error) {
	raw := r.URL.Query().Get("top")
	if raw == "" {
		return s.cfg.DefaultTop, nil
	}
	top, err := strconv.Atoi(raw)
	if err != nil || top < 1 {
		return 0, fmt.Errorf("bad top %q: want a positive integer", raw)
	}
	if top > s.cfg.MaxTop {
		top = s.cfg.MaxTop
	}
	return top, nil
}

func (s *Server) handleRewrite(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	top, err := s.topParam(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	key := "rw\x00" + q + "\x00" + strconv.Itoa(top)
	if body, ok := s.cache.Get(key); ok {
		s.cacheHits.Add(1)
		writeJSONBytes(w, body)
		return
	}

	s.mu.RLock()
	defer s.mu.RUnlock()
	qid, ok := s.idx.QueryID(q)
	if !ok {
		http.Error(w, fmt.Sprintf("query %q not in index", q), http.StatusNotFound)
		return
	}
	pipe := rewrite.NewPipeline(s.idx, s.cfg.BidTerms)
	pipe.MaxRewrites = top
	if top > pipe.TopN {
		// A depth above the paper's 100-candidate default (operator
		// raised -max-top) must widen the raw ranking too, or filtering
		// would silently truncate at TopN.
		pipe.TopN = top
	}
	src := &rewrite.ResultSource{Index: s.idx}
	cands, err := pipe.Rewrite(src, qid)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resp := rewriteResponse{Query: q, Method: src.Name(), Rewrites: make([]RewriteAnswer, 0, len(cands))}
	for _, c := range cands {
		resp.Rewrites = append(resp.Rewrites, RewriteAnswer{Text: c.Text, Score: c.Score})
	}
	body, err := json.Marshal(resp)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	body = append(body, '\n')
	s.cache.Put(key, body)
	writeJSONBytes(w, body)
}

func (s *Server) handleSimilar(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	q, ad := r.URL.Query().Get("q"), r.URL.Query().Get("ad")
	if (q == "") == (ad == "") {
		http.Error(w, "give exactly one of q or ad", http.StatusBadRequest)
		return
	}
	top, err := s.topParam(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	s.mu.RLock()
	defer s.mu.RUnlock()
	var scored []sparse.Scored
	var name func(int) string
	subject := q
	if q != "" {
		qid, ok := s.idx.QueryID(q)
		if !ok {
			http.Error(w, fmt.Sprintf("query %q not in index", q), http.StatusNotFound)
			return
		}
		scored = s.idx.TopRewrites(qid, top)
		name = s.idx.Query
	} else {
		aid, ok := s.idx.AdID(ad)
		if !ok {
			http.Error(w, fmt.Sprintf("ad %q not in index", ad), http.StatusNotFound)
			return
		}
		scored = s.idx.TopSimilarAds(aid, top)
		name = s.idx.Ad
		subject = ad
	}
	resp := rewriteResponse{Query: subject, Method: s.idx.VariantName(), Rewrites: make([]RewriteAnswer, 0, len(scored))}
	for _, sc := range scored {
		resp.Rewrites = append(resp.Rewrites, RewriteAnswer{Text: name(sc.Node), Score: sc.Score})
	}
	writeJSON(w, resp)
}

// StatsResponse is the /stats payload.
type StatsResponse struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Requests      int64   `json:"requests"`
	CacheHits     int64   `json:"cache_hits"`
	CacheEntries  int     `json:"cache_entries"`
	CacheSize     int     `json:"cache_size"`
	Reloads       int64   `json:"reloads"`
	Queries       int     `json:"queries"`
	Ads           int     `json:"ads"`
	Method        string  `json:"method"`
	// Snapshot-backed indexes add their header metadata, how many of the
	// per-shard score segments are materialized, and any segment-load
	// failure.
	Snapshot       *SnapshotMeta `json:"snapshot,omitempty"`
	LoadedSegments int           `json:"loaded_segments,omitempty"`
	IndexError     string        `json:"index_error,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	resp := StatsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      s.requests.Load(),
		CacheHits:     s.cacheHits.Load(),
		CacheEntries:  s.cache.Len(),
		CacheSize:     s.cfg.CacheSize,
		Reloads:       s.reloads.Load(),
		Queries:       s.idx.NumQueries(),
		Ads:           s.idx.NumAds(),
		Method:        s.idx.VariantName(),
	}
	if snap, ok := s.idx.(*Snapshot); ok {
		meta := snap.Meta()
		resp.Snapshot = &meta
		resp.LoadedSegments = snap.LoadedSegments()
		if err := snap.Err(); err != nil {
			resp.IndexError = err.Error()
		}
	}
	writeJSON(w, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func writeJSON(w http.ResponseWriter, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSONBytes(w, append(body, '\n'))
}

func writeJSONBytes(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}
