package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"

	"simrankpp/internal/faultfs"
	"simrankpp/internal/sparse"
)

// These are the fault-injection ("chaos") tests of the serving layer:
// every failure mode the daemon claims to survive — a corrupt segment, a
// slow disk, an overload burst, a panicking handler — is induced
// deterministically through a faultfs.Injector (or a stub index) and the
// promised degraded behavior is asserted, including recovery once the
// fault clears.

// chaosSnapshot builds a multi-shard snapshot and opens it through a
// fault injector, so tests can corrupt, delay or fail its reads at will.
func chaosSnapshot(t *testing.T) (*Snapshot, *faultfs.Injector) {
	t.Helper()
	_, data, _ := buildGeneration(t, refreshGraph(t, [4]int{1, 2, 3, 4}), refreshCfg())
	inj := faultfs.NewInjector()
	snap, err := NewSnapshot(faultfs.Wrap(bytes.NewReader(data), inj), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumShards() < 3 {
		t.Fatalf("chaos fixture has %d shards; need >= 3 for isolation tests", snap.NumShards())
	}
	return snap, inj
}

// distinctShardQueries returns n query names routed to n distinct shards.
func distinctShardQueries(t *testing.T, snap *Snapshot, n int) []string {
	t.Helper()
	seen := make(map[uint32]bool)
	var out []string
	for q := 0; q < snap.NumQueries() && len(out) < n; q++ {
		if sh := snap.qRoute[q]; !seen[sh] {
			seen[sh] = true
			out = append(out, snap.Query(q))
		}
	}
	if len(out) < n {
		t.Fatalf("only %d distinct shards among queries, need %d", len(out), n)
	}
	return out
}

func rewriteURL(q string) string { return "/rewrite?q=" + url.QueryEscape(q) }

// TestChaosBitFlipQuarantinesOneShard is the headline degraded-mode
// scenario: a bit flip corrupts one shard's query segment; that shard is
// quarantined with escalating backoff while every other shard keeps
// answering; /readyz reports degraded with the shard listed; and once
// the fault clears and the backoff elapses, the shard recovers — no
// restart, no reload.
func TestChaosBitFlipQuarantinesOneShard(t *testing.T) {
	snap, inj := chaosSnapshot(t)
	cur := time.Unix(1_700_000_000, 0)
	snap.now = func() time.Time { return cur }
	snap.SetQuarantineBackoff(time.Second, time.Minute)
	// Pin the jitter at its ceiling so the retryAt assertions below see
	// the undithered exponential schedule.
	snap.SetQuarantineJitter(func() float64 { return 1 })

	qs := distinctShardQueries(t, snap, 2)
	victim, healthy := qs[0], qs[1]
	vid, _ := snap.QueryID(victim)
	vShard := int(snap.qRoute[vid])
	if snap.dir[vShard].qPairs == 0 {
		t.Fatalf("victim shard %d has no query pairs to corrupt", vShard)
	}
	// Flip one bit in the victim shard's query segment: the CRC check on
	// lazy load must catch it.
	inj.FlipBit(int64(snap.dir[vShard].qOff)+8, 3)

	cfg := DefaultServerConfig()
	cfg.CacheSize = 0
	cfg.MaxInFlight = 0
	cfg.RequestTimeout = 0
	// The corruption is in the score segment; the precomputed rewrite
	// section would (correctly) keep answering without touching it, so
	// force the pipeline path — this test pins the segment quarantine
	// machinery, not the fast path.
	cfg.DisablePrecomputed = true
	srv := NewServer(snap, cfg)
	h := srv.Handler()

	// First touch: the load fails, the shard is quarantined.
	if code, body := get(t, h, rewriteURL(victim)); code != http.StatusInternalServerError {
		t.Fatalf("corrupt-shard rewrite = %d, want 500: %s", code, body)
	}
	quar := snap.Quarantined()
	if len(quar) != 1 || quar[0].Shard != vShard || quar[0].Side != "query" || quar[0].Failures != 1 {
		t.Fatalf("after first failure Quarantined() = %+v, want shard %d query side, 1 failure", quar, vShard)
	}
	if want := cur.Add(time.Second); !quar[0].RetryAt.Equal(want) {
		t.Fatalf("first-failure retryAt = %v, want %v", quar[0].RetryAt, want)
	}

	// Inside the backoff window the failure is remembered, not re-read.
	calls := inj.Calls()
	if code, _ := get(t, h, rewriteURL(victim)); code != http.StatusInternalServerError {
		t.Fatalf("quarantined rewrite = %d, want 500", code)
	}
	if got := inj.Calls(); got != calls {
		t.Fatalf("quarantined request touched the disk (%d reads, was %d)", got, calls)
	}

	// Past the backoff with the fault still present: one retry, failure
	// count escalates, backoff doubles.
	cur = cur.Add(time.Second)
	if code, _ := get(t, h, rewriteURL(victim)); code != http.StatusInternalServerError {
		t.Fatalf("retry under persistent fault = %d, want 500", code)
	}
	if got := inj.Calls(); got == calls {
		t.Fatal("elapsed backoff did not trigger a retry read")
	}
	quar = snap.Quarantined()
	if len(quar) != 1 || quar[0].Failures != 2 {
		t.Fatalf("after second failure Quarantined() = %+v, want 2 failures", quar)
	}
	if want := cur.Add(2 * time.Second); !quar[0].RetryAt.Equal(want) {
		t.Fatalf("second-failure retryAt = %v, want doubled backoff %v", quar[0].RetryAt, want)
	}

	// Every other shard answers while the victim is quarantined.
	code, body := get(t, h, rewriteURL(healthy))
	if code != http.StatusOK {
		t.Fatalf("healthy-shard rewrite = %d during quarantine: %s", code, body)
	}
	var resp rewriteResponse
	if err := json.Unmarshal(body, &resp); err != nil || len(resp.Rewrites) == 0 {
		t.Fatalf("healthy-shard rewrite returned no candidates during quarantine: %s", body)
	}

	// /readyz: degraded (HTTP 200 — the daemon still serves most traffic),
	// with the quarantined shard listed.
	code, body = get(t, h, "/readyz")
	if code != http.StatusOK {
		t.Fatalf("degraded /readyz = %d, want 200: %s", code, body)
	}
	var ready ReadyResponse
	if err := json.Unmarshal(body, &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Status != "degraded" || len(ready.Quarantined) != 1 || ready.Quarantined[0].Shard != vShard {
		t.Fatalf("/readyz = %+v, want degraded with shard %d listed", ready, vShard)
	}

	// /stats mirrors the degraded detail.
	_, body = get(t, h, "/stats")
	var stats StatsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.QuarantinedShards != 1 || stats.IndexError == "" {
		t.Fatalf("/stats quarantined_shards = %d (index_error %q), want 1 with an error recorded",
			stats.QuarantinedShards, stats.IndexError)
	}

	// Fault clears, but the backoff has not elapsed: still quarantined,
	// still no disk touch.
	inj.ClearFlips()
	calls = inj.Calls()
	if code, _ := get(t, h, rewriteURL(victim)); code != http.StatusInternalServerError {
		t.Fatalf("pre-backoff rewrite after fault cleared = %d, want 500 (still quarantined)", code)
	}
	if got := inj.Calls(); got != calls {
		t.Fatal("pre-backoff request touched the disk")
	}

	// Backoff elapses: the next touch reloads, the shard recovers.
	cur = cur.Add(2 * time.Second)
	code, body = get(t, h, rewriteURL(victim))
	if code != http.StatusOK {
		t.Fatalf("recovered-shard rewrite = %d, want 200: %s", code, body)
	}
	if err := json.Unmarshal(body, &resp); err != nil || len(resp.Rewrites) == 0 {
		t.Fatalf("recovered shard returned no candidates: %s", body)
	}
	if quar := snap.Quarantined(); len(quar) != 0 {
		t.Fatalf("Quarantined() = %+v after recovery, want empty", quar)
	}
	code, body = get(t, h, "/readyz")
	if err := json.Unmarshal(body, &ready); err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK || ready.Status != "ok" {
		t.Fatalf("/readyz after recovery = %d %+v, want 200 ok", code, ready)
	}
}

// TestChaosReadyzUnreadyWhenAllShardsDead pins the degraded/unready
// boundary: quarantining every segment of every shard turns /readyz into
// a 503, because nothing can be answered anymore.
func TestChaosReadyzUnreadyWhenAllShardsDead(t *testing.T) {
	snap, inj := chaosSnapshot(t)
	inj.FailAfter(0, nil) // every read fails from now on
	if err := snap.PreloadAll(); err == nil {
		t.Fatal("PreloadAll succeeded with all reads failing")
	}
	// PreloadAll stops at the first failure; touch the rest explicitly.
	for i := 0; i < snap.NumShards(); i++ {
		snap.queryTable(i)
		snap.adTable(i)
	}
	srv := NewServer(snap, DefaultServerConfig())
	code, body := get(t, srv.Handler(), "/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("all-dead /readyz = %d, want 503: %s", code, body)
	}
	var ready ReadyResponse
	if err := json.Unmarshal(body, &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Status != "unready" || len(ready.Quarantined) != 2*snap.NumShards() {
		t.Fatalf("/readyz = %q with %d quarantined, want unready with %d",
			ready.Status, len(ready.Quarantined), 2*snap.NumShards())
	}
}

// TestChaosOverloadSheds503 saturates the in-flight limit with
// slow-disk requests and asserts the excess is rejected immediately —
// 503 with a Retry-After hint, not queued behind the slow ones — and
// that the shed counter matches exactly.
func TestChaosOverloadSheds503(t *testing.T) {
	snap, inj := chaosSnapshot(t)
	qs := distinctShardQueries(t, snap, 3)

	cfg := DefaultServerConfig()
	cfg.CacheSize = 0
	cfg.MaxInFlight = 2
	cfg.RequestTimeout = 30 * time.Second
	srv := NewServer(snap, cfg)
	h := srv.Handler()

	// Every segment load from here on sleeps a second: the two admitted
	// requests park inside their (cold) shard loads, holding both slots.
	const slow = time.Second
	inj.SetLatency(slow)
	var wg sync.WaitGroup
	slowCodes := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			slowCodes[i], _ = get(t, h, rewriteURL(qs[i]))
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.InFlight() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("slow requests were never both admitted")
		}
		time.Sleep(time.Millisecond)
	}

	// With both slots held, every further scoring request sheds now.
	// Retry-After grows with the shed streak — one extra base second per
	// MaxInFlight (=2) consecutive rejections — so the burst sees
	// 1,1,2,2,3: sustained overload pushes clients progressively further
	// out instead of inviting them all back at once.
	const burst = 5
	wantRetry := []string{"1", "1", "2", "2", "3"}
	start := time.Now()
	for i := 0; i < burst; i++ {
		req := httptest.NewRequest("GET", rewriteURL(qs[2]), nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("shed request %d = %d, want 503: %s", i, rec.Code, rec.Body.Bytes())
		}
		if got := rec.Header().Get("Retry-After"); got != wantRetry[i] {
			t.Fatalf("shed request %d Retry-After = %q, want %q", i, got, wantRetry[i])
		}
	}
	if elapsed := time.Since(start); elapsed > slow/2 {
		t.Fatalf("shedding %d requests took %v — they queued behind the slow requests instead of failing fast", burst, elapsed)
	}

	// Health endpoints are never shed: an operator can still see what is
	// happening while the daemon is saturated.
	if code, _ := get(t, h, "/stats"); code != http.StatusOK {
		t.Fatalf("/stats shed under overload (= %d)", code)
	}
	if code, _ := get(t, h, "/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz shed under overload (= %d)", code)
	}

	wg.Wait()
	for i, code := range slowCodes {
		if code != http.StatusOK {
			t.Fatalf("admitted slow request %d = %d, want 200", i, code)
		}
	}
	_, body := get(t, h, "/stats")
	var stats StatsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Shed != burst {
		t.Fatalf("stats shed = %d, want %d", stats.Shed, burst)
	}
	if ep := stats.Endpoints["rewrite"]; ep.Requests != burst+2 || ep.Errors5xx != burst {
		t.Fatalf("rewrite endpoint stats = %+v, want %d requests with %d 5xx", ep, burst+2, burst)
	}
	if stats.InFlight != 0 {
		t.Fatalf("in_flight = %d after drain, want 0", stats.InFlight)
	}
}

// TestChaosDeadlineAnswers504 pins the per-request deadline: a request
// stuck behind a slow segment load answers 504 once its deadline
// passes, and the next request — segment now warm — succeeds.
func TestChaosDeadlineAnswers504(t *testing.T) {
	snap, inj := chaosSnapshot(t)
	q := distinctShardQueries(t, snap, 1)[0]

	cfg := DefaultServerConfig()
	cfg.CacheSize = 0
	cfg.MaxInFlight = 0
	cfg.RequestTimeout = 30 * time.Millisecond
	srv := NewServer(snap, cfg)
	h := srv.Handler()

	inj.SetLatency(300 * time.Millisecond)
	if code, body := get(t, h, rewriteURL(q)); code != http.StatusGatewayTimeout {
		t.Fatalf("slow-load rewrite = %d, want 504: %s", code, body)
	}
	// The deadline killed the request, not the segment: it loaded behind
	// the dead request, so the retry is instant and inside its deadline.
	inj.SetLatency(0)
	if code, body := get(t, h, rewriteURL(q)); code != http.StatusOK {
		t.Fatalf("warm retry after deadline = %d, want 200: %s", code, body)
	}
}

// panicIndex wraps a ScoreIndex with a TopRewrites that panics — the
// stand-in for any handler bug reaching a panic in production.
type panicIndex struct{ ScoreIndex }

func (p panicIndex) TopRewrites(q, k int) []sparse.Scored { panic("injected panic") }

// TestChaosPanicIsOne500NotADeadDaemon asserts the panic middleware:
// a panicking handler answers 500 and bumps the panic counter; the
// daemon keeps serving everything else.
func TestChaosPanicIsOne500NotADeadDaemon(t *testing.T) {
	snap, _ := chaosSnapshot(t)
	q := distinctShardQueries(t, snap, 1)[0]
	cfg := DefaultServerConfig()
	cfg.CacheSize = 0
	srv := NewServer(panicIndex{snap}, cfg)
	h := srv.Handler()

	code, body := get(t, h, "/similar?q="+url.QueryEscape(q))
	if code != http.StatusInternalServerError {
		t.Fatalf("panicking /similar = %d, want 500: %s", code, body)
	}
	// The daemon survived: liveness, stats and the untouched ad side all
	// still answer.
	if code, _ := get(t, h, "/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d after a handler panic", code)
	}
	adName := snap.Ad(0)
	if code, body := get(t, h, "/similar?ad="+url.QueryEscape(adName)); code != http.StatusOK {
		t.Fatalf("/similar?ad after panic = %d: %s", code, body)
	}
	_, body = get(t, h, "/stats")
	var stats StatsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Panics != 1 {
		t.Fatalf("stats panics = %d, want 1", stats.Panics)
	}
	if ep := stats.Endpoints["similar"]; ep.Errors5xx != 1 {
		t.Fatalf("similar endpoint 5xx = %d, want 1", ep.Errors5xx)
	}
}

// TestChaosShortReadQuarantines covers the truncated-file flavor of
// segment corruption: a short read quarantines the shard exactly like a
// CRC mismatch does, and recovery works the same way.
func TestChaosShortReadQuarantines(t *testing.T) {
	snap, inj := chaosSnapshot(t)
	cur := time.Unix(1_700_000_000, 0)
	snap.now = func() time.Time { return cur }
	snap.SetQuarantineBackoff(time.Second, time.Minute)
	q := distinctShardQueries(t, snap, 1)[0]

	inj.ShortReads(4)
	if _, err := snap.TopRewritesContext(context.TODO(), mustQueryID(t, snap, q), 5); err == nil {
		t.Fatal("short read did not fail the segment load")
	}
	if quar := snap.Quarantined(); len(quar) != 1 {
		t.Fatalf("Quarantined() = %+v after short read, want one entry", quar)
	}
	inj.ShortReads(0)
	cur = cur.Add(2 * time.Second)
	if _, err := snap.TopRewritesContext(context.TODO(), mustQueryID(t, snap, q), 5); err != nil {
		t.Fatalf("recovery after short read cleared: %v", err)
	}
	if quar := snap.Quarantined(); len(quar) != 0 {
		t.Fatalf("Quarantined() = %+v after recovery, want empty", quar)
	}
}

// TestChaosQuarantineBackoffJitter pins the equal-jitter quarantine
// schedule: the wait is backoff/2 + jitter·backoff/2, so shards
// quarantined by the same event spread their retries across half the
// window instead of hammering the disk in lockstep. jitter=0 exposes
// the floor of each window.
func TestChaosQuarantineBackoffJitter(t *testing.T) {
	snap, inj := chaosSnapshot(t)
	cur := time.Unix(1_700_000_000, 0)
	snap.now = func() time.Time { return cur }
	snap.SetQuarantineBackoff(time.Second, time.Minute)
	snap.SetQuarantineJitter(func() float64 { return 0 })

	q := distinctShardQueries(t, snap, 1)[0]
	vid := mustQueryID(t, snap, q)
	vShard := int(snap.qRoute[vid])
	inj.FlipBit(int64(snap.dir[vShard].qOff)+8, 3)

	if _, err := snap.TopRewritesContext(context.TODO(), vid, 5); err == nil {
		t.Fatal("corrupt segment load did not fail")
	}
	quar := snap.Quarantined()
	if len(quar) != 1 {
		t.Fatalf("Quarantined() = %+v, want one entry", quar)
	}
	// First failure, jitter floor: half the 1s nominal backoff.
	if want := cur.Add(500 * time.Millisecond); !quar[0].RetryAt.Equal(want) {
		t.Fatalf("jitter-floor retryAt = %v, want %v", quar[0].RetryAt, want)
	}

	// Second failure: nominal backoff doubles to 2s, floor to 1s.
	cur = cur.Add(time.Second)
	if _, err := snap.TopRewritesContext(context.TODO(), vid, 5); err == nil {
		t.Fatal("retry under persistent fault did not fail")
	}
	quar = snap.Quarantined()
	if want := cur.Add(time.Second); len(quar) != 1 || !quar[0].RetryAt.Equal(want) {
		t.Fatalf("second-failure jitter-floor retryAt = %+v, want %v", quar, want)
	}
}

func mustQueryID(t *testing.T, snap *Snapshot, name string) int {
	t.Helper()
	id, ok := snap.QueryID(name)
	if !ok {
		t.Fatalf("query %q not in snapshot", name)
	}
	return id
}
