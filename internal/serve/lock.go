package serve

import (
	"fmt"
	"os"
)

// Advisory writer lock for the generation journal. Two writers
// interleaving Commit/Publish against the same journal — a cron'd
// `simrank -refresh` racing the ingest controller, or two operators
// refreshing at once — would interleave temp files, manifests, and the
// serving rename in undefined orders. The lock makes the second
// acquirer fail fast with a message naming the conflict instead.

// Lock takes the store's advisory exclusive lock (flock on Unix; a
// no-op elsewhere — see lock_other.go). It does not block: if another
// process (or another store in this process) holds the lock, Lock
// returns an error immediately. The returned release func is
// idempotent. The lock file lives beside the serving snapshot
// (<snapshot>.lock) and is never deleted — flock state, not content,
// is the lock.
func (gs *GenerationStore) Lock() (release func() error, err error) {
	path := gs.path + ".lock"
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: open journal lock: %w", err)
	}
	if err := flockExclusive(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("serve: %s is locked by another refresh or ingest controller (%v) — wait for it to finish or stop it first", path, err)
	}
	released := false
	return func() error {
		if released {
			return nil
		}
		released = true
		err := funlock(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		return err
	}, nil
}
