package serve

import (
	"container/list"
	"sync"
)

// lruCache is a bounded, concurrency-safe LRU keyed by string — the hot-
// query response cache of the serving front-end. A click workload is
// Zipfian (the paper's motivation for precomputing head queries), so a
// small cache absorbs most of the rewrite traffic; see PERF.md's serving
// section for sizing.
type lruCache struct {
	mu  sync.Mutex
	max int
	ll  *list.List               // front = most recent
	m   map[string]*list.Element // value: *lruEntry
}

type lruEntry struct {
	key string
	val []byte
}

// newLRU returns a cache bounded to max entries; max <= 0 disables
// caching (every Get misses, Put is a no-op).
func newLRU(max int) *lruCache {
	return &lruCache{max: max, ll: list.New(), m: make(map[string]*list.Element)}
}

// Get returns the cached bytes for key and marks them most-recent.
func (c *lruCache) Get(key string) ([]byte, bool) {
	if c.max <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put stores val under key, evicting the least-recent entry when full.
// Callers must not mutate val afterwards.
func (c *lruCache) Put(key string, val []byte) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	c.m[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*lruEntry).key)
	}
}

// Len returns the current entry count.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Clear drops every entry (called on snapshot reload: cached responses
// describe the old scores).
func (c *lruCache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.m = make(map[string]*list.Element)
}
