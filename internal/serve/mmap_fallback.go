//go:build !linux || simrank_nommap

package serve

import (
	"errors"
	"os"
)

// This platform (or the simrank_nommap build tag) has no mmap support:
// OpenSnapshot degrades to the read-into-heap segment path, which the
// differential tests pin byte-identical to the mapped one.
const mmapSupported = false

var errNoMmap = errors.New("serve: mmap unsupported on this build")

func mmapFile(_ *os.File, _ int64) ([]byte, error) { return nil, errNoMmap }

func munmapFile(_ []byte) error { return nil }
