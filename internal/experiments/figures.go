package experiments

import (
	"fmt"
	"strings"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/core"
	"simrankpp/internal/eval"
	"simrankpp/internal/judge"
	"simrankpp/internal/rewrite"
)

// MethodNames in the paper's presentation order.
var MethodNames = []string{"pearson", "simrank", "evidence-based simrank", "weighted simrank"}

// Table5Report holds the dataset statistics of Table 5.
type Table5Report struct {
	Rows  []clickgraph.Stats // one per subgraph
	Total clickgraph.Stats   // over the combined dataset
}

// Table5 computes the subgraph statistics table.
func Table5(ds *Dataset) *Table5Report {
	r := &Table5Report{}
	for _, s := range ds.Subgraphs {
		r.Rows = append(r.Rows, clickgraph.ComputeStats(s.Graph))
	}
	r.Total = clickgraph.ComputeStats(ds.Combined)
	return r
}

// String renders the table.
func (t *Table5Report) String() string {
	var b strings.Builder
	b.WriteString("Table 5: dataset statistics (ACL-extracted subgraphs)\n")
	fmt.Fprintf(&b, "%-12s  %10s  %10s  %10s\n", "", "# Queries", "# Ads", "# Edges")
	for i, s := range t.Rows {
		fmt.Fprintf(&b, "subgraph %-3d  %10d  %10d  %10d\n", i+1, s.Queries, s.Ads, s.Edges)
	}
	fmt.Fprintf(&b, "%-12s  %10d  %10d  %10d\n", "Total", t.Total.Queries, t.Total.Ads, t.Total.Edges)
	return b.String()
}

// MethodRun is one method's judged rewrites over the evaluation sample.
type MethodRun struct {
	Name    string
	ByQuery []eval.QueryJudgments
}

// RunMethods executes the §9.3 pipeline for all four methods over the
// dataset's sample and grades every rewrite with the editorial oracle.
// simrankIters and the engine configuration follow the paper's settings.
func RunMethods(ds *Dataset) ([]MethodRun, error) {
	g := ds.Combined
	oracle := judge.New(ds.Universe)
	pipe := rewrite.NewPipeline(g, ds.Log.BidTerms)

	sources := []rewrite.Source{
		&rewrite.PearsonSource{Graph: g, Channel: core.ChannelRate},
	}
	for _, variant := range []core.Variant{core.Simple, core.Evidence, core.Weighted} {
		cfg := core.DefaultConfig().WithVariant(variant)
		cfg.PruneEpsilon = 1e-5
		res, err := core.Run(g, cfg)
		if err != nil {
			return nil, err
		}
		sources = append(sources, &rewrite.ResultSource{Index: res})
	}

	var runs []MethodRun
	for _, src := range sources {
		run := MethodRun{Name: src.Name()}
		for _, q := range ds.Sample {
			cands, err := pipe.Rewrite(src, q)
			if err != nil {
				return nil, err
			}
			qj := eval.QueryJudgments{Query: g.Query(q)}
			for _, c := range cands {
				qj.Rewrites = append(qj.Rewrites, eval.Judged{
					Text:  c.Text,
					Grade: oracle.Grade(qj.Query, c.Text),
				})
			}
			run.ByQuery = append(run.ByQuery, qj)
		}
		runs = append(runs, run)
	}
	return runs, nil
}

// CoverageReport is Figure 8: per-method query coverage.
type CoverageReport struct {
	SampleSize int
	Coverage   map[string]float64
}

// Fig8 computes query coverage from the method runs.
func Fig8(ds *Dataset, runs []MethodRun) *CoverageReport {
	r := &CoverageReport{SampleSize: len(ds.Sample), Coverage: map[string]float64{}}
	for _, run := range runs {
		r.Coverage[run.Name] = eval.Coverage(run.ByQuery)
	}
	return r
}

// String renders the report.
func (r *CoverageReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: query coverage over %d sample queries\n", r.SampleSize)
	for _, m := range MethodNames {
		if v, ok := r.Coverage[m]; ok {
			fmt.Fprintf(&b, "%-26s %s\n", m, eval.FormatPercent(v))
		}
	}
	return b.String()
}

// PRReport holds one threshold task's curves: Figure 9 (threshold 2) or
// Figure 10 (threshold 1).
type PRReport struct {
	Threshold int
	Curves    map[string][]eval.PRPoint
	PAtX      map[string][]float64
}

// PrecisionRecallFigure computes the 11-point curves and P@1..5 for every
// method under the given relevance threshold.
func PrecisionRecallFigure(runs []MethodRun, threshold int) *PRReport {
	all := make([][]eval.QueryJudgments, len(runs))
	for i, run := range runs {
		all[i] = run.ByQuery
	}
	pooled := eval.PoolRelevant(all, threshold)
	r := &PRReport{
		Threshold: threshold,
		Curves:    map[string][]eval.PRPoint{},
		PAtX:      map[string][]float64{},
	}
	for _, run := range runs {
		r.Curves[run.Name] = eval.PrecisionRecall(run.ByQuery, pooled, threshold)
		r.PAtX[run.Name] = eval.PrecisionAtX(run.ByQuery, 5, threshold)
	}
	return r
}

// Fig9 is the threshold-2 task (positive class = grades {1,2}).
func Fig9(runs []MethodRun) *PRReport { return PrecisionRecallFigure(runs, 2) }

// Fig10 is the threshold-1 task (positive class = grade 1).
func Fig10(runs []MethodRun) *PRReport { return PrecisionRecallFigure(runs, 1) }

// String renders both panels of the figure.
func (r *PRReport) String() string {
	var b strings.Builder
	fig := "Figure 9"
	if r.Threshold == 1 {
		fig = "Figure 10"
	}
	fmt.Fprintf(&b, "%s: precision/recall, positive class = grades {1..%d}\n", fig, r.Threshold)
	b.WriteString("11-point interpolated precision at recall 0.0 .. 1.0:\n")
	for _, m := range MethodNames {
		curve, ok := r.Curves[m]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%-26s", m)
		for _, p := range curve {
			fmt.Fprintf(&b, " %.2f", p.Precision)
		}
		b.WriteByte('\n')
	}
	b.WriteString("Precision after X = 1..5 rewrites (P@X):\n")
	for _, m := range MethodNames {
		pax, ok := r.PAtX[m]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%-26s", m)
		for _, p := range pax {
			fmt.Fprintf(&b, " %.2f", p)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// DepthReport is Figure 11: cumulative rewriting-depth percentages.
type DepthReport struct {
	// AtLeast[m][k-1] is the fraction of sample queries for which method
	// m produced at least k rewrites, k = 1..5.
	AtLeast map[string][]float64
}

// Fig11 computes the depth histogram.
func Fig11(runs []MethodRun) *DepthReport {
	r := &DepthReport{AtLeast: map[string][]float64{}}
	for _, run := range runs {
		r.AtLeast[run.Name] = eval.DepthHistogram(run.ByQuery, 5)
	}
	return r
}

// String renders the report in the paper's bucket order (5, 4-5, ..., 1-5).
func (r *DepthReport) String() string {
	var b strings.Builder
	b.WriteString("Figure 11: rewriting depth (% of sample queries with >= k rewrites)\n")
	fmt.Fprintf(&b, "%-26s %6s %6s %6s %6s %6s\n", "", "5", "4-5", "3-5", "2-5", "1-5")
	for _, m := range MethodNames {
		h, ok := r.AtLeast[m]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%-26s", m)
		for k := 5; k >= 1; k-- {
			fmt.Fprintf(&b, " %5.0f%%", h[k-1]*100)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// DesirabilityReport is Figure 12: correct-ordering percentages.
type DesirabilityReport struct {
	Trials  int
	Correct map[string]int
}

// Fig12 runs the §9.3 edge-removal experiment: trials trials, three
// SimRank variants scored with the neighborhood engine (Pearson is
// excluded, as in the paper, because edge removal deletes the common ads
// it needs).
func Fig12(ds *Dataset, trials int, seed uint64) (*DesirabilityReport, error) {
	ts := eval.BuildTrials(ds.Combined, core.ChannelRate, trials, seed)
	r := &DesirabilityReport{Trials: len(ts), Correct: map[string]int{}}
	lc := core.DefaultLocalConfig()
	lc.Radius = 6
	for _, variant := range []core.Variant{core.Simple, core.Evidence, core.Weighted} {
		cfg := core.DefaultConfig().WithVariant(variant)
		cfg.PruneEpsilon = 1e-6
		correct, _, err := eval.RunDesirability(ts, eval.LocalScorer(cfg, lc))
		if err != nil {
			return nil, err
		}
		r.Correct[variant.String()] = correct
	}
	return r, nil
}

// String renders the report.
func (r *DesirabilityReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12: desirability-order prediction over %d trials\n", r.Trials)
	for _, m := range MethodNames[1:] {
		if c, ok := r.Correct[m]; ok {
			pct := 0.0
			if r.Trials > 0 {
				pct = float64(c) / float64(r.Trials) * 100
			}
			fmt.Fprintf(&b, "%-26s %d/%d (%.0f%%)\n", m, c, r.Trials, pct)
		}
	}
	return b.String()
}
