package experiments

import (
	"math"
	"strings"
	"testing"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/sponsored"
	"simrankpp/internal/workload"
)

// smallDatasetConfig shrinks the default dataset so tests run in a couple
// of seconds while preserving the qualitative structure.
func smallDatasetConfig() DatasetConfig {
	cfg := DefaultDatasetConfig()
	cfg.Universe.Categories = 6
	cfg.Universe.SubtopicsPerCategory = 4
	cfg.Universe.IntentsPerSubtopic = 4
	cfg.Sponsored.Sessions = 120000
	cfg.MinSubgraphNodes = 80
	cfg.Subgraphs = 3
	return cfg
}

var sharedDataset *Dataset

func dataset(t *testing.T) *Dataset {
	t.Helper()
	if sharedDataset == nil {
		ds, err := BuildDataset(smallDatasetConfig())
		if err != nil {
			t.Fatalf("BuildDataset: %v", err)
		}
		sharedDataset = ds
	}
	return sharedDataset
}

func TestTable1MatchesPaper(t *testing.T) {
	m := Table1()
	labelIdx := map[string]int{}
	for i, l := range m.Labels {
		labelIdx[l] = i
	}
	want := map[[2]string]float64{
		{"pc", "camera"}:             1,
		{"camera", "digital camera"}: 2,
		{"camera", "tv"}:             1,
		{"pc", "tv"}:                 0,
		{"tv", "flower"}:             0,
	}
	for pair, v := range want {
		i, j := labelIdx[pair[0]], labelIdx[pair[1]]
		if m.Scores[i][j] != v || m.Scores[j][i] != v {
			t.Errorf("Table1[%s][%s] = %v want %v", pair[0], pair[1], m.Scores[i][j], v)
		}
	}
	if !strings.Contains(m.String(), "pc") {
		t.Error("rendered table missing labels")
	}
}

func TestTable2Qualitative(t *testing.T) {
	m, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	idx := map[string]int{}
	for i, l := range m.Labels {
		idx[l] = i
	}
	// Key observations of §4: pc-tv nonzero, flower-anything zero,
	// camera and digital camera symmetric.
	if m.Scores[idx["pc"]][idx["tv"]] <= 0 {
		t.Error("Table2: sim(pc,tv) should be positive")
	}
	for _, q := range []string{"pc", "camera", "digital camera", "tv"} {
		if m.Scores[idx["flower"]][idx[q]] != 0 {
			t.Errorf("Table2: sim(flower,%s) should be 0", q)
		}
	}
	for _, q := range []string{"pc", "tv"} {
		a := m.Scores[idx["camera"]][idx[q]]
		b := m.Scores[idx["digital camera"]][idx[q]]
		if math.Abs(a-b) > 1e-9 {
			t.Errorf("Table2: camera/digital camera asymmetric vs %s: %v vs %v", q, a, b)
		}
	}
}

func TestTables3And4MatchPaper(t *testing.T) {
	t3, err := Table3(7)
	if err != nil {
		t.Fatal(err)
	}
	wantK22 := []float64{0.4, 0.56, 0.624, 0.6496, 0.65984, 0.663936, 0.6655744}
	for i := range wantK22 {
		if math.Abs(t3.K22[i]-wantK22[i]) > 1e-9 {
			t.Errorf("Table3 K22[%d] = %v want %v", i+1, t3.K22[i], wantK22[i])
		}
		if math.Abs(t3.K12[i]-0.8) > 1e-9 {
			t.Errorf("Table3 K12[%d] = %v want 0.8", i+1, t3.K12[i])
		}
	}
	t4, err := Table4(7)
	if err != nil {
		t.Fatal(err)
	}
	wantEv := []float64{0.3, 0.42, 0.468, 0.4872, 0.49488, 0.497952, 0.4991808}
	for i := range wantEv {
		if math.Abs(t4.K22[i]-wantEv[i]) > 1e-9 {
			t.Errorf("Table4 K22[%d] = %v want %v", i+1, t4.K22[i], wantEv[i])
		}
		if math.Abs(t4.K12[i]-0.4) > 1e-9 {
			t.Errorf("Table4 K12[%d] = %v want 0.4", i+1, t4.K12[i])
		}
	}
	if !strings.Contains(t3.String(), "Iteration") {
		t.Error("Table3 rendering broken")
	}
}

func TestDatasetConstruction(t *testing.T) {
	ds := dataset(t)
	if len(ds.Subgraphs) == 0 {
		t.Fatal("no subgraphs extracted")
	}
	if ds.Combined.NumQueries() == 0 || ds.Combined.NumEdges() == 0 {
		t.Fatal("combined dataset empty")
	}
	if len(ds.Sample) == 0 {
		t.Fatal("empty evaluation sample")
	}
	for _, q := range ds.Sample {
		if q < 0 || q >= ds.Combined.NumQueries() {
			t.Fatalf("sample query id %d out of range", q)
		}
		if ds.Combined.QueryDegree(q) == 0 {
			t.Errorf("sample query %q has no edges", ds.Combined.Query(q))
		}
	}
	// Subgraphs are node-disjoint.
	seen := map[string]bool{}
	for _, s := range ds.Subgraphs {
		for q := 0; q < s.Graph.NumQueries(); q++ {
			name := s.Graph.Query(q)
			if seen[name] {
				t.Fatalf("query %q in two subgraphs", name)
			}
			seen[name] = true
		}
	}
	// Table 5 totals match the combined graph.
	t5 := Table5(ds)
	if t5.Total.Queries != ds.Combined.NumQueries() || t5.Total.Edges != ds.Combined.NumEdges() {
		t.Errorf("Table5 totals %d/%d don't match combined %d/%d",
			t5.Total.Queries, t5.Total.Edges, ds.Combined.NumQueries(), ds.Combined.NumEdges())
	}
}

func TestMethodRunsAndFigures(t *testing.T) {
	ds := dataset(t)
	runs, err := RunMethods(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 4 {
		t.Fatalf("methods = %d want 4", len(runs))
	}
	names := map[string]bool{}
	for _, r := range runs {
		names[r.Name] = true
		if len(r.ByQuery) != len(ds.Sample) {
			t.Errorf("%s judged %d queries want %d", r.Name, len(r.ByQuery), len(ds.Sample))
		}
	}
	for _, m := range MethodNames {
		if !names[m] {
			t.Errorf("missing method %s", m)
		}
	}

	// Figure 8: SimRank coverage must beat Pearson (the paper's headline
	// coverage result).
	f8 := Fig8(ds, runs)
	if f8.Coverage["pearson"] >= f8.Coverage["simrank"] {
		t.Errorf("coverage: pearson %v should be below simrank %v",
			f8.Coverage["pearson"], f8.Coverage["simrank"])
	}
	if !strings.Contains(f8.String(), "coverage") {
		t.Error("Fig8 rendering broken")
	}

	// Figure 9/10: P@1 ordering should put every SimRank variant above
	// Pearson.
	for _, report := range []*PRReport{Fig9(runs), Fig10(runs)} {
		pearson := report.PAtX["pearson"][0]
		for _, m := range MethodNames[1:] {
			if report.PAtX[m][0] <= pearson {
				t.Errorf("threshold %d: P@1 of %s (%v) should beat pearson (%v)",
					report.Threshold, m, report.PAtX[m][0], pearson)
			}
		}
		if len(report.Curves["simrank"]) != 11 {
			t.Errorf("curve should have 11 points")
		}
	}

	// Figure 11: the enhanced schemes must reach depth 5 at least as
	// often as Pearson.
	f11 := Fig11(runs)
	if f11.AtLeast["weighted simrank"][4] < f11.AtLeast["pearson"][4] {
		t.Errorf("depth-5: weighted %v below pearson %v",
			f11.AtLeast["weighted simrank"][4], f11.AtLeast["pearson"][4])
	}
}

func TestFig12Shape(t *testing.T) {
	ds := dataset(t)
	rep, err := Fig12(ds, 30, 555)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trials == 0 {
		t.Skip("graph too small for desirability trials")
	}
	// Weighted must predict at least as well as the structure-only
	// methods (the paper's qualitative claim).
	w := rep.Correct["weighted simrank"]
	s := rep.Correct["simrank"]
	if w < s {
		t.Errorf("weighted correct %d below simple %d", w, s)
	}
	if !strings.Contains(rep.String(), "desirability") {
		t.Error("Fig12 rendering broken")
	}
}

func TestUnionGraphsPreservesWeights(t *testing.T) {
	ds := dataset(t)
	// Every edge of subgraph 0 appears in the combined graph with
	// identical weights.
	s := ds.Subgraphs[0].Graph
	checked := 0
	s.Edges(func(q, a int, w clickgraph.EdgeWeights) bool {
		cq, ok1 := ds.Combined.QueryID(s.Query(q))
		ca, ok2 := ds.Combined.AdID(s.Ad(a))
		if !ok1 || !ok2 {
			t.Fatalf("edge (%s,%s) lost in union", s.Query(q), s.Ad(a))
		}
		got, ok := ds.Combined.EdgeWeightsOf(cq, ca)
		if !ok || got != w {
			t.Fatalf("edge (%s,%s) weights %+v vs %+v", s.Query(q), s.Ad(a), got, w)
		}
		checked++
		return checked < 200
	})
	if checked == 0 {
		t.Fatal("no edges checked")
	}
}

func TestBuildDatasetValidation(t *testing.T) {
	cfg := smallDatasetConfig()
	cfg.Subgraphs = 0
	if _, err := BuildDataset(cfg); err == nil {
		t.Error("accepted zero subgraphs")
	}
	cfg = smallDatasetConfig()
	cfg.TrafficSample = 0
	if _, err := BuildDataset(cfg); err == nil {
		t.Error("accepted zero traffic sample")
	}
	cfg = smallDatasetConfig()
	cfg.Universe.Categories = 0
	if _, err := BuildDataset(cfg); err == nil {
		t.Error("accepted invalid universe config")
	}
	cfg = smallDatasetConfig()
	cfg.Sponsored = sponsored.Config{}
	if _, err := BuildDataset(cfg); err == nil {
		t.Error("accepted invalid sponsored config")
	}
	_ = workload.DefaultUniverseConfig
}
