package experiments

import (
	"fmt"
	"strings"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/core"
)

// PairMatrix is a symmetric query-query score table with labels, the shape
// of the paper's Tables 1 and 2.
type PairMatrix struct {
	Title   string
	Labels  []string
	Scores  [][]float64 // Scores[i][j]; diagonal rendered as "-"
	Decimal int         // digits after the point when rendering
}

// String renders the matrix as an aligned text table.
func (m *PairMatrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", m.Title)
	w := 0
	for _, l := range m.Labels {
		if len(l) > w {
			w = len(l)
		}
	}
	cell := w
	if c := m.Decimal + 3; c > cell {
		cell = c
	}
	fmt.Fprintf(&b, "%*s", w+2, "")
	for _, l := range m.Labels {
		fmt.Fprintf(&b, "%*s", cell+2, l)
	}
	b.WriteByte('\n')
	for i, l := range m.Labels {
		fmt.Fprintf(&b, "%-*s", w+2, l)
		for j := range m.Labels {
			if i == j {
				fmt.Fprintf(&b, "%*s", cell+2, "-")
			} else {
				fmt.Fprintf(&b, "%*.*f", cell+2, m.Decimal, m.Scores[i][j])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// fig3Order is the row/column order of the paper's Tables 1-2.
var fig3Order = []string{"pc", "camera", "digital camera", "tv", "flower"}

// Table1 reproduces Table 1: common-ad counts between the Figure 3
// queries.
func Table1() *PairMatrix {
	g := clickgraph.Fig3()
	counts := core.CommonAdCounts(g)
	m := &PairMatrix{
		Title:   "Table 1: query-query similarity by common-ad counting (Figure 3 graph)",
		Labels:  fig3Order,
		Decimal: 0,
	}
	m.Scores = make([][]float64, len(fig3Order))
	for i, qi := range fig3Order {
		m.Scores[i] = make([]float64, len(fig3Order))
		ii, _ := g.QueryID(qi)
		for j, qj := range fig3Order {
			jj, _ := g.QueryID(qj)
			m.Scores[i][j] = float64(counts[ii][jj])
		}
	}
	return m
}

// Table2 reproduces Table 2: SimRank scores with C1 = C2 = 0.8 on the
// Figure 3 graph, run to convergence as the paper's table implies.
func Table2() (*PairMatrix, error) {
	g := clickgraph.Fig3()
	cfg := core.DefaultConfig()
	cfg.Iterations = 1000
	cfg.Tolerance = 1e-12
	res, err := core.RunDense(g, cfg)
	if err != nil {
		return nil, err
	}
	m := &PairMatrix{
		Title:   "Table 2: query-query SimRank scores, C1=C2=0.8 (Figure 3 graph)",
		Labels:  fig3Order,
		Decimal: 3,
	}
	m.Scores = make([][]float64, len(fig3Order))
	for i, qi := range fig3Order {
		m.Scores[i] = make([]float64, len(fig3Order))
		ii, _ := g.QueryID(qi)
		for j, qj := range fig3Order {
			jj, _ := g.QueryID(qj)
			if ii != jj {
				m.Scores[i][j] = res.QuerySim(ii, jj)
			}
		}
	}
	return m, nil
}

// IterationTable is the shape of Tables 3-4: one score per iteration for
// the two Figure 4 pairs.
type IterationTable struct {
	Title string
	// K22 is sim("camera", "digital camera") on K2,2 per iteration 1..k;
	// K12 is sim("pc", "camera") on K1,2.
	K22, K12 []float64
}

// String renders the table.
func (t *IterationTable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%-10s  %-32s  %-20s\n", "Iteration", `sim("camera","digital camera")`, `sim("pc","camera")`)
	for i := range t.K22 {
		fmt.Fprintf(&b, "%-10d  %-32.7f  %-20.7f\n", i+1, t.K22[i], t.K12[i])
	}
	return b.String()
}

// iterationSeries runs the engine at k = 1..iters and collects the score
// of the named pair.
func iterationSeries(g *clickgraph.Graph, cfg core.Config, q1, q2 string, iters int) ([]float64, error) {
	out := make([]float64, iters)
	for k := 1; k <= iters; k++ {
		c := cfg
		c.Iterations = k
		res, err := core.RunDense(g, c)
		if err != nil {
			return nil, err
		}
		i, ok := res.Graph.QueryID(q1)
		if !ok {
			return nil, fmt.Errorf("experiments: query %q missing", q1)
		}
		j, ok := res.Graph.QueryID(q2)
		if !ok {
			return nil, fmt.Errorf("experiments: query %q missing", q2)
		}
		out[k-1] = res.QuerySim(i, j)
	}
	return out, nil
}

// Table3 reproduces Table 3: per-iteration SimRank on the Figure 4 graphs.
func Table3(iters int) (*IterationTable, error) {
	cfg := core.DefaultConfig()
	k22, err := iterationSeries(clickgraph.Fig4K22(), cfg, "camera", "digital camera", iters)
	if err != nil {
		return nil, err
	}
	k12, err := iterationSeries(clickgraph.Fig4K12(), cfg, "pc", "camera", iters)
	if err != nil {
		return nil, err
	}
	return &IterationTable{
		Title: "Table 3: SimRank per iteration on the Figure 4 graphs, C1=C2=0.8",
		K22:   k22, K12: k12,
	}, nil
}

// Table4 reproduces Table 4: per-iteration evidence-based SimRank on the
// Figure 4 graphs.
func Table4(iters int) (*IterationTable, error) {
	cfg := core.DefaultConfig().WithVariant(core.Evidence)
	k22, err := iterationSeries(clickgraph.Fig4K22(), cfg, "camera", "digital camera", iters)
	if err != nil {
		return nil, err
	}
	k12, err := iterationSeries(clickgraph.Fig4K12(), cfg, "pc", "camera", iters)
	if err != nil {
		return nil, err
	}
	return &IterationTable{
		Title: "Table 4: evidence-based SimRank per iteration on the Figure 4 graphs, C1=C2=0.8",
		K22:   k22, K12: k12,
	}, nil
}
