// Package experiments wires the substrates into the paper's evaluation
// section: it builds the five-subgraph dataset (§9.2) from the simulated
// click log, runs each rewriting method through the §9.3 pipeline, and
// regenerates every table and figure of §10. Each exported runner
// corresponds to one table or figure; cmd/experiments prints them and
// bench_test.go times them.
package experiments

import (
	"fmt"
	"sort"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/partition"
	"simrankpp/internal/sponsored"
	"simrankpp/internal/workload"
)

// DatasetConfig assembles the synthetic analogue of the paper's dataset.
type DatasetConfig struct {
	// Universe shapes the latent population.
	Universe workload.UniverseConfig
	// Sponsored shapes the simulated click log.
	Sponsored sponsored.Config
	// Subgraphs is how many pieces to extract (the paper uses 5).
	Subgraphs int
	// PPR parameterizes the ACL extraction.
	PPR partition.PPRConfig
	// MinSubgraphNodes forces each extracted piece to keep at least this
	// many nodes.
	MinSubgraphNodes int
	// MaxSample caps the evaluation sample size (the paper evaluates on
	// 120 queries); 0 means no cap.
	MaxSample int
	// TrafficSample is how many live-traffic draws form the raw benchmark
	// sample (the paper uses a standardized 1200-query sample).
	TrafficSample int
	// SampleSeed drives the traffic sampling.
	SampleSeed uint64
}

// DefaultDatasetConfig returns a laptop-scale analogue of the paper's
// setup: the default universe and simulator, five subgraphs, and a
// 1200-draw traffic sample.
func DefaultDatasetConfig() DatasetConfig {
	return DatasetConfig{
		Universe:         workload.DefaultUniverseConfig(),
		Sponsored:        sponsored.DefaultConfig(),
		Subgraphs:        5,
		PPR:              partition.DefaultPPRConfig(),
		MinSubgraphNodes: 300,
		TrafficSample:    1200,
		MaxSample:        120,
		SampleSeed:       99,
	}
}

// Dataset is the materialized evaluation input.
type Dataset struct {
	Config DatasetConfig
	// Universe is the ground truth (for the editorial oracle).
	Universe *workload.Universe
	// Log is the full simulation output.
	Log *sponsored.Result
	// Subgraphs are the ACL-extracted pieces, largest first.
	Subgraphs []partition.Subgraph
	// Combined is the union of the subgraphs: "the five-subgraphs
	// dataset" every method takes as its input click graph.
	Combined *clickgraph.Graph
	// Sample holds the evaluation query ids (in Combined), the analogue
	// of the paper's 120 benchmark queries that appear in the dataset.
	Sample []int
	// RawSampleSize is the number of distinct queries drawn from traffic
	// before intersecting with the dataset.
	RawSampleSize int
}

// BuildDataset generates the universe, simulates the click log, extracts
// the subgraphs, and samples the evaluation queries — the full §9.2
// procedure.
func BuildDataset(cfg DatasetConfig) (*Dataset, error) {
	if cfg.Subgraphs < 1 {
		return nil, fmt.Errorf("experiments: Subgraphs must be >= 1, got %d", cfg.Subgraphs)
	}
	if cfg.TrafficSample < 1 {
		return nil, fmt.Errorf("experiments: TrafficSample must be >= 1, got %d", cfg.TrafficSample)
	}
	u, err := workload.BuildUniverse(cfg.Universe)
	if err != nil {
		return nil, err
	}
	log, err := sponsored.Simulate(u, cfg.Sponsored)
	if err != nil {
		return nil, err
	}
	subs, err := partition.Extract(log.Graph, cfg.Subgraphs, cfg.PPR, cfg.MinSubgraphNodes)
	if err != nil {
		return nil, err
	}
	combined, err := unionGraphs(subs)
	if err != nil {
		return nil, err
	}

	// Sample live traffic by popularity; keep distinct queries that made
	// it into the combined dataset. Popularity weighting means popular
	// queries are more likely to be in the sample, as the paper intends.
	r := workload.NewRNG(cfg.SampleSeed)
	seen := make(map[int]bool)
	var rawDistinct []string
	for i := 0; i < cfg.TrafficSample; i++ {
		qid := u.SampleQuery(r)
		if seen[qid] {
			continue
		}
		seen[qid] = true
		rawDistinct = append(rawDistinct, u.Queries[qid].Text)
	}
	var sample []int
	for _, text := range rawDistinct {
		if id, ok := combined.QueryID(text); ok && combined.QueryDegree(id) > 0 {
			sample = append(sample, id)
		}
	}
	sort.Ints(sample)
	if cfg.MaxSample > 0 && len(sample) > cfg.MaxSample {
		// Deterministic thinning: keep an evenly spaced subset.
		thin := make([]int, 0, cfg.MaxSample)
		for i := 0; i < cfg.MaxSample; i++ {
			thin = append(thin, sample[i*len(sample)/cfg.MaxSample])
		}
		sample = thin
	}
	return &Dataset{
		Config:        cfg,
		Universe:      u,
		Log:           log,
		Subgraphs:     subs,
		Combined:      combined,
		Sample:        sample,
		RawSampleSize: len(rawDistinct),
	}, nil
}

// unionGraphs merges node-disjoint subgraphs into one graph.
func unionGraphs(subs []partition.Subgraph) (*clickgraph.Graph, error) {
	b := clickgraph.NewBuilder()
	var err error
	for _, s := range subs {
		g := s.Graph
		for q := 0; q < g.NumQueries(); q++ {
			b.AddQuery(g.Query(q))
		}
		for a := 0; a < g.NumAds(); a++ {
			b.AddAd(g.Ad(a))
		}
		g.Edges(func(q, a int, w clickgraph.EdgeWeights) bool {
			err = b.AddEdge(g.Query(q), g.Ad(a), w)
			return err == nil
		})
		if err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}
