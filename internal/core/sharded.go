package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/partition"
	"simrankpp/internal/sparse"
)

// This file is the shard orchestration layer of §9.2's scaling story: the
// click graph is decomposed into a partition.Plan (whole components packed
// exactly, oversized components carved with ACL sweep cuts) and one
// engine runs per shard over a bounded worker pool. Each shard engine
// sizes its dense accumulators, frontiers, and evidence tables to the
// shard — not the universe — which is what makes sides too large for one
// monolithic dense SPA tractable.

// ShardOptions parameterizes RunSharded's scheduling.
type ShardOptions struct {
	// Workers is the total worker budget (<= 0 means GOMAXPROCS): it
	// bounds how many shard engines run concurrently, and each engine
	// additionally gets a node-proportional share of it as its own
	// row-parallel workers so a dominant shard does not run serially
	// while the rest of the pool idles. Each pool worker owns one
	// reusable engine arena, so peak scratch memory is on the order of
	// Workers × the largest shard's side, never the whole graph's.
	Workers int
	// RetainShardScores keeps each shard engine's local-id tables and
	// local→global maps on the Result (Result.ShardScores) in addition to
	// the stitched global tables. serve.WriteSnapshot uses them to emit
	// per-shard snapshot segments directly, in parallel, without
	// repartitioning; the cost is the scores held twice until the Result
	// is dropped.
	RetainShardScores bool
	// RunShards, when non-nil, must have one entry per plan shard and
	// restricts the run to the true entries — the dirty shards of a
	// partition.DiffPlans classification. Skipped shards burn no work at
	// all (no subgraph extraction, no engine): their scores are absent
	// from the stitched Result and their ShardScores entry (under
	// RetainShardScores) carries only the id lists, the shape
	// serve.RefreshSnapshot needs to byte-copy the previous generation's
	// segments. A Result of a partial run is NOT a complete score index;
	// it exists to feed a refresh.
	RunShards []bool
	// Context, when non-nil, cancels the run between shards: each pool
	// worker checks it before starting the next shard engine and the
	// dispatcher stops feeding the queue, so cancellation costs at most
	// the shards already in flight. RunSharded then returns the context's
	// error. The ingest controller plumbs its shutdown context through
	// here (via serve.RunRefreshContext) so SIGTERM stops an in-flight
	// fold at the next shard boundary instead of finishing the refresh.
	Context context.Context
	// WarmStart, when non-nil, seeds every executed shard engine's
	// starting frontiers from a previous generation's scores (matched by
	// node name) instead of the identity start. With Config.Tolerance set,
	// a lightly-churned shard then converges in a handful of iterations,
	// and the delta-skip machinery freezes its untouched rows after the
	// first pass. Exactness: iteration contracts to the same fixpoint
	// regardless of start, so a warm run differs from a cold one by at
	// most the tolerance-scale tail both were allowed to stop at.
	WarmStart ScoreSource
}

// ShardStat records one shard engine run for the stitched Result.
type ShardStat struct {
	// Queries, Ads, Edges are the shard subgraph's dimensions.
	Queries, Ads, Edges int
	// CutEdges and Exact echo the plan: evidence this shard could not see.
	CutEdges int
	Exact    bool
	// Iterations/Converged are the shard engine's own run outcome.
	Iterations int
	Converged  bool
	// Duration is the shard's wall time including subgraph extraction.
	Duration time.Duration
	// SPABytes is the dense sparse-accumulator footprint this shard's
	// engine needed: 2 float64 arrays sized to its larger side, per
	// engine worker the shard was granted. The monolithic equivalent is
	// 16·max(NumQueries, NumAds) per worker.
	SPABytes int64
	// Skipped reports that ShardOptions.RunShards excluded this shard: no
	// engine ran and the run-outcome fields above are zero.
	Skipped bool
	// Fingerprint echoes the plan shard's subgraph fingerprint, so the
	// snapshot writer can persist it without holding the plan.
	Fingerprint uint64
}

// RunSharded executes the plan: one sparse engine per shard, scheduled
// big-shards-first across a bounded worker pool, stitched into a single
// Result in the parent graph's id space (scores, the TopRewrites partner
// index via the stitched tables, and merged IterStats).
//
// When the plan is exact — every shard a union of whole connected
// components — the stitched scores are bit-identical to Run(g, cfg) at a
// fixed iteration count: pairs in different components score 0 in both,
// and a shard's local computation replays the monolithic one contribution
// for contribution (the differential tests pin this, serial and parallel,
// across variants). Two documented deviations:
//
//   - With Config.Tolerance > 0, each shard stops at its *own*
//     convergence instead of the global maximum, so converged shards stop
//     paying expansion/diff work entirely (part of the sharded speedup);
//     scores then differ from the monolithic run by at most the
//     tolerance-scale drift. Result.Converged reports whether every shard
//     converged.
//   - With an ACL-cut (non-exact) plan, cut edges' evidence is invisible
//     to both shards they straddle: cross-shard pairs score 0 and
//     boundary pairs are approximated, the same trade the paper accepts
//     when decomposing its giant component (§9.2).
//
// Result.IterStats sums, per iteration index, the per-shard stats (shards
// run concurrently, so summed durations measure total work, not wall
// time); Result.ShardStats records each shard's run in plan order.
func RunSharded(g *clickgraph.Graph, cfg Config, plan *partition.Plan, opt ShardOptions) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if plan == nil {
		return nil, fmt.Errorf("core: RunSharded needs a partition.Plan")
	}
	if err := plan.Validate(g); err != nil {
		return nil, err
	}
	if opt.RunShards != nil && len(opt.RunShards) != len(plan.Shards) {
		return nil, fmt.Errorf("core: RunShards has %d entries for a %d-shard plan",
			len(opt.RunShards), len(plan.Shards))
	}
	budget := opt.Workers
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	// The pool never needs more slots than shards; the engine-worker
	// shares below still draw on the full budget, so a single-shard plan
	// runs its one engine with every worker (≈ RunParallel).
	workers := budget
	if workers > len(plan.Shards) {
		workers = len(plan.Shards)
	}

	// Big shards first: the largest shard bounds the pool's makespan, so
	// it must not be picked up last. Skipped (clean) shards never enter
	// the queue — a refresh's cost is the dirty region's, not the plan's.
	run := func(i int) bool { return opt.RunShards == nil || opt.RunShards[i] }
	order := make([]int, 0, len(plan.Shards))
	totalNodes := 0
	for i := range plan.Shards {
		if !run(i) {
			continue
		}
		order = append(order, i)
		totalNodes += plan.Shards[i].Nodes()
	}
	if workers > len(order) {
		workers = len(order)
	}
	sort.Slice(order, func(a, b int) bool {
		na, nb := plan.Shards[order[a]].Nodes(), plan.Shards[order[b]].Nodes()
		if na != nb {
			return na > nb
		}
		return order[a] < order[b]
	})
	// A dominant shard must not run serially while the rest of the pool
	// idles (one uncarvable component plus a handful of tiny ones is the
	// worst case), so each shard's engine gets a share of the worker
	// budget proportional to its node count. Shares sum to ≈ workers;
	// transient oversubscription while small shards drain is bounded and
	// cheap (goroutines, with parallelism capped by GOMAXPROCS anyway).
	engineWorkers := func(nodes int) int {
		if totalNodes == 0 {
			return 1
		}
		w := (budget*nodes + totalNodes/2) / totalNodes
		if w < 1 {
			return 1
		}
		if w > budget {
			return budget
		}
		return w
	}

	outs := make([]shardOut, len(plan.Shards))
	jobs := make(chan int)
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ar := &engineArena{} // reused across this worker's shards
			for idx := range jobs {
				if ctx := opt.Context; ctx != nil && ctx.Err() != nil {
					fail(ctx.Err())
					continue
				}
				sh := &plan.Shards[idx]
				start := time.Now()
				view, err := clickgraph.NewSubview(g, sh.Queries, sh.Ads)
				if err != nil {
					fail(fmt.Errorf("core: shard %d: %w", idx, err))
					continue
				}
				var warm warmSeed
				if opt.WarmStart != nil {
					warm = newWarmSeeder(opt.WarmStart, view.Graph)
				}
				ew := engineWorkers(sh.Nodes())
				res, err := runEngine(view.Graph, cfg, ew, ar, warm)
				if err != nil {
					fail(fmt.Errorf("core: shard %d: %w", idx, err))
					continue
				}
				side := view.Graph.NumQueries()
				if na := view.Graph.NumAds(); na > side {
					side = na
				}
				outs[idx] = shardOut{view: view, res: res, stat: ShardStat{
					Queries:    view.Graph.NumQueries(),
					Ads:        view.Graph.NumAds(),
					Edges:      view.Graph.NumEdges(),
					CutEdges:   sh.CutEdges,
					Exact:      sh.Exact,
					Iterations:  res.Iterations,
					Converged:   res.Converged,
					Duration:    time.Since(start),
					Fingerprint: sh.Fingerprint,
					// u + t float64 arrays per engine worker.
					SPABytes: int64(ew) * int64(side) * 16,
				}}
			}
		}()
	}
	for _, idx := range order {
		if ctx := opt.Context; ctx != nil && ctx.Err() != nil {
			fail(ctx.Err())
			break
		}
		jobs <- idx
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	for i := range plan.Shards {
		if run(i) {
			continue
		}
		sh := &plan.Shards[i]
		outs[i].stat = ShardStat{
			Queries: len(sh.Queries), Ads: len(sh.Ads),
			CutEdges: sh.CutEdges, Exact: sh.Exact,
			Skipped: true, Fingerprint: sh.Fingerprint,
		}
	}
	res, err := stitch(g, cfg, outs)
	if err != nil {
		return nil, err
	}
	if opt.RetainShardScores {
		res.ShardScores = make([]ShardScoreSet, len(outs))
		for i := range outs {
			if outs[i].res == nil {
				// Skipped shard: the id lists alone, so a refresh can route
				// its nodes and byte-copy its previous segment.
				res.ShardScores[i] = ShardScoreSet{
					QueryIDs: plan.Shards[i].Queries,
					AdIDs:    plan.Shards[i].Ads,
				}
				continue
			}
			res.ShardScores[i] = ShardScoreSet{
				QueryIDs:    outs[i].view.QueryIDs,
				AdIDs:       outs[i].view.AdIDs,
				QueryScores: outs[i].res.QueryScores,
				AdScores:    outs[i].res.AdScores,
			}
		}
	}
	return res, nil
}

// shardOut is one shard engine's output awaiting the stitch.
type shardOut struct {
	view *clickgraph.Subview
	res  *Result
	stat ShardStat
}

// stitch remaps every shard's local pair tables into the parent id space
// and merges the run metadata. Entries with a nil res were skipped
// (clean) shards: they contribute their stat but no scores.
func stitch(g *clickgraph.Graph, cfg Config, outs []shardOut) (*Result, error) {
	qPairs, aPairs, maxIters := 0, 0, 0
	for i := range outs {
		if outs[i].res == nil {
			continue
		}
		qPairs += outs[i].res.QueryScores.Len()
		aPairs += outs[i].res.AdScores.Len()
		if outs[i].res.Iterations > maxIters {
			maxIters = outs[i].res.Iterations
		}
	}
	qTab, aTab := sparse.NewPairTable(qPairs), sparse.NewPairTable(aPairs)
	iterStats := make([]IterationStat, maxIters)
	shardStats := make([]ShardStat, len(outs))
	converged := true
	for i := range outs {
		view, res := outs[i].view, outs[i].res
		if res == nil {
			shardStats[i] = outs[i].stat
			continue
		}
		res.QueryScores.Range(func(a, b int, v float64) bool {
			qTab.Set(view.GlobalQuery(a), view.GlobalQuery(b), v)
			return true
		})
		res.AdScores.Range(func(a, b int, v float64) bool {
			aTab.Set(view.GlobalAd(a), view.GlobalAd(b), v)
			return true
		})
		for it, s := range res.IterStats {
			iterStats[it].Duration += s.Duration
			iterStats[it].QueryRowsSkipped += s.QueryRowsSkipped
			iterStats[it].QueryRows += s.QueryRows
			iterStats[it].AdRowsSkipped += s.AdRowsSkipped
			iterStats[it].AdRows += s.AdRows
		}
		converged = converged && res.Converged
		shardStats[i] = outs[i].stat
	}
	return &Result{
		Graph:       g,
		Config:      cfg,
		QueryScores: qTab,
		AdScores:    aTab,
		Iterations:  maxIters,
		Converged:   converged,
		IterStats:   iterStats,
		ShardStats:  shardStats,
	}, nil
}
