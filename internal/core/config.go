// Package core implements the Simrank++ similarity measures of Antonellis,
// Garcia-Molina and Chang (VLDB 2008): bipartite SimRank (Jeh & Widom,
// §4), evidence-based SimRank (§7) and weighted SimRank (§8), over the
// click graphs of package clickgraph.
//
// Three engines are provided:
//
//   - RunDense: exact, dense score matrices; for small graphs, the paper's
//     toy tables, and differential testing.
//   - Run: sparse pair-table engine with optional threshold pruning; the
//     workhorse for large graphs.
//   - LocalSimilarities: neighborhood-restricted engine that scores a
//     single query online, the front-end path of Figure 2.
//
// Closed forms for complete bipartite graphs (Appendix A/B of the paper)
// live in closedform.go and anchor the property tests for Theorems 6.1,
// 6.2 and 7.1.
package core

import "fmt"

// Variant selects which similarity measure an engine computes.
type Variant int

const (
	// Simple is plain bipartite SimRank (Equations 4.1-4.2).
	Simple Variant = iota
	// Evidence multiplies SimRank scores by the evidence of similarity
	// (Equations 7.5-7.6).
	Evidence
	// Weighted runs the consistency-preserving weighted random walk with
	// evidence (§8.2).
	Weighted
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case Simple:
		return "simrank"
	case Evidence:
		return "evidence-based simrank"
	case Weighted:
		return "weighted simrank"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// EvidenceForm selects between the paper's two evidence definitions.
type EvidenceForm int

const (
	// EvidenceGeometric is Equation 7.3: Σ_{i=1..n} 2^{-i} = 1 - 2^{-n}.
	// It is the form used in the paper's experiments.
	EvidenceGeometric EvidenceForm = iota
	// EvidenceExponential is Equation 7.4: 1 - e^{-n}.
	EvidenceExponential
)

// String implements fmt.Stringer.
func (f EvidenceForm) String() string {
	switch f {
	case EvidenceGeometric:
		return "geometric"
	case EvidenceExponential:
		return "exponential"
	default:
		return fmt.Sprintf("EvidenceForm(%d)", int(f))
	}
}

// WeightChannel selects which edge weight the weighted variant walks on.
type WeightChannel int

const (
	// ChannelRate uses the position-adjusted expected click rate; §9.2:
	// "In all our experiments that required the use of an edge weight we
	// used the expected click rate."
	ChannelRate WeightChannel = iota
	// ChannelClicks uses raw click counts (used by the Figure 5/6
	// consistency examples and the spam-robustness ablation).
	ChannelClicks
	// ChannelImpressions uses raw impression counts.
	ChannelImpressions
)

// String implements fmt.Stringer.
func (c WeightChannel) String() string {
	switch c {
	case ChannelRate:
		return "expected-click-rate"
	case ChannelClicks:
		return "clicks"
	case ChannelImpressions:
		return "impressions"
	default:
		return fmt.Sprintf("WeightChannel(%d)", int(c))
	}
}

// Config parameterizes a SimRank computation.
type Config struct {
	// C1 is the decay factor of the query-side equations, C2 of the
	// ad-side equations. The paper uses C1 = C2 = 0.8 throughout.
	C1, C2 float64
	// Iterations bounds the number of SimRank iterations.
	Iterations int
	// Tolerance, if positive, stops iteration early once the largest
	// score change falls below it.
	Tolerance float64
	// Variant selects the similarity measure. Default Simple.
	Variant Variant
	// EvidenceForm selects the evidence definition for the Evidence and
	// Weighted variants. Default EvidenceGeometric.
	EvidenceForm EvidenceForm
	// Channel selects the edge weight for the Weighted variant.
	Channel WeightChannel
	// DisableSpread drops the e^{-variance} spread factor from the
	// weighted transition probabilities (an ablation; see DESIGN.md).
	DisableSpread bool
	// StrictEvidence applies Equation 7.3 literally: a pair with no
	// common neighbors has evidence 0, so its evidence-based and
	// weighted scores are 0 regardless of indirect structure.
	//
	// The default (false) treats the evidence multiplier as 1 for such
	// pairs — the score passes through unchanged. The paper's equations
	// read strictly, but its experimental results are only reproducible
	// with pass-through: the desirability experiment (§9.3) removes
	// every common ad between the probe pairs yet reports nonzero
	// prediction rates with identical simple/evidence accuracy, and
	// evidence-based coverage (Figure 8) exceeds simple SimRank's, both
	// impossible if no-common-ad pairs were zeroed. See DESIGN.md.
	StrictEvidence bool
	// PruneEpsilon, if positive, makes the sparse engine drop pair scores
	// below it between iterations. This bounds memory on large graphs at
	// the cost of exactness. The dense engine ignores it.
	PruneEpsilon float64
	// DeltaSkipTolerance tunes the sparse engines' change-tracked row
	// skipping. An output row depends only on the score rows of its
	// neighbors on the opposite side; when none of those moved since the
	// previous iteration the engine copies the row's previous output
	// instead of recomputing it. With the default 0, a node counts as
	// moved if any of its pairs differs at all, so skipping is exact and
	// results are bit-identical to full recomputation. A positive value
	// also treats nodes whose largest pair change is within the tolerance
	// as unmoved, trading a bounded score error for earlier skipping
	// (differential-tested against full recompute). The dense engine
	// ignores it.
	DeltaSkipTolerance float64
	// DisableDeltaSkip forces the sparse engines to recompute every row
	// every iteration. It exists as the reference for the delta-skip
	// differential tests and as an ablation; production runs should leave
	// it off.
	DisableDeltaSkip bool
}

// DefaultConfig returns the paper's experimental settings: C1 = C2 = 0.8
// and 7 iterations (the horizon of Tables 3-4), simple SimRank, geometric
// evidence, expected-click-rate weights.
func DefaultConfig() Config {
	return Config{C1: 0.8, C2: 0.8, Iterations: 7}
}

// WithVariant returns a copy of c computing the given variant.
func (c Config) WithVariant(v Variant) Config {
	c.Variant = v
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if !(c.C1 > 0 && c.C1 <= 1) {
		return fmt.Errorf("core: C1 must be in (0,1], got %v", c.C1)
	}
	if !(c.C2 > 0 && c.C2 <= 1) {
		return fmt.Errorf("core: C2 must be in (0,1], got %v", c.C2)
	}
	if c.Iterations < 1 {
		return fmt.Errorf("core: Iterations must be >= 1, got %d", c.Iterations)
	}
	if c.Tolerance < 0 {
		return fmt.Errorf("core: Tolerance must be >= 0, got %v", c.Tolerance)
	}
	if c.PruneEpsilon < 0 {
		return fmt.Errorf("core: PruneEpsilon must be >= 0, got %v", c.PruneEpsilon)
	}
	if c.DeltaSkipTolerance < 0 {
		return fmt.Errorf("core: DeltaSkipTolerance must be >= 0, got %v", c.DeltaSkipTolerance)
	}
	switch c.Variant {
	case Simple, Evidence, Weighted:
	default:
		return fmt.Errorf("core: unknown variant %d", int(c.Variant))
	}
	switch c.EvidenceForm {
	case EvidenceGeometric, EvidenceExponential:
	default:
		return fmt.Errorf("core: unknown evidence form %d", int(c.EvidenceForm))
	}
	switch c.Channel {
	case ChannelRate, ChannelClicks, ChannelImpressions:
	default:
		return fmt.Errorf("core: unknown weight channel %d", int(c.Channel))
	}
	return nil
}
