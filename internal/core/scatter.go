package core

import (
	"sync"

	"simrankpp/internal/sparse"
)

// This file holds the contribution-scatter formulation of the two passes:
// each stored pair {i, j} of the opposite side pushes its score over
// E(i) × E(j) into a PairFrontier via Add, with the parallel variant
// scattering into per-worker shard frontiers merged by row range
// (sparse.ParallelMergeNormalize). It is not the default engine path —
// the row-major dense-accumulator passes in engine.go beat it on the
// duplication-heavy streams real click graphs produce (see PERF.md) —
// but it remains correct, differential-tested, and benchmarked, and it is
// the better shape when rows are too wide for dense accumulators.

// simplePassScatter mirrors simplePass by scattering contributions.
func simplePassScatter(opp *sparse.PairFrontier, thisNbr, oppNbr [][]int, c float64, dst *sparse.PairFrontier, workers int, shards []*sparse.PairFrontier) {
	norm := func(x, y int, t float64) (float64, bool) {
		dx, dy := len(thisNbr[x]), len(thisNbr[y])
		if dx == 0 || dy == 0 {
			return 0, false
		}
		s := c * t / float64(dx*dy)
		return s, s != 0
	}
	if workers <= 1 {
		dst.Reset()
		scatterSimple(opp, oppNbr, dst, 0, 1)
		dst.CompactNormalize(norm)
		return
	}
	scatterSharded(shards, workers, func(acc *sparse.PairFrontier, w int) {
		scatterSimple(opp, oppNbr, acc, w, workers)
	})
	sparse.ParallelMergeNormalize(dst, shards, workers, norm)
}

// scatterSimple pushes the strided subset {offset, offset+stride, ...} of
// scatter sources (opposite nodes for the diagonal terms s(i, i) = 1,
// opposite-side rows for stored pairs) into acc.
func scatterSimple(opp *sparse.PairFrontier, oppNbr [][]int, acc *sparse.PairFrontier, offset, stride int) {
	for o := offset; o < len(oppNbr); o += stride {
		nbrs := oppNbr[o]
		for x := 0; x < len(nbrs); x++ {
			for y := x + 1; y < len(nbrs); y++ {
				acc.Add(nbrs[x], nbrs[y], 1)
			}
		}
	}
	for i := offset; i < opp.NumRows(); i += stride {
		ni := oppNbr[i]
		opp.RangeRow(i, func(j int, v float64) bool {
			for _, q := range ni {
				for _, p := range oppNbr[j] {
					acc.Add(q, p, v) // Add ignores q == p
				}
			}
			return true
		})
	}
}

// weightedPassScatter mirrors weightedPass by scattering contributions.
func weightedPassScatter(opp *sparse.PairFrontier, thisNbr, oppNbr [][]int, revW [][]float64, ev *evidenceTable, c float64, dst *sparse.PairFrontier, workers int, shards []*sparse.PairFrontier) {
	norm := func(x, y int, t float64) (float64, bool) {
		e := ev.score(x, y)
		if e <= 0 {
			return 0, false
		}
		s := e * c * t
		return s, s != 0
	}
	if workers <= 1 {
		dst.Reset()
		scatterWeighted(opp, oppNbr, revW, dst, 0, 1)
		dst.CompactNormalize(norm)
		return
	}
	scatterSharded(shards, workers, func(acc *sparse.PairFrontier, w int) {
		scatterWeighted(opp, oppNbr, revW, acc, w, workers)
	})
	sparse.ParallelMergeNormalize(dst, shards, workers, norm)
}

// scatterWeighted is scatterSimple with every contribution scaled by the
// walk factors of the two edges it traverses.
func scatterWeighted(opp *sparse.PairFrontier, oppNbr [][]int, revW [][]float64, acc *sparse.PairFrontier, offset, stride int) {
	for o := offset; o < len(oppNbr); o += stride {
		nbrs := oppNbr[o]
		fw := revW[o]
		for x := 0; x < len(nbrs); x++ {
			if fw[x] == 0 {
				continue
			}
			for y := x + 1; y < len(nbrs); y++ {
				acc.Add(nbrs[x], nbrs[y], fw[x]*fw[y])
			}
		}
	}
	for i := offset; i < opp.NumRows(); i += stride {
		wi := revW[i]
		ni := oppNbr[i]
		opp.RangeRow(i, func(j int, v float64) bool {
			wj := revW[j]
			nj := oppNbr[j]
			for xi, q := range ni {
				f := wi[xi] * v
				if f == 0 {
					continue
				}
				for yj, p := range nj {
					if q != p {
						acc.Add(q, p, f*wj[yj])
					}
				}
			}
			return true
		})
	}
}

// newShards allocates one private scatter frontier per worker.
func newShards(workers, rows int) []*sparse.PairFrontier {
	shards := make([]*sparse.PairFrontier, workers)
	for w := range shards {
		shards[w] = sparse.NewPairFrontier(rows)
	}
	return shards
}

// scatterSharded resets each shard and runs scatter(shard, w) on its own
// goroutine.
func scatterSharded(shards []*sparse.PairFrontier, workers int, scatter func(acc *sparse.PairFrontier, w int)) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shards[w].Reset()
			scatter(shards[w], w)
		}(w)
	}
	wg.Wait()
}
