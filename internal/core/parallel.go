package core

import (
	"runtime"

	"simrankpp/internal/clickgraph"
)

// RunParallel is Run with each iteration's row computations sharded
// across workers goroutines (workers <= 0 selects GOMAXPROCS). The
// row-major passes make this embarrassingly parallel: the output row
// space is split into contiguous ranges balanced by gather weight, every
// worker computes its rows with a private dense accumulator and emits
// them into disjoint frontier rows — no locks, no shard tables, and no
// serial merge phase anywhere.
//
// Scores are mathematically identical to Run's and, because each output
// row is computed by exactly one worker in the same order as the serial
// engine, bit-identical to it as well. The differential test pins this.
func RunParallel(g *clickgraph.Graph, cfg Config, workers int) (*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return runEngine(g, cfg, workers, nil, nil)
}
