package core

import (
	"runtime"
	"sync"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/sparse"
)

// RunParallel is Run with the scatter phase of each iteration sharded
// across workers goroutines (workers <= 0 selects GOMAXPROCS). Each
// worker accumulates into a private pair table over a disjoint slice of
// the source pairs; the shards are then merged and normalized.
//
// Scores are mathematically identical to Run's; because floating-point
// addition order differs across shards, results can deviate from the
// serial engine by rounding error (~1e-15 per accumulation). The
// differential test bounds this at 1e-9.
func RunParallel(g *clickgraph.Graph, cfg Config, workers int) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return Run(g, cfg)
	}
	nq, na := g.NumQueries(), g.NumAds()

	qNbr := make([][]int, nq)
	aNbr := make([][]int, na)
	var qW, aW [][]float64
	for q := 0; q < nq; q++ {
		qNbr[q], _ = g.AdsOf(q)
	}
	for a := 0; a < na; a++ {
		aNbr[a], _ = g.QueriesOf(a)
	}
	if cfg.Variant == Weighted {
		model := newTransitionModel(g, cfg.Channel, cfg.DisableSpread)
		qW = make([][]float64, nq)
		aW = make([][]float64, na)
		for q := 0; q < nq; q++ {
			qNbr[q], qW[q] = model.queryRow(q)
		}
		for a := 0; a < na; a++ {
			aNbr[a], aW[a] = model.adRow(a)
		}
	}
	var evQ, evA *evidenceTable
	if cfg.Variant != Simple {
		evQ = newEvidenceTable(aNbr, cfg.EvidenceForm, cfg.StrictEvidence)
		evA = newEvidenceTable(qNbr, cfg.EvidenceForm, cfg.StrictEvidence)
	}

	prevQ := sparse.NewPairTable(0)
	prevA := sparse.NewPairTable(0)
	var curQ, curA *sparse.PairTable
	iters := 0
	converged := false
	for it := 0; it < cfg.Iterations; it++ {
		switch cfg.Variant {
		case Weighted:
			curQ = parallelWeightedPass(prevA, qNbr, aNbr, qW, evQ, cfg.C1, workers)
			curA = parallelWeightedPass(prevQ, aNbr, qNbr, aW, evA, cfg.C2, workers)
		default:
			curQ = parallelSimplePass(prevA, qNbr, aNbr, cfg.C1, workers)
			curA = parallelSimplePass(prevQ, aNbr, qNbr, cfg.C2, workers)
		}
		if cfg.PruneEpsilon > 0 {
			curQ.Prune(cfg.PruneEpsilon)
			curA.Prune(cfg.PruneEpsilon)
		}
		iters = it + 1
		if cfg.Tolerance > 0 &&
			curQ.MaxAbsDiff(prevQ) < cfg.Tolerance &&
			curA.MaxAbsDiff(prevA) < cfg.Tolerance {
			prevQ, prevA = curQ, curA
			converged = true
			break
		}
		prevQ, prevA = curQ, curA
	}
	if cfg.Variant == Evidence {
		applyEvidence(prevQ, evQ)
		applyEvidence(prevA, evA)
	}
	return &Result{
		Graph:       g,
		Config:      cfg,
		QueryScores: prevQ,
		AdScores:    prevA,
		Iterations:  iters,
		Converged:   converged,
	}, nil
}

// pairSlice materializes a table's pairs for sharding.
type pairEntry struct {
	i, j int
	v    float64
}

func collectPairs(t *sparse.PairTable) []pairEntry {
	out := make([]pairEntry, 0, t.Len())
	t.Range(func(i, j int, v float64) bool {
		out = append(out, pairEntry{i, j, v})
		return true
	})
	return out
}

// mergeInto sums src into dst.
func mergeInto(dst, src *sparse.PairTable) {
	src.Range(func(i, j int, v float64) bool {
		dst.Add(i, j, v)
		return true
	})
}

// parallelSimplePass mirrors simplePass with the two scatter loops (the
// diagonal scatter over opposite nodes and the stored-pair scatter)
// sharded across workers.
func parallelSimplePass(opp *sparse.PairTable, thisNbr, oppNbr [][]int, c float64, workers int) *sparse.PairTable {
	pairs := collectPairs(opp)
	shards := make([]*sparse.PairTable, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			acc := sparse.NewPairTable(len(pairs)/workers + 16)
			for o := w; o < len(oppNbr); o += workers {
				nbrs := oppNbr[o]
				for x := 0; x < len(nbrs); x++ {
					for y := x + 1; y < len(nbrs); y++ {
						acc.Add(nbrs[x], nbrs[y], 1)
					}
				}
			}
			for p := w; p < len(pairs); p += workers {
				e := pairs[p]
				for _, q := range oppNbr[e.i] {
					for _, r := range oppNbr[e.j] {
						acc.Add(q, r, e.v)
					}
				}
			}
			shards[w] = acc
		}(w)
	}
	wg.Wait()
	acc := shards[0]
	for _, s := range shards[1:] {
		mergeInto(acc, s)
	}
	out := sparse.NewPairTable(acc.Len())
	acc.Range(func(x, y int, t float64) bool {
		dx, dy := len(thisNbr[x]), len(thisNbr[y])
		if dx > 0 && dy > 0 {
			if s := c * t / float64(dx*dy); s != 0 {
				out.Set(x, y, s)
			}
		}
		return true
	})
	return out
}

// parallelWeightedPass mirrors weightedPass with sharded scatter.
func parallelWeightedPass(opp *sparse.PairTable, thisNbr, oppNbr [][]int, w [][]float64, ev *evidenceTable, c float64, workers int) *sparse.PairTable {
	revW := make([][]float64, len(oppNbr))
	pos := make([]int, len(oppNbr))
	for i := range revW {
		revW[i] = make([]float64, len(oppNbr[i]))
	}
	for x, nbrs := range thisNbr {
		for k, o := range nbrs {
			revW[o][pos[o]] = w[x][k]
			pos[o]++
		}
	}
	pairs := collectPairs(opp)
	shards := make([]*sparse.PairTable, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			acc := sparse.NewPairTable(len(pairs)/workers + 16)
			for o := wk; o < len(oppNbr); o += workers {
				nbrs := oppNbr[o]
				fw := revW[o]
				for x := 0; x < len(nbrs); x++ {
					if fw[x] == 0 {
						continue
					}
					for y := x + 1; y < len(nbrs); y++ {
						acc.Add(nbrs[x], nbrs[y], fw[x]*fw[y])
					}
				}
			}
			for p := wk; p < len(pairs); p += workers {
				e := pairs[p]
				wi, wj := revW[e.i], revW[e.j]
				for xi, q := range oppNbr[e.i] {
					f := wi[xi] * e.v
					if f == 0 {
						continue
					}
					for yj, r := range oppNbr[e.j] {
						if q != r {
							acc.Add(q, r, f*wj[yj])
						}
					}
				}
			}
			shards[wk] = acc
		}(wk)
	}
	wg.Wait()
	acc := shards[0]
	for _, s := range shards[1:] {
		mergeInto(acc, s)
	}
	out := sparse.NewPairTable(acc.Len())
	acc.Range(func(x, y int, t float64) bool {
		if e := ev.score(x, y); e > 0 {
			if s := e * c * t; s != 0 {
				out.Set(x, y, s)
			}
		}
		return true
	})
	return out
}
