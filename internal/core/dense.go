package core

import (
	"simrankpp/internal/clickgraph"
	"simrankpp/internal/sparse"
)

// RunDense computes the configured similarity with dense n×n score
// matrices per side. It is exact (PruneEpsilon is ignored) and intended
// for small graphs: memory is O(NumQueries² + NumAds²).
func RunDense(g *clickgraph.Graph, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nq, na := g.NumQueries(), g.NumAds()
	prevQ, curQ := identity(nq), identity(nq)
	prevA, curA := identity(na), identity(na)

	// Neighbor rows. For Simple/Evidence the walk is uniform over
	// neighbors; for Weighted each neighbor carries its W factor.
	qNbr := make([][]int, nq)
	aNbr := make([][]int, na)
	var qW, aW [][]float64
	for q := 0; q < nq; q++ {
		qNbr[q], _ = g.AdsOf(q)
	}
	for a := 0; a < na; a++ {
		aNbr[a], _ = g.QueriesOf(a)
	}
	var evQ, evA []float64
	if cfg.Variant == Weighted {
		model := newTransitionModel(g, cfg.Channel, cfg.DisableSpread)
		qW = make([][]float64, nq)
		aW = make([][]float64, na)
		for q := 0; q < nq; q++ {
			qNbr[q], qW[q] = model.queryRow(q)
		}
		for a := 0; a < na; a++ {
			aNbr[a], aW[a] = model.adRow(a)
		}
	}
	if cfg.Variant == Weighted || cfg.Variant == Evidence {
		evQ = evidenceMatrix(g, cfg.EvidenceForm, clickgraph.QuerySide, cfg.StrictEvidence)
		evA = evidenceMatrix(g, cfg.EvidenceForm, clickgraph.AdSide, cfg.StrictEvidence)
	}

	iters := 0
	converged := false
	for it := 0; it < cfg.Iterations; it++ {
		var deltaQ, deltaA float64
		switch cfg.Variant {
		case Weighted:
			deltaQ = denseWeightedPass(curQ, prevA, qNbr, qW, evQ, cfg.C1, nq, na)
			deltaA = denseWeightedPass(curA, prevQ, aNbr, aW, evA, cfg.C2, na, nq)
		default:
			deltaQ = denseSimplePass(curQ, prevA, qNbr, cfg.C1, nq, na)
			deltaA = denseSimplePass(curA, prevQ, aNbr, cfg.C2, na, nq)
		}
		prevQ, curQ = curQ, prevQ
		prevA, curA = curA, prevA
		iters = it + 1
		if cfg.Tolerance > 0 && deltaQ < cfg.Tolerance && deltaA < cfg.Tolerance {
			converged = true
			break
		}
	}
	// prev* now hold the latest iteration.
	if cfg.Variant == Evidence {
		hadamard(prevQ, evQ)
		hadamard(prevA, evA)
		setDiag(prevQ, nq)
		setDiag(prevA, na)
	}
	return &Result{
		Graph:       g,
		Config:      cfg,
		QueryScores: denseToTable(prevQ, nq),
		AdScores:    denseToTable(prevA, na),
		Iterations:  iters,
		Converged:   converged,
	}, nil
}

// denseSimplePass writes one plain-SimRank iteration into cur from the
// other side's prev matrix and returns the largest absolute change.
// cur is n×n for this side; prev is m×m for the opposite side; nbr maps
// this side's nodes to their opposite-side neighbors.
func denseSimplePass(cur, prev []float64, nbr [][]int, c float64, n, m int) float64 {
	maxDelta := 0.0
	for x := 0; x < n; x++ {
		cur[x*n+x] = 1
		ex := nbr[x]
		for y := x + 1; y < n; y++ {
			ey := nbr[y]
			var v float64
			if len(ex) > 0 && len(ey) > 0 {
				t := 0.0
				for _, i := range ex {
					row := prev[i*m : (i+1)*m]
					for _, j := range ey {
						t += row[j]
					}
				}
				v = c * t / float64(len(ex)*len(ey))
			}
			if d := abs(v - cur[x*n+y]); d > maxDelta {
				maxDelta = d
			}
			cur[x*n+y] = v
			cur[y*n+x] = v
		}
	}
	return maxDelta
}

// denseWeightedPass writes one weighted-SimRank iteration into cur and
// returns the largest absolute change. w holds the per-neighbor walk
// factors W(x, i); ev the evidence matrix for this side.
func denseWeightedPass(cur, prev []float64, nbr [][]int, w [][]float64, ev []float64, c float64, n, m int) float64 {
	maxDelta := 0.0
	for x := 0; x < n; x++ {
		cur[x*n+x] = 1
		ex, wx := nbr[x], w[x]
		for y := x + 1; y < n; y++ {
			ey, wy := nbr[y], w[y]
			t := 0.0
			for xi, i := range ex {
				row := prev[i*m : (i+1)*m]
				wxi := wx[xi]
				if wxi == 0 {
					continue
				}
				for yj, j := range ey {
					t += wxi * wy[yj] * row[j]
				}
			}
			v := ev[x*n+y] * c * t
			if d := abs(v - cur[x*n+y]); d > maxDelta {
				maxDelta = d
			}
			cur[x*n+y] = v
			cur[y*n+x] = v
		}
	}
	return maxDelta
}

// evidenceMatrix returns the n×n evidence multipliers for one side of g
// (EvidenceMultiplier semantics: pass-through 1 for pairs without common
// neighbors unless strict).
func evidenceMatrix(g *clickgraph.Graph, form EvidenceForm, side clickgraph.Side, strict bool) []float64 {
	var n int
	if side == clickgraph.QuerySide {
		n = g.NumQueries()
	} else {
		n = g.NumAds()
	}
	ev := make([]float64, n*n)
	// Count common neighbors by scattering through the opposite side.
	counts := make([]int, n*n)
	var m int
	if side == clickgraph.QuerySide {
		m = g.NumAds()
	} else {
		m = g.NumQueries()
	}
	for o := 0; o < m; o++ {
		var nbrs []int
		if side == clickgraph.QuerySide {
			nbrs, _ = g.QueriesOf(o)
		} else {
			nbrs, _ = g.AdsOf(o)
		}
		for x := 0; x < len(nbrs); x++ {
			for y := x + 1; y < len(nbrs); y++ {
				counts[nbrs[x]*n+nbrs[y]]++
				counts[nbrs[y]*n+nbrs[x]]++
			}
		}
	}
	for i, c := range counts {
		ev[i] = EvidenceMultiplier(form, c, strict)
	}
	for i := 0; i < n; i++ {
		ev[i*n+i] = 1
	}
	return ev
}

func identity(n int) []float64 {
	m := make([]float64, n*n)
	for i := 0; i < n; i++ {
		m[i*n+i] = 1
	}
	return m
}

func hadamard(dst, f []float64) {
	for i := range dst {
		dst[i] *= f[i]
	}
}

func setDiag(m []float64, n int) {
	for i := 0; i < n; i++ {
		m[i*n+i] = 1
	}
}

func denseToTable(m []float64, n int) *sparse.PairTable {
	t := sparse.NewPairTable(0)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if v := m[i*n+j]; v != 0 {
				t.Set(i, j, v)
			}
		}
	}
	return t
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
