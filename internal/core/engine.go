package core

import (
	"slices"
	"sort"
	"sync"
	"time"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/sparse"
)

// Run computes the configured similarity with flat sparse pair frontiers.
// With PruneEpsilon == 0 it is exact and agrees with RunDense (the test
// suite checks this differentially); with a positive epsilon, scores below
// the threshold are dropped between iterations, bounding memory on large
// graphs at the cost of exactness.
//
// Each iteration is computed output-row-major: for every node x of one
// side, gather u(j) = Σ_{i∈E(x)} s(i, j) over the opposite side into a
// dense accumulator, scatter u over each touched node's neighbor row into
// a dense row accumulator, and harvest the normalized row straight into a
// sparse.PairFrontier (per-row sorted storage, no hashing anywhere). Work
// stays proportional to the nonzero structure — the sparsity the click
// graph actually has — but every contribution costs an array add instead
// of the hash probe the map-based engine paid, and the frontiers ping-pong
// across iterations so steady-state passes barely allocate.
func Run(g *clickgraph.Graph, cfg Config) (*Result, error) {
	return runEngine(g, cfg, 1, nil, nil)
}

// passInputs holds the per-run immutable inputs of the iteration passes:
// neighbor rows, weighted-walk factor rows (reversed onto the opposite
// side once per run, not once per pass), and evidence tables.
type passInputs struct {
	qNbr, aNbr   [][]int
	qW, aW       [][]float64 // Weighted only: forward factor rows
	revWQ, revWA [][]float64 // Weighted only: reversed factor rows
	evQ, evA     *evidenceTable
}

func newPassInputs(g *clickgraph.Graph, cfg Config) *passInputs {
	nq, na := g.NumQueries(), g.NumAds()
	in := &passInputs{
		qNbr: make([][]int, nq),
		aNbr: make([][]int, na),
	}
	for q := 0; q < nq; q++ {
		in.qNbr[q], _ = g.AdsOf(q)
	}
	for a := 0; a < na; a++ {
		in.aNbr[a], _ = g.QueriesOf(a)
	}
	if cfg.Variant == Weighted {
		model := newTransitionModel(g, cfg.Channel, cfg.DisableSpread)
		qW := make([][]float64, nq)
		aW := make([][]float64, na)
		for q := 0; q < nq; q++ {
			in.qNbr[q], qW[q] = model.queryRow(q)
		}
		for a := 0; a < na; a++ {
			in.aNbr[a], aW[a] = model.adRow(a)
		}
		in.qW, in.aW = qW, aW
		in.revWQ = reverseFactors(in.qNbr, in.aNbr, qW)
		in.revWA = reverseFactors(in.aNbr, in.qNbr, aW)
	}
	if cfg.Variant != Simple {
		in.evQ = newEvidenceTable(nq, in.aNbr, cfg.EvidenceForm, cfg.StrictEvidence)
		in.evA = newEvidenceTable(na, in.qNbr, cfg.EvidenceForm, cfg.StrictEvidence)
	}
	return in
}

// reverseFactors builds revW[o][k] = W(x, o) where x is the k-th neighbor
// of opposite node o: the walk factor attached to the (o → x) direction,
// looked up from this side's factor rows. thisNbr rows and oppNbr rows are
// both ascending, so x appears in oppNbr[o] at the next unfilled position.
func reverseFactors(thisNbr, oppNbr [][]int, w [][]float64) [][]float64 {
	revW := make([][]float64, len(oppNbr))
	pos := make([]int, len(oppNbr))
	for i := range revW {
		revW[i] = make([]float64, len(oppNbr[i]))
	}
	for x, nbrs := range thisNbr {
		for k, o := range nbrs {
			revW[o][pos[o]] = w[x][k]
			pos[o]++
		}
	}
	return revW
}

// engineArena is the reusable allocation state of one engine run:
// ping-pong frontiers, symmetric adjacencies, dense accumulators, and the
// change bitsets. A fresh runEngine call with a nil arena allocates its
// own; the shard scheduler keeps one arena per pool worker and re-runs it
// across shards, so every shard after a worker's first reuses the
// previous shard's capacity instead of reallocating — and since the
// structures are sized to the shard being run, a worker's footprint is
// proportional to the largest shard it sees, never the whole graph.
type engineArena struct {
	prevQ, curQ, prevA, curA *sparse.PairFrontier
	symQ, symA               *sparse.SymAdj
	spas                     []*spa
	chgQ, chgA               *sparse.Bitset
}

// frontier returns *slot resized to rows, allocating on first use.
func arenaFrontier(slot **sparse.PairFrontier, rows int) *sparse.PairFrontier {
	if *slot == nil {
		*slot = sparse.NewPairFrontier(rows)
	} else {
		(*slot).Resize(rows)
	}
	return *slot
}

func arenaBitset(slot **sparse.Bitset, n int) *sparse.Bitset {
	if *slot == nil {
		*slot = sparse.NewBitset(n)
	} else {
		(*slot).Resize(n)
	}
	return *slot
}

// ensureSPAs returns workers accumulators with dense arrays of at least n
// cells, growing the arena's pool as needed. Reused spa arrays are already
// zero: the kernels restore every touched cell to zero as they harvest.
func (ar *engineArena) ensureSPAs(workers, n int) []*spa {
	for len(ar.spas) < workers {
		ar.spas = append(ar.spas, &spa{u: make([]float64, n), t: make([]float64, n)})
	}
	spas := ar.spas[:workers]
	for _, sp := range spas {
		if len(sp.u) < n {
			sp.u = make([]float64, n)
			sp.t = make([]float64, n)
		}
	}
	return spas
}

// runEngine is the shared iteration loop behind Run (workers == 1),
// RunParallel, and the per-shard engines of RunSharded. Each side
// ping-pongs two frontiers: cur is reset, filled row by row from the
// opposite side's prev (expanded to a symmetric adjacency once per
// iteration), and swapped in; prev's buckets become the next iteration's
// scratch. ar supplies reusable allocation state (nil for a standalone
// run); warm, when non-nil, seeds the starting frontiers from a previous
// generation's scores instead of the identity start (see warmstart.go).
//
// Iteration is change-tracked: the convergence merge-walk also marks which
// nodes' scores moved (MaxAbsDiffChanged), and an output row whose
// neighbors all went unmarked is copied forward from the previous output
// instead of recomputed. With the default exact-equality tracking the copy
// is bit-identical to recomputation — SimRank converges row by row, so
// late iterations approach the cost of only their still-moving rows. See
// Config.DeltaSkipTolerance / Config.DisableDeltaSkip.
func runEngine(g *clickgraph.Graph, cfg Config, workers int, ar *engineArena, warm warmSeed) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ar == nil {
		ar = &engineArena{}
	}
	in := newPassInputs(g, cfg)
	nq, na := g.NumQueries(), g.NumAds()

	prevQ, curQ := arenaFrontier(&ar.prevQ, nq), arenaFrontier(&ar.curQ, nq)
	prevA, curA := arenaFrontier(&ar.prevA, na), arenaFrontier(&ar.curA, na)
	if warm != nil {
		warm(prevQ, prevA)
		if cfg.Variant == Evidence {
			// Stored Evidence scores are iteration-space scores × evidence;
			// map them back so the seed lives where the iteration does.
			unapplyEvidence(prevQ, in.evQ)
			unapplyEvidence(prevA, in.evA)
		}
		if cfg.PruneEpsilon > 0 {
			prevQ.Prune(cfg.PruneEpsilon)
			prevA.Prune(cfg.PruneEpsilon)
		}
	}
	prevQ.Compact() // read-ready: passes and MaxAbsDiff read prev
	prevA.Compact()
	if ar.symQ == nil {
		ar.symQ, ar.symA = &sparse.SymAdj{}, &sparse.SymAdj{}
	}
	symQ, symA := ar.symQ, ar.symA
	side := nq
	if na > side {
		side = na
	}
	spas := ar.ensureSPAs(workers, side)

	deltaSkip := !cfg.DisableDeltaSkip
	var chgQ, chgA *sparse.Bitset // nodes whose scores moved last iteration
	if deltaSkip {
		chgQ, chgA = arenaBitset(&ar.chgQ, nq), arenaBitset(&ar.chgA, na)
	}
	// skipQ/skipA gate row skipping in the passes; nil (the first
	// iteration, or always when delta skip is disabled) recomputes
	// everything.
	var skipQ, skipA *sparse.Bitset

	iters := 0
	converged := false
	stats := make([]IterationStat, 0, cfg.Iterations)
	for it := 0; it < cfg.Iterations; it++ {
		start := time.Now()
		// A side whose change bitset came back empty needs no re-expansion:
		// with every opposite-side input row unmarked, the passes below copy
		// forward every output row that has neighbors and recompute only
		// empty rows (whose kernels return before touching the adjacency),
		// so the symmetric expansion would never be read — and the stale one
		// from the last changed iteration stays value-identical anyway.
		// Drained workloads used to pay both ExpandSymmetric calls every
		// iteration for rows that were 100% copied forward.
		if skipA == nil || skipA.Count() > 0 {
			symA = prevA.ExpandSymmetric(symA)
		}
		if skipQ == nil || skipQ.Count() > 0 {
			symQ = prevQ.ExpandSymmetric(symQ)
		}
		var sq, sa int
		switch cfg.Variant {
		case Weighted:
			sq = weightedPass(symA, in.qNbr, in.aNbr, in.qW, in.revWQ, in.evQ, cfg.C1, curQ, prevQ, skipA, workers, spas)
			sa = weightedPass(symQ, in.aNbr, in.qNbr, in.aW, in.revWA, in.evA, cfg.C2, curA, prevA, skipQ, workers, spas)
		default:
			sq = simplePass(symA, in.qNbr, in.aNbr, cfg.C1, curQ, prevQ, skipA, workers, spas)
			sa = simplePass(symQ, in.aNbr, in.qNbr, cfg.C2, curA, prevA, skipQ, workers, spas)
		}
		if cfg.PruneEpsilon > 0 {
			curQ.Prune(cfg.PruneEpsilon)
			curA.Prune(cfg.PruneEpsilon)
		}
		iters = it + 1
		var diffQ, diffA float64
		if deltaSkip || cfg.Tolerance > 0 {
			if deltaSkip {
				chgQ.Clear()
				chgA.Clear()
			}
			diffQ = curQ.MaxAbsDiffChanged(prevQ, cfg.DeltaSkipTolerance, chgQ)
			diffA = curA.MaxAbsDiffChanged(prevA, cfg.DeltaSkipTolerance, chgA)
		}
		stats = append(stats, IterationStat{
			Duration:         time.Since(start),
			QueryRowsSkipped: sq, QueryRows: nq,
			AdRowsSkipped: sa, AdRows: na,
		})
		prevQ, curQ = curQ, prevQ
		prevA, curA = curA, prevA
		if cfg.Tolerance > 0 && diffQ < cfg.Tolerance && diffA < cfg.Tolerance {
			converged = true
			break
		}
		if deltaSkip {
			skipQ, skipA = chgQ, chgA
		}
	}

	if cfg.Variant == Evidence {
		applyEvidence(prevQ, in.evQ)
		applyEvidence(prevA, in.evA)
	}
	return &Result{
		Graph:       g,
		Config:      cfg,
		QueryScores: prevQ.ToPairTable(),
		AdScores:    prevA.ToPairTable(),
		Iterations:  iters,
		Converged:   converged,
		IterStats:   stats,
	}, nil
}

// harvestDenseCutoff decides how an output row's touched list is put into
// sorted order for the emit (and the evidence merge-walk): when the
// remaining accumulator range (x, n) is at most this many times the
// touched count, the harvest scans the range directly — touched cells come
// out sorted for free and the scan is branch-predictable — otherwise the
// touched list is sorted. Mid-run SimRank rows are dense, so the scan is
// the common case; the sort covers early iterations and stragglers.
const harvestDenseCutoff = 8

// spa is one worker's sparse-accumulator state: dense value arrays with
// touched lists for the gather (u, over the opposite side) and the row
// accumulation (t, over this side), plus the row emit buffers. Arrays are
// sized to the larger side so one spa serves both passes.
type spa struct {
	u    []float64 // gathered opposite-side scores, zeroed via ut
	ut   []int
	t    []float64 // accumulated output row, zeroed via tt
	tt   []int
	rowC []int32
	rowV []float64
}

func newSPAs(workers, n int) []*spa {
	spas := make([]*spa, workers)
	for i := range spas {
		spas[i] = &spa{u: make([]float64, n), t: make([]float64, n)}
	}
	return spas
}

// runRowPass drives kernel over every output row of one side, returning
// how many rows the delta skip copied forward instead of computing. With
// workers > 1 the row space is split into contiguous ranges weighted by
// expected gather work; each worker owns disjoint rows and a private spa,
// so rows are computed and emitted with no locks and no merge phase.
//
// When changed is non-nil it marks the opposite-side nodes whose scores
// moved last iteration; an output row x depends only on the score rows of
// i ∈ thisNbr[x], so if none of them is marked, row x of prev is copied
// into dst — identical to what the kernel would recompute, for free.
func runRowPass(thisNbr [][]int, sym *sparse.SymAdj, dst, prev *sparse.PairFrontier, changed *sparse.Bitset, workers int, spas []*spa, kernel func(sp *spa, x int)) int {
	n := len(thisNbr)
	dst.Reset()
	if workers > n {
		workers = n
	}
	unchanged := func(x int) bool {
		// Rows with no neighbors are always empty and free to recompute;
		// not counting them keeps the skip metrics honest.
		if changed == nil || len(thisNbr[x]) == 0 {
			return false
		}
		for _, i := range thisNbr[x] {
			if changed.Has(i) {
				return false
			}
		}
		return true
	}
	skipped := 0
	if workers <= 1 {
		sp := spas[0]
		for x := 0; x < n; x++ {
			if unchanged(x) {
				dst.CopyRowFrom(prev, x)
				skipped++
				continue
			}
			kernel(sp, x)
		}
	} else {
		weights := make([]int, n)
		var skip []bool // decided once here, read by the workers
		if changed != nil {
			skip = make([]bool, n)
		}
		for x, nbrs := range thisNbr {
			if unchanged(x) {
				skip[x] = true
				weights[x] = 1 // a copy, not a gather
				continue
			}
			w := 1
			for _, i := range nbrs {
				w += 1 + sym.RowNNZ(i)
			}
			weights[x] = w
		}
		bounds := sparse.SplitByWeight(weights, workers)
		skips := make([]int, workers)
		var wg sync.WaitGroup
		for wk := 0; wk < workers; wk++ {
			lo, hi := bounds[wk], bounds[wk+1]
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(sp *spa, wk, lo, hi int) {
				defer wg.Done()
				for x := lo; x < hi; x++ {
					if skip != nil && skip[x] {
						dst.CopyRowFrom(prev, x)
						skips[wk]++
						continue
					}
					kernel(sp, x)
				}
			}(spas[wk], wk, lo, hi)
		}
		wg.Wait()
		for _, s := range skips {
			skipped += s
		}
	}
	dst.Compact() // rows were emitted sorted; this just flips the flag
	return skipped
}

// simplePass computes one plain-SimRank iteration for one side ("this"
// side) from the opposite side's symmetric score adjacency into dst.
// thisNbr maps this side's nodes to opposite-side neighbors; oppNbr the
// reverse.
//
// Row x gathers T(x, y) = Σ_{i∈E(x)} Σ_{j∈E(y)} s(i, j) in two phases:
// u(j) = Σ_{i∈E(x)} s(i, j) (diagonal terms s(i, i) = 1 included), then
// each touched j scatters u(j) to t(p) for its neighbors p ∈ E(j) with
// p > x — T is symmetric, so row x's computation alone yields the full
// sum for every stored pair (x, y), y > x.
func simplePass(sym *sparse.SymAdj, thisNbr, oppNbr [][]int, c float64, dst, prev *sparse.PairFrontier, changed *sparse.Bitset, workers int, spas []*spa) int {
	return runRowPass(thisNbr, sym, dst, prev, changed, workers, spas, func(sp *spa, x int) {
		nbrs := thisNbr[x]
		if len(nbrs) == 0 {
			return
		}
		u, ut := sp.u, sp.ut[:0]
		for _, i := range nbrs {
			if u[i] == 0 {
				ut = append(ut, i)
			}
			u[i]++ // s(i, i) = 1
			lo, hi := sym.RowPtr[i], sym.RowPtr[i+1]
			for p := lo; p < hi; p++ {
				j := int(sym.Col[p])
				if u[j] == 0 {
					ut = append(ut, j)
				}
				u[j] += sym.Val[p]
			}
		}
		t, tt := sp.t, sp.tt[:0]
		for _, j := range ut {
			uj := u[j]
			u[j] = 0
			if uj == 0 {
				continue
			}
			ps := oppNbr[j]
			for _, p := range ps[sort.SearchInts(ps, x+1):] {
				if t[p] == 0 {
					tt = append(tt, p)
				}
				t[p] += uj
			}
		}
		sp.ut = ut
		tt = sortTouched(t, tt, x, len(thisNbr))
		rowC, rowV := sp.rowC[:0], sp.rowV[:0]
		dx := float64(len(nbrs))
		for _, p := range tt {
			tv := t[p]
			t[p] = 0
			if s := c * tv / (dx * float64(len(thisNbr[p]))); s != 0 {
				rowC = append(rowC, int32(p))
				rowV = append(rowV, s)
			}
		}
		sp.tt = tt
		sp.rowC, sp.rowV = rowC, rowV
		dst.SetSortedRow(x, rowC, rowV)
	})
}

// sortTouched puts the row accumulator's touched list into ascending
// order — the order the frontier stores rows in and the evidence
// merge-walk requires. The scatter phase only writes indices in (x, n),
// so when the touched list is dense relative to that range it is
// recollected from a direct scan of t (sorted for free, and
// branch-predictable); sparse lists are sorted instead. Harvest loops
// stay in the kernels so their emit logic compiles to direct calls.
func sortTouched(t []float64, tt []int, x, n int) []int {
	if n-x-1 <= harvestDenseCutoff*len(tt) {
		tt = tt[:0]
		for p := x + 1; p < n; p++ {
			if t[p] != 0 {
				tt = append(tt, p)
			}
		}
		return tt
	}
	sort.Ints(tt)
	return tt
}

// weightedPass computes one weighted-SimRank iteration for one side into
// dst: the same two-phase row gather as simplePass with every
// contribution scaled by the walk factors of the two edges it traverses.
// w holds this side's forward factor rows (aligned with thisNbr) and revW
// the factors reversed onto the opposite side (reverseFactors), both
// built once per run.
//
// Evidence is fused into the harvest: the touched list is sorted (rows
// must be emitted sorted anyway) and merge-walked against the evidence
// table's precomputed multiplier row for x — O(d + k) sequential reads
// instead of k binary-searched lookups each paying the multiplier math.
func weightedPass(sym *sparse.SymAdj, thisNbr, oppNbr [][]int, w, revW [][]float64, ev *evidenceTable, c float64, dst, prev *sparse.PairFrontier, changed *sparse.Bitset, workers int, spas []*spa) int {
	return runRowPass(thisNbr, sym, dst, prev, changed, workers, spas, func(sp *spa, x int) {
		nbrs := thisNbr[x]
		if len(nbrs) == 0 {
			return
		}
		fx := w[x]
		u, ut := sp.u, sp.ut[:0]
		for ki, i := range nbrs {
			fi := fx[ki]
			if fi == 0 {
				continue
			}
			if u[i] == 0 {
				ut = append(ut, i)
			}
			u[i] += fi // s(i, i) = 1
			lo, hi := sym.RowPtr[i], sym.RowPtr[i+1]
			for p := lo; p < hi; p++ {
				j := int(sym.Col[p])
				if u[j] == 0 {
					ut = append(ut, j)
				}
				u[j] += fi * sym.Val[p]
			}
		}
		t, tt := sp.t, sp.tt[:0]
		for _, j := range ut {
			uj := u[j]
			u[j] = 0
			if uj == 0 {
				continue
			}
			ps := oppNbr[j]
			fw := revW[j]
			for idx := sort.SearchInts(ps, x+1); idx < len(ps); idx++ {
				g := fw[idx] * uj
				if g == 0 {
					continue
				}
				p := ps[idx]
				if t[p] == 0 {
					tt = append(tt, p)
				}
				t[p] += g
			}
		}
		sp.ut = ut
		tt = sortTouched(t, tt, x, len(thisNbr))
		rowC, rowV := sp.rowC[:0], sp.rowV[:0]
		evC, evV := ev.mult.Row(x)
		def := ev.def
		k := 0 // merge-walk cursor into the evidence row; p ascends with it
		for _, p := range tt {
			tv := t[p]
			t[p] = 0
			for k < len(evC) && int(evC[k]) < p {
				k++
			}
			e := def
			if k < len(evC) && int(evC[k]) == p {
				e = evV[k]
			}
			if e > 0 {
				if s := e * c * tv; s != 0 {
					rowC = append(rowC, int32(p))
					rowV = append(rowV, s)
				}
			}
		}
		sp.tt = tt
		sp.rowC, sp.rowV = rowC, rowV
		dst.SetSortedRow(x, rowC, rowV)
	})
}

// evidenceTable holds one side's evidence multipliers, fully expanded into
// a symmetric CSR (sparse.SymAdj) whose values are the precomputed
// EvidenceMultiplier of each pair's common-neighbor count. The exp/shift
// math of Equation 7.3/7.4 is paid once per pair at build; the weighted
// harvest merge-walks a row instead of probing a table, and pairs with no
// common neighbors fall through to def (1 pass-through, or 0 under
// Config.StrictEvidence).
type evidenceTable struct {
	mult *sparse.SymAdj
	def  float64
}

// newEvidenceTable counts common neighbors for every pair on one side (n
// nodes) and maps the counts to multipliers. oppNbr maps each
// opposite-side node to this side's adjacent nodes (ascending), so every
// pair (nbrs[x], nbrs[y]), x < y, is one co-occurrence event already
// bucketed under its smaller index. The build is a sorted per-row scatter:
// size each bucket, scatter the events flat, then sort + run-length count
// each row — no per-pair binary searches and no tail-fold churn.
func newEvidenceTable(n int, oppNbr [][]int, form EvidenceForm, strict bool) *evidenceTable {
	start := make([]int, n+1)
	for _, nbrs := range oppNbr {
		for k := range nbrs {
			start[nbrs[k]+1] += len(nbrs) - k - 1
		}
	}
	for i := 0; i < n; i++ {
		start[i+1] += start[i]
	}
	events := make([]int32, start[n])
	next := make([]int, n)
	copy(next, start[:n])
	for _, nbrs := range oppNbr {
		for x := 0; x+1 < len(nbrs); x++ {
			p := next[nbrs[x]]
			for _, y := range nbrs[x+1:] {
				events[p] = int32(y)
				p++
			}
			next[nbrs[x]] = p
		}
	}
	f := sparse.NewPairFrontier(n)
	var rowV []float64
	for r := 0; r < n; r++ {
		row := events[start[r]:start[r+1]]
		if len(row) == 0 {
			continue
		}
		slices.Sort(row)
		rowV = rowV[:0]
		w := 0
		for i := 0; i < len(row); {
			j := i + 1
			for j < len(row) && row[j] == row[i] {
				j++
			}
			row[w] = row[i]
			rowV = append(rowV, EvidenceScore(form, j-i))
			w++
			i = j
		}
		f.SetSortedRow(r, row[:w], rowV)
	}
	f.Compact()
	def := 1.0
	if strict {
		def = 0
	}
	return &evidenceTable{mult: f.ExpandSymmetric(nil), def: def}
}

// score returns the multiplier for the pair (x, y): a binary search of
// x's symmetric multiplier row. The hot path (weightedPass) does not call
// it — it merge-walks the row — but the scatter/map baselines and
// applyEvidence do.
func (e *evidenceTable) score(x, y int) float64 {
	cols, vals := e.mult.Row(x)
	target := int32(y)
	lo, hi := 0, len(cols)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cols[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(cols) && cols[lo] == target {
		return vals[lo]
	}
	return e.def
}

// applyEvidence multiplies every stored pair by its evidence in place,
// dropping pairs whose evidence is zero (no common neighbors).
func applyEvidence(f *sparse.PairFrontier, ev *evidenceTable) {
	f.Map(func(i, j int, v float64) (float64, bool) {
		v *= ev.score(i, j)
		return v, v != 0
	})
}
