package core

import (
	"sort"
	"sync"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/sparse"
)

// Run computes the configured similarity with flat sparse pair frontiers.
// With PruneEpsilon == 0 it is exact and agrees with RunDense (the test
// suite checks this differentially); with a positive epsilon, scores below
// the threshold are dropped between iterations, bounding memory on large
// graphs at the cost of exactness.
//
// Each iteration is computed output-row-major: for every node x of one
// side, gather u(j) = Σ_{i∈E(x)} s(i, j) over the opposite side into a
// dense accumulator, scatter u over each touched node's neighbor row into
// a dense row accumulator, and harvest the normalized row straight into a
// sparse.PairFrontier (per-row sorted storage, no hashing anywhere). Work
// stays proportional to the nonzero structure — the sparsity the click
// graph actually has — but every contribution costs an array add instead
// of the hash probe the map-based engine paid, and the frontiers ping-pong
// across iterations so steady-state passes barely allocate.
func Run(g *clickgraph.Graph, cfg Config) (*Result, error) {
	return runEngine(g, cfg, 1)
}

// passInputs holds the per-run immutable inputs of the iteration passes:
// neighbor rows, weighted-walk factor rows (reversed onto the opposite
// side once per run, not once per pass), and evidence tables.
type passInputs struct {
	qNbr, aNbr   [][]int
	qW, aW       [][]float64 // Weighted only: forward factor rows
	revWQ, revWA [][]float64 // Weighted only: reversed factor rows
	evQ, evA     *evidenceTable
}

func newPassInputs(g *clickgraph.Graph, cfg Config) *passInputs {
	nq, na := g.NumQueries(), g.NumAds()
	in := &passInputs{
		qNbr: make([][]int, nq),
		aNbr: make([][]int, na),
	}
	for q := 0; q < nq; q++ {
		in.qNbr[q], _ = g.AdsOf(q)
	}
	for a := 0; a < na; a++ {
		in.aNbr[a], _ = g.QueriesOf(a)
	}
	if cfg.Variant == Weighted {
		model := newTransitionModel(g, cfg.Channel, cfg.DisableSpread)
		qW := make([][]float64, nq)
		aW := make([][]float64, na)
		for q := 0; q < nq; q++ {
			in.qNbr[q], qW[q] = model.queryRow(q)
		}
		for a := 0; a < na; a++ {
			in.aNbr[a], aW[a] = model.adRow(a)
		}
		in.qW, in.aW = qW, aW
		in.revWQ = reverseFactors(in.qNbr, in.aNbr, qW)
		in.revWA = reverseFactors(in.aNbr, in.qNbr, aW)
	}
	if cfg.Variant != Simple {
		in.evQ = newEvidenceTable(nq, in.aNbr, cfg.EvidenceForm, cfg.StrictEvidence)
		in.evA = newEvidenceTable(na, in.qNbr, cfg.EvidenceForm, cfg.StrictEvidence)
	}
	return in
}

// reverseFactors builds revW[o][k] = W(x, o) where x is the k-th neighbor
// of opposite node o: the walk factor attached to the (o → x) direction,
// looked up from this side's factor rows. thisNbr rows and oppNbr rows are
// both ascending, so x appears in oppNbr[o] at the next unfilled position.
func reverseFactors(thisNbr, oppNbr [][]int, w [][]float64) [][]float64 {
	revW := make([][]float64, len(oppNbr))
	pos := make([]int, len(oppNbr))
	for i := range revW {
		revW[i] = make([]float64, len(oppNbr[i]))
	}
	for x, nbrs := range thisNbr {
		for k, o := range nbrs {
			revW[o][pos[o]] = w[x][k]
			pos[o]++
		}
	}
	return revW
}

// runEngine is the shared iteration loop behind Run (workers == 1) and
// RunParallel. Each side ping-pongs two frontiers: cur is reset, filled
// row by row from the opposite side's prev (expanded to a symmetric
// adjacency once per iteration), and swapped in; prev's buckets become
// the next iteration's scratch.
func runEngine(g *clickgraph.Graph, cfg Config, workers int) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	in := newPassInputs(g, cfg)
	nq, na := g.NumQueries(), g.NumAds()

	prevQ, curQ := sparse.NewPairFrontier(nq), sparse.NewPairFrontier(nq)
	prevA, curA := sparse.NewPairFrontier(na), sparse.NewPairFrontier(na)
	prevQ.Compact() // empty but read-ready: passes and MaxAbsDiff read prev
	prevA.Compact()
	symQ, symA := &sparse.SymAdj{}, &sparse.SymAdj{}
	side := nq
	if na > side {
		side = na
	}
	spas := newSPAs(workers, side)

	iters := 0
	converged := false
	for it := 0; it < cfg.Iterations; it++ {
		symA = prevA.ExpandSymmetric(symA)
		symQ = prevQ.ExpandSymmetric(symQ)
		switch cfg.Variant {
		case Weighted:
			weightedPass(symA, in.qNbr, in.aNbr, in.qW, in.revWQ, in.evQ, cfg.C1, curQ, workers, spas)
			weightedPass(symQ, in.aNbr, in.qNbr, in.aW, in.revWA, in.evA, cfg.C2, curA, workers, spas)
		default:
			simplePass(symA, in.qNbr, in.aNbr, cfg.C1, curQ, workers, spas)
			simplePass(symQ, in.aNbr, in.qNbr, cfg.C2, curA, workers, spas)
		}
		if cfg.PruneEpsilon > 0 {
			curQ.Prune(cfg.PruneEpsilon)
			curA.Prune(cfg.PruneEpsilon)
		}
		iters = it + 1
		done := cfg.Tolerance > 0 &&
			curQ.MaxAbsDiff(prevQ) < cfg.Tolerance &&
			curA.MaxAbsDiff(prevA) < cfg.Tolerance
		prevQ, curQ = curQ, prevQ
		prevA, curA = curA, prevA
		if done {
			converged = true
			break
		}
	}

	if cfg.Variant == Evidence {
		applyEvidence(prevQ, in.evQ)
		applyEvidence(prevA, in.evA)
	}
	return &Result{
		Graph:       g,
		Config:      cfg,
		QueryScores: prevQ.ToPairTable(),
		AdScores:    prevA.ToPairTable(),
		Iterations:  iters,
		Converged:   converged,
	}, nil
}

// spa is one worker's sparse-accumulator state: dense value arrays with
// touched lists for the gather (u, over the opposite side) and the row
// accumulation (t, over this side), plus the row emit buffers. Arrays are
// sized to the larger side so one spa serves both passes.
type spa struct {
	u    []float64 // gathered opposite-side scores, zeroed via ut
	ut   []int
	t    []float64 // accumulated output row, zeroed via tt
	tt   []int
	rowC []int32
	rowV []float64
}

func newSPAs(workers, n int) []*spa {
	spas := make([]*spa, workers)
	for i := range spas {
		spas[i] = &spa{u: make([]float64, n), t: make([]float64, n)}
	}
	return spas
}

// runRowPass drives kernel over every output row of one side. With
// workers > 1 the row space is split into contiguous ranges weighted by
// expected gather work; each worker owns disjoint rows and a private spa,
// so rows are computed and emitted with no locks and no merge phase.
func runRowPass(thisNbr [][]int, sym *sparse.SymAdj, dst *sparse.PairFrontier, workers int, spas []*spa, kernel func(sp *spa, x int)) {
	n := len(thisNbr)
	dst.Reset()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		sp := spas[0]
		for x := 0; x < n; x++ {
			kernel(sp, x)
		}
	} else {
		weights := make([]int, n)
		for x, nbrs := range thisNbr {
			w := 1
			for _, i := range nbrs {
				w += 1 + sym.RowNNZ(i)
			}
			weights[x] = w
		}
		bounds := sparse.SplitByWeight(weights, workers)
		var wg sync.WaitGroup
		for wk := 0; wk < workers; wk++ {
			lo, hi := bounds[wk], bounds[wk+1]
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(sp *spa, lo, hi int) {
				defer wg.Done()
				for x := lo; x < hi; x++ {
					kernel(sp, x)
				}
			}(spas[wk], lo, hi)
		}
		wg.Wait()
	}
	dst.Compact() // rows were emitted sorted; this just flips the flag
}

// simplePass computes one plain-SimRank iteration for one side ("this"
// side) from the opposite side's symmetric score adjacency into dst.
// thisNbr maps this side's nodes to opposite-side neighbors; oppNbr the
// reverse.
//
// Row x gathers T(x, y) = Σ_{i∈E(x)} Σ_{j∈E(y)} s(i, j) in two phases:
// u(j) = Σ_{i∈E(x)} s(i, j) (diagonal terms s(i, i) = 1 included), then
// each touched j scatters u(j) to t(p) for its neighbors p ∈ E(j) with
// p > x — T is symmetric, so row x's computation alone yields the full
// sum for every stored pair (x, y), y > x.
func simplePass(sym *sparse.SymAdj, thisNbr, oppNbr [][]int, c float64, dst *sparse.PairFrontier, workers int, spas []*spa) {
	runRowPass(thisNbr, sym, dst, workers, spas, func(sp *spa, x int) {
		nbrs := thisNbr[x]
		if len(nbrs) == 0 {
			return
		}
		u, ut := sp.u, sp.ut[:0]
		for _, i := range nbrs {
			if u[i] == 0 {
				ut = append(ut, i)
			}
			u[i]++ // s(i, i) = 1
			lo, hi := sym.RowPtr[i], sym.RowPtr[i+1]
			for p := lo; p < hi; p++ {
				j := int(sym.Col[p])
				if u[j] == 0 {
					ut = append(ut, j)
				}
				u[j] += sym.Val[p]
			}
		}
		t, tt := sp.t, sp.tt[:0]
		for _, j := range ut {
			uj := u[j]
			u[j] = 0
			if uj == 0 {
				continue
			}
			ps := oppNbr[j]
			for _, p := range ps[sort.SearchInts(ps, x+1):] {
				if t[p] == 0 {
					tt = append(tt, p)
				}
				t[p] += uj
			}
		}
		sp.ut = ut
		rowC, rowV := sp.rowC[:0], sp.rowV[:0]
		dx := float64(len(nbrs))
		for _, p := range tt {
			tv := t[p]
			t[p] = 0
			if s := c * tv / (dx * float64(len(thisNbr[p]))); s != 0 {
				rowC = append(rowC, int32(p))
				rowV = append(rowV, s)
			}
		}
		sp.tt = tt
		sp.rowC, sp.rowV = rowC, rowV
		dst.SetRow(x, rowC, rowV)
	})
}

// weightedPass computes one weighted-SimRank iteration for one side into
// dst: the same two-phase row gather as simplePass with every
// contribution scaled by the walk factors of the two edges it traverses.
// w holds this side's forward factor rows (aligned with thisNbr) and revW
// the factors reversed onto the opposite side (reverseFactors), both
// built once per run.
func weightedPass(sym *sparse.SymAdj, thisNbr, oppNbr [][]int, w, revW [][]float64, ev *evidenceTable, c float64, dst *sparse.PairFrontier, workers int, spas []*spa) {
	runRowPass(thisNbr, sym, dst, workers, spas, func(sp *spa, x int) {
		nbrs := thisNbr[x]
		if len(nbrs) == 0 {
			return
		}
		fx := w[x]
		u, ut := sp.u, sp.ut[:0]
		for ki, i := range nbrs {
			fi := fx[ki]
			if fi == 0 {
				continue
			}
			if u[i] == 0 {
				ut = append(ut, i)
			}
			u[i] += fi // s(i, i) = 1
			lo, hi := sym.RowPtr[i], sym.RowPtr[i+1]
			for p := lo; p < hi; p++ {
				j := int(sym.Col[p])
				if u[j] == 0 {
					ut = append(ut, j)
				}
				u[j] += fi * sym.Val[p]
			}
		}
		t, tt := sp.t, sp.tt[:0]
		for _, j := range ut {
			uj := u[j]
			u[j] = 0
			if uj == 0 {
				continue
			}
			ps := oppNbr[j]
			fw := revW[j]
			for idx := sort.SearchInts(ps, x+1); idx < len(ps); idx++ {
				g := fw[idx] * uj
				if g == 0 {
					continue
				}
				p := ps[idx]
				if t[p] == 0 {
					tt = append(tt, p)
				}
				t[p] += g
			}
		}
		sp.ut = ut
		rowC, rowV := sp.rowC[:0], sp.rowV[:0]
		for _, p := range tt {
			tv := t[p]
			t[p] = 0
			if e := ev.score(x, p); e > 0 {
				if s := e * c * tv; s != 0 {
					rowC = append(rowC, int32(p))
					rowV = append(rowV, s)
				}
			}
		}
		sp.tt = tt
		sp.rowC, sp.rowV = rowC, rowV
		dst.SetRow(x, rowC, rowV)
	})
}

// evidenceTable caches common-neighbor counts for one side in a compacted
// frontier (O(log d) lookup, no hashing), with the configured evidence
// multiplier applied on lookup.
type evidenceTable struct {
	form   EvidenceForm
	strict bool
	counts *sparse.PairFrontier
}

// newEvidenceTable counts common neighbors for every pair on one side (n
// nodes) by scattering through the opposite side's neighbor lists (oppNbr
// maps each opposite-side node to this side's adjacent nodes).
func newEvidenceTable(n int, oppNbr [][]int, form EvidenceForm, strict bool) *evidenceTable {
	counts := sparse.NewPairFrontier(n)
	for _, nbrs := range oppNbr {
		for x := 0; x < len(nbrs); x++ {
			for y := x + 1; y < len(nbrs); y++ {
				counts.Add(nbrs[x], nbrs[y], 1)
			}
		}
	}
	counts.Compact()
	return &evidenceTable{form: form, strict: strict, counts: counts}
}

func (e *evidenceTable) score(x, y int) float64 {
	n, _ := e.counts.Get(x, y)
	return EvidenceMultiplier(e.form, int(n), e.strict)
}

// applyEvidence multiplies every stored pair by its evidence in place,
// dropping pairs whose evidence is zero (no common neighbors).
func applyEvidence(f *sparse.PairFrontier, ev *evidenceTable) {
	f.Map(func(i, j int, v float64) (float64, bool) {
		v *= ev.score(i, j)
		return v, v != 0
	})
}
