package core

import (
	"simrankpp/internal/clickgraph"
	"simrankpp/internal/sparse"
)

// Run computes the configured similarity with sparse pair tables. With
// PruneEpsilon == 0 it is exact and agrees with RunDense (the test suite
// checks this differentially); with a positive epsilon, scores below the
// threshold are dropped between iterations, bounding memory on large
// graphs at the cost of exactness.
//
// The update is scatter-based: instead of intersecting neighbor lists per
// candidate pair, each stored pair (i, j) of one side pushes its score to
// every pair in E(i) × E(j) of the other side, so work is proportional to
// the number of nonzero pairs times neighborhood sizes — the sparsity the
// click graph actually has.
func Run(g *clickgraph.Graph, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nq, na := g.NumQueries(), g.NumAds()

	// Neighbor rows and, for Weighted, per-neighbor walk factors.
	qNbr := make([][]int, nq)
	aNbr := make([][]int, na)
	var qW, aW [][]float64
	for q := 0; q < nq; q++ {
		qNbr[q], _ = g.AdsOf(q)
	}
	for a := 0; a < na; a++ {
		aNbr[a], _ = g.QueriesOf(a)
	}
	if cfg.Variant == Weighted {
		model := newTransitionModel(g, cfg.Channel, cfg.DisableSpread)
		qW = make([][]float64, nq)
		aW = make([][]float64, na)
		for q := 0; q < nq; q++ {
			qNbr[q], qW[q] = model.queryRow(q)
		}
		for a := 0; a < na; a++ {
			aNbr[a], aW[a] = model.adRow(a)
		}
	}

	// Evidence (common-neighbor counts) per side, built by scattering
	// through the opposite side; only needed for Evidence and Weighted.
	var evQ, evA *evidenceTable
	if cfg.Variant != Simple {
		evQ = newEvidenceTable(aNbr, cfg.EvidenceForm, cfg.StrictEvidence)
		evA = newEvidenceTable(qNbr, cfg.EvidenceForm, cfg.StrictEvidence)
	}

	prevQ := sparse.NewPairTable(0)
	prevA := sparse.NewPairTable(0)
	var curQ, curA *sparse.PairTable
	iters := 0
	converged := false
	for it := 0; it < cfg.Iterations; it++ {
		switch cfg.Variant {
		case Weighted:
			curQ = weightedPass(prevA, qNbr, aNbr, qW, evQ, cfg.C1)
			curA = weightedPass(prevQ, aNbr, qNbr, aW, evA, cfg.C2)
		default:
			curQ = simplePass(prevA, qNbr, aNbr, cfg.C1)
			curA = simplePass(prevQ, aNbr, qNbr, cfg.C2)
		}
		if cfg.PruneEpsilon > 0 {
			curQ.Prune(cfg.PruneEpsilon)
			curA.Prune(cfg.PruneEpsilon)
		}
		iters = it + 1
		if cfg.Tolerance > 0 &&
			curQ.MaxAbsDiff(prevQ) < cfg.Tolerance &&
			curA.MaxAbsDiff(prevA) < cfg.Tolerance {
			prevQ, prevA = curQ, curA
			converged = true
			break
		}
		prevQ, prevA = curQ, curA
	}

	if cfg.Variant == Evidence {
		applyEvidence(prevQ, evQ)
		applyEvidence(prevA, evA)
	}
	return &Result{
		Graph:       g,
		Config:      cfg,
		QueryScores: prevQ,
		AdScores:    prevA,
		Iterations:  iters,
		Converged:   converged,
	}, nil
}

// simplePass computes one plain-SimRank iteration for one side ("this"
// side) from the opposite side's score table. thisNbr maps this side's
// nodes to opposite-side neighbors; oppNbr the reverse.
//
// The accumulator gathers T(x, y) = Σ_{i∈E(x)} Σ_{j∈E(y)} s(i, j):
// diagonal terms s(i, i) = 1 are scattered from each opposite node's
// neighbor list, and each stored off-diagonal pair {i, j} scatters its
// score over E(i) × E(j) — that single directed loop covers both ordered
// terms (i, j) and (j, i) of every unordered target pair, because the
// roles of x and y swap across the two contributions.
func simplePass(opp *sparse.PairTable, thisNbr, oppNbr [][]int, c float64) *sparse.PairTable {
	acc := sparse.NewPairTable(opp.Len())
	for _, nbrs := range oppNbr {
		for x := 0; x < len(nbrs); x++ {
			for y := x + 1; y < len(nbrs); y++ {
				acc.Add(nbrs[x], nbrs[y], 1)
			}
		}
	}
	opp.Range(func(i, j int, v float64) bool {
		for _, q := range oppNbr[i] {
			for _, p := range oppNbr[j] {
				acc.Add(q, p, v) // Add ignores q == p
			}
		}
		return true
	})
	out := sparse.NewPairTable(acc.Len())
	acc.Range(func(x, y int, t float64) bool {
		dx, dy := len(thisNbr[x]), len(thisNbr[y])
		if dx > 0 && dy > 0 {
			if s := c * t / float64(dx*dy); s != 0 {
				out.Set(x, y, s)
			}
		}
		return true
	})
	return out
}

// weightedPass computes one weighted-SimRank iteration for one side. w
// holds this side's walk factors aligned with thisNbr; oppW is derived on
// the fly: the factor attached to the (opposite node → this node) edge is
// found by scanning the opposite node's position in this node's neighbor
// row — instead we precompute reverse factor rows below.
func weightedPass(opp *sparse.PairTable, thisNbr, oppNbr [][]int, w [][]float64, ev *evidenceTable, c float64) *sparse.PairTable {
	// revW[o][k] = W(x, o) where x = the k-th neighbor of opposite node o.
	// Built once per pass from this side's factor rows.
	revW := make([][]float64, len(oppNbr))
	pos := make([]int, len(oppNbr))
	for i := range revW {
		revW[i] = make([]float64, len(oppNbr[i]))
	}
	for x, nbrs := range thisNbr {
		for k, o := range nbrs {
			// thisNbr rows and oppNbr rows are both ascending, so x
			// appears in oppNbr[o] at the next unfilled position for o.
			revW[o][pos[o]] = w[x][k]
			pos[o]++
		}
	}

	acc := sparse.NewPairTable(opp.Len())
	for o, nbrs := range oppNbr {
		fw := revW[o]
		for x := 0; x < len(nbrs); x++ {
			if fw[x] == 0 {
				continue
			}
			for y := x + 1; y < len(nbrs); y++ {
				acc.Add(nbrs[x], nbrs[y], fw[x]*fw[y])
			}
		}
	}
	opp.Range(func(i, j int, v float64) bool {
		wi, wj := revW[i], revW[j]
		for xi, q := range oppNbr[i] {
			f := wi[xi] * v
			if f == 0 {
				continue
			}
			for yj, p := range oppNbr[j] {
				if q != p {
					acc.Add(q, p, f*wj[yj])
				}
			}
		}
		return true
	})
	out := sparse.NewPairTable(acc.Len())
	acc.Range(func(x, y int, t float64) bool {
		if e := ev.score(x, y); e > 0 {
			if s := e * c * t; s != 0 {
				out.Set(x, y, s)
			}
		}
		return true
	})
	return out
}

// evidenceTable caches common-neighbor counts for one side, stored
// sparsely, with the configured evidence multiplier applied on lookup.
type evidenceTable struct {
	form   EvidenceForm
	strict bool
	counts *sparse.PairTable
}

// newEvidenceTable counts common neighbors for every pair on one side by
// scattering through the opposite side's neighbor lists (oppNbr maps each
// opposite-side node to this side's adjacent nodes).
func newEvidenceTable(oppNbr [][]int, form EvidenceForm, strict bool) *evidenceTable {
	counts := sparse.NewPairTable(0)
	for _, nbrs := range oppNbr {
		for x := 0; x < len(nbrs); x++ {
			for y := x + 1; y < len(nbrs); y++ {
				counts.Add(nbrs[x], nbrs[y], 1)
			}
		}
	}
	return &evidenceTable{form: form, strict: strict, counts: counts}
}

func (e *evidenceTable) score(x, y int) float64 {
	n, _ := e.counts.Get(x, y)
	return EvidenceMultiplier(e.form, int(n), e.strict)
}

// applyEvidence multiplies every stored pair by its evidence, deleting
// pairs whose evidence is zero (no common neighbors).
func applyEvidence(t *sparse.PairTable, ev *evidenceTable) {
	type upd struct {
		i, j int
		v    float64
	}
	var updates []upd
	t.Range(func(i, j int, v float64) bool {
		updates = append(updates, upd{i, j, v * ev.score(i, j)})
		return true
	})
	for _, u := range updates {
		if u.v == 0 {
			t.Delete(u.i, u.j)
		} else {
			t.Set(u.i, u.j, u.v)
		}
	}
}
