package core

import "simrankpp/internal/sparse"

// This file preserves the original map-based accumulation passes (one
// hash+probe per contribution into a sparse.PairTable, fresh tables per
// pass). They are no longer on any engine path: the frontier passes in
// engine.go replaced them. They stay as the reference implementation for
// the randomized differential tests and as the baseline the micro
// benchmarks measure the frontier path against.

// simplePassMap is the map-based simplePass: semantics identical to
// simplePass up to floating-point summation order.
func simplePassMap(opp *sparse.PairTable, thisNbr, oppNbr [][]int, c float64) *sparse.PairTable {
	acc := sparse.NewPairTable(opp.Len())
	for _, nbrs := range oppNbr {
		for x := 0; x < len(nbrs); x++ {
			for y := x + 1; y < len(nbrs); y++ {
				acc.Add(nbrs[x], nbrs[y], 1)
			}
		}
	}
	opp.Range(func(i, j int, v float64) bool {
		for _, q := range oppNbr[i] {
			for _, p := range oppNbr[j] {
				acc.Add(q, p, v) // Add ignores q == p
			}
		}
		return true
	})
	out := sparse.NewPairTable(acc.Len())
	acc.Range(func(x, y int, t float64) bool {
		dx, dy := len(thisNbr[x]), len(thisNbr[y])
		if dx > 0 && dy > 0 {
			if s := c * t / float64(dx*dy); s != 0 {
				out.Set(x, y, s)
			}
		}
		return true
	})
	return out
}

// weightedPassMap is the map-based weightedPass. Like the original it
// rebuilds the reversed factor rows on every call — part of the per-pass
// cost the frontier engine eliminated by hoisting reverseFactors to run
// setup.
func weightedPassMap(opp *sparse.PairTable, thisNbr, oppNbr [][]int, w [][]float64, ev *evidenceTable, c float64) *sparse.PairTable {
	revW := reverseFactors(thisNbr, oppNbr, w)
	acc := sparse.NewPairTable(opp.Len())
	for o, nbrs := range oppNbr {
		fw := revW[o]
		for x := 0; x < len(nbrs); x++ {
			if fw[x] == 0 {
				continue
			}
			for y := x + 1; y < len(nbrs); y++ {
				acc.Add(nbrs[x], nbrs[y], fw[x]*fw[y])
			}
		}
	}
	opp.Range(func(i, j int, v float64) bool {
		wi, wj := revW[i], revW[j]
		for xi, q := range oppNbr[i] {
			f := wi[xi] * v
			if f == 0 {
				continue
			}
			for yj, p := range oppNbr[j] {
				if q != p {
					acc.Add(q, p, f*wj[yj])
				}
			}
		}
		return true
	})
	out := sparse.NewPairTable(acc.Len())
	acc.Range(func(x, y int, t float64) bool {
		if e := ev.score(x, y); e > 0 {
			if s := e * c * t; s != 0 {
				out.Set(x, y, s)
			}
		}
		return true
	})
	return out
}
