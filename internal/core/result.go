package core

import (
	"time"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/sparse"
)

// IterationStat records one sparse-engine iteration: its wall time and how
// many output rows the change-tracked delta skip copied forward instead of
// recomputing (see Config.DeltaSkipTolerance). Skip counts are zero on the
// first iteration (there is no previous diff yet) and grow as rows
// converge.
type IterationStat struct {
	// Duration is the iteration's wall time: both passes, pruning, and
	// the convergence/change diff.
	Duration time.Duration
	// QueryRowsSkipped of QueryRows query-side output rows were copied
	// forward unchanged; likewise AdRowsSkipped of AdRows.
	QueryRowsSkipped, QueryRows int
	AdRowsSkipped, AdRows       int
}

// Result holds the similarity scores an engine computed: one symmetric
// sparse table per graph side. Diagonal scores are implicitly 1 per the
// SimRank definition; off-diagonal pairs absent from a table score 0.
type Result struct {
	// Graph is the graph the scores were computed on.
	Graph *clickgraph.Graph
	// Config is the configuration that produced the result.
	Config Config
	// QueryScores holds s(q, q') for query pairs, AdScores s(α, α') for
	// ad pairs.
	QueryScores, AdScores *sparse.PairTable
	// Iterations is the number of iterations actually performed.
	Iterations int
	// Converged reports whether iteration stopped because the largest
	// score change fell below Config.Tolerance.
	Converged bool
	// IterStats holds per-iteration timing and delta-skip counters for
	// runs of the sparse engines (nil from RunDense and deserialized
	// results). For RunSharded, entry i sums every shard's iteration i —
	// total work, not wall time, since shards run concurrently.
	IterStats []IterationStat
	// ShardStats records each shard engine's run, in plan order, when the
	// result came from RunSharded (nil otherwise).
	ShardStats []ShardStat
	// ShardScores retains each shard engine's local-id score tables with
	// their local→global maps, in plan order, when RunSharded ran with
	// ShardOptions.RetainShardScores (nil otherwise). serve.WriteSnapshot
	// encodes per-shard segments directly from them, in parallel, without
	// repartitioning the stitched tables.
	ShardScores []ShardScoreSet
}

// ShardScoreSet is one shard engine's raw output: pair tables in the
// shard's local id space plus the ascending local→global id maps.
type ShardScoreSet struct {
	// QueryIDs maps local query id -> global query id; AdIDs likewise.
	QueryIDs, AdIDs []int
	// QueryScores and AdScores are the shard engine's tables, local ids.
	// Both are nil when ShardOptions.RunShards skipped the shard — the id
	// lists still describe it, which is all serve.RefreshSnapshot needs
	// to reuse the previous generation's segment.
	QueryScores, AdScores *sparse.PairTable
}

// QuerySim returns s(q1, q2): 1 on the diagonal, the stored score or 0
// otherwise.
func (r *Result) QuerySim(q1, q2 int) float64 {
	if q1 == q2 {
		return 1
	}
	v, _ := r.QueryScores.Get(q1, q2)
	return v
}

// AdSim returns s(a1, a2) with the same conventions as QuerySim.
func (r *Result) AdSim(a1, a2 int) float64 {
	if a1 == a2 {
		return 1
	}
	v, _ := r.AdScores.Get(a1, a2)
	return v
}

// TopRewrites returns the k most similar queries to q, descending by score
// with deterministic tie-breaking; k < 0 returns all scored partners. The
// first call builds the per-node partner index (invalidated by mutation),
// so serving many queries from one result costs O(k) each instead of a
// full-table scan.
func (r *Result) TopRewrites(q, k int) []sparse.Scored {
	r.QueryScores.EnsureIndex()
	return r.QueryScores.TopKFor(q, k)
}

// TopSimilarAds is TopRewrites for the ad side: the k ads most similar to
// a, descending by score with deterministic tie-breaking.
func (r *Result) TopSimilarAds(a, k int) []sparse.Scored {
	r.AdScores.EnsureIndex()
	return r.AdScores.TopKFor(a, k)
}

// The delegating accessors below complete the serve.ScoreIndex read
// surface, so a live Result and a loaded serve.Snapshot are
// interchangeable to every score consumer (the rewrite pipeline, the
// simrankd server). They mirror clickgraph.Graph's names.

// NumQueries returns the number of query nodes in the scored graph.
func (r *Result) NumQueries() int { return r.Graph.NumQueries() }

// NumAds returns the number of ad nodes in the scored graph.
func (r *Result) NumAds() int { return r.Graph.NumAds() }

// Query returns the query string for id.
func (r *Result) Query(id int) string { return r.Graph.Query(id) }

// Ad returns the ad string for id.
func (r *Result) Ad(id int) string { return r.Graph.Ad(id) }

// QueryID returns the id of query q and whether it exists.
func (r *Result) QueryID(q string) (int, bool) { return r.Graph.QueryID(q) }

// AdID returns the id of ad a and whether it exists.
func (r *Result) AdID(a string) (int, bool) { return r.Graph.AdID(a) }

// VariantName names the similarity measure that produced the scores
// ("simrank", "evidence-based simrank", "weighted simrank").
func (r *Result) VariantName() string { return r.Config.Variant.String() }
