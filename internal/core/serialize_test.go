package core

import (
	"bytes"
	"strings"
	"testing"

	"simrankpp/internal/clickgraph"
)

// nastyNameGraph builds a graph whose node names contain every character
// the line-oriented score format treats structurally.
func nastyNameGraph(t *testing.T) *clickgraph.Graph {
	t.Helper()
	b := clickgraph.NewBuilder()
	edges := []struct{ q, a string }{
		{"tab\there", "ad\tone"},
		{"new\nline", "ad\tone"},
		{"back\\slash", "ad\rtwo"},
		{"tab\there", "ad\rtwo"},
		{`trailing\`, "plain ad"},
		{"new\nline", "plain ad"},
	}
	for _, e := range edges {
		if err := b.AddClick(e.q, e.a, 1); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

// TestSerializeEscapesStructuralCharacters pins that node names containing
// tabs, newlines, carriage returns and backslashes survive the text score
// format round trip bit for bit.
func TestSerializeEscapesStructuralCharacters(t *testing.T) {
	g := nastyNameGraph(t)
	res, err := Run(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.QueryScores.Len() == 0 {
		t.Fatal("fixture scored no query pairs; test is vacuous")
	}
	var buf bytes.Buffer
	if err := WriteResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	// The serialized stream must still be line-per-pair: raw structural
	// bytes in a name would change the line count.
	wantLines := 2 + res.QueryScores.Len() + res.AdScores.Len() // header + meta
	if got := strings.Count(buf.String(), "\n"); got != wantLines {
		t.Errorf("serialized stream has %d lines, want %d (unescaped name?)", got, wantLines)
	}
	loaded, err := ReadResult(bytes.NewReader(buf.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	res.QueryScores.Range(func(i, j int, v float64) bool {
		if lv := loaded.QuerySim(i, j); lv != v {
			t.Fatalf("query sim(%d,%d) = %v after round trip, want %v", i, j, lv, v)
		}
		return true
	})
	res.AdScores.Range(func(i, j int, v float64) bool {
		if lv := loaded.AdSim(i, j); lv != v {
			t.Fatalf("ad sim(%d,%d) = %v after round trip, want %v", i, j, lv, v)
		}
		return true
	})
	if loaded.QueryScores.Len() != res.QueryScores.Len() || loaded.AdScores.Len() != res.AdScores.Len() {
		t.Errorf("round trip pair counts %d/%d, want %d/%d",
			loaded.QueryScores.Len(), loaded.AdScores.Len(),
			res.QueryScores.Len(), res.AdScores.Len())
	}
}

// TestReadResultAcceptsLegacyV1 pins backward compatibility: a v1 file —
// written by releases that stored names raw — loads without unescaping,
// so a literal backslash in a v1 name is not misread as an escape.
func TestReadResultAcceptsLegacyV1(t *testing.T) {
	b := clickgraph.NewBuilder()
	if err := b.AddClick(`back\slash`, "ad1", 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddClick(`other`, "ad1", 1); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	in := scoresHeaderV1 + "\n" +
		"!meta\tvariant=0\titerations=7\tc1=0.8\tc2=0.8\n" +
		"Q\tback\\slash\tother\t0.25\n"
	res, err := ReadResult(strings.NewReader(in), g)
	if err != nil {
		t.Fatalf("v1 file with raw backslash rejected: %v", err)
	}
	q1, _ := g.QueryID(`back\slash`)
	q2, _ := g.QueryID("other")
	if got := res.QuerySim(q1, q2); got != 0.25 {
		t.Errorf("v1 sim = %v, want 0.25", got)
	}
}

// TestReadResultRejectsBadEscape pins the line-numbered rejection of
// malformed escapes.
func TestReadResultRejectsBadEscape(t *testing.T) {
	g := clickgraph.Fig3()
	cases := []struct {
		name, line string
	}{
		{"unknown escape", "Q\tpc\\x\tcamera\t0.5"},
		{"truncated escape", "Q\tpc\tcamera\\\t0.5"},
	}
	for _, c := range cases {
		in := scoresHeader + "\n" + c.line + "\n"
		_, err := ReadResult(strings.NewReader(in), g)
		if err == nil {
			t.Errorf("%s: ReadResult accepted %q", c.name, c.line)
			continue
		}
		if !strings.Contains(err.Error(), "line 2") {
			t.Errorf("%s: error %q does not name line 2", c.name, err)
		}
	}
}
