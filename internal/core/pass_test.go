package core

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"simrankpp/internal/sparse"
)

// passFixture builds the pass inputs plus a realistic mid-iteration score
// state in every representation the pass variants consume: map table,
// compacted frontier, and symmetric adjacency.
type passFixture struct {
	in     *passInputs
	cfg    Config
	nq, na int
	prevAF *sparse.PairFrontier
	prevAM *sparse.PairTable
	symA   *sparse.SymAdj
}

func newPassFixture(t testing.TB, seed uint64, nq, na, edges int, variant Variant) *passFixture {
	g := randomGraph(seed, nq, na, edges)
	cfg := DefaultConfig().WithVariant(variant)
	cfg.Channel = ChannelClicks
	cfg.Iterations = 3
	warm, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prevAF := sparse.FrontierFromPairTable(warm.AdScores, g.NumAds())
	return &passFixture{
		in:     newPassInputs(g, cfg),
		cfg:    cfg,
		nq:     g.NumQueries(),
		na:     g.NumAds(),
		prevAF: prevAF,
		prevAM: warm.AdScores,
		symA:   prevAF.ExpandSymmetric(nil),
	}
}

func assertFrontierMatchesTable(t *testing.T, label string, f *sparse.PairFrontier, m *sparse.PairTable, eps float64) {
	t.Helper()
	if f.Len() != m.Len() {
		t.Fatalf("%s: %d pairs (frontier) vs %d (map)", label, f.Len(), m.Len())
	}
	m.Range(func(i, j int, mv float64) bool {
		fv, ok := f.Get(i, j)
		if !ok || math.Abs(fv-mv) > eps {
			t.Fatalf("%s: pair (%d,%d) frontier %v,%v map %v", label, i, j, fv, ok, mv)
		}
		return true
	})
}

// TestSimplePassVariantsMatchMap differentially pins the row-major pass
// (serial and parallel) and the scatter pass (serial and sharded) against
// the retained map baseline.
func TestSimplePassVariantsMatchMap(t *testing.T) {
	for _, seed := range []uint64{1, 17, 99, 2026} {
		fx := newPassFixture(t, seed, 12, 10, 40, Simple)
		want := simplePassMap(fx.prevAM, fx.in.qNbr, fx.in.aNbr, fx.cfg.C1)

		for _, workers := range []int{1, 2, 3, 8} {
			got := sparse.NewPairFrontier(fx.nq)
			simplePass(fx.symA, fx.in.qNbr, fx.in.aNbr, fx.cfg.C1, got, nil, nil, workers, newSPAs(workers, fx.nq+fx.na))
			assertFrontierMatchesTable(t, "row-major", got, want, 1e-12)

			gotS := sparse.NewPairFrontier(fx.nq)
			simplePassScatter(fx.prevAF, fx.in.qNbr, fx.in.aNbr, fx.cfg.C1, gotS, workers, newShards(workers, fx.nq))
			assertFrontierMatchesTable(t, "scatter", gotS, want, 1e-12)
		}
	}
}

// TestWeightedPassVariantsMatchMap does the same for the weighted pass,
// whose map baseline also rebuilds the reversed factor rows per call.
func TestWeightedPassVariantsMatchMap(t *testing.T) {
	for _, seed := range []uint64{3, 21, 404} {
		fx := newPassFixture(t, seed, 11, 9, 35, Weighted)
		want := weightedPassMap(fx.prevAM, fx.in.qNbr, fx.in.aNbr, fx.in.qW, fx.in.evQ, fx.cfg.C1)

		for _, workers := range []int{1, 2, 5} {
			got := sparse.NewPairFrontier(fx.nq)
			weightedPass(fx.symA, fx.in.qNbr, fx.in.aNbr, fx.in.qW, fx.in.revWQ, fx.in.evQ, fx.cfg.C1, got, nil, nil, workers, newSPAs(workers, fx.nq+fx.na))
			assertFrontierMatchesTable(t, "row-major", got, want, 1e-12)

			gotS := sparse.NewPairFrontier(fx.nq)
			weightedPassScatter(fx.prevAF, fx.in.qNbr, fx.in.aNbr, fx.in.revWQ, fx.in.evQ, fx.cfg.C1, gotS, workers, newShards(workers, fx.nq))
			assertFrontierMatchesTable(t, "scatter", gotS, want, 1e-12)
		}
	}
}

// assertBitIdentical fails unless both results store exactly the same
// pairs with exactly the same float64 values on both sides.
func assertBitIdentical(t *testing.T, label string, a, b *Result) {
	t.Helper()
	check := func(side string, as, bs *sparse.PairTable) {
		as.Range(func(i, j int, v float64) bool {
			if bv, ok := bs.Get(i, j); !ok || bv != v {
				t.Fatalf("%s: %s pair (%d,%d) %v vs %v,%v", label, side, i, j, v, bv, ok)
			}
			return true
		})
		if as.Len() != bs.Len() {
			t.Fatalf("%s: %s pair count %d vs %d", label, side, as.Len(), bs.Len())
		}
	}
	check("query", a.QueryScores, b.QueryScores)
	check("ad", a.AdScores, b.AdScores)
}

// bitIdenticalConfigs is the config matrix the bit-identicality tests run:
// every variant, plus the evidence-strictness and pruning knobs that alter
// the harvest and the delta-skip interplay.
func bitIdenticalConfigs() []Config {
	var cfgs []Config
	for _, variant := range []Variant{Simple, Evidence, Weighted} {
		cfg := DefaultConfig().WithVariant(variant)
		cfg.Channel = ChannelClicks
		cfgs = append(cfgs, cfg)
	}
	strict := DefaultConfig().WithVariant(Weighted)
	strict.Channel = ChannelClicks
	strict.StrictEvidence = true
	cfgs = append(cfgs, strict)

	strictEv := DefaultConfig().WithVariant(Evidence)
	strictEv.StrictEvidence = true
	cfgs = append(cfgs, strictEv)

	prunedW := DefaultConfig().WithVariant(Weighted) // rate channel: scores survive pruning
	prunedW.PruneEpsilon = 1e-4
	cfgs = append(cfgs, prunedW)

	prunedS := DefaultConfig()
	prunedS.PruneEpsilon = 1e-3
	cfgs = append(cfgs, prunedS)
	return cfgs
}

// TestParallelBitIdentical: each output row is computed by exactly one
// worker in the serial kernel order (or copied forward by the delta skip,
// which is worker-independent), so RunParallel must equal Run bit-for-bit,
// not just within rounding — across variants, strict evidence, and
// pruning.
func TestParallelBitIdentical(t *testing.T) {
	g := randomGraph(31, 14, 11, 50)
	for _, cfg := range bitIdenticalConfigs() {
		serial := mustRun(t, g, cfg)
		par, err := RunParallel(g, cfg, 5)
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("%v strict=%v prune=%g", cfg.Variant, cfg.StrictEvidence, cfg.PruneEpsilon)
		assertBitIdentical(t, label, serial, par)
	}
}

// TestDeltaSkipExactMatchesFull pins the change-tracked delta iteration
// against full recomputation: with the default exact-equality tracking, a
// skipped row is a copy of a row whose recomputation would read
// bit-identical inputs, so whole runs must match bit for bit — serial and
// parallel, across variants, strictness, and pruning. The iteration count
// is high enough that rows do freeze (the probe below asserts skips
// actually happened, so the test cannot pass vacuously).
func TestDeltaSkipExactMatchesFull(t *testing.T) {
	totalSkips := 0
	for _, seed := range []uint64{5, 77, 1234} {
		g := randomGraph(seed, 18, 14, 70)
		for _, cfg := range bitIdenticalConfigs() {
			cfg.Iterations = 14
			full := cfg
			full.DisableDeltaSkip = true
			delta := mustRun(t, g, cfg)
			ref := mustRun(t, g, full)
			label := fmt.Sprintf("seed=%d %v strict=%v prune=%g", seed, cfg.Variant, cfg.StrictEvidence, cfg.PruneEpsilon)
			assertBitIdentical(t, label, delta, ref)
			deltaPar, err := RunParallel(g, cfg, 4)
			if err != nil {
				t.Fatal(err)
			}
			assertBitIdentical(t, label+" parallel", deltaPar, ref)
			for _, s := range delta.IterStats {
				totalSkips += s.QueryRowsSkipped + s.AdRowsSkipped
			}
			for _, s := range ref.IterStats {
				if s.QueryRowsSkipped != 0 || s.AdRowsSkipped != 0 {
					t.Fatalf("%s: DisableDeltaSkip run skipped rows", label)
				}
			}
		}
	}
	if totalSkips == 0 {
		t.Fatal("no rows were ever delta-skipped; the differential is vacuous")
	}
}

// TestDeltaSkipToleranceBounded pins the approximate mode: with a positive
// DeltaSkipTolerance, rows are frozen while their inputs still move within
// the tolerance, so scores may drift from the full recomputation — but
// only by a small multiple of the tolerance (each frozen row's inputs are
// within tol of the values it was computed from, and the c < 1 contraction
// keeps the propagated error of the same order).
func TestDeltaSkipToleranceBounded(t *testing.T) {
	const tol = 1e-6
	for _, seed := range []uint64{9, 404} {
		g := randomGraph(seed, 20, 16, 90)
		for _, variant := range []Variant{Simple, Weighted} {
			cfg := DefaultConfig().WithVariant(variant)
			cfg.Iterations = 20
			cfg.DeltaSkipTolerance = tol
			full := cfg
			full.DisableDeltaSkip = true
			delta := mustRun(t, g, cfg)
			ref := mustRun(t, g, full)
			maxd := 0.0
			for i := 0; i < g.NumQueries(); i++ {
				for j := i + 1; j < g.NumQueries(); j++ {
					if d := math.Abs(delta.QuerySim(i, j) - ref.QuerySim(i, j)); d > maxd {
						maxd = d
					}
				}
			}
			for i := 0; i < g.NumAds(); i++ {
				for j := i + 1; j < g.NumAds(); j++ {
					if d := math.Abs(delta.AdSim(i, j) - ref.AdSim(i, j)); d > maxd {
						maxd = d
					}
				}
			}
			if maxd > 100*tol {
				t.Errorf("seed=%d %v: tolerance-skipped run drifted %g from full recompute (tol %g)", seed, variant, maxd, tol)
			}
		}
	}
}

// TestTopRewritesConcurrent guards the serving pattern the partner index
// exists for: many goroutines querying one read-only Result. The lazy
// index build must be safe under -race.
func TestTopRewritesConcurrent(t *testing.T) {
	g := randomGraph(8, 15, 12, 60)
	res := mustRun(t, g, DefaultConfig())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for q := 0; q < g.NumQueries(); q++ {
				res.TopRewrites(q, 3)
			}
		}(w)
	}
	wg.Wait()
	want := res.QueryScores.TopKFor(0, 3)
	if len(want) == 0 {
		t.Fatal("expected rewrites for query 0")
	}
}

// TestRunReusesFrontiersAcrossIterations guards the ping-pong reuse: many
// iterations on the same graph must converge to the dense fixpoint even
// with pruning re-emptying rows between passes.
func TestRunReusesFrontiersAcrossIterations(t *testing.T) {
	g := randomGraph(5, 10, 8, 30)
	for _, variant := range []Variant{Simple, Evidence, Weighted} {
		cfg := DefaultConfig().WithVariant(variant)
		cfg.Channel = ChannelClicks
		cfg.Iterations = 25
		cfg.PruneEpsilon = 1e-7
		d, err := RunDense(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Run(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < g.NumQueries(); i++ {
			for j := i + 1; j < g.NumQueries(); j++ {
				// Pruning at 1e-7 over 25 iterations stays well inside 1e-4.
				if dv, sv := d.QuerySim(i, j), s.QuerySim(i, j); math.Abs(dv-sv) > 1e-4 {
					t.Fatalf("%v: sim(%d,%d) dense %v frontier %v", variant, i, j, dv, sv)
				}
			}
		}
	}
}
