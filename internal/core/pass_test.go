package core

import (
	"math"
	"sync"
	"testing"

	"simrankpp/internal/sparse"
)

// passFixture builds the pass inputs plus a realistic mid-iteration score
// state in every representation the pass variants consume: map table,
// compacted frontier, and symmetric adjacency.
type passFixture struct {
	in     *passInputs
	cfg    Config
	nq, na int
	prevAF *sparse.PairFrontier
	prevAM *sparse.PairTable
	symA   *sparse.SymAdj
}

func newPassFixture(t testing.TB, seed uint64, nq, na, edges int, variant Variant) *passFixture {
	g := randomGraph(seed, nq, na, edges)
	cfg := DefaultConfig().WithVariant(variant)
	cfg.Channel = ChannelClicks
	cfg.Iterations = 3
	warm, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prevAF := sparse.FrontierFromPairTable(warm.AdScores, g.NumAds())
	return &passFixture{
		in:     newPassInputs(g, cfg),
		cfg:    cfg,
		nq:     g.NumQueries(),
		na:     g.NumAds(),
		prevAF: prevAF,
		prevAM: warm.AdScores,
		symA:   prevAF.ExpandSymmetric(nil),
	}
}

func assertFrontierMatchesTable(t *testing.T, label string, f *sparse.PairFrontier, m *sparse.PairTable, eps float64) {
	t.Helper()
	if f.Len() != m.Len() {
		t.Fatalf("%s: %d pairs (frontier) vs %d (map)", label, f.Len(), m.Len())
	}
	m.Range(func(i, j int, mv float64) bool {
		fv, ok := f.Get(i, j)
		if !ok || math.Abs(fv-mv) > eps {
			t.Fatalf("%s: pair (%d,%d) frontier %v,%v map %v", label, i, j, fv, ok, mv)
		}
		return true
	})
}

// TestSimplePassVariantsMatchMap differentially pins the row-major pass
// (serial and parallel) and the scatter pass (serial and sharded) against
// the retained map baseline.
func TestSimplePassVariantsMatchMap(t *testing.T) {
	for _, seed := range []uint64{1, 17, 99, 2026} {
		fx := newPassFixture(t, seed, 12, 10, 40, Simple)
		want := simplePassMap(fx.prevAM, fx.in.qNbr, fx.in.aNbr, fx.cfg.C1)

		for _, workers := range []int{1, 2, 3, 8} {
			got := sparse.NewPairFrontier(fx.nq)
			simplePass(fx.symA, fx.in.qNbr, fx.in.aNbr, fx.cfg.C1, got, workers, newSPAs(workers, fx.nq+fx.na))
			assertFrontierMatchesTable(t, "row-major", got, want, 1e-12)

			gotS := sparse.NewPairFrontier(fx.nq)
			simplePassScatter(fx.prevAF, fx.in.qNbr, fx.in.aNbr, fx.cfg.C1, gotS, workers, newShards(workers, fx.nq))
			assertFrontierMatchesTable(t, "scatter", gotS, want, 1e-12)
		}
	}
}

// TestWeightedPassVariantsMatchMap does the same for the weighted pass,
// whose map baseline also rebuilds the reversed factor rows per call.
func TestWeightedPassVariantsMatchMap(t *testing.T) {
	for _, seed := range []uint64{3, 21, 404} {
		fx := newPassFixture(t, seed, 11, 9, 35, Weighted)
		want := weightedPassMap(fx.prevAM, fx.in.qNbr, fx.in.aNbr, fx.in.qW, fx.in.evQ, fx.cfg.C1)

		for _, workers := range []int{1, 2, 5} {
			got := sparse.NewPairFrontier(fx.nq)
			weightedPass(fx.symA, fx.in.qNbr, fx.in.aNbr, fx.in.qW, fx.in.revWQ, fx.in.evQ, fx.cfg.C1, got, workers, newSPAs(workers, fx.nq+fx.na))
			assertFrontierMatchesTable(t, "row-major", got, want, 1e-12)

			gotS := sparse.NewPairFrontier(fx.nq)
			weightedPassScatter(fx.prevAF, fx.in.qNbr, fx.in.aNbr, fx.in.revWQ, fx.in.evQ, fx.cfg.C1, gotS, workers, newShards(workers, fx.nq))
			assertFrontierMatchesTable(t, "scatter", gotS, want, 1e-12)
		}
	}
}

// TestParallelBitIdentical: each output row is computed by exactly one
// worker in the serial kernel order, so RunParallel must equal Run
// bit-for-bit, not just within rounding.
func TestParallelBitIdentical(t *testing.T) {
	g := randomGraph(31, 14, 11, 50)
	for _, variant := range []Variant{Simple, Evidence, Weighted} {
		cfg := DefaultConfig().WithVariant(variant)
		cfg.Channel = ChannelClicks
		serial := mustRun(t, g, cfg)
		par, err := RunParallel(g, cfg, 5)
		if err != nil {
			t.Fatal(err)
		}
		serial.QueryScores.Range(func(i, j int, v float64) bool {
			if pv, ok := par.QueryScores.Get(i, j); !ok || pv != v {
				t.Fatalf("%v: query pair (%d,%d) serial %v parallel %v,%v", variant, i, j, v, pv, ok)
			}
			return true
		})
		if serial.QueryScores.Len() != par.QueryScores.Len() {
			t.Fatalf("%v: pair count %d vs %d", variant, serial.QueryScores.Len(), par.QueryScores.Len())
		}
	}
}

// TestTopRewritesConcurrent guards the serving pattern the partner index
// exists for: many goroutines querying one read-only Result. The lazy
// index build must be safe under -race.
func TestTopRewritesConcurrent(t *testing.T) {
	g := randomGraph(8, 15, 12, 60)
	res := mustRun(t, g, DefaultConfig())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for q := 0; q < g.NumQueries(); q++ {
				res.TopRewrites(q, 3)
			}
		}(w)
	}
	wg.Wait()
	want := res.QueryScores.TopKFor(0, 3)
	if len(want) == 0 {
		t.Fatal("expected rewrites for query 0")
	}
}

// TestRunReusesFrontiersAcrossIterations guards the ping-pong reuse: many
// iterations on the same graph must converge to the dense fixpoint even
// with pruning re-emptying rows between passes.
func TestRunReusesFrontiersAcrossIterations(t *testing.T) {
	g := randomGraph(5, 10, 8, 30)
	for _, variant := range []Variant{Simple, Evidence, Weighted} {
		cfg := DefaultConfig().WithVariant(variant)
		cfg.Channel = ChannelClicks
		cfg.Iterations = 25
		cfg.PruneEpsilon = 1e-7
		d, err := RunDense(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Run(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < g.NumQueries(); i++ {
			for j := i + 1; j < g.NumQueries(); j++ {
				// Pruning at 1e-7 over 25 iterations stays well inside 1e-4.
				if dv, sv := d.QuerySim(i, j), s.QuerySim(i, j); math.Abs(dv-sv) > 1e-4 {
					t.Fatalf("%v: sim(%d,%d) dense %v frontier %v", variant, i, j, dv, sv)
				}
			}
		}
	}
}
