package core

import (
	"fmt"
	"math"
	"testing"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/partition"
	"simrankpp/internal/sparse"
)

// multiComponentGraph builds count disjoint pseudo-random clusters.
func multiComponentGraph(seed uint64, count, nq, na, edges int) *clickgraph.Graph {
	b := clickgraph.NewBuilder()
	for c := 0; c < count; c++ {
		addBenchCluster(b, fmt.Sprintf("t%d-", c), seed+uint64(c)*7919, nq, na, edges)
	}
	return b.Build()
}

// requireTablesBitIdentical fails unless both pair tables hold exactly the
// same pairs with exactly equal (==, not almost-equal) values.
func requireTablesBitIdentical(t *testing.T, label string, want, got *sparse.PairTable) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("%s: pair counts differ: want %d, got %d", label, want.Len(), got.Len())
	}
	want.Range(func(i, j int, v float64) bool {
		gv, ok := got.Get(i, j)
		if !ok {
			t.Fatalf("%s: pair (%d,%d) missing", label, i, j)
		}
		if gv != v {
			t.Fatalf("%s: pair (%d,%d) = %v, want %v (bit-identical)", label, i, j, gv, v)
		}
		return true
	})
}

// TestShardedExactBitIdentical pins the acceptance criterion: on a
// component-exact plan (per-component and packed alike), RunSharded
// reproduces the monolithic engines bit for bit at a fixed iteration
// count, across variants × strict evidence × pruning, stitched from
// serial and pooled shard schedules.
func TestShardedExactBitIdentical(t *testing.T) {
	g := multiComponentGraph(11, 5, 14, 10, 45)
	pcfg := partition.DefaultPlanConfig()
	pcfg.MaxShardNodes = 60 // packs the 5 components into fewer shards
	packed, err := partition.BuildPlan(g, pcfg)
	if err != nil {
		t.Fatalf("BuildPlan: %v", err)
	}
	if !packed.Exact {
		t.Fatalf("packed plan should be exact for disjoint small components")
	}
	plans := map[string]*partition.Plan{
		"per-component": partition.ComponentPlan(g),
		"packed":        packed,
	}
	for _, variant := range []Variant{Simple, Evidence, Weighted} {
		for _, strict := range []bool{false, true} {
			for _, prune := range []float64{0, 1e-4} {
				cfg := DefaultConfig().WithVariant(variant)
				cfg.Channel = ChannelClicks
				cfg.StrictEvidence = strict
				cfg.PruneEpsilon = prune
				mono := mustRun(t, g, cfg)
				monoPar, err := RunParallel(g, cfg, 4)
				if err != nil {
					t.Fatalf("RunParallel: %v", err)
				}
				for planName, plan := range plans {
					for _, workers := range []int{1, 3} {
						label := fmt.Sprintf("%v/strict=%v/prune=%g/%s/workers=%d",
							variant, strict, prune, planName, workers)
						sharded, err := RunSharded(g, cfg, plan, ShardOptions{Workers: workers})
						if err != nil {
							t.Fatalf("%s: RunSharded: %v", label, err)
						}
						requireTablesBitIdentical(t, label+"/queries", mono.QueryScores, sharded.QueryScores)
						requireTablesBitIdentical(t, label+"/ads", mono.AdScores, sharded.AdScores)
						requireTablesBitIdentical(t, label+"/queries-vs-parallel", monoPar.QueryScores, sharded.QueryScores)
						if sharded.Iterations != mono.Iterations {
							t.Errorf("%s: iterations %d, want %d", label, sharded.Iterations, mono.Iterations)
						}
					}
				}
			}
		}
	}
}

// TestShardedACLPlanWithinTolerance pins the approximation story: on a
// two-cluster fixture whose clusters are joined by weak bridge edges, an
// ACL-cut plan loses only the bridges' evidence, so stitched scores stay
// within a small tolerance of the monolithic run.
func TestShardedACLPlanWithinTolerance(t *testing.T) {
	b := clickgraph.NewBuilder()
	add := func(q, a string, rate float64) {
		if err := b.AddEdge(q, a, clickgraph.EdgeWeights{Impressions: 4, Clicks: 2, ExpectedClickRate: rate}); err != nil {
			t.Fatal(err)
		}
	}
	// Complete bipartite clusters: every internal cut severs many strong
	// edges, so the only low-conductance sweep cut is at the bridge.
	const nq, na = 16, 10
	for c := 0; c < 2; c++ {
		for q := 0; q < nq; q++ {
			for a := 0; a < na; a++ {
				add(fmt.Sprintf("b%d-q%d", c, q), fmt.Sprintf("b%d-ad%d", c, a), 0.5)
			}
		}
	}
	// Two weak bridges make it one component.
	add("b0-q0", "b1-ad0", 0.01)
	add("b0-q1", "b1-ad1", 0.01)
	g := b.Build()

	pcfg := partition.DefaultPlanConfig()
	pcfg.MaxShardNodes = 40 // each half is 26 nodes; the whole is 52
	pcfg.MinCutNodes = 10
	plan, err := partition.BuildPlan(g, pcfg)
	if err != nil {
		t.Fatalf("BuildPlan: %v", err)
	}
	if plan.Exact || plan.TotalCutEdges == 0 {
		t.Fatalf("fixture should force an approximate plan with cut edges, got exact=%v cut=%d",
			plan.Exact, plan.TotalCutEdges)
	}

	cfg := DefaultConfig().WithVariant(Weighted)
	mono := mustRun(t, g, cfg)
	sharded, err := RunSharded(g, cfg, plan, ShardOptions{Workers: 2})
	if err != nil {
		t.Fatalf("RunSharded: %v", err)
	}
	// The documented tolerance: dropping the weak bridges' evidence moves
	// no within-cluster pair by more than ~the bridge weight share. 0.05
	// is generous headroom for this fixture; the point is it is small,
	// while scores themselves reach ~0.4.
	const tolACL = 0.05
	maxDiff := 0.0
	check := func(wantT, gotT *sparse.PairTable) {
		wantT.Range(func(i, j int, v float64) bool {
			gv, _ := gotT.Get(i, j)
			if d := math.Abs(gv - v); d > maxDiff {
				maxDiff = d
			}
			return true
		})
	}
	check(mono.QueryScores, sharded.QueryScores)
	check(sharded.QueryScores, mono.QueryScores)
	check(mono.AdScores, sharded.AdScores)
	check(sharded.AdScores, mono.AdScores)
	if maxDiff > tolACL {
		t.Errorf("ACL-cut scores drift %v from monolithic, tolerance %v", maxDiff, tolACL)
	}
	if maxDiff == 0 {
		t.Error("expected some drift from dropped bridge evidence; fixture may be broken")
	}
}

func TestShardedStitchedResultServes(t *testing.T) {
	g := multiComponentGraph(23, 4, 12, 9, 40)
	plan := partition.ComponentPlan(g)
	cfg := DefaultConfig().WithVariant(Weighted)
	cfg.Channel = ChannelClicks
	mono := mustRun(t, g, cfg)
	sharded, err := RunSharded(g, cfg, plan, ShardOptions{Workers: 2})
	if err != nil {
		t.Fatalf("RunSharded: %v", err)
	}
	// TopRewrites must serve from the stitched table exactly as from the
	// monolithic one (the partner index builds on first use).
	for q := 0; q < g.NumQueries(); q++ {
		want := mono.TopRewrites(q, 5)
		got := sharded.TopRewrites(q, 5)
		if len(want) != len(got) {
			t.Fatalf("q%d: TopRewrites lengths %d vs %d", q, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("q%d rank %d: %+v vs %+v", q, i, got[i], want[i])
			}
		}
	}
	// Shard and iteration metadata.
	if len(sharded.ShardStats) != len(plan.Shards) {
		t.Fatalf("ShardStats has %d entries, want %d", len(sharded.ShardStats), len(plan.Shards))
	}
	totalQ, totalA := 0, 0
	side := g.NumQueries()
	if g.NumAds() > side {
		side = g.NumAds()
	}
	for _, s := range sharded.ShardStats {
		totalQ += s.Queries
		totalA += s.Ads
		if s.SPABytes <= 0 || s.SPABytes > int64(side)*16 {
			t.Errorf("shard SPA bytes %d outside (0, monolithic %d]", s.SPABytes, int64(side)*16)
		}
	}
	if totalQ != g.NumQueries() || totalA != g.NumAds() {
		t.Errorf("shard stats cover %d×%d nodes, want %d×%d", totalQ, totalA, g.NumQueries(), g.NumAds())
	}
	if len(sharded.IterStats) != sharded.Iterations {
		t.Errorf("merged IterStats has %d entries, want %d", len(sharded.IterStats), sharded.Iterations)
	}
	if sharded.IterStats[0].QueryRows != g.NumQueries() {
		t.Errorf("iteration 1 covers %d query rows, want %d", sharded.IterStats[0].QueryRows, g.NumQueries())
	}
}

func TestShardedValidation(t *testing.T) {
	g := multiComponentGraph(31, 3, 10, 8, 30)
	cfg := DefaultConfig()
	if _, err := RunSharded(g, cfg, nil, ShardOptions{}); err == nil {
		t.Error("accepted nil plan")
	}
	bad := partition.ComponentPlan(g)
	bad.Shards[0].Queries = bad.Shards[0].Queries[1:]
	if _, err := RunSharded(g, cfg, bad, ShardOptions{}); err == nil {
		t.Error("accepted non-covering plan")
	}
	badCfg := cfg
	badCfg.C1 = 0
	if _, err := RunSharded(g, badCfg, partition.ComponentPlan(g), ShardOptions{}); err == nil {
		t.Error("accepted invalid config")
	}
}

// TestShardedConvergesPerShard documents the Tolerance semantics: every
// shard stops at its own convergence and the stitched result reports
// whether all of them did.
func TestShardedConvergesPerShard(t *testing.T) {
	g := multiComponentGraph(41, 3, 10, 8, 30)
	cfg := DefaultConfig()
	cfg.Iterations = 300
	cfg.Tolerance = 1e-9
	sharded, err := RunSharded(g, cfg, partition.ComponentPlan(g), ShardOptions{Workers: 2})
	if err != nil {
		t.Fatalf("RunSharded: %v", err)
	}
	if !sharded.Converged {
		t.Error("all shards should converge at 1e-9 within 300 iterations")
	}
	for i, s := range sharded.ShardStats {
		if !s.Converged && s.Queries > 0 {
			t.Errorf("shard %d did not converge", i)
		}
	}
}
