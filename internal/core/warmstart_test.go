package core

import (
	"fmt"
	"math"
	"testing"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/partition"
	"simrankpp/internal/sparse"
)

// churnedGraph rebuilds the multi-component fixture with one cluster
// regenerated under a different seed — the marginal-churn shape a refresh
// sees: most components identical, one rewritten.
func churnedGraph(seed uint64, count, nq, na, edges int) *clickgraph.Graph {
	b := clickgraph.NewBuilder()
	for c := 0; c < count; c++ {
		s := seed + uint64(c)*7919
		if c == count-1 {
			s += 31337 // churn the last cluster
		}
		addBenchCluster(b, fmt.Sprintf("t%d-", c), s, nq, na, edges)
	}
	return b.Build()
}

// maxTableDiff returns the largest |a-b| over the union of both tables.
func maxTableDiff(a, b *sparse.PairTable) float64 {
	return a.MaxAbsDiff(b)
}

// TestWarmStartWithinToleranceOfCold pins the warm-start exactness
// contract across variants × strict evidence × pruning: seeding a sharded
// run from a previous generation's scores — same graph or a churned one —
// and iterating to the same fixed count stays within tolerance of the
// cold run. The contraction factor C bounds how much of the start's
// offset can survive k iterations, so the pin uses C^k times the largest
// plausible seed error plus slack for the evidence round-trip.
func TestWarmStartWithinToleranceOfCold(t *testing.T) {
	base := multiComponentGraph(11, 5, 14, 10, 45)
	churned := churnedGraph(11, 5, 14, 10, 45)
	for _, variant := range []Variant{Simple, Evidence, Weighted} {
		for _, strict := range []bool{false, true} {
			for _, prune := range []float64{0, 1e-4} {
				cfg := DefaultConfig().WithVariant(variant)
				cfg.Channel = ChannelClicks
				cfg.StrictEvidence = strict
				cfg.PruneEpsilon = prune
				cfg.Iterations = 10
				label := fmt.Sprintf("%v/strict=%v/prune=%g", variant, strict, prune)

				warmSrc := mustRun(t, base, cfg)
				for name, g := range map[string]*clickgraph.Graph{"same-graph": base, "churned": churned} {
					plan := partition.ComponentPlan(g)
					cold, err := RunSharded(g, cfg, plan, ShardOptions{Workers: 2})
					if err != nil {
						t.Fatalf("%s/%s: cold RunSharded: %v", label, name, err)
					}
					warm, err := RunSharded(g, cfg, plan, ShardOptions{Workers: 2, WarmStart: warmSrc})
					if err != nil {
						t.Fatalf("%s/%s: warm RunSharded: %v", label, name, err)
					}
					// C^k times a worst-case O(1) seed offset, padded for the
					// pruning threshold (pruned pairs differ by up to eps).
					tol := math.Pow(cfg.C1, float64(cfg.Iterations)) + 10*prune + 1e-9
					if d := maxTableDiff(cold.QueryScores, warm.QueryScores); d > tol {
						t.Errorf("%s/%s: query scores drift %g > %g", label, name, d, tol)
					}
					if d := maxTableDiff(cold.AdScores, warm.AdScores); d > tol {
						t.Errorf("%s/%s: ad scores drift %g > %g", label, name, d, tol)
					}
				}
			}
		}
	}
}

// TestWarmStartConvergesFaster pins the point of warm starting: with a
// convergence tolerance set, a warm-started run on a lightly-churned
// graph stops in fewer iterations than the cold run and skips more rows.
func TestWarmStartConvergesFaster(t *testing.T) {
	base := multiComponentGraph(3, 6, 20, 14, 80)
	churned := churnedGraph(3, 6, 20, 14, 80)
	cfg := DefaultConfig().WithVariant(Weighted)
	cfg.Channel = ChannelClicks
	cfg.Iterations = 20
	cfg.Tolerance = 1e-6
	warmSrc := mustRun(t, base, cfg)

	plan := partition.ComponentPlan(churned)
	cold, err := RunSharded(churned, cfg, plan, ShardOptions{})
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	warm, err := RunSharded(churned, cfg, plan, ShardOptions{WarmStart: warmSrc})
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if !warm.Converged {
		t.Fatal("warm run did not converge")
	}
	if warm.Iterations >= cold.Iterations {
		t.Errorf("warm run took %d iterations, cold %d: warm start bought nothing",
			warm.Iterations, cold.Iterations)
	}
}

// TestRunShardsSkipsCleanShards pins the dirty-only scheduling contract:
// skipped shards contribute no scores and no engine work, their stats are
// marked, and (under RetainShardScores) their id lists are still present
// for the refresh writer.
func TestRunShardsSkipsCleanShards(t *testing.T) {
	g := multiComponentGraph(7, 4, 12, 9, 40)
	plan := partition.ComponentPlan(g)
	if len(plan.Shards) < 2 {
		t.Fatalf("fixture needs ≥ 2 shards, got %d", len(plan.Shards))
	}
	cfg := DefaultConfig().WithVariant(Weighted)
	cfg.Channel = ChannelClicks

	mask := make([]bool, len(plan.Shards))
	mask[0] = true // run only shard 0
	res, err := RunSharded(g, cfg, plan, ShardOptions{RunShards: mask, RetainShardScores: true})
	if err != nil {
		t.Fatalf("RunSharded: %v", err)
	}
	full, err := RunSharded(g, cfg, plan, ShardOptions{})
	if err != nil {
		t.Fatalf("full RunSharded: %v", err)
	}

	inShard0 := make(map[int]bool)
	for _, q := range plan.Shards[0].Queries {
		inShard0[q] = true
	}
	res.QueryScores.Range(func(i, j int, v float64) bool {
		if !inShard0[i] || !inShard0[j] {
			t.Fatalf("partial run scored pair (%d,%d) outside the run shard", i, j)
		}
		fv, _ := full.QueryScores.Get(i, j)
		if fv != v {
			t.Fatalf("partial run pair (%d,%d) = %v, full run %v", i, j, v, fv)
		}
		return true
	})
	for i, st := range res.ShardStats {
		if (i == 0) == st.Skipped {
			t.Errorf("shard %d Skipped = %v, want %v", i, st.Skipped, i != 0)
		}
		if st.Fingerprint != plan.Shards[i].Fingerprint {
			t.Errorf("shard %d fingerprint not echoed", i)
		}
	}
	for i, ss := range res.ShardScores {
		if len(ss.QueryIDs) != len(plan.Shards[i].Queries) || len(ss.AdIDs) != len(plan.Shards[i].Ads) {
			t.Errorf("shard %d retained id lists wrong size", i)
		}
		if i != 0 && (ss.QueryScores != nil || ss.AdScores != nil) {
			t.Errorf("skipped shard %d retained score tables", i)
		}
		if i == 0 && (ss.QueryScores == nil || ss.AdScores == nil) {
			t.Errorf("run shard 0 missing retained score tables")
		}
	}
}
